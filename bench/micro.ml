(* Bechamel micro-benchmarks for the substrate ablations called out in
   DESIGN.md section 6:

   B1  bigint multiplication: schoolbook vs Karatsuba across sizes
   B2  determinant: Bareiss vs CRT vs rational elimination
   B3  rank: GF(2) bit-matrix vs rational elimination
   B4  protocol channel overhead (send throughput)
   B5  base-(-q) digit extraction
   B6  subspace membership (the Lemma 3.2 inner loop)           *)

open Bechamel
open Toolkit

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module Bm = Commx_util.Bitmat
module Prng = Commx_util.Prng

let random_bigint g bits = B.random_bits g bits

let b1_mul () =
  let g = Prng.create 1 in
  let mk bits =
    let x = random_bigint g bits and y = random_bigint g bits in
    [
      Test.make
        ~name:(Printf.sprintf "mul-karatsuba-%db" bits)
        (Staged.stage (fun () -> ignore (B.mul x y)));
      Test.make
        ~name:(Printf.sprintf "mul-schoolbook-%db" bits)
        (Staged.stage (fun () -> ignore (B.mul_schoolbook x y)));
    ]
  in
  Test.make_grouped ~name:"B1-bigint-mul" ~fmt:"%s %s"
    (List.concat_map mk [ 256; 1024; 4096; 16384 ])

let random_zmatrix g dim bits =
  Zm.init dim dim (fun _ _ ->
      let v = B.random_bits g bits in
      if Prng.bool g then B.neg v else v)

let b2_det () =
  let g = Prng.create 2 in
  let mk dim =
    let m = random_zmatrix g dim 16 in
    let mq = Zm.to_qmatrix m in
    [
      Test.make
        ~name:(Printf.sprintf "det-bareiss-%d" dim)
        (Staged.stage (fun () -> ignore (Zm.det_bareiss m)));
      Test.make
        ~name:(Printf.sprintf "det-crt-%d" dim)
        (Staged.stage (fun () -> ignore (Zm.det_crt m)));
      Test.make
        ~name:(Printf.sprintf "det-rational-%d" dim)
        (Staged.stage (fun () -> ignore (Qm.det mq)));
    ]
  in
  Test.make_grouped ~name:"B2-determinant" ~fmt:"%s %s"
    (List.concat_map mk [ 6; 10; 14 ])

let b3_rank () =
  let g = Prng.create 3 in
  let mk dim =
    let bm = Bm.random g dim dim in
    let qm =
      Qm.init dim dim (fun i j ->
          if Bm.get bm i j then Commx_bigint.Rational.one
          else Commx_bigint.Rational.zero)
    in
    [
      Test.make
        ~name:(Printf.sprintf "rank-gf2-%d" dim)
        (Staged.stage (fun () -> ignore (Bm.rank bm)));
      Test.make
        ~name:(Printf.sprintf "rank-rational-%d" dim)
        (Staged.stage (fun () -> ignore (Qm.rank qm)));
    ]
  in
  Test.make_grouped ~name:"B3-rank" ~fmt:"%s %s"
    (List.concat_map mk [ 32; 64; 128 ])

let b4_channel () =
  let g = Prng.create 4 in
  let msg = Commx_util.Bitvec.random g 4096 in
  Test.make_grouped ~name:"B4-channel" ~fmt:"%s %s"
    [
      Test.make ~name:"send-4096b"
        (Staged.stage (fun () ->
             let p =
               {
                 Commx_comm.Protocol.name = "bench";
                 run =
                   (fun ch () () ->
                     ignore (Commx_comm.Protocol.send ch msg);
                     true);
               }
             in
             ignore (Commx_comm.Protocol.execute p () ())));
    ]

let b5_negbase () =
  let q = B.of_int 7 in
  let v = B.of_string "123456789123456789123456789" in
  Test.make_grouped ~name:"B5-negbase" ~fmt:"%s %s"
    [
      Test.make ~name:"to_neg_base-90digits"
        (Staged.stage (fun () ->
             ignore (Commx_core.Gadget.to_neg_base ~q ~digits:90 v)));
    ]

let b6_membership () =
  let p = Commx_core.Params.make ~n:9 ~k:3 in
  let g = Prng.create 6 in
  let f = Commx_core.Hard_instance.random_free g p in
  let normal = Commx_core.Truth_restricted.normal_vector p f.Commx_core.Hard_instance.c in
  Test.make_grouped ~name:"B6-membership" ~fmt:"%s %s"
    [
      Test.make ~name:"lemma32-subspace-mem"
        (Staged.stage (fun () ->
             ignore (Commx_core.Lemma32.criterion p f)));
      Test.make ~name:"lemma32-normal-dot"
        (Staged.stage (fun () ->
             ignore (Commx_core.Truth_restricted.singular_with ~normal p f)));
    ]

let run_group test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> est
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let print_group title test =
  Printf.printf "\n== %s ==\n" title;
  let tab =
    Commx_util.Tab.make ~header:[ "benchmark"; "ns/run" ]
      [ Commx_util.Tab.Left; Commx_util.Tab.Right ]
  in
  List.iter
    (fun (name, ns) ->
      Commx_util.Tab.add_row tab
        [ name; Commx_util.Tab.fmt_float ~digits:1 ns ])
    (run_group test);
  Commx_util.Tab.print tab

let run () =
  print_endline "Micro-benchmarks (Bechamel; OLS ns/run estimates)";
  print_group "B1 bigint multiplication (Karatsuba ablation)" (b1_mul ());
  print_group "B2 determinant algorithms" (b2_det ());
  print_group "B3 rank over GF(2) vs Q" (b3_rank ());
  print_group "B4 protocol channel overhead" (b4_channel ());
  print_group "B5 base-(-q) digits" (b5_negbase ());
  print_group "B6 Lemma 3.2 membership strategies" (b6_membership ())
