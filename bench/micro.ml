(* Bechamel micro-benchmarks for the substrate ablations called out in
   DESIGN.md section 6:

   B1  bigint multiplication: schoolbook vs Karatsuba across sizes
   B2  determinant: Bareiss vs CRT vs rational elimination
   B3  rank: GF(2) bit-matrix vs rational elimination
   B4  protocol channel overhead (send throughput)
   B5  base-(-q) digit extraction
   B6  subspace membership (the Lemma 3.2 inner loop)
   B7  exact-CC engine ablations: transposition table /
       canonicalization / pruning toggled off one at a time
       (wall-clock + search counters, not Bechamel — a single
       search is the unit of work)

   [run] returns every measurement as JSON rows so the harness can
   write a BENCH_micro.json artifact (bench/main.ml). *)

open Bechamel
open Toolkit

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module Bm = Commx_util.Bitmat
module Prng = Commx_util.Prng

let random_bigint g bits = B.random_bits g bits

let b1_mul () =
  let g = Prng.create 1 in
  let mk bits =
    let x = random_bigint g bits and y = random_bigint g bits in
    [
      Test.make
        ~name:(Printf.sprintf "mul-karatsuba-%db" bits)
        (Staged.stage (fun () -> ignore (B.mul x y)));
      Test.make
        ~name:(Printf.sprintf "mul-schoolbook-%db" bits)
        (Staged.stage (fun () -> ignore (B.mul_schoolbook x y)));
    ]
  in
  Test.make_grouped ~name:"B1-bigint-mul" ~fmt:"%s %s"
    (List.concat_map mk [ 256; 1024; 4096; 16384 ])

let random_zmatrix g dim bits =
  Zm.init dim dim (fun _ _ ->
      let v = B.random_bits g bits in
      if Prng.bool g then B.neg v else v)

let b2_det () =
  let g = Prng.create 2 in
  let mk dim =
    let m = random_zmatrix g dim 16 in
    let mq = Zm.to_qmatrix m in
    [
      Test.make
        ~name:(Printf.sprintf "det-bareiss-%d" dim)
        (Staged.stage (fun () -> ignore (Zm.det_bareiss m)));
      Test.make
        ~name:(Printf.sprintf "det-crt-%d" dim)
        (Staged.stage (fun () -> ignore (Zm.det_crt m)));
      Test.make
        ~name:(Printf.sprintf "det-rational-%d" dim)
        (Staged.stage (fun () -> ignore (Qm.det mq)));
    ]
  in
  Test.make_grouped ~name:"B2-determinant" ~fmt:"%s %s"
    (List.concat_map mk [ 6; 10; 14 ])

let b3_rank () =
  let g = Prng.create 3 in
  let mk dim =
    let bm = Bm.random g dim dim in
    let qm =
      Qm.init dim dim (fun i j ->
          if Bm.get bm i j then Commx_bigint.Rational.one
          else Commx_bigint.Rational.zero)
    in
    [
      Test.make
        ~name:(Printf.sprintf "rank-gf2-%d" dim)
        (Staged.stage (fun () -> ignore (Bm.rank bm)));
      Test.make
        ~name:(Printf.sprintf "rank-rational-%d" dim)
        (Staged.stage (fun () -> ignore (Qm.rank qm)));
    ]
  in
  Test.make_grouped ~name:"B3-rank" ~fmt:"%s %s"
    (List.concat_map mk [ 32; 64; 128 ])

let b4_channel () =
  let g = Prng.create 4 in
  let msg = Commx_util.Bitvec.random g 4096 in
  Test.make_grouped ~name:"B4-channel" ~fmt:"%s %s"
    [
      Test.make ~name:"send-4096b"
        (Staged.stage (fun () ->
             let p =
               {
                 Commx_comm.Protocol.name = "bench";
                 run =
                   (fun ch () () ->
                     ignore (Commx_comm.Protocol.send ch msg);
                     true);
               }
             in
             ignore (Commx_comm.Protocol.execute p () ())));
    ]

let b5_negbase () =
  let q = B.of_int 7 in
  let v = B.of_string "123456789123456789123456789" in
  Test.make_grouped ~name:"B5-negbase" ~fmt:"%s %s"
    [
      Test.make ~name:"to_neg_base-90digits"
        (Staged.stage (fun () ->
             ignore (Commx_core.Gadget.to_neg_base ~q ~digits:90 v)));
    ]

let b6_membership () =
  let p = Commx_core.Params.make ~n:9 ~k:3 in
  let g = Prng.create 6 in
  let f = Commx_core.Hard_instance.random_free g p in
  let normal = Commx_core.Truth_restricted.normal_vector p f.Commx_core.Hard_instance.c in
  Test.make_grouped ~name:"B6-membership" ~fmt:"%s %s"
    [
      Test.make ~name:"lemma32-subspace-mem"
        (Staged.stage (fun () ->
             ignore (Commx_core.Lemma32.criterion p f)));
      Test.make ~name:"lemma32-normal-dot"
        (Staged.stage (fun () ->
             ignore (Commx_core.Truth_restricted.singular_with ~normal p f)));
    ]

let run_group test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> est
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

module Json = Commx_util.Json

let report_group ~group title test =
  Printf.printf "\n== %s ==\n" title;
  let tab =
    Commx_util.Tab.make ~header:[ "benchmark"; "ns/run" ]
      [ Commx_util.Tab.Left; Commx_util.Tab.Right ]
  in
  let rows =
    List.map
      (fun (name, ns) ->
        Commx_util.Tab.add_row tab
          [ name; Commx_util.Tab.fmt_float ~digits:1 ns ];
        Json.Obj
          [ ("group", Json.String group); ("bench", Json.String name);
            ("ns_per_run", Json.Float ns) ])
      (run_group test)
  in
  Commx_util.Tab.print tab;
  rows

(* B7: the exact-CC engine's three optimizations toggled off one at a
   time, plus a deliberately starved table to exercise the eviction
   path.  A single searching instance is the unit of work (a 9x9
   density-0.18 matrix whose certified root bounds do NOT meet, so the
   game tree is actually explored — most random instances are decided
   by bounds alone and would measure nothing).  Bechamel is the wrong
   harness here: one search takes 0.1-3 s depending on the config, so
   we time a few whole runs and keep the best. *)
let b7_exact_cc () =
  let module E = Commx_comm.Exact_cc in
  let g = Prng.create 9003 in
  let m = Bm.init 9 9 (fun _ _ -> Prng.float g < 0.18) in
  let cfg ~table ~canonicalize ~prune ?(portfolio = true)
      ?(share_incumbent = true) ?table_budget () =
    { E.table; canonicalize; prune; portfolio; share_incumbent; table_budget }
  in
  let variants =
    [ ("full", E.default_config, 5);
      ("no-table", cfg ~table:false ~canonicalize:true ~prune:true (), 1);
      ("no-canon", cfg ~table:true ~canonicalize:false ~prune:true (), 3);
      ("no-prune", cfg ~table:true ~canonicalize:true ~prune:false (), 3);
      ( "table-budget-4k",
        cfg ~table:true ~canonicalize:true ~prune:true ~table_budget:4096 (),
        3 ) ]
  in
  Printf.printf "\n== B7 exact-CC engine ablations (9x9 search, best of k) ==\n";
  let tab =
    Commx_util.Tab.make
      ~header:[ "config"; "wall s"; "cc"; "nodes"; "tbl hits"; "evictions" ]
      Commx_util.Tab.[ Left; Right; Right; Right; Right; Right ]
  in
  let rows =
    List.map
      (fun (name, config, reps) ->
        let best = ref infinity in
        let value = ref (-1) in
        let last = ref None in
        for _ = 1 to reps do
          let t0 = Commx_util.Clock.now_s () in
          let v, st = E.search ~config m in
          let dt = Commx_util.Clock.now_s () -. t0 in
          if dt < !best then best := dt;
          value := v;
          last := Some st
        done;
        let st = Option.get !last in
        Commx_util.Tab.add_row tab
          [ name;
            Commx_util.Tab.fmt_float ~digits:4 !best;
            string_of_int !value;
            string_of_int st.E.nodes;
            string_of_int st.E.table_hits;
            string_of_int st.E.table_evictions ];
        Json.Obj
          [ ("group", Json.String "B7"); ("bench", Json.String ("exact-cc/" ^ name));
            ("wall_s", Json.Float !best); ("value", Json.Int !value);
            ("nodes", Json.Int st.E.nodes);
            ("table_hits", Json.Int st.E.table_hits);
            ("table_misses", Json.Int st.E.table_misses);
            ("table_evictions", Json.Int st.E.table_evictions) ])
      variants
  in
  Commx_util.Tab.print tab;
  (* All ablations must agree on the exact value — they only change how
     fast the search converges, never what it computes. *)
  let values =
    List.filter_map
      (function Json.Obj kvs -> List.assoc_opt "value" kvs | _ -> None)
      rows
  in
  (match values with
  | v :: rest when List.for_all (( = ) v) rest -> ()
  | _ -> failwith "B7: ablation configs disagree on the exact CC value");
  rows

(* B7-pool: the parallel layer's PR 10 changes ablated against the
   PR 4 engine they replace.  The board is a 12x12 GF(2) rank-5
   product (inner products of random 5-bit vectors) whose canonical
   9x10 form has 766 root moves — enough to spread over every strided
   group / worker deque — and whose exact CC equals its trivial upper
   bound, so the search is pure exhaustion: no lucky witness ends a
   run early and wall-clock is stable enough to gate.  The grid
   crosses the driver (strided vs work-stealing) with the lower-bound
   portfolio; "strided-baseline" additionally isolates group
   incumbents ([share_incumbent = false]), which reproduces the PR 4
   parallel engine node-for-node.  Strided node counts are
   jobs-invariant and emitted as [nodes]; stealing counts depend on
   scheduling, so those rows emit [steal_nodes] and the perf gate
   checks only the relational claim — steal-portfolio must beat the
   strided baseline on wall-clock. *)
let b7_pool_ablation () =
  let module E = Commx_comm.Exact_cc in
  let module Pool = Commx_util.Pool in
  let jobs = 4 in
  let m =
    let g = Prng.create 50035 in
    let k = 5 and n = 12 in
    let a = Array.init n (fun _ -> Prng.int g (1 lsl k)) in
    let b = Array.init n (fun _ -> Prng.int g (1 lsl k)) in
    Bm.init n n (fun i j ->
        let rec parity x acc =
          if x = 0 then acc else parity (x lsr 1) (acc lxor (x land 1))
        in
        parity (a.(i) land b.(j)) 0 = 1)
  in
  let cfg ~share_incumbent ~portfolio =
    { E.default_config with share_incumbent; portfolio }
  in
  let variants =
    [ ( "pool-strided-baseline", true,
        cfg ~share_incumbent:false ~portfolio:false );
      ("pool-strided-portfolio", true, cfg ~share_incumbent:true ~portfolio:true);
      ("pool-steal-no-portfolio", false, cfg ~share_incumbent:true ~portfolio:false);
      ("pool-steal-portfolio", false, cfg ~share_incumbent:true ~portfolio:true) ]
  in
  Printf.printf
    "\n== B7 pooled exact-CC drivers (12x12 rank-5 product, jobs=%d) ==\n" jobs;
  let tab =
    Commx_util.Tab.make
      ~header:[ "driver"; "wall s"; "cc"; "nodes" ]
      Commx_util.Tab.[ Left; Right; Right; Right ]
  in
  let rows =
    Pool.with_pool ~jobs (fun pool ->
        List.map
          (fun (name, deterministic, config) ->
            let t0 = Commx_util.Clock.now_s () in
            let v, st = E.search ~config ~pool ~deterministic m in
            let dt = Commx_util.Clock.now_s () -. t0 in
            let nodes_key = if deterministic then "nodes" else "steal_nodes" in
            Commx_util.Tab.add_row tab
              [ name;
                Commx_util.Tab.fmt_float ~digits:4 dt;
                string_of_int v;
                string_of_int st.E.nodes ];
            Json.Obj
              [ ("group", Json.String "B7");
                ("bench", Json.String ("exact-cc/" ^ name));
                ("wall_s", Json.Float dt); ("value", Json.Int v);
                (nodes_key, Json.Int st.E.nodes); ("jobs", Json.Int jobs) ])
          variants)
  in
  Commx_util.Tab.print tab;
  (* The drivers ablate scheduling and bounds, never the answer. *)
  let values =
    List.filter_map
      (function Json.Obj kvs -> List.assoc_opt "value" kvs | _ -> None)
      rows
  in
  (match values with
  | v :: rest when List.for_all (( = ) v) rest -> ()
  | _ -> failwith "B7-pool: pooled drivers disagree on the exact CC value");
  rows

(* B8: the observability plane's promise is "cheap when off" — every
   telemetry entry point on the exact-CC hot path (the per-search
   counters inside the engine plus the per-request histogram observe
   the serve daemon adds) must cost a load and a branch at Off.  Same
   unit of work as B7 (one whole 9x9 search, best of k); the row pair
   documents the Off-vs-Metrics delta, which should be noise. *)
let b8_telemetry_overhead () =
  let module E = Commx_comm.Exact_cc in
  let module Tel = Commx_util.Telemetry in
  let g = Prng.create 9003 in
  let m = Bm.init 9 9 (fun _ _ -> Prng.float g < 0.18) in
  let reps = 3 in
  let lat = Tel.histogram "bench.op_us" in
  let measure level =
    let prev = Tel.level () in
    Tel.set_level level;
    let best = ref infinity in
    let nodes = ref 0 in
    for _ = 1 to reps do
      let t0 = Commx_util.Clock.now_s () in
      let _, st = E.search m in
      (* the serve daemon's per-request accounting *)
      Tel.observe lat (int_of_float ((Commx_util.Clock.now_s () -. t0) *. 1e6));
      let dt = Commx_util.Clock.now_s () -. t0 in
      if dt < !best then best := dt;
      nodes := st.E.nodes
    done;
    Tel.set_level prev;
    (!best, !nodes)
  in
  Printf.printf
    "\n== B8 telemetry overhead on the exact-CC hot path (9x9, best of %d) ==\n"
    reps;
  let off, off_nodes = measure Tel.Off in
  let on, on_nodes = measure Tel.Metrics in
  let overhead_pct = (on -. off) /. off *. 100.0 in
  let tab =
    Commx_util.Tab.make
      ~header:[ "level"; "wall s"; "nodes"; "overhead %" ]
      Commx_util.Tab.[ Left; Right; Right; Right ]
  in
  Commx_util.Tab.add_row tab
    [ "off"; Commx_util.Tab.fmt_float ~digits:4 off; string_of_int off_nodes;
      "-" ];
  Commx_util.Tab.add_row tab
    [ "metrics"; Commx_util.Tab.fmt_float ~digits:4 on;
      string_of_int on_nodes;
      Commx_util.Tab.fmt_float ~digits:1 overhead_pct ];
  Commx_util.Tab.print tab;
  if off_nodes <> on_nodes then
    failwith "B8: telemetry level changed the search";
  [ Json.Obj
      [ ("group", Json.String "B8");
        ("bench", Json.String "exact-cc/telemetry-off");
        ("wall_s", Json.Float off); ("nodes", Json.Int off_nodes) ];
    Json.Obj
      [ ("group", Json.String "B8");
        ("bench", Json.String "exact-cc/telemetry-metrics");
        ("wall_s", Json.Float on); ("nodes", Json.Int on_nodes);
        ("overhead_pct", Json.Float overhead_pct) ] ]

let run () =
  print_endline "Micro-benchmarks (Bechamel; OLS ns/run estimates)";
  (* OCaml evaluates list elements right-to-left; sequence explicitly
     so the groups print (and run) in B1..B7 order. *)
  let b1 =
    report_group ~group:"B1" "B1 bigint multiplication (Karatsuba ablation)"
      (b1_mul ())
  in
  let b2 = report_group ~group:"B2" "B2 determinant algorithms" (b2_det ()) in
  let b3 = report_group ~group:"B3" "B3 rank over GF(2) vs Q" (b3_rank ()) in
  let b4 = report_group ~group:"B4" "B4 protocol channel overhead" (b4_channel ()) in
  let b5 = report_group ~group:"B5" "B5 base-(-q) digits" (b5_negbase ()) in
  let b6 =
    report_group ~group:"B6" "B6 Lemma 3.2 membership strategies"
      (b6_membership ())
  in
  let b7 = b7_exact_cc () in
  let b7p = b7_pool_ablation () in
  let b8 = b8_telemetry_overhead () in
  List.concat [ b1; b2; b3; b4; b5; b6; b7; b7p; b8 ]
