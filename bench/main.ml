(* Experiment harness.

   Usage:
     dune exec bench/main.exe                      # run every experiment
     dune exec bench/main.exe -- E3 E9             # run selected experiments
     dune exec bench/main.exe -- E3 --jobs 4       # domain-parallel hot loops
     dune exec bench/main.exe -- all --json out/   # also write BENCH_E*.json
     dune exec bench/main.exe -- micro             # Bechamel substrate benches
     dune exec bench/main.exe -- all micro         # everything

   Each experiment regenerates one of the paper's claims (this paper
   has no empirical tables; the reproducible units are the theorem,
   corollaries, lemmas and constructions — see DESIGN.md section 4 and
   EXPERIMENTS.md for the mapping).

   Seeded experiments derive per-work-item generators by splitting the
   master seed BEFORE fanning out, so the measured values in the tables
   and JSON artifacts are bit-identical at any --jobs value.  With
   --json DIR, each experiment E<i> additionally writes
   DIR/BENCH_E<i>.json containing the same measurements as structured
   rows plus wall-clock, job-count and supervision metadata (schema
   version 2, documented in EXPERIMENTS.md).

   Supervision (Commx_util.Supervisor): every experiment runs under an
   ok / failed / timed_out classification.  --timeout S bounds each
   attempt with a cooperative wall-clock deadline; --retries N retries
   transient (injected) failures with exponential backoff; --keep-going
   records failures and continues the sweep instead of aborting, the
   exit code (0 all ok / 1 otherwise) summarizing the run.  Artifacts
   are written atomically (temp file + rename) and stamped with a
   status, so --resume DIR skips experiments whose valid `status: ok`
   artifact already exists.  --inject-faults SEED (or the env var
   COMMX_INJECT_FAULTS) enables the deterministic fault injector that
   exercises all of the above reproducibly. *)

module Json = Commx_util.Json
module Pool = Commx_util.Pool
module Cli = Commx_util.Cli
module Faults = Commx_util.Faults
module Supervisor = Commx_util.Supervisor

let usage_exit () =
  Printf.eprintf
    "usage: main.exe [EXPERIMENT...] %s\n\
     available experiments: %s micro all\n"
    Cli.usage
    (String.concat " " (List.map fst Experiments.all));
  exit 1

let artifact_path dir id = Filename.concat dir (Printf.sprintf "BENCH_%s.json" id)

(* Artifact schema version 2: v1 plus status / error / attempts.  The
   write is atomic (Json.to_file: temp file + rename), so a crash
   mid-write never leaves a truncated BENCH_E*.json behind. *)
let write_artifact dir ~jobs ~wall_s ~attempts ~id outcome =
  Cli.mkdir_p dir;
  let path = artifact_path dir id in
  let status = Json.String (Supervisor.outcome_label outcome) in
  let error =
    match outcome with
    | Supervisor.Ok _ -> Json.Null
    | Supervisor.Failed { exn; _ } -> Json.String exn
    | Supervisor.Timed_out budget ->
        Json.String (Printf.sprintf "deadline exceeded (%.3f s budget)" budget)
  in
  let report_fields =
    match outcome with
    | Supervisor.Ok (r : Experiments.report) ->
        [ ("title", Json.String r.Experiments.title);
          ("params", Json.Obj r.Experiments.params);
          ("rows", Json.List r.Experiments.rows);
          ("fits", Json.Obj r.Experiments.fits) ]
    | Supervisor.Failed _ | Supervisor.Timed_out _ ->
        [ ("title", Json.Null); ("params", Json.Obj []); ("rows", Json.List []);
          ("fits", Json.Obj []) ]
  in
  let doc =
    Json.Obj
      ([ ("schema_version", Json.Int 2);
         ("experiment", Json.String id);
         ("status", status);
         ("error", error);
         ("attempts", Json.Int attempts);
         ("jobs", Json.Int jobs);
         ("wall_s", Json.Float wall_s) ]
      @ report_fields)
  in
  Json.to_file ~path doc;
  match outcome with
  | Supervisor.Ok r ->
      Printf.printf "[json] wrote %s (%d rows)\n" path
        (List.length r.Experiments.rows)
  | _ -> Printf.printf "[json] wrote %s (status: %s)\n" path
           (Supervisor.outcome_label outcome)

(* --resume DIR: an experiment is done iff its artifact exists, parses,
   and carries status "ok".  Truncated files cannot occur (atomic
   writes) but artifacts from killed runs may be absent or non-ok;
   both re-execute. *)
let resume_done dir id =
  let path = artifact_path dir id in
  Sys.file_exists path
  && (match Json.of_file path with
     | doc -> Json.member "status" doc = Some (Json.String "ok")
     | exception _ -> false)

let () =
  (* Without this, Supervisor's captured backtraces are empty strings
     and Failed artifacts lose their most useful debugging field. *)
  Printexc.record_backtrace true;
  let argv = List.tl (Array.to_list Sys.argv) in
  let opts, ids =
    match Cli.parse argv with
    | Ok v -> v
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        usage_exit ()
  in
  let ids = if ids = [] then [ "all" ] else ids in
  (* Validate EVERY requested id up front: a typo like `E99` must fail
     the whole invocation, not silently run the valid subset. *)
  let known id =
    id = "all" || id = "micro" || List.mem_assoc id Experiments.all
  in
  let unknown = List.filter (fun id -> not (known id)) ids in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s micro all\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst Experiments.all));
    exit 1
  end;
  let run_all = List.mem "all" ids in
  (* --resume DIR implies writing artifacts into DIR unless --json
     points elsewhere. *)
  let json_dir =
    match (opts.Cli.json_dir, opts.Cli.resume_dir) with
    | (Some _ as d), _ | None, d -> d
  in
  let faults =
    Option.map (fun seed -> Faults.create ~seed ()) opts.Cli.fault_seed
  in
  Printf.printf
    "Chu-Schnitger (SPAA 1989 / J. Complexity 1991) reproduction — \
     experiment harness (jobs: %d%s%s%s)\n"
    opts.Cli.jobs
    (match opts.Cli.timeout_s with
    | Some s -> Printf.sprintf ", timeout: %gs" s
    | None -> "")
    (if opts.Cli.retries > 0 then Printf.sprintf ", retries: %d" opts.Cli.retries
     else "")
    (match opts.Cli.fault_seed with
    | Some s -> Printf.sprintf ", fault injection seed: %d" s
    | None -> "");
  let ok = ref 0 and failed = ref 0 and timed_out = ref 0 and skipped = ref 0 in
  let aborted = ref false in
  let config =
    Supervisor.config ?timeout_s:opts.Cli.timeout_s ~retries:opts.Cli.retries ()
  in
  Pool.with_pool ~jobs:opts.Cli.jobs (fun pool ->
      Pool.set_faults pool faults;
      let ctx =
        { Experiments.pool;
          jobs = opts.Cli.jobs;
          tick = (fun () -> Pool.check_cancel pool) }
      in
      List.iter
        (fun (id, f) ->
          if (run_all || List.mem id ids) && not !aborted then
            match opts.Cli.resume_dir with
            | Some dir when resume_done dir id ->
                incr skipped;
                Printf.printf "[resume] %s: ok artifact present, skipping\n" id
            | _ ->
                let t0 = Unix.gettimeofday () in
                let outcome, attempts =
                  Supervisor.run ~config ~pool ~name:id (fun ~attempt ->
                      Faults.point faults
                        ~site:(Printf.sprintf "%s:attempt%d" id attempt);
                      f ctx)
                in
                let wall_s = Unix.gettimeofday () -. t0 in
                (match outcome with
                | Supervisor.Ok _ ->
                    incr ok;
                    Printf.printf "[%s] wall-clock: %.3f s\n" id wall_s
                | Supervisor.Failed { exn; backtrace } ->
                    incr failed;
                    Printf.printf
                      "[%s] FAILED after %d attempt(s): %s\n%s" id attempts exn
                      (if backtrace = "" then "" else backtrace ^ "\n");
                    if not opts.Cli.keep_going then aborted := true
                | Supervisor.Timed_out budget ->
                    incr timed_out;
                    Printf.printf
                      "[%s] TIMED OUT after %d attempt(s) (%.3f s budget, \
                       %.3f s elapsed)\n"
                      id attempts budget wall_s;
                    if not opts.Cli.keep_going then aborted := true);
                (match json_dir with
                | Some dir ->
                    write_artifact dir ~jobs:opts.Cli.jobs ~wall_s ~attempts ~id
                      outcome
                | None -> ()))
        Experiments.all);
  if List.mem "micro" ids && not !aborted then Micro.run ();
  if !failed + !timed_out + !skipped > 0 || opts.Cli.timeout_s <> None then
    Printf.printf
      "summary: %d ok, %d failed, %d timed out, %d skipped (resume)\n"
      !ok !failed !timed_out !skipped;
  if !aborted then
    Printf.eprintf "aborting after first failure (use --keep-going to continue)\n";
  exit (if !failed + !timed_out > 0 then 1 else 0)
