(* Experiment harness.

   Usage:
     dune exec bench/main.exe              # run every experiment E1-E11
     dune exec bench/main.exe -- E3 E9     # run selected experiments
     dune exec bench/main.exe -- micro     # Bechamel substrate benches
     dune exec bench/main.exe -- all micro # everything

   Each experiment regenerates one of the paper's claims (this paper
   has no empirical tables; the reproducible units are the theorem,
   corollaries, lemmas and constructions — see DESIGN.md section 4 and
   EXPERIMENTS.md for the mapping). *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = if args = [] then [ "all" ] else args in
  let run_all = List.mem "all" args in
  let ran = ref 0 in
  Printf.printf
    "Chu-Schnitger (SPAA 1989 / J. Complexity 1991) reproduction — \
     experiment harness\n";
  List.iter
    (fun (id, f) ->
      if run_all || List.mem id args then begin
        f ();
        incr ran
      end)
    Experiments.all;
  if List.mem "micro" args then begin
    Micro.run ();
    incr ran
  end;
  if !ran = 0 then begin
    Printf.eprintf
      "unknown experiment(s): %s\navailable: %s micro all\n"
      (String.concat " " args)
      (String.concat " " (List.map fst Experiments.all));
    exit 1
  end
