(* Experiment harness.

   Usage:
     dune exec bench/main.exe                      # run every experiment
     dune exec bench/main.exe -- E3 E9             # run selected experiments
     dune exec bench/main.exe -- E3 --jobs 4       # domain-parallel hot loops
     dune exec bench/main.exe -- all --json out/   # also write BENCH_E*.json
     dune exec bench/main.exe -- micro             # Bechamel substrate benches
     dune exec bench/main.exe -- all micro         # everything

   Each experiment regenerates one of the paper's claims (this paper
   has no empirical tables; the reproducible units are the theorem,
   corollaries, lemmas and constructions — see DESIGN.md section 4 and
   EXPERIMENTS.md for the mapping).

   Seeded experiments derive per-work-item generators by splitting the
   master seed BEFORE fanning out, so the measured values in the tables
   and JSON artifacts are bit-identical at any --jobs value.  With
   --json DIR, each experiment E<i> additionally writes
   DIR/BENCH_E<i>.json containing the same measurements as structured
   rows plus wall-clock, job-count and supervision metadata (schema
   version 2, documented in EXPERIMENTS.md).

   Supervision (Commx_util.Supervisor): every experiment runs under an
   ok / failed / timed_out classification.  --timeout S bounds each
   attempt with a cooperative monotonic-clock deadline; --retries N
   retries transient (injected) failures with exponential backoff;
   --keep-going records failures and continues the sweep instead of
   aborting, the exit code (0 all ok / 1 otherwise) summarizing the
   run.  Artifacts are written atomically (temp file + rename) and
   stamped with a status, so --resume DIR skips experiments whose valid
   `status: ok` artifact already exists.  --inject-faults SEED (or the
   env var COMMX_INJECT_FAULTS) enables the deterministic fault
   injector that exercises all of the above reproducibly.

   Telemetry (Commx_util.Telemetry): --trace FILE streams a Chrome
   trace-event JSON (chrome://tracing / Perfetto) of pool batches,
   supervisor attempts, protocol executions and experiment phases;
   --metrics prints the counter/histogram summary at end of run.
   Artifacts (schema version 3) embed a per-experiment metrics object:
   total protocol bits, wall-clock by phase, and every counter delta —
   bit-identical at any --jobs value.  With none of --trace / --metrics
   / --json, telemetry is off and costs nothing. *)

module Json = Commx_util.Json
module Pool = Commx_util.Pool
module Cli = Commx_util.Cli
module Clock = Commx_util.Clock
module Faults = Commx_util.Faults
module Supervisor = Commx_util.Supervisor
module Telemetry = Commx_util.Telemetry
module Artifact = Commx_util.Artifact

let usage_exit () =
  Printf.eprintf
    "usage: main.exe [EXPERIMENT...] %s\n\
     available experiments: %s micro all\n"
    Cli.usage
    (String.concat " " (List.map fst Experiments.all));
  exit 1

let write_artifact dir ~jobs ~wall_s ~attempts ~metrics ~id outcome =
  let status = Supervisor.outcome_label outcome in
  let error =
    match outcome with
    | Supervisor.Ok _ -> Json.Null
    | Supervisor.Failed { exn; _ } -> Json.String exn
    | Supervisor.Timed_out budget ->
        Json.String (Printf.sprintf "deadline exceeded (%.3f s budget)" budget)
  in
  let report_fields =
    match outcome with
    | Supervisor.Ok (r : Experiments.report) ->
        [ ("title", Json.String r.Experiments.title);
          ("params", Json.Obj r.Experiments.params);
          ("rows", Json.List r.Experiments.rows);
          ("fits", Json.Obj r.Experiments.fits) ]
    | Supervisor.Failed _ | Supervisor.Timed_out _ ->
        [ ("title", Json.Null); ("params", Json.Obj []); ("rows", Json.List []);
          ("fits", Json.Obj []) ]
  in
  Artifact.write ~dir ~id ~jobs ~wall_s ~attempts ~status ~error ?metrics
    ~report_fields ();
  let path = Artifact.path ~dir ~id in
  match outcome with
  | Supervisor.Ok r ->
      Printf.printf "[json] wrote %s (%d rows)\n" path
        (List.length r.Experiments.rows)
  | _ -> Printf.printf "[json] wrote %s (status: %s)\n" path status

let () =
  (* run_main: SIGPIPE hygiene — `main.exe ... | head` exits 0 when the
     consumer goes away instead of dying of a fatal signal. *)
  Commx_util.Sigguard.run_main @@ fun () ->
  (* Without this, Supervisor's captured backtraces are empty strings
     and Failed artifacts lose their most useful debugging field. *)
  Printexc.record_backtrace true;
  let argv = List.tl (Array.to_list Sys.argv) in
  let opts, ids =
    match Cli.parse argv with
    | Ok v -> v
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        usage_exit ()
  in
  if opts.Cli.help then begin
    Printf.printf
      "usage: main.exe [EXPERIMENT...] %s\n\
       available experiments: %s micro all\n%s\n"
      Cli.usage
      (String.concat " " (List.map fst Experiments.all))
      Cli.help_text;
    exit 0
  end;
  let ids = if ids = [] then [ "all" ] else ids in
  (* Validate EVERY requested id up front: a typo like `E99` must fail
     the whole invocation, not silently run the valid subset. *)
  let known id =
    id = "all" || id = "micro" || List.mem_assoc id Experiments.all
  in
  let unknown = List.filter (fun id -> not (known id)) ids in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s micro all\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst Experiments.all));
    exit 1
  end;
  let run_all = List.mem "all" ids in
  (* --resume DIR implies writing artifacts into DIR unless --json
     points elsewhere. *)
  let json_dir =
    match (opts.Cli.json_dir, opts.Cli.resume_dir) with
    | (Some _ as d), _ | None, d -> d
  in
  let faults =
    Option.map (fun seed -> Faults.create ~seed ()) opts.Cli.fault_seed
  in
  (* Telemetry level before any domain spawns (spawn publishes it). *)
  Telemetry.set_level (Cli.telemetry_level opts);
  let trace_writer =
    Option.map (fun path -> Telemetry.Trace.open_file ~path)
      opts.Cli.trace_file
  in
  let flush_trace () =
    match trace_writer with
    | Some w -> Telemetry.Trace.flush w (Telemetry.drain_events ())
    | None -> ignore (Telemetry.drain_events ())
  in
  Printf.printf
    "Chu-Schnitger (SPAA 1989 / J. Complexity 1991) reproduction — \
     experiment harness (jobs: %d%s%s%s)\n"
    opts.Cli.jobs
    (match opts.Cli.timeout_s with
    | Some s -> Printf.sprintf ", timeout: %gs" s
    | None -> "")
    (if opts.Cli.retries > 0 then Printf.sprintf ", retries: %d" opts.Cli.retries
     else "")
    (match opts.Cli.fault_seed with
    | Some s -> Printf.sprintf ", fault injection seed: %d" s
    | None -> "");
  let ok = ref 0 and failed = ref 0 and timed_out = ref 0 and skipped = ref 0 in
  let aborted = ref false in
  let config =
    Supervisor.config ?timeout_s:opts.Cli.timeout_s ~retries:opts.Cli.retries ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* Commit the trace whatever happened: a partial trace of a
         failed run is exactly what one wants to look at.  Close after
         a final drain so the last experiment's spans are included. *)
      match trace_writer with
      | Some w ->
          (try Telemetry.Trace.flush w (Telemetry.drain_events ())
           with e ->
             Telemetry.Trace.abort w;
             raise e);
          Telemetry.Trace.close w
      | None -> ())
    (fun () ->
      Pool.with_pool ~jobs:opts.Cli.jobs (fun pool ->
          Pool.set_faults pool faults;
          let ctx =
            { Experiments.pool;
              jobs = opts.Cli.jobs;
              tick = (fun () -> Pool.check_cancel pool) }
          in
          List.iter
            (fun (id, f) ->
              if (run_all || List.mem id ids) && not !aborted then
                match opts.Cli.resume_dir with
                | Some dir when Artifact.resume_done ~dir ~id ->
                    incr skipped;
                    Printf.printf
                      "[resume] %s: ok artifact present, skipping\n" id
                | _ ->
                    let counters_before = Telemetry.counters () in
                    ignore (Telemetry.drain_phases ());
                    let t0 = Clock.now_s () in
                    let outcome, attempts =
                      Telemetry.with_span "experiment"
                        ~args:[ ("id", id) ]
                        (fun () ->
                          Supervisor.run ~config ~pool ~name:id
                            (fun ~attempt ->
                              Faults.point faults
                                ~site:
                                  (Printf.sprintf "%s:attempt%d" id attempt);
                              f ctx))
                    in
                    let wall_s = Clock.now_s () -. t0 in
                    let metrics =
                      if Telemetry.metrics_on () then
                        Some
                          (Artifact.metrics
                             ~counters:
                               (Telemetry.diff_counters ~before:counters_before
                                  (Telemetry.counters ()))
                             ~phases:(Telemetry.drain_phases ()))
                      else None
                    in
                    flush_trace ();
                    (match outcome with
                    | Supervisor.Ok _ ->
                        incr ok;
                        Printf.printf "[%s] wall-clock: %.3f s\n" id wall_s
                    | Supervisor.Failed { exn; backtrace } ->
                        incr failed;
                        Printf.printf
                          "[%s] FAILED after %d attempt(s): %s\n%s" id attempts
                          exn
                          (if backtrace = "" then "" else backtrace ^ "\n");
                        if not opts.Cli.keep_going then aborted := true
                    | Supervisor.Timed_out budget ->
                        incr timed_out;
                        Printf.printf
                          "[%s] TIMED OUT after %d attempt(s) (%.3f s budget, \
                           %.3f s elapsed)\n"
                          id attempts budget wall_s;
                        if not opts.Cli.keep_going then aborted := true);
                    (match json_dir with
                    | Some dir ->
                        write_artifact dir ~jobs:opts.Cli.jobs ~wall_s ~attempts
                          ~metrics ~id outcome
                    | None -> ()))
            Experiments.all);
      if List.mem "micro" ids && not !aborted then begin
        let counters_before = Telemetry.counters () in
        ignore (Telemetry.drain_phases ());
        let t0 = Clock.now_s () in
        let rows = Micro.run () in
        let wall_s = Clock.now_s () -. t0 in
        let metrics =
          if Telemetry.metrics_on () then
            Some
              (Artifact.metrics
                 ~counters:
                   (Telemetry.diff_counters ~before:counters_before
                      (Telemetry.counters ()))
                 ~phases:(Telemetry.drain_phases ()))
          else None
        in
        flush_trace ();
        Printf.printf "[micro] wall-clock: %.3f s\n" wall_s;
        match json_dir with
        | Some dir ->
            Artifact.write ~dir ~id:"micro" ~jobs:opts.Cli.jobs ~wall_s
              ~attempts:1 ~status:"ok" ~error:Json.Null ?metrics
              ~report_fields:
                [ ("title",
                   Json.String
                     "Micro-benchmarks (Bechamel OLS + exact-CC ablations)");
                  ("params", Json.Obj []);
                  ("rows", Json.List rows);
                  ("fits", Json.Obj []) ]
              ();
            Printf.printf "[json] wrote %s (%d rows)\n"
              (Artifact.path ~dir ~id:"micro")
              (List.length rows)
        | None -> ()
      end);
  if opts.Cli.metrics then Telemetry.print_summary stdout;
  if !failed + !timed_out + !skipped > 0 || opts.Cli.timeout_s <> None then
    Printf.printf
      "summary: %d ok, %d failed, %d timed out, %d skipped (resume)\n"
      !ok !failed !timed_out !skipped;
  if !aborted then
    Printf.eprintf "aborting after first failure (use --keep-going to continue)\n";
  exit (if !failed + !timed_out > 0 then 1 else 0)
