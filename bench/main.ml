(* Experiment harness.

   Usage:
     dune exec bench/main.exe                      # run every experiment
     dune exec bench/main.exe -- E3 E9             # run selected experiments
     dune exec bench/main.exe -- E3 --jobs 4       # domain-parallel hot loops
     dune exec bench/main.exe -- all --json out/   # also write BENCH_E*.json
     dune exec bench/main.exe -- micro             # Bechamel substrate benches
     dune exec bench/main.exe -- all micro         # everything

   Each experiment regenerates one of the paper's claims (this paper
   has no empirical tables; the reproducible units are the theorem,
   corollaries, lemmas and constructions — see DESIGN.md section 4 and
   EXPERIMENTS.md for the mapping).

   Seeded experiments derive per-work-item generators by splitting the
   master seed BEFORE fanning out, so the measured values in the tables
   and JSON artifacts are bit-identical at any --jobs value.  With
   --json DIR, each experiment E<i> additionally writes
   DIR/BENCH_E<i>.json containing the same measurements as structured
   rows plus wall-clock and job-count metadata (schema documented in
   EXPERIMENTS.md). *)

module Json = Commx_util.Json
module Pool = Commx_util.Pool

let usage_exit () =
  Printf.eprintf
    "usage: main.exe [EXPERIMENT...] [--jobs N] [--json DIR]\n\
     available experiments: %s micro all\n"
    (String.concat " " (List.map fst Experiments.all));
  exit 1

(* Minimal flag parsing: experiments name their IDs positionally;
   --jobs/--json take a value either as the next argument or inline
   after '='. *)
let parse_args argv =
  let jobs = ref 1 and json_dir = ref None and ids = ref [] in
  let rec go = function
    | [] -> ()
    | "--jobs" :: v :: rest -> set_jobs v; go rest
    | "--json" :: v :: rest -> json_dir := Some v; go rest
    | [ ("--jobs" | "--json") ] ->
        Printf.eprintf "missing value for final flag\n";
        usage_exit ()
    | arg :: rest ->
        (match String.index_opt arg '=' with
        | Some i when String.length arg > 2 && String.sub arg 0 2 = "--" ->
            let key = String.sub arg 0 i in
            let v = String.sub arg (i + 1) (String.length arg - i - 1) in
            (match key with
            | "--jobs" -> set_jobs v
            | "--json" -> json_dir := Some v
            | _ ->
                Printf.eprintf "unknown flag: %s\n" key;
                usage_exit ())
        | _ ->
            if String.length arg > 1 && arg.[0] = '-' then begin
              Printf.eprintf "unknown flag: %s\n" arg;
              usage_exit ()
            end
            else ids := arg :: !ids);
        go rest
  and set_jobs v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> jobs := n
    | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %s\n" v;
        usage_exit ()
  in
  go argv;
  (!jobs, !json_dir, List.rev !ids)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_artifact dir ~jobs ~wall_s (r : Experiments.report) =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" r.id) in
  let doc =
    Json.Obj
      [ ("schema_version", Json.Int 1);
        ("experiment", Json.String r.Experiments.id);
        ("title", Json.String r.Experiments.title);
        ("jobs", Json.Int jobs);
        ("wall_s", Json.Float wall_s);
        ("params", Json.Obj r.Experiments.params);
        ("rows", Json.List r.Experiments.rows);
        ("fits", Json.Obj r.Experiments.fits) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "[json] wrote %s (%d rows)\n" path
    (List.length r.Experiments.rows)

let () =
  let jobs, json_dir, ids = parse_args (List.tl (Array.to_list Sys.argv)) in
  let ids = if ids = [] then [ "all" ] else ids in
  (* Validate EVERY requested id up front: a typo like `E99` must fail
     the whole invocation, not silently run the valid subset. *)
  let known id =
    id = "all" || id = "micro" || List.mem_assoc id Experiments.all
  in
  let unknown = List.filter (fun id -> not (known id)) ids in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s micro all\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst Experiments.all));
    exit 1
  end;
  let run_all = List.mem "all" ids in
  Printf.printf
    "Chu-Schnitger (SPAA 1989 / J. Complexity 1991) reproduction — \
     experiment harness (jobs: %d)\n"
    jobs;
  Pool.with_pool ~jobs (fun pool ->
      let ctx = { Experiments.pool; jobs } in
      List.iter
        (fun (id, f) ->
          if run_all || List.mem id ids then begin
            let t0 = Unix.gettimeofday () in
            let report = f ctx in
            let wall_s = Unix.gettimeofday () -. t0 in
            Printf.printf "[%s] wall-clock: %.3f s\n" id wall_s;
            match json_dir with
            | Some dir -> write_artifact dir ~jobs ~wall_s report
            | None -> ()
          end)
        Experiments.all);
  if List.mem "micro" ids then Micro.run ()
