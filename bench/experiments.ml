(* Experiment drivers E1-E11 (see DESIGN.md section 4 and
   EXPERIMENTS.md).  Each prints one or more tables in the format of
   the claims the paper makes; EXPERIMENTS.md records the paper-vs-
   measured comparison. *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Sub = Commx_linalg.Subspace
module Prng = Commx_util.Prng
module Stats = Commx_util.Stats
module Tab = Commx_util.Tab
module Protocol = Commx_comm.Protocol
module Randomized = Commx_comm.Randomized
module Tm = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Rect = Commx_comm.Rectangle
module Fooling = Commx_comm.Fooling
module Partition = Commx_comm.Partition
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35
module Tr = Commx_core.Truth_restricted
module L39 = Commx_core.Lemma39
module Padding = Commx_core.Padding
module Red = Commx_core.Reductions
module Bounds = Commx_core.Bounds
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint
module Identity = Commx_protocols.Identity
module Mat_verify = Commx_protocols.Mat_verify
module Solvability = Commx_protocols.Solvability
module Span = Commx_protocols.Span
module Layout = Commx_vlsi.Layout
module Tradeoff = Commx_vlsi.Tradeoff

let section id title =
  Printf.printf "\n===== %s: %s =====\n" id title

let fmt = Tab.fmt_float
let fint = Tab.fmt_int_thousands

let sweep_nk = [ (5, 2); (5, 3); (5, 4); (7, 2); (7, 3); (9, 2); (9, 3); (11, 2); (13, 2) ]

let mixed_pool = Commx_core.Workloads.mixed_pool

(* ------------------------------------------------------------------ *)
(* E1: Theorem 1.1 upper bound — trivial protocol cost = 2 k n^2       *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1" "Theorem 1.1 upper bound: deterministic cost Theta(k n^2)";
  let g = Prng.create 101 in
  let tab =
    Tab.make
      ~caption:
        "Trivial protocol on hard instances (bits measured by the channel)"
      ~header:[ "n"; "k"; "bits"; "k*n^2"; "bits/(k n^2)" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let points = ref [] in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let m = H.build_m p (H.random_free g p) in
      let a, b = Halves.split_pi0 m in
      let _, bits = Protocol.execute (Trivial.singularity ~k) a b in
      points := (float_of_int (k * n * n), float_of_int bits) :: !points;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; fint bits; fint (k * n * n);
          fmt (float_of_int bits /. float_of_int (k * n * n)) ])
    sweep_nk;
  Tab.print tab;
  let c, r2 = Stats.proportional_fit (Array.of_list !points) in
  Printf.printf "fit: bits = %.3f * k n^2   (R^2 = %.6f)\n" c r2;
  Printf.printf
    "paper: Theta(k n^2); trivial protocol achieves exactly 2 k n^2.\n"

(* ------------------------------------------------------------------ *)
(* E2: Theorem 1.1 lower bound — exact certificates on tiny truth      *)
(* matrices (claims 2a / 2b machinery)                                 *)
(* ------------------------------------------------------------------ *)

let tiny_singularity_tm ~k =
  let range = 1 lsl k in
  let halves =
    List.concat_map
      (fun a -> List.init range (fun b -> (a, b)))
      (List.init range (fun a -> a))
  in
  Tm.build halves halves (fun (a, c) (b, d) -> (a * d) - (b * c) = 0)

let e2 () =
  section "E2"
    "Theorem 1.1 lower bound: exact certificates on enumerable truth \
     matrices";
  let tab =
    Tab.make
      ~caption:
        "Singularity of 2x2 matrices of k-bit entries under pi_0; all \
         bounds in bits (certificates are unconditional for every \
         protocol)"
      ~header:
        [ "k"; "matrix"; "ones"; "max 1-rect"; "cover>="; "log-rank>=";
          "fooling>="; "upper" ]
      [ Tab.Right; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  List.iter
    (fun k ->
      let tm = tiny_singularity_tm ~k in
      let exact = k <= 2 in
      let report = Rank_bound.analyze tm ~exact_rect:exact in
      let m = Tm.to_bitmat tm in
      let max_rect =
        if exact then string_of_int (Rect.area (Rect.max_one_rectangle_exact m))
        else
          let g = Prng.create 7 in
          Printf.sprintf "~%d" (Rect.area (Rect.max_one_rectangle_greedy g m))
      in
      Tab.add_row tab
        [ string_of_int k;
          Printf.sprintf "%dx%d" (Tm.rows tm) (Tm.cols tm);
          fint report.Rank_bound.ones;
          max_rect;
          (if exact then fmt report.Rank_bound.cover_bits
           else "~" ^ fmt report.Rank_bound.cover_bits);
          fmt report.Rank_bound.log_rank;
          fmt report.Rank_bound.fooling_bits;
          string_of_int (2 * k) ])
    [ 1; 2; 3 ];
  Tab.print tab;
  (* The RESTRICTED truth matrix of Section 3 itself: all q^(half^2)
     rows, sampled columns.  (n=5, k=3) is the smallest setting with
     e_width >= 1; at (n=5, k=2) the E block is empty and all rows
     coincide — the construction needs E to differentiate rows. *)
  let g = Prng.create 102 in
  let p = Params.make ~n:5 ~k:3 in
  let rtm = Tr.sampled_truth_matrix g p ~columns:1200 in
  let bm = Tm.to_bitmat rtm in
  let ones = Commx_util.Bitmat.count_ones bm in
  let per_row = Tm.ones_per_row rtm in
  let populated = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 per_row in
  let max_row = Array.fold_left max 0 per_row in
  let gf2 = Commx_comm.Rank_bound.gf2_rank bm in
  let rect = Rect.max_one_rectangle_greedy g bm in
  Printf.printf
    "restricted truth matrix (n=5, k=3): %d rows (all C) x %d sampled \
     columns\n\
    \  ones: %d (density %.5f); %d/%d rows hit by the sample (max %d \
     ones/row) — claim 2a guarantees ones in EVERY row over the full \
     column space, which E7 verifies constructively\n\
    \  GF(2) rank: %d -> log-rank >= %.2f bits on the restricted \
     problem alone\n\
    \  largest 1-rectangle found (greedy): %d rows x %d cols = %d of %d \
     ones (claim 2b: no rectangle dominates the ones)\n"
    (Tm.rows rtm) (Tm.cols rtm) ones
    (Tm.density rtm)
    populated (Tm.rows rtm) max_row gf2
    (log (float_of_int gf2) /. log 2.0)
    (Array.length rect.Rect.row_set)
    (Array.length rect.Rect.col_set)
    (Rect.area rect) ones;
  Printf.printf
    "paper: claims (2a)/(2b) force d(f) so large that C >= Omega(k n^2);\n\
     here the certified bounds grow with k and sit within the 2k-bit \
     trivial upper bound.\n"

(* ------------------------------------------------------------------ *)
(* E3: randomized contrast — fingerprint cost and error                *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3"
    "Randomized contrast (Leighton): O(n^2 max(log n, log k)) bits";
  let g = Prng.create 103 in
  let epsilon = 0.05 in
  let tab =
    Tab.make
      ~caption:
        (Printf.sprintf
           "Fingerprint protocol, epsilon = %.2f (error measured on \
            nonsingular instances, 40 seeds each)"
           epsilon)
      ~header:
        [ "n"; "k"; "bits"; "n^2 max(lg n,lg k)"; "ratio"; "trivial";
          "saving"; "err" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let rp = Fingerprint.singularity ~n ~k ~epsilon in
      let cost = Fingerprint.cost ~n ~k ~epsilon in
      let shape = Fingerprint.expected_shape ~n ~k in
      let trivial = Trivial.exact_cost ~n ~k in
      let nonsingular =
        List.filter (fun m -> not (Zm.is_singular m)) (mixed_pool g p ~count:6)
      in
      let err =
        match nonsingular with
        | [] -> Float.nan
        | ms ->
            Randomized.worst_input_error g rp
              ~spec:(fun a b -> Zm.is_singular (Halves.join a b))
              ~seeds:40
              (List.map Halves.split_pi0 ms)
      in
      Tab.add_row tab
        [ string_of_int n; string_of_int k; fint cost; fmt shape;
          fmt (float_of_int cost /. shape);
          fint trivial;
          Tab.fmt_ratio (float_of_int trivial /. float_of_int cost);
          fmt ~digits:3 err ])
    [ (5, 2); (5, 4); (5, 8); (5, 16); (5, 32); (5, 64); (7, 2); (7, 8);
      (9, 2); (9, 16) ];
  Tab.print tab;
  (* Why a randomized shortcut exists at all: discrepancy.  Singularity
     truth matrices have high discrepancy (big monochromatic chunks —
     randomized-easy); contrast inner product, the canonical
     low-discrepancy randomized-HARD function. *)
  let module Disc = Commx_comm.Discrepancy in
  let sing1 = Tm.to_bitmat (tiny_singularity_tm ~k:1) in
  let sing2 = Tm.to_bitmat (tiny_singularity_tm ~k:2) in
  let ip3 = Disc.inner_product_matrix ~m:3 in
  let ip4 = Disc.inner_product_matrix ~m:4 in
  Printf.printf
    "discrepancy (exact): singularity k=1: %.3f, k=2: %.3f  vs  inner \
     product m=3: %.3f, m=4: %.3f\n\
     randomized lower bounds at eps=0.1: sing k=2: %.2f bits; IP m=4: \
     %.2f bits — singularity's high discrepancy leaves room for the \
     fingerprint shortcut, IP has none.\n"
    (Disc.discrepancy_exact sing1)
    (Disc.discrepancy_exact sing2)
    (Disc.discrepancy_exact ip3)
    (Disc.discrepancy_exact ip4)
    (Disc.randomized_lower_bound sing2 ~epsilon:0.1)
    (Disc.randomized_lower_bound ip4 ~epsilon:0.1);
  Printf.printf
    "paper: probabilistic complexity O(n^2 max(log n, log k)); the \
     deterministic/randomized gap grows with k (saving column) and the \
     one-sided error stays below epsilon.\n"

(* ------------------------------------------------------------------ *)
(* E4: Corollary 1.2 — reductions (a)-(e)                              *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4" "Corollary 1.2: det / rank / QR / SVD / LUP reductions";
  let g = Prng.create 104 in
  let problems =
    [ ("(a) determinant", Red.singular_via_det);
      ("(a') charpoly constant coeff", Red.singular_via_charpoly);
      ("(b) rank", Red.singular_via_rank);
      ("(b') Smith normal form", Red.singular_via_smith);
      ("(c) QR structure", Red.singular_via_qr);
      ("(d) SVD (float Jacobi)", Red.singular_via_svd);
      ("(d') SVD structure (exact, charpoly of M^T M)", Red.singular_via_svd_exact);
      ("(e) LUP", Red.singular_via_lup);
      ("(e') LUP nonzero structure", Red.singular_via_lup_structure) ]
  in
  let tab =
    Tab.make
      ~caption:
        "Each harder problem's output decides singularity (agreement with \
         ground truth over mixed pools; bits = same trivial protocol)"
      ~header:[ "problem"; "instances"; "agree"; "bits (n=7,k=2)" ]
      [ Tab.Left; Tab.Right; Tab.Right; Tab.Right ]
  in
  let p = Params.make ~n:7 ~k:2 in
  let pool = mixed_pool g p ~count:30 in
  List.iter
    (fun (name, via) ->
      let agree =
        List.for_all (fun m -> via m = Zm.is_singular m) pool
      in
      Tab.add_row tab
        [ name; string_of_int (List.length pool);
          (if agree then "30/30" else "MISMATCH");
          fint (Trivial.exact_cost ~n:7 ~k:2) ])
    problems;
  Tab.print tab;
  Printf.printf
    "paper: all inherit the Theta(k n^2) bound; (c)-(e) even when only \
     the nonzero structure of the factors is required.\n"

(* ------------------------------------------------------------------ *)
(* E5: Corollary 1.3 — solvability                                     *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5" "Corollary 1.3: linear-system solvability";
  let g = Prng.create 105 in
  let tab =
    Tab.make
      ~caption:
        "Hard instance M -> system (M', b); solvability answer vs \
         singularity ground truth"
      ~header:[ "n"; "k"; "instances"; "agree"; "solv. protocol bits" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let trials = 20 in
      let ok = ref 0 in
      for _ = 1 to trials do
        let f = H.random_free g p in
        let m = H.build_m p f in
        if Red.singular_via_solvability p f = Zm.is_singular m then incr ok
      done;
      (* protocol bits: trivial on the augmented (2n x 2n+1) system *)
      let m = H.build_m p (H.random_free g p) in
      let m', b = Red.solvability_instance m in
      let alice, bob = Solvability.split m' b in
      let _, bits = Protocol.execute (Solvability.trivial ~k) alice bob in
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int trials;
          Printf.sprintf "%d/%d" !ok trials; fint bits ])
    [ (5, 2); (7, 2); (7, 3); (9, 2) ];
  Tab.print tab;
  Printf.printf "paper: solvability also costs Theta(k n^2).\n"

(* ------------------------------------------------------------------ *)
(* E6: Lemma 3.2                                                       *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6" "Lemma 3.2: M singular <=> B.u in Span(A)";
  let g = Prng.create 106 in
  let tab =
    Tab.make
      ~caption:"Criterion vs exact rank computation on random free blocks"
      ~header:[ "n"; "k"; "trials"; "agree"; "singular frac" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let trials = 50 in
      let agree = ref 0 and singular = ref 0 in
      for t = 1 to trials do
        (* Random free blocks are almost never singular, so exercise
           both sides: completions (singular by Lemma 3.5a), perturbed
           completions, and raw randoms. *)
        let f =
          let raw = H.random_free g p in
          match t mod 3 with
          | 0 -> raw
          | 1 -> (L35.complete p ~c:raw.H.c ~e:raw.H.e).L35.free
          | _ ->
              let w = (L35.complete p ~c:raw.H.c ~e:raw.H.e).L35.free in
              let y = Array.copy w.H.y in
              y.(0) <- B.erem (B.add y.(0) B.one) p.Params.q;
              { w with H.y }
        in
        let truth = L32.is_singular_direct (H.build_m p f) in
        if truth then incr singular;
        if L32.criterion p f = truth then incr agree
      done;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int trials;
          Printf.sprintf "%d/%d" !agree trials;
          fmt (float_of_int !singular /. float_of_int trials) ])
    sweep_nk;
  Tab.print tab

(* ------------------------------------------------------------------ *)
(* E7: Lemma 3.5(a) completion                                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7" "Lemma 3.5(a): completion algorithm (given C, E find D, y)";
  let g = Prng.create 107 in
  let tab =
    Tab.make
      ~caption:
        "Completion success = D, y computed, A.x = B.u verified, M \
         singular (exact)"
      ~header:[ "n"; "k"; "trials"; "success" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let trials = 50 in
      let ok = ref 0 in
      for _ = 1 to trials do
        let f = H.random_free g p in
        let w = L35.complete p ~c:f.H.c ~e:f.H.e in
        if L35.check_witness p w then incr ok
      done;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int trials;
          Printf.sprintf "%d/%d" !ok trials ])
    sweep_nk;
  Tab.print tab;
  Printf.printf "paper: completion exists for ALL (C, E) — rate must be 1.\n"

(* ------------------------------------------------------------------ *)
(* E8: Lemmas 3.4 / 3.6 / 3.7                                          *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8" "Lemmas 3.4 / 3.6 / 3.7: the counting machinery";
  (* Lemma 3.4: distinct spans *)
  let tab34 =
    Tab.make
      ~caption:"Lemma 3.4: distinct Span(A) per C instance (exhaustive)"
      ~header:[ "n"; "k"; "C instances q^(half^2)"; "distinct spans"; "all distinct" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let all, distinct = Tr.lemma34_all_spans_distinct p in
      Tab.add_row tab34
        [ string_of_int n; string_of_int k; fint (Tr.count_c p);
          fint distinct; (if all then "yes" else "NO") ])
    [ (5, 2); (5, 3) ];
  Tab.print tab34;
  (* Lemma 3.6: intersection dimensions *)
  let g = Prng.create 108 in
  let tab36 =
    Tab.make
      ~caption:
        "Lemma 3.6: dim of the intersection of r random distinct spans \
         (n=7, k=2; ambient dim n=7, single span dim n-1=6; 5 trials \
         each, mean)"
      ~header:[ "r"; "mean dim"; "min"; "max" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let p = Params.make ~n:7 ~k:2 in
  List.iter
    (fun r ->
      let dims = Tr.lemma36_intersection_dims g p ~r ~trials:5 in
      let fdims = Array.map float_of_int dims in
      let lo, hi = Stats.min_max fdims in
      Tab.add_row tab36
        [ string_of_int r; fmt (Stats.mean fdims); fmt ~digits:0 lo;
          fmt ~digits:0 hi ])
    [ 1; 2; 4; 8; 16 ];
  Tab.print tab36;
  (* Lemma 3.5(b): per-row one-counts — exact where the agent-2 space
     is enumerable. *)
  let p52 = Params.make ~n:5 ~k:2 in
  let c1 = (H.random_free g p52).H.c in
  let c2 = (H.random_free g p52).H.c in
  let ones1, total = Tr.lemma35b_count_ones_exact p52 ~c:c1 in
  let ones2, _ = Tr.lemma35b_count_ones_exact p52 ~c:c2 in
  Printf.printf
    "Lemma 3.5(b) exact at (n=5, k=2): enumerating ALL %s agent-2 \
     assignments: %s ones per row (two sampled rows agree: %b; at this \
     degenerate e_width=0 setting all rows coincide).  Bounds: >= 1 \
     (claim 2a via completion), <= q^((n^2-1)/2) = %s.\n"
    (fint total) (fint ones1) (ones1 = ones2)
    (fint (Commx_util.Combi.power 3 12));
  let p53 = Params.make ~n:5 ~k:3 in
  let c3 = (H.random_free g p53).H.c in
  let s_ones, s_total = Tr.lemma35b_count_ones_sampled g p53 ~c:c3 ~trials:40000 in
  Printf.printf
    "Lemma 3.5(b) sampled at (n=5, k=3): %d / %d singular (fraction \
     %.5f) — sparse but populated, as the claim requires.\n"
    s_ones s_total
    (float_of_int s_ones /. float_of_int s_total);
  (* Lemma 3.7: projected fingerprints carried by 1-rectangle columns *)
  let all_cs = List.init 3 (fun _ -> (H.random_free g p).H.c) in
  let tab37 =
    Tab.make
      ~caption:
        "Lemma 3.7: distinct projected fingerprints p(B.u) = E.w among \
         2000 sampled columns of a 1-rectangle spanning r rows (n=7, \
         k=2; more rows -> fewer admissible columns)"
      ~header:[ "rectangle rows r"; "distinct projections" ]
      [ Tab.Right; Tab.Right ]
  in
  List.iter
    (fun r ->
      let cs = List.filteri (fun i _ -> i < r) all_cs in
      let count = Tr.lemma37_projected_count g p ~cs ~samples:2000 in
      Tab.add_row tab37 [ string_of_int r; fint count ])
    [ 1; 2; 3 ];
  Tab.print tab37;
  Printf.printf
    "paper: 3.4 exact equality, 3.6 dimension collapse with r, 3.7 \
     projection-limited columns — all reproduced.\n"

(* ------------------------------------------------------------------ *)
(* E9: Lemma 3.9 proper partitions                                     *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9" "Lemma 3.9: every even partition can be made proper";
  let g = Prng.create 109 in
  let tab =
    Tab.make
      ~caption:
        "Randomized greedy transform over random even partitions of the \
         (2n)^2 k input bits"
      ~header:
        [ "n"; "k"; "partitions"; "already proper"; "transformed"; "failed" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let dim = 2 * n in
      let total = 60 in
      let already = ref 0 and transformed = ref 0 and failed = ref 0 in
      for _ = 1 to total do
        let partition = Partition.random_even g (dim * dim * k) in
        if L39.is_proper p partition then incr already
        else
          match L39.find_transform g p partition with
          | Some t when L39.is_proper p (L39.apply_transform p partition t) ->
              incr transformed
          | _ -> incr failed
      done;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int total;
          string_of_int !already; string_of_int !transformed;
          string_of_int !failed ])
    [ (5, 2); (7, 2); (9, 2); (7, 3) ];
  Tab.print tab;
  Printf.printf "paper: failure count must be 0 (the lemma is universal).\n"

(* ------------------------------------------------------------------ *)
(* E10: VLSI area-time consequences                                    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10" "VLSI: AT^2 = Omega(I^2) and the Chazelle-Monier comparison";
  let tab =
    Tab.make
      ~caption:"Lower-bound comparison (arbitrary layouts vs CM boundary model)"
      ~header:
        [ "n"; "k"; "I=kn^2"; "AT^2 >="; "our T >="; "CM T >="; "our AT >=";
          "CM AT >=" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let r = Tradeoff.bound_row ~n ~k in
      Tab.add_row tab
        [ string_of_int n; string_of_int k; fmt ~digits:0 r.Tradeoff.info;
          fmt ~digits:0 r.Tradeoff.at2_bound; fmt ~digits:1 r.Tradeoff.our_t;
          fmt ~digits:0 r.Tradeoff.cm_t; fmt ~digits:0 r.Tradeoff.our_at;
          fmt ~digits:0 r.Tradeoff.cm_at ])
    [ (8, 2); (8, 8); (8, 32); (16, 2); (16, 8); (16, 32); (32, 8) ];
  Tab.print tab;
  let n, k = (5, 2) in
  let tab2 =
    Tab.make
      ~caption:
        (Printf.sprintf
           "Concrete chip designs reading the k(2n)^2 input bits (n=%d, \
            k=%d, I=%d): every design respects AT^2 >= I^2 = %d"
           n k (k * n * n) (k * n * n * k * n * n))
      ~header:[ "design"; "h x w"; "area"; "T >="; "AT^2"; "AT^2 / I^2" ]
      [ Tab.Left; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let info = Bounds.info_bits ~n ~k in
  let bound = Bounds.at2_lower ~info_bits:info in
  List.iter
    (fun d ->
      Tab.add_row tab2
        [ d.Tradeoff.name;
          Printf.sprintf "%dx%d" (Layout.h d.Tradeoff.layout)
            (Layout.w d.Tradeoff.layout);
          fint (Layout.area d.Tradeoff.layout);
          fmt ~digits:1 d.Tradeoff.time_estimate;
          fmt ~digits:0 (Tradeoff.at2 d);
          Tab.fmt_ratio (Tradeoff.at2 d /. bound) ])
    (Tradeoff.designs_for ~n ~k);
  Tab.print tab2;
  Printf.printf
    "paper: our bounds strengthen Chazelle-Monier whenever k grows: T = \
     Omega(sqrt(k) n) vs Omega(n), AT = Omega(k^1.5 n^3) vs Omega(n^2).\n"

(* ------------------------------------------------------------------ *)
(* E11: Section 1 baselines                                            *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11" "Baselines: identity, product verification, span problem";
  (* identity *)
  let tab_id =
    Tab.make
      ~caption:
        "Identity problem: fooling set = 2^m exactly (Vuillemin's \
         technique works here; the paper's point is it cannot reach \
         singularity)"
      ~header:[ "m"; "fooling size"; "= 2^m"; "log-rank"; "trivial bits";
                "rand bits" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun m ->
      let tm = Identity.truth_matrix ~m in
      let diag = Fooling.diagonal_candidate tm in
      let valid = Fooling.is_fooling_set tm diag in
      let report = Rank_bound.analyze tm ~exact_rect:false in
      Tab.add_row tab_id
        [ string_of_int m; string_of_int (List.length diag);
          (if valid && List.length diag = 1 lsl m then "yes" else "NO");
          fmt report.Rank_bound.log_rank; string_of_int m;
          string_of_int (Identity.fingerprint_bits ~m ~epsilon:0.05) ])
    [ 4; 6; 8 ];
  Tab.print tab_id;
  (* product verification *)
  let g = Prng.create 111 in
  let tab_pv =
    Tab.make
      ~caption:"A.B = C verification (n x n, k-bit): trivial vs Freivalds"
      ~header:[ "n"; "k"; "trivial bits"; "freivalds bits"; "saving"; "err" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let trivial_bits = k * n * n in
      let fr = Mat_verify.freivalds_cost ~n ~k ~epsilon:0.05 in
      (* error on wrong products *)
      let rp = Mat_verify.freivalds ~n ~k ~epsilon:0.05 in
      let wrong = ref 0 and total = 40 in
      for seed = 0 to total - 1 do
        let a = Zm.random_kbit g ~rows:n ~cols:n ~k in
        let b = Zm.random_kbit g ~rows:n ~cols:n ~k in
        let c = Zm.copy (Zm.mul a b) in
        Zm.set c 0 0 (B.add (Zm.get c 0 0) B.one);
        let got, _ =
          Protocol.execute (rp.Randomized.run_seeded ~seed) a (b, c)
        in
        if got then incr wrong
      done;
      Tab.add_row tab_pv
        [ string_of_int n; string_of_int k; fint trivial_bits; fint fr;
          Tab.fmt_ratio (float_of_int trivial_bits /. float_of_int fr);
          fmt ~digits:3 (float_of_int !wrong /. float_of_int total) ])
    [ (8, 4); (16, 4); (16, 8) ];
  Tab.print tab_pv;
  (* rank gadget sanity *)
  let a = Zm.random_kbit g ~rows:4 ~cols:4 ~k:3 in
  let b = Zm.random_kbit g ~rows:4 ~cols:4 ~k:3 in
  let gadget_true = Red.product_gadget a b (Zm.mul a b) in
  Printf.printf
    "rank gadget: rank [[I,B],[A,AB]] = %d (= n = 4); perturbing C gives \
     rank %d (> n).\n"
    (Zm.rank gadget_true)
    (let c = Zm.copy (Zm.mul a b) in
     Zm.set c 0 0 (B.add (Zm.get c 0 0) B.one);
     Zm.rank (Red.product_gadget a b c));
  (* span problem *)
  let tab_span =
    Tab.make
      ~caption:
        "Vector-space span problem on singularity instances (union spans \
         <=> M nonsingular)"
      ~header:[ "n"; "k"; "agree"; "trivial bits"; "basis-exchange bits" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let agree = ref true in
      let bits_trivial = ref 0 and bits_smart = ref 0 in
      List.iter
        (fun m ->
          let v1, v2 = Span.instance_of_matrix m in
          let got, c1 = Protocol.execute (Span.trivial ~k) v1 v2 in
          let got2, c2 = Protocol.execute (Span.dimension_exchange ~k) v1 v2 in
          bits_trivial := max !bits_trivial c1;
          bits_smart := max !bits_smart c2;
          if got <> (not (Zm.is_singular m)) || got2 <> got then agree := false)
        (mixed_pool g p ~count:6);
      Tab.add_row tab_span
        [ string_of_int n; string_of_int k;
          (if !agree then "yes" else "NO");
          fint !bits_trivial; fint !bits_smart ])
    [ (5, 2); (7, 2) ];
  Tab.print tab_span

(* ------------------------------------------------------------------ *)
(* E12: the Theorem 1.1 accounting ledger                              *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12" "Theorem 1.1 ledger: the Section 3 accounting, explicit";
  let module T11 = Commx_core.Theorem11 in
  let tab =
    Tab.make
      ~caption:
        "The quantities the proof manipulates, with explicit constants \
         (log2 scale); 'lower' is the derived log2 d(f) - 2, 'upper' the \
         trivial protocol.  The explicit O(n log n) losses make the bound \
         vacuous at small n and ~kn^2/8 asymptotically."
      ~header:
        [ "n"; "k"; "log2 rows"; "log2 ones/row"; "log2 r"; "log2 maxcols";
          "lower bits"; "upper bits"; "upper/lower" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let l = T11.ledger p in
      let lb x = float_of_int (B.bit_length x) in
      let upper = float_of_int (Bounds.trivial_upper_bits ~n ~k) in
      Tab.add_row tab
        [ string_of_int n; string_of_int k;
          fmt ~digits:0 (lb l.T11.rows);
          fmt ~digits:0 (lb l.T11.ones_per_row_min);
          fmt ~digits:0 (lb l.T11.r_threshold);
          fmt ~digits:0 (lb l.T11.wide_rect_max_cols);
          fmt ~digits:0 l.T11.comm_lower_bits;
          fmt ~digits:0 upper;
          (if l.T11.comm_lower_bits > 0.0 then
             Tab.fmt_ratio (upper /. l.T11.comm_lower_bits)
           else "inf (vacuous)") ])
    [ (15, 4); (25, 4); (51, 4); (101, 4); (201, 4); (201, 8); (401, 4) ];
  Tab.print tab;
  Printf.printf
    "paper: Omega(k n^2); the explicit-constant bound settles at ~k n^2/8 \
     bits, a constant factor 16 below the 2 k n^2 upper bound.\n"

(* ------------------------------------------------------------------ *)
(* E13: worst case vs typical case — the adaptive protocol             *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13"
    "Worst case vs typical case: adaptive certify-or-fall-back protocol";
  let g = Prng.create 113 in
  let tab =
    Tab.make
      ~caption:
        "Exact-answer adaptive protocol (mod-p full-rank certificate, \
         exact fallback).  Theorem 1.1 constrains the WORST case; random \
         inputs certify cheaply, the paper's singular instances always \
         pay in full."
      ~header:
        [ "n"; "k"; "instance class"; "trials"; "mean bits"; "worst bits";
          "trivial" ]
      [ Tab.Right; Tab.Right; Tab.Left; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let prime_bits = 8 in
      let run_class name gen trials =
        let costs =
          Array.init trials (fun seed ->
              let m = gen () in
              let a, b = Halves.split_pi0 m in
              let proto =
                Commx_protocols.Adaptive.singularity ~n ~k ~prime_bits ~seed
              in
              let got, cost = Protocol.execute proto a b in
              assert (got = Zm.is_singular m);
              float_of_int cost)
        in
        let worst = Array.fold_left Float.max 0.0 costs in
        Tab.add_row tab
          [ string_of_int n; string_of_int k; name; string_of_int trials;
            fmt (Stats.mean costs); fmt ~digits:0 worst;
            fint (Trivial.exact_cost ~n ~k) ]
      in
      run_class "random k-bit"
        (fun () -> Zm.random_kbit g ~rows:(2 * n) ~cols:(2 * n) ~k)
        20;
      run_class "hard singular (Lemma 3.5a)"
        (fun () ->
          let f = H.random_free g p in
          H.build_m p (L35.complete p ~c:f.H.c ~e:f.H.e).L35.free)
        20)
    [ (5, 16); (7, 16); (9, 32) ];
  Tab.print tab;
  Printf.printf
    "paper: the Theta(k n^2) bound is about worst-case inputs — and the \
     hard instances realize it against this adaptive protocol too.\n"

(* ------------------------------------------------------------------ *)
(* E14: exact deterministic CC vs every bound, at enumerable sizes     *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14"
    "Exact deterministic communication complexity (game-tree search) vs \
     all bounds";
  let module Exact_cc = Commx_comm.Exact_cc in
  let module Cover = Commx_comm.Cover in
  let tab =
    Tab.make
      ~caption:
        "The quantity Theorem 1.1 bounds, computed exactly by min-max \
         search over all protocol trees (tiny instances only; all values \
         in bits; d(f), N1, N0 are the exact partition/cover numbers of \
         Section 2)"
      ~header:
        [ "function"; "truth matrix"; "exact CC"; "one-way"; "d(f)"; "N1/N0";
          "cover>="; "log-rank>="; "fooling>="; "trivial<=" ]
      [ Tab.Left; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let add name tm trivial =
    let report = Rank_bound.analyze tm ~exact_rect:true in
    let m = Tm.to_bitmat tm in
    let d =
      if Tm.rows tm * Tm.cols tm <= 25 then
        string_of_int (Cover.min_partition m)
      else "-"
    in
    let covers =
      if Tm.rows tm * Tm.cols tm <= 60 then
        Printf.sprintf "%d/%d" (Cover.min_one_cover m) (Cover.min_zero_cover m)
      else "-"
    in
    Tab.add_row tab
      [ name;
        Printf.sprintf "%dx%d" (Tm.rows tm) (Tm.cols tm);
        string_of_int (Exact_cc.complexity_tm tm);
        string_of_int (Commx_comm.Discrepancy.one_way_complexity m);
        d; covers;
        fmt report.Rank_bound.cover_bits;
        fmt report.Rank_bound.log_rank;
        fmt report.Rank_bound.fooling_bits;
        string_of_int trivial ]
  in
  (* singularity of 2x2 matrices, 1-bit entries *)
  let sing_inputs = List.init 4 (fun v -> (v lsr 1, v land 1)) in
  add "singularity (2x2, k=1)"
    (Tm.build sing_inputs sing_inputs (fun (a, c) (b, d) ->
         (a * d) - (b * c) = 0))
    3;
  (* singularity with ternary entries {0,1,2} (between k=1 and k=2) *)
  let tern = List.concat_map (fun a -> List.init 3 (fun c -> (a, c))) [ 0; 1; 2 ] in
  add "singularity (2x2, entries 0..2)"
    (Tm.build tern tern (fun (a, c) (b, d) -> (a * d) - (b * c) = 0))
    5;
  (* equality *)
  let eq_inputs n = List.init n (fun i -> i) in
  add "equality (7 values)"
    (Tm.build (eq_inputs 7) (eq_inputs 7) ( = ))
    4;
  add "equality (8 values)"
    (Tm.build (eq_inputs 8) (eq_inputs 8) ( = ))
    4;
  (* greater-than *)
  add "greater-than (7 values)"
    (Tm.build (eq_inputs 7) (eq_inputs 7) ( > ))
    4;
  (* disjointness on 3-bit sets *)
  add "disjointness (3-bit sets)"
    (Tm.build (eq_inputs 8) (eq_inputs 8) (fun x y -> x land y = 0))
    4;
  (* solvability of a 1-equation system a x = b over 1-bit values:
     Alice holds a, Bob holds b *)
  add "1x1 solvability (2-bit)"
    (Tm.build (eq_inputs 4) (eq_inputs 4) (fun a b -> b mod max 1 a = 0 || (a = 0 && b = 0)))
    3;
  Tab.print tab;
  Printf.printf
    "The exact value always sits between every certificate and the \
     trivial protocol; for tiny singularity the sandwich is TIGHT \
     (3 = 3), the statement of Theorem 1.1 in miniature.\n"

(* ------------------------------------------------------------------ *)
(* E15: minimizing over partitions — the unrestricted complexity       *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15"
    "Unrestricted complexity = min over even partitions (tiny instance, \
     exhaustive)";
  let module Exact_cc = Commx_comm.Exact_cc in
  (* 2x2 matrices of 1-bit entries: 4 cells e0..e3 (column-major:
     e0 = M[0][0], e1 = M[1][0], e2 = M[0][1], e3 = M[1][1]); enumerate
     all C(4,2) = 6 even partitions, compute the exact CC of the truth
     matrix each induces, take the minimum — the quantity Theorem 1.1
     speaks about. *)
  let singular cells =
    (* cells.(i) is entry e_i *)
    (cells.(0) * cells.(3)) - (cells.(2) * cells.(1)) = 0
  in
  let tab =
    Tab.make
      ~caption:
        "Singularity of 2x2 one-bit matrices: exact CC per even partition \
         of the 4 entries (agent 1's entries listed); pi_0 = {e0,e1}"
      ~header:[ "agent 1 reads"; "truth matrix"; "exact CC" ]
      [ Tab.Left; Tab.Left; Tab.Right ]
  in
  let best = ref max_int in
  let pairs = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  List.iter
    (fun (p1, p2) ->
      let alice_cells = [ p1; p2 ] in
      let bob_cells =
        List.filter (fun c -> not (List.mem c alice_cells)) [ 0; 1; 2; 3 ]
      in
      (* truth matrix: rows = assignments of alice's 2 bits *)
      let assignments = [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
      let tm =
        Commx_comm.Truth_matrix.build assignments assignments
          (fun (a1, a2) (b1, b2) ->
            let cells = Array.make 4 0 in
            List.iteri
              (fun idx c -> cells.(c) <- (match idx with 0 -> a1 | _ -> a2))
              alice_cells;
            List.iteri
              (fun idx c -> cells.(c) <- (match idx with 0 -> b1 | _ -> b2))
              bob_cells;
            singular cells)
      in
      let cc = Exact_cc.complexity_tm tm in
      if cc < !best then best := cc;
      Tab.add_row tab
        [ Printf.sprintf "{e%d, e%d}" p1 p2;
          Printf.sprintf "%dx%d"
            (Commx_comm.Truth_matrix.rows tm)
            (Commx_comm.Truth_matrix.cols tm);
          string_of_int cc ])
    pairs;
  Tab.print tab;
  Printf.printf
    "unrestricted complexity = min over partitions = %d bits.\n\
     The diagonal partitions {e0,e3} and {e1,e2} are one bit cheaper than \
     pi_0 at this toy size (knowing a*d or b*c collapses the matrix) — \
     consistent with Lemma 3.9, which only promises that NO partition \
     beats pi_0 by more than a constant factor.\n"
    !best

let all = [
  ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
  ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
  ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15);
]
