(* Experiment drivers E1-E15 (see DESIGN.md section 4 and
   EXPERIMENTS.md).  Each prints one or more tables in the format of
   the claims the paper makes AND returns a {!report} of the same
   measurements as JSON rows; EXPERIMENTS.md records the paper-vs-
   measured comparison and the harness writes BENCH_E<id>.json
   artifacts from the reports (see bench/main.ml).

   Experiments receive a {!ctx} carrying the domain pool.  The
   embarrassingly parallel stages (exhaustive enumeration in E2/E8,
   Monte-Carlo sweeps in E3, random partitions in E9, independent
   game-tree searches in E14/E15) fan out over the pool; every
   randomized stage draws from per-item generators pre-split from the
   experiment's master seed, so results are bit-identical at any
   --jobs. *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Sub = Commx_linalg.Subspace
module Prng = Commx_util.Prng
module Tel = Commx_util.Telemetry
module Stats = Commx_util.Stats
module Tab = Commx_util.Tab
module Json = Commx_util.Json
module Pool = Commx_util.Pool
module Protocol = Commx_comm.Protocol
module Randomized = Commx_comm.Randomized
module Tm = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Rect = Commx_comm.Rectangle
module Fooling = Commx_comm.Fooling
module Partition = Commx_comm.Partition
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35
module Tr = Commx_core.Truth_restricted
module L39 = Commx_core.Lemma39
module Padding = Commx_core.Padding
module Red = Commx_core.Reductions
module Bounds = Commx_core.Bounds
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint
module Identity = Commx_protocols.Identity
module Mat_verify = Commx_protocols.Mat_verify
module Solvability = Commx_protocols.Solvability
module Span = Commx_protocols.Span
module Layout = Commx_vlsi.Layout
module Tradeoff = Commx_vlsi.Tradeoff

(* ------------------------------------------------------------------ *)
(* Harness plumbing: execution context and machine-readable reports    *)
(* ------------------------------------------------------------------ *)

(* [tick] is the cooperative cancellation poll: sequential sections
   (the per-(n,k) sweeps that never enter the pool) call it once per
   outer iteration so a supervised timeout can stop them between
   configurations; pool batches poll the same ambient token between
   chunks on their own.  It raises [Pool.Cancelled] when the
   supervisor's deadline has passed, and is a no-op otherwise. *)
type ctx = { pool : Pool.t; jobs : int; tick : unit -> unit }

type report = {
  id : string;
  title : string;
  params : (string * Json.t) list;  (* experiment-level parameters *)
  rows : Json.t list;               (* one object per measured row *)
  fits : (string * Json.t) list;    (* fitted constants, slopes, R^2 *)
}

let section id title =
  Printf.printf "\n===== %s: %s =====\n" id title

let fmt = Tab.fmt_float
let fint = Tab.fmt_int_thousands

let jint i = Json.Int i
let jfloat f = Json.Float f
let jstr s = Json.String s
let jbool b = Json.Bool b
let row fields = Json.Obj fields

let sweep_nk = [ (5, 2); (5, 3); (5, 4); (7, 2); (7, 3); (9, 2); (9, 3); (11, 2); (13, 2) ]

let json_sweep sweep =
  Json.List (List.map (fun (n, k) -> row [ ("n", jint n); ("k", jint k) ]) sweep)

let mixed_pool = Commx_core.Workloads.mixed_pool

(* Phase accounting (Tel.with_phase): every experiment tags its stages
   as "generate" (instance construction), "enumerate" (exhaustive /
   Monte-Carlo sweeps), or "verify" (checking claims against ground
   truth), so artifacts and --metrics break wall-clock down uniformly.
   Durations are wall-clock-ish: unlike counters they are NOT expected
   to be identical across --jobs values. *)
let gen f = Tel.with_phase "generate" f
let enum f = Tel.with_phase "enumerate" f
let verify f = Tel.with_phase "verify" f

(* ------------------------------------------------------------------ *)
(* E1: Theorem 1.1 upper bound — trivial protocol cost = 2 k n^2       *)
(* ------------------------------------------------------------------ *)

let e1 ctx =
  let title = "Theorem 1.1 upper bound: deterministic cost Theta(k n^2)" in
  section "E1" title;
  let g = Prng.create 101 in
  let tab =
    Tab.make
      ~caption:
        "Trivial protocol on hard instances (bits measured by the channel)"
      ~header:[ "n"; "k"; "bits"; "k*n^2"; "bits/(k n^2)" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let points = ref [] in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let m = gen (fun () -> H.build_m p (H.random_free g p)) in
      let a, b = Halves.split_pi0 m in
      let _, bits =
        verify (fun () -> Protocol.execute (Trivial.singularity ~k) a b)
      in
      points := (float_of_int (k * n * n), float_of_int bits) :: !points;
      rows :=
        row
          [ ("n", jint n); ("k", jint k); ("bits", jint bits);
            ("kn2", jint (k * n * n));
            ("ratio", jfloat (float_of_int bits /. float_of_int (k * n * n))) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; fint bits; fint (k * n * n);
          fmt (float_of_int bits /. float_of_int (k * n * n)) ])
    sweep_nk;
  Tab.print tab;
  let c, r2 = Stats.proportional_fit (Array.of_list !points) in
  Printf.printf "fit: bits = %.3f * k n^2   (R^2 = %.6f)\n" c r2;
  Printf.printf
    "paper: Theta(k n^2); trivial protocol achieves exactly 2 k n^2.\n";
  { id = "E1"; title;
    params = [ ("seed", jint 101); ("sweep", json_sweep sweep_nk) ];
    rows = List.rev !rows;
    fits = [ ("bits_per_kn2", jfloat c); ("r2", jfloat r2) ] }

(* ------------------------------------------------------------------ *)
(* E2: Theorem 1.1 lower bound — exact certificates on tiny truth      *)
(* matrices (claims 2a / 2b machinery)                                 *)
(* ------------------------------------------------------------------ *)

let tiny_singularity_tm ~k =
  let range = 1 lsl k in
  let halves =
    List.concat_map
      (fun a -> List.init range (fun b -> (a, b)))
      (List.init range (fun a -> a))
  in
  Tm.build halves halves (fun (a, c) (b, d) -> (a * d) - (b * c) = 0)

let e2 ctx =
  let title =
    "Theorem 1.1 lower bound: exact certificates on enumerable truth \
     matrices"
  in
  section "E2" title;
  let tab =
    Tab.make
      ~caption:
        "Singularity of 2x2 matrices of k-bit entries under pi_0; all \
         bounds in bits (certificates are unconditional for every \
         protocol)"
      ~header:
        [ "k"; "matrix"; "ones"; "max 1-rect"; "cover>="; "log-rank>=";
          "fooling>="; "upper" ]
      [ Tab.Right; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  (* Each k is an independent enumeration of the full instance space:
     fan the three out over the pool (k=3 analyzes a 64x64 matrix). *)
  let per_k =
    enum (fun () ->
        Pool.parallel_map ctx.pool
          (fun k ->
            let tm = tiny_singularity_tm ~k in
            let exact = k <= 2 in
            let report = Rank_bound.analyze tm ~exact_rect:exact in
            let m = Tm.to_bitmat tm in
            let rect_area =
              if exact then Rect.area (Rect.max_one_rectangle_exact m)
              else
                let g = Prng.create 7 in
                Rect.area (Rect.max_one_rectangle_greedy g m)
            in
            (k, Tm.rows tm, Tm.cols tm, exact, report, rect_area))
          [| 1; 2; 3 |])
  in
  let rows = ref [] in
  Array.iter
    (fun (k, trows, tcols, exact, report, rect_area) ->
      rows :=
        row
          [ ("kind", jstr "tiny"); ("k", jint k); ("rows", jint trows);
            ("cols", jint tcols); ("exact_rect", jbool exact);
            ("ones", jint report.Rank_bound.ones);
            ("max_one_rect", jint rect_area);
            ("cover_bits", jfloat report.Rank_bound.cover_bits);
            ("log_rank", jfloat report.Rank_bound.log_rank);
            ("fooling_bits", jfloat report.Rank_bound.fooling_bits);
            ("upper_bits", jint (2 * k)) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int k;
          Printf.sprintf "%dx%d" trows tcols;
          fint report.Rank_bound.ones;
          (if exact then string_of_int rect_area
           else Printf.sprintf "~%d" rect_area);
          (if exact then fmt report.Rank_bound.cover_bits
           else "~" ^ fmt report.Rank_bound.cover_bits);
          fmt report.Rank_bound.log_rank;
          fmt report.Rank_bound.fooling_bits;
          string_of_int (2 * k) ])
    per_k;
  Tab.print tab;
  (* The RESTRICTED truth matrix of Section 3 itself: all q^(half^2)
     rows, sampled columns.  (n=5, k=3) is the smallest setting with
     e_width >= 1; at (n=5, k=2) the E block is empty and all rows
     coincide — the construction needs E to differentiate rows. *)
  ctx.tick ();
  let g = Prng.create 102 in
  let p = Params.make ~n:5 ~k:3 in
  let rtm = gen (fun () -> Tr.sampled_truth_matrix g p ~columns:1200) in
  let bm = Tm.to_bitmat rtm in
  let ones = Commx_util.Bitmat.count_ones bm in
  let per_row = Tm.ones_per_row rtm in
  let populated = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 per_row in
  let max_row = Array.fold_left max 0 per_row in
  let gf2 = verify (fun () -> Commx_comm.Rank_bound.gf2_rank bm) in
  let rect = verify (fun () -> Rect.max_one_rectangle_greedy g bm) in
  rows :=
    row
      [ ("kind", jstr "restricted"); ("n", jint 5); ("k", jint 3);
        ("rows", jint (Tm.rows rtm)); ("cols", jint (Tm.cols rtm));
        ("ones", jint ones); ("density", jfloat (Tm.density rtm));
        ("populated_rows", jint populated); ("max_ones_per_row", jint max_row);
        ("gf2_rank", jint gf2);
        ("log_rank", jfloat (log (float_of_int gf2) /. log 2.0));
        ("greedy_rect_rows", jint (Array.length rect.Rect.row_set));
        ("greedy_rect_cols", jint (Array.length rect.Rect.col_set));
        ("greedy_rect_ones", jint (Rect.area rect)) ]
    :: !rows;
  Printf.printf
    "restricted truth matrix (n=5, k=3): %d rows (all C) x %d sampled \
     columns\n\
    \  ones: %d (density %.5f); %d/%d rows hit by the sample (max %d \
     ones/row) — claim 2a guarantees ones in EVERY row over the full \
     column space, which E7 verifies constructively\n\
    \  GF(2) rank: %d -> log-rank >= %.2f bits on the restricted \
     problem alone\n\
    \  largest 1-rectangle found (greedy): %d rows x %d cols = %d of %d \
     ones (claim 2b: no rectangle dominates the ones)\n"
    (Tm.rows rtm) (Tm.cols rtm) ones
    (Tm.density rtm)
    populated (Tm.rows rtm) max_row gf2
    (log (float_of_int gf2) /. log 2.0)
    (Array.length rect.Rect.row_set)
    (Array.length rect.Rect.col_set)
    (Rect.area rect) ones;
  Printf.printf
    "paper: claims (2a)/(2b) force d(f) so large that C >= Omega(k n^2);\n\
     here the certified bounds grow with k and sit within the 2k-bit \
     trivial upper bound.\n";
  { id = "E2"; title;
    params = [ ("seed", jint 102); ("sampled_columns", jint 1200) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E3: randomized contrast — fingerprint cost and error                *)
(* ------------------------------------------------------------------ *)

let e3 ctx =
  let title =
    "Randomized contrast (Leighton): O(n^2 max(log n, log k)) bits"
  in
  section "E3" title;
  let g = Prng.create 103 in
  let epsilon = 0.05 in
  let seeds = 40 in
  let tab =
    Tab.make
      ~caption:
        (Printf.sprintf
           "Fingerprint protocol, epsilon = %.2f (error measured on \
            nonsingular instances, %d seeds each)"
           epsilon seeds)
      ~header:
        [ "n"; "k"; "bits"; "n^2 max(lg n,lg k)"; "ratio"; "trivial";
          "saving"; "err" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  let configs =
    [| (5, 2); (5, 4); (5, 8); (5, 16); (5, 32); (5, 64); (7, 2); (7, 8);
       (9, 2); (9, 16) |]
  in
  (* Monte-Carlo sweep: each (n, k) runs 6 instance draws x 40 seeds of
     the fingerprint protocol — independent across configs, so map them
     over the pool with per-config generators. *)
  let measured =
    verify (fun () ->
    Pool.parallel_map_seeded ctx.pool g
      (fun g (n, k) ->
        let p = Params.make ~n ~k in
        let rp = Fingerprint.singularity ~n ~k ~epsilon in
        let cost = Fingerprint.cost ~n ~k ~epsilon in
        let shape = Fingerprint.expected_shape ~n ~k in
        let trivial = Trivial.exact_cost ~n ~k in
        let nonsingular =
          List.filter (fun m -> not (Zm.is_singular m)) (mixed_pool g p ~count:6)
        in
        let err =
          match nonsingular with
          | [] -> Float.nan
          | ms ->
              Randomized.worst_input_error g rp
                ~spec:(fun a b -> Zm.is_singular (Halves.join a b))
                ~seeds
                (List.map Halves.split_pi0 ms)
        in
        (n, k, cost, shape, trivial, err))
      configs)
  in
  let rows = ref [] in
  Array.iter
    (fun (n, k, cost, shape, trivial, err) ->
      rows :=
        row
          [ ("n", jint n); ("k", jint k); ("bits", jint cost);
            ("shape", jfloat shape);
            ("ratio", jfloat (float_of_int cost /. shape));
            ("trivial_bits", jint trivial);
            ("saving", jfloat (float_of_int trivial /. float_of_int cost));
            ("err", jfloat err) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; fint cost; fmt shape;
          fmt (float_of_int cost /. shape);
          fint trivial;
          Tab.fmt_ratio (float_of_int trivial /. float_of_int cost);
          fmt ~digits:3 err ])
    measured;
  Tab.print tab;
  (* Why a randomized shortcut exists at all: discrepancy.  Singularity
     truth matrices have high discrepancy (big monochromatic chunks —
     randomized-easy); contrast inner product, the canonical
     low-discrepancy randomized-HARD function. *)
  let module Disc = Commx_comm.Discrepancy in
  let sing1 = Tm.to_bitmat (tiny_singularity_tm ~k:1) in
  let sing2 = Tm.to_bitmat (tiny_singularity_tm ~k:2) in
  let ip3 = Disc.inner_product_matrix ~m:3 in
  let ip4 = Disc.inner_product_matrix ~m:4 in
  let disc_sing1 = enum (fun () -> Disc.discrepancy_exact sing1) in
  let disc_sing2 = enum (fun () -> Disc.discrepancy_exact sing2) in
  let disc_ip3 = enum (fun () -> Disc.discrepancy_exact ip3) in
  let disc_ip4 = enum (fun () -> Disc.discrepancy_exact ip4) in
  let rlb_sing2 = Disc.randomized_lower_bound sing2 ~epsilon:0.1 in
  let rlb_ip4 = Disc.randomized_lower_bound ip4 ~epsilon:0.1 in
  Printf.printf
    "discrepancy (exact): singularity k=1: %.3f, k=2: %.3f  vs  inner \
     product m=3: %.3f, m=4: %.3f\n\
     randomized lower bounds at eps=0.1: sing k=2: %.2f bits; IP m=4: \
     %.2f bits — singularity's high discrepancy leaves room for the \
     fingerprint shortcut, IP has none.\n"
    disc_sing1 disc_sing2 disc_ip3 disc_ip4 rlb_sing2 rlb_ip4;
  Printf.printf
    "paper: probabilistic complexity O(n^2 max(log n, log k)); the \
     deterministic/randomized gap grows with k (saving column) and the \
     one-sided error stays below epsilon.\n";
  { id = "E3"; title;
    params = [ ("seed", jint 103); ("epsilon", jfloat epsilon);
               ("seeds_per_input", jint seeds); ("instances", jint 6) ];
    rows = List.rev !rows;
    fits =
      [ ("discrepancy_sing_k1", jfloat disc_sing1);
        ("discrepancy_sing_k2", jfloat disc_sing2);
        ("discrepancy_ip_m3", jfloat disc_ip3);
        ("discrepancy_ip_m4", jfloat disc_ip4);
        ("rand_lower_sing_k2", jfloat rlb_sing2);
        ("rand_lower_ip_m4", jfloat rlb_ip4) ] }

(* ------------------------------------------------------------------ *)
(* E4: Corollary 1.2 — reductions (a)-(e)                              *)
(* ------------------------------------------------------------------ *)

let e4 ctx =
  let title = "Corollary 1.2: det / rank / QR / SVD / LUP reductions" in
  section "E4" title;
  let g = Prng.create 104 in
  let problems =
    [ ("(a) determinant", Red.singular_via_det);
      ("(a') charpoly constant coeff", Red.singular_via_charpoly);
      ("(b) rank", Red.singular_via_rank);
      ("(b') Smith normal form", Red.singular_via_smith);
      ("(c) QR structure", Red.singular_via_qr);
      ("(d) SVD (float Jacobi)", Red.singular_via_svd);
      ("(d') SVD structure (exact, charpoly of M^T M)", Red.singular_via_svd_exact);
      ("(e) LUP", Red.singular_via_lup);
      ("(e') LUP nonzero structure", Red.singular_via_lup_structure) ]
  in
  let tab =
    Tab.make
      ~caption:
        "Each harder problem's output decides singularity (agreement with \
         ground truth over mixed pools; bits = same trivial protocol)"
      ~header:[ "problem"; "instances"; "agree"; "bits (n=7,k=2)" ]
      [ Tab.Left; Tab.Right; Tab.Right; Tab.Right ]
  in
  let p = Params.make ~n:7 ~k:2 in
  let pool = gen (fun () -> mixed_pool g p ~count:30) in
  let rows = ref [] in
  List.iter
    (fun (name, via) ->
      ctx.tick ();
      let agree =
        verify (fun () -> List.for_all (fun m -> via m = Zm.is_singular m) pool)
      in
      rows :=
        row
          [ ("problem", jstr name); ("instances", jint (List.length pool));
            ("agree", jbool agree);
            ("bits", jint (Trivial.exact_cost ~n:7 ~k:2)) ]
        :: !rows;
      Tab.add_row tab
        [ name; string_of_int (List.length pool);
          (if agree then "30/30" else "MISMATCH");
          fint (Trivial.exact_cost ~n:7 ~k:2) ])
    problems;
  Tab.print tab;
  Printf.printf
    "paper: all inherit the Theta(k n^2) bound; (c)-(e) even when only \
     the nonzero structure of the factors is required.\n";
  { id = "E4"; title;
    params = [ ("seed", jint 104); ("n", jint 7); ("k", jint 2);
               ("pool_size", jint 30) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E5: Corollary 1.3 — solvability                                     *)
(* ------------------------------------------------------------------ *)

let e5 ctx =
  let title = "Corollary 1.3: linear-system solvability" in
  section "E5" title;
  let g = Prng.create 105 in
  let tab =
    Tab.make
      ~caption:
        "Hard instance M -> system (M', b); solvability answer vs \
         singularity ground truth"
      ~header:[ "n"; "k"; "instances"; "agree"; "solv. protocol bits" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let trials = 20 in
      let ok = ref 0 in
      verify (fun () ->
          for _ = 1 to trials do
            let f = H.random_free g p in
            let m = H.build_m p f in
            if Red.singular_via_solvability p f = Zm.is_singular m then incr ok
          done);
      (* protocol bits: trivial on the augmented (2n x 2n+1) system *)
      let m = H.build_m p (H.random_free g p) in
      let m', b = Red.solvability_instance m in
      let alice, bob = Solvability.split m' b in
      let _, bits = Protocol.execute (Solvability.trivial ~k) alice bob in
      rows :=
        row
          [ ("n", jint n); ("k", jint k); ("trials", jint trials);
            ("agree", jint !ok); ("bits", jint bits) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int trials;
          Printf.sprintf "%d/%d" !ok trials; fint bits ])
    [ (5, 2); (7, 2); (7, 3); (9, 2) ];
  Tab.print tab;
  Printf.printf "paper: solvability also costs Theta(k n^2).\n";
  { id = "E5"; title; params = [ ("seed", jint 105) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E6: Lemma 3.2                                                       *)
(* ------------------------------------------------------------------ *)

let e6 ctx =
  let title = "Lemma 3.2: M singular <=> B.u in Span(A)" in
  section "E6" title;
  let g = Prng.create 106 in
  let tab =
    Tab.make
      ~caption:"Criterion vs exact rank computation on random free blocks"
      ~header:[ "n"; "k"; "trials"; "agree"; "singular frac" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let trials = 50 in
      let agree = ref 0 and singular = ref 0 in
      verify (fun () ->
      for t = 1 to trials do
        (* Random free blocks are almost never singular, so exercise
           both sides: completions (singular by Lemma 3.5a), perturbed
           completions, and raw randoms. *)
        let f =
          let raw = H.random_free g p in
          match t mod 3 with
          | 0 -> raw
          | 1 -> (L35.complete p ~c:raw.H.c ~e:raw.H.e).L35.free
          | _ ->
              let w = (L35.complete p ~c:raw.H.c ~e:raw.H.e).L35.free in
              let y = Array.copy w.H.y in
              y.(0) <- B.erem (B.add y.(0) B.one) p.Params.q;
              { w with H.y }
        in
        let truth = L32.is_singular_direct (H.build_m p f) in
        if truth then incr singular;
        if L32.criterion p f = truth then incr agree
      done);
      rows :=
        row
          [ ("n", jint n); ("k", jint k); ("trials", jint trials);
            ("agree", jint !agree); ("singular", jint !singular) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int trials;
          Printf.sprintf "%d/%d" !agree trials;
          fmt (float_of_int !singular /. float_of_int trials) ])
    sweep_nk;
  Tab.print tab;
  { id = "E6"; title;
    params = [ ("seed", jint 106); ("sweep", json_sweep sweep_nk) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E7: Lemma 3.5(a) completion                                         *)
(* ------------------------------------------------------------------ *)

let e7 ctx =
  let title = "Lemma 3.5(a): completion algorithm (given C, E find D, y)" in
  section "E7" title;
  let g = Prng.create 107 in
  let tab =
    Tab.make
      ~caption:
        "Completion success = D, y computed, A.x = B.u verified, M \
         singular (exact)"
      ~header:[ "n"; "k"; "trials"; "success" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let trials = 50 in
      let ok = ref 0 in
      verify (fun () ->
          for _ = 1 to trials do
            let f = H.random_free g p in
            let w = L35.complete p ~c:f.H.c ~e:f.H.e in
            if L35.check_witness p w then incr ok
          done);
      rows :=
        row
          [ ("n", jint n); ("k", jint k); ("trials", jint trials);
            ("success", jint !ok) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int trials;
          Printf.sprintf "%d/%d" !ok trials ])
    sweep_nk;
  Tab.print tab;
  Printf.printf "paper: completion exists for ALL (C, E) — rate must be 1.\n";
  { id = "E7"; title;
    params = [ ("seed", jint 107); ("sweep", json_sweep sweep_nk) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E8: Lemmas 3.4 / 3.6 / 3.7                                          *)
(* ------------------------------------------------------------------ *)

let e8 ctx =
  let title = "Lemmas 3.4 / 3.6 / 3.7: the counting machinery" in
  section "E8" title;
  let rows = ref [] in
  (* Lemma 3.4: distinct spans — exhaustive over all q^(half^2) C
     instances; the two settings enumerate independently. *)
  let tab34 =
    Tab.make
      ~caption:"Lemma 3.4: distinct Span(A) per C instance (exhaustive)"
      ~header:[ "n"; "k"; "C instances q^(half^2)"; "distinct spans"; "all distinct" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let l34 =
    enum (fun () ->
        Pool.parallel_map ctx.pool
          (fun (n, k) ->
            let p = Params.make ~n ~k in
            let all, distinct = Tr.lemma34_all_spans_distinct p in
            (n, k, Tr.count_c p, distinct, all))
          [| (5, 2); (5, 3) |])
  in
  Array.iter
    (fun (n, k, count, distinct, all) ->
      rows :=
        row
          [ ("lemma", jstr "3.4"); ("n", jint n); ("k", jint k);
            ("c_instances", jint count); ("distinct_spans", jint distinct);
            ("all_distinct", jbool all) ]
        :: !rows;
      Tab.add_row tab34
        [ string_of_int n; string_of_int k; fint count;
          fint distinct; (if all then "yes" else "NO") ])
    l34;
  Tab.print tab34;
  (* Lemma 3.6: intersection dimensions — each r runs independent
     random trials, so fan the r values out with per-r generators. *)
  let g = Prng.create 108 in
  let tab36 =
    Tab.make
      ~caption:
        "Lemma 3.6: dim of the intersection of r random distinct spans \
         (n=7, k=2; ambient dim n=7, single span dim n-1=6; 5 trials \
         each, mean)"
      ~header:[ "r"; "mean dim"; "min"; "max" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let p = Params.make ~n:7 ~k:2 in
  let l36 =
    enum (fun () ->
        Pool.parallel_map_seeded ctx.pool g
          (fun g r -> (r, Tr.lemma36_intersection_dims g p ~r ~trials:5))
          [| 1; 2; 4; 8; 16 |])
  in
  Array.iter
    (fun (r, dims) ->
      let fdims = Array.map float_of_int dims in
      let lo, hi = Stats.min_max fdims in
      rows :=
        row
          [ ("lemma", jstr "3.6"); ("r", jint r);
            ("mean_dim", jfloat (Stats.mean fdims));
            ("min_dim", jfloat lo); ("max_dim", jfloat hi) ]
        :: !rows;
      Tab.add_row tab36
        [ string_of_int r; fmt (Stats.mean fdims); fmt ~digits:0 lo;
          fmt ~digits:0 hi ])
    l36;
  Tab.print tab36;
  (* Lemma 3.5(b): per-row one-counts — exact where the agent-2 space
     is enumerable; the two sampled rows enumerate independently. *)
  let p52 = Params.make ~n:5 ~k:2 in
  let c1 = (H.random_free g p52).H.c in
  let c2 = (H.random_free g p52).H.c in
  let l35b =
    enum (fun () ->
        Pool.parallel_map ctx.pool
          (fun c -> Tr.lemma35b_count_ones_exact p52 ~c)
          [| c1; c2 |])
  in
  let ones1, total = l35b.(0) in
  let ones2, _ = l35b.(1) in
  rows :=
    row
      [ ("lemma", jstr "3.5b-exact"); ("n", jint 5); ("k", jint 2);
        ("total", jint total); ("ones_row1", jint ones1);
        ("ones_row2", jint ones2) ]
    :: !rows;
  Printf.printf
    "Lemma 3.5(b) exact at (n=5, k=2): enumerating ALL %s agent-2 \
     assignments: %s ones per row (two sampled rows agree: %b; at this \
     degenerate e_width=0 setting all rows coincide).  Bounds: >= 1 \
     (claim 2a via completion), <= q^((n^2-1)/2) = %s.\n"
    (fint total) (fint ones1) (ones1 = ones2)
    (fint (Commx_util.Combi.power 3 12));
  let p53 = Params.make ~n:5 ~k:3 in
  let c3 = (H.random_free g p53).H.c in
  let s_ones, s_total =
    enum (fun () -> Tr.lemma35b_count_ones_sampled g p53 ~c:c3 ~trials:40000)
  in
  rows :=
    row
      [ ("lemma", jstr "3.5b-sampled"); ("n", jint 5); ("k", jint 3);
        ("trials", jint s_total); ("ones", jint s_ones) ]
    :: !rows;
  Printf.printf
    "Lemma 3.5(b) sampled at (n=5, k=3): %d / %d singular (fraction \
     %.5f) — sparse but populated, as the claim requires.\n"
    s_ones s_total
    (float_of_int s_ones /. float_of_int s_total);
  (* Lemma 3.7: projected fingerprints carried by 1-rectangle columns —
     independent column samples per rectangle size r. *)
  let all_cs = List.init 3 (fun _ -> (H.random_free g p).H.c) in
  let tab37 =
    Tab.make
      ~caption:
        "Lemma 3.7: distinct projected fingerprints p(B.u) = E.w among \
         2000 sampled columns of a 1-rectangle spanning r rows (n=7, \
         k=2; more rows -> fewer admissible columns)"
      ~header:[ "rectangle rows r"; "distinct projections" ]
      [ Tab.Right; Tab.Right ]
  in
  let l37 =
    enum (fun () ->
        Pool.parallel_map_seeded ctx.pool g
          (fun g r ->
            let cs = List.filteri (fun i _ -> i < r) all_cs in
            (r, Tr.lemma37_projected_count g p ~cs ~samples:2000))
          [| 1; 2; 3 |])
  in
  Array.iter
    (fun (r, count) ->
      rows :=
        row
          [ ("lemma", jstr "3.7"); ("rect_rows", jint r);
            ("distinct_projections", jint count) ]
        :: !rows;
      Tab.add_row tab37 [ string_of_int r; fint count ])
    l37;
  Tab.print tab37;
  Printf.printf
    "paper: 3.4 exact equality, 3.6 dimension collapse with r, 3.7 \
     projection-limited columns — all reproduced.\n";
  { id = "E8"; title; params = [ ("seed", jint 108) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E9: Lemma 3.9 proper partitions                                     *)
(* ------------------------------------------------------------------ *)

let e9 ctx =
  let title = "Lemma 3.9: every even partition can be made proper" in
  section "E9" title;
  let g = Prng.create 109 in
  let tab =
    Tab.make
      ~caption:
        "Randomized greedy transform over random even partitions of the \
         (2n)^2 k input bits"
      ~header:
        [ "n"; "k"; "partitions"; "already proper"; "transformed"; "failed" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let dim = 2 * n in
      let total = 60 in
      (* Each partition draw + greedy transform is independent: one
         generator per trial, split deterministically from the master. *)
      let outcomes =
        gen (fun () ->
            Pool.parallel_map_seeded ctx.pool g
              (fun g () ->
                let partition = Partition.random_even g (dim * dim * k) in
                if L39.is_proper p partition then `Already
                else
                  match L39.find_transform g p partition with
                  | Some t
                    when L39.is_proper p (L39.apply_transform p partition t) ->
                      `Transformed
                  | _ -> `Failed)
              (Array.make total ()))
      in
      let count v = Array.fold_left (fun a o -> if o = v then a + 1 else a) 0 outcomes in
      let already = count `Already
      and transformed = count `Transformed
      and failed = count `Failed in
      rows :=
        row
          [ ("n", jint n); ("k", jint k); ("partitions", jint total);
            ("already_proper", jint already); ("transformed", jint transformed);
            ("failed", jint failed) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; string_of_int total;
          string_of_int already; string_of_int transformed;
          string_of_int failed ])
    [ (5, 2); (7, 2); (9, 2); (7, 3) ];
  Tab.print tab;
  Printf.printf "paper: failure count must be 0 (the lemma is universal).\n";
  { id = "E9"; title;
    params = [ ("seed", jint 109); ("partitions_per_config", jint 60) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E10: VLSI area-time consequences                                    *)
(* ------------------------------------------------------------------ *)

let e10 ctx =
  let title = "VLSI: AT^2 = Omega(I^2) and the Chazelle-Monier comparison" in
  section "E10" title;
  let tab =
    Tab.make
      ~caption:"Lower-bound comparison (arbitrary layouts vs CM boundary model)"
      ~header:
        [ "n"; "k"; "I=kn^2"; "AT^2 >="; "our T >="; "CM T >="; "our AT >=";
          "CM AT >=" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let r = verify (fun () -> Tradeoff.bound_row ~n ~k) in
      rows :=
        row
          [ ("kind", jstr "bound"); ("n", jint n); ("k", jint k);
            ("info_bits", jfloat r.Tradeoff.info);
            ("at2_bound", jfloat r.Tradeoff.at2_bound);
            ("our_t", jfloat r.Tradeoff.our_t);
            ("cm_t", jfloat r.Tradeoff.cm_t);
            ("our_at", jfloat r.Tradeoff.our_at);
            ("cm_at", jfloat r.Tradeoff.cm_at) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k; fmt ~digits:0 r.Tradeoff.info;
          fmt ~digits:0 r.Tradeoff.at2_bound; fmt ~digits:1 r.Tradeoff.our_t;
          fmt ~digits:0 r.Tradeoff.cm_t; fmt ~digits:0 r.Tradeoff.our_at;
          fmt ~digits:0 r.Tradeoff.cm_at ])
    [ (8, 2); (8, 8); (8, 32); (16, 2); (16, 8); (16, 32); (32, 8) ];
  Tab.print tab;
  let n, k = (5, 2) in
  let tab2 =
    Tab.make
      ~caption:
        (Printf.sprintf
           "Concrete chip designs reading the k(2n)^2 input bits (n=%d, \
            k=%d, I=%d): every design respects AT^2 >= I^2 = %d"
           n k (k * n * n) (k * n * n * k * n * n))
      ~header:[ "design"; "h x w"; "area"; "T >="; "AT^2"; "AT^2 / I^2" ]
      [ Tab.Left; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let info = Bounds.info_bits ~n ~k in
  let bound = Bounds.at2_lower ~info_bits:info in
  List.iter
    (fun d ->
      rows :=
        row
          [ ("kind", jstr "design"); ("n", jint n); ("k", jint k);
            ("design", jstr d.Tradeoff.name);
            ("h", jint (Layout.h d.Tradeoff.layout));
            ("w", jint (Layout.w d.Tradeoff.layout));
            ("area", jint (Layout.area d.Tradeoff.layout));
            ("time_lower", jfloat d.Tradeoff.time_estimate);
            ("at2", jfloat (Tradeoff.at2 d));
            ("at2_over_bound", jfloat (Tradeoff.at2 d /. bound)) ]
        :: !rows;
      Tab.add_row tab2
        [ d.Tradeoff.name;
          Printf.sprintf "%dx%d" (Layout.h d.Tradeoff.layout)
            (Layout.w d.Tradeoff.layout);
          fint (Layout.area d.Tradeoff.layout);
          fmt ~digits:1 d.Tradeoff.time_estimate;
          fmt ~digits:0 (Tradeoff.at2 d);
          Tab.fmt_ratio (Tradeoff.at2 d /. bound) ])
    (Tradeoff.designs_for ~n ~k);
  Tab.print tab2;
  Printf.printf
    "paper: our bounds strengthen Chazelle-Monier whenever k grows: T = \
     Omega(sqrt(k) n) vs Omega(n), AT = Omega(k^1.5 n^3) vs Omega(n^2).\n";
  { id = "E10"; title; params = []; rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E11: Section 1 baselines                                            *)
(* ------------------------------------------------------------------ *)

let e11 ctx =
  let title = "Baselines: identity, product verification, span problem" in
  section "E11" title;
  let rows = ref [] in
  (* identity *)
  let tab_id =
    Tab.make
      ~caption:
        "Identity problem: fooling set = 2^m exactly (Vuillemin's \
         technique works here; the paper's point is it cannot reach \
         singularity)"
      ~header:[ "m"; "fooling size"; "= 2^m"; "log-rank"; "trivial bits";
                "rand bits" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun m ->
      let tm = gen (fun () -> Identity.truth_matrix ~m) in
      let diag = Fooling.diagonal_candidate tm in
      let valid = verify (fun () -> Fooling.is_fooling_set tm diag) in
      let report = verify (fun () -> Rank_bound.analyze tm ~exact_rect:false) in
      rows :=
        row
          [ ("kind", jstr "identity"); ("m", jint m);
            ("fooling_size", jint (List.length diag));
            ("fooling_valid", jbool (valid && List.length diag = 1 lsl m));
            ("log_rank", jfloat report.Rank_bound.log_rank);
            ("trivial_bits", jint m);
            ("rand_bits", jint (Identity.fingerprint_bits ~m ~epsilon:0.05)) ]
        :: !rows;
      Tab.add_row tab_id
        [ string_of_int m; string_of_int (List.length diag);
          (if valid && List.length diag = 1 lsl m then "yes" else "NO");
          fmt report.Rank_bound.log_rank; string_of_int m;
          string_of_int (Identity.fingerprint_bits ~m ~epsilon:0.05) ])
    [ 4; 6; 8 ];
  Tab.print tab_id;
  (* product verification *)
  let g = Prng.create 111 in
  let tab_pv =
    Tab.make
      ~caption:"A.B = C verification (n x n, k-bit): trivial vs Freivalds"
      ~header:[ "n"; "k"; "trivial bits"; "freivalds bits"; "saving"; "err" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let trivial_bits = k * n * n in
      let fr = Mat_verify.freivalds_cost ~n ~k ~epsilon:0.05 in
      (* error on wrong products *)
      let rp = Mat_verify.freivalds ~n ~k ~epsilon:0.05 in
      let wrong = ref 0 and total = 40 in
      verify (fun () ->
      for seed = 0 to total - 1 do
        let a = Zm.random_kbit g ~rows:n ~cols:n ~k in
        let b = Zm.random_kbit g ~rows:n ~cols:n ~k in
        let c = Zm.copy (Zm.mul a b) in
        Zm.set c 0 0 (B.add (Zm.get c 0 0) B.one);
        let got, _ =
          Protocol.execute (rp.Randomized.run_seeded ~seed) a (b, c)
        in
        if got then incr wrong
      done);
      rows :=
        row
          [ ("kind", jstr "product_verification"); ("n", jint n);
            ("k", jint k); ("trivial_bits", jint trivial_bits);
            ("freivalds_bits", jint fr);
            ("saving", jfloat (float_of_int trivial_bits /. float_of_int fr));
            ("err", jfloat (float_of_int !wrong /. float_of_int total)) ]
        :: !rows;
      Tab.add_row tab_pv
        [ string_of_int n; string_of_int k; fint trivial_bits; fint fr;
          Tab.fmt_ratio (float_of_int trivial_bits /. float_of_int fr);
          fmt ~digits:3 (float_of_int !wrong /. float_of_int total) ])
    [ (8, 4); (16, 4); (16, 8) ];
  Tab.print tab_pv;
  (* rank gadget sanity *)
  let a = Zm.random_kbit g ~rows:4 ~cols:4 ~k:3 in
  let b = Zm.random_kbit g ~rows:4 ~cols:4 ~k:3 in
  let gadget_true = Red.product_gadget a b (Zm.mul a b) in
  Printf.printf
    "rank gadget: rank [[I,B],[A,AB]] = %d (= n = 4); perturbing C gives \
     rank %d (> n).\n"
    (Zm.rank gadget_true)
    (let c = Zm.copy (Zm.mul a b) in
     Zm.set c 0 0 (B.add (Zm.get c 0 0) B.one);
     Zm.rank (Red.product_gadget a b c));
  (* span problem *)
  let tab_span =
    Tab.make
      ~caption:
        "Vector-space span problem on singularity instances (union spans \
         <=> M nonsingular)"
      ~header:[ "n"; "k"; "agree"; "trivial bits"; "basis-exchange bits" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let agree = ref true in
      let bits_trivial = ref 0 and bits_smart = ref 0 in
      verify (fun () ->
      List.iter
        (fun m ->
          let v1, v2 = Span.instance_of_matrix m in
          let got, c1 = Protocol.execute (Span.trivial ~k) v1 v2 in
          let got2, c2 = Protocol.execute (Span.dimension_exchange ~k) v1 v2 in
          bits_trivial := max !bits_trivial c1;
          bits_smart := max !bits_smart c2;
          if got <> (not (Zm.is_singular m)) || got2 <> got then agree := false)
        (mixed_pool g p ~count:6));
      rows :=
        row
          [ ("kind", jstr "span"); ("n", jint n); ("k", jint k);
            ("agree", jbool !agree); ("trivial_bits", jint !bits_trivial);
            ("basis_exchange_bits", jint !bits_smart) ]
        :: !rows;
      Tab.add_row tab_span
        [ string_of_int n; string_of_int k;
          (if !agree then "yes" else "NO");
          fint !bits_trivial; fint !bits_smart ])
    [ (5, 2); (7, 2) ];
  Tab.print tab_span;
  { id = "E11"; title; params = [ ("seed", jint 111) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E12: the Theorem 1.1 accounting ledger                              *)
(* ------------------------------------------------------------------ *)

let e12 ctx =
  let title = "Theorem 1.1 ledger: the Section 3 accounting, explicit" in
  section "E12" title;
  let module T11 = Commx_core.Theorem11 in
  let tab =
    Tab.make
      ~caption:
        "The quantities the proof manipulates, with explicit constants \
         (log2 scale); 'lower' is the derived log2 d(f) - 2, 'upper' the \
         trivial protocol.  The explicit O(n log n) losses make the bound \
         vacuous at small n and ~kn^2/8 asymptotically."
      ~header:
        [ "n"; "k"; "log2 rows"; "log2 ones/row"; "log2 r"; "log2 maxcols";
          "lower bits"; "upper bits"; "upper/lower" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right; Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let l = verify (fun () -> T11.ledger p) in
      let lb x = float_of_int (B.bit_length x) in
      let upper = float_of_int (Bounds.trivial_upper_bits ~n ~k) in
      rows :=
        row
          [ ("n", jint n); ("k", jint k);
            ("log2_rows", jfloat (lb l.T11.rows));
            ("log2_ones_per_row", jfloat (lb l.T11.ones_per_row_min));
            ("log2_r", jfloat (lb l.T11.r_threshold));
            ("log2_maxcols", jfloat (lb l.T11.wide_rect_max_cols));
            ("lower_bits", jfloat l.T11.comm_lower_bits);
            ("upper_bits", jfloat upper) ]
        :: !rows;
      Tab.add_row tab
        [ string_of_int n; string_of_int k;
          fmt ~digits:0 (lb l.T11.rows);
          fmt ~digits:0 (lb l.T11.ones_per_row_min);
          fmt ~digits:0 (lb l.T11.r_threshold);
          fmt ~digits:0 (lb l.T11.wide_rect_max_cols);
          fmt ~digits:0 l.T11.comm_lower_bits;
          fmt ~digits:0 upper;
          (if l.T11.comm_lower_bits > 0.0 then
             Tab.fmt_ratio (upper /. l.T11.comm_lower_bits)
           else "inf (vacuous)") ])
    [ (15, 4); (25, 4); (51, 4); (101, 4); (201, 4); (201, 8); (401, 4) ];
  Tab.print tab;
  Printf.printf
    "paper: Omega(k n^2); the explicit-constant bound settles at ~k n^2/8 \
     bits, a constant factor 16 below the 2 k n^2 upper bound.\n";
  { id = "E12"; title; params = []; rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E13: worst case vs typical case — the adaptive protocol             *)
(* ------------------------------------------------------------------ *)

let e13 ctx =
  let title =
    "Worst case vs typical case: adaptive certify-or-fall-back protocol"
  in
  section "E13" title;
  let g = Prng.create 113 in
  let tab =
    Tab.make
      ~caption:
        "Exact-answer adaptive protocol (mod-p full-rank certificate, \
         exact fallback).  Theorem 1.1 constrains the WORST case; random \
         inputs certify cheaply, the paper's singular instances always \
         pay in full."
      ~header:
        [ "n"; "k"; "instance class"; "trials"; "mean bits"; "worst bits";
          "trivial" ]
      [ Tab.Right; Tab.Right; Tab.Left; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right ]
  in
  let rows = ref [] in
  List.iter
    (fun (n, k) ->
      ctx.tick ();
      let p = Params.make ~n ~k in
      let prime_bits = 8 in
      let run_class name make_instance trials =
        let costs =
          Array.init trials (fun seed ->
              let m = gen make_instance in
              let a, b = Halves.split_pi0 m in
              let proto =
                Commx_protocols.Adaptive.singularity ~n ~k ~prime_bits ~seed
              in
              let got, cost = verify (fun () -> Protocol.execute proto a b) in
              assert (got = Zm.is_singular m);
              float_of_int cost)
        in
        let worst = Array.fold_left Float.max 0.0 costs in
        rows :=
          row
            [ ("n", jint n); ("k", jint k); ("class", jstr name);
              ("trials", jint trials); ("mean_bits", jfloat (Stats.mean costs));
              ("worst_bits", jfloat worst);
              ("trivial_bits", jint (Trivial.exact_cost ~n ~k)) ]
          :: !rows;
        Tab.add_row tab
          [ string_of_int n; string_of_int k; name; string_of_int trials;
            fmt (Stats.mean costs); fmt ~digits:0 worst;
            fint (Trivial.exact_cost ~n ~k) ]
      in
      run_class "random k-bit"
        (fun () -> Zm.random_kbit g ~rows:(2 * n) ~cols:(2 * n) ~k)
        20;
      run_class "hard singular (Lemma 3.5a)"
        (fun () ->
          let f = H.random_free g p in
          H.build_m p (L35.complete p ~c:f.H.c ~e:f.H.e).L35.free)
        20)
    [ (5, 16); (7, 16); (9, 32) ];
  Tab.print tab;
  Printf.printf
    "paper: the Theta(k n^2) bound is about worst-case inputs — and the \
     hard instances realize it against this adaptive protocol too.\n";
  { id = "E13"; title;
    params = [ ("seed", jint 113); ("prime_bits", jint 8) ];
    rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E14: exact deterministic CC vs every bound, at enumerable sizes     *)
(* ------------------------------------------------------------------ *)

let e14 ctx =
  let title =
    "Exact deterministic communication complexity (game-tree search) vs \
     all bounds"
  in
  section "E14" title;
  let module Exact_cc = Commx_comm.Exact_cc in
  let module Cover = Commx_comm.Cover in
  let tab =
    Tab.make
      ~caption:
        "The quantity Theorem 1.1 bounds, computed exactly by min-max \
         search over all protocol trees (tiny instances only; all values \
         in bits; d(f), N1, N0 are the exact partition/cover numbers of \
         Section 2)"
      ~header:
        [ "function"; "truth matrix"; "exact CC"; "one-way"; "d(f)"; "N1/N0";
          "cover>="; "log-rank>="; "fooling>="; "portfolio>="; "trivial<=";
          "nodes" ]
      [ Tab.Left; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  let eq_inputs n = List.init n (fun i -> i) in
  let sing_inputs = List.init 4 (fun v -> (v lsr 1, v land 1)) in
  let tern = List.concat_map (fun a -> List.init 3 (fun c -> (a, c))) [ 0; 1; 2 ] in
  (* [measure] is let-polymorphic over the truth-matrix input types, so
     instances with differently-typed inputs coexist as thunks.  The
     searches themselves are the parallel stage, and each instance runs
     under BOTH pooled drivers: the deterministic strided driver is the
     primary (fixed groups, barrier-shared incumbents — values and
     counters bit-identical at any --jobs, which CI asserts on this
     artifact), and the work-stealing driver re-derives the value as a
     cross-check (its value is schedule-invariant; its node counts are
     not, so they stay out of the rows and feed the separate
     [exact_cc.steal_nodes] counter).  Instances small enough to be
     answered by canonicalization plus the certified root bounds never
     enter the pool at all — which after the lower-bound portfolio
     (rank/fooling + rational log-rank + discrepancy) now includes
     every 17x17-20x20 instance below whose canonical board the
     portfolio meets the trivial protocol. *)
  let measure name tm trivial () =
    let m = Tm.to_bitmat tm in
    (* the exact max-rectangle enumeration is 2^min-dim: exact up to
       16, greedy for the 17x17-20x20 instances this PR admits *)
    let exact_rect = min (Tm.rows tm) (Tm.cols tm) <= 16 in
    let report = Rank_bound.analyze tm ~exact_rect in
    let cells = Tm.rows tm * Tm.cols tm in
    let d = if cells <= 25 then Some (Cover.min_partition m) else None in
    let covers =
      if cells <= 60 then Some (Cover.min_one_cover m, Cover.min_zero_cover m)
      else None
    in
    let cc, st = Exact_cc.search ~pool:ctx.pool ~deterministic:true m in
    let steal_cc, _ = Exact_cc.search ~pool:ctx.pool m in
    if steal_cc <> cc then
      failwith
        (Printf.sprintf
           "E14 %s: stealing driver disagrees with deterministic (%d vs %d)"
           name steal_cc cc);
    let portfolio = Exact_cc.lower_bound_portfolio m in
    let one_way = Commx_comm.Discrepancy.one_way_complexity m in
    ( name, Tm.rows tm, Tm.cols tm, cc, steal_cc, st, one_way, d, covers,
      report, portfolio, trivial )
  in
  let lowrank14 =
    (* rank-4 GF(2) product: 14x14 raw, but duplicate-row/column
       collapse shrinks it far below the cap — the instance that shows
       why the cap counts canonical dimensions. *)
    let g = Prng.create 55 in
    let m = Commx_util.Bitmat.mul
        (Commx_util.Bitmat.random g 14 4) (Commx_util.Bitmat.random g 4 14)
    in
    Tm.build (eq_inputs 14) (eq_inputs 14) (fun i j -> Commx_util.Bitmat.get m i j)
  in
  let of_bitmat n m =
    Tm.build (eq_inputs n) (eq_inputs n) (fun i j -> Commx_util.Bitmat.get m i j)
  in
  let sparse10 =
    (* sparse random 10x10 that PR 4's rank/fooling root bound (4)
       could NOT close against the trivial upper bound (5), forcing a
       genuine game-tree search — and that the PR 10 portfolio closes
       outright (rational log-rank = 5): the row documents a search
       the wider bounds simply deleted. *)
    let g = Prng.create 10067 in
    of_bitmat 10 (Commx_util.Bitmat.init 10 10 (fun _ _ -> Prng.float g < 0.22))
  in
  let sparse10_searching =
    (* sparse random 10x10 where even the full portfolio stalls at 4 <
       5: the instance that still needs a genuine game-tree search, and
       therefore the one that exercises both pooled drivers. *)
    let g = Prng.create 105015 in
    of_bitmat 10 (Commx_util.Bitmat.init 10 10 (fun _ _ -> Prng.float g < 0.15))
  in
  let sparse18 =
    (* sparse random 18x18, canonical 17x17 — past the old 16x16 cap.
       The portfolio (log-rank 6) meets the trivial protocol at the
       root, so an instance whose game tree is unenumerable in an hour
       is answered without expanding a node. *)
    let g = Prng.create 800014 in
    of_bitmat 18 (Commx_util.Bitmat.init 18 18 (fun _ _ -> Prng.float g < 0.14))
  in
  let instances =
    [| measure "singularity (2x2, k=1)"
         (Tm.build sing_inputs sing_inputs (fun (a, c) (b, d) ->
              (a * d) - (b * c) = 0))
         3;
       measure "singularity (2x2, entries 0..2)"
         (Tm.build tern tern (fun (a, c) (b, d) -> (a * d) - (b * c) = 0))
         5;
       measure "equality (7 values)"
         (Tm.build (eq_inputs 7) (eq_inputs 7) ( = )) 4;
       measure "equality (8 values)"
         (Tm.build (eq_inputs 8) (eq_inputs 8) ( = )) 4;
       measure "equality (14 values)"
         (Tm.build (eq_inputs 14) (eq_inputs 14) ( = )) 5;
       measure "greater-than (7 values)"
         (Tm.build (eq_inputs 7) (eq_inputs 7) ( > )) 4;
       measure "greater-than (14 values)"
         (Tm.build (eq_inputs 14) (eq_inputs 14) ( > )) 5;
       measure "disjointness (3-bit sets)"
         (Tm.build (eq_inputs 8) (eq_inputs 8) (fun x y -> x land y = 0)) 4;
       measure "disjointness (4-bit sets)"
         (Tm.build (eq_inputs 16) (eq_inputs 16) (fun x y -> x land y = 0)) 5;
       measure "equality (18 values)"
         (Tm.build (eq_inputs 18) (eq_inputs 18) ( = )) 6;
       measure "greater-than (20 values)"
         (Tm.build (eq_inputs 20) (eq_inputs 20) ( > )) 6;
       measure "rank-4 product (14x14)" lowrank14 5;
       measure "random sparse (10x10, d=0.22)" sparse10 5;
       measure "random sparse (10x10, d=0.15)" sparse10_searching 5;
       measure "random sparse (18x18, d=0.14)" sparse18 6;
       (* solvability of a 1-equation system a x = b over 1-bit values:
          Alice holds a, Bob holds b *)
       measure "1x1 solvability (2-bit)"
         (Tm.build (eq_inputs 4) (eq_inputs 4) (fun a b ->
              b mod max 1 a = 0 || (a = 0 && b = 0)))
         3 |]
  in
  (* Instances run sequentially; the expensive ones parallelize inside
     the search (root splits), so nested pool batches never occur. *)
  let measured = enum (fun () -> Array.map (fun f -> f ()) instances) in
  let rows = ref [] in
  Array.iter
    (fun ( name, trows, tcols, cc, steal_cc, st, one_way, d, covers, report,
           portfolio, trivial ) ->
      let pf n = List.assoc n portfolio in
      rows :=
        row
          [ ("function", jstr name); ("rows", jint trows); ("cols", jint tcols);
            ("exact_cc", jint cc); ("steal_cc", jint steal_cc);
            ("one_way", jint one_way);
            ("d_f", match d with Some v -> jint v | None -> Json.Null);
            ("n1", match covers with Some (v, _) -> jint v | None -> Json.Null);
            ("n0", match covers with Some (_, v) -> jint v | None -> Json.Null);
            ("cover_bits", jfloat report.Rank_bound.cover_bits);
            ("log_rank", jfloat report.Rank_bound.log_rank);
            ("fooling_bits", jfloat report.Rank_bound.fooling_bits);
            ("pf_rank_fooling", jint (pf "rank_fooling"));
            ("pf_log_rank", jint (pf "log_rank"));
            ("pf_discrepancy", jint (pf "discrepancy"));
            ("trivial_bits", jint trivial);
            ("canon_rows", jint st.Exact_cc.canon_rows);
            ("canon_cols", jint st.Exact_cc.canon_cols);
            ("root_lower", jint st.Exact_cc.root_lower);
            ("root_upper", jint st.Exact_cc.root_upper);
            ("search_nodes", jint st.Exact_cc.nodes);
            ("table_hits", jint st.Exact_cc.table_hits) ]
        :: !rows;
      Tab.add_row tab
        [ name;
          Printf.sprintf "%dx%d" trows tcols;
          string_of_int cc;
          string_of_int one_way;
          (match d with Some v -> string_of_int v | None -> "-");
          (match covers with
          | Some (n1, n0) -> Printf.sprintf "%d/%d" n1 n0
          | None -> "-");
          fmt report.Rank_bound.cover_bits;
          fmt report.Rank_bound.log_rank;
          fmt report.Rank_bound.fooling_bits;
          Printf.sprintf "%d/%d/%d" (pf "rank_fooling") (pf "log_rank")
            (pf "discrepancy");
          string_of_int trivial;
          fint st.Exact_cc.nodes ])
    measured;
  Tab.print tab;
  Printf.printf
    "The exact value always sits between every certificate and the \
     trivial protocol; for tiny singularity the sandwich is TIGHT \
     (3 = 3), the statement of Theorem 1.1 in miniature.  The \
     portfolio column (rank-fooling/log-rank/discrepancy) shows which \
     certified bound closes each root: every 17x17-20x20 instance is \
     answered with zero node expansions because one member meets the \
     trivial protocol.\n";
  { id = "E14"; title; params = []; rows = List.rev !rows; fits = [] }

(* ------------------------------------------------------------------ *)
(* E15: minimizing over partitions — the unrestricted complexity       *)
(* ------------------------------------------------------------------ *)

let e15 ctx =
  let title =
    "Unrestricted complexity = min over even partitions (tiny instance, \
     exhaustive)"
  in
  section "E15" title;
  let module Exact_cc = Commx_comm.Exact_cc in
  (* 2x2 matrices of 1-bit entries: 4 cells e0..e3 (column-major:
     e0 = M[0][0], e1 = M[1][0], e2 = M[0][1], e3 = M[1][1]); enumerate
     all C(4,2) = 6 even partitions, compute the exact CC of the truth
     matrix each induces, take the minimum — the quantity Theorem 1.1
     speaks about. *)
  let singular cells =
    (* cells.(i) is entry e_i *)
    (cells.(0) * cells.(3)) - (cells.(2) * cells.(1)) = 0
  in
  let tab =
    Tab.make
      ~caption:
        "Singularity of 2x2 one-bit matrices: exact CC per even partition \
         of the 4 entries (agent 1's entries listed); pi_0 = {e0,e1}"
      ~header:[ "agent 1 reads"; "truth matrix"; "exact CC" ]
      [ Tab.Left; Tab.Left; Tab.Right ]
  in
  let pairs = [| (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) |] in
  (* Six independent exact-CC searches: one per even partition. *)
  let measured =
    enum (fun () ->
    Pool.parallel_map ctx.pool
      (fun (p1, p2) ->
        let alice_cells = [ p1; p2 ] in
        let bob_cells =
          List.filter (fun c -> not (List.mem c alice_cells)) [ 0; 1; 2; 3 ]
        in
        (* truth matrix: rows = assignments of alice's 2 bits *)
        let assignments = [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
        let tm =
          Commx_comm.Truth_matrix.build assignments assignments
            (fun (a1, a2) (b1, b2) ->
              let cells = Array.make 4 0 in
              List.iteri
                (fun idx c -> cells.(c) <- (match idx with 0 -> a1 | _ -> a2))
                alice_cells;
              List.iteri
                (fun idx c -> cells.(c) <- (match idx with 0 -> b1 | _ -> b2))
                bob_cells;
              singular cells)
        in
        (p1, p2, Commx_comm.Truth_matrix.rows tm,
         Commx_comm.Truth_matrix.cols tm, Exact_cc.complexity_tm tm))
      pairs)
  in
  let best = ref max_int in
  let rows = ref [] in
  Array.iter
    (fun (p1, p2, trows, tcols, cc) ->
      if cc < !best then best := cc;
      rows :=
        row
          [ ("agent1_cells", Json.List [ jint p1; jint p2 ]);
            ("rows", jint trows); ("cols", jint tcols); ("exact_cc", jint cc) ]
        :: !rows;
      Tab.add_row tab
        [ Printf.sprintf "{e%d, e%d}" p1 p2;
          Printf.sprintf "%dx%d" trows tcols;
          string_of_int cc ])
    measured;
  Tab.print tab;
  Printf.printf
    "unrestricted complexity = min over partitions = %d bits.\n\
     The diagonal partitions {e0,e3} and {e1,e2} are one bit cheaper than \
     pi_0 at this toy size (knowing a*d or b*c collapses the matrix) — \
     consistent with Lemma 3.9, which only promises that NO partition \
     beats pi_0 by more than a constant factor.\n"
    !best;
  { id = "E15"; title; params = [];
    rows = List.rev !rows;
    fits = [ ("min_over_partitions_bits", jint !best) ] }

let all = [
  ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
  ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
  ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15);
]
