(* Load-replay bench: `ccmx bench load`.

   Replays a seeded synthetic traffic mix (Commx_util.Traffic) against
   either the in-process engine or a live `ccmx serve` daemon, and
   reports throughput and latency SLOs (p50/p95/p99) per query kind
   plus batch-vs-scalar speedup rows for the amortized kernels.

   Determinism contract (asserted by scripts/load_soak.sh and CI):
   - the request stream is a pure function of (seed, mix, arrival,
     count) — Traffic.stream never sees --jobs;
   - every answer is a pure function of its request payload, so the
     id-ordered answer digest is identical at any --jobs and identical
     between the in-process engine and a daemon replay.  Latencies and
     throughput are the only fields allowed to vary between runs.

   With --json DIR the run writes DIR/BENCH_load.json (schema v3, same
   writer as every other artifact).  scripts/perf_gate.py reads the
   "all" row's qps as the CI throughput floor. *)

module Json = Commx_util.Json
module Prng = Commx_util.Prng
module Clock = Commx_util.Clock
module Stats = Commx_util.Stats
module Artifact = Commx_util.Artifact
module Traffic = Commx_util.Traffic
module Bm = Commx_util.Bitmat
module Tx = Commx_util.Txtable
module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module E = Commx_comm.Exact_cc
module Truth_matrix = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Protocol = Commx_comm.Protocol
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Client = Commx_serve.Client

type target = In_process | Daemon of string

type config = {
  seed : int;
  count : int;
  mix : Traffic.mix;
  arrival : Traffic.arrival;
  jobs : int;
  target : target;
  json_dir : string option;
  deadline_ms : int option;
}

(* Pinned payload shapes.  Exact CC boards follow the chaos soak's
   sizing (random 6x6: fast to solve, slow enough to really search);
   rank/singularity boards are 8x8 so the exact rectangle-cover bound
   stays affordable (64 cells) and Bareiss determinants are real
   bignum work. *)
let exact_cc_side = 6
let singular_side = 8
let singular_bits = 8
let lower_side = 8
let proto_n = 7
let proto_k = 2

type payload =
  | P_exact of Bm.t
  | P_singular of Zm.t
  | P_lower of Bm.t
  | P_proto of int  (* instance seed *)

let materialize (r : Traffic.request) =
  let g = Prng.create r.Traffic.seed in
  match r.Traffic.kind with
  | Traffic.Exact_cc -> P_exact (Bm.random g exact_cc_side exact_cc_side)
  | Traffic.Singular ->
      (* One in four boards is rank-deficient by construction, so the
         singularity path answers both verdicts under load. *)
      if Prng.int g 4 = 0 then
        P_singular
          (Zm.random_of_rank g ~rows:singular_side ~cols:singular_side
             ~rank:(singular_side - 1))
      else
        P_singular
          (Zm.random_kbit g ~rows:singular_side ~cols:singular_side
             ~k:singular_bits)
  | Traffic.Lower_bounds -> P_lower (Bm.random g lower_side lower_side)
  | Traffic.Protocol -> P_proto (Prng.int g 1_000_000)

(* ------------------------------------------------------------------ *)
(* Execution: in-process and over the wire                             *)
(* ------------------------------------------------------------------ *)

(* Answers are short canonical strings: the same payload must render
   the same answer whether computed here or by a daemon, which is what
   lets the soak compare digests across targets. *)

let answer_in_process ~table payload =
  match payload with
  | P_exact m ->
      let v, _ = E.search ~table m in
      Printf.sprintf "cc=%d" v
  | P_singular m ->
      Printf.sprintf "singular=%b" (Zm.singular_batch [| m |]).(0)
  | P_lower m ->
      let nr = Bm.rows m and nc = Bm.cols m in
      let tm =
        Truth_matrix.build (List.init nr Fun.id) (List.init nc Fun.id)
          (fun i j -> Bm.get m i j)
      in
      let r = Rank_bound.analyze tm ~exact_rect:(nr * nc <= 64) in
      Printf.sprintf "gf2=%d,rat=%d,fool=%d" r.Rank_bound.gf2
        r.Rank_bound.rational r.Rank_bound.fooling
  | P_proto seed ->
      let p = Params.make ~n:proto_n ~k:proto_k in
      let g = Prng.create seed in
      let m = H.build_m p (H.random_free g p) in
      let alice, bob = Halves.split_pi0 m in
      let got, bits =
        Protocol.execute (Trivial.singularity ~k:proto_k) alice bob
      in
      Printf.sprintf "agrees=%b,bits=%d" (got = Zm.is_singular m) bits

let bit_rows m =
  Json.List
    (List.init (Bm.rows m) (fun i ->
         Json.String
           (String.init (Bm.cols m) (fun j -> if Bm.get m i j then '1' else '0'))))

let wire_request = function
  | P_exact m -> ("exact_cc", [ ("matrix", bit_rows m) ])
  | P_singular m ->
      let rows =
        List.init (Zm.rows m) (fun i ->
            Json.List
              (List.init (Zm.cols m) (fun j ->
                   Json.Int (B.to_int (Zm.get m i j)))))
      in
      ("singular", [ ("matrix", Json.List rows) ])
  | P_lower m -> ("lower_bounds", [ ("matrix", bit_rows m) ])
  | P_proto seed ->
      ( "protocol",
        [ ("protocol", Json.String "trivial"); ("n", Json.Int proto_n);
          ("k", Json.Int proto_k); ("seed", Json.Int seed) ] )

let answer_of_reply op reply =
  let geti k =
    match Json.member k reply with
    | Some (Json.Int v) -> v
    | _ -> failwith (Printf.sprintf "reply missing int field %S" k)
  in
  let getb k =
    match Json.member k reply with
    | Some (Json.Bool v) -> v
    | _ -> failwith (Printf.sprintf "reply missing bool field %S" k)
  in
  match op with
  | "exact_cc" -> Printf.sprintf "cc=%d" (geti "value")
  | "singular" -> Printf.sprintf "singular=%b" (getb "singular")
  | "lower_bounds" ->
      Printf.sprintf "gf2=%d,rat=%d,fool=%d" (geti "gf2_rank")
        (geti "rational_rank") (geti "fooling_set")
  | "protocol" -> Printf.sprintf "agrees=%b,bits=%d" (getb "agrees") (geti "bits")
  | op -> failwith ("unexpected op " ^ op)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

exception Request_timeout

(* FNV-1a over the id-ordered answers, folded into a positive native
   int and rendered as hex: an order-independent-of-execution digest
   of WHAT was answered, never how fast. *)
let digest answers =
  (* FNV-1a offset basis folded into OCaml's 63-bit int range. *)
  let h = ref 0x3bf29ce484222325 in
  Array.iter
    (fun s ->
      String.iter
        (fun c ->
          h := (!h lxor Char.code c) * 0x100000001b3;
          h := !h land max_int)
        (s ^ "\x00"))
    answers;
  Printf.sprintf "%x" !h

type outcome = { latencies : float array; status : int array; answers : string array; wall_s : float }

let replay cfg reqs =
  let n = Array.length reqs in
  let latencies = Array.make n 0.0 in
  let status = Array.make n 1 (* 0 ok, 1 error, 2 timeout *) in
  let answers = Array.make n "" in
  let next = Atomic.make 0 in
  let epoch = Clock.now_s () in
  let worker _wid =
    let table = Tx.create () in
    let client =
      match cfg.target with
      | In_process -> None
      | Daemon socket_path -> Some (Client.create ~socket_path ())
    in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r = reqs.(i) in
        let payload = materialize r in
        let start =
          match cfg.arrival with
          | Traffic.Closed _ -> Clock.now_s ()
          | Traffic.Open _ ->
              (* Open loop: the request is due at its scheduled instant
                 whether or not we are keeping up, and lateness counts
                 as latency (queueing delay). *)
              let due = epoch +. r.Traffic.arrival_s in
              Clock.sleep_until due;
              due
        in
        (try
           let ans =
             match client with
             | None -> answer_in_process ~table payload
             | Some c -> (
                 let op, fields = wire_request payload in
                 match Client.request c ?deadline_ms:cfg.deadline_ms ~op fields with
                 | Ok reply -> answer_of_reply op reply
                 | Error (Client.Timed_out _) -> raise Request_timeout
                 | Error e -> failwith (Client.error_to_string e))
           in
           latencies.(i) <- Clock.now_s () -. start;
           answers.(i) <- ans;
           status.(i) <- 0
         with
        | Request_timeout -> status.(i) <- 2
        | _ -> status.(i) <- 1);
        loop ()
      end
    in
    loop ();
    Option.iter Client.close client
  in
  let jobs = max 1 cfg.jobs in
  let domains = Array.init jobs (fun wid -> Domain.spawn (fun () -> worker wid)) in
  Array.iter Domain.join domains;
  { latencies; status; answers; wall_s = Clock.now_s () -. epoch }

(* ------------------------------------------------------------------ *)
(* Batch-vs-scalar speedup section                                     *)
(* ------------------------------------------------------------------ *)

(* Warm once, then best of [reps]: the speedup claim is about kernel
   cost, not allocator or cache warm-up noise. *)
let time_best ?(reps = 3) f =
  ignore (f ());
  let best = ref infinity in
  let result = ref (f ()) in
  for _ = 1 to reps do
    let t0 = Clock.now_s () in
    let r = f () in
    let dt = Clock.now_s () -. t0 in
    if dt < !best then begin
      best := dt;
      result := r
    end
  done;
  (!best, !result)

let jint v = Json.Int v
let jfloat v = Json.Float v
let jstr v = Json.String v
let jbool v = Json.Bool v

let speedup_rows ~seed =
  let g = Prng.create (seed lxor 0x10ad) in
  (* GF(2) rank: the acceptance workload — 1k boards, 16x16. *)
  let boards = Array.init 1000 (fun _ -> Bm.random g 16 16) in
  let scalar_s, scalar_ranks = time_best (fun () -> Array.map Bm.rank boards) in
  let batch_s, batch_ranks = time_best (fun () -> Bm.rank_batch boards) in
  let rank_agree = scalar_ranks = batch_ranks in
  (* Lemma 3.2 singularity: smaller batch, each verdict is bignum work
     on the scalar side.  Mix in rank-deficient boards so the batch
     kernel's exact-escalation path is timed too, not just the mod-p
     filter. *)
  let mats =
    Array.init 200 (fun i ->
        if i mod 4 = 0 then
          Zm.random_of_rank g ~rows:singular_side ~cols:singular_side
            ~rank:(singular_side - 1)
        else
          Zm.random_kbit g ~rows:singular_side ~cols:singular_side
            ~k:singular_bits)
  in
  let sing_scalar_s, sv = time_best (fun () -> Array.map Zm.is_singular mats) in
  let sing_batch_s, bv = time_best (fun () -> Zm.singular_batch mats) in
  let sing_agree = sv = bv in
  let row name boards scalar_s batch_s agree =
    Json.Obj
      [ ("function", jstr name); ("boards", jint boards);
        ("scalar_s", jfloat scalar_s); ("batch_s", jfloat batch_s);
        ("speedup", jfloat (scalar_s /. batch_s)); ("agree", jbool agree) ]
  in
  ( [ row "rank_batch_16x16" (Array.length boards) scalar_s batch_s rank_agree;
      row "singular_batch_8x8" (Array.length mats) sing_scalar_s sing_batch_s
        sing_agree ],
    rank_agree && sing_agree,
    scalar_s /. batch_s )

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let slo_row name idx (o : outcome) =
  let ok = List.filter (fun i -> o.status.(i) = 0) idx in
  let errors = List.length (List.filter (fun i -> o.status.(i) = 1) idx) in
  let timeouts = List.length (List.filter (fun i -> o.status.(i) = 2) idx) in
  let lat_ms =
    Array.of_list (List.map (fun i -> o.latencies.(i) *. 1e3) ok)
  in
  let pct p = if Array.length lat_ms = 0 then 0.0 else Stats.percentile lat_ms p in
  let mx = if Array.length lat_ms = 0 then 0.0 else snd (Stats.min_max lat_ms) in
  Json.Obj
    [ ("function", jstr name); ("requests", jint (List.length idx));
      ("ok", jint (List.length ok)); ("errors", jint errors);
      ("timeouts", jint timeouts);
      ("qps", jfloat (float_of_int (List.length ok) /. o.wall_s));
      ("p50_ms", jfloat (pct 50.0)); ("p95_ms", jfloat (pct 95.0));
      ("p99_ms", jfloat (pct 99.0)); ("max_ms", jfloat mx) ]

let run cfg =
  let reqs =
    Traffic.stream ~seed:cfg.seed ~mix:cfg.mix ~arrival:cfg.arrival
      ~count:cfg.count
  in
  Printf.printf "load: %d requests, mix %s, %s, %d worker(s), target %s\n%!"
    cfg.count
    (Traffic.mix_to_string cfg.mix)
    (Traffic.arrival_to_string cfg.arrival)
    (max 1 cfg.jobs)
    (match cfg.target with In_process -> "in-process" | Daemon s -> s);
  let o = replay cfg reqs in
  let all_idx = List.init (Array.length reqs) Fun.id in
  let by_kind k =
    List.filter (fun i -> reqs.(i).Traffic.kind = k) all_idx
  in
  let rows =
    slo_row "all" all_idx o
    :: List.filter_map
         (fun k ->
           match by_kind k with
           | [] -> None
           | idx -> Some (slo_row (Traffic.kind_to_string k) idx o))
         (Array.to_list Traffic.all_kinds)
  in
  let srows, speedup_ok, rank_speedup = speedup_rows ~seed:cfg.seed in
  let rows = rows @ srows in
  let ok_total = Array.fold_left (fun a s -> if s = 0 then a + 1 else a) 0 o.status in
  let errors = Array.fold_left (fun a s -> if s = 1 then a + 1 else a) 0 o.status in
  let timeouts = Array.fold_left (fun a s -> if s = 2 then a + 1 else a) 0 o.status in
  let dg = digest o.answers in
  let qps = float_of_int ok_total /. o.wall_s in
  List.iter
    (fun r ->
      match r with
      | Json.Obj fields ->
          let s k =
            match List.assoc_opt k fields with
            | Some (Json.String v) -> v
            | Some (Json.Int v) -> string_of_int v
            | Some (Json.Float v) -> Printf.sprintf "%.3f" v
            | Some (Json.Bool v) -> string_of_bool v
            | _ -> "-"
          in
          if List.mem_assoc "qps" fields then
            Printf.printf
              "  %-14s n=%-5s ok=%-5s err=%s tmo=%s qps=%-8s p50=%sms p95=%sms p99=%sms\n"
              (s "function") (s "requests") (s "ok") (s "errors") (s "timeouts")
              (s "qps") (s "p50_ms") (s "p95_ms") (s "p99_ms")
          else
            Printf.printf "  %-18s boards=%s scalar=%ss batch=%ss speedup=%sx agree=%s\n"
              (s "function") (s "boards") (s "scalar_s") (s "batch_s")
              (s "speedup") (s "agree")
      | _ -> ())
    rows;
  Printf.printf "  answers digest %s, wall %.3fs, %.1f qps\n%!" dg o.wall_s qps;
  let failed = errors + timeouts > 0 || not speedup_ok in
  (match cfg.json_dir with
  | None -> ()
  | Some dir ->
      Artifact.write ~dir ~id:"load" ~jobs:(max 1 cfg.jobs) ~wall_s:o.wall_s
        ~attempts:1
        ~status:(if failed then "failed" else "ok")
        ~error:
          (if failed then
             Json.String
               (Printf.sprintf "%d errors, %d timeouts, speedup_ok=%b" errors
                  timeouts speedup_ok)
           else Json.Null)
        ~report_fields:
          [ ("title", jstr "load replay: seeded traffic mix with latency SLOs");
            ( "params",
              Json.Obj
                [ ("seed", jint cfg.seed); ("count", jint cfg.count);
                  ("mix", jstr (Traffic.mix_to_string cfg.mix));
                  ("arrival", jstr (Traffic.arrival_to_string cfg.arrival));
                  ( "target",
                    jstr
                      (match cfg.target with
                      | In_process -> "in_process"
                      | Daemon _ -> "daemon") ) ] );
            ("rows", Json.List rows);
            ( "fits",
              Json.Obj
                [ ("qps", jfloat qps);
                  ("rank_batch_speedup", jfloat rank_speedup);
                  ("answers_digest", jstr dg) ] ) ]
        ();
      Printf.printf "wrote %s\n%!" (Artifact.path ~dir ~id:"load"));
  if failed then 1 else 0
