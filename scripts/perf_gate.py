#!/usr/bin/env python3
"""Perf-regression gate over bench JSON artifacts.

Compares a PR's BENCH_*.json artifacts against the merge-base's and
fails on:

  * wall-clock regression beyond --wall-tolerance (default 30%), only
    when both runs measured the same workload (identical row-name sets
    and job counts) and the baseline wall is above --wall-floor — a
    changed instance list or a 3 ms wall is noise, not a regression;
  * ANY increase in a deterministic search-work counter
    (``exact_cc.nodes`` in metrics.counters when the workload is
    identical, and per-row ``nodes``/``search_nodes`` fields matched
    by name regardless).  Node counts are exact and jobs-invariant, so
    even a +1 increase is a real search regression, not timer jitter.
    Stealing-driver counters (``exact_cc.steal_*``, per-row
    ``steal_nodes``) are schedule-dependent and never gated;
  * the B7 pooled-driver ablation inverting: within the PR's ``micro``
    artifact, the ``exact-cc/pool-steal-portfolio`` row must beat
    ``exact-cc/pool-strided-baseline`` on wall-clock;
  * throughput collapse in the load-replay artifact (``load``): its
    ``fits.qps`` dropping more than --qps-tolerance (default 30%)
    below the baseline.  Wall clock is NOT compared for ``load`` —
    its wall is dominated by the fixed request count, so qps is the
    honest signal there.

Artifacts present on only one side are reported and skipped: the first
instrumented run has no baseline, and removed experiments have no PR
side.  Baselines without counters (older schema) skip the counter
check only.

If the baseline side could not be produced because the merge-base
itself failed to build, CI drops a ``BASE_BUILD_FAILED`` marker file
into BASE_DIR; the gate then exits 3 with a message naming the base
commit instead of mistaking the empty directory for "no artifacts".

Usage:
  perf_gate.py BASE_DIR PR_DIR [--wall-tolerance 0.30] [--wall-floor 0.05]
               [--qps-tolerance 0.30]

Exit status: 0 no regression, 1 regression, 2 usage/IO error,
3 merge-base build failed (no baseline to compare against).
"""

import argparse
import glob
import json
import os
import sys


def load_artifacts(dirname):
    arts = {}
    for path in sorted(glob.glob(os.path.join(dirname, "BENCH_*.json"))):
        with open(path) as fh:
            art = json.load(fh)
        exp = art.get("experiment") or os.path.basename(path)
        # The differential fuzzer ("check") is a correctness tier, not a
        # benchmark: its wall clock scales with --count/--budget and its
        # counters track fuzzed cases, so it is never perf-gated.  The
        # serve daemon's smoke artifacts ("serve") are likewise
        # cache-warmth checks whose timings depend on daemon scheduling,
        # not kernel speed.
        if exp.startswith("check") or exp.startswith("serve"):
            continue
        arts[exp] = art
    return arts


def row_names(art):
    names = []
    for row in art.get("rows") or []:
        if isinstance(row, dict):
            names.append(row.get("function") or row.get("bench") or "?")
    return sorted(names)


def row_nodes(art):
    """Deterministic per-row node counts, keyed by row name."""
    out = {}
    for row in art.get("rows") or []:
        if not isinstance(row, dict):
            continue
        name = row.get("function") or row.get("bench")
        nodes = row.get("search_nodes", row.get("nodes"))
        if name is not None and isinstance(nodes, int):
            out[name] = nodes
    return out


def counter(art, key):
    metrics = art.get("metrics") or {}
    counters = metrics.get("counters") or {}
    value = counters.get(key)
    return value if isinstance(value, int) else None


def fit(art, key):
    fits = art.get("fits") or {}
    value = fits.get(key)
    return value if isinstance(value, (int, float)) else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base_dir")
    parser.add_argument("pr_dir")
    parser.add_argument("--wall-tolerance", type=float, default=0.30,
                        help="allowed fractional wall-clock increase")
    parser.add_argument("--wall-floor", type=float, default=0.05,
                        help="skip wall comparison below this baseline (s)")
    parser.add_argument("--qps-tolerance", type=float, default=0.30,
                        help="allowed fractional load-replay qps drop")
    args = parser.parse_args()

    marker = os.path.join(args.base_dir, "BASE_BUILD_FAILED")
    if os.path.exists(marker):
        with open(marker) as fh:
            detail = fh.read().strip()
        print("error: merge-base failed to build — no baseline artifacts "
              "to gate against.", file=sys.stderr)
        if detail:
            print(f"  {detail}", file=sys.stderr)
        print("  This is a problem with the base commit, not this PR; "
              "fix the base (or rebase) and re-run.", file=sys.stderr)
        return 3

    base = load_artifacts(args.base_dir)
    pr = load_artifacts(args.pr_dir)
    if not pr:
        print(f"error: no BENCH_*.json artifacts in {args.pr_dir}",
              file=sys.stderr)
        return 2

    failures = []
    for exp in sorted(set(base) | set(pr)):
        if exp not in base:
            print(f"[{exp}] new on PR side, no baseline — skipping")
            continue
        if exp not in pr:
            print(f"[{exp}] present only in baseline — skipping")
            continue
        b, p = base[exp], pr[exp]
        if b.get("status") != "ok" or p.get("status") != "ok":
            print(f"[{exp}] non-ok status (base={b.get('status')}, "
                  f"pr={p.get('status')}) — skipping comparisons")
            continue

        same_workload = (row_names(b) == row_names(p)
                         and b.get("jobs") == p.get("jobs"))

        # Load replay: throughput floor on fits.qps, wall not compared
        # (the run processes a fixed request count, so wall is 1/qps and
        # would double-count the same signal with a looser tolerance).
        if exp == "load":
            bq, pq = fit(b, "qps"), fit(p, "qps")
            if not same_workload:
                print(f"[{exp}] workload changed (rows or jobs differ) — "
                      "qps comparison skipped")
            elif bq is None or pq is None:
                print(f"[{exp}] fits.qps absent on "
                      f"{'base' if bq is None else 'pr'} side — qps check "
                      "skipped")
            elif bq <= 0.0:
                print(f"[{exp}] non-positive baseline qps — skipped")
            else:
                ratio = pq / bq
                verdict = "FAIL" if ratio < 1.0 - args.qps_tolerance else "ok"
                print(f"[{exp}] qps {bq:.1f} -> {pq:.1f} "
                      f"({(ratio - 1.0) * 100.0:+.1f}%) {verdict}")
                if verdict == "FAIL":
                    failures.append(
                        f"{exp}: throughput {bq:.1f} -> {pq:.1f} qps drops "
                        f"more than {args.qps_tolerance * 100.0:.0f}%")
            continue

        # Wall clock: only comparable when the workload is identical.
        bw, pw = b.get("wall_s"), p.get("wall_s")
        if not same_workload:
            print(f"[{exp}] workload changed (rows or jobs differ) — "
                  "wall comparison skipped")
        elif not (isinstance(bw, (int, float)) and isinstance(pw, (int, float))):
            print(f"[{exp}] missing wall_s — wall comparison skipped")
        elif bw < args.wall_floor:
            print(f"[{exp}] baseline wall {bw:.3f}s below floor — skipped")
        else:
            ratio = pw / bw
            verdict = "FAIL" if ratio > 1.0 + args.wall_tolerance else "ok"
            print(f"[{exp}] wall {bw:.3f}s -> {pw:.3f}s "
                  f"({(ratio - 1.0) * 100.0:+.1f}%) {verdict}")
            if verdict == "FAIL":
                failures.append(
                    f"{exp}: wall-clock {bw:.3f}s -> {pw:.3f}s exceeds "
                    f"+{args.wall_tolerance * 100.0:.0f}% tolerance")

        # Search-node counters: deterministic, any increase fails — but
        # only on an identical workload.  The counter sums nodes over
        # every instance in the run, so a changed instance list moves
        # it for reasons that are not a search regression (the per-row
        # check below still compares every instance present on both
        # sides by name).  Stealing-driver counters (exact_cc.steal_*)
        # are schedule-dependent and never gated.
        bn, pn = counter(b, "exact_cc.nodes"), counter(p, "exact_cc.nodes")
        if not same_workload:
            print(f"[{exp}] workload changed — exact_cc.nodes total "
                  "skipped (per-row nodes still checked)")
        elif bn is None or pn is None:
            print(f"[{exp}] exact_cc.nodes counter absent on "
                  f"{'base' if bn is None else 'pr'} side — counter check "
                  "skipped")
        else:
            verdict = "FAIL" if pn > bn else "ok"
            print(f"[{exp}] exact_cc.nodes {bn} -> {pn} {verdict}")
            if verdict == "FAIL":
                failures.append(f"{exp}: exact_cc.nodes grew {bn} -> {pn}")

        br, prw = row_nodes(b), row_nodes(p)
        for name in sorted(set(br) & set(prw)):
            if prw[name] > br[name]:
                print(f"[{exp}] row '{name}' nodes {br[name]} -> "
                      f"{prw[name]} FAIL")
                failures.append(
                    f"{exp}/{name}: nodes grew {br[name]} -> {prw[name]}")

        # B7 pooled-driver ablation: a relational claim within the PR
        # artifact alone, so it holds even on a workload change.  The
        # work-stealing driver with the lower-bound portfolio must beat
        # the PR 4 strided baseline (isolated incumbents, no portfolio)
        # on the same board at the same job count — the reason the
        # stealing driver is the default.  The board is exhaustion-type
        # (exact = trivial upper bound, no lucky early witness), so the
        # walls are stable enough for a strict comparison.
        if exp == "micro":
            prows = {r.get("bench"): r for r in p.get("rows") or []
                     if isinstance(r, dict)}
            sb = prows.get("exact-cc/pool-strided-baseline", {}).get("wall_s")
            sp = prows.get("exact-cc/pool-steal-portfolio", {}).get("wall_s")
            if not (isinstance(sb, (int, float))
                    and isinstance(sp, (int, float))):
                print(f"[{exp}] B7 pooled ablation rows absent — "
                      "relational check skipped")
            else:
                verdict = "FAIL" if sp >= sb else "ok"
                print(f"[{exp}] B7 steal-portfolio {sp:.3f}s vs "
                      f"strided-baseline {sb:.3f}s {verdict}")
                if verdict == "FAIL":
                    failures.append(
                        f"{exp}: steal-portfolio wall {sp:.3f}s does not "
                        f"beat the strided baseline {sb:.3f}s")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
