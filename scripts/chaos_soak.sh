#!/usr/bin/env bash
# Chaos soak for the ccmx serve daemon.
#
# Three phases:
#   0. ground truth  — a clean daemon answers every workload board;
#                      the exact-CC values are recorded.
#   1. chaos         — a daemon with deterministic fault injection
#                      (--chaos SEED) serves the same workload plus a
#                      pipelined burst.  Assertions: every ok reply
#                      matches ground truth (zero wrong answers),
#                      replies arrive in request order, every error
#                      carries a known structured code, the error rate
#                      stays bounded, and at least one worker crash was
#                      healed (serve.worker_respawns > 0).
#   2. warm restart  — the daemon is drained (SIGTERM) and restarted
#                      with chaos off against the snapshot it wrote;
#                      the first query must be answered from the warm
#                      state (cache hit, zero node expansions).
#
# The fault pattern is a pure function of (seed, site), so a run is
# bit-reproducible: re-running with the same SEED and REQUESTS crashes
# the same jobs.  Defaults are sized for a CI smoke (<1 min); raise
# REQUESTS for a nightly soak.
#
# usage: scripts/chaos_soak.sh [SEED] [REQUESTS] [CHAOS_RATE]

set -euo pipefail

SEED="${1:-20260809}"
REQUESTS="${2:-60}"
CHAOS_RATE="${3:-0.15}"

cd "$(dirname "$0")/.."
CCMX=_build/default/bin/ccmx.exe
command -v dune >/dev/null && dune build bin/ccmx.exe
[ -x "$CCMX" ] || { echo "chaos_soak: $CCMX not built" >&2; exit 1; }

workdir=$(mktemp -d /tmp/ccmx-chaos.XXXXXX)
# On failure, keep the daemon log where CI's artifact upload can find
# it (a stable path, since $workdir is random and removed); only a
# clean pass deletes everything.
cleanup() {
  status=$?
  kill $daemon 2>/dev/null || true
  if [ "$status" -ne 0 ] && [ -f "$workdir/daemon.log" ]; then
    cp -f "$workdir/daemon.log" /tmp/ccmx-chaos-daemon.log || true
    echo "chaos_soak: daemon log preserved at /tmp/ccmx-chaos-daemon.log" >&2
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT
sock="$workdir/ccmx.sock"
msock="$workdir/metrics.sock"
snap="$workdir/ccmx.snap"
truth="$workdir/truth.json"
daemon=""

start_daemon() {
  ( exec "$CCMX" serve --socket "$sock" --snapshot "$snap" --workers 1 \
      --metrics-socket "$msock" \
      --request-timeout 10 --respawn-budget 1000 --respawn-window 3600 \
      "$@" 2>"$workdir/daemon.log" ) &
  daemon=$!
}

stop_daemon() {
  kill -TERM "$daemon"
  wait "$daemon" || { echo "daemon exited nonzero" >&2; exit 1; }
  daemon=""
}

drive() { python3 - "$sock" "$@"; }

# Shared python client prelude: connect with retry, line-based rpc.
PRELUDE='
import json, random, socket, sys, time

def connect(path, budget=10.0):
    deadline = time.monotonic() + budget
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    while True:
        try:
            s.connect(path)
            return s, s.makefile("rw")
        except (FileNotFoundError, ConnectionRefusedError):
            if time.monotonic() > deadline:
                sys.exit("daemon socket never appeared")
            time.sleep(0.05)

def scrape(path, target="/metrics"):
    # One-shot HTTP/1.0 GET over the metrics Unix socket, body only.
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    s.sendall(f"GET {target} HTTP/1.0\r\n\r\n".encode())
    raw = b""
    while chunk := s.recv(4096):
        raw += chunk
    s.close()
    return raw.decode().split("\r\n\r\n", 1)[1]

def metric(body, name):
    for line in body.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    sys.exit(f"metric {name} not in exposition")

def boards(n_requests):
    # Deterministic workload: the reference 8x8 low-rank board plus
    # seeded random 6x6 boards (fast to solve exactly, slow enough to
    # really search).  Same REQUESTS -> same boards -> same chaos
    # site decisions on a 1-worker daemon.
    rng = random.Random(12345)
    ref = ["01110100", "10100010", "00000000", "00000000",
           "01101000", "10111110", "11010110", "11001010"]
    out = [ref]
    for _ in range(max(0, n_requests - 1)):
        out.append(["".join(rng.choice("01") for _ in range(6))
                    for _ in range(6)])
    return out
'

# ---------------------------------------------------------------- phase 0
echo "== phase 0: ground truth (clean daemon) =="
start_daemon
drive "$truth" "$REQUESTS" <<EOF
$PRELUDE
path, truth_path, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
s, f = connect(path)
def rpc(obj):
    f.write(json.dumps(obj) + "\n"); f.flush()
    return json.loads(f.readline())
truth = []
for i, b in enumerate(boards(n)):
    r = rpc({"op": "exact_cc", "id": i, "matrix": b, "use_cache": False})
    assert r["ok"], f"clean daemon errored: {r}"
    truth.append(r["value"])
json.dump(truth, open(truth_path, "w"))
print(f"ground truth: {len(truth)} boards, values {sorted(set(truth))}")
EOF
stop_daemon
rm -f "$snap"   # phase 1 starts cold: same site sequence every run

# ---------------------------------------------------------------- phase 1
echo "== phase 1: chaos daemon (seed $SEED, rate $CHAOS_RATE) =="
start_daemon --chaos "$SEED" --chaos-rate "$CHAOS_RATE"
drive "$truth" "$REQUESTS" "$CHAOS_RATE" "$msock" <<EOF
$PRELUDE
path, truth_path = sys.argv[1], sys.argv[2]
n, rate = int(sys.argv[3]), float(sys.argv[4])
msock = sys.argv[5]
truth = json.load(open(truth_path))
s, f = connect(path)
def rpc(obj):
    f.write(json.dumps(obj) + "\n"); f.flush()
    return json.loads(f.readline())

KNOWN = {"worker_crashed", "timed_out", "overloaded", "line_too_long"}
wrong, errors, crashed = 0, 0, 0
for i, b in enumerate(boards(n)):
    r = rpc({"op": "exact_cc", "id": i, "matrix": b, "use_cache": False})
    assert r.get("id") == i, f"reply order broken: sent {i}, got {r}"
    if r["ok"]:
        if r["value"] != truth[i]:
            wrong += 1
            print(f"WRONG ANSWER board {i}: {r['value']} != {truth[i]}")
    else:
        errors += 1
        code = r.get("code")
        assert code in KNOWN, f"unstructured error under chaos: {r}"
        if code == "worker_crashed":
            crashed += 1
assert wrong == 0, f"{wrong} wrong answers under chaos"
# Crashes shed work; they must never exceed the injection pressure by
# much (3x covers crash + requeue-shed collateral on one worker).
bound = max(3, int(3 * rate * n) + 2)
assert errors <= bound, f"error rate too high: {errors}/{n} (bound {bound})"

# Pipelined burst: replies must come back in request order even while
# workers are being killed and respawned underneath.
burst = 20
ref = boards(1)[0]
for j in range(burst):
    f.write(json.dumps({"op": "ping", "id": 1000 + j}) + "\n")
f.flush()
for j in range(burst):
    r = json.loads(f.readline())
    assert r["id"] == 1000 + j, f"burst order broken at {j}: {r}"

stats = rpc({"op": "stats"})
assert stats["ok"]
counters = stats["counters"]
respawns = counters.get("serve.worker_respawns", 0)
assert respawns > 0, f"chaos run never crashed a worker: {counters}"
assert stats["workers_alive"] == 1, stats["workers_alive"]

# Observability cross-check: the Prometheus exposition must agree with
# what this client actually saw.  Every injected crash kills a worker
# mid-job and answers exactly one worker_crashed reply, so the scraped
# crash counter equals the observed reply count — and matches the
# in-band stats counter.
body = scrape(msock)
scraped = metric(body, "serve_worker_crashes_total")
assert scraped == crashed, \
    f"serve_worker_crashes_total {scraped} != {crashed} observed crashes"
assert scraped == counters.get("serve.worker_crashes", 0), \
    f"/metrics and stats disagree on crashes: {scraped} vs {counters}"
assert metric(body, "serve_worker_respawns_total") == respawns
print(f"chaos ok: {n} requests, {errors} structured errors "
      f"(bound {bound}), {respawns} worker respawns, "
      f"{crashed} crashes (= scraped counter), 0 wrong answers")
EOF
stop_daemon
[ -s "$snap" ] || { echo "chaos daemon wrote no shutdown snapshot" >&2; exit 1; }

# Under chaos the daemon's stderr must stay machine-readable: every
# line of the log is one structured JSON record.
python3 - "$workdir/daemon.log" <<'EOF'
import json, sys
bad = 0
with open(sys.argv[1]) as fh:
    lines = [l for l in fh if l.strip()]
for l in lines:
    try:
        r = json.loads(l)
        assert "ts" in r and "level" in r and "msg" in r
    except Exception:
        bad += 1
        print(f"non-JSON log line: {l.rstrip()}")
assert lines, "chaos daemon logged nothing"
assert bad == 0, f"{bad} malformed log lines"
print(f"daemon log ok: {len(lines)} JSON-lines records")
EOF

# ---------------------------------------------------------------- phase 2
echo "== phase 2: warm restart after chaos =="
start_daemon
drive <<EOF
$PRELUDE
path = sys.argv[1]
s, f = connect(path)
def rpc(obj):
    f.write(json.dumps(obj) + "\n"); f.flush()
    return json.loads(f.readline())
ref = boards(1)[0]
# The soak ran with use_cache=False, so warmth lives in the
# transposition table: the restarted daemon must answer the reference
# board with zero new node expansions.
r = rpc({"op": "exact_cc", "matrix": ref, "use_cache": False})
assert r["ok"], r
assert r["nodes"] == 0, f"restart was cold: {r['nodes']} nodes expanded"
print("warm restart ok: snapshot survived the chaos run")
EOF
stop_daemon

echo "chaos soak passed (seed $SEED, $REQUESTS requests, rate $CHAOS_RATE)"
