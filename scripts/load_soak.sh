#!/usr/bin/env bash
# Load-replay soak for the ccmx engine and serve daemon.
#
# Two passes over the same seeded traffic stream:
#   1. in-process — `ccmx bench load` drives the engine directly and
#      records per-kind latency SLOs plus the batched-kernel speedups.
#   2. daemon     — the identical stream replays against a live
#      2-worker `ccmx serve` over its Unix socket.
#
# Assertions: both passes exit ok (zero errors, zero timeouts, batch
# kernels agree with scalar), both emit a well-formed schema-v3
# BENCH_load.json (finite, ordered p50 <= p95 <= p99; positive qps;
# speedup rows present), and — the point of the exercise — the two
# answers digests are IDENTICAL: the daemon returned bit-for-bit the
# answers the in-process engine computed, so the wire path introduced
# zero wrong answers.
#
# The stream is a pure function of (SEED, REQUESTS), so a failure
# reproduces by re-running with the same arguments.  Defaults are
# sized for a CI smoke (<1 min); raise REQUESTS for a nightly soak.
#
# usage: scripts/load_soak.sh [SEED] [REQUESTS]

set -euo pipefail

SEED="${1:-20260809}"
REQUESTS="${2:-150}"

cd "$(dirname "$0")/.."
CCMX=_build/default/bin/ccmx.exe
command -v dune >/dev/null && dune build bin/ccmx.exe
[ -x "$CCMX" ] || { echo "load_soak: $CCMX not built" >&2; exit 1; }

workdir=$(mktemp -d /tmp/ccmx-load.XXXXXX)
daemon=""
# On failure, keep the daemon log at a stable path for CI's artifact
# upload; only a clean pass deletes everything.
cleanup() {
  status=$?
  kill $daemon 2>/dev/null || true
  if [ "$status" -ne 0 ] && [ -f "$workdir/daemon.log" ]; then
    cp -f "$workdir/daemon.log" /tmp/ccmx-load-daemon.log || true
    echo "load_soak: daemon log preserved at /tmp/ccmx-load-daemon.log" >&2
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT
sock="$workdir/ccmx.sock"

# ---------------------------------------------------------------- pass 1
echo "== pass 1: in-process replay (seed $SEED, $REQUESTS requests) =="
"$CCMX" bench load --seed "$SEED" --count "$REQUESTS" --jobs 2 \
  --json "$workdir/local"

# ---------------------------------------------------------------- pass 2
echo "== pass 2: daemon replay (2 workers) =="
( exec "$CCMX" serve --socket "$sock" --workers 2 \
    --request-timeout 10 2>"$workdir/daemon.log" ) &
daemon=$!
"$CCMX" bench load --seed "$SEED" --count "$REQUESTS" --jobs 2 \
  --socket "$sock" --json "$workdir/daemon"
kill -TERM "$daemon"
wait "$daemon" || { echo "daemon exited nonzero" >&2; exit 1; }
daemon=""

# ---------------------------------------------------------------- verify
python3 - "$workdir/local/BENCH_load.json" "$workdir/daemon/BENCH_load.json" <<'EOF'
import json, math, sys

def load(path):
    with open(path) as fh:
        return json.load(fh)

def slo_rows(art):
    return [r for r in art["rows"] if isinstance(r, dict) and "qps" in r]

def speedup_rows(art):
    return [r for r in art["rows"] if isinstance(r, dict) and "speedup" in r]

def check(art, label):
    assert art["status"] == "ok", f"{label}: status {art['status']}: {art.get('error')}"
    rows = slo_rows(art)
    assert any(r["function"] == "all" for r in rows), f"{label}: no 'all' SLO row"
    for r in rows:
        name = f"{label}/{r['function']}"
        assert r["errors"] == 0 and r["timeouts"] == 0, \
            f"{name}: {r['errors']} errors, {r['timeouts']} timeouts"
        assert r["ok"] == r["requests"], f"{name}: ok != requests"
        p50, p95, p99 = r["p50_ms"], r["p95_ms"], r["p99_ms"]
        for k, v in (("p50", p50), ("p95", p95), ("p99", p99), ("qps", r["qps"])):
            assert isinstance(v, (int, float)) and math.isfinite(v), \
                f"{name}: {k} not finite: {v!r}"
        assert 0 <= p50 <= p95 <= p99, f"{name}: percentiles unordered {p50}/{p95}/{p99}"
        assert r["qps"] > 0, f"{name}: non-positive qps"
    sp = speedup_rows(art)
    names = {r["function"] for r in sp}
    assert "rank_batch_16x16" in names and "singular_batch_8x8" in names, \
        f"{label}: speedup rows missing: {names}"
    for r in sp:
        assert r["agree"] is True, f"{label}/{r['function']}: batch != scalar"
    fits = art["fits"]
    assert fits["qps"] > 0 and math.isfinite(fits["qps"])
    return fits["answers_digest"]

local, daemon = load(sys.argv[1]), load(sys.argv[2])
dl = check(local, "local")
dd = check(daemon, "daemon")
assert dl == dd, f"answer digests diverge: local {dl} != daemon {dd}"
print(f"load soak ok: digests agree ({dl}), "
      f"local {local['fits']['qps']:.0f} qps, daemon {daemon['fits']['qps']:.0f} qps")
EOF

echo "load soak passed (seed $SEED, $REQUESTS requests)"
