(* ccmx — command-line driver for the Chu-Schnitger reproduction.

   Subcommands:
     gen       generate a hard instance (optionally forced singular)
     singular  decide singularity of a matrix read from a file
     check     differential fuzzing: optimized kernels vs. oracles
     protocol  run a protocol on a generated instance and report bits
     bounds    print the bound calculators for given (n, k)
     lemmas    spot-check Lemmas 3.2 / 3.5 / 3.9 on random instances *)

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35
module L39 = Commx_core.Lemma39
module Bounds = Commx_core.Bounds
module Protocol = Commx_comm.Protocol
module Partition = Commx_comm.Partition
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint
module Cli = Commx_util.Cli
module Clock = Commx_util.Clock
module Faults = Commx_util.Faults
module Supervisor = Commx_util.Supervisor
module Telemetry = Commx_util.Telemetry
module Artifact = Commx_util.Artifact
module Json = Commx_util.Json
module Runner = Commx_check.Runner
module Suite = Commx_check.Suite
module Sigguard = Commx_util.Sigguard
module Logging = Commx_util.Logging
module Server = Commx_serve.Server
module Client = Commx_serve.Client
module Wire = Commx_serve.Wire
module Traffic = Commx_util.Traffic
module Load = Commx_load.Load

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let n_arg =
  let doc = "Half-dimension n (the matrix is 2n x 2n); odd, >= 5." in
  Arg.(value & opt int 7 & info [ "n" ] ~docv:"N" ~doc)

let k_arg =
  let doc = "Bits per entry; >= 2." in
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let params_of n k =
  if not (Params.is_valid ~n ~k) then
    `Error (false, Printf.sprintf "invalid parameters n=%d k=%d" n k)
  else `Ok (Params.make ~n ~k)

let print_matrix m =
  for i = 0 to Zm.rows m - 1 do
    print_string
      (String.concat " "
         (List.init (Zm.cols m) (fun j -> B.to_string (Zm.get m i j))));
    print_newline ()
  done

let read_matrix path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then begin
         let entries =
           line |> String.split_on_char ' '
           |> List.filter (fun s -> s <> "")
           |> List.map B.of_string
         in
         rows := Array.of_list entries :: !rows
       end
     done
   with End_of_file -> close_in ic);
  match List.rev !rows with
  | [] -> failwith "empty matrix file"
  | first :: _ as rows_list ->
      let cols = Array.length first in
      if List.exists (fun r -> Array.length r <> cols) rows_list then
        failwith "ragged matrix file";
      let arr = Array.of_list rows_list in
      Zm.init (Array.length arr) cols (fun i j -> arr.(i).(j))

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen n k seed singular =
  match params_of n k with
  | `Error _ as e -> e
  | `Ok p ->
      let g = Prng.create seed in
      let f = H.random_free g p in
      let f =
        if singular then (L35.complete p ~c:f.H.c ~e:f.H.e).L35.free else f
      in
      print_matrix (H.build_m p f);
      `Ok ()

let gen_cmd =
  let singular =
    Arg.(
      value & flag
      & info [ "singular" ]
          ~doc:"Complete D, y via Lemma 3.5(a) so the instance is singular.")
  in
  let doc = "Generate a Fig. 1/3 hard instance on stdout." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(ret (const gen $ n_arg $ k_arg $ seed_arg $ singular))

(* ------------------------------------------------------------------ *)
(* singular (named `check` before the fuzzer took that name)           *)
(* ------------------------------------------------------------------ *)

let singular path =
  let m = read_matrix path in
  if not (Zm.is_square m) then `Error (false, "matrix is not square")
  else begin
    let d = Zm.det m in
    Printf.printf "dimension: %d\nrank: %d\ndet: %s\nsingular: %b\n"
      (Zm.rows m) (Zm.rank m) (B.to_string d) (B.is_zero d);
    `Ok ()
  end

let singular_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Whitespace-separated integer matrix.")
  in
  let doc = "Decide singularity (plus rank and determinant) exactly." in
  Cmd.v (Cmd.info "singular" ~doc) Term.(ret (const singular $ path))

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)
(* ------------------------------------------------------------------ *)

let protocol n k seed which epsilon =
  match params_of n k with
  | `Error _ as e -> e
  | `Ok p ->
      let g = Prng.create seed in
      let m = H.build_m p (H.random_free g p) in
      let alice, bob = Halves.split_pi0 m in
      let truth = Zm.is_singular m in
      (match which with
      | "trivial" ->
          let got, bits = Protocol.execute (Trivial.singularity ~k) alice bob in
          Printf.printf
            "trivial protocol: answer=%b (truth %b), %d bits (2kn^2 = %d)\n"
            got truth bits
            (Bounds.trivial_upper_bits ~n ~k);
          `Ok ()
      | "fingerprint" ->
          let rp = Fingerprint.singularity ~n ~k ~epsilon in
          let got, bits =
            Protocol.execute
              (rp.Commx_comm.Randomized.run_seeded ~seed:(seed + 1))
              alice bob
          in
          Printf.printf
            "fingerprint protocol (eps=%.3f): answer=%b (truth %b), %d \
             bits (trivial: %d)\n"
            epsilon got truth bits
            (Bounds.trivial_upper_bits ~n ~k);
          `Ok ()
      | other ->
          `Error (false, Printf.sprintf "unknown protocol %S" other))

let protocol_cmd =
  let which =
    Arg.(
      value
      & opt string "trivial"
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"Protocol to run: $(b,trivial) or $(b,fingerprint).")
  in
  let epsilon =
    Arg.(
      value & opt float 0.01
      & info [ "epsilon" ] ~docv:"EPS" ~doc:"Fingerprint error budget.")
  in
  let doc = "Run a protocol on a random instance and count bits." in
  Cmd.v (Cmd.info "protocol" ~doc)
    Term.(ret (const protocol $ n_arg $ k_arg $ seed_arg $ which $ epsilon))

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)
(* ------------------------------------------------------------------ *)

let bounds n k =
  if n <= 0 || k <= 0 then `Error (false, "need positive n, k")
  else begin
    let info = Bounds.info_bits ~n ~k in
    Printf.printf
      "n=%d k=%d\n\
       trivial upper bound        : %d bits\n\
       Theorem 1.1 lower bound    : %.1f bits (constant-explicit)\n\
       randomized upper (eps=.01) : %d bits\n\
       det/rand gap               : %.2fx\n\
       I = k n^2                  : %.0f\n\
       A T^2 >=                   : %.0f\n\
       our T >=                   : %.1f   (Chazelle-Monier: %.0f)\n\
       our AT >=                  : %.0f   (Chazelle-Monier: %.0f)\n"
      n k
      (Bounds.trivial_upper_bits ~n ~k)
      (Bounds.deterministic_lower_bits ~n ~k)
      (Bounds.randomized_upper_bits ~n ~k ~epsilon:0.01)
      (Bounds.deterministic_over_randomized ~n ~k ~epsilon:0.01)
      info
      (Bounds.at2_lower ~info_bits:info)
      (Bounds.our_time_lower ~n ~k)
      (Bounds.chazelle_monier_time_lower ~n)
      (Bounds.our_at_lower ~n ~k)
      (Bounds.chazelle_monier_at_lower ~n);
    `Ok ()
  end

let bounds_cmd =
  let doc = "Print all bound calculators for (n, k)." in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(ret (const bounds $ n_arg $ k_arg))

(* ------------------------------------------------------------------ *)
(* lemmas                                                              *)
(* ------------------------------------------------------------------ *)

let lemmas_id = "lemmas"

let lemmas n k seed trials opts =
  match params_of n k with
  | `Error _ as e -> e
  | `Ok p ->
      (* Full flag parity with bench/main.exe: the cmdliner terms below
         assemble the same Commx_util.Cli.opts record the bench parser
         produces (env fallback included), and every downstream policy
         — supervision, resume, artifact schema, telemetry level — goes
         through the same shared modules. *)
      let opts = Cli.with_env_fault_seed opts in
      let json_dir =
        match (opts.Cli.json_dir, opts.Cli.resume_dir) with
        | (Some _ as d), _ | None, d -> d
      in
      if
        match opts.Cli.resume_dir with
        | Some dir -> Artifact.resume_done ~dir ~id:lemmas_id
        | None -> false
      then begin
        Printf.printf "[resume] %s: ok artifact present, skipping\n" lemmas_id;
        `Ok ()
      end
      else begin
        let faults =
          Option.map (fun s -> Faults.create ~seed:s ()) opts.Cli.fault_seed
        in
        let config =
          Supervisor.config ?timeout_s:opts.Cli.timeout_s
            ~retries:opts.Cli.retries ()
        in
        Telemetry.set_level (Cli.telemetry_level opts);
        let trace_writer =
          Option.map (fun path -> Telemetry.Trace.open_file ~path)
            opts.Cli.trace_file
        in
        let run_trials pool ~attempt =
          Faults.point faults
            ~site:(Printf.sprintf "lemmas:attempt%d" attempt);
          let g = Prng.create seed in
          (* Trials are independent; each draws from a generator split
             off the master seed before the fan-out, so the counts are
             identical at any --jobs value. *)
          Commx_util.Pool.parallel_map_seeded pool g
            (fun g () ->
              let f = H.random_free g p in
              let a32 = L32.agrees p f in
              let w = L35.complete p ~c:f.H.c ~e:f.H.e in
              let a35 = L35.check_witness p w in
              let dim = 2 * n in
              let partition = Partition.random_even g (dim * dim * k) in
              let a39 =
                match L39.find_transform g p partition with
                | Some t ->
                    L39.is_proper p (L39.apply_transform p partition t)
                | None -> false
              in
              (a32, a35, a39))
            (Array.make trials ())
        in
        let counters_before = Telemetry.counters () in
        let t0 = Clock.now_s () in
        let outcome, attempts =
          Fun.protect
            ~finally:(fun () ->
              match trace_writer with
              | Some w ->
                  (try Telemetry.Trace.flush w (Telemetry.drain_events ())
                   with e ->
                     Telemetry.Trace.abort w;
                     raise e);
                  Telemetry.Trace.close w
              | None -> ())
            (fun () ->
              Commx_util.Pool.with_pool ~jobs:opts.Cli.jobs (fun pool ->
                  Commx_util.Pool.set_faults pool faults;
                  Telemetry.with_span "experiment" ~args:[ ("id", lemmas_id) ]
                    (fun () ->
                      Supervisor.run ~config ~pool ~name:lemmas_id
                        (run_trials pool))))
        in
        let wall_s = Clock.now_s () -. t0 in
        let metrics =
          if Telemetry.metrics_on () then
            Some
              (Artifact.metrics
                 ~counters:
                   (Telemetry.diff_counters ~before:counters_before
                      (Telemetry.counters ()))
                 ~phases:(Telemetry.drain_phases ()))
          else None
        in
        let summarize (results : (bool * bool * bool) array) =
          let count f =
            Array.fold_left (fun a r -> if f r then a + 1 else a) 0 results
          in
          let ok32 = count (fun (a, _, _) -> a)
          and ok35 = count (fun (_, a, _) -> a)
          and ok39 = count (fun (_, _, a) -> a) in
          (ok32, ok35, ok39)
        in
        (match json_dir with
        | Some dir ->
            let status = Supervisor.outcome_label outcome in
            let error =
              match outcome with
              | Supervisor.Ok _ -> Json.Null
              | Supervisor.Failed { exn; _ } -> Json.String exn
              | Supervisor.Timed_out budget ->
                  Json.String
                    (Printf.sprintf "deadline exceeded (%.3f s budget)" budget)
            in
            let report_fields =
              match outcome with
              | Supervisor.Ok results ->
                  let ok32, ok35, ok39 = summarize results in
                  [ ("title",
                     Json.String "Lemmas 3.2 / 3.5(a) / 3.9 spot-check");
                    ("params",
                     Json.Obj
                       [ ("n", Json.Int n); ("k", Json.Int k);
                         ("seed", Json.Int seed); ("trials", Json.Int trials) ]);
                    ("rows",
                     Json.List
                       [ Json.Obj
                           [ ("lemma_32_ok", Json.Int ok32);
                             ("lemma_35_ok", Json.Int ok35);
                             ("lemma_39_ok", Json.Int ok39);
                             ("trials", Json.Int trials) ] ]);
                    ("fits", Json.Obj []) ]
              | _ ->
                  [ ("title", Json.Null); ("params", Json.Obj []);
                    ("rows", Json.List []); ("fits", Json.Obj []) ]
            in
            Artifact.write ~dir ~id:lemmas_id ~jobs:opts.Cli.jobs ~wall_s
              ~attempts ~status ~error ?metrics ~report_fields ();
            Printf.printf "[json] wrote %s (status: %s)\n"
              (Artifact.path ~dir ~id:lemmas_id)
              status
        | None -> ());
        if opts.Cli.metrics then Telemetry.print_summary stdout;
        match outcome with
        | Supervisor.Ok results ->
            let ok32, ok35, ok39 = summarize results in
            Printf.printf
              "lemma 3.2 (criterion = ground truth): %d/%d\n\
               lemma 3.5 (completion singular)     : %d/%d\n\
               lemma 3.9 (proper transform found)  : %d/%d\n"
              ok32 trials ok35 trials ok39 trials;
            `Ok ()
        | Supervisor.Failed { exn; _ } ->
            let msg =
              Printf.sprintf "lemmas failed after %d attempt(s): %s" attempts
                exn
            in
            if opts.Cli.keep_going then begin
              (* Parity with bench --keep-going: report, don't abort the
                 evaluation — the artifact carries the failure. *)
              Printf.eprintf "%s\n" msg;
              `Ok ()
            end
            else `Error (false, msg)
        | Supervisor.Timed_out budget ->
            let msg =
              Printf.sprintf "lemmas timed out (%.3f s budget, %d attempt(s))"
                budget attempts
            in
            if opts.Cli.keep_going then begin
              Printf.eprintf "%s\n" msg;
              `Ok ()
            end
            else `Error (false, msg)
      end

(* The shared-options cmdliner term: one Arg per Commx_util.Cli flag,
   assembled into the same opts record Cli.parse produces, with the
   same defaults (Cli.defaults) — so `ccmx lemmas --help` documents
   every bench/main flag and validation cannot drift. *)
let cli_opts_term =
  let jobs =
    Arg.(
      value & opt int Cli.defaults.Cli.jobs
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Worker domains for the trial loop (default: 1).  Results \
             are deterministic in the seed regardless of $(docv).")
  in
  let json =
    Arg.(
      value
      & opt (some string) Cli.defaults.Cli.json_dir
      & info [ "json" ] ~docv:"DIR"
          ~doc:
            "Write a schema-v3 BENCH_lemmas.json artifact (status, \
             metrics, measurements) into $(docv) (default: off).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) Cli.defaults.Cli.timeout_s
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt time budget on the monotonic clock (default: \
             none); the trial loop is cancelled cooperatively when it \
             expires.")
  in
  let retries =
    Arg.(
      value & opt int Cli.defaults.Cli.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts for retryable (injected) failures \
             (default: 0).")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going" ]
          ~doc:
            "Record a failed or timed-out run in the artifact and exit \
             0 instead of failing (default: off).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) Cli.defaults.Cli.resume_dir
      & info [ "resume" ] ~docv:"DIR"
          ~doc:
            "Skip the run if $(docv) already holds a valid status-ok \
             BENCH_lemmas.json; implies writing artifacts there \
             (default: off).")
  in
  let inject_faults =
    Arg.(
      value
      & opt (some int) Cli.defaults.Cli.fault_seed
      & info [ "inject-faults" ] ~docv:"SEED"
          ~doc:
            (Printf.sprintf
               "Deterministically inject faults into pool tasks \
                (default: off; also read from $(b,%s))."
               Cli.fault_seed_env_var))
  in
  let trace =
    Arg.(
      value
      & opt (some string) Cli.defaults.Cli.trace_file
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the run to $(docv) \
             (open in chrome://tracing or Perfetto; default: off).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the telemetry counter/histogram summary at end of \
             run (default: off).")
  in
  let build jobs json_dir timeout_s retries keep_going resume_dir fault_seed
      trace_file metrics =
    if jobs < 1 then `Error (false, "--jobs must be >= 1")
    else
      `Ok
        { Cli.defaults with
          Cli.jobs; json_dir; timeout_s; retries; keep_going; resume_dir;
          fault_seed; trace_file; metrics }
  in
  Term.(
    term_result' ~usage:false
      (const (fun a b c d e f g h i ->
           match build a b c d e f g h i with
           | `Ok v -> Ok v
           | `Error (_, msg) -> Error msg)
      $ jobs $ json $ timeout $ retries $ keep_going $ resume $ inject_faults
      $ trace $ metrics))

let lemmas_cmd =
  let trials =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"T" ~doc:"Trials (default: 20).")
  in
  let doc = "Spot-check Lemmas 3.2, 3.5(a) and 3.9 on random instances." in
  Cmd.v (Cmd.info "lemmas" ~doc)
    Term.(
      ret (const lemmas $ n_arg $ k_arg $ seed_arg $ trials $ cli_opts_term))

(* ------------------------------------------------------------------ *)
(* ledger                                                              *)
(* ------------------------------------------------------------------ *)

let ledger n k proper =
  match params_of n k with
  | `Error _ as e -> e
  | `Ok p ->
      let l =
        if proper then Commx_core.Theorem11.proper_partition_ledger p
        else Commx_core.Theorem11.ledger p
      in
      Format.printf "%a@." Commx_core.Theorem11.pp l;
      `Ok ()

let ledger_cmd =
  let proper =
    Arg.(
      value & flag
      & info [ "proper" ]
          ~doc:
            "Use the arbitrary-even-partition (Definition 3.8) variant \
             instead of the pi_0 ledger.")
  in
  let doc = "Print the Theorem 1.1 accounting ledger for (n, k)." in
  Cmd.v (Cmd.info "ledger" ~doc)
    Term.(ret (const ledger $ n_arg $ k_arg $ proper))

(* ------------------------------------------------------------------ *)
(* exactcc                                                             *)
(* ------------------------------------------------------------------ *)

let exactcc k =
  if k < 1 || k > 1 then
    `Error (false, "only k = 1 is enumerable within the search limits")
  else begin
    let inputs = List.init 4 (fun v -> (v lsr 1, v land 1)) in
    let tm =
      Commx_comm.Truth_matrix.build inputs inputs (fun (a, c) (b, d) ->
          (a * d) - (b * c) = 0)
    in
    let cc = Commx_comm.Exact_cc.complexity_tm tm in
    let m = Commx_comm.Truth_matrix.to_bitmat tm in
    let d = Commx_comm.Cover.min_partition m in
    Printf.printf
      "singularity of 2x2 matrices of %d-bit entries under pi_0:\n\
       exact deterministic CC : %d bits\n\
       d(f) (min partition)   : %d  (Yao: CC >= log2 d = %.2f)\n\
       min 1-cover / 0-cover  : %d / %d\n"
      k cc d
      (log (float_of_int d) /. log 2.0)
      (Commx_comm.Cover.min_one_cover m)
      (Commx_comm.Cover.min_zero_cover m);
    `Ok ()
  end

let exactcc_cmd =
  let doc =
    "Exact deterministic communication complexity of the tiny \
     singularity instance (exhaustive over all protocols)."
  in
  Cmd.v (Cmd.info "exactcc" ~doc) Term.(ret (const exactcc $ k_arg))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve socket workers snapshot cache_capacity table_budget max_queue
    drain_timeout request_timeout write_timeout max_line_bytes snapshot_every
    chaos_seed chaos_rate respawn_budget respawn_window metrics_socket
    metrics_port log_file log_level slow_ms trace_ring trace_dump =
  let chaos =
    Option.map
      (fun seed -> Faults.create ~seed ~rate:chaos_rate ~delay_rate:0.0 ())
      chaos_seed
  in
  match Logging.level_of_string log_level with
  | None -> `Error (false, Printf.sprintf "unknown log level %S" log_level)
  | Some level -> (
      let logger =
        match log_file with
        | Some path ->
            Logging.create ~level ~sink:(Logging.file_sink ~path) ()
        | None -> Logging.create ~level ()
      in
      match
        Server.config ~socket_path:socket ~workers ?snapshot_path:snapshot
          ~cache_capacity ?table_budget ~max_queue
          ~drain_timeout_s:drain_timeout ?request_timeout_s:request_timeout
          ~write_timeout_s:write_timeout ~max_line_bytes
          ?snapshot_every_s:snapshot_every ~respawn_budget
          ~respawn_window_s:respawn_window ?chaos ~logger ?metrics_socket
          ?metrics_port ?slow_ms ~trace_ring ?trace_dump_path:trace_dump ()
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | config -> (
          (* The acceptor polls this flag between select rounds, so the
             handlers only flip it: the daemon then drains in-flight work
             and snapshots instead of dying mid-request. *)
          let stop = Atomic.make false in
          let request_stop _ = Atomic.set stop true in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
          (* Metrics feed the stats op and /metrics: latency histograms,
             exact_cc.* and channel bit counters. *)
          Telemetry.set_level Telemetry.Metrics;
          (* Supervisor retry notices join the same structured stream,
             so --log-file captures every daemon event. *)
          Supervisor.set_log_sink (fun r ->
              Logging.warn logger
                ~fields:
                  [ ("name", Json.String r.Supervisor.name);
                    ("attempt", Json.Int r.Supervisor.attempt) ]
                (Printf.sprintf
                   "%s: attempt %d failed (%s), retrying in %.2fs"
                   r.Supervisor.name r.Supervisor.attempt r.Supervisor.exn
                   r.Supervisor.pause_s));
          match Server.run ~stop config with
          | () -> `Ok ()
          | exception Server.Fatal msg ->
              (* Drained and snapshotted already; the nonzero exit is
                 the signal a process supervisor restarts on. *)
              `Error (false, "serve: " ^ msg)
          | exception Unix.Unix_error (err, fn, arg) ->
              `Error
                ( false,
                  Printf.sprintf "serve: %s(%s): %s" fn arg
                    (Unix.error_message err) )))

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket to listen on (any stale file there is \
             replaced).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Worker domains; each owns one transposition-table segment \
             and exact-CC queries route to segments by content, so the \
             same matrix always finds its warm entries (default: 2).")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Persist the warm state (result cache, table segments, key \
             tags) to $(docv) on graceful shutdown and load it on start \
             (written atomically; corrupt or version-mismatched files \
             are rejected and the daemon starts cold; default: off).")
  in
  let cache_capacity =
    Arg.(
      value & opt int 1024
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Result-cache entries, FIFO-evicted (default: 1024).")
  in
  let table_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "table-budget" ] ~docv:"N"
          ~doc:
            "Per-segment transposition-table entry budget; beyond it \
             the table evicts instead of growing (default: unbounded).")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound per worker queue; requests beyond it get \
             an immediate overload error (default: 64).")
  in
  let drain_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "drain-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Max wait for in-flight requests on shutdown (default: 30).")
  in
  let request_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Default compute deadline per request; searches that exceed \
             it answer a timed_out error carrying the bounds certified \
             so far.  A request's own deadline_ms can only tighten it \
             (default: none).")
  in
  let write_timeout =
    Arg.(
      value & opt float 5.0
      & info [ "write-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Max wall time for one reply write; a client that stops \
             reading is disconnected instead of parking a worker \
             (default: 5).")
  in
  let max_line_bytes =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:
            "Request-line size bound; larger lines get a line_too_long \
             error and are skipped, the connection survives (default: \
             1048576).")
  in
  let snapshot_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "snapshot-every" ] ~docv:"SECONDS"
          ~doc:
            "Also rewrite the --snapshot file every $(docv) seconds \
             while serving, so a crash loses at most one interval of \
             warmth (default: only on graceful shutdown).")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Arm deterministic fault injection at the serve chaos sites \
             (worker crashes, cache-insert failures, snapshot-write \
             failures), seeded by $(docv).  The same seed reproduces \
             the same fault pattern in every run (default: off).")
  in
  let chaos_rate =
    Arg.(
      value & opt float 0.05
      & info [ "chaos-rate" ] ~docv:"RATE"
          ~doc:
            "Raise probability per chaos site when --chaos is armed \
             (default: 0.05).")
  in
  let respawn_budget =
    Arg.(
      value & opt int 3
      & info [ "respawn-budget" ] ~docv:"N"
          ~doc:
            "Crashed-worker respawns allowed per sliding window before \
             the daemon gives up and exits nonzero (default: 3).")
  in
  let respawn_window =
    Arg.(
      value & opt float 60.0
      & info [ "respawn-window" ] ~docv:"SECONDS"
          ~doc:"Sliding window for --respawn-budget (default: 60).")
  in
  let metrics_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-socket" ] ~docv:"PATH"
          ~doc:
            "Also listen on this Unix socket for GET /metrics \
             (Prometheus text format) and GET /healthz (JSON \
             readiness); any stale file there is replaced (default: \
             off).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Also serve /metrics and /healthz on 127.0.0.1:$(docv) \
             (loopback only; default: off).")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"FILE"
          ~doc:
            "Append structured JSON log lines to $(docv) instead of \
             stderr (created with parents, flushed per line; default: \
             stderr).")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Minimum severity to log: error, warn, info or debug \
             (default: info).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold: any request slower than $(docv) \
             milliseconds logs one slow_query warn line with its key \
             tag, nodes, table hits, certified bounds and outcome \
             (default: off).")
  in
  let trace_ring =
    Arg.(
      value & opt int 256
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:
            "Flight-recorder capacity: keep the span chains of the \
             last $(docv) completed requests for the dump_trace op \
             (0 disables recording; default: 256).")
  in
  let trace_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dump" ] ~docv:"FILE"
          ~doc:
            "Dump the flight recorder to $(docv) as Chrome trace JSON \
             on worker crash and on fatal exit (default: off).")
  in
  let doc =
    "Long-running CC-oracle daemon on a Unix socket: JSON-lines \
     queries (exact CC, singularity, Lemma 3.2, lower bounds, protocol \
     runs) answered concurrently across domains, with a shared warm \
     transposition-table arrangement and a content-addressed result \
     cache that survive across requests — and, with --snapshot, across \
     restarts.  SIGTERM/SIGINT drain gracefully.  Observability: \
     --metrics-socket/--metrics-port (Prometheus + /healthz), \
     --log-file/--log-level (structured JSON logs), --slow-ms \
     (slow-query log), --trace-ring/--trace-dump (flight recorder)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const serve $ socket $ workers $ snapshot $ cache_capacity
       $ table_budget $ max_queue $ drain_timeout $ request_timeout
       $ write_timeout $ max_line_bytes $ snapshot_every $ chaos_seed
       $ chaos_rate $ respawn_budget $ respawn_window $ metrics_socket
       $ metrics_port $ log_file $ log_level $ slow_ms $ trace_ring
       $ trace_dump))

(* ------------------------------------------------------------------ *)
(* query — one request against a running serve daemon                   *)
(* ------------------------------------------------------------------ *)

let parse_bit_rows s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun r -> r <> "")

let parse_int_rows s =
  String.split_on_char ';' s
  |> List.map (fun row ->
         String.split_on_char ',' row |> List.map String.trim
         |> List.filter (fun e -> e <> ""))
  |> List.filter (fun r -> r <> [])

let query socket op matrix int_matrix n k seed proto epsilon no_cache
    deadline_ms timeout connect_timeout retries backoff jitter_seed verbose =
  let fields = ref [] in
  let add name v = fields := (name, v) :: !fields in
  Option.iter
    (fun s ->
      add "matrix"
        (Json.List
           (parse_int_rows s
           |> List.map (fun row ->
                  Json.List (List.map (fun e -> Json.String e) row)))))
    int_matrix;
  Option.iter
    (fun s ->
      add "matrix"
        (Json.List (List.map (fun r -> Json.String r) (parse_bit_rows s))))
    matrix;
  Option.iter (fun v -> add "n" (Json.Int v)) n;
  Option.iter (fun v -> add "k" (Json.Int v)) k;
  Option.iter (fun v -> add "seed" (Json.Int v)) seed;
  Option.iter (fun v -> add "protocol" (Json.String v)) proto;
  Option.iter (fun v -> add "epsilon" (Json.Float v)) epsilon;
  if no_cache then add "use_cache" (Json.Bool false);
  let log =
    if verbose then fun msg -> prerr_endline ("query: " ^ msg) else ignore
  in
  match
    Client.create ~socket_path:socket ~connect_timeout_s:connect_timeout
      ?request_timeout_s:timeout ~retries ~backoff_s:backoff ~jitter_seed ~log
      ()
  with
  | exception Invalid_argument msg -> `Error (false, msg)
  | client -> (
      let result = Client.request client ?deadline_ms ~op (List.rev !fields) in
      Client.close client;
      match result with
      | Ok reply ->
          print_string (Wire.to_line reply);
          `Ok ()
      | Error (Client.Server_error { reply; _ } as e) ->
          (* The error reply is still the JSON the caller asked for;
             the exit code carries the verdict. *)
          print_string (Wire.to_line reply);
          `Error (false, "query: " ^ Client.error_to_string e)
      | Error e -> `Error (false, "query: " ^ Client.error_to_string e))

let query_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the running daemon.")
  in
  let op =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "Operation: ping, stats, shutdown, exact_cc, lower_bounds, \
             singular, lemma32 or protocol.")
  in
  let matrix =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"ROWS"
          ~doc:
            "Boolean matrix as comma-separated rows of 0/1 characters \
             (e.g. 01,10) — for exact_cc and lower_bounds.")
  in
  let int_matrix =
    Arg.(
      value
      & opt (some string) None
      & info [ "int-matrix" ] ~docv:"ROWS"
          ~doc:
            "Integer matrix: rows separated by ';', entries by ',' \
             (e.g. 1,2;3,4) — for singular.")
  in
  let n =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Half-dimension for lemma32/protocol.")
  in
  let k =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~docv:"K" ~doc:"Bits per entry for lemma32/protocol.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Instance seed for lemma32/protocol.")
  in
  let proto =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"Protocol for the protocol op: trivial or fingerprint.")
  in
  let epsilon =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon" ] ~docv:"EPS"
          ~doc:"Error bound for the fingerprint protocol.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Bypass the daemon's result cache (the warm transposition \
             table is still used).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Server-side compute deadline for this request; past it the \
             daemon answers timed_out with the bounds certified so far.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Client-side wall budget per attempt (default: wait \
             forever).  Timeouts are never retried.")
  in
  let connect_timeout =
    Arg.(
      value & opt float 5.0
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Connect timeout per attempt (default: 5).")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts after the first, for transport failures and \
             transient server errors (default: 2).")
  in
  let backoff =
    Arg.(
      value & opt float 0.05
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base retry pause; attempt i waits backoff * 2^(i-1) plus \
             deterministic jitter (default: 0.05).")
  in
  let jitter_seed =
    Arg.(
      value & opt int 0
      & info [ "jitter-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the deterministic backoff jitter (default: 0).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Log retries and breaker events to stderr.")
  in
  let doc =
    "Send one query to a running $(b,ccmx serve) daemon and print the \
     JSON reply, with connect/request timeouts, bounded jittered retry \
     and a circuit breaker (exit status is nonzero on any error reply \
     or transport failure)."
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      ret
        (const query $ socket $ op $ matrix $ int_matrix $ n $ k $ seed
       $ proto $ epsilon $ no_cache $ deadline_ms $ timeout
       $ connect_timeout $ retries $ backoff $ jitter_seed $ verbose))

(* ------------------------------------------------------------------ *)
(* top — live dashboard over the stats op                              *)
(* ------------------------------------------------------------------ *)

let jint ?(default = 0) obj key =
  match Json.member key obj with Some (Json.Int v) -> v | _ -> default

let jfloat ?(default = 0.0) obj key =
  match Json.member key obj with
  | Some (Json.Float v) -> v
  | Some (Json.Int v) -> float_of_int v
  | _ -> default

let jbool ?(default = false) obj key =
  match Json.member key obj with Some (Json.Bool v) -> v | _ -> default

let render_top ~socket ~breaker reply ~qps =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let sub key =
    match Json.member key reply with
    | Some (Json.Obj _ as o) -> o
    | _ -> Json.Obj []
  in
  let lat = sub "latency_us" and rc = sub "result_cache" and tb = sub "table" in
  line "ccmx top — %s    uptime %.1fs    breaker %s" socket
    (jfloat reply "uptime_s") breaker;
  line "requests %d (%.1f/s)    errors %d    workers %d/%d"
    (jint reply "requests") qps (jint reply "errors")
    (jint reply "workers_alive") (jint reply "workers");
  let ch = jint rc "hits" and cm = jint rc "misses" in
  let hit_pct =
    if ch + cm = 0 then 0.0
    else 100.0 *. float_of_int ch /. float_of_int (ch + cm)
  in
  line
    "result cache: %.1f%% hit (%d hits / %d misses, %d/%d entries, %d \
     evicted)"
    hit_pct ch cm (jint rc "entries") (jint rc "capacity")
    (jint rc "evictions");
  line "table: %d hits, %d misses, %d stores, %d evictions, %d entries"
    (jint tb "hits") (jint tb "misses") (jint tb "stores")
    (jint tb "evictions") (jint tb "entries");
  line "latency (all ops): count %d  p50 %.0fus  p95 %.0fus  p99 %.0fus"
    (jint lat "count") (jfloat lat "p50") (jfloat lat "p95")
    (jfloat lat "p99");
  (match Json.member "ops" reply with
  | Some (Json.Obj kvs) when kvs <> [] ->
      line "";
      line "%-16s %8s %10s %10s %10s" "op" "count" "p50(us)" "p95(us)"
        "p99(us)";
      List.iter
        (fun (op, o) ->
          line "%-16s %8d %10.0f %10.0f %10.0f" op (jint o "count")
            (jfloat o "p50_us") (jfloat o "p95_us") (jfloat o "p99_us"))
        kvs
  | _ -> ());
  (match Json.member "queues" reply with
  | Some (Json.List ws) when ws <> [] ->
      line "";
      line "%-8s %8s %10s %7s" "worker" "queued" "inflight" "alive";
      List.iter
        (fun w ->
          line "%-8d %8d %10d %7s" (jint w "worker") (jint w "queued")
            (jint w "inflight")
            (if jbool w "alive" then "yes" else "NO"))
        ws
  | _ -> ());
  (match Json.member "counters" reply with
  | Some (Json.Obj _ as cs) ->
      line "";
      line
        "crashes %d  respawns %d  overloaded %d  timeouts %d  slow %d  \
         snapshots %d"
        (jint cs "serve.worker_crashes")
        (jint cs "serve.worker_respawns")
        (jint cs "serve.overloaded")
        (jint cs "serve.deadline_timeouts")
        (jint cs "serve.slow_queries")
        (jint cs "serve.snapshots_written")
  | _ -> ());
  Buffer.contents buf

let top socket interval count once =
  if interval <= 0.0 then `Error (false, "--interval must be > 0")
  else
    match Client.create ~socket_path:socket () with
    | exception Invalid_argument msg -> `Error (false, msg)
    | client ->
        (* Clearing the screen only makes sense for a live terminal;
           piped output gets plain appended frames. *)
        let clear = (not once) && Unix.isatty Unix.stdout in
        let prev = ref None in
        let rec go i =
          match Client.stats client with
          | Error e ->
              Client.close client;
              `Error (false, "top: " ^ Client.error_to_string e)
          | Ok reply ->
              let now = Clock.now_s () in
              let requests = jint reply "requests" in
              (* qps from the request-counter delta between polls, so
                 it reflects all clients, not just this one. *)
              let qps =
                match !prev with
                | Some (r0, t0) when now > t0 ->
                    float_of_int (requests - r0) /. (now -. t0)
                | _ -> 0.0
              in
              prev := Some (requests, now);
              if clear then print_string "\027[2J\027[H";
              print_string
                (render_top ~socket ~breaker:(Client.breaker_state client)
                   reply ~qps);
              flush stdout;
              if once || (count > 0 && i + 1 >= count) then begin
                Client.close client;
                `Ok ()
              end
              else begin
                Clock.sleepf interval;
                go (i + 1)
              end
        in
        go 0

let top_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the running daemon.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period (default: 2).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) refreshes (default: run until ^C).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single snapshot without clearing and exit.")
  in
  let doc =
    "Live terminal dashboard for a running $(b,ccmx serve) daemon: \
     polls the stats op and shows request rate, per-op latency \
     quantiles, queue depths, cache hit rate, worker liveness and \
     robustness counters."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(ret (const top $ socket $ interval $ count $ once))

(* ------------------------------------------------------------------ *)
(* check — differential fuzzing                                        *)
(* ------------------------------------------------------------------ *)

let check_id = "check"

let print_report ~seed ~count (r : Runner.report) =
  match r.Runner.outcome with
  | Runner.Pass ->
      Printf.printf "ok   %-32s %4d cases  %6.2fs\n" r.Runner.name
        r.Runner.cases r.Runner.wall_s
  | Runner.Failed f ->
      Printf.printf
        "FAIL %s (case %d, case-seed %d): %s\n\
        \  counterexample (%d shrink steps): %s\n\
        \  original: %s\n\
        \  replay: ccmx check --seed %d --count %d --filter '%s'\n"
        r.Runner.name f.Runner.case_index f.Runner.case_seed f.Runner.message
        f.Runner.shrink_steps f.Runner.counterexample f.Runner.original seed
        count r.Runner.name

let check_fuzz seed count budget filter list_only opts =
  if list_only then begin
    List.iter
      (fun p -> print_endline (Commx_check.Property.name p))
      (Suite.all ());
    `Ok ()
  end
  else begin
    let opts = Cli.with_env_fault_seed opts in
    Telemetry.set_level (Cli.telemetry_level opts);
    let json_dir =
      match (opts.Cli.json_dir, opts.Cli.resume_dir) with
      | (Some _ as d), _ | None, d -> d
    in
    if
      match opts.Cli.resume_dir with
      | Some dir -> Artifact.resume_done ~dir ~id:check_id
      | None -> false
    then begin
      Printf.printf "[resume] %s: ok artifact present, skipping\n" check_id;
      `Ok ()
    end
    else begin
      (* --timeout doubles as the per-property budget when --budget is
         absent, keeping flag semantics close to the supervised
         subcommands; the runner itself is sequential. *)
      let budget_s =
        match budget with Some _ as b -> b | None -> opts.Cli.timeout_s
      in
      let counters_before = Telemetry.counters () in
      let trace_writer =
        Option.map
          (fun path -> Telemetry.Trace.open_file ~path)
          opts.Cli.trace_file
      in
      let t0 = Clock.now_s () in
      let reports =
        Fun.protect
          ~finally:(fun () ->
            match trace_writer with
            | Some w ->
                (try Telemetry.Trace.flush w (Telemetry.drain_events ())
                 with e ->
                   Telemetry.Trace.abort w;
                   raise e);
                Telemetry.Trace.close w
            | None -> ())
          (fun () ->
            Telemetry.with_span "experiment" ~args:[ ("id", check_id) ]
              (fun () ->
                Runner.run ?budget_s ?filter ~seed ~count (Suite.all ())))
      in
      let wall_s = Clock.now_s () -. t0 in
      List.iter (print_report ~seed ~count) reports;
      let failed =
        List.filter
          (fun r ->
            match r.Runner.outcome with
            | Runner.Failed _ -> true
            | Runner.Pass -> false)
          reports
      in
      (match json_dir with
      | Some dir ->
          let status = if failed = [] then "ok" else "failed" in
          let error =
            if failed = [] then Json.Null
            else
              Json.String
                (Printf.sprintf "%d of %d properties diverged"
                   (List.length failed) (List.length reports))
          in
          let metrics =
            if Telemetry.metrics_on () then
              Some
                (Artifact.metrics
                   ~counters:
                     (Telemetry.diff_counters ~before:counters_before
                        (Telemetry.counters ()))
                   ~phases:(Telemetry.drain_phases ()))
            else None
          in
          let row (r : Runner.report) =
            let base =
              [
                ("property", Json.String r.Runner.name);
                ("cases", Json.Int r.Runner.cases);
                ("wall_s", Json.Float r.Runner.wall_s);
              ]
            in
            match r.Runner.outcome with
            | Runner.Pass -> Json.Obj (("status", Json.String "ok") :: base)
            | Runner.Failed f ->
                Json.Obj
                  (("status", Json.String "failed")
                  :: ("case_index", Json.Int f.Runner.case_index)
                  :: ("case_seed", Json.Int f.Runner.case_seed)
                  :: ("message", Json.String f.Runner.message)
                  :: ("counterexample", Json.String f.Runner.counterexample)
                  :: ("shrink_steps", Json.Int f.Runner.shrink_steps)
                  :: base)
          in
          let report_fields =
            [
              ( "title",
                Json.String "Differential fuzzing: kernels vs. oracles" );
              ( "params",
                Json.Obj
                  [
                    ("seed", Json.Int seed);
                    ("count", Json.Int count);
                    ("properties", Json.Int (List.length reports));
                  ] );
              ("rows", Json.List (List.map row reports));
              ("fits", Json.Obj []);
            ]
          in
          Artifact.write ~dir ~id:check_id ~jobs:opts.Cli.jobs ~wall_s
            ~attempts:1 ~status ~error ?metrics ~report_fields ();
          Printf.printf "[json] wrote %s (status: %s)\n"
            (Artifact.path ~dir ~id:check_id)
            status
      | None -> ());
      if opts.Cli.metrics then Telemetry.print_summary stdout;
      let total_cases =
        List.fold_left (fun a r -> a + r.Runner.cases) 0 reports
      in
      Printf.printf "%d properties, %d cases, %d failure(s) (%.2fs, seed %d)\n"
        (List.length reports) total_cases (List.length failed) wall_s seed;
      if failed = [] then `Ok ()
      else begin
        let msg =
          Printf.sprintf "%d of %d properties diverged" (List.length failed)
            (List.length reports)
        in
        if opts.Cli.keep_going then begin
          Printf.eprintf "%s\n" msg;
          `Ok ()
        end
        else `Error (false, msg)
      end
    end
  end

let check_cmd =
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Cases per property (default: 100).")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Per-property wall-clock budget: stop starting new cases \
             once exceeded (the nightly tier raises --count and bounds \
             time with this; default: none).")
  in
  let filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTR"
          ~doc:"Run only properties whose name contains $(docv).")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List property names and exit.")
  in
  let doc =
    "Differential fuzzing: seeded generators drive every optimized \
     kernel (bignums, SWAR bit kernels, transposition table, exact-CC \
     search, determinants, Lemma 3.2) against independent oracles, \
     shrinking any divergence to a minimal counterexample.  \
     Deterministic in --seed; the runner is sequential (--jobs is \
     accepted for flag parity)."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      ret
        (const check_fuzz $ seed_arg $ count $ budget $ filter $ list_only
       $ cli_opts_term))

(* ------------------------------------------------------------------ *)
(* bench — throughput benches (load replay)                            *)
(* ------------------------------------------------------------------ *)

let bench_load seed count mix arrival rate jobs socket json deadline_ms =
  match Traffic.parse_mix mix with
  | Error msg -> `Error (false, "invalid --mix: " ^ msg)
  | Ok mix ->
      if count < 0 then `Error (false, "--count must be >= 0")
      else if jobs < 1 then `Error (false, "--jobs must be >= 1")
      else if rate <= 0.0 then `Error (false, "--rate must be > 0")
      else begin
        let arrival =
          match arrival with
          | `Closed -> Traffic.Closed { concurrency = jobs }
          | `Open -> Traffic.Open { rate }
        in
        let target =
          match socket with
          | None -> Load.In_process
          | Some path -> Load.Daemon path
        in
        let cfg =
          { Load.seed; count; mix; arrival; jobs; target; json_dir = json;
            deadline_ms }
        in
        match Load.run cfg with
        | 0 -> `Ok ()
        | _ -> `Error (false, "load replay reported errors (see summary above)")
      end

let bench_load_cmd =
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N"
          ~doc:"Requests to replay (default: 200).")
  in
  let mix =
    Arg.(
      value
      & opt string (Traffic.mix_to_string Traffic.default_mix)
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Traffic mix as comma-separated kind=weight pairs over \
             exact_cc / singular / lower_bounds / protocol (default: \
             $(b,exact_cc=1,singular=4,lower_bounds=4,protocol=1)).")
  in
  let arrival =
    Arg.(
      value
      & opt (enum [ ("closed", `Closed); ("open", `Open) ]) `Closed
      & info [ "arrival" ] ~docv:"MODEL"
          ~doc:
            "Arrival model: $(b,closed) keeps --jobs requests \
             outstanding (capacity); $(b,open) replays Poisson \
             arrivals at --rate, counting queueing delay against \
             latency (SLO behaviour).")
  in
  let rate =
    Arg.(
      value & opt float 200.0
      & info [ "rate" ] ~docv:"QPS"
          ~doc:"Open-loop offered load, requests/second (default: 200).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Worker domains replaying the stream (default: 1).  The \
             request stream and the answer digest are identical at any \
             $(docv); only latency and throughput may change.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Replay against the ccmx serve daemon on this Unix socket \
             instead of the in-process engine (default: in-process).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"DIR"
          ~doc:
            "Write a schema-v3 BENCH_load.json artifact (SLO rows, \
             batch-vs-scalar speedups, answers digest) into $(docv) \
             (default: off).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request compute deadline forwarded to the daemon \
             (default: none; daemon mode only).")
  in
  let doc =
    "Replay a seeded synthetic query mix against the engine or a live \
     daemon, reporting throughput, p50/p95/p99 latency, error and \
     timeout counts, and batch-vs-scalar kernel speedups.  \
     Replay-deterministic: the request stream and the answer digest \
     depend only on --seed/--mix/--arrival/--count."
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      ret
        (const bench_load $ seed_arg $ count $ mix $ arrival $ rate $ jobs
       $ socket $ json $ deadline_ms))

let bench_cmd =
  let doc = "Throughput benches: seeded load replay with latency SLOs." in
  Cmd.group (Cmd.info "bench" ~doc) [ bench_load_cmd ]

(* ------------------------------------------------------------------ *)

let () =
  (* Supervised `lemmas` runs record backtraces in Failed outcomes;
     they are empty unless recording is on. *)
  Printexc.record_backtrace true;
  let doc =
    "communication complexity of matrix computation (Chu-Schnitger \
     1989) — reproduction toolkit"
  in
  let info = Cmd.info "ccmx" ~version:"1.0.0" ~doc in
  (* run_main: ignore SIGPIPE and turn a broken stdout pipe
     (`ccmx ... | head`) into a quiet exit 0 instead of a fatal
     signal. *)
  Sigguard.run_main (fun () ->
      exit
        (Cmd.eval
           (Cmd.group info
              [ gen_cmd; singular_cmd; check_cmd; protocol_cmd; bounds_cmd;
                lemmas_cmd; ledger_cmd; exactcc_cmd; serve_cmd; query_cmd;
                top_cmd; bench_cmd ])))
