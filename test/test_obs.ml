(* Tests for the observability plane: the label-bridging naming
   convention, Prometheus text-format rendering (golden text,
   cumulative bucket monotonicity, escaping), the flight-recorder ring
   and the structured Logging module. *)

module Json = Commx_util.Json
module Telemetry = Commx_util.Telemetry
module Logging = Commx_util.Logging
module Obs = Commx_serve.Obs

(* ------------------------------------------------------------------ *)
(* Names and labels                                                    *)
(* ------------------------------------------------------------------ *)

let test_metric_name_sanitizes () =
  Alcotest.(check string) "dots become underscores" "serve_worker_crashes"
    (Obs.metric_name "serve.worker_crashes");
  Alcotest.(check string) "colons survive" "a:b_c" (Obs.metric_name "a:b-c");
  Alcotest.(check string) "leading digit guarded" "_9lives"
    (Obs.metric_name "9lives");
  Alcotest.(check string) "empty is not empty" "_" (Obs.metric_name "")

let test_escape_label_value () =
  Alcotest.(check string) "backslash" "a\\\\b" (Obs.escape_label_value "a\\b");
  Alcotest.(check string) "quote" "a\\\"b" (Obs.escape_label_value "a\"b");
  Alcotest.(check string) "newline" "a\\nb" (Obs.escape_label_value "a\nb");
  Alcotest.(check string) "plain untouched" "exact_cc"
    (Obs.escape_label_value "exact_cc")

let test_labeled_parse_roundtrip () =
  let cases =
    [ ("base", []);
      ("serve.op_us", [ ("op", "exact_cc"); ("outcome", "ok") ]);
      ("x", [ ("k", "") ]);
      (* values may contain '=' — only the first splits *)
      ("y", [ ("expr", "a=b") ]) ]
  in
  List.iter
    (fun (base, labels) ->
      let name = Obs.labeled base labels in
      let base', labels' = Obs.parse_name name in
      Alcotest.(check string) ("base of " ^ name) base base';
      Alcotest.(check (list (pair string string)))
        ("labels of " ^ name) labels labels')
    cases

(* ------------------------------------------------------------------ *)
(* Exposition rendering                                                *)
(* ------------------------------------------------------------------ *)

let test_render_metrics_golden () =
  let hist =
    { Telemetry.count = 3; sum = 9; min = 1; max = 5;
      buckets = [ (2, 2); (8, 1) ] }
  in
  let got =
    Obs.render_metrics
      ~counters:
        [ ("serve.requests", 3);
          ("serve.op|op=a", 1);
          ("serve.op|op=b", 2) ]
      ~gauges:[ ("up", 1.0); ("ratio", 0.25) ]
      ~histograms:[ ("lat|op=x", hist) ]
      ()
  in
  let expected =
    String.concat "\n"
      [ "# HELP serve_requests_total Telemetry counter serve.requests.";
        "# TYPE serve_requests_total counter";
        "serve_requests_total 3";
        "# HELP serve_op_total Telemetry counter serve.op.";
        "# TYPE serve_op_total counter";
        "serve_op_total{op=\"a\"} 1";
        "serve_op_total{op=\"b\"} 2";
        "# HELP up Telemetry gauge up.";
        "# TYPE up gauge";
        "up 1";
        "# HELP ratio Telemetry gauge ratio.";
        "# TYPE ratio gauge";
        "ratio 0.25";
        "# HELP lat Telemetry histogram lat.";
        "# TYPE lat histogram";
        "lat_bucket{op=\"x\",le=\"2\"} 2";
        "lat_bucket{op=\"x\",le=\"8\"} 3";
        "lat_bucket{op=\"x\",le=\"+Inf\"} 3";
        "lat_sum{op=\"x\"} 9";
        "lat_count{op=\"x\"} 3";
        "" ]
  in
  Alcotest.(check string) "golden exposition text" expected got

let test_render_metrics_counter_total_not_doubled () =
  let got =
    Obs.render_metrics ~counters:[ ("already_total", 1) ] ~gauges:[]
      ~histograms:[] ()
  in
  Alcotest.(check string) "no _total_total"
    "# HELP already_total Telemetry counter already_total.\n\
     # TYPE already_total counter\n\
     already_total 1\n"
    got

let test_render_metrics_extra_first () =
  let got =
    Obs.render_metrics ~extra:"pre 1\n" ~counters:[ ("c", 2) ] ~gauges:[]
      ~histograms:[] ()
  in
  Alcotest.(check bool) "extra leads" true
    (String.length got > 6 && String.sub got 0 6 = "pre 1\n")

(* Bucket lines from a live Telemetry histogram must be cumulative
   (nondecreasing) and end at +Inf = _count. *)
let test_exposition_buckets_cumulative () =
  let prev = Telemetry.level () in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_level prev)
    (fun () ->
      Telemetry.set_level Telemetry.Metrics;
      let h = Telemetry.histogram "obs.test.cumulative" in
      List.iter (Telemetry.observe h) [ 1; 3; 3; 100; 5000 ];
      let body =
        Obs.render_metrics ~counters:[] ~gauges:[]
          ~histograms:
            (List.filter
               (fun (n, _) -> n = "obs.test.cumulative")
               (Telemetry.histograms ()))
          ()
      in
      let lines = String.split_on_char '\n' body in
      let bucket_values =
        List.filter_map
          (fun l ->
            let p = "obs_test_cumulative_bucket{" in
            if String.length l > String.length p
               && String.sub l 0 (String.length p) = p
            then
              match String.rindex_opt l ' ' with
              | Some i ->
                  Some
                    (int_of_string
                       (String.sub l (i + 1) (String.length l - i - 1)))
              | None -> None
            else None)
          lines
      in
      Alcotest.(check bool) "several buckets" true
        (List.length bucket_values >= 2);
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      Alcotest.(check bool) "buckets nondecreasing" true (mono bucket_values);
      let count =
        List.find_map
          (fun l ->
            let p = "obs_test_cumulative_count " in
            if String.length l > String.length p
               && String.sub l 0 (String.length p) = p
            then
              Some
                (int_of_string
                   (String.sub l (String.length p)
                      (String.length l - String.length p)))
            else None)
          lines
      in
      Alcotest.(check (option int)) "+Inf equals count" count
        (Some (List.nth bucket_values (List.length bucket_values - 1)));
      Alcotest.(check (option int)) "count is the observation count"
        (Some 5) count)

(* ------------------------------------------------------------------ *)
(* Per-op latency family                                               *)
(* ------------------------------------------------------------------ *)

let test_observe_op_merges_outcomes () =
  let prev = Telemetry.level () in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_level prev)
    (fun () ->
      Telemetry.set_level Telemetry.Metrics;
      Telemetry.reset ();
      Obs.observe_op ~op:"optest" ~outcome:"ok" 10;
      Obs.observe_op ~op:"optest" ~outcome:"error" 1000;
      let s = List.assoc_opt "optest" (Obs.op_summaries ()) in
      match s with
      | Some s ->
          Alcotest.(check int) "both outcomes merged" 2 s.Telemetry.count;
          Alcotest.(check int) "sum merged" 1010 s.Telemetry.sum;
          Alcotest.(check int) "min across outcomes" 10 s.Telemetry.min;
          Alcotest.(check int) "max across outcomes" 1000 s.Telemetry.max
      | None -> Alcotest.fail "optest missing from op_summaries")

(* ------------------------------------------------------------------ *)
(* HTTP scraps                                                         *)
(* ------------------------------------------------------------------ *)

let test_http_response_shape () =
  let r = Obs.http_response ~content_type:"text/plain" "hello" in
  Alcotest.(check bool) "status line" true
    (String.sub r 0 15 = "HTTP/1.0 200 OK");
  let has_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "content length" true (has_sub r "Content-Length: 5");
  Alcotest.(check bool) "closes" true (has_sub r "Connection: close");
  Alcotest.(check bool) "body last" true
    (String.sub r (String.length r - 5) 5 = "hello");
  let nf = Obs.http_response ~status:404 ~content_type:"text/plain" "" in
  Alcotest.(check bool) "404 reason" true (has_sub nf "404 Not Found")

let test_http_path () =
  Alcotest.(check (option string)) "GET parses" (Some "/metrics")
    (Obs.http_path "GET /metrics HTTP/1.1\r");
  Alcotest.(check (option string)) "POST rejected" None
    (Obs.http_path "POST /metrics HTTP/1.1");
  Alcotest.(check (option string)) "garbage rejected" None
    (Obs.http_path "hello")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let span ?(args = []) ~id ~parent name =
  { Obs.Recorder.name; id; parent; start_ns = 100 * id; dur_ns = 50; args }

let test_recorder_ring_evicts_oldest () =
  let r = Obs.Recorder.create ~capacity:2 in
  Alcotest.(check bool) "enabled" true (Obs.Recorder.enabled r);
  Obs.Recorder.record r [ span ~id:1 ~parent:0 "req1" ];
  Obs.Recorder.record r [ span ~id:2 ~parent:0 "req2" ];
  Obs.Recorder.record r [ span ~id:3 ~parent:0 "req3" ];
  let names = List.map (fun s -> s.Obs.Recorder.name) (Obs.Recorder.spans r) in
  Alcotest.(check (list string)) "oldest request evicted, order kept"
    [ "req2"; "req3" ] names

let test_recorder_disabled_is_inert () =
  let r = Obs.Recorder.create ~capacity:0 in
  Alcotest.(check bool) "disabled" false (Obs.Recorder.enabled r);
  Obs.Recorder.record r [ span ~id:1 ~parent:0 "dropped" ];
  Alcotest.(check int) "nothing kept" 0 (List.length (Obs.Recorder.spans r));
  (match Obs.Recorder.create ~capacity:(-1) with
  | _ -> Alcotest.fail "negative capacity accepted"
  | exception Invalid_argument _ -> ());
  match Obs.Recorder.to_chrome r with
  | Json.Obj [ ("traceEvents", Json.List []) ] -> ()
  | j -> Alcotest.failf "empty trace misrendered: %s" (Json.to_string j)

let test_recorder_ids_unique_nonzero () =
  let ids = List.init 100 (fun _ -> Obs.Recorder.next_id ()) in
  Alcotest.(check bool) "all nonzero" true (List.for_all (fun i -> i <> 0) ids);
  Alcotest.(check int) "all distinct" 100
    (List.length (List.sort_uniq compare ids))

let test_recorder_to_chrome_shape () =
  let r = Obs.Recorder.create ~capacity:4 in
  Obs.Recorder.record r
    [ span ~id:7 ~parent:0 "request" ~args:[ ("op", "exact_cc") ];
      span ~id:8 ~parent:7 "queue_wait" ];
  match Obs.Recorder.to_chrome r with
  | Json.Obj [ ("traceEvents", Json.List [ root; child ]) ] ->
      let get ev k = Json.member k ev in
      Alcotest.(check bool) "complete events" true
        (get root "ph" = Some (Json.String "X")
        && get child "ph" = Some (Json.String "X"));
      (* 700 ns -> 0.7 us *)
      (match get root "ts" with
      | Some (Json.Float us) ->
          Alcotest.(check (float 1e-9)) "microsecond timestamps" 0.7 us
      | _ -> Alcotest.fail "ts missing");
      let arg ev k = Option.bind (get ev "args") (Json.member k) in
      Alcotest.(check bool) "span/parent ids in args" true
        (arg root "span" = Some (Json.Int 7)
        && arg root "parent" = Some (Json.Int 0)
        && arg child "parent" = Some (Json.Int 7));
      Alcotest.(check bool) "string args carried" true
        (arg root "op" = Some (Json.String "exact_cc"))
  | j -> Alcotest.failf "unexpected trace doc: %s" (Json.to_string j)

let test_recorder_dump_atomic () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccmx-obs-dump-%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = Obs.Recorder.create ~capacity:2 in
      Obs.Recorder.record r [ span ~id:1 ~parent:0 "request" ];
      Obs.Recorder.dump r ~path;
      let ic = open_in path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      match Json.of_string raw with
      | Json.Obj [ ("traceEvents", Json.List [ _ ]) ] -> ()
      | j -> Alcotest.failf "dumped doc malformed: %s" (Json.to_string j))

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

let test_logging_levels_filter () =
  let records = ref [] in
  let l = Logging.create ~level:Logging.Warn ~sink:(fun r -> records := r :: !records) () in
  Logging.debug l "nope";
  Logging.info l "nope";
  Logging.warn l "w";
  Logging.error l "e";
  let msgs =
    List.rev_map (fun r -> Json.member "msg" r) !records
  in
  Alcotest.(check int) "two records pass the threshold" 2 (List.length msgs);
  Alcotest.(check bool) "order and content" true
    (msgs = [ Some (Json.String "w"); Some (Json.String "e") ]);
  Alcotest.(check bool) "enabled mirrors the threshold" true
    (Logging.enabled l Logging.Error
    && Logging.enabled l Logging.Warn
    && (not (Logging.enabled l Logging.Info))
    && not (Logging.enabled l Logging.Debug))

let test_logging_record_shape () =
  let records = ref [] in
  let l = Logging.create ~sink:(fun r -> records := r :: !records) () in
  Logging.info l ~fields:[ ("conn", Json.Int 3) ] "hello";
  match !records with
  | [ r ] ->
      (match Json.member "ts" r with
      | Some (Json.Float ts) ->
          Alcotest.(check bool) "wall clock sane" true (ts > 1.0e9)
      | _ -> Alcotest.fail "ts missing");
      (match Json.member "mono_s" r with
      | Some (Json.Float _) -> ()
      | _ -> Alcotest.fail "mono_s missing");
      Alcotest.(check bool) "level + msg + field" true
        (Json.member "level" r = Some (Json.String "info")
        && Json.member "msg" r = Some (Json.String "hello")
        && Json.member "conn" r = Some (Json.Int 3))
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let test_logging_with_fields () =
  let records = ref [] in
  let l = Logging.create ~sink:(fun r -> records := r :: !records) () in
  let child = Logging.with_fields l [ ("worker", Json.Int 1) ] in
  Logging.info child ~fields:[ ("job", Json.Int 9) ] "did";
  match !records with
  | [ r ] ->
      Alcotest.(check bool) "bound + per-call fields" true
        (Json.member "worker" r = Some (Json.Int 1)
        && Json.member "job" r = Some (Json.Int 9))
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let test_logging_level_strings () =
  List.iter
    (fun lv ->
      Alcotest.(check bool)
        ("roundtrip " ^ Logging.level_to_string lv)
        true
        (Logging.level_of_string (Logging.level_to_string lv) = Some lv))
    [ Logging.Error; Logging.Warn; Logging.Info; Logging.Debug ];
  Alcotest.(check bool) "unknown rejected" true
    (Logging.level_of_string "loud" = None)

let test_logging_file_sink_appends_json_lines () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccmx-obs-log-%d.jsonl" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let l = Logging.create ~sink:(Logging.file_sink ~path) () in
      Logging.info l "one";
      Logging.warn l ~fields:[ ("k", Json.String "v") ] "two";
      Logging.debug l "filtered out";
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed = List.rev_map Json.of_string !lines in
      Alcotest.(check int) "two lines" 2 (List.length parsed);
      Alcotest.(check bool) "contents survive the roundtrip" true
        (match parsed with
        | [ a; b ] ->
            Json.member "msg" a = Some (Json.String "one")
            && Json.member "msg" b = Some (Json.String "two")
            && Json.member "k" b = Some (Json.String "v")
        | _ -> false));
  (* null logger swallows everything without filesystem traffic *)
  Logging.error Logging.null "dropped"

let () =
  Alcotest.run "obs"
    [
      ( "names",
        [ Alcotest.test_case "metric_name sanitizes" `Quick
            test_metric_name_sanitizes;
          Alcotest.test_case "label value escaping" `Quick
            test_escape_label_value;
          Alcotest.test_case "labeled/parse roundtrip" `Quick
            test_labeled_parse_roundtrip ] );
      ( "exposition",
        [ Alcotest.test_case "golden text" `Quick test_render_metrics_golden;
          Alcotest.test_case "_total not doubled" `Quick
            test_render_metrics_counter_total_not_doubled;
          Alcotest.test_case "extra leads" `Quick test_render_metrics_extra_first;
          Alcotest.test_case "buckets cumulative" `Quick
            test_exposition_buckets_cumulative;
          Alcotest.test_case "observe_op merges outcomes" `Quick
            test_observe_op_merges_outcomes ] );
      ( "http",
        [ Alcotest.test_case "response shape" `Quick test_http_response_shape;
          Alcotest.test_case "path parsing" `Quick test_http_path ] );
      ( "recorder",
        [ Alcotest.test_case "ring evicts oldest" `Quick
            test_recorder_ring_evicts_oldest;
          Alcotest.test_case "disabled is inert" `Quick
            test_recorder_disabled_is_inert;
          Alcotest.test_case "ids unique + nonzero" `Quick
            test_recorder_ids_unique_nonzero;
          Alcotest.test_case "chrome doc shape" `Quick
            test_recorder_to_chrome_shape;
          Alcotest.test_case "dump writes the doc" `Quick
            test_recorder_dump_atomic ] );
      ( "logging",
        [ Alcotest.test_case "levels filter" `Quick test_logging_levels_filter;
          Alcotest.test_case "record shape" `Quick test_logging_record_shape;
          Alcotest.test_case "with_fields" `Quick test_logging_with_fields;
          Alcotest.test_case "level strings" `Quick test_logging_level_strings;
          Alcotest.test_case "file sink JSON lines" `Quick
            test_logging_file_sink_appends_json_lines ] )
    ]
