(* End-to-end integration tests crossing library boundaries:

   1. the full Theorem 1.1 pipeline — construct hard instances, run
      both protocols, certify lower bounds on enumerated truth
      matrices, and confirm every layer agrees on singularity;
   2. the Corollary 1.2 pipeline on hard instances (all six problem
      reductions on the same matrices);
   3. the exact lower-bound certificate for tiny singularity truth
      matrices (2x2, k up to 3) against the trivial upper bound;
   4. VLSI: protocol cost feeding the AT^2 calculator. *)

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Prng = Commx_util.Prng
module Protocol = Commx_comm.Protocol
module Tm = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35
module Red = Commx_core.Reductions
module Bounds = Commx_core.Bounds
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint

(* ------------------------------------------------------------------ *)

let test_theorem11_pipeline () =
  let p = Params.make ~n:7 ~k:2 in
  let g = Prng.create 123 in
  for _ = 1 to 10 do
    let f = H.random_free g p in
    let m = H.build_m p f in
    let truth = Zm.is_singular m in
    (* layer 1: Lemma 3.2 criterion *)
    Alcotest.(check bool) "lemma32" truth (L32.criterion p f);
    (* layer 2: trivial protocol *)
    let a, b = Halves.split_pi0 m in
    let got, cost = Protocol.execute (Trivial.singularity ~k:2) a b in
    Alcotest.(check bool) "protocol" truth got;
    Alcotest.(check int) "cost" (Bounds.trivial_upper_bits ~n:7 ~k:2) cost;
    (* layer 3: the reductions *)
    Alcotest.(check bool) "det" truth (Red.singular_via_det m);
    Alcotest.(check bool) "rank" truth (Red.singular_via_rank m);
    Alcotest.(check bool) "lup" truth (Red.singular_via_lup m)
  done

(* Exhaustive singularity truth matrix for 2x2 matrices of k-bit
   entries under pi_0 (agent 1: column 0; agent 2: column 1). *)
let tiny_singularity_tm ~k =
  let range = 1 lsl k in
  (* a half is a pair of entries (column of the 2x2 matrix) *)
  let halves =
    List.concat_map
      (fun a -> List.init range (fun b -> (a, b)))
      (List.init range (fun a -> a))
  in
  Tm.build halves halves (fun (a, c) (b, d) ->
      (* M = [[a, b], [c, d]]; singular iff ad - bc = 0 *)
      (a * d) - (b * c) = 0)

let test_tiny_exact_lower_bounds () =
  (* For each k, the certified lower bound must not exceed the trivial
     upper bound (2k bits: agent 1's column), and must grow with k. *)
  let bounds =
    List.map
      (fun k ->
        let tm = tiny_singularity_tm ~k in
        let report = Rank_bound.analyze tm ~exact_rect:(k <= 2) in
        let cert =
          Float.max report.Rank_bound.log_rank report.Rank_bound.fooling_bits
        in
        let upper = float_of_int (2 * k) in
        Alcotest.(check bool)
          (Printf.sprintf "k=%d cert %.2f <= upper %.2f +2 slack" k cert upper)
          true
          (cert <= upper +. 2.0);
        cert)
      [ 1; 2; 3 ]
  in
  match bounds with
  | [ b1; b2; b3 ] ->
      Alcotest.(check bool) "grows in k" true (b1 < b2 && b2 < b3)
  | _ -> assert false

let test_cost_scaling_shape () =
  (* Measured trivial-protocol cost fits c * k n^2 exactly with c = 2. *)
  let points =
    List.concat_map
      (fun n ->
        List.map
          (fun k ->
            let p = Params.make ~n ~k in
            let g = Prng.create (n + k) in
            let m = H.build_m p (H.random_free g p) in
            let a, b = Halves.split_pi0 m in
            let _, cost = Protocol.execute (Trivial.singularity ~k) a b in
            (float_of_int (k * n * n), float_of_int cost))
          [ 2; 3; 4 ])
      [ 5; 7; 9 ]
  in
  let c, r2 = Commx_util.Stats.proportional_fit (Array.of_list points) in
  Alcotest.(check (float 1e-9)) "slope 2" 2.0 c;
  Alcotest.(check (float 1e-9)) "perfect fit" 1.0 r2

let test_randomized_gap_grows_with_k () =
  let ratio k =
    float_of_int (Trivial.exact_cost ~n:9 ~k)
    /. float_of_int (Fingerprint.cost ~n:9 ~k ~epsilon:0.01)
  in
  Alcotest.(check bool) "gap grows" true (ratio 32 > ratio 8 && ratio 8 > ratio 4)

let test_at2_from_protocol_cost () =
  (* Feed the actual measured communication into the VLSI bound. *)
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 7 in
  let m = H.build_m p (H.random_free g p) in
  let a, b = Halves.split_pi0 m in
  let _, cost = Protocol.execute (Trivial.singularity ~k:2) a b in
  let at2 = Bounds.at2_lower ~info_bits:(float_of_int cost) in
  Alcotest.(check (float 1e-6)) "AT2 = cost^2"
    (float_of_int (cost * cost))
    at2

let test_solvability_pipeline () =
  (* Corollary 1.3 end to end: hard instance -> solvability instance ->
     protocol answer = singularity. *)
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 77 in
  for _ = 1 to 8 do
    let f = H.random_free g p in
    let m = H.build_m p f in
    let m', b = Red.solvability_instance m in
    Alcotest.(check bool) "cor 1.3"
      (Zm.is_singular m)
      (Red.system_solvable m' b)
  done

let test_completion_gives_ones_in_every_row () =
  (* Lemma 3.5(a)+(b): every row of the restricted truth matrix
     contains a one, and we can point at it. *)
  let p = Params.make ~n:5 ~k:2 in
  let cs = Commx_core.Truth_restricted.enumerate_c p in
  List.iter
    (fun c ->
      let e = Array.init p.Params.half (fun _ -> [||]) in
      let w = L35.complete p ~c ~e in
      Alcotest.(check bool) "is a one" true
        (Zm.is_singular (H.build_m p w.L35.free)))
    cs

let test_ledger_vs_protocols () =
  (* Ledger, protocol, and certificate layers agree on ordering:
     certified lower <= exact measured cost at every parameter. *)
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let g = Prng.create (n * 31 + k) in
      let m = Commx_core.Workloads.hard_instance g p in
      let a, b = Halves.split_pi0 m in
      let _, cost = Protocol.execute (Trivial.singularity ~k) a b in
      let ledger = Commx_core.Theorem11.ledger p in
      Alcotest.(check bool)
        (Printf.sprintf "ledger <= cost at n=%d k=%d" n k)
        true
        (ledger.Commx_core.Theorem11.comm_lower_bits <= float_of_int cost))
    [ (5, 2); (7, 3); (9, 4); (13, 2) ]

let test_adaptive_vs_valued_consistency () =
  (* The adaptive decision, the rank-value protocol, and the exact
     oracle agree instance by instance. *)
  let p = Params.make ~n:5 ~k:3 in
  let g = Prng.create 91 in
  List.iter
    (fun m ->
      let a, b = Halves.split_pi0 m in
      let truth = Zm.is_singular m in
      let adaptive, _ =
        Protocol.execute
          (Commx_protocols.Adaptive.singularity ~n:5 ~k:3 ~prime_bits:8
             ~seed:3)
          a b
      in
      let rank_val, _ =
        Protocol.execute_fn (Commx_protocols.Valued.rank ~k:3) a b
      in
      Alcotest.(check bool) "adaptive" truth adaptive;
      Alcotest.(check bool) "rank value" truth (rank_val < Zm.rows m))
    (Commx_core.Workloads.mixed_pool g p ~count:9)

let test_workload_classes () =
  let p = Params.make ~n:7 ~k:2 in
  let g = Prng.create 93 in
  (* singular_instance is always singular; nonsingular_pool never is *)
  for _ = 1 to 5 do
    Alcotest.(check bool) "forced singular" true
      (Zm.is_singular (Commx_core.Workloads.singular_instance g p))
  done;
  List.iter
    (fun m -> Alcotest.(check bool) "nonsingular" false (Zm.is_singular m))
    (Commx_core.Workloads.nonsingular_pool g p ~count:6)

let () =
  Alcotest.run "integration"
    [ ( "pipelines",
        [ Alcotest.test_case "theorem 1.1 layers agree" `Quick
            test_theorem11_pipeline;
          Alcotest.test_case "tiny exact lower bounds" `Slow
            test_tiny_exact_lower_bounds;
          Alcotest.test_case "cost = 2 k n^2 exactly" `Quick
            test_cost_scaling_shape;
          Alcotest.test_case "randomized gap grows with k" `Quick
            test_randomized_gap_grows_with_k;
          Alcotest.test_case "AT^2 from measured cost" `Quick
            test_at2_from_protocol_cost;
          Alcotest.test_case "corollary 1.3 pipeline" `Quick
            test_solvability_pipeline;
          Alcotest.test_case "every row has a one" `Quick
            test_completion_gives_ones_in_every_row;
          Alcotest.test_case "ledger below measured cost" `Quick
            test_ledger_vs_protocols;
          Alcotest.test_case "adaptive/valued/oracle agree" `Quick
            test_adaptive_vs_valued_consistency;
          Alcotest.test_case "workload classes" `Quick test_workload_classes
        ] ) ]
