(* Tests for the paper's constructions: parameters, the base-(-q)
   gadget, the Fig. 1/3 hard instances, Lemma 3.2 (singularity
   criterion), Lemma 3.5(a) (completion), the restricted-truth-matrix
   machinery (Lemmas 3.3/3.4/3.6), Definition 3.8 / Lemma 3.9 (proper
   partitions), the padding reduction, the Corollary 1.2/1.3
   reductions, and the bound calculators. *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Sub = Commx_linalg.Subspace
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module Gadget = Commx_core.Gadget
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35
module Tr = Commx_core.Truth_restricted
module L39 = Commx_core.Lemma39
module Padding = Commx_core.Padding
module Red = Commx_core.Reductions
module Bounds = Commx_core.Bounds
module Partition = Commx_comm.Partition

let bi = Alcotest.testable B.pp B.equal

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let small_params = [ (5, 2); (7, 2); (5, 3); (9, 2); (5, 4); (7, 3) ]

let gen_param_seed =
  QCheck.Gen.(
    oneofl small_params >>= fun (n, k) ->
    int_range 0 1_000_000 >>= fun seed -> return (n, k, seed))

let arb_param_seed =
  QCheck.make
    ~print:(fun (n, k, s) -> Printf.sprintf "n=%d k=%d seed=%d" n k s)
    gen_param_seed

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_validation () =
  Alcotest.(check bool) "5,2 valid" true (Params.is_valid ~n:5 ~k:2);
  Alcotest.(check bool) "even n invalid" false (Params.is_valid ~n:6 ~k:2);
  Alcotest.(check bool) "n=3 invalid" false (Params.is_valid ~n:3 ~k:2);
  Alcotest.(check bool) "k=1 invalid" false (Params.is_valid ~n:5 ~k:1);
  Alcotest.check_raises "make rejects"
    (Invalid_argument
       "Params.make: need n odd >= 5, k >= 2, and n - 3 - ceil(log_q n) >= \
        0 (got n=4 k=2)") (fun () -> ignore (Params.make ~n:4 ~k:2))

let test_params_derived () =
  let p = Params.make ~n:7 ~k:2 in
  Alcotest.(check bi) "q" (B.of_int 3) p.Params.q;
  Alcotest.(check int) "half" 3 p.Params.half;
  Alcotest.(check int) "logq_n: 3^2 >= 7" 2 p.Params.logq_n;
  Alcotest.(check int) "d_width" 4 p.Params.d_width;
  Alcotest.(check int) "e_width" 2 p.Params.e_width;
  Alcotest.(check bi) "m = q^e_width" (B.of_int 9) p.Params.m;
  (* the free-cell count identity used in Lemma 3.5(b):
     (n^2 - 1)/2 on the agent-2 side *)
  Alcotest.(check int) "agent2 free cells"
    (((7 * 7) - 1) / 2)
    (Params.free_cells_agent2 p)

let test_ceil_log () =
  Alcotest.(check int) "log_3 5" 2 (Params.ceil_log ~base:3 5);
  Alcotest.(check int) "log_3 9" 2 (Params.ceil_log ~base:3 9);
  Alcotest.(check int) "log_3 10" 3 (Params.ceil_log ~base:3 10);
  Alcotest.(check int) "log_2 1" 0 (Params.ceil_log ~base:2 1)

let prop_free_cell_identity (n, k, _) =
  let p = Params.make ~n ~k in
  Params.free_cells_agent2 p = ((n * n) - 1) / 2
  && Params.free_cells_agent1 p = (n - 1) * (n - 1) / 4

(* ------------------------------------------------------------------ *)
(* Gadget                                                              *)
(* ------------------------------------------------------------------ *)

let test_u_vector () =
  let p = Params.make ~n:5 ~k:2 in
  let u = Gadget.u_vector p in
  Alcotest.(check int) "length" 4 (Array.length u);
  Alcotest.(check bi) "u0 = (-3)^3" (B.of_int (-27)) u.(0);
  Alcotest.(check bi) "u3 = 1" B.one u.(3)

let test_neg_base_known () =
  let q = B.of_int 3 in
  (* 7 = 1 - 3 + 9: digits [1; 1; 1] *)
  (match Gadget.to_neg_base ~q ~digits:3 (B.of_int 7) with
  | Some d -> Alcotest.(check (array bi)) "7" [| B.one; B.one; B.one |] d
  | None -> Alcotest.fail "7 should be representable");
  (* -3 = 0 + 1*(-3): digits [0; 1] *)
  (match Gadget.to_neg_base ~q ~digits:2 (B.of_int (-3)) with
  | Some d -> Alcotest.(check (array bi)) "-3" [| B.zero; B.one |] d
  | None -> Alcotest.fail "-3 should be representable");
  Alcotest.(check bool) "overflow detected" true
    (Gadget.to_neg_base ~q ~digits:1 (B.of_int 5) = None)

let prop_neg_base_roundtrip (v, k) =
  let k = 2 + (abs k mod 5) in
  let q = B.sub (B.shift_left B.one k) B.one in
  let v = B.of_int (v mod 100_000) in
  match Gadget.to_neg_base ~q ~digits:40 v with
  | None -> false (* 40 digits is plenty for |v| < 10^5, q >= 3 *)
  | Some d ->
      B.equal (Gadget.of_neg_base ~q d) v
      && Array.for_all (fun x -> B.sign x >= 0 && B.compare x q < 0) d

let prop_neg_base_range_tight k =
  let k = 2 + (abs k mod 4) in
  let q = B.sub (B.shift_left B.one k) B.one in
  let digits = 4 in
  let lo, hi = Gadget.neg_base_range ~q ~digits in
  (* endpoints representable, endpoints +- 1 not *)
  Gadget.to_neg_base ~q ~digits lo <> None
  && Gadget.to_neg_base ~q ~digits hi <> None
  && Gadget.to_neg_base ~q ~digits (B.sub lo B.one) = None
  && Gadget.to_neg_base ~q ~digits (B.add hi B.one) = None

(* ------------------------------------------------------------------ *)
(* Hard instance structure                                             *)
(* ------------------------------------------------------------------ *)

let test_build_m_shape () =
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 11 in
  let f = H.random_free g p in
  let m = H.build_m p f in
  Alcotest.(check int) "rows" 10 (Zm.rows m);
  Alcotest.(check bool) "square" true (Zm.is_square m);
  Alcotest.(check bool) "entries in k-bit range" true (H.entries_in_range p m);
  (* fixed cells *)
  Alcotest.(check bi) "M[0][0]" B.one (Zm.get m 0 0);
  Alcotest.(check bi) "M[n-1][n]" B.one (Zm.get m 4 5);
  (* anti-diagonal of ones: i + j = 2n - 1 *)
  Alcotest.(check bi) "M[1][8]" B.one (Zm.get m 1 8);
  (* parallel anti-diagonal of qs: i + j = 2n *)
  Alcotest.(check bi) "M[2][8]" (B.of_int 3) (Zm.get m 2 8);
  (* top of A-columns is zero *)
  Alcotest.(check bi) "M[0][1]" B.zero (Zm.get m 0 1)

let test_a_structure () =
  let p = Params.make ~n:7 ~k:2 in
  let c =
    Array.init p.Params.half (fun i ->
        Array.init p.Params.half (fun j -> B.of_int ((i + j) mod 3)))
  in
  let a = Zm.to_qmatrix (H.build_a p c) in
  (* unit diagonal for rows 0..n-2 *)
  for i = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "diag %d" i)
      true
      (Q.equal (Commx_linalg.Qmatrix.get a i i) Q.one)
  done;
  (* last row is e_0 *)
  Alcotest.(check bool) "A[n-1][0] = 1" true
    (Q.equal (Commx_linalg.Qmatrix.get a 6 0) Q.one);
  for j = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "A[n-1][%d] = 0" j)
      true
      (Q.is_zero (Commx_linalg.Qmatrix.get a 6 j))
  done;
  (* span always has full dimension n-1 (Lemma 3.2 precondition) *)
  Alcotest.(check bool) "span dim" true (L32.span_dimension_is_full p c)

let prop_span_always_full (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let f = H.random_free g p in
  L32.span_dimension_is_full p f.H.c

let test_free_positions () =
  let p = Params.make ~n:5 ~k:2 in
  let pos = H.free_positions p in
  Alcotest.(check int) "count"
    (Params.free_cells_agent1 p + Params.free_cells_agent2 p)
    (List.length pos);
  (* C cells sit in agent 1's pi_0 columns, D/E/y in agent 2's *)
  List.iter
    (fun (block, _row, col) ->
      let agent = H.pi0_agent_of_col p col in
      match block with
      | H.C -> Alcotest.(check int) "C on agent 1" 1 agent
      | H.D | H.E | H.Y -> Alcotest.(check int) "DEY on agent 2" 2 agent)
    pos

let test_validate_rejects () =
  let p = Params.make ~n:5 ~k:2 in
  let f = H.zero_free p in
  let bad = { f with H.y = Array.map (fun _ -> B.of_int 3) f.H.y } in
  (* q = 3 so entry 3 is out of [0, q-1] *)
  Alcotest.(check bool) "rejects out-of-range" true
    (try
       H.validate_free p bad;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Lemma 3.2                                                           *)
(* ------------------------------------------------------------------ *)

let prop_lemma32_agrees (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  L32.agrees p (H.random_free g p)

let test_lemma32_zero_free () =
  (* All-zero free blocks: B·u = 0 which is always in Span(A), so M
     must be singular. *)
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let f = H.zero_free p in
      Alcotest.(check bool) "criterion" true (L32.criterion p f);
      Alcotest.(check bool) "singular" true
        (L32.is_singular_direct (H.build_m p f)))
    small_params

(* ------------------------------------------------------------------ *)
(* Lemma 3.5(a)                                                        *)
(* ------------------------------------------------------------------ *)

let prop_lemma35_completion (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let f = H.random_free g p in
  let w = L35.complete p ~c:f.H.c ~e:f.H.e in
  L35.check_witness p w

let test_lemma35_exhaustive_tiny () =
  (* n=5, k=2: enumerate all 81 C x 1 E instances *)
  let p = Params.make ~n:5 ~k:2 in
  let cs = Tr.enumerate_c p in
  Alcotest.(check int) "81 C instances" 81 (List.length cs);
  List.iter
    (fun c ->
      let e = Array.init p.Params.half (fun _ -> [||]) in
      let w = L35.complete p ~c ~e in
      Alcotest.(check bool) "completion works" true (L35.check_witness p w))
    cs

(* ------------------------------------------------------------------ *)
(* Truth_restricted: Lemmas 3.3, 3.4, 3.6                              *)
(* ------------------------------------------------------------------ *)

let test_normal_vector () =
  let p = Params.make ~n:7 ~k:2 in
  let g = Prng.create 3 in
  let f = H.random_free g p in
  let normal = Tr.normal_vector p f.H.c in
  (* normal is orthogonal to every column of A *)
  let a = H.build_a p f.H.c in
  for j = 0 to Zm.cols a - 1 do
    Alcotest.(check bi)
      (Printf.sprintf "normal . col %d" j)
      B.zero
      (Gadget.dot normal (Zm.col a j))
  done;
  (* and nonzero *)
  Alcotest.(check bool) "nonzero" true
    (Array.exists (fun x -> not (B.is_zero x)) normal)

let prop_singular_with_matches_criterion (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let f = H.random_free g p in
  let normal = Tr.normal_vector p f.H.c in
  Tr.singular_with ~normal p f = L32.criterion p f

let test_lemma34_distinct_spans () =
  let p = Params.make ~n:5 ~k:2 in
  let all_distinct, count = Tr.lemma34_all_spans_distinct p in
  Alcotest.(check bool) "all distinct" true all_distinct;
  Alcotest.(check int) "count = q^(half^2)" 81 count

let test_lemma36_dims_decrease () =
  let p = Params.make ~n:7 ~k:2 in
  let g = Prng.create 17 in
  let d1 = Tr.lemma36_intersection_dims g p ~r:1 ~trials:5 in
  let d4 = Tr.lemma36_intersection_dims g p ~r:4 ~trials:5 in
  let avg a =
    float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)
  in
  Alcotest.(check bool) "r=1 gives n-1" true (Array.for_all (fun d -> d = 6) d1);
  Alcotest.(check bool) "more spans, smaller intersection" true
    (avg d4 < avg d1)

let test_lemma33_closure () =
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 23 in
  (* rows: a couple of C instances; columns: instances completed
     against the first C (so the rectangle need not be all ones; the
     material implication is what the lemma asserts) *)
  let c1 = (H.random_free g p).H.c in
  let c2 = (H.random_free g p).H.c in
  let frees =
    List.init 5 (fun _ ->
        let f = H.random_free g p in
        (L35.complete p ~c:c1 ~e:f.H.e).L35.free)
  in
  Alcotest.(check bool) "lemma 3.3 holds" true
    (Tr.lemma33_rectangle_closure p ~cs:[ c1; c2 ] ~frees)

let test_lemma35b_counts () =
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 29 in
  let c = (H.random_free g p).H.c in
  let ones, trials = Tr.lemma35b_count_ones_sampled g p ~c ~trials:2000 in
  Alcotest.(check int) "trials" 2000 trials;
  (* Lemma 3.5(b): ones exist but are a vanishing fraction; at these
     tiny parameters the fraction is roughly 1/m = 1/q^0 ... just check
     both sides are populated. *)
  Alcotest.(check bool) "some ones" true (ones > 0);
  Alcotest.(check bool) "not all ones" true (ones < trials)

(* ------------------------------------------------------------------ *)
(* Lemma 3.9 / Definition 3.8                                          *)
(* ------------------------------------------------------------------ *)

let pi0_partition p =
  let dim = 2 * p.Params.n in
  let bits = dim * dim * p.Params.k in
  (* column-major cells, k bits per cell: the first half of all bit
     positions is exactly the first n columns *)
  Partition.first_half bits

let test_pi0_is_proper () =
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      Alcotest.(check bool)
        (Printf.sprintf "pi0 proper at n=%d k=%d" n k)
        true
        (L39.is_proper p (pi0_partition p)))
    small_params

let prop_transform_found_and_proper (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let dim = 2 * n in
  let partition = Partition.random_even g (dim * dim * k) in
  match L39.find_transform g p partition with
  | None -> false
  | Some t -> L39.is_proper p (L39.apply_transform p partition t)

let prop_permutation_preserves_singularity (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let dim = 2 * n in
  let row_perm = Array.init dim (fun i -> i) in
  let col_perm = Array.init dim (fun i -> i) in
  Prng.shuffle g row_perm;
  Prng.shuffle g col_perm;
  let t = { L39.row_perm; col_perm; swap_agents = false } in
  L39.permutation_preserves_singularity g p t

(* ------------------------------------------------------------------ *)
(* Padding                                                             *)
(* ------------------------------------------------------------------ *)

let test_padding_split () =
  List.iter
    (fun (m, expect_n, expect_d) ->
      let n, d = Padding.split ~m in
      Alcotest.(check (pair int int))
        (Printf.sprintf "m=%d" m)
        (expect_n, expect_d) (n, d))
    [ (10, 5, 0); (11, 5, 1); (12, 5, 2); (13, 5, 3); (14, 7, 0); (15, 7, 1) ]

let prop_padding_preserves (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let f = H.random_free g p in
  let inner = H.build_m p f in
  (* find target sizes m where split gives back our n *)
  let m = (2 * n) + 2 in
  let n', _ = Padding.split ~m in
  n' <> n || Padding.singularity_preserved inner ~m

let test_padding_roundtrip () =
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 31 in
  let inner = H.build_m p (H.random_free g p) in
  let padded = Padding.embed inner ~m:12 in
  Alcotest.(check bool) "extract" true (Zm.equal inner (Padding.extract padded))

(* ------------------------------------------------------------------ *)
(* Reductions: Corollaries 1.2, 1.3, rank gadget                       *)
(* ------------------------------------------------------------------ *)

let random_small_matrix g dim lo hi =
  Zm.init dim dim (fun _ _ -> B.of_int (Prng.int_incl g lo hi))

let prop_cor12_all_agree seed =
  let g = Prng.create seed in
  let dim = 1 + Prng.int g 5 in
  let m = random_small_matrix g dim (-9) 9 in
  let truth = L32.is_singular_direct m in
  Red.singular_via_det m = truth
  && Red.singular_via_rank m = truth
  && Red.singular_via_qr m = truth
  && Red.singular_via_lup m = truth
  && Red.singular_via_lup_structure m = truth
  && Red.singular_via_svd m = truth
  && Red.singular_via_svd_exact m = truth
  && Red.singular_via_smith m = truth
  && Red.singular_via_charpoly m = truth

let prop_cor13_solvability (n, k, seed) =
  let p = Params.make ~n ~k in
  let g = Prng.create seed in
  let f = H.random_free g p in
  let m = H.build_m p f in
  Red.singular_via_solvability p f = L32.is_singular_direct m

let prop_product_gadget seed =
  let g = Prng.create seed in
  let dim = 1 + Prng.int g 4 in
  let a = random_small_matrix g dim (-4) 4 in
  let b = random_small_matrix g dim (-4) 4 in
  (* half the time use the true product, half a perturbed one *)
  let c = Zm.mul a b in
  let c =
    if Prng.bool g then c
    else begin
      let c = Zm.copy c in
      let i = Prng.int g dim and j = Prng.int g dim in
      Zm.set c i j (B.add (Zm.get c i j) B.one);
      c
    end
  in
  Red.product_check_via_rank a b c = Zm.equal (Zm.mul a b) c

let prop_span_union_vs_rank seed =
  let g = Prng.create seed in
  let dim = 2 * (1 + Prng.int g 3) in
  let m = random_small_matrix g dim (-3) 3 in
  let v1, v2 = Red.span_instance_of_gadget m in
  Red.span_union_covers v1 v2 = (Zm.rank m = dim)

(* ------------------------------------------------------------------ *)
(* Lovász–Saks span counting                                           *)
(* ------------------------------------------------------------------ *)

module Ls = Commx_core.Lovasz_saks
module Qm = Commx_linalg.Qmatrix
module QQ = Commx_bigint.Rational

let test_lovasz_saks_known () =
  (* standard basis e1, e2 in Q^2: spans are {0}, <e1>, <e2>, Q^2 *)
  let m = Qm.of_int_array2 [| [| 1; 0 |]; [| 0; 1 |] |] in
  Alcotest.(check int) "4 spans" 4 (Ls.count_spans m);
  Alcotest.(check int) "height" 3 (Ls.lattice_height m);
  (* duplicated vector adds nothing *)
  let m2 = Qm.of_int_array2 [| [| 1; 1; 0 |]; [| 0; 0; 1 |] |] in
  Alcotest.(check int) "duplicate collapses" 4 (Ls.count_spans m2);
  (* three generic vectors in Q^2: {0}, three lines, the plane = 5 *)
  let m3 = Qm.of_int_array2 [| [| 1; 0; 1 |]; [| 0; 1; 1 |] |] in
  Alcotest.(check int) "three lines" 5 (Ls.count_spans m3)

let prop_lovasz_saks_bounds seed =
  let g = Prng.create seed in
  let dim = 2 + Prng.int g 2 in
  let ncols = 2 + Prng.int g 4 in
  let m =
    Qm.init dim ncols (fun _ _ -> QQ.of_int (Prng.int_incl g (-2) 2))
  in
  let count = Ls.count_spans m in
  (* at least the zero span; at most 2^cols *)
  count >= 1 && count <= 1 lsl ncols
  && Ls.lattice_height m <= dim + 1

let test_lovasz_saks_vs_theorem11 () =
  (* On a hard-instance column set the fixed-partition bound log^2 #L
     is tiny next to the unrestricted Theta(k n^2) scale — the gap the
     paper highlights. *)
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 53 in
  let m = H.build_m p (H.random_free g p) in
  (* use the first 8 columns to keep the enumeration small *)
  let qm = Commx_linalg.Zmatrix.to_qmatrix m in
  let sub =
    Qm.submatrix qm
      (Array.init (Qm.rows qm) (fun i -> i))
      (Array.init 8 (fun j -> j))
  in
  let ls = Ls.lovasz_saks_bits sub in
  Alcotest.(check bool) "positive" true (ls > 0.0);
  Alcotest.(check bool) "well below 2kn^2" true
    (ls < float_of_int (Bounds.trivial_upper_bits ~n:5 ~k:2))

(* ------------------------------------------------------------------ *)
(* Theorem 1.1 ledger                                                  *)
(* ------------------------------------------------------------------ *)

module T11 = Commx_core.Theorem11

let test_ledger_values () =
  let p = Params.make ~n:5 ~k:2 in
  let l = T11.ledger p in
  (* rows = q^(half^2) = 3^4 = 81, matching Lemma 3.4's exhaustive count *)
  Alcotest.(check bi) "rows" (B.of_int 81) l.T11.rows;
  (* ones_per_row_max = q^((n^2-1)/2) = 3^12 *)
  Alcotest.(check bi) "ones max" (B.pow (B.of_int 3) 12) l.T11.ones_per_row_max;
  Alcotest.(check bool) "comm lower nonneg" true (l.T11.comm_lower_bits >= 0.0)

let prop_ledger_rows_match_enumeration (n, k, _) =
  let p = Params.make ~n ~k in
  if Params.free_cells_agent1 p * k > 40 then true
  else
    let l = T11.ledger p in
    B.equal l.T11.rows (B.of_int (Commx_core.Truth_restricted.count_c p))

let test_ledger_asymptotics () =
  (* The explicit constants make the bound vacuous at small n (the
     O(n log n) losses dominate); in the asymptotic regime doubling n
     roughly quadruples the bound at fixed k. *)
  let l1 = T11.ledger (Params.make ~n:201 ~k:4) in
  let l2 = T11.ledger (Params.make ~n:401 ~k:4) in
  let ratio = l2.T11.d_f_log2 /. l1.T11.d_f_log2 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [3.5, 5]" ratio)
    true
    (ratio > 3.5 && ratio < 5.0);
  (* and roughly linearly in k at fixed n *)
  let a = T11.ledger (Params.make ~n:201 ~k:4) in
  let b = T11.ledger (Params.make ~n:201 ~k:8) in
  let kratio = b.T11.d_f_log2 /. a.T11.d_f_log2 in
  Alcotest.(check bool)
    (Printf.sprintf "k ratio %.2f in [1.5, 2.6]" kratio)
    true
    (kratio > 1.5 && kratio < 2.6);
  (* small parameters: vacuous bound is clamped to 0, never negative *)
  let small = T11.ledger (Params.make ~n:5 ~k:2) in
  Alcotest.(check bool) "clamped" true (small.T11.comm_lower_bits >= 0.0)

let test_ledger_proper_weaker () =
  (* the arbitrary-partition ledger gives a weaker but still Omega(k
     n^2) bound *)
  let p = Params.make ~n:201 ~k:4 in
  let pi0 = T11.ledger p in
  let proper = T11.proper_partition_ledger p in
  Alcotest.(check bool) "still positive" true (proper.T11.d_f_log2 > 0.0);
  Alcotest.(check bool) "both Omega(kn^2): within 10x" true
    (pi0.T11.d_f_log2 /. proper.T11.d_f_log2 < 10.0
    && proper.T11.d_f_log2 /. pi0.T11.d_f_log2 < 10.0)

let test_ledger_below_upper () =
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let l = T11.ledger p in
      Alcotest.(check bool)
        (Printf.sprintf "lower <= upper at n=%d k=%d" n k)
        true
        (l.T11.comm_lower_bits
        <= float_of_int (Bounds.trivial_upper_bits ~n ~k)))
    [ (5, 2); (9, 3); (15, 4); (25, 8); (51, 2) ]

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds_sanity () =
  Alcotest.(check int) "trivial cost" 800 (Bounds.trivial_upper_bits ~n:10 ~k:4);
  Alcotest.(check bool) "lower <= upper" true
    (Bounds.deterministic_lower_bits ~n:15 ~k:8
    <= float_of_int (Bounds.trivial_upper_bits ~n:15 ~k:8));
  Alcotest.(check bool) "randomized beats trivial for large k" true
    (Bounds.deterministic_over_randomized ~n:20 ~k:64 ~epsilon:0.01 > 1.0);
  Alcotest.(check bool) "our T beats CM for k > 1" true
    (Bounds.our_time_lower ~n:50 ~k:9 > Bounds.chazelle_monier_time_lower ~n:50)

let test_bounds_monotone () =
  (* lower bound grows with both n and k *)
  let b n k = Bounds.deterministic_lower_bits ~n ~k in
  Alcotest.(check bool) "grows in n" true (b 21 4 > b 15 4);
  Alcotest.(check bool) "grows in k" true (b 15 8 > b 15 4);
  let at2 = Bounds.at2_lower ~info_bits:100.0 in
  Alcotest.(check (float 1e-9)) "at2" 10000.0 at2

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "core"
    [ ( "params",
        [ Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "derived quantities" `Quick test_params_derived;
          Alcotest.test_case "ceil_log" `Quick test_ceil_log;
          qtest "free cell identity" arb_param_seed prop_free_cell_identity ] );
      ( "gadget",
        [ Alcotest.test_case "u vector" `Quick test_u_vector;
          Alcotest.test_case "neg-base known digits" `Quick test_neg_base_known;
          qtest "neg-base roundtrip" QCheck.(pair int int)
            prop_neg_base_roundtrip;
          qtest "neg-base range is tight" QCheck.int prop_neg_base_range_tight
        ] );
      ( "hard-instance",
        [ Alcotest.test_case "M shape and fixed cells" `Quick test_build_m_shape;
          Alcotest.test_case "A structure" `Quick test_a_structure;
          Alcotest.test_case "free positions" `Quick test_free_positions;
          Alcotest.test_case "validation rejects" `Quick test_validate_rejects;
          qtest "Span(A) always full" arb_param_seed prop_span_always_full ] );
      ( "lemma32",
        [ Alcotest.test_case "zero free blocks singular" `Quick
            test_lemma32_zero_free;
          qtest "criterion = ground truth" ~count:150 arb_param_seed
            prop_lemma32_agrees ] );
      ( "lemma35",
        [ Alcotest.test_case "exhaustive at n=5 k=2" `Quick
            test_lemma35_exhaustive_tiny;
          qtest "completion always singular" ~count:150 arb_param_seed
            prop_lemma35_completion ] );
      ( "truth-restricted",
        [ Alcotest.test_case "normal vector" `Quick test_normal_vector;
          Alcotest.test_case "lemma 3.4 distinct spans" `Quick
            test_lemma34_distinct_spans;
          Alcotest.test_case "lemma 3.6 dims shrink" `Quick
            test_lemma36_dims_decrease;
          Alcotest.test_case "lemma 3.3 closure" `Quick test_lemma33_closure;
          Alcotest.test_case "lemma 3.5b sampled counts" `Quick
            test_lemma35b_counts;
          Alcotest.test_case "sampled truth matrix entries" `Quick
            (fun () ->
              let p = Params.make ~n:5 ~k:2 in
              let g = Prng.create 61 in
              let tm = Tr.sampled_truth_matrix g p ~columns:30 in
              Alcotest.(check int) "rows" 81
                (Commx_comm.Truth_matrix.rows tm);
              (* each entry must agree with the Lemma 3.2 criterion *)
              for i = 0 to 10 do
                for j = 0 to 10 do
                  let c = tm.Commx_comm.Truth_matrix.row_args.(i * 7) in
                  let f = tm.Commx_comm.Truth_matrix.col_args.(j * 2) in
                  let entry = Commx_comm.Truth_matrix.get tm (i * 7) (j * 2) in
                  Alcotest.(check bool) "agrees" entry
                    (L32.criterion p { f with H.c })
                done
              done);
          qtest "fast test = criterion" arb_param_seed
            prop_singular_with_matches_criterion ] );
      ( "lemma39",
        [ Alcotest.test_case "pi0 is proper" `Quick test_pi0_is_proper;
          qtest "transform always found" ~count:50 arb_param_seed
            prop_transform_found_and_proper;
          qtest "permutation preserves singularity" ~count:50 arb_param_seed
            prop_permutation_preserves_singularity ] );
      ( "padding",
        [ Alcotest.test_case "split" `Quick test_padding_split;
          Alcotest.test_case "roundtrip" `Quick test_padding_roundtrip;
          qtest "preserves singularity" arb_param_seed prop_padding_preserves
        ] );
      ( "reductions",
        [ qtest "corollary 1.2 (a-e)" ~count:200 QCheck.small_int
            prop_cor12_all_agree;
          qtest "corollary 1.3" arb_param_seed prop_cor13_solvability;
          qtest "product gadget" ~count:200 QCheck.small_int
            prop_product_gadget;
          qtest "span union vs rank" ~count:100 QCheck.small_int
            prop_span_union_vs_rank ] );
      ( "lovasz-saks",
        [ Alcotest.test_case "known span counts" `Quick test_lovasz_saks_known;
          Alcotest.test_case "vs theorem 1.1 scale" `Quick
            test_lovasz_saks_vs_theorem11;
          qtest "count bounds" ~count:40 QCheck.small_int
            prop_lovasz_saks_bounds ] );
      ( "theorem11-ledger",
        [ Alcotest.test_case "explicit values" `Quick test_ledger_values;
          Alcotest.test_case "asymptotics n^2 k" `Quick test_ledger_asymptotics;
          Alcotest.test_case "proper-partition variant weaker" `Quick
            test_ledger_proper_weaker;
          Alcotest.test_case "below trivial upper" `Quick
            test_ledger_below_upper;
          qtest "rows match exhaustive count" ~count:20 arb_param_seed
            prop_ledger_rows_match_enumeration ] );
      ( "bounds",
        [ Alcotest.test_case "sanity" `Quick test_bounds_sanity;
          Alcotest.test_case "monotonicity" `Quick test_bounds_monotone ] ) ]
