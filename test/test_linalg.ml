(* Tests for the exact linear-algebra layer: structural matrix
   operations, determinants (Bareiss vs Laplace vs field elimination vs
   CRT), rank, solve/nullspace/inverse, LUP, Gram-Schmidt QR structure,
   subspace algebra, and the floating SVD substrate. *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module Lup = Commx_linalg.Lup
module Gram = Commx_linalg.Gram
module Svd = Commx_linalg.Svd
module Sub = Commx_linalg.Subspace
module Prng = Commx_util.Prng

let bi = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable Q.pp Q.equal

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Generators: small integer matrices as int array array              *)
(* ------------------------------------------------------------------ *)

let gen_dim = QCheck.Gen.int_range 1 5

let gen_int_matrix ?(lo = -9) ?(hi = 9) rows cols =
  QCheck.Gen.(
    array_size (return rows)
      (array_size (return cols) (int_range lo hi)))

let gen_square =
  QCheck.Gen.(gen_dim >>= fun n -> gen_int_matrix n n)

let gen_rect =
  QCheck.Gen.(
    gen_dim >>= fun r ->
    gen_dim >>= fun c -> gen_int_matrix r c)

let print_mat a =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat " " (Array.to_list (Array.map string_of_int row)))
          a))

let print_mat_vec v =
  String.concat " " (Array.to_list (Array.map string_of_int v))

let arb_square = QCheck.make ~print:print_mat gen_square
let arb_rect = QCheck.make ~print:print_mat gen_rect

let zm_of a = Zm.of_int_array2 a
let qm_of a = Qm.of_int_array2 a

(* ------------------------------------------------------------------ *)
(* Structural operations                                               *)
(* ------------------------------------------------------------------ *)

let test_identity_mul () =
  let a = qm_of [| [| 1; 2 |]; [| 3; 4 |] |] in
  Alcotest.(check bool) "I*A = A" true (Qm.equal a (Qm.mul (Qm.identity 2) a));
  Alcotest.(check bool) "A*I = A" true (Qm.equal a (Qm.mul a (Qm.identity 2)))

let test_mul_known () =
  let a = qm_of [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = qm_of [| [| 5; 6 |]; [| 7; 8 |] |] in
  let expected = qm_of [| [| 19; 22 |]; [| 43; 50 |] |] in
  Alcotest.(check bool) "2x2 product" true (Qm.equal expected (Qm.mul a b))

let test_hcat_vcat () =
  let a = qm_of [| [| 1 |]; [| 2 |] |] in
  let b = qm_of [| [| 3 |]; [| 4 |] |] in
  let h = Qm.hcat a b in
  Alcotest.(check int) "hcat cols" 2 (Qm.cols h);
  Alcotest.(check rat) "hcat entry" (Q.of_int 3) (Qm.get h 0 1);
  let v = Qm.vcat a b in
  Alcotest.(check int) "vcat rows" 4 (Qm.rows v);
  Alcotest.(check rat) "vcat entry" (Q.of_int 4) (Qm.get v 3 0)

let prop_transpose_involution a =
  let m = qm_of a in
  Qm.equal m (Qm.transpose (Qm.transpose m))

let prop_mul_transpose (a, b) =
  (* (AB)^T = B^T A^T for square same-dim *)
  let n = min (Array.length a) (Array.length b) in
  let cut m = Array.map (fun r -> Array.sub r 0 n) (Array.sub m 0 n) in
  let a = qm_of (cut a) and b = qm_of (cut b) in
  Qm.equal
    (Qm.transpose (Qm.mul a b))
    (Qm.mul (Qm.transpose b) (Qm.transpose a))

let prop_add_sub a =
  let m = qm_of a in
  Qm.is_zero_matrix (Qm.sub m m) && Qm.equal m (Qm.add m (Qm.zero (Qm.rows m) (Qm.cols m)))

let prop_permute_rows_roundtrip a =
  let m = qm_of a in
  let n = Qm.rows m in
  let perm = Array.init n (fun i -> (i + 1) mod n) in
  let inv = Array.make n 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  Qm.equal m (Qm.permute_rows (Qm.permute_rows m perm) inv)

(* ------------------------------------------------------------------ *)
(* Determinants                                                        *)
(* ------------------------------------------------------------------ *)

let test_det_known () =
  Alcotest.(check bi) "det I3" B.one (Zm.det (Zm.of_int_array2
    [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |]));
  Alcotest.(check bi) "det 2x2" (B.of_int (-2))
    (Zm.det (Zm.of_int_array2 [| [| 1; 2 |]; [| 3; 4 |] |]));
  (* Vandermonde on 2,3,5,7: prod of differences *)
  let vander = Zm.of_int_fn 4 4 (fun i j ->
      let xs = [| 2; 3; 5; 7 |] in
      int_of_float (Float.pow (float_of_int xs.(i)) (float_of_int j)))
  in
  (* (3-2)(5-2)(7-2)(5-3)(7-3)(7-5) = 1*3*5*2*4*2 = 240 *)
  Alcotest.(check bi) "vandermonde" (B.of_int 240) (Zm.det vander);
  Alcotest.(check bi) "det empty" B.one (Zm.det (Zm.zero 0 0));
  Alcotest.(check bi) "det singular" B.zero
    (Zm.det (Zm.of_int_array2 [| [| 1; 2 |]; [| 2; 4 |] |]))

let prop_bareiss_vs_laplace a =
  let m = zm_of a in
  B.equal (Zm.det_bareiss m) (Zm.det_laplace m)

let prop_bareiss_vs_field a =
  let m = zm_of a in
  let dq = Qm.det (qm_of a) in
  Q.equal dq (Q.of_bigint (Zm.det_bareiss m))

let prop_crt_vs_bareiss a =
  let m = zm_of a in
  B.equal (Zm.det_crt m) (Zm.det_bareiss m)

let prop_det_transpose a =
  let m = zm_of a in
  B.equal (Zm.det m) (Zm.det (Zm.transpose m))

let prop_det_multiplicative (a, b) =
  let n = min (Array.length a) (Array.length b) in
  let cut m = Array.map (fun r -> Array.sub r 0 n) (Array.sub m 0 n) in
  let ma = zm_of (cut a) and mb = zm_of (cut b) in
  B.equal (Zm.det (Zm.mul ma mb)) (B.mul (Zm.det ma) (Zm.det mb))

let prop_det_row_swap_negates a =
  let m = zm_of a in
  let n = Zm.rows m in
  n < 2
  ||
  let m' = Zm.copy m in
  Zm.swap_rows m' 0 1;
  B.equal (Zm.det m') (B.neg (Zm.det m))

let prop_hadamard a =
  let m = zm_of a in
  B.compare (B.abs (Zm.det m)) (Zm.hadamard_bound m) <= 0

let test_det_big_entries () =
  (* Entries far beyond 64-bit: exercise bignum paths end to end. *)
  let big = B.pow (B.of_int 10) 30 in
  let m =
    Zm.init 3 3 (fun i j ->
        B.add (B.mul_int big ((i * 3) + j + 1)) (B.of_int (i + j)))
  in
  Alcotest.(check bi) "crt matches bareiss on huge entries"
    (Zm.det_bareiss m) (Zm.det_crt m)

(* ------------------------------------------------------------------ *)
(* Rank / solve / nullspace / inverse                                  *)
(* ------------------------------------------------------------------ *)

let prop_rank_bounds a =
  let m = qm_of a in
  let r = Qm.rank m in
  r >= 0 && r <= min (Qm.rows m) (Qm.cols m)

let prop_rank_transpose a =
  let m = qm_of a in
  Qm.rank m = Qm.rank (Qm.transpose m)

let prop_rank_product (a, b) =
  let n = min (Array.length a) (Array.length b) in
  let cut m = Array.map (fun r -> Array.sub r 0 n) (Array.sub m 0 n) in
  let ma = qm_of (cut a) and mb = qm_of (cut b) in
  Qm.rank (Qm.mul ma mb) <= min (Qm.rank ma) (Qm.rank mb)

let prop_rank_self_augment a =
  let m = qm_of a in
  Qm.rank (Qm.hcat m m) = Qm.rank m

let prop_rref_idempotent a =
  let m = qm_of a in
  let r = Qm.rref m in
  Qm.equal r (Qm.rref r)

let prop_nullspace_kills a =
  let m = qm_of a in
  let null = Qm.nullspace m in
  List.for_all
    (fun v -> Array.for_all Q.is_zero (Qm.mul_vec m v))
    null
  && List.length null = Qm.cols m - Qm.rank m

let prop_solve_reconstructs (a, bv) =
  let m = qm_of a in
  let b =
    Array.init (Qm.rows m) (fun i ->
        Q.of_int (if i < Array.length bv then bv.(i) else 0))
  in
  match Qm.solve m b with
  | None ->
      (* must genuinely be inconsistent: rank criterion *)
      let bcol = Qm.init (Qm.rows m) 1 (fun i _ -> b.(i)) in
      Qm.rank (Qm.hcat m bcol) > Qm.rank m
  | Some x ->
      let ax = Qm.mul_vec m x in
      Array.for_all2 Q.equal ax b

let prop_inverse a =
  let m = qm_of a in
  if not (Qm.is_square m) then true
  else
    match Qm.inverse m with
    | None -> Qm.is_singular m
    | Some inv ->
        Qm.equal (Qm.mul m inv) (Qm.identity (Qm.rows m))
        && Qm.equal (Qm.mul inv m) (Qm.identity (Qm.rows m))

let prop_singular_iff_det_zero a =
  let m = zm_of a in
  Zm.is_singular m = (Zm.rank m < Zm.rows m)

(* The batched modular filter must agree verdict-for-verdict with the
   exact scalar test, including on matrices engineered to be singular
   (where the mod-p filter cannot decide and must escalate). *)
let prop_singular_batch_agrees seed =
  let g = Prng.create seed in
  let ms =
    Array.init (Prng.int g 6) (fun _ ->
        let n = 1 + Prng.int g 5 in
        match Prng.int g 3 with
        | 0 -> Zm.random_of_rank g ~rows:n ~cols:n ~rank:(Prng.int g n)
        | 1 -> Zm.random_of_rank g ~rows:n ~cols:n ~rank:n
        | _ -> Zm.random g ~rows:n ~cols:n ~bits:(1 + Prng.int g 40))
  in
  Zm.singular_batch ms = Array.map Zm.is_singular ms

let prop_rank_mod_p_lower a =
  let m = zm_of a in
  Zm.rank_mod_p m 1_000_003 <= Zm.rank m

let test_solve_known () =
  (* x + y = 3, x - y = 1  =>  x = 2, y = 1 *)
  let a = qm_of [| [| 1; 1 |]; [| 1; -1 |] |] in
  (match Qm.solve a [| Q.of_int 3; Q.of_int 1 |] with
  | None -> Alcotest.fail "expected solution"
  | Some x ->
      Alcotest.(check rat) "x" (Q.of_int 2) x.(0);
      Alcotest.(check rat) "y" (Q.of_int 1) x.(1));
  (* inconsistent *)
  let a2 = qm_of [| [| 1; 1 |]; [| 2; 2 |] |] in
  Alcotest.(check bool) "inconsistent" false
    (Qm.solvable a2 [| Q.of_int 1; Q.of_int 3 |]);
  (* underdetermined but consistent *)
  Alcotest.(check bool) "underdetermined" true
    (Qm.solvable a2 [| Q.of_int 1; Q.of_int 2 |])

(* ------------------------------------------------------------------ *)
(* LUP                                                                 *)
(* ------------------------------------------------------------------ *)

let prop_lup_verify a =
  let m = qm_of a in
  if not (Qm.is_square m) then true
  else
    let d = Lup.decompose m in
    Lup.verify m d

let prop_lup_det a =
  let m = qm_of a in
  if not (Qm.is_square m) then true
  else
    let d = Lup.decompose m in
    Q.equal (Lup.det d) (Qm.det m)

let test_permutation_sign () =
  Alcotest.(check int) "id" 1 (Lup.sign_of_permutation [| 0; 1; 2 |]);
  Alcotest.(check int) "swap" (-1) (Lup.sign_of_permutation [| 1; 0; 2 |]);
  Alcotest.(check int) "3cycle" 1 (Lup.sign_of_permutation [| 1; 2; 0 |]);
  Alcotest.(check int) "4cycle" (-1) (Lup.sign_of_permutation [| 1; 2; 3; 0 |])

let test_lup_singular () =
  let m = qm_of [| [| 1; 2; 3 |]; [| 2; 4; 6 |]; [| 1; 1; 1 |] |] in
  let d = Lup.decompose m in
  Alcotest.(check bool) "verifies on singular input" true (Lup.verify m d);
  Alcotest.(check rat) "det zero" Q.zero (Lup.det d)

(* ------------------------------------------------------------------ *)
(* Gram-Schmidt QR structure                                           *)
(* ------------------------------------------------------------------ *)

let prop_gram_verify a =
  let m = qm_of a in
  let d = Gram.decompose m in
  Gram.verify m d

let prop_gram_rank a =
  let m = qm_of a in
  Gram.rank_from_q (Gram.decompose m) = Qm.rank m

(* ------------------------------------------------------------------ *)
(* Subspaces                                                           *)
(* ------------------------------------------------------------------ *)

let qvec l = Array.of_list (List.map Q.of_int l)

let test_subspace_basics () =
  let s = Sub.of_vectors 3 [ qvec [ 1; 0; 0 ]; qvec [ 0; 1; 0 ]; qvec [ 1; 1; 0 ] ] in
  Alcotest.(check int) "dim" 2 (Sub.dim s);
  Alcotest.(check bool) "member" true (Sub.mem (qvec [ 5; -3; 0 ]) s);
  Alcotest.(check bool) "non-member" false (Sub.mem (qvec [ 0; 0; 1 ]) s);
  Alcotest.(check bool) "zero vec member" true (Sub.mem (qvec [ 0; 0; 0 ]) s);
  Alcotest.(check bool) "not everything" false (Sub.spans_everything s);
  Alcotest.(check bool) "full" true (Sub.spans_everything (Sub.full_space 3))

let test_subspace_intersect () =
  (* xy-plane meets yz-plane in the y-axis *)
  let xy = Sub.of_vectors 3 [ qvec [ 1; 0; 0 ]; qvec [ 0; 1; 0 ] ] in
  let yz = Sub.of_vectors 3 [ qvec [ 0; 1; 0 ]; qvec [ 0; 0; 1 ] ] in
  let i = Sub.intersect xy yz in
  Alcotest.(check int) "dim 1" 1 (Sub.dim i);
  Alcotest.(check bool) "y-axis" true (Sub.mem (qvec [ 0; 7; 0 ]) i);
  (* intersect with zero space *)
  let z = Sub.intersect xy (Sub.zero_space 3) in
  Alcotest.(check int) "zero" 0 (Sub.dim z)

let test_subspace_project () =
  let s = Sub.of_vectors 3 [ qvec [ 1; 2; 3 ] ] in
  let p = Sub.project s [| 1; 2 |] in
  Alcotest.(check int) "ambient" 2 (Sub.ambient_dim p);
  Alcotest.(check bool) "projected vec" true (Sub.mem (qvec [ 2; 3 ]) p)

let prop_subspace_dim_formula (a, b) =
  (* dim(U+V) + dim(U ∩ V) = dim U + dim V *)
  let n = 4 in
  let cut m =
    Array.to_list
      (Array.map
         (fun r -> Array.map Q.of_int (Array.sub r 0 (min n (Array.length r))))
         (Array.sub m 0 (min 3 (Array.length m))))
  in
  let pad v = Array.init n (fun i -> if i < Array.length v then v.(i) else Q.zero) in
  let va = List.map pad (cut a) and vb = List.map pad (cut b) in
  let u = Sub.of_vectors n va and v = Sub.of_vectors n vb in
  Sub.dim (Sub.add u v) + Sub.dim (Sub.intersect u v) = Sub.dim u + Sub.dim v

let prop_subspace_mem_closed a =
  (* sums of basis vectors stay inside *)
  let m = qm_of a in
  let s = Sub.of_matrix_rows m in
  match Sub.basis s with
  | [] -> true
  | first :: rest ->
      let sum =
        List.fold_left (fun acc v -> Array.map2 Q.add acc v) first rest
      in
      Sub.mem sum s

let prop_column_space_contains_products a =
  (* A x is always in the column space of A *)
  let m = qm_of a in
  let s = Sub.of_matrix_columns m in
  let x = Array.init (Qm.cols m) (fun i -> Q.of_int (i + 1)) in
  Sub.mem (Qm.mul_vec m x) s

(* ------------------------------------------------------------------ *)
(* Smith normal form                                                   *)
(* ------------------------------------------------------------------ *)

module Smith = Commx_linalg.Smith
module Charpoly = Commx_linalg.Charpoly

let test_smith_known () =
  (* classic example: [[2,4,4],[-6,6,12],[10,-4,-16]] has SNF
     diag(2, 6, 12) *)
  let m = Zm.of_int_array2 [| [| 2; 4; 4 |]; [| -6; 6; 12 |]; [| 10; -4; -16 |] |] in
  Alcotest.(check (list bi)) "invariant factors"
    [ B.of_int 2; B.of_int 6; B.of_int 12 ]
    (Smith.invariant_factors m);
  Alcotest.(check bi) "det abs" (B.of_int 144) (Smith.det_abs m);
  Alcotest.(check bi) "matches bareiss" (B.abs (Zm.det m)) (Smith.det_abs m);
  (* identity *)
  Alcotest.(check (list bi)) "identity"
    [ B.one; B.one; B.one ]
    (Smith.invariant_factors (Zm.identity 3))

let prop_smith_rank a =
  let m = zm_of a in
  Smith.rank m = Zm.rank m

let prop_smith_det_abs a =
  let m = zm_of a in
  not (Zm.is_square m) || B.equal (Smith.det_abs m) (B.abs (Zm.det m))

let prop_smith_chain a =
  let m = zm_of a in
  Smith.divisibility_chain_ok (Smith.invariant_factors m)

let prop_smith_permutation_invariant a =
  let m = zm_of a in
  let n = Zm.rows m in
  if n < 2 then true
  else begin
    let m' = Zm.copy m in
    Zm.swap_rows m' 0 (n - 1);
    Zm.swap_cols m' 0 (min 1 (Zm.cols m' - 1));
    Smith.invariant_factors m = Smith.invariant_factors m'
  end

(* ------------------------------------------------------------------ *)
(* Characteristic polynomial                                           *)
(* ------------------------------------------------------------------ *)

let test_charpoly_known () =
  (* [[1,2],[3,4]]: x^2 - 5x - 2 *)
  let m = qm_of [| [| 1; 2 |]; [| 3; 4 |] |] in
  let c = Charpoly.charpoly m in
  Alcotest.(check rat) "c0" (Q.of_int (-2)) c.(0);
  Alcotest.(check rat) "c1" (Q.of_int (-5)) c.(1);
  Alcotest.(check rat) "c2" Q.one c.(2);
  Alcotest.(check rat) "det" (Q.of_int (-2)) (Charpoly.det m);
  Alcotest.(check rat) "trace" (Q.of_int 5) (Charpoly.trace m);
  (* empty matrix: charpoly = 1 *)
  let c0 = Charpoly.charpoly (Qm.zero 0 0) in
  Alcotest.(check int) "empty len" 1 (Array.length c0)

let prop_charpoly_det a =
  let m = qm_of a in
  not (Qm.is_square m) || Q.equal (Charpoly.det m) (Qm.det m)

let prop_charpoly_integer_coeffs a =
  let m = zm_of a in
  if not (Zm.is_square m) then true
  else
    (* charpoly_z raises on non-integer coefficients *)
    Array.length (Charpoly.charpoly_z m) = Zm.rows m + 1

let prop_cayley_hamilton a =
  (* p(M) = 0 *)
  let m = qm_of a in
  if not (Qm.is_square m) then true
  else begin
    let n = Qm.rows m in
    let c = Charpoly.charpoly m in
    let acc = ref (Qm.zero n n) in
    let power = ref (Qm.identity n) in
    for i = 0 to n do
      acc := Qm.add !acc (Qm.scale c.(i) !power);
      if i < n then power := Qm.mul !power m
    done;
    Qm.is_zero_matrix !acc
  end

let prop_zero_singular_values_is_corank a =
  let m = zm_of a in
  Charpoly.zero_singular_values m = Zm.cols m - Zm.rank m

let prop_gram_charpoly_signs a =
  (* M^T M is PSD: its nonzero eigenvalues are positive, so the
     characteristic polynomial evaluated at any negative x has sign
     (-1)^n... simpler invariant: eval at 0 is the constant coeff and
     equals (+-) det(M^T M) which is det(M)^2 >= 0 for square M. *)
  let m = zm_of a in
  if not (Zm.is_square m) then true
  else begin
    let c = Charpoly.gram_charpoly m in
    let n = Zm.rows m in
    let d = Zm.det m in
    let expected =
      let d2 = B.mul d d in
      if n mod 2 = 0 then d2 else B.neg d2
    in
    B.equal c.(0) expected
  end

(* ------------------------------------------------------------------ *)
(* Polynomials and Sturm sequences                                     *)
(* ------------------------------------------------------------------ *)

module Poly = Commx_linalg.Poly

let qp l = Poly.of_int_coeffs (Array.of_list l)

let test_poly_arith () =
  (* (x + 1)(x - 1) = x^2 - 1 *)
  let a = qp [ 1; 1 ] and b = qp [ -1; 1 ] in
  Alcotest.(check bool) "product" true
    (Poly.equal (Poly.mul a b) (qp [ -1; 0; 1 ]));
  Alcotest.(check int) "degree" 2 (Poly.degree (Poly.mul a b));
  Alcotest.(check bool) "add" true
    (Poly.equal (Poly.add a b) (qp [ 0; 2 ]));
  Alcotest.(check bool) "sub self" true (Poly.is_zero (Poly.sub a a));
  Alcotest.(check rat) "eval" (Q.of_int 8) (Poly.eval (qp [ -1; 0; 1 ]) (Q.of_int 3))

let test_poly_divmod () =
  (* x^3 - 2x + 5 divided by x - 3 *)
  let a = qp [ 5; -2; 0; 1 ] and b = qp [ -3; 1 ] in
  let quot, rem = Poly.divmod a b in
  Alcotest.(check bool) "reconstruct" true
    (Poly.equal a (Poly.add (Poly.mul quot b) rem));
  Alcotest.(check int) "rem degree" 0 (Poly.degree rem);
  (* remainder theorem: rem = a(3) *)
  Alcotest.(check rat) "remainder theorem" (Poly.eval a (Q.of_int 3))
    (Poly.eval rem Q.zero)

let gen_poly =
  QCheck.Gen.(
    list_size (int_range 1 7) (int_range (-5) 5) >>= fun l ->
    return (Array.of_list l))

let arb_poly =
  QCheck.make
    ~print:(fun a ->
      String.concat ";" (Array.to_list (Array.map string_of_int a)))
    gen_poly

let prop_poly_divmod_invariant (a, b) =
  let pa = Poly.of_int_coeffs a and pb = Poly.of_int_coeffs b in
  Poly.is_zero pb
  ||
  let quot, rem = Poly.divmod pa pb in
  Poly.equal pa (Poly.add (Poly.mul quot pb) rem)
  && (Poly.is_zero rem || Poly.degree rem < Poly.degree pb)

let prop_poly_gcd_divides (a, b) =
  let pa = Poly.of_int_coeffs a and pb = Poly.of_int_coeffs b in
  let g = Poly.gcd pa pb in
  if Poly.is_zero g then Poly.is_zero pa && Poly.is_zero pb
  else
    Poly.is_zero (Poly.rem pa g) && Poly.is_zero (Poly.rem pb g)

let prop_poly_derivative_linear (a, b) =
  let pa = Poly.of_int_coeffs a and pb = Poly.of_int_coeffs b in
  Poly.equal
    (Poly.derivative (Poly.add pa pb))
    (Poly.add (Poly.derivative pa) (Poly.derivative pb))

let test_sturm_known () =
  (* (x-1)(x-2)(x-4) = x^3 -7x^2 +14x - 8: roots 1, 2, 4 *)
  let p = qp [ -8; 14; -7; 1 ] in
  Alcotest.(check int) "(0,3]" 2
    (Poly.count_roots_in p ~lo:Q.zero ~hi:(Q.of_int 3));
  Alcotest.(check int) "(0,10]" 3 (Poly.count_positive_roots p);
  Alcotest.(check int) "(2,4]" 1
    (Poly.count_roots_in p ~lo:(Q.of_int 2) ~hi:(Q.of_int 4));
  (* x^2 + 1: no real roots *)
  Alcotest.(check int) "complex" 0 (Poly.count_positive_roots (qp [ 1; 0; 1 ]));
  (* repeated roots counted once: (x-1)^2 *)
  Alcotest.(check int) "repeated once" 1
    (Poly.count_positive_roots (qp [ 1; -2; 1 ]))

let prop_sturm_vs_eval_signs a =
  (* if p(lo) and p(hi) have strict opposite signs, at least one root
     lies between *)
  let p = Poly.of_int_coeffs a in
  if Poly.degree p < 1 then true
  else begin
    let lo = Q.of_int (-10) and hi = Q.of_int 10 in
    let slo = Q.sign (Poly.eval p lo) and shi = Q.sign (Poly.eval p hi) in
    if slo * shi >= 0 then true
    else Poly.count_roots_in p ~lo ~hi >= 1
  end

let test_distinct_singular_values () =
  (* diag(3, 3, 5): singular values {3, 3, 5} -> 2 distinct nonzero *)
  let m = Zm.of_int_array2 [| [| 3; 0; 0 |]; [| 0; 3; 0 |]; [| 0; 0; 5 |] |] in
  Alcotest.(check int) "diag" 2 (Poly.distinct_singular_value_count m);
  (* rank-deficient: diag(2, 0) -> 1 distinct nonzero *)
  let m2 = Zm.of_int_array2 [| [| 2; 0 |]; [| 0; 0 |] |] in
  Alcotest.(check int) "deficient" 1 (Poly.distinct_singular_value_count m2);
  (* localization: sigma^2 = 9 lies in (8, 10], sigma^2 = 25 not *)
  Alcotest.(check int) "interval" 1
    (Poly.singular_values_in m ~lo:(Q.of_int 8) ~hi:(Q.of_int 10))

let prop_distinct_sigma_bounds a =
  let m = zm_of a in
  let d = Poly.distinct_singular_value_count m in
  d >= 0 && d <= Zm.rank m
  && (Zm.rank m = 0) = (d = 0)

let prop_sigma_count_matches_float a =
  (* distinct nonzero singular values agree with the float SVD up to
     numeric clustering: exact count <= float nonzero count *)
  let m = zm_of a in
  let exact = Poly.distinct_singular_value_count m in
  let s = Svd.singular_values (Array.map (Array.map float_of_int) a) in
  let nonzero = Array.fold_left (fun acc x -> if x > 1e-9 then acc + 1 else acc) 0 s in
  exact <= nonzero

(* ------------------------------------------------------------------ *)
(* Rank-prescribed workloads                                           *)
(* ------------------------------------------------------------------ *)

let prop_random_of_rank_exact seed =
  let g = Prng.create seed in
  let nr = 2 + Prng.int g 4 and nc = 2 + Prng.int g 4 in
  let target = Prng.int g (min nr nc + 1) in
  let m = Zm.random_of_rank g ~rows:nr ~cols:nc ~rank:target in
  Zm.rank m = target

(* ------------------------------------------------------------------ *)
(* SVD substrate                                                       *)
(* ------------------------------------------------------------------ *)

let prop_svd_reconstructs a =
  let f = Array.map (Array.map float_of_int) a in
  let d = Svd.decompose f in
  Svd.max_abs_diff f (Svd.reconstruct d) < 1e-6

let prop_svd_rank_agrees a =
  let m = qm_of a in
  let f = Array.map (Array.map float_of_int) a in
  Svd.numeric_rank f = Qm.rank m

let prop_svd_descending a =
  let f = Array.map (Array.map float_of_int) a in
  let s = Svd.singular_values f in
  let ok = ref true in
  for i = 0 to Array.length s - 2 do
    if s.(i) < s.(i + 1) -. 1e-12 then ok := false
  done;
  !ok && Array.for_all (fun x -> x >= -1e-12) s

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "linalg"
    [ ( "structure",
        [ Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "hcat vcat" `Quick test_hcat_vcat;
          qtest "transpose involution" arb_rect prop_transpose_involution;
          qtest "(AB)^T = B^T A^T" (QCheck.pair arb_square arb_square)
            prop_mul_transpose;
          qtest "add/sub" arb_rect prop_add_sub;
          qtest "permute rows roundtrip" arb_rect prop_permute_rows_roundtrip
        ] );
      ( "determinant",
        [ Alcotest.test_case "known values" `Quick test_det_known;
          Alcotest.test_case "huge entries" `Quick test_det_big_entries;
          qtest "bareiss = laplace" arb_square prop_bareiss_vs_laplace;
          qtest "bareiss = field elimination" arb_square prop_bareiss_vs_field;
          qtest "crt = bareiss" ~count:60 arb_square prop_crt_vs_bareiss;
          qtest "det(A) = det(A^T)" arb_square prop_det_transpose;
          qtest "det multiplicative" (QCheck.pair arb_square arb_square)
            prop_det_multiplicative;
          qtest "row swap negates" arb_square prop_det_row_swap_negates;
          qtest "hadamard bound" arb_square prop_hadamard;
          qtest "singular_batch = map is_singular" QCheck.small_int
            prop_singular_batch_agrees ] );
      ( "rank-solve",
        [ Alcotest.test_case "solve known" `Quick test_solve_known;
          qtest "rank bounds" arb_rect prop_rank_bounds;
          qtest "rank transpose" arb_rect prop_rank_transpose;
          qtest "rank of product" (QCheck.pair arb_square arb_square)
            prop_rank_product;
          qtest "rank self augment" arb_rect prop_rank_self_augment;
          qtest "rref idempotent" arb_rect prop_rref_idempotent;
          qtest "nullspace" arb_rect prop_nullspace_kills;
          qtest "solve reconstructs or inconsistent"
            QCheck.(
              pair arb_rect
                (make ~print:print_mat_vec
                   Gen.(array_size (return 5) (int_range (-9) 9))))
            prop_solve_reconstructs;
          qtest "inverse" arb_square prop_inverse;
          qtest "singular iff rank deficient" arb_square
            prop_singular_iff_det_zero;
          qtest "rank mod p lower bound" arb_square prop_rank_mod_p_lower ] );
      ( "lup",
        [ Alcotest.test_case "permutation sign" `Quick test_permutation_sign;
          Alcotest.test_case "singular input" `Quick test_lup_singular;
          qtest "PA = LU" arb_square prop_lup_verify;
          qtest "det from factors" arb_square prop_lup_det ] );
      ( "gram",
        [ qtest "A = QR verify" arb_rect prop_gram_verify;
          qtest "rank from Q" arb_rect prop_gram_rank ] );
      ( "subspace",
        [ Alcotest.test_case "basics" `Quick test_subspace_basics;
          Alcotest.test_case "intersection" `Quick test_subspace_intersect;
          Alcotest.test_case "projection" `Quick test_subspace_project;
          qtest "dimension formula" (QCheck.pair arb_rect arb_rect)
            prop_subspace_dim_formula;
          qtest "closed under sums" arb_rect prop_subspace_mem_closed;
          qtest "Ax in col space" arb_rect prop_column_space_contains_products
        ] );
      ( "smith",
        [ Alcotest.test_case "known values" `Quick test_smith_known;
          qtest "rank agrees" arb_rect prop_smith_rank;
          qtest "det abs" arb_square prop_smith_det_abs;
          qtest "divisibility chain" arb_rect prop_smith_chain;
          qtest "permutation invariant" arb_square
            prop_smith_permutation_invariant ] );
      ( "charpoly",
        [ Alcotest.test_case "known values" `Quick test_charpoly_known;
          qtest "det from charpoly" arb_square prop_charpoly_det;
          qtest "integer coefficients" arb_square prop_charpoly_integer_coeffs;
          qtest "cayley-hamilton" ~count:100 arb_square prop_cayley_hamilton;
          qtest "zero sigma count = corank" arb_rect
            prop_zero_singular_values_is_corank;
          qtest "gram constant coeff = det^2" arb_square
            prop_gram_charpoly_signs ] );
      ( "poly",
        [ Alcotest.test_case "arithmetic" `Quick test_poly_arith;
          Alcotest.test_case "divmod + remainder theorem" `Quick
            test_poly_divmod;
          Alcotest.test_case "sturm known roots" `Quick test_sturm_known;
          Alcotest.test_case "distinct singular values" `Quick
            test_distinct_singular_values;
          qtest "divmod invariant" (QCheck.pair arb_poly arb_poly)
            prop_poly_divmod_invariant;
          qtest "gcd divides" (QCheck.pair arb_poly arb_poly)
            prop_poly_gcd_divides;
          qtest "derivative linear" (QCheck.pair arb_poly arb_poly)
            prop_poly_derivative_linear;
          qtest "sign change implies root" arb_poly prop_sturm_vs_eval_signs;
          qtest "distinct sigma bounds" arb_rect prop_distinct_sigma_bounds;
          qtest "exact <= float count" ~count:100 arb_rect
            prop_sigma_count_matches_float ] );
      ( "workloads",
        [ qtest "random_of_rank exact" ~count:200 QCheck.small_int
            prop_random_of_rank_exact ] );
      ( "svd",
        [ qtest "reconstruction" arb_rect prop_svd_reconstructs;
          qtest "numeric rank = exact rank" arb_rect prop_svd_rank_agrees;
          qtest "singular values sorted" arb_rect prop_svd_descending ] ) ]
