(* Tests for the Thompson VLSI model: Dinic max-flow against known
   values and a brute-force oracle, grid layouts, sweep cuts, and the
   AT^2 relations. *)

module Maxflow = Commx_vlsi.Maxflow
module Layout = Commx_vlsi.Layout
module Tradeoff = Commx_vlsi.Tradeoff
module Bounds = Commx_core.Bounds
module Prng = Commx_util.Prng

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Maxflow                                                             *)
(* ------------------------------------------------------------------ *)

let test_maxflow_known () =
  (* classic CLRS-style example *)
  let g = Maxflow.create 6 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:16;
  Maxflow.add_edge g ~src:0 ~dst:2 ~cap:13;
  Maxflow.add_edge g ~src:1 ~dst:2 ~cap:10;
  Maxflow.add_edge g ~src:2 ~dst:1 ~cap:4;
  Maxflow.add_edge g ~src:1 ~dst:3 ~cap:12;
  Maxflow.add_edge g ~src:3 ~dst:2 ~cap:9;
  Maxflow.add_edge g ~src:2 ~dst:4 ~cap:14;
  Maxflow.add_edge g ~src:4 ~dst:3 ~cap:7;
  Maxflow.add_edge g ~src:3 ~dst:5 ~cap:20;
  Maxflow.add_edge g ~src:4 ~dst:5 ~cap:4;
  Alcotest.(check int) "CLRS max flow" 23 (Maxflow.max_flow g ~source:0 ~sink:5)

let test_maxflow_disconnected () =
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5;
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow g ~source:0 ~sink:3)

let test_maxflow_parallel_edges () =
  let g = Maxflow.create 2 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:4;
  Alcotest.(check int) "parallel" 7 (Maxflow.max_flow g ~source:0 ~sink:1)

let test_min_cut_side () =
  let g = Maxflow.create 3 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge g ~src:1 ~dst:2 ~cap:100;
  ignore (Maxflow.max_flow g ~source:0 ~sink:2);
  Alcotest.(check (list int)) "cut isolates source" [ 0 ]
    (Maxflow.min_cut_side g ~source:0)

(* Brute-force min-cut oracle on tiny graphs: enumerate all edge
   subsets is too big; instead enumerate all vertex bipartitions and
   sum crossing capacities (valid for min cut = max flow). *)
let prop_maxflow_equals_min_bipartition_cut seed =
  let rng = Prng.create seed in
  let n = 4 + Prng.int rng 2 in
  let edges = ref [] in
  let g = Maxflow.create n in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && Prng.int rng 10 < 5 then begin
        let cap = 1 + Prng.int rng 5 in
        Maxflow.add_edge g ~src ~dst ~cap;
        edges := (src, dst, cap) :: !edges
      end
    done
  done;
  let flow = Maxflow.max_flow g ~source:0 ~sink:(n - 1) in
  (* min over bipartitions with 0 on one side, n-1 on the other *)
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land 1 = 1 && mask lsr (n - 1) land 1 = 0 then begin
      let cut =
        List.fold_left
          (fun acc (s, d, c) ->
            if mask lsr s land 1 = 1 && mask lsr d land 1 = 0 then acc + c
            else acc)
          0 !edges
      in
      best := min !best cut
    end
  done;
  flow = !best

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_square_reader () =
  let l = Layout.square_reader ~bits:10 in
  Alcotest.(check int) "ports" 10 (Layout.port_count l);
  Alcotest.(check bool) "near square" true
    (abs (Layout.h l - Layout.w l) <= 1);
  Alcotest.(check bool) "area >= bits" true (Layout.area l >= 10)

let test_strip_reader () =
  let l = Layout.strip_reader ~bits:12 ~rows:2 in
  Alcotest.(check int) "ports" 12 (Layout.port_count l);
  Alcotest.(check int) "rows" 2 (Layout.h l);
  Alcotest.(check int) "cols" 6 (Layout.w l)

let test_thompson_cut_balance () =
  let l = Layout.square_reader ~bits:64 in
  let cut = Layout.thompson_cut l in
  (* balanced within one grid line's worth of ports *)
  Alcotest.(check bool) "balanced" true
    (abs (cut.Layout.left_ports - 32) <= 8);
  Alcotest.(check bool) "crossing <= side" true
    (cut.Layout.crossing <= max (Layout.h l) (Layout.w l))

let test_sweep_cut_count () =
  let l = Layout.make ~h:3 ~w:5 in
  Alcotest.(check int) "cuts" ((5 - 1) + (3 - 1))
    (List.length (Layout.sweep_cuts l))

let test_port_collision () =
  let l = Layout.make ~h:2 ~w:2 in
  Layout.place_port l ~row:0 ~col:0 ~bit:0;
  Alcotest.check_raises "occupied"
    (Invalid_argument "Layout.place_port: cell occupied") (fun () ->
      Layout.place_port l ~row:0 ~col:0 ~bit:1)

let test_min_crossing_balanced () =
  (* On an 8-row strip, the binding cut must be a vertical one
     (crossing 8), not the perfectly balanced horizontal cut
     (crossing = width). *)
  let l = Layout.strip_reader ~bits:200 ~rows:8 in
  let cut = Layout.min_crossing_balanced_cut l in
  Alcotest.(check bool) "vertical" true cut.Layout.vertical;
  Alcotest.(check int) "crossing = rows" 8 cut.Layout.crossing;
  (* nearly balanced within one grid line *)
  Alcotest.(check bool) "balanced" true
    (abs (cut.Layout.left_ports - 100) <= max (Layout.h l) (Layout.w l));
  (* on a square chip both cut families have the same crossing *)
  let sq = Layout.square_reader ~bits:100 in
  let c2 = Layout.min_crossing_balanced_cut sq in
  Alcotest.(check bool) "square crossing = side" true
    (c2.Layout.crossing = Layout.h sq || c2.Layout.crossing = Layout.w sq)

let prop_min_crossing_never_exceeds_thompson seed =
  let rng = Prng.create seed in
  let bits = 20 + Prng.int rng 200 in
  let rows = 1 + Prng.int rng 12 in
  let l = Layout.strip_reader ~bits ~rows in
  let mc = Layout.min_crossing_balanced_cut l in
  let tc = Layout.thompson_cut l in
  mc.Layout.crossing <= tc.Layout.crossing
  || abs (mc.Layout.left_ports - (Layout.port_count l / 2))
     <= max (Layout.h l) (Layout.w l)

let test_bisection_grid () =
  (* on a 3x3 grid, separating opposite corners: min edge cut is 2 *)
  let l = Layout.make ~h:3 ~w:3 in
  Layout.place_port l ~row:0 ~col:0 ~bit:0;
  Layout.place_port l ~row:2 ~col:2 ~bit:1;
  Alcotest.(check int) "corner cut" 2
    (Layout.bisection_width_exact l ~parts:(0, 1))

(* ------------------------------------------------------------------ *)
(* Tradeoff                                                            *)
(* ------------------------------------------------------------------ *)

let test_designs_respect_at2 () =
  List.iter
    (fun (n, k) ->
      let info = Bounds.info_bits ~n ~k in
      let bound = Bounds.at2_lower ~info_bits:info in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s at n=%d k=%d: %.0f >= %.0f" d.Tradeoff.name n
               k (Tradeoff.at2 d) bound)
            true
            (Tradeoff.at2 d >= bound))
        (Tradeoff.designs_for ~n ~k))
    [ (5, 2); (7, 3); (9, 4) ]

let test_bound_row_relations () =
  let r = Tradeoff.bound_row ~n:10 ~k:9 in
  Alcotest.(check bool) "our T > CM T when k > 1" true
    (r.Tradeoff.our_t > r.Tradeoff.cm_t);
  Alcotest.(check bool) "our AT > CM AT" true
    (r.Tradeoff.our_at > r.Tradeoff.cm_at);
  Alcotest.(check (float 1e-6)) "info" 900.0 r.Tradeoff.info

let prop_at2a_interpolates seed =
  let rng = Prng.create seed in
  let info = 10.0 +. (1000.0 *. Prng.float rng) in
  let a0 = Bounds.at_2a_lower ~info_bits:info ~alpha:0.0 in
  let a1 = Bounds.at_2a_lower ~info_bits:info ~alpha:1.0 in
  Float.abs (a0 -. Bounds.area_lower ~info_bits:info) < 1e-6
  && Float.abs (a1 -. Bounds.at2_lower ~info_bits:info) < 1e-6

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vlsi"
    [ ( "maxflow",
        [ Alcotest.test_case "known value" `Quick test_maxflow_known;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "parallel edges" `Quick test_maxflow_parallel_edges;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side;
          qtest "flow = min bipartition cut" ~count:200 QCheck.small_int
            prop_maxflow_equals_min_bipartition_cut ] );
      ( "layout",
        [ Alcotest.test_case "square reader" `Quick test_square_reader;
          Alcotest.test_case "strip reader" `Quick test_strip_reader;
          Alcotest.test_case "thompson cut balance" `Quick
            test_thompson_cut_balance;
          Alcotest.test_case "sweep cut count" `Quick test_sweep_cut_count;
          Alcotest.test_case "port collision" `Quick test_port_collision;
          Alcotest.test_case "min-crossing balanced cut" `Quick
            test_min_crossing_balanced;
          qtest "min-crossing sanity" QCheck.small_int
            prop_min_crossing_never_exceeds_thompson;
          Alcotest.test_case "exact bisection on grid" `Quick
            test_bisection_grid ] );
      ( "tradeoff",
        [ Alcotest.test_case "designs respect AT^2 bound" `Quick
            test_designs_respect_at2;
          Alcotest.test_case "bound row relations" `Quick
            test_bound_row_relations;
          qtest "AT^2a interpolation endpoints" QCheck.small_int
            prop_at2a_interpolates ] ) ]
