(* Tests for the concrete protocols: exact correctness of the trivial
   (deterministic) protocols, exact bit costs, one-sided error of the
   fingerprinting protocols, and the Section 1 baselines. *)

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Prng = Commx_util.Prng
module Bv = Commx_util.Bitvec
module Protocol = Commx_comm.Protocol
module Randomized = Commx_comm.Randomized
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L35 = Commx_core.Lemma35
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint
module Identity = Commx_protocols.Identity
module Mat_verify = Commx_protocols.Mat_verify
module Solvability = Commx_protocols.Solvability
module Span = Commx_protocols.Span

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let arb_seed = QCheck.small_int

(* Mixed instance pool: guaranteed-singular completions, random hard
   instances, and unconstrained random k-bit matrices. *)
let instance_pool = Commx_core.Workloads.mixed_pool

(* ------------------------------------------------------------------ *)
(* Halves                                                              *)
(* ------------------------------------------------------------------ *)

let prop_split_join seed =
  let g = Prng.create seed in
  let m = Zm.random_kbit g ~rows:8 ~cols:8 ~k:3 in
  let a, b = Halves.split_pi0 m in
  Zm.equal m (Halves.join a b)

let prop_encode_decode seed =
  let g = Prng.create seed in
  let m = Zm.random_kbit g ~rows:6 ~cols:3 ~k:4 in
  Zm.equal m (Halves.decode ~k:4 ~rows:6 (Halves.encode ~k:4 m))

(* ------------------------------------------------------------------ *)
(* Trivial protocol                                                    *)
(* ------------------------------------------------------------------ *)

let prop_trivial_correct seed =
  let g = Prng.create seed in
  let p = Params.make ~n:5 ~k:2 in
  let proto = Trivial.singularity ~k:2 in
  List.for_all
    (fun m ->
      let a, b = Halves.split_pi0 m in
      let got, cost = Protocol.execute proto a b in
      got = Zm.is_singular m && cost = Trivial.exact_cost ~n:5 ~k:2)
    (instance_pool g p ~count:6)

let test_trivial_cost_formula () =
  List.iter
    (fun (n, k) ->
      let p = Params.make ~n ~k in
      let g = Prng.create (n * k) in
      let m = H.build_m p (H.random_free g p) in
      let a, b = Halves.split_pi0 m in
      let _, cost = Protocol.execute (Trivial.singularity ~k) a b in
      Alcotest.(check int)
        (Printf.sprintf "cost n=%d k=%d" n k)
        (2 * n * n * k) cost)
    [ (5, 2); (7, 2); (5, 3); (9, 2) ]

let prop_trivial_det_and_rank_agree seed =
  let g = Prng.create seed in
  let p = Params.make ~n:5 ~k:2 in
  let det_proto = Trivial.determinant_zero ~k:2 in
  let rank_proto = Trivial.rank_decision ~k:2 ~target:10 in
  List.for_all
    (fun m ->
      let a, b = Halves.split_pi0 m in
      let d, _ = Protocol.execute det_proto a b in
      let r, _ = Protocol.execute rank_proto a b in
      d = Zm.is_singular m && r = (Zm.rank m = 10))
    (instance_pool g p ~count:4)

(* ------------------------------------------------------------------ *)
(* Fingerprint protocol                                                *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_singular_never_errs () =
  (* One-sided error: on singular inputs the answer is always
     "singular" regardless of the prime. *)
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 7 in
  let rp = Fingerprint.singularity ~n:5 ~k:2 ~epsilon:0.05 in
  for seed = 0 to 30 do
    let f = H.random_free g p in
    let w = L35.complete p ~c:f.H.c ~e:f.H.e in
    let m = H.build_m p w.L35.free in
    let a, b = Halves.split_pi0 m in
    let proto = rp.Randomized.run_seeded ~seed in
    let got, _ = Protocol.execute proto a b in
    Alcotest.(check bool) "singular recognized" true got
  done

let test_fingerprint_error_bounded () =
  let p = Params.make ~n:5 ~k:3 in
  let g = Prng.create 11 in
  let epsilon = 0.05 in
  let rp = Fingerprint.singularity ~n:5 ~k:3 ~epsilon in
  let inputs =
    List.filter_map
      (fun m ->
        if Zm.is_singular m then None else Some (Halves.split_pi0 m))
      (instance_pool g p ~count:12)
  in
  let err =
    Randomized.worst_input_error g rp
      ~spec:(fun a b -> Zm.is_singular (Halves.join a b))
      ~seeds:60 inputs
  in
  (* generous slack over epsilon for Monte Carlo noise *)
  Alcotest.(check bool)
    (Printf.sprintf "error %.3f <= 3*eps" err)
    true (err <= 3.0 *. epsilon)

let test_fingerprint_cost () =
  let cost = Fingerprint.cost ~n:5 ~k:2 ~epsilon:0.05 in
  let b = Fingerprint.prime_bits ~n:5 ~k:2 ~epsilon:0.05 in
  Alcotest.(check int) "formula" (2 * 25 * b) cost;
  (* and the protocol's measured cost matches *)
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 13 in
  let m = H.build_m p (H.random_free g p) in
  let a, bb = Halves.split_pi0 m in
  let rp = Fingerprint.singularity ~n:5 ~k:2 ~epsilon:0.05 in
  let _, measured = Protocol.execute (rp.Randomized.run_seeded ~seed:1) a bb in
  Alcotest.(check int) "measured" cost measured

let test_fingerprint_amplified () =
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 59 in
  let rp = Fingerprint.amplified ~n:5 ~k:2 ~epsilon:0.3 ~rounds:3 in
  (* singular inputs: still always recognized *)
  for seed = 0 to 10 do
    let m = Commx_core.Workloads.singular_instance g p in
    let a, b = Halves.split_pi0 m in
    let got, cost = Protocol.execute (rp.Randomized.run_seeded ~seed) a b in
    Alcotest.(check bool) "singular found" true got;
    Alcotest.(check int) "cost x rounds"
      (Fingerprint.amplified_cost ~n:5 ~k:2 ~epsilon:0.3 ~rounds:3)
      cost
  done;
  (* nonsingular error shrinks vs a single loose round: measure both *)
  let inputs =
    List.map Halves.split_pi0 (Commx_core.Workloads.nonsingular_pool g p ~count:5)
  in
  let err_amp =
    Randomized.worst_input_error g rp
      ~spec:(fun a b -> Zm.is_singular (Halves.join a b))
      ~seeds:50 inputs
  in
  Alcotest.(check bool)
    (Printf.sprintf "amplified error %.3f small" err_amp)
    true (err_amp <= 0.15)

let test_fingerprint_beats_trivial_for_large_k () =
  let trivial = Trivial.exact_cost ~n:9 ~k:32 in
  let finger = Fingerprint.cost ~n:9 ~k:32 ~epsilon:0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "%d < %d" finger trivial)
    true (finger < trivial)

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let test_identity_trivial () =
  let proto = Identity.trivial ~m:6 in
  let inputs = Identity.all_inputs ~m:6 in
  Alcotest.(check bool) "correct everywhere" true
    (Protocol.check_correct proto ~spec:Bv.equal inputs inputs = None);
  let x = List.nth inputs 5 in
  let _, cost = Protocol.execute proto x x in
  Alcotest.(check int) "cost = m" 6 cost

let test_identity_fingerprint () =
  let g = Prng.create 17 in
  let rp = Identity.fingerprint ~m:12 ~epsilon:0.05 in
  let inputs = Identity.all_inputs ~m:8 in
  (* pad to 12 bits *)
  let pad v = Bv.append v (Bv.create 4) in
  let pairs =
    List.init 40 (fun i ->
        let x = pad (List.nth inputs (i mod 256)) in
        let y = pad (List.nth inputs ((i * 7) mod 256)) in
        (x, y))
  in
  let err =
    Randomized.estimate_error g rp ~spec:Bv.equal ~trials:2000 pairs
  in
  Alcotest.(check bool) (Printf.sprintf "err %.3f" err) true (err <= 0.15)

(* ------------------------------------------------------------------ *)
(* Matrix product verification                                         *)
(* ------------------------------------------------------------------ *)

let random_matrix g dim k = Zm.random_kbit g ~rows:dim ~cols:dim ~k

let prop_mat_verify_trivial seed =
  let g = Prng.create seed in
  let dim = 2 + Prng.int g 3 in
  let a = random_matrix g dim 3 and b = random_matrix g dim 3 in
  let c = if Prng.bool g then Zm.mul a b else random_matrix g dim 3 in
  let proto = Mat_verify.trivial ~k:3 in
  let got, _ = Protocol.execute proto a (b, c) in
  got = Mat_verify.spec a (b, c)

let test_freivalds () =
  let g = Prng.create 19 in
  let rp = Mat_verify.freivalds ~n:4 ~k:3 ~epsilon:0.05 in
  (* true products: never rejected *)
  for seed = 0 to 20 do
    let a = random_matrix g 4 3 and b = random_matrix g 4 3 in
    let c = Zm.mul a b in
    let got, _ =
      Protocol.execute (rp.Commx_comm.Randomized.run_seeded ~seed) a (b, c)
    in
    Alcotest.(check bool) "true product accepted" true got
  done;
  (* false products: rejected with good probability *)
  let wrong = ref 0 and total = 40 in
  for seed = 0 to total - 1 do
    let a = random_matrix g 4 3 and b = random_matrix g 4 3 in
    let c = Zm.copy (Zm.mul a b) in
    Zm.set c 1 2 (B.add (Zm.get c 1 2) B.one);
    let got, _ =
      Protocol.execute (rp.Commx_comm.Randomized.run_seeded ~seed) a (b, c)
    in
    if got then incr wrong
  done;
  Alcotest.(check bool)
    (Printf.sprintf "false accepts %d/%d" !wrong total)
    true
    (float_of_int !wrong /. float_of_int total <= 0.2)

let test_freivalds_cheaper () =
  Alcotest.(check bool) "freivalds cheaper" true
    (Mat_verify.freivalds_cost ~n:16 ~k:8 ~epsilon:0.01
    < 8 * 16 * 16 (* trivial k n^2 *))

(* ------------------------------------------------------------------ *)
(* Solvability                                                         *)
(* ------------------------------------------------------------------ *)

let prop_solvability_trivial seed =
  let g = Prng.create seed in
  let dim = 3 + Prng.int g 3 in
  let a = Zm.random_kbit g ~rows:dim ~cols:dim ~k:2 in
  let b = Array.init dim (fun _ -> B.of_int (Prng.int g 4)) in
  let alice, bob = Solvability.split a b in
  let got, _ = Protocol.execute (Solvability.trivial ~k:2) alice bob in
  got = Solvability.spec alice bob

let test_solvability_fingerprint_one_sided () =
  (* If the exact system is solvable, the mod-p ranks agree for every
     prime: rank_p A <= rank_p [A|b] always, and solvable means the
     ranks agree over Q... mod p they can only both drop.  Check
     empirically that solvable instances are nearly always accepted. *)
  let g = Prng.create 23 in
  let rp = Solvability.fingerprint ~m:6 ~k:2 ~epsilon:0.05 in
  let accept = ref 0 and total = ref 0 in
  for seed = 0 to 60 do
    let dim = 6 in
    let a = Zm.random_kbit g ~rows:dim ~cols:dim ~k:2 in
    let x = Array.init dim (fun _ -> B.of_int (Prng.int g 3)) in
    let b = Zm.mul_vec a x in
    (* b in range? entries can exceed k bits; that is fine for the
       protocol (it reduces mod p) but Halves.encode requires k bits,
       so clamp via the protocol's own width: skip oversized. *)
    if Array.for_all (fun v -> B.bit_length v <= 2) b then begin
      incr total;
      let alice, bob = Solvability.split a b in
      let got, _ =
        Protocol.execute (rp.Commx_comm.Randomized.run_seeded ~seed) alice bob
      in
      if got then incr accept
    end
  done;
  Alcotest.(check bool) "ran at least once" true (!total > 0);
  Alcotest.(check int) "all solvable accepted" !total !accept

(* ------------------------------------------------------------------ *)
(* Valued protocols (multi-bit outputs)                                *)
(* ------------------------------------------------------------------ *)

module Valued = Commx_protocols.Valued

let prop_rank_value seed =
  let g = Prng.create seed in
  let p = Params.make ~n:5 ~k:2 in
  List.for_all
    (fun m ->
      let a, b = Halves.split_pi0 m in
      let r, cost = Commx_comm.Protocol.execute_fn (Valued.rank ~k:2) a b in
      r = Zm.rank m && cost = Valued.rank_cost ~n:5 ~k:2)
    (instance_pool g p ~count:5)

let prop_det_value seed =
  let g = Prng.create seed in
  let p = Params.make ~n:5 ~k:3 in
  List.for_all
    (fun m ->
      let a, b = Halves.split_pi0 m in
      let d, cost =
        Commx_comm.Protocol.execute_fn (Valued.determinant ~k:3) a b
      in
      B.equal d (Zm.det m) && cost = Valued.determinant_cost ~n:5 ~k:3)
    (instance_pool g p ~count:5)

let test_hadamard_width_sufficient () =
  (* the width must accommodate the determinant of any k-bit matrix;
     check against worst-ish random instances *)
  let g = Prng.create 31 in
  for _ = 1 to 20 do
    let n = 3 + Prng.int g 3 in
    let k = 2 + Prng.int g 4 in
    let m = Zm.random_kbit g ~rows:(2 * n) ~cols:(2 * n) ~k in
    let d = Zm.det m in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d k=%d det bits %d <= width %d" n k
         (B.bit_length (B.abs d))
         (Valued.hadamard_width ~n ~k))
      true
      (B.bit_length (B.abs d) <= Valued.hadamard_width ~n ~k)
  done

let prop_lup_structure_protocol seed =
  let g = Prng.create seed in
  let p = Params.make ~n:5 ~k:2 in
  List.for_all
    (fun m ->
      let a, b = Halves.split_pi0 m in
      let structure, cost =
        Commx_comm.Protocol.execute_fn (Valued.lup_structure ~k:2) a b
      in
      let d = Commx_linalg.Lup.decompose (Zm.to_qmatrix m) in
      let expected = Commx_linalg.Lup.nonzero_structure d.Commx_linalg.Lup.u in
      Commx_util.Bitmat.equal structure expected
      && cost = Valued.lup_structure_cost ~n:5 ~k:2)
    (instance_pool g p ~count:4)

let test_rank_fingerprint_lower_bound () =
  let g = Prng.create 37 in
  let p = Params.make ~n:5 ~k:2 in
  let ok = ref true in
  List.iter
    (fun m ->
      let a, b = Halves.split_pi0 m in
      for seed = 0 to 10 do
        let r, _ =
          Commx_comm.Protocol.execute_fn
            (Valued.rank_fingerprint ~n:5 ~k:2 ~epsilon:0.05 ~seed)
            a b
        in
        if r > Zm.rank m then ok := false
      done)
    (instance_pool g p ~count:4);
  Alcotest.(check bool) "mod-p rank never exceeds true rank" true !ok

(* ------------------------------------------------------------------ *)
(* Adaptive protocol                                                   *)
(* ------------------------------------------------------------------ *)

module Adaptive = Commx_protocols.Adaptive

let test_adaptive_always_exact () =
  let p = Params.make ~n:5 ~k:3 in
  let g = Prng.create 41 in
  List.iter
    (fun m ->
      let a, b = Halves.split_pi0 m in
      for seed = 0 to 5 do
        let proto = Adaptive.singularity ~n:5 ~k:3 ~prime_bits:8 ~seed in
        let got, _ = Protocol.execute proto a b in
        Alcotest.(check bool) "exact answer" (Zm.is_singular m) got
      done)
    (instance_pool g p ~count:9)

let test_adaptive_costs () =
  let p = Params.make ~n:5 ~k:3 in
  let g = Prng.create 43 in
  (* singular instances always pay the fallback *)
  let f = H.random_free g p in
  let sing = H.build_m p (L35.complete p ~c:f.H.c ~e:f.H.e).L35.free in
  let a, b = Halves.split_pi0 sing in
  let proto = Adaptive.singularity ~n:5 ~k:3 ~prime_bits:8 ~seed:1 in
  let _, cost = Protocol.execute proto a b in
  Alcotest.(check int) "singular pays round 2"
    (Adaptive.round2_cost ~n:5 ~k:3 ~prime_bits:8)
    cost;
  (* a clearly nonsingular instance usually certifies in round 1 *)
  let certified = ref 0 in
  for seed = 0 to 19 do
    let m = Zm.random_kbit g ~rows:10 ~cols:10 ~k:3 in
    if not (Zm.is_singular m) then begin
      let a, b = Halves.split_pi0 m in
      let proto = Adaptive.singularity ~n:5 ~k:3 ~prime_bits:8 ~seed in
      let _, cost = Protocol.execute proto a b in
      if cost = Adaptive.round1_cost ~n:5 ~k:3 ~prime_bits:8 then
        incr certified
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most nonsingular certify cheaply (%d)" !certified)
    true (!certified >= 15)

(* ------------------------------------------------------------------ *)
(* Span problem                                                        *)
(* ------------------------------------------------------------------ *)

let prop_span_trivial seed =
  let g = Prng.create seed in
  let dim = 2 + (2 * Prng.int g 2) in
  let m = Zm.random_kbit g ~rows:dim ~cols:dim ~k:2 in
  let v1, v2 = Span.instance_of_matrix m in
  let got, _ = Protocol.execute (Span.trivial ~k:2) v1 v2 in
  got = Span.spec v1 v2 && got = (Zm.rank m = dim)

let prop_span_basis_exchange_cheaper seed =
  let g = Prng.create seed in
  let dim = 4 in
  (* Alice holds redundant vectors: rank-1 block repeated *)
  let col = Array.init dim (fun i -> B.of_int (i mod 3)) in
  let alice = Zm.init dim 6 (fun i _ -> col.(i)) in
  let bob = Zm.random_kbit g ~rows:dim ~cols:2 ~k:2 in
  let _, c_trivial = Protocol.execute (Span.trivial ~k:2) alice bob in
  let got_smart, c_smart =
    Protocol.execute (Span.dimension_exchange ~k:2) alice bob
  in
  let got_trivial, _ = Protocol.execute (Span.trivial ~k:2) alice bob in
  got_smart = got_trivial && c_smart < c_trivial

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "protocols"
    [ ( "halves",
        [ qtest "split/join" arb_seed prop_split_join;
          qtest "encode/decode" arb_seed prop_encode_decode ] );
      ( "trivial",
        [ Alcotest.test_case "cost formula" `Quick test_trivial_cost_formula;
          qtest "correct" ~count:30 arb_seed prop_trivial_correct;
          qtest "det/rank variants" ~count:20 arb_seed
            prop_trivial_det_and_rank_agree ] );
      ( "fingerprint",
        [ Alcotest.test_case "singular never errs" `Quick
            test_fingerprint_singular_never_errs;
          Alcotest.test_case "error bounded" `Slow
            test_fingerprint_error_bounded;
          Alcotest.test_case "cost formula" `Quick test_fingerprint_cost;
          Alcotest.test_case "amplification" `Slow test_fingerprint_amplified;
          Alcotest.test_case "beats trivial for large k" `Quick
            test_fingerprint_beats_trivial_for_large_k ] );
      ( "identity",
        [ Alcotest.test_case "trivial" `Quick test_identity_trivial;
          Alcotest.test_case "fingerprint error" `Slow test_identity_fingerprint
        ] );
      ( "mat-verify",
        [ qtest "trivial" ~count:50 arb_seed prop_mat_verify_trivial;
          Alcotest.test_case "freivalds one-sided" `Quick test_freivalds;
          Alcotest.test_case "freivalds cheaper" `Quick test_freivalds_cheaper
        ] );
      ( "solvability",
        [ qtest "trivial" ~count:40 arb_seed prop_solvability_trivial;
          Alcotest.test_case "fingerprint one-sided" `Quick
            test_solvability_fingerprint_one_sided ] );
      ( "valued",
        [ qtest "rank value + cost" ~count:20 arb_seed prop_rank_value;
          qtest "det value + cost" ~count:20 arb_seed prop_det_value;
          Alcotest.test_case "hadamard width sufficient" `Quick
            test_hadamard_width_sufficient;
          qtest "lup structure protocol" ~count:15 arb_seed
            prop_lup_structure_protocol;
          Alcotest.test_case "rank fingerprint lower bound" `Quick
            test_rank_fingerprint_lower_bound ] );
      ( "adaptive",
        [ Alcotest.test_case "always exact" `Quick test_adaptive_always_exact;
          Alcotest.test_case "cost structure" `Quick test_adaptive_costs ] );
      ( "span",
        [ qtest "trivial" ~count:40 arb_seed prop_span_trivial;
          qtest "basis exchange cheaper on redundant input" ~count:20 arb_seed
            prop_span_basis_exchange_cheaper ] ) ]
