(* Tests for the serve daemon: wire codec, result cache + tag registry,
   and in-process end-to-end runs over a real Unix socket — warm-cache
   semantics, reply ordering, broken-pipe survival, snapshot
   persistence across a restart, stats percentiles, and the
   self-healing tier: request deadlines, worker crash isolation +
   respawn, admission-control shedding, oversized-line recovery,
   periodic snapshots and the resilient client. *)

module Json = Commx_util.Json
module Bm = Commx_util.Bitmat
module Clock = Commx_util.Clock
module Faults = Commx_util.Faults
module Telemetry = Commx_util.Telemetry
module Logging = Commx_util.Logging
module Obs = Commx_serve.Obs
module Wire = Commx_serve.Wire
module Cache = Commx_serve.Cache
module Server = Commx_serve.Server
module Client = Commx_serve.Client

(* The reference board: 8x8, rows as bit patterns.  A GF(2) rank-4
   product, so the whole certified lower-bound portfolio (rank/fooling,
   rational log-rank, discrepancy) stays below the trivial upper bound
   and a cold query really expands nodes (~284) — which is what makes
   warm-vs-cold observable.  Exact CC = 4. *)
let board_rows = [| 26; 233; 0; 245; 0; 239; 239; 233 |]

let board_json =
  Json.List
    (Array.to_list
       (Array.map
          (fun r ->
            Json.String
              (String.init 8 (fun j -> if r land (1 lsl j) <> 0 then '1' else '0')))
          board_rows))

(* A slow board: 10x10 of GF(2) rank 4 whose certified bounds do NOT
   close the search — the full exact search expands ~175k nodes
   (seconds of wall time), so a request deadline of tens of
   milliseconds reliably interrupts it mid-search.  Found by scanning
   random low-rank products. *)
let slow_board_json =
  Json.List
    (List.map
       (fun s -> Json.String s)
       [ "0101010111"; "0100011100"; "0000101100"; "0100110000";
         "0001001011"; "0011111010"; "0111100110"; "0101010111";
         "0000000000"; "0001100111" ])

let obj_field reply key =
  match Json.member key reply with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks field %S: %s" key (Json.to_string reply)

let int_field reply key =
  match obj_field reply key with
  | Json.Int v -> v
  | _ -> Alcotest.failf "field %S is not an int" key

let float_field reply key =
  match obj_field reply key with
  | Json.Float v -> v
  | Json.Int v -> float_of_int v
  | _ -> Alcotest.failf "field %S is not a number" key

let string_field reply key =
  match obj_field reply key with
  | Json.String s -> s
  | _ -> Alcotest.failf "field %S is not a string" key

let assert_ok reply =
  match obj_field reply "ok" with
  | Json.Bool true -> ()
  | _ -> Alcotest.failf "expected ok reply, got %s" (Json.to_string reply)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_wire_parse_exact_cc () =
  let line =
    Json.to_string
      (Json.Obj
         [ ("op", Json.String "exact_cc"); ("id", Json.Int 7);
           ("matrix", board_json) ])
  in
  match Wire.parse line with
  | Ok { id = Json.Int 7; op = "exact_cc"; deadline_ms = None;
         req = Wire.Exact_cc { matrix; use_cache = true } } ->
      Alcotest.(check int) "rows" 8 (Bm.rows matrix);
      Alcotest.(check int) "cols" 8 (Bm.cols matrix);
      Alcotest.(check bool) "bit (0,1) set" true (Bm.get matrix 0 1);
      Alcotest.(check bool) "bit (0,0) clear" false (Bm.get matrix 0 0)
  | Ok _ -> Alcotest.fail "parsed into the wrong request"
  | Error (_, msg) -> Alcotest.failf "parse failed: %s" msg

let test_wire_parse_defaults_and_use_cache () =
  let line use_cache =
    Json.to_string
      (Json.Obj
         (("op", Json.String "exact_cc") :: ("matrix", Json.List [ Json.String "01" ])
         :: (match use_cache with
            | Some b -> [ ("use_cache", Json.Bool b) ]
            | None -> [])))
  in
  (match Wire.parse (line (Some false)) with
  | Ok { req = Wire.Exact_cc { use_cache = false; _ }; _ } -> ()
  | _ -> Alcotest.fail "use_cache:false not honored");
  match Wire.parse (line None) with
  | Ok { id = Json.Null; req = Wire.Exact_cc { use_cache = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "use_cache should default to true, id to null"

let test_wire_parse_singular_bigints () =
  let line =
    {|{"op":"singular","matrix":[[1,"123456789012345678901234567890"],["-2",3]]}|}
  in
  match Wire.parse line with
  | Ok { req = Wire.Singular { matrix }; _ } ->
      Alcotest.(check string) "bigint entry survives"
        "123456789012345678901234567890"
        (Commx_bigint.Bigint.to_string (Commx_linalg.Zmatrix.get matrix 0 1))
  | Ok _ -> Alcotest.fail "wrong request"
  | Error (_, msg) -> Alcotest.failf "parse failed: %s" msg

let expect_parse_error line fragment =
  match Wire.parse line with
  | Ok _ -> Alcotest.failf "line %S was accepted" line
  | Error (_, msg) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      if not (contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment

let test_wire_parse_rejections () =
  expect_parse_error "nonsense" "malformed JSON";
  expect_parse_error {|[1,2]|} "JSON object";
  expect_parse_error {|{"id":1}|} "missing field \"op\"";
  expect_parse_error {|{"op":"teleport"}|} "unknown op";
  expect_parse_error {|{"op":"exact_cc"}|} "missing field \"matrix\"";
  expect_parse_error {|{"op":"exact_cc","matrix":[]}|} "no rows";
  expect_parse_error {|{"op":"exact_cc","matrix":["01","0"]}|} "unequal";
  expect_parse_error {|{"op":"exact_cc","matrix":["0x"]}|} "'0' and '1'";
  expect_parse_error
    (Json.to_string
       (Json.Obj
          [ ("op", Json.String "exact_cc");
            ("matrix",
             Json.List
               (List.init 65 (fun _ -> Json.String (String.make 65 '0')))) ]))
    "wire limit";
  (* the id is recovered even from a bad request so the error reply
     still correlates *)
  match Wire.parse {|{"op":"teleport","id":42}|} with
  | Error (Json.Int 42, _) -> ()
  | _ -> Alcotest.fail "id not recovered from a bad request"

let test_wire_parse_deadline () =
  (match Wire.parse {|{"op":"ping","deadline_ms":250}|} with
  | Ok { deadline_ms = Some 250; req = Wire.Ping; _ } -> ()
  | _ -> Alcotest.fail "deadline_ms not parsed");
  expect_parse_error {|{"op":"ping","deadline_ms":0}|} "deadline_ms";
  expect_parse_error {|{"op":"ping","deadline_ms":-5}|} "deadline_ms";
  expect_parse_error {|{"op":"ping","deadline_ms":"soon"}|} "deadline_ms"

let test_wire_error_codes () =
  let coded = Wire.error ~code:"overloaded" ~id:(Json.Int 1) "busy" in
  Alcotest.(check (option string)) "code readable" (Some "overloaded")
    (Wire.error_code coded);
  Alcotest.(check (option string)) "plain errors carry no code" None
    (Wire.error_code (Wire.error ~id:Json.Null "bad request"));
  Alcotest.(check (option string)) "ok replies carry no code" None
    (Wire.error_code (Wire.ok ~id:Json.Null ~op:"ping" []));
  (* extra fields ride along with the code *)
  let e =
    Wire.error ~code:"timed_out"
      ~fields:[ ("lower_bound", Json.Int 3) ]
      ~id:(Json.Int 2) "deadline exceeded"
  in
  match Json.member "lower_bound" e with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "error fields lost"

(* ------------------------------------------------------------------ *)
(* Cache + tags                                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_fifo_eviction () =
  let c = Cache.create ~capacity:2 in
  Alcotest.(check bool) "miss on empty" true (Cache.find c "a" = None);
  Cache.add c "a" (Json.Int 1);
  Cache.add c "b" (Json.Int 2);
  Cache.add c "a" (Json.Int 10) (* replace: no eviction, no new slot *);
  Cache.add c "c" (Json.Int 3) (* evicts "a": oldest insertion *);
  Alcotest.(check bool) "oldest evicted" true (Cache.find c "a" = None);
  Alcotest.(check bool) "newer kept" true (Cache.find c "b" = Some (Json.Int 2));
  Alcotest.(check bool) "newest kept" true (Cache.find c "c" = Some (Json.Int 3));
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 2 st.Cache.hits;
  Alcotest.(check int) "misses" 2 st.Cache.misses;
  Alcotest.(check int) "evictions" 1 st.Cache.evictions;
  Alcotest.(check int) "entries" 2 st.Cache.entries

let test_cache_json_roundtrip () =
  let c = Cache.create ~capacity:8 in
  Cache.add c "x" (Json.Obj [ ("value", Json.Int 4) ]);
  Cache.add c "y" (Json.Obj [ ("value", Json.Int 5) ]);
  let c' = Cache.load ~capacity:8 (Json.of_string (Json.to_string (Cache.to_json c))) in
  Alcotest.(check bool) "x survives" true
    (Cache.find c' "x" = Some (Json.Obj [ ("value", Json.Int 4) ]));
  Alcotest.(check bool) "y survives" true
    (Cache.find c' "y" = Some (Json.Obj [ ("value", Json.Int 5) ]));
  (match Cache.load ~capacity:4 (Json.String "zap") with
  | _ -> Alcotest.fail "garbage cache accepted"
  | exception Failure _ -> ());
  match Cache.load ~capacity:4 (Json.List [ Json.Int 3 ]) with
  | _ -> Alcotest.fail "malformed entry accepted"
  | exception Failure _ -> ()

let test_tags_sequential_and_stable () =
  let t = Cache.Tags.create () in
  let a = Cache.Tags.tag t "ka" in
  let b = Cache.Tags.tag t "kb" in
  Alcotest.(check int) "first tag" 0 a;
  Alcotest.(check int) "second tag" 1 b;
  Alcotest.(check int) "stable on re-query" a (Cache.Tags.tag t "ka");
  Alcotest.(check int) "count" 2 (Cache.Tags.count t);
  let t' = Cache.Tags.load (Json.of_string (Json.to_string (Cache.Tags.to_json t))) in
  Alcotest.(check int) "tag preserved across load" a (Cache.Tags.tag t' "ka");
  Alcotest.(check int) "allocation resumes after max" 2 (Cache.Tags.tag t' "kc");
  match
    Cache.Tags.load
      (Json.List
         [ Json.List [ Json.String "p"; Json.Int 0 ];
           Json.List [ Json.String "q"; Json.Int 0 ] ])
  with
  | _ -> Alcotest.fail "duplicate tags accepted"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end over a real socket                                       *)
(* ------------------------------------------------------------------ *)

let socket_counter = ref 0

let fresh_path suffix =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ccmx-test-%d-%d%s" (Unix.getpid ()) !socket_counter suffix)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let deadline = Clock.now_s () +. 5.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Clock.now_s () < deadline ->
        Unix.close fd;
        Clock.sleepf 0.02;
        go ()
  in
  go ()

let send client obj =
  output_string client.oc (Wire.to_line obj);
  flush client.oc

let recv client = Json.of_string (input_line client.ic)

let rpc client obj =
  send client obj;
  recv client

let close_client client = try Unix.close client.fd with Unix.Unix_error _ -> ()

let with_server ?snapshot_path ?(workers = 2) ?(logger = Logging.null)
    ?request_timeout_s ?snapshot_every_s ?max_queue ?max_line_bytes
    ?respawn_budget ?chaos ?metrics_socket ?metrics_port ?slow_ms ?trace_ring f =
  let socket_path = fresh_path ".sock" in
  let cfg =
    Server.config ~socket_path ~workers ?snapshot_path ~cache_capacity:64
      ~logger ?request_timeout_s ?snapshot_every_s ?max_queue ?max_line_bytes
      ?respawn_budget ?chaos ?metrics_socket ?metrics_port ?slow_ms ?trace_ring
      ~drain_timeout_s:10.0 ()
  in
  (* the robustness counters only record at Metrics level, and the
     stats op surfaces them *)
  Telemetry.set_level Telemetry.Metrics;
  let stop = Atomic.make false in
  let d = Domain.spawn (fun () -> Server.run ~stop cfg) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join d;
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () -> f socket_path)

let exact_cc_req ?(id = Json.Null) ?use_cache ?deadline_ms matrix =
  Json.Obj
    (("op", Json.String "exact_cc") :: ("id", id) :: ("matrix", matrix)
    :: ((match use_cache with Some b -> [ ("use_cache", Json.Bool b) ] | None -> [])
       @ match deadline_ms with Some ms -> [ ("deadline_ms", Json.Int ms) ] | None -> []))

let stats_req = Json.Obj [ ("op", Json.String "stats") ]

let counter_field stats name =
  let counters = obj_field stats "counters" in
  match Json.member name counters with
  | Some (Json.Int v) -> v
  | _ -> Alcotest.failf "stats counters lack %S" name

let check_code name expected reply =
  (match Json.member "ok" reply with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.failf "%s: expected an error reply, got %s" name
           (Json.to_string reply));
  Alcotest.(check (option string)) name (Some expected) (Wire.error_code reply)

let test_serve_warm_cache_end_to_end () =
  with_server (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      assert_ok (rpc c (Json.Obj [ ("op", Json.String "ping") ]));
      (* Cold: a real search with real node expansions. *)
      let cold = rpc c (exact_cc_req ~id:(Json.Int 1) board_json) in
      assert_ok cold;
      Alcotest.(check int) "exact CC of the board" 4 (int_field cold "value");
      Alcotest.(check string) "cold misses" "miss" (string_field cold "cache");
      Alcotest.(check bool) "cold search expands nodes" true
        (int_field cold "nodes" > 0);
      (* Identical query: served from the warm cache — the hit counter
         moves and NO new nodes expand. *)
      let warm = rpc c (exact_cc_req ~id:(Json.Int 2) board_json) in
      assert_ok warm;
      Alcotest.(check int) "same value" 4 (int_field warm "value");
      Alcotest.(check string) "warm hits" "hit" (string_field warm "cache");
      Alcotest.(check int) "zero new node expansions" 0 (int_field warm "nodes");
      Alcotest.(check bool) "table_hits > 0" true (int_field warm "table_hits" > 0);
      (* Bypassing the result cache exercises the second warm tier: the
         persistent transposition table answers from its root entry. *)
      let bypass = rpc c (exact_cc_req ~id:(Json.Int 3) ~use_cache:false board_json) in
      assert_ok bypass;
      Alcotest.(check string) "bypass" "bypass" (string_field bypass "cache");
      Alcotest.(check int) "warm table: zero expansions" 0 (int_field bypass "nodes");
      Alcotest.(check bool) "warm table: hits recorded" true
        (int_field bypass "table_hits" > 0);
      Alcotest.(check int) "same value through the warm table" 4
        (int_field bypass "value");
      (* Result-cache hit counter incremented exactly once (the "hit"
         reply); the bypass deliberately did not read it. *)
      let stats = rpc c (Json.Obj [ ("op", Json.String "stats") ]) in
      assert_ok stats;
      let rc = obj_field stats "result_cache" in
      Alcotest.(check int) "cache-hit counter" 1 (int_field rc "hits");
      Alcotest.(check bool) "requests counted" true (int_field stats "requests" >= 5);
      let lat = obj_field stats "latency_us" in
      Alcotest.(check bool) "latency samples" true (int_field lat "count" >= 4);
      let p50 = float_field lat "p50"
      and p95 = float_field lat "p95"
      and p99 = float_field lat "p99" in
      Alcotest.(check bool) "p50 > 0" true (p50 > 0.0);
      Alcotest.(check bool) "percentiles ordered" true (p50 <= p95 && p95 <= p99);
      (* Errors come back as replies, never dropped connections. *)
      let err = rpc c (Json.Obj [ ("op", Json.String "teleport"); ("id", Json.Int 9) ]) in
      (match Json.member "ok" err with
      | Some (Json.Bool false) -> ()
      | _ -> Alcotest.fail "expected an error reply");
      Alcotest.(check bool) "id echoed on error" true
        (Json.member "id" err = Some (Json.Int 9)))

let test_serve_reply_order_is_request_order () =
  with_server (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      (* Pipeline: slow search first, trivial pings behind it.  Replies
         must still come back in request order. *)
      let n = 12 in
      send c (exact_cc_req ~id:(Json.Int 0) board_json);
      for i = 1 to n do
        send c (Json.Obj [ ("op", Json.String "ping"); ("id", Json.Int i) ])
      done;
      for i = 0 to n do
        let reply = recv c in
        assert_ok reply;
        Alcotest.(check int) "reply order" i (int_field reply "id")
      done)

let test_serve_survives_broken_pipe_client () =
  with_server (fun path ->
      (* Client A queues work and vanishes without reading anything:
         the daemon must swallow the EPIPE and keep serving. *)
      let a = connect path in
      send a (exact_cc_req board_json);
      send a (exact_cc_req board_json);
      close_client a;
      let b = connect path in
      Fun.protect ~finally:(fun () -> close_client b) @@ fun () ->
      assert_ok (rpc b (Json.Obj [ ("op", Json.String "ping") ]));
      let r = rpc b (exact_cc_req board_json) in
      assert_ok r;
      Alcotest.(check int) "daemon still computes" 4 (int_field r "value"))

let test_serve_snapshot_restart_stays_warm () =
  let snapshot_path = fresh_path ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snapshot_path with Sys_error _ -> ())
    (fun () ->
      (* First life: do a cold search, then drain via the shutdown op
         (which must also answer ok). *)
      with_server ~snapshot_path (fun path ->
          let c = connect path in
          Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
          let cold = rpc c (exact_cc_req board_json) in
          assert_ok cold;
          Alcotest.(check bool) "first life searches" true
            (int_field cold "nodes" > 0);
          assert_ok (rpc c (Json.Obj [ ("op", Json.String "shutdown") ])));
      Alcotest.(check bool) "snapshot written" true (Sys.file_exists snapshot_path);
      (* Second life, different worker count: both warm tiers must
         survive the restart — result cache AND transposition table
         (whose segments were redistributed across 3 workers). *)
      with_server ~snapshot_path ~workers:3 (fun path ->
          let c = connect path in
          Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
          let hit = rpc c (exact_cc_req board_json) in
          assert_ok hit;
          Alcotest.(check string) "result cache survived" "hit"
            (string_field hit "cache");
          Alcotest.(check int) "no expansions" 0 (int_field hit "nodes");
          let bypass = rpc c (exact_cc_req ~use_cache:false board_json) in
          assert_ok bypass;
          Alcotest.(check int) "table warmth survived" 0
            (int_field bypass "nodes");
          Alcotest.(check bool) "warm hits after restart" true
            (int_field bypass "table_hits" > 0)))

let test_serve_rejects_corrupt_snapshot () =
  let snapshot_path = fresh_path ".snap" in
  let oc = open_out snapshot_path in
  output_string oc "{\"format\":\"ccmx-serve-snapshot\",\"version\":999}";
  close_out oc;
  let logs = ref [] in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snapshot_path with Sys_error _ -> ())
    (fun () ->
      with_server ~snapshot_path
        ~logger:(Logging.create ~sink:(fun r -> logs := r :: !logs) ())
        (fun path ->
          let c = connect path in
          Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
          (* Cold start: the bad snapshot was rejected, not half-loaded. *)
          let r = rpc c (exact_cc_req board_json) in
          assert_ok r;
          Alcotest.(check bool) "started cold" true (int_field r "nodes" > 0)));
  Alcotest.(check bool) "rejection logged" true
    (List.exists
       (fun record ->
         Json.member "level" record = Some (Json.String "warn")
         &&
         match Json.member "msg" record with
         | Some (Json.String msg) ->
             let nn = String.length "version 999" in
             let rec go i =
               i + nn <= String.length msg
               && (String.sub msg i nn = "version 999" || go (i + 1))
             in
             go 0
         | _ -> false)
       !logs)

(* ------------------------------------------------------------------ *)
(* Self-healing: deadlines, crashes, shedding, oversized lines,        *)
(* periodic snapshots, resilient client                                *)
(* ------------------------------------------------------------------ *)

let test_serve_request_deadline_times_out_with_bounds () =
  with_server ~workers:2 (fun path ->
      let a = connect path in
      let b = connect path in
      Fun.protect
        ~finally:(fun () ->
          close_client a;
          close_client b)
        (fun () ->
          (* A's slow board takes the first table tag (worker 0); B's
             small board takes the second (worker 1) — so B runs
             concurrently on another worker while A's search burns. *)
          let t0 = Clock.now_s () in
          send a (exact_cc_req ~id:(Json.Int 1) ~deadline_ms:300 slow_board_json);
          let small = rpc b (exact_cc_req ~id:(Json.Int 7) board_json) in
          let t_small = Clock.now_s () -. t0 in
          assert_ok small;
          Alcotest.(check int) "concurrent small request completes" 4
            (int_field small "value");
          Alcotest.(check bool)
            (Printf.sprintf "small request not starved by the slow one \
                             (%.3fs)" t_small)
            true (t_small < 0.25);
          let r = recv a in
          let elapsed = Clock.now_s () -. t0 in
          check_code "search interrupted" "timed_out" r;
          (* the reply carries whatever the search certified before dying *)
          let lb = int_field r "lower_bound" and ub = int_field r "upper_bound" in
          Alcotest.(check bool) "lower bound certified" true (lb >= 1);
          Alcotest.(check bool) "bounds ordered" true (lb <= ub);
          Alcotest.(check bool)
            (Printf.sprintf "answered within ~2x the deadline, not after \
                             the full search (%.3fs elapsed)" elapsed)
            true (elapsed < 0.6);
          (* the worker survives a timeout and still computes *)
          let ok = rpc a (exact_cc_req ~id:(Json.Int 2) board_json) in
          assert_ok ok;
          Alcotest.(check int) "value after a timeout" 4 (int_field ok "value");
          let stats = rpc a stats_req in
          Alcotest.(check bool) "timeout counted" true
            (counter_field stats "serve.deadline_timeouts" >= 1)))

let test_serve_server_side_default_deadline () =
  (* No deadline_ms on the wire: the --request-timeout default applies. *)
  with_server ~workers:1 ~request_timeout_s:0.06 (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let r = rpc c (exact_cc_req ~id:(Json.Int 1) slow_board_json) in
      check_code "server default deadline" "timed_out" r;
      (* trivial ops are still answered inline, never deadline-shed *)
      assert_ok (rpc c (Json.Obj [ ("op", Json.String "ping") ])))

let crash_site w j = Printf.sprintf "serve:worker:%d:job%d" w j

(* Scan for a chaos seed (at rate 0.5) that crashes worker 0's first
   job and then lets the next several pass: one crash, then healing.
   Faults decisions are a pure function of (seed, site), so the scan
   is exact — no daemon needed to predict the fault pattern. *)
let find_single_crash_seed () =
  let rate = 0.5 in
  let ok seed =
    Faults.unit_float ~seed ~site:(crash_site 0 0) < rate
    && List.for_all
         (fun j -> Faults.unit_float ~seed ~site:(crash_site 0 j) >= rate)
         [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let rec go s =
    if s > 100_000 then Alcotest.fail "no single-crash chaos seed found"
    else if ok s then s
    else go (s + 1)
  in
  go 0

let test_serve_worker_crash_isolated_and_respawned () =
  let seed = find_single_crash_seed () in
  let chaos = Faults.create ~seed ~rate:0.5 ~delay_rate:0.0 () in
  with_server ~workers:1 ~chaos (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      (* job 0 crashes the worker; the in-flight request is answered
         with a structured error, not a dropped connection *)
      let r1 = rpc c (exact_cc_req ~id:(Json.Int 1) board_json) in
      check_code "crash becomes a structured error" "worker_crashed" r1;
      (* the daemon heals: the respawned worker answers the retry *)
      let r2 = rpc c (exact_cc_req ~id:(Json.Int 2) board_json) in
      assert_ok r2;
      Alcotest.(check int) "respawned worker computes" 4 (int_field r2 "value");
      let stats = rpc c stats_req in
      Alcotest.(check bool) "respawn counted" true
        (counter_field stats "serve.worker_respawns" >= 1);
      Alcotest.(check int) "all workers alive again" 1
        (int_field stats "workers_alive"))

let test_serve_respawn_budget_exhaustion_is_fatal () =
  (* rate 1.0: every job crashes its worker.  budget 1: the first
     crash respawns, the second makes the daemon give up — drain,
     snapshot-less stop, Server.Fatal out of run. *)
  let chaos = Faults.create ~seed:0 ~rate:1.0 ~delay_rate:0.0 () in
  let socket_path = fresh_path ".sock" in
  let cfg =
    Server.config ~socket_path ~workers:1 ~cache_capacity:64
      ~logger:Logging.null ~drain_timeout_s:5.0 ~respawn_budget:1 ~chaos ()
  in
  Telemetry.set_level Telemetry.Metrics;
  let outcome = ref None in
  let d =
    Domain.spawn (fun () ->
        match Server.run cfg with
        | () -> outcome := Some (Ok ())
        | exception Server.Fatal msg -> outcome := Some (Error msg))
  in
  Fun.protect
    ~finally:(fun () ->
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      let c = connect socket_path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let r1 = rpc c (exact_cc_req ~id:(Json.Int 1) board_json) in
      check_code "first crash answered" "worker_crashed" r1;
      let r2 = rpc c (exact_cc_req ~id:(Json.Int 2) board_json) in
      check_code "second crash answered" "worker_crashed" r2;
      (* the daemon shuts itself down; run raises Fatal *)
      Domain.join d;
      match !outcome with
      | Some (Error msg) ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "message names the budget" true
            (contains msg "respawn budget")
      | Some (Ok ()) -> Alcotest.fail "run returned instead of raising Fatal"
      | None -> Alcotest.fail "server domain exited without recording")

let test_serve_overload_shedding_is_immediate_and_ordered () =
  with_server ~workers:1 ~max_queue:1 (fun path ->
      let a = connect path in
      let b = connect path in
      Fun.protect
        ~finally:(fun () ->
          close_client a;
          close_client b)
        (fun () ->
          (* A: one slow job in flight, one queued — the queue is full.
             Deadlines bound the test's wall time. *)
          send a
            (exact_cc_req ~id:(Json.Int 0) ~use_cache:false ~deadline_ms:900
               slow_board_json);
          Clock.sleepf 0.15 (* let the worker dequeue job 0 *);
          send a
            (exact_cc_req ~id:(Json.Int 1) ~use_cache:false ~deadline_ms:900
               slow_board_json);
          Clock.sleepf 0.1;
          (* B floods the same worker: every request must be shed
             immediately — not parked behind A's slow job — in order. *)
          let t0 = Clock.now_s () in
          for i = 0 to 2 do
            send b
              (exact_cc_req ~id:(Json.Int (10 + i)) ~use_cache:false
                 slow_board_json)
          done;
          for i = 0 to 2 do
            let r = recv b in
            Alcotest.(check int) "shed replies in request order" (10 + i)
              (int_field r "id");
            check_code "shed with a structured code" "overloaded" r
          done;
          let shed_s = Clock.now_s () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "shedding is immediate (%.3fs)" shed_s)
            true (shed_s < 0.4);
          (* B keeps working, and the stats op counts the sheds *)
          assert_ok (rpc b (Json.Obj [ ("op", Json.String "ping") ]));
          let stats = rpc b stats_req in
          Alcotest.(check bool) "overload counter moved" true
            (counter_field stats "serve.overloaded" >= 3);
          (* A's slow jobs drain via their deadlines, still in order *)
          let r0 = recv a in
          Alcotest.(check int) "A reply order 0" 0 (int_field r0 "id");
          check_code "in-flight job timed out" "timed_out" r0;
          let r1 = recv a in
          Alcotest.(check int) "A reply order 1" 1 (int_field r1 "id");
          check_code "queued job shed at its deadline" "timed_out" r1))

let test_serve_too_large_rejected_at_admission () =
  with_server (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let board n distinct =
        (* n x n, but only [distinct] distinct rows/columns: canonical
           dims are [distinct x distinct] *)
        Json.List
          (List.init n (fun i ->
               Json.String
                 (String.init n (fun j ->
                      if i mod distinct = j mod distinct then '1' else '0'))))
      in
      (* Inside the 64x64 wire limit, above the engine cap: rejected at
         admission with a structured code and the offending canonical
         dimensions. *)
      let r = rpc c (exact_cc_req ~id:(Json.Int 1) (board 24 24)) in
      check_code "too_large code" "too_large" r;
      Alcotest.(check int) "canon_rows" 24 (int_field r "canon_rows");
      Alcotest.(check int) "canon_cols" 24 (int_field r "canon_cols");
      Alcotest.(check int) "limit is the engine cap"
        Commx_comm.Exact_cc.max_side (int_field r "limit");
      (* The check is canonicalization-aware: a 24x24 input that
         collapses to 8x8 sails through and gets its exact value. *)
      let ok8 = rpc c (exact_cc_req ~id:(Json.Int 2) (board 24 8)) in
      assert_ok ok8;
      Alcotest.(check int) "collapsible oversize board accepted" 4
        (int_field ok8 "value");
      (* Rejection never reached a worker: the connection keeps
         working and the admission counter moved. *)
      let stats = rpc c stats_req in
      Alcotest.(check bool) "too_large counted" true
        (counter_field stats "serve.too_large" >= 1);
      Alcotest.(check bool) "error counted" true (int_field stats "errors" >= 1))

let test_serve_oversized_line_recovery () =
  with_server ~max_line_bytes:2048 (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      output_string c.oc (String.make 8192 'x');
      output_char c.oc '\n';
      flush c.oc;
      let r = recv c in
      check_code "oversized line answered" "line_too_long" r;
      (* the oversized line was skipped, the connection survives *)
      let pong = rpc c (Json.Obj [ ("op", Json.String "ping"); ("id", Json.Int 1) ]) in
      assert_ok pong;
      Alcotest.(check int) "same connection keeps working" 1
        (int_field pong "id");
      let stats = rpc c stats_req in
      Alcotest.(check bool) "oversize counted" true
        (counter_field stats "serve.oversized_lines" >= 1))

let test_serve_periodic_snapshots () =
  let snapshot_path = fresh_path ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snapshot_path with Sys_error _ -> ())
    (fun () ->
      with_server ~snapshot_path ~snapshot_every_s:0.1 (fun path ->
          let c = connect path in
          Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
          assert_ok (rpc c (exact_cc_req board_json));
          (* the file appears while the daemon is still serving *)
          let deadline = Clock.now_s () +. 5.0 in
          while
            (not (Sys.file_exists snapshot_path)) && Clock.now_s () < deadline
          do
            Clock.sleepf 0.05
          done;
          Alcotest.(check bool) "periodic snapshot written" true
            (Sys.file_exists snapshot_path);
          let stats = rpc c stats_req in
          Alcotest.(check bool) "snapshot counter moved" true
            (counter_field stats "serve.snapshots_written" >= 1)))

(* ------------------------------------------------------------------ *)
(* Observability: /metrics + /healthz, flight recorder, slow-query     *)
(* log, structured chaos logs                                          *)
(* ------------------------------------------------------------------ *)

(* One-shot HTTP/1.0 GET over a Unix socket — what a Prometheus
   scraper does, minus TCP. *)
let http_get sock_path target =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string code
        | _ -> Alcotest.failf "malformed HTTP response: %s" raw
      in
      let n = String.length raw in
      let rec body_at i =
        if i + 4 > n then Alcotest.failf "no header terminator in %s" raw
        else if String.sub raw i 4 = "\r\n\r\n" then i + 4
        else body_at (i + 1)
      in
      let b = body_at 0 in
      (status, String.sub raw b (n - b)))

(* The value of an (unlabeled) sample line, [None] when absent. *)
let metric_value body name =
  let prefix = name ^ " " in
  let pl = String.length prefix in
  String.split_on_char '\n' body
  |> List.find_map (fun l ->
         if String.length l > pl && String.sub l 0 pl = prefix then
           Some (float_of_string (String.sub l pl (String.length l - pl)))
         else None)

let metric body name =
  match metric_value body name with
  | Some v -> v
  | None -> Alcotest.failf "metric %S not in exposition" name

let test_serve_metrics_endpoint_cold_warm () =
  let msock = fresh_path ".metrics.sock" in
  with_server ~metrics_socket:msock (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      (* Cold query: a result-cache miss. *)
      assert_ok (rpc c (exact_cc_req ~id:(Json.Int 1) board_json));
      let _, cold = http_get msock "/metrics" in
      Alcotest.(check (float 0.0)) "no hits yet" 0.0
        (metric cold "serve_cache_hits_total");
      Alcotest.(check bool) "cold miss counted" true
        (metric cold "serve_cache_misses_total" >= 1.0);
      (* Warm repeat: the hit counter must move between scrapes. *)
      let warm_reply = rpc c (exact_cc_req ~id:(Json.Int 2) board_json) in
      assert_ok warm_reply;
      Alcotest.(check string) "second query hits" "hit"
        (string_field warm_reply "cache");
      let status, warm = http_get msock "/metrics" in
      Alcotest.(check int) "scrape is 200" 200 status;
      Alcotest.(check bool) "hit counter moved cold->warm" true
        (metric warm "serve_cache_hits_total" >= 1.0);
      (* Quiesced agreement: the totals a scraper sees are the totals
         the in-band stats op reports. *)
      let stats = rpc c stats_req in
      let _, m = http_get msock "/metrics" in
      Alcotest.(check (float 0.0)) "requests agree with stats"
        (float_of_int (int_field stats "requests"))
        (metric m "serve_requests_total");
      Alcotest.(check (float 0.0)) "cache hits agree with stats"
        (float_of_int (int_field (obj_field stats "result_cache") "hits"))
        (metric m "serve_cache_hits_total");
      Alcotest.(check (float 0.0)) "crash counter agrees with stats"
        (float_of_int (counter_field stats "serve.worker_crashes"))
        (metric m "serve_worker_crashes_total");
      (* Per-op latency histograms carry op/outcome labels, and the
         per-worker gauges exist for every worker. *)
      let has_sub hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "labeled op histogram exposed" true
        (has_sub m "serve_op_us_bucket{op=\"exact_cc\"");
      Alcotest.(check bool) "per-worker queue gauge exposed" true
        (has_sub m "serve_queue_depth{worker=\"0\"}");
      Alcotest.(check bool) "TYPE headers present" true
        (has_sub m "# TYPE serve_requests_total counter");
      (* Readiness: all workers alive, queues empty -> 200 + ok. *)
      let hstatus, hbody = http_get msock "/healthz" in
      Alcotest.(check int) "healthz is 200" 200 hstatus;
      (match Json.member "ok" (Json.of_string (String.trim hbody)) with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.failf "healthz not ok: %s" hbody);
      (* Unknown target: structured 404, connection survives daemon. *)
      let nstatus, _ = http_get msock "/nope" in
      Alcotest.(check int) "unknown path is 404" 404 nstatus)

let test_serve_dump_trace_parented_chain () =
  with_server (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      assert_ok
        (rpc c (exact_cc_req ~id:(Json.Int 1) ~use_cache:false board_json));
      (* The recorder entry lands just after the reply is written, so
         poll the dump_trace op briefly rather than racing it. *)
      let dump_req = Json.Obj [ ("op", Json.String "dump_trace") ] in
      let deadline = Clock.now_s () +. 5.0 in
      let rec events () =
        let r = rpc c dump_req in
        assert_ok r;
        (match Json.member "enabled" r with
        | Some (Json.Bool true) -> ()
        | _ -> Alcotest.fail "flight recorder should default on");
        match Json.member "trace" r with
        | Some trace -> (
            match Json.member "traceEvents" trace with
            | Some (Json.List evs) when evs <> [] -> evs
            | _ when Clock.now_s () < deadline ->
                Clock.sleepf 0.02;
                events ()
            | _ -> Alcotest.fail "no trace events recorded")
        | None -> Alcotest.fail "dump_trace reply lacks trace"
      in
      let evs = events () in
      let arg ev key =
        match Json.member "args" ev with
        | Some args -> Json.member key args
        | None -> None
      in
      let root =
        match
          List.find_opt
            (fun ev ->
              Json.member "name" ev = Some (Json.String "request")
              && arg ev "op" = Some (Json.String "exact_cc"))
            evs
        with
        | Some ev -> ev
        | None -> Alcotest.fail "no request root span for exact_cc"
      in
      Alcotest.(check (option string)) "root has no parent"
        (Some "0")
        (match arg root "parent" with
        | Some (Json.Int p) -> Some (string_of_int p)
        | _ -> None);
      let root_id =
        match arg root "span" with
        | Some (Json.Int i) -> i
        | _ -> Alcotest.fail "root span lacks id"
      in
      let child name =
        match
          List.find_opt
            (fun ev ->
              Json.member "name" ev = Some (Json.String name)
              && arg ev "parent" = Some (Json.Int root_id))
            evs
        with
        | Some ev -> ev
        | None -> Alcotest.failf "no %S span parented to the request" name
      in
      let _qw = child "queue_wait" in
      let search = child "search" in
      let _rw = child "reply_write" in
      (* the search span carries the effort the reply reported *)
      (match arg search "nodes" with
      | Some (Json.String n) ->
          Alcotest.(check bool) "search span records nodes" true
            (int_of_string n > 0)
      | _ -> Alcotest.fail "search span lacks nodes");
      (* complete events: ph = "X" with microsecond timestamps *)
      Alcotest.(check bool) "chrome complete events" true
        (List.for_all
           (fun ev -> Json.member "ph" ev = Some (Json.String "X"))
           evs))

let test_serve_slow_query_logs_one_line () =
  let logs_m = Mutex.create () in
  let logs = ref [] in
  let sink r =
    Mutex.lock logs_m;
    logs := r :: !logs;
    Mutex.unlock logs_m
  in
  let slow_lines () =
    Mutex.lock logs_m;
    let l =
      List.filter
        (fun r -> Json.member "msg" r = Some (Json.String "slow_query"))
        !logs
    in
    Mutex.unlock logs_m;
    l
  in
  with_server ~slow_ms:50.0
    ~logger:(Logging.create ~sink ())
    (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      (* One deadline-bound slow search: ~300 ms wall, well past the
         50 ms threshold; the timed_out error reply still carries the
         certified bounds the log line should surface. *)
      let r =
        rpc c
          (exact_cc_req ~id:(Json.Int 9) ~use_cache:false ~deadline_ms:300
             slow_board_json)
      in
      check_code "slow request timed out" "timed_out" r;
      (* the log line lands after the reply is delivered — poll briefly *)
      let deadline = Clock.now_s () +. 5.0 in
      while slow_lines () = [] && Clock.now_s () < deadline do
        Clock.sleepf 0.02
      done;
      (match slow_lines () with
      | [ line ] ->
          let field key =
            match Json.member key line with
            | Some v -> v
            | None ->
                Alcotest.failf "slow_query line lacks %S: %s" key
                  (Json.to_string line)
          in
          Alcotest.(check string) "level is warn" "warn"
            (match field "level" with Json.String s -> s | _ -> "?");
          Alcotest.(check string) "op recorded" "exact_cc"
            (match field "op" with Json.String s -> s | _ -> "?");
          Alcotest.(check string) "outcome recorded" "timed_out"
            (match field "outcome" with Json.String s -> s | _ -> "?");
          (match field "wall_ms" with
          | Json.Float ms ->
              Alcotest.(check bool) "wall_ms past threshold" true (ms > 50.0)
          | _ -> Alcotest.fail "wall_ms not a float");
          ignore (field "tag");
          ignore (field "lower_bound");
          ignore (field "upper_bound");
          ignore (field "nodes")
      | lines ->
          Alcotest.failf "expected exactly one slow_query line, got %d"
            (List.length lines));
      (* the fast warm path stays silent and the counter agrees *)
      assert_ok (rpc c (Json.Obj [ ("op", Json.String "ping") ]));
      let stats = rpc c stats_req in
      Alcotest.(check bool) "slow counter moved" true
        (counter_field stats "serve.slow_queries" >= 1);
      Alcotest.(check int) "still exactly one line" 1
        (List.length (slow_lines ())))

let test_serve_chaos_log_file_is_json_lines () =
  (* Satellite: under chaos every daemon event must reach the sink as
     a parseable JSON record — nothing may bypass the logger onto raw
     stderr-style prints. *)
  let seed = find_single_crash_seed () in
  let chaos = Faults.create ~seed ~rate:0.5 ~delay_rate:0.0 () in
  let log_path = fresh_path ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      with_server ~workers:1 ~chaos
        ~logger:(Logging.create ~sink:(Logging.file_sink ~path:log_path) ())
        (fun path ->
          let c = connect path in
          Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
          let r1 = rpc c (exact_cc_req ~id:(Json.Int 1) board_json) in
          check_code "chaos crash surfaced" "worker_crashed" r1;
          assert_ok (rpc c (exact_cc_req ~id:(Json.Int 2) board_json)));
      (* server fully stopped: the file is complete *)
      let ic = open_in log_path in
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Json.of_string line with
             | record -> records := record :: !records
             | exception _ ->
                 close_in ic;
                 Alcotest.failf "non-JSON log line: %s" line
         done
       with End_of_file -> close_in ic);
      Alcotest.(check bool) "log file has records" true (!records <> []);
      List.iter
        (fun r ->
          match
            (Json.member "ts" r, Json.member "level" r, Json.member "msg" r)
          with
          | Some _, Some (Json.String _), Some (Json.String _) -> ()
          | _ ->
              Alcotest.failf "record lacks ts/level/msg: %s" (Json.to_string r))
        !records;
      Alcotest.(check bool) "the crash itself was logged" true
        (List.exists
           (fun r ->
             match (Json.member "level" r, Json.member "msg" r) with
             | Some (Json.String "error"), Some (Json.String msg) ->
                 let nn = String.length "crashed" in
                 let rec go i =
                   i + nn <= String.length msg
                   && (String.sub msg i nn = "crashed" || go (i + 1))
                 in
                 go 0
             | _ -> false)
           !records))

(* rank_batch: one request carries many boards; every returned rank
   must equal the scalar kernel's, a repeat of the identical batch is
   served from the result cache, and an oversized batch is rejected
   with a parse error rather than queued. *)
let test_serve_rank_batch () =
  with_server (fun path ->
      let c = connect path in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let g = Commx_util.Prng.create 99 in
      let boards = Array.init 20 (fun _ -> Bm.random g 9 7) in
      let to_rows m =
        Json.List
          (List.init (Bm.rows m) (fun i ->
               Json.String
                 (String.init (Bm.cols m) (fun j ->
                      if Bm.get m i j then '1' else '0'))))
      in
      let req id =
        Json.Obj
          [ ("op", Json.String "rank_batch"); ("id", Json.Int id);
            ( "matrices",
              Json.List (Array.to_list (Array.map to_rows boards)) ) ]
      in
      let reply = rpc c (req 1) in
      assert_ok reply;
      (match Json.member "values" reply with
      | Some (Json.List values) ->
          Alcotest.(check int) "count field" (Array.length boards)
            (int_field reply "count");
          Alcotest.(check int) "one rank per board" (Array.length boards)
            (List.length values);
          List.iteri
            (fun i v ->
              match v with
              | Json.Int r ->
                  Alcotest.(check int)
                    (Printf.sprintf "rank of board %d" i)
                    (Bm.rank boards.(i))
                    r
              | _ -> Alcotest.fail "non-integer rank in values")
            values
      | _ -> Alcotest.fail "reply lacks a values list");
      (* Identical batch again: one cache hit, zero extra work. *)
      let cache_hits () =
        int_field (obj_field (rpc c stats_req) "result_cache") "hits"
      in
      let before = cache_hits () in
      assert_ok (rpc c (req 2));
      let after = cache_hits () in
      Alcotest.(check bool) "repeat batch hits the result cache" true
        (after > before);
      (* Over the batch cap: rejected, connection still usable. *)
      let too_many =
        Json.Obj
          [ ("op", Json.String "rank_batch"); ("id", Json.Int 3);
            ( "matrices",
              Json.List
                (List.init (Wire.max_batch_size + 1) (fun _ ->
                     Json.List [ Json.String "1" ])) ) ]
      in
      (match Json.member "ok" (rpc c too_many) with
      | Some (Json.Bool false) -> ()
      | _ -> Alcotest.fail "oversized batch was accepted");
      assert_ok (rpc c (Json.Obj [ ("op", Json.String "ping") ])))

let test_client_end_to_end () =
  with_server (fun path ->
      let cl = Client.create ~socket_path:path () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      (match Client.request cl ~op:"ping" [] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "ping: %s" (Client.error_to_string e));
      (match Client.request cl ~op:"exact_cc" [ ("matrix", board_json) ] with
      | Ok reply -> Alcotest.(check int) "value" 4 (int_field reply "value")
      | Error e -> Alcotest.failf "exact_cc: %s" (Client.error_to_string e));
      (* a server-side deadline surfaces as a structured, non-retried
         server error *)
      (match
         Client.request cl ~deadline_ms:60 ~op:"exact_cc"
           [ ("matrix", slow_board_json); ("use_cache", Json.Bool false) ]
       with
      | Error (Client.Server_error { code = Some "timed_out"; _ }) -> ()
      | Ok _ -> Alcotest.fail "expected timed_out"
      | Error e -> Alcotest.failf "wrong error: %s" (Client.error_to_string e));
      (* a server that answers — even with errors — is alive: the
         breaker only counts unanswered requests *)
      Alcotest.(check string) "breaker stays closed" "closed"
        (Client.breaker_state cl))

let test_client_breaker_opens_and_fails_fast () =
  (* nothing listens at this path: every attempt is a transport
     failure, and after the threshold the breaker fails fast without
     touching the socket *)
  let path = fresh_path ".sock" in
  let cl =
    Client.create ~socket_path:path ~connect_timeout_s:0.2 ~retries:0
      ~breaker_threshold:2 ~breaker_cooldown_s:60.0 ()
  in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  (match Client.request cl ~op:"ping" [] with
  | Error (Client.Transport _) -> ()
  | r ->
      Alcotest.failf "expected a transport failure, got %s"
        (match r with Ok _ -> "ok" | Error e -> Client.error_to_string e));
  (match Client.request cl ~op:"ping" [] with
  | Error (Client.Transport _) -> ()
  | _ -> Alcotest.fail "expected a second transport failure");
  Alcotest.(check string) "breaker open after threshold" "open"
    (Client.breaker_state cl);
  match Client.request cl ~op:"ping" [] with
  | Error (Client.Breaker_open remaining) ->
      Alcotest.(check bool) "cooldown remaining is sane" true
        (remaining > 0.0 && remaining <= 60.0)
  | r ->
      Alcotest.failf "expected Breaker_open, got %s"
        (match r with Ok _ -> "ok" | Error e -> Client.error_to_string e)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [ Alcotest.test_case "parse exact_cc" `Quick test_wire_parse_exact_cc;
          Alcotest.test_case "defaults + use_cache" `Quick
            test_wire_parse_defaults_and_use_cache;
          Alcotest.test_case "singular bigints" `Quick
            test_wire_parse_singular_bigints;
          Alcotest.test_case "rejections" `Quick test_wire_parse_rejections;
          Alcotest.test_case "deadline_ms" `Quick test_wire_parse_deadline;
          Alcotest.test_case "error codes" `Quick test_wire_error_codes ] );
      ( "cache",
        [ Alcotest.test_case "FIFO eviction + stats" `Quick
            test_cache_fifo_eviction;
          Alcotest.test_case "JSON roundtrip" `Quick test_cache_json_roundtrip;
          Alcotest.test_case "tags sequential + stable" `Quick
            test_tags_sequential_and_stable ] );
      ( "daemon",
        [ Alcotest.test_case "warm cache end-to-end" `Quick
            test_serve_warm_cache_end_to_end;
          Alcotest.test_case "reply order = request order" `Quick
            test_serve_reply_order_is_request_order;
          Alcotest.test_case "survives broken-pipe client" `Quick
            test_serve_survives_broken_pipe_client;
          Alcotest.test_case "snapshot keeps restart warm" `Quick
            test_serve_snapshot_restart_stays_warm;
          Alcotest.test_case "corrupt snapshot rejected" `Quick
            test_serve_rejects_corrupt_snapshot;
          Alcotest.test_case "rank_batch op end-to-end" `Quick
            test_serve_rank_batch ] );
      ( "self-healing",
        [ Alcotest.test_case "request deadline times out with bounds" `Quick
            test_serve_request_deadline_times_out_with_bounds;
          Alcotest.test_case "server-side default deadline" `Quick
            test_serve_server_side_default_deadline;
          Alcotest.test_case "worker crash isolated + respawned" `Quick
            test_serve_worker_crash_isolated_and_respawned;
          Alcotest.test_case "respawn budget exhaustion is fatal" `Quick
            test_serve_respawn_budget_exhaustion_is_fatal;
          Alcotest.test_case "overload shedding immediate + ordered" `Quick
            test_serve_overload_shedding_is_immediate_and_ordered;
          Alcotest.test_case "too_large rejected at admission" `Quick
            test_serve_too_large_rejected_at_admission;
          Alcotest.test_case "oversized line recovery" `Quick
            test_serve_oversized_line_recovery;
          Alcotest.test_case "periodic snapshots" `Quick
            test_serve_periodic_snapshots ] );
      ( "observability",
        [ Alcotest.test_case "metrics endpoint cold->warm" `Quick
            test_serve_metrics_endpoint_cold_warm;
          Alcotest.test_case "dump_trace parented chain" `Quick
            test_serve_dump_trace_parented_chain;
          Alcotest.test_case "slow query logs one line" `Quick
            test_serve_slow_query_logs_one_line;
          Alcotest.test_case "chaos log file is JSON lines" `Quick
            test_serve_chaos_log_file_is_json_lines ] );
      ( "client",
        [ Alcotest.test_case "end to end" `Quick test_client_end_to_end;
          Alcotest.test_case "breaker opens + fails fast" `Quick
            test_client_breaker_opens_and_fails_fast ] )
    ]
