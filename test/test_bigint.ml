(* Tests for the bignum substrate: unit cases pinned against known
   values and an int64 oracle, plus qcheck properties for the ring
   axioms, division invariants, gcd, string round-trips, and modular
   arithmetic. *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module M = Commx_bigint.Modarith
module P = Commx_bigint.Primes
module Prng = Commx_util.Prng

let bi = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Bigints spanning one to several limbs, biased toward structured
   values (powers of two, +-1 neighborhoods) where carry bugs live. *)
let gen_bigint =
  let open QCheck.Gen in
  let structured =
    let* bits = int_range 0 200 in
    let* delta = int_range (-2) 2 in
    let* sgn = oneofl [ 1; -1 ] in
    let v = B.add_int (B.shift_left B.one bits) delta in
    return (if sgn < 0 then B.neg v else v)
  in
  let random_bits =
    let* bits = int_range 0 250 in
    let* seed = int_range 0 1_000_000 in
    let* sgn = oneofl [ 1; -1 ] in
    let g = Prng.create seed in
    let v = B.random_bits g bits in
    return (if sgn < 0 then B.neg v else v)
  in
  let small = map B.of_int (int_range (-1000) 1000) in
  frequency [ (3, random_bits); (2, structured); (2, small) ]

let arb_bigint = QCheck.make ~print:B.to_string gen_bigint

let arb_pair = QCheck.pair arb_bigint arb_bigint
let arb_triple = QCheck.triple arb_bigint arb_bigint arb_bigint

let qtest ?(count = 500) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "one" "1" (B.to_string B.one);
  Alcotest.(check string) "minus_one" "-1" (B.to_string B.minus_one);
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "is_one" true (B.is_one B.one);
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero)

let test_of_int_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v B.(to_int (of_int v)))
    [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 31; (1 lsl 31) - 1;
      -(1 lsl 31); 1 lsl 62; (* min_int is 1 lsl 62 negated *) ]

let test_string_known () =
  let cases =
    [ ("0", "0");
      ("-0", "0");
      ("12345678901234567890123456789", "12345678901234567890123456789");
      ("-987654321098765432109876543210", "-987654321098765432109876543210");
      ("1_000_000", "1000000");
      ("+77", "77") ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected B.(to_string (of_string input)))
    cases

let test_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (B.of_string_opt s = None))
    [ ""; "-"; "+"; "12a"; "--5"; " 5" ]

let test_mul_known () =
  (* 2^100 * 2^100 = 2^200, checked against the decimal expansion. *)
  let p100 = B.shift_left B.one 100 in
  let p200 = B.mul p100 p100 in
  Alcotest.(check bi) "2^200" (B.shift_left B.one 200) p200;
  Alcotest.(check string) "2^200 decimal"
    "1606938044258990275541962092341162602522202993782792835301376"
    (B.to_string p200);
  (* factorial 30, a classic overflow case for 64-bit *)
  let fact n =
    let rec go acc i = if i > n then acc else go (B.mul_int acc i) (i + 1) in
    go B.one 1
  in
  Alcotest.(check string) "30!" "265252859812191058636308480000000"
    (B.to_string (fact 30))

let test_divmod_known () =
  let a = B.of_string "1000000000000000000000000000000000007" in
  let b = B.of_string "999999999999999989" in
  let q, r = B.divmod a b in
  Alcotest.(check bi) "reconstruct" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "remainder bound" true B.(compare (abs r) (abs b) < 0);
  (* negative operands: truncation semantics like OCaml's (/) *)
  let check_signs x y =
    let bx = B.of_int x and by = B.of_int y in
    let q, r = B.divmod bx by in
    Alcotest.(check int) (Printf.sprintf "%d/%d" x y) (x / y) (B.to_int q);
    Alcotest.(check int) (Printf.sprintf "%d mod %d" x y) (x mod y) (B.to_int r)
  in
  List.iter
    (fun (x, y) -> check_signs x y)
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5) ]

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_pow () =
  Alcotest.(check bi) "3^40"
    (B.of_string "12157665459056928801")
    (B.pow (B.of_int 3) 40);
  Alcotest.(check bi) "x^0" B.one (B.pow (B.of_int 12345) 0);
  Alcotest.(check bi) "(-2)^63"
    (B.neg (B.shift_left B.one 63))
    (B.pow (B.of_int (-2)) 63)

let test_shift () =
  let x = B.of_string "123456789123456789123456789" in
  Alcotest.(check bi) "shift roundtrip" x (B.shift_right (B.shift_left x 97) 97);
  Alcotest.(check bi) "shift_right truncates" (B.of_int 0)
    (B.shift_right (B.of_int 1) 1);
  Alcotest.(check bi) "negative shift_right truncates toward zero"
    (B.of_int 0)
    (B.shift_right (B.of_int (-1)) 1)

let test_gcd_known () =
  Alcotest.(check bi) "gcd(48,36)" (B.of_int 12)
    (B.gcd (B.of_int 48) (B.of_int 36));
  Alcotest.(check bi) "gcd(0,x)" (B.of_int 7) (B.gcd B.zero (B.of_int (-7)));
  let a = B.of_string "123456789012345678901234567890" in
  Alcotest.(check bi) "gcd(a,a)" (B.abs a) (B.gcd a a)

let test_bit_length () =
  Alcotest.(check int) "bl 0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "bl 1" 1 (B.bit_length B.one);
  Alcotest.(check int) "bl 2^31" 32 (B.bit_length (B.shift_left B.one 31));
  Alcotest.(check int) "bl 2^100-1" 100
    (B.bit_length (B.sub (B.shift_left B.one 100) B.one))

let test_isqrt_known () =
  List.iter
    (fun (x, expect) ->
      Alcotest.(check bi) (string_of_int x) (B.of_int expect)
        (B.isqrt (B.of_int x)))
    [ (0, 0); (1, 1); (2, 1); (3, 1); (4, 2); (8, 2); (9, 3); (99, 9);
      (100, 10); (101, 10) ];
  (* large: isqrt(10^40) = 10^20 *)
  Alcotest.(check bi) "10^40"
    (B.pow (B.of_int 10) 20)
    (B.isqrt (B.pow (B.of_int 10) 40));
  Alcotest.(check bi) "ceil of 2" (B.of_int 2) (B.isqrt_ceil (B.of_int 2));
  Alcotest.(check bi) "ceil exact" (B.of_int 3) (B.isqrt_ceil (B.of_int 9))

let prop_isqrt a =
  let x = B.abs a in
  let s = B.isqrt x in
  B.compare (B.mul s s) x <= 0
  && B.compare (B.mul (B.add s B.one) (B.add s B.one)) x > 0

let test_ediv () =
  List.iter
    (fun (x, y) ->
      let q, r = B.ediv_rem (B.of_int x) (B.of_int y) in
      Alcotest.(check bool)
        (Printf.sprintf "erem %d %d nonneg" x y)
        true
        (B.sign r >= 0);
      Alcotest.(check bool)
        (Printf.sprintf "erem %d %d bound" x y)
        true
        B.(compare r (abs (of_int y)) < 0);
      Alcotest.(check bi)
        (Printf.sprintf "ediv %d %d reconstruct" x y)
        (B.of_int x)
        B.(add (mul q (of_int y)) r))
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (0, 5); (-12, 4) ]

(* ------------------------------------------------------------------ *)
(* Property tests: ring axioms and division                            *)
(* ------------------------------------------------------------------ *)

let prop_add_comm (a, b) = B.equal (B.add a b) (B.add b a)

let prop_add_assoc (a, b, c) =
  B.equal (B.add (B.add a b) c) (B.add a (B.add b c))

let prop_mul_comm (a, b) = B.equal (B.mul a b) (B.mul b a)

let prop_mul_assoc (a, b, c) =
  B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c))

let prop_distrib (a, b, c) =
  B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c))

let prop_add_neg a = B.is_zero (B.add a (B.neg a))

let prop_sub_add (a, b) = B.equal a (B.add (B.sub a b) b)

let prop_mul_school_agrees (a, b) = B.equal (B.mul a b) (B.mul_schoolbook a b)

(* Independent division oracle: binary shift-and-subtract long
   division on absolute values — slow but with no shared code paths
   with Knuth's Algorithm D (whose rare add-back branch this guards). *)
let slow_divmod a b =
  let an = B.abs a and bn = B.abs b in
  if B.compare an bn < 0 then (B.zero, a)
  else begin
    let shift = B.bit_length an - B.bit_length bn in
    let q = ref B.zero and r = ref an in
    for i = shift downto 0 do
      let d = B.shift_left bn i in
      if B.compare !r d >= 0 then begin
        r := B.sub !r d;
        q := B.add !q (B.shift_left B.one i)
      end
    done;
    let q = if B.sign a * B.sign b < 0 then B.neg !q else !q in
    let r = if B.sign a < 0 then B.neg !r else !r in
    (q, r)
  end

let prop_divmod_vs_slow_oracle (a, b) =
  B.is_zero b
  ||
  let q1, r1 = B.divmod a b in
  let q2, r2 = slow_divmod a b in
  B.equal q1 q2 && B.equal r1 r2

let test_divmod_addback_cases () =
  (* Dividends shaped to stress the qhat-correction and add-back
     branches: top limbs of u just below multiples of v's top limb. *)
  let big_pow2 e = B.shift_left B.one e in
  let cases =
    [ (B.sub (big_pow2 124) B.one, B.add (big_pow2 62) B.one);
      (B.sub (big_pow2 186) (big_pow2 93), B.sub (big_pow2 93) B.one);
      (B.add (big_pow2 155) (big_pow2 31), B.add (big_pow2 62) (big_pow2 31));
      (B.sub (big_pow2 248) B.one, B.sub (big_pow2 124) B.one) ]
  in
  List.iter
    (fun (u, v) ->
      let q, r = B.divmod u v in
      let q', r' = slow_divmod u v in
      Alcotest.(check bi) "q" q' q;
      Alcotest.(check bi) "r" r' r;
      Alcotest.(check bi) "reconstruct" u (B.add (B.mul q v) r))
    cases

(* Deterministic witnesses that drive Algorithm D into its add-back
   branch (probability ~2/2^31 on random inputs, and only reachable
   with a divisor of >= 3 limbs, so random stress rarely lands there).
   With base b = 2^31, v = [b-1; 0; 2^30] = 2^92 + (2^31 - 1) and
   u = [u0; 0; 0; 1] = 2^93 + u0, the first quotient-digit estimate is
   qhat = 2, the two-digit correction test passes (v's middle limb is
   0), the multiply-subtract goes negative, and add-back corrects the
   digit to the true q. *)
let test_divmod_addback_exact () =
  let p2 e = B.shift_left B.one e in
  let v = B.add (p2 92) (B.of_int ((1 lsl 31) - 1)) in
  (* Case 1: single-digit quotient.  q = 1, r = u - v. *)
  let u1 = B.add (p2 93) (B.of_int 5) in
  let q1, r1 = B.divmod u1 v in
  Alcotest.(check bi) "q1" B.one q1;
  Alcotest.(check bi) "r1" (B.sub u1 v) r1;
  (* Case 2: the add-back digit lands mid-quotient.  u = (2^93 + 5) *
     2^31 + 123456789; the true quotient is 2^32 - 1 (every corrected
     digit is b-1, the signature of add-back). *)
  let u2 = B.add (B.shift_left u1 31) (B.of_int 123_456_789) in
  let q2, r2 = B.divmod u2 v in
  Alcotest.(check bi) "q2" (B.of_int ((1 lsl 32) - 1)) q2;
  Alcotest.(check bi) "r2" (B.sub u2 (B.mul q2 v)) r2;
  Alcotest.(check bool) "r2 range" true (B.compare r2 v < 0 && B.sign r2 >= 0);
  List.iter
    (fun (u, v) ->
      let q, r = B.divmod u v in
      let q', r' = slow_divmod u v in
      Alcotest.(check bi) "q vs oracle" q' q;
      Alcotest.(check bi) "r vs oracle" r' r)
    [ (u1, v); (u2, v) ]

(* Divisor normalization boundaries of Algorithm D: top limb already
   normalized (shift 0, top limb 2^30), top limb 1 (maximal shift 30),
   and bit lengths at exact multiples of the 31-bit limb size, where
   the shift wraps to 0 on a fresh limb. *)
let test_divmod_normalization_boundaries () =
  let p2 e = B.shift_left B.one e in
  let u = B.add (p2 200) (B.of_int 987_654_321) in
  List.iter
    (fun e ->
      (* v = 2^e: quotient and remainder are pure shifts/masks. *)
      let v = p2 e in
      let q, r = B.divmod u v in
      Alcotest.(check bi)
        (Printf.sprintf "q shift %d" e)
        (B.shift_right u e) q;
      Alcotest.(check bi)
        (Printf.sprintf "r mask %d" e)
        (B.sub u (B.shift_left (B.shift_right u e) e))
        r)
    [ 30; 31; 61; 62; 92 ];
  List.iter
    (fun v ->
      let q, r = B.divmod u v in
      let q', r' = slow_divmod u v in
      Alcotest.(check bi) "norm q" q' q;
      Alcotest.(check bi) "norm r" r' r)
    [ p2 92;
      (* top limb 2^30: normalization shift 0 *)
      B.add (p2 92) (B.of_int ((1 lsl 31) - 1));
      p2 93;
      (* bit_length 94 = fresh limb: top limb 1, shift 30 *)
      B.sub (p2 93) B.one;
      (* bit_length 93 = 3 * 31 exactly *)
      B.add (p2 62) B.one ]

let test_to_int_boundaries () =
  let p62 = B.shift_left B.one 62 in
  Alcotest.(check int) "max_int" max_int (B.to_int (B.of_int max_int));
  Alcotest.(check int) "min_int" min_int (B.to_int (B.of_int min_int));
  Alcotest.(check (option int))
    "2^62 - 1 fits" (Some max_int)
    (B.to_int_opt (B.sub p62 B.one));
  Alcotest.(check (option int)) "2^62 does not fit" None (B.to_int_opt p62);
  Alcotest.(check (option int))
    "-2^62 is min_int" (Some min_int)
    (B.to_int_opt (B.neg p62));
  Alcotest.(check (option int))
    "-2^62 - 1 does not fit" None
    (B.to_int_opt (B.neg (B.add p62 B.one)));
  Alcotest.(check bool) "fits max" true (B.fits_int (B.of_int max_int));
  Alcotest.(check bool) "fits min" true (B.fits_int (B.of_int min_int));
  Alcotest.(check bool) "2^62 not fits" false (B.fits_int p62);
  Alcotest.check_raises "to_int 2^62"
    (Failure "Bigint.to_int: value out of native int range") (fun () ->
      ignore (B.to_int p62));
  (* String paths agree at both boundaries. *)
  Alcotest.(check int) "min_int via string" min_int
    (B.to_int (B.of_string (string_of_int min_int)));
  Alcotest.(check int) "max_int via string" max_int
    (B.to_int (B.of_string (string_of_int max_int)))

let prop_divmod (a, b) =
  B.is_zero b
  ||
  let q, r = B.divmod a b in
  B.equal a (B.add (B.mul q b) r)
  && B.compare (B.abs r) (B.abs b) < 0
  && (B.is_zero r || B.sign r = B.sign a)

let prop_string_roundtrip a = B.equal a (B.of_string (B.to_string a))

let prop_compare_antisym (a, b) = B.compare a b = -B.compare b a

let prop_compare_mul_positive (a, b) =
  (* multiplying by a positive value preserves order *)
  let p = B.of_int 17 in
  Stdlib.compare (B.compare a b) 0
  = Stdlib.compare (B.compare (B.mul a p) (B.mul b p)) 0

let prop_gcd_divides (a, b) =
  let g = B.gcd a b in
  if B.is_zero g then B.is_zero a && B.is_zero b
  else B.is_zero (B.rem a g) && B.is_zero (B.rem b g)

let prop_gcdext (a, b) =
  let g, x, y = B.gcdext a b in
  B.equal g (B.add (B.mul a x) (B.mul b y)) && B.sign g >= 0

let prop_shift_is_pow2 a =
  let x = B.shift_left a 13 in
  B.equal x (B.mul a (B.pow B.two 13))

let prop_bit_length_shift a =
  B.is_zero a
  || B.bit_length (B.shift_left a 7) = B.bit_length a + 7

let prop_int64_oracle (x, y) =
  (* Exercise against exact small values via int64 *)
  let x = x mod 1_000_000 and y = y mod 1_000_000 in
  let bx = B.of_int x and by = B.of_int y in
  B.to_int (B.mul bx by) = x * y
  && B.to_int (B.add bx by) = x + y
  && B.to_int (B.sub bx by) = x - y

(* ------------------------------------------------------------------ *)
(* Rational tests                                                      *)
(* ------------------------------------------------------------------ *)

let gen_rational =
  let open QCheck.Gen in
  let* n = gen_bigint in
  let* d = gen_bigint in
  return (if B.is_zero d then Q.of_bigint n else Q.make n d)

let arb_rational = QCheck.make ~print:Q.to_string gen_rational

let test_rational_canonical () =
  let r = Q.of_ints 6 (-4) in
  Alcotest.(check bi) "num" (B.of_int (-3)) (Q.num r);
  Alcotest.(check bi) "den" (B.of_int 2) (Q.den r);
  Alcotest.(check rat) "6/-4 = -3/2" (Q.of_ints (-3) 2) r;
  Alcotest.(check rat) "0/x" Q.zero (Q.of_ints 0 17)

let test_rational_arith () =
  Alcotest.(check rat) "1/2+1/3" (Q.of_ints 5 6)
    (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.(check rat) "1/2*2/3" (Q.of_ints 1 3)
    (Q.mul (Q.of_ints 1 2) (Q.of_ints 2 3));
  Alcotest.(check rat) "(2/3)^-1" (Q.of_ints 3 2) (Q.inv (Q.of_ints 2 3));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let test_rational_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(of_ints 1 3 </ of_ints 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Q.(of_ints (-1) 2 </ of_ints 1 3);
  Alcotest.(check int) "sign" (-1) (Q.sign (Q.of_ints (-3) 7))

let prop_rational_field (a, b) =
  Q.is_zero b || Q.equal a (Q.mul (Q.div a b) b)

let prop_rational_add_assoc (a, b, c) =
  Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))

let prop_rational_string a = Q.equal a (Q.of_string (Q.to_string a))

let prop_rational_den_positive a = B.sign (Q.den a) > 0

let prop_rational_reduced a =
  B.is_one (B.gcd (Q.num a) (Q.den a)) || Q.is_zero a

(* ------------------------------------------------------------------ *)
(* Modular arithmetic and primes                                       *)
(* ------------------------------------------------------------------ *)

let test_word_mod_basics () =
  let m = M.Word.modulus 97 in
  Alcotest.(check int) "reduce -1" 96 (M.Word.reduce m (-1));
  Alcotest.(check int) "add" 1 (M.Word.add m 50 48);
  Alcotest.(check int) "mul" (50 * 48 mod 97) (M.Word.mul m 50 48);
  Alcotest.(check int) "pow fermat" 1 (M.Word.pow m 5 96);
  let inv5 = M.Word.inv m 5 in
  Alcotest.(check int) "inv" 1 (M.Word.mul m 5 inv5);
  Alcotest.check_raises "inv non-unit" Division_by_zero (fun () ->
      ignore (M.Word.inv (M.Word.modulus 10) 4))

let test_big_mod () =
  let m = B.of_string "1000000007" in
  let a = B.of_string "123456789123456789" in
  let i = M.inv ~m a in
  Alcotest.(check bi) "inv works" B.one (M.mul ~m a i);
  (* Fermat's little theorem *)
  Alcotest.(check bi) "fermat" B.one (M.pow ~m a (B.sub m B.one))

let test_crt () =
  let x, modulus =
    M.crt
      [ (B.of_int 2, B.of_int 3); (B.of_int 3, B.of_int 5); (B.of_int 2, B.of_int 7) ]
  in
  Alcotest.(check bi) "sunzi" (B.of_int 23) x;
  Alcotest.(check bi) "modulus" (B.of_int 105) modulus

let test_primes_small () =
  let known = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47 ] in
  Alcotest.(check (list int)) "sieve" known (P.primes_below 48);
  Alcotest.(check bool) "1 not prime" false (P.is_prime 1);
  Alcotest.(check bool) "0 not prime" false (P.is_prime 0);
  Alcotest.(check bool) "2^31-1 prime" true (P.is_prime ((1 lsl 31) - 1));
  Alcotest.(check bool) "carmichael 561" false (P.is_prime 561);
  Alcotest.(check bool) "carmichael 41041" false (P.is_prime 41041);
  Alcotest.(check int) "next_prime 14" 17 (P.next_prime 14);
  Alcotest.(check int) "nth below" 97 (P.nth_prime_below 0 100);
  Alcotest.(check int) "nth below 1" 89 (P.nth_prime_below 1 100)

let test_miller_rabin_vs_sieve () =
  let sieve = P.primes_below 10_000 in
  let in_sieve = Hashtbl.create 1024 in
  List.iter (fun p -> Hashtbl.replace in_sieve p ()) sieve;
  for n = 0 to 9_999 do
    Alcotest.(check bool)
      (Printf.sprintf "is_prime %d" n)
      (Hashtbl.mem in_sieve n) (P.is_prime n)
  done

let test_random_prime () =
  let g = Prng.create 7 in
  for _ = 1 to 50 do
    let p = P.random_prime g ~bits:20 in
    Alcotest.(check bool) "prime" true (P.is_prime p);
    Alcotest.(check bool) "bits" true (p >= 1 lsl 19 && p < 1 lsl 20)
  done

let test_fingerprint_prime_bits () =
  let b = P.fingerprint_prime_bits ~n:8 ~k:8 ~epsilon:0.01 in
  Alcotest.(check bool) "in range" true (b >= 3 && b <= 30);
  let b_strict = P.fingerprint_prime_bits ~n:8 ~k:8 ~epsilon:0.0001 in
  Alcotest.(check bool) "stricter eps needs more bits" true (b_strict >= b)

(* The .mli contract: inv raises Division_by_zero exactly when
   gcd(x, m) <> 1 (zero and shared-factor residues included), and
   pow _ _ 0 = 1 for every base against any modulus, composite ones
   included. *)
let test_word_inv_pow_contract () =
  let m9 = M.Word.modulus 9 and m12 = M.Word.modulus 12 in
  let m7 = M.Word.modulus 7 in
  List.iter
    (fun (m, x) ->
      Alcotest.check_raises
        (Printf.sprintf "inv %d mod non-coprime" x)
        Division_by_zero
        (fun () -> ignore (M.Word.inv m x)))
    [ (m9, 0); (m9, 6); (m9, 3); (m12, 4); (m12, 10); (m7, 0) ];
  (* Invertible residues really invert, composite modulus included. *)
  List.iter
    (fun (m, x) ->
      Alcotest.(check int)
        (Printf.sprintf "x * inv x mod m = 1 (x=%d)" x)
        1
        (M.Word.mul m x (M.Word.inv m x)))
    [ (m7, 3); (m9, 2); (m12, 5); (m12, 11) ];
  Alcotest.(check int) "inv 3 mod 7" 5 (M.Word.inv m7 3);
  (* pow with exponent 0 is the empty product for every base. *)
  List.iter
    (fun b ->
      Alcotest.(check int)
        (Printf.sprintf "pow 12 %d 0" b)
        1
        (M.Word.pow m12 b 0))
    [ 0; 1; 5; 11 ];
  Alcotest.(check int) "pow composite" (5 * 5 * 5 mod 12)
    (M.Word.pow m12 5 3);
  (* Bignum flavour honors the same contract. *)
  let bm = B.of_int 12 in
  Alcotest.check_raises "big inv non-coprime" Division_by_zero (fun () ->
      ignore (M.inv ~m:bm (B.of_int 4)));
  Alcotest.(check bi) "big inv valid" B.one
    (M.mul ~m:bm (B.of_int 5) (M.inv ~m:bm (B.of_int 5)));
  Alcotest.(check bi) "big pow e=0" B.one
    (M.pow ~m:bm (B.of_int 7) B.zero)

let prop_word_mulmod_oracle (a, b) =
  let m = M.Word.modulus 1_000_003 in
  let r = M.Word.mul m (M.Word.reduce m a) (M.Word.reduce m b) in
  (* oracle via bigint *)
  let big =
    B.erem (B.mul (B.of_int a) (B.of_int b)) (B.of_int 1_000_003)
  in
  r = B.to_int big

let prop_crt_consistent (a, b) =
  let p1 = B.of_int 10007 and p2 = B.of_int 10009 in
  let r1 = B.erem a p1 and r2 = B.erem b p2 in
  let x, m = M.crt [ (r1, p1); (r2, p2) ] in
  B.equal (B.erem x p1) r1 && B.equal (B.erem x p2) r2
  && B.equal m (B.mul p1 p2)

(* rem_int is the allocation-free fast path the batched singularity
   filter leans on; it must agree with the general euclidean remainder
   for every sign and size, and reject out-of-range moduli. *)
let prop_rem_int (a, m_raw) =
  let m = 2 + (Stdlib.abs m_raw mod ((1 lsl 31) - 3)) in
  B.rem_int a m = B.to_int (B.erem a (B.of_int m))

let test_rem_int_edges () =
  List.iter
    (fun (x, m) ->
      Alcotest.(check int)
        (Printf.sprintf "rem_int %s %d" (B.to_string x) m)
        (B.to_int (B.erem x (B.of_int m)))
        (B.rem_int x m))
    [ (B.zero, 7); (B.of_int (-1), 2); (B.shift_left B.one 200, 1_000_003);
      (B.neg (B.shift_left B.one 200), 1_000_003);
      (B.of_int max_int, (1 lsl 31) - 1); (B.of_int min_int, (1 lsl 31) - 1) ];
  Alcotest.check_raises "modulus 1 rejected"
    (Invalid_argument "Bigint.rem_int: modulus must be in (1, 2^31)") (fun () ->
      ignore (B.rem_int B.one 1));
  Alcotest.check_raises "modulus 2^31 rejected"
    (Invalid_argument "Bigint.rem_int: modulus must be in (1, 2^31)") (fun () ->
      ignore (B.rem_int B.one (1 lsl 31)))

let test_arena_reuse () =
  let a = B.Arena.create () in
  let b1 = B.Arena.alloc a 16 in
  Alcotest.(check bool) "big enough" true (Array.length b1 >= 16);
  Alcotest.(check (pair int int)) "first alloc is fresh" (1, 0)
    (B.Arena.stats a);
  B.Arena.release a b1;
  let b2 = B.Arena.alloc a 10 in
  Alcotest.(check bool) "released buffer comes back" true (b1 == b2);
  Alcotest.(check (pair int int)) "second alloc reused" (1, 1)
    (B.Arena.stats a);
  (* A request larger than anything on the free list mints a buffer. *)
  let b3 = B.Arena.alloc a 64 in
  Alcotest.(check bool) "oversized request is fresh" true
    (Array.length b3 >= 64 && not (b3 == b2));
  Alcotest.(check (pair int int)) "fresh count moved" (2, 1)
    (B.Arena.stats a)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bigint"
    [ ( "bigint-unit",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "string known values" `Quick test_string_known;
          Alcotest.test_case "string invalid" `Quick test_string_invalid;
          Alcotest.test_case "mul known values" `Quick test_mul_known;
          Alcotest.test_case "divmod known values" `Quick test_divmod_known;
          Alcotest.test_case "divmod add-back stress" `Quick
            test_divmod_addback_cases;
          Alcotest.test_case "divmod add-back exact witnesses" `Quick
            test_divmod_addback_exact;
          Alcotest.test_case "divmod normalization boundaries" `Quick
            test_divmod_normalization_boundaries;
          Alcotest.test_case "to_int boundaries" `Quick test_to_int_boundaries;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "gcd known" `Quick test_gcd_known;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "isqrt known" `Quick test_isqrt_known;
          Alcotest.test_case "euclidean division" `Quick test_ediv ] );
      ( "bigint-props",
        [ qtest "add commutative" arb_pair prop_add_comm;
          qtest "add associative" arb_triple prop_add_assoc;
          qtest "mul commutative" arb_pair prop_mul_comm;
          qtest "mul associative" arb_triple prop_mul_assoc;
          qtest "distributivity" arb_triple prop_distrib;
          qtest "additive inverse" arb_bigint prop_add_neg;
          qtest "sub then add" arb_pair prop_sub_add;
          qtest "karatsuba = schoolbook" arb_pair prop_mul_school_agrees;
          qtest "divmod invariant" arb_pair prop_divmod;
          qtest "divmod vs slow oracle" ~count:300 arb_pair
            prop_divmod_vs_slow_oracle;
          qtest "decimal roundtrip" arb_bigint prop_string_roundtrip;
          qtest "compare antisymmetric" arb_pair prop_compare_antisym;
          qtest "order preserved by positive mul" arb_pair
            prop_compare_mul_positive;
          qtest "gcd divides both" arb_pair prop_gcd_divides;
          qtest "bezout identity" arb_pair prop_gcdext;
          qtest "isqrt bracket" arb_bigint prop_isqrt;
          qtest "shift = mul by power of two" arb_bigint prop_shift_is_pow2;
          qtest "bit_length under shift" arb_bigint prop_bit_length_shift;
          qtest "int oracle" QCheck.(pair small_int small_int)
            prop_int64_oracle ] );
      ( "rational",
        [ Alcotest.test_case "canonical form" `Quick test_rational_canonical;
          Alcotest.test_case "arithmetic" `Quick test_rational_arith;
          Alcotest.test_case "comparisons" `Quick test_rational_compare;
          qtest "field division" (QCheck.pair arb_rational arb_rational)
            prop_rational_field;
          qtest "rational add assoc"
            (QCheck.triple arb_rational arb_rational arb_rational)
            prop_rational_add_assoc;
          qtest "rational string roundtrip" arb_rational prop_rational_string;
          qtest "den positive" arb_rational prop_rational_den_positive;
          qtest "fully reduced" arb_rational prop_rational_reduced ] );
      ( "modular",
        [ Alcotest.test_case "word mod basics" `Quick test_word_mod_basics;
          Alcotest.test_case "word inv/pow contract" `Quick
            test_word_inv_pow_contract;
          Alcotest.test_case "bignum mod" `Quick test_big_mod;
          Alcotest.test_case "crt sunzi" `Quick test_crt;
          Alcotest.test_case "primes small" `Quick test_primes_small;
          Alcotest.test_case "miller-rabin vs sieve" `Quick
            test_miller_rabin_vs_sieve;
          Alcotest.test_case "random primes" `Quick test_random_prime;
          Alcotest.test_case "fingerprint prime sizing" `Quick
            test_fingerprint_prime_bits;
          qtest "word mulmod oracle"
            QCheck.(pair int int)
            prop_word_mulmod_oracle;
          qtest "crt consistency" arb_pair prop_crt_consistent;
          Alcotest.test_case "rem_int edges" `Quick test_rem_int_edges;
          Alcotest.test_case "arena reuse" `Quick test_arena_reuse;
          qtest "rem_int vs erem"
            QCheck.(pair arb_bigint int)
            prop_rem_int ] ) ]
