(* Tests for the Commx_check differential-fuzzing harness itself:
   deterministic replay, shrinking, exception capture, budgets — plus a
   smoke run of the real suite. *)

module Gen = Commx_check.Gen
module Shrink = Commx_check.Shrink
module Property = Commx_check.Property
module Runner = Commx_check.Runner
module Suite = Commx_check.Suite

let strip_wall (r : Runner.report) = (r.name, r.cases, r.outcome)

(* A property that fails on any value above a threshold; with
   [Shrink.int] the greedy shrinker must converge to the smallest
   failing value. *)
let above_threshold name =
  Property.make ~name
    ~gen:(Gen.int_range 0 10_000)
    ~shrink:Shrink.int ~show:string_of_int
    (fun x -> if x > 100 then Some "above threshold" else None)

let test_runner_deterministic () =
  let prop =
    Property.make ~name:"det.pair"
      ~gen:(Gen.pair Gen.any_int (Gen.int_range 0 99))
      ~show:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
      (fun _ -> None)
  in
  let r1 = Runner.run_one ~seed:42 ~count:200 prop in
  let r2 = Runner.run_one ~seed:42 ~count:200 prop in
  Alcotest.(check bool) "same outcome" true (strip_wall r1 = strip_wall r2);
  Alcotest.(check int) "all cases ran" 200 r1.Runner.cases;
  (* failing runs replay identically too, witness included *)
  let f1 = Runner.run_one ~seed:7 ~count:500 (above_threshold "det.fail") in
  let f2 = Runner.run_one ~seed:7 ~count:500 (above_threshold "det.fail") in
  Alcotest.(check bool) "same failure" true (strip_wall f1 = strip_wall f2);
  match f1.Runner.outcome with
  | Runner.Pass -> Alcotest.fail "expected a failure"
  | Runner.Failed f ->
      Alcotest.(check int) "case seed derivable" f.Runner.case_seed
        (Runner.case_seed ~seed:7 ~name:"det.fail" ~index:f.Runner.case_index)

let test_case_seed_order_independent () =
  (* Case seeds depend on (master seed, name, index) only, so the same
     property yields the same stream wherever it sits in the list. *)
  let s = Runner.case_seed ~seed:13 ~name:"a.b" ~index:4 in
  Alcotest.(check int) "stable" s
    (Runner.case_seed ~seed:13 ~name:"a.b" ~index:4);
  Alcotest.(check bool) "name matters" true
    (s <> Runner.case_seed ~seed:13 ~name:"a.c" ~index:4);
  Alcotest.(check bool) "index matters" true
    (s <> Runner.case_seed ~seed:13 ~name:"a.b" ~index:5);
  Alcotest.(check bool) "seed matters" true
    (s <> Runner.case_seed ~seed:14 ~name:"a.b" ~index:4)

let test_shrinker_converges () =
  match
    (Runner.run_one ~seed:1 ~count:1_000 (above_threshold "shrink.min"))
      .Runner.outcome
  with
  | Runner.Pass -> Alcotest.fail "expected a failure"
  | Runner.Failed f ->
      (* greedy descent over [0; x/2; x-1] candidates must reach the
         boundary value 101 from any starting failure *)
      Alcotest.(check string) "shrinks to smallest" "101"
        f.Runner.counterexample;
      Alcotest.(check bool) "records steps" true (f.Runner.shrink_steps > 0);
      Alcotest.(check bool) "keeps original" true
        (int_of_string f.Runner.original > 100)

let test_exception_is_failure () =
  let prop =
    Property.make ~name:"raises" ~gen:(Gen.int_range 0 9)
      ~show:string_of_int
      (fun x -> if x >= 0 then failwith "boom" else None)
  in
  match (Runner.run_one ~seed:3 ~count:10 prop).Runner.outcome with
  | Runner.Pass -> Alcotest.fail "expected a failure"
  | Runner.Failed f ->
      Alcotest.(check int) "first case fails" 0 f.Runner.case_index;
      Alcotest.(check bool) "message mentions exception" true
        (String.length f.Runner.message > 0)

let test_budget_and_filter () =
  let prop = above_threshold "budget.prop" in
  let r = Runner.run_one ~budget_s:0.0 ~seed:5 ~count:1_000 prop in
  Alcotest.(check int) "zero budget runs nothing" 0 r.Runner.cases;
  Alcotest.(check bool) "no cases means pass" true
    (r.Runner.outcome = Runner.Pass);
  let props = [ above_threshold "alpha.one"; above_threshold "beta.two" ] in
  let reports = Runner.run ~filter:"beta" ~seed:5 ~count:1 props in
  Alcotest.(check (list string)) "filter by substring" [ "beta.two" ]
    (List.map (fun (r : Runner.report) -> r.Runner.name) reports)

let test_suite_smoke () =
  (* The real differential suite must pass at a smoke count; this is
     the same tier CI runs through [ccmx check]. *)
  let reports = Runner.run ~seed:20260807 ~count:25 (Suite.all ()) in
  Alcotest.(check bool) "at least 6 optimized-vs-oracle pairs" true
    (List.length reports >= 6);
  List.iter
    (fun (r : Runner.report) ->
      match r.Runner.outcome with
      | Runner.Pass -> ()
      | Runner.Failed f ->
          Alcotest.failf "property %s failed on %s: %s" r.Runner.name
            f.Runner.counterexample f.Runner.message)
    reports;
  Alcotest.(check bool) "all_passed agrees" true (Runner.all_passed reports)

let () =
  Alcotest.run "check"
    [ ( "runner",
        [ Alcotest.test_case "deterministic replay" `Quick
            test_runner_deterministic;
          Alcotest.test_case "case seeds order-independent" `Quick
            test_case_seed_order_independent;
          Alcotest.test_case "shrinker converges" `Quick
            test_shrinker_converges;
          Alcotest.test_case "exception counts as failure" `Quick
            test_exception_is_failure;
          Alcotest.test_case "budget + filter" `Quick test_budget_and_filter ] );
      ( "suite",
        [ Alcotest.test_case "differential suite smoke" `Quick
            test_suite_smoke ] ) ]
