(* Tests for the communication-complexity framework: encodings,
   partitions, the bit-counting channel, truth matrices, rectangle
   analysis (exact vs brute force), fooling sets, and rank bounds. *)

module Bv = Commx_util.Bitvec
module Bm = Commx_util.Bitmat
module Prng = Commx_util.Prng
module B = Commx_bigint.Bigint
module Encode = Commx_comm.Encode
module Partition = Commx_comm.Partition
module Protocol = Commx_comm.Protocol
module Tm = Commx_comm.Truth_matrix
module Rect = Commx_comm.Rectangle
module Fooling = Commx_comm.Fooling
module Rank_bound = Commx_comm.Rank_bound

let qtest ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Encode                                                              *)
(* ------------------------------------------------------------------ *)

let test_bits_for_range () =
  List.iter
    (fun (card, expect) ->
      Alcotest.(check int) (string_of_int card) expect (Encode.bits_for_range card))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (256, 8); (257, 9) ]

let prop_int_roundtrip (v, extra) =
  let v = abs v mod (1 lsl 20) in
  let width = 20 + (abs extra mod 10) in
  Encode.decode_int (Encode.encode_int ~width v) = v

let prop_bigint_roundtrip v =
  let v = B.of_int (abs v) in
  let width = max 1 (B.bit_length v) in
  B.equal (Encode.decode_bigint (Encode.encode_bigint ~width v)) v

let test_encode_rejects () =
  Alcotest.check_raises "too wide" (Invalid_argument "Encode.encode_int: value too wide")
    (fun () -> ignore (Encode.encode_int ~width:3 9))

let prop_entries_roundtrip l =
  let k = 7 in
  let entries = Array.of_list (List.map (fun v -> B.of_int (abs v mod 128)) l) in
  let decoded = Encode.decode_entries ~k (Encode.encode_entries ~k entries) in
  Array.length decoded = Array.length entries
  && Array.for_all2 B.equal decoded entries

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_first_half () =
  let p = Partition.first_half 10 in
  Alcotest.(check bool) "even" true (Partition.is_even p);
  Alcotest.(check int) "agent of 0" 1 (Partition.agent_of p 0);
  Alcotest.(check int) "agent of 9" 2 (Partition.agent_of p 9);
  let a1, a2 = Partition.halves p in
  Alcotest.(check (array int)) "a1" [| 0; 1; 2; 3; 4 |] a1;
  Alcotest.(check (array int)) "a2" [| 5; 6; 7; 8; 9 |] a2

let prop_random_even seed =
  let g = Prng.create seed in
  let p = Partition.random_even g 24 in
  Partition.is_even p

let prop_complement_swaps seed =
  let g = Prng.create seed in
  let p = Partition.random_even g 16 in
  let c = Partition.complement p in
  List.for_all
    (fun i -> Partition.agent_of p i <> Partition.agent_of c i)
    (List.init 16 (fun i -> i))

let prop_permutation_preserves_evenness seed =
  let g = Prng.create seed in
  let p = Partition.random_even g 12 in
  let perm = Array.init 12 (fun i -> i) in
  Prng.shuffle g perm;
  Partition.is_even (Partition.apply_permutation p perm)

let test_matrix_indexing () =
  (* column-major: index ~n ~row ~col = col*n + row *)
  Alcotest.(check int) "0,0" 0 (Partition.index ~n:4 ~row:0 ~col:0);
  Alcotest.(check int) "3,0" 3 (Partition.index ~n:4 ~row:3 ~col:0);
  Alcotest.(check int) "0,1" 4 (Partition.index ~n:4 ~row:0 ~col:1);
  let row, col = Partition.row_col ~n:4 7 in
  Alcotest.(check (pair int int)) "row_col" (3, 1) (row, col)

(* ------------------------------------------------------------------ *)
(* Protocol channel                                                    *)
(* ------------------------------------------------------------------ *)

let test_channel_counts () =
  let p =
    {
      Protocol.name = "demo";
      run =
        (fun ch x y ->
          let bx = Protocol.send ch (Bv.of_int 5 x) in
          let _ = Protocol.send_bit ch true in
          let v = Encode.decode_int bx in
          v = y);
    }
  in
  let out, bits = Protocol.execute p 12 12 in
  Alcotest.(check bool) "output" true out;
  Alcotest.(check int) "bits" 6 bits;
  Alcotest.(check int) "worst case" 6
    (Protocol.worst_case_cost p [ 1; 2; 3 ] [ 0; 7 ])

(* Regression: an empty side of the rectangle used to fold to cost 0,
   which read downstream as a free protocol. *)
let test_worst_case_empty_inputs () =
  let p = { Protocol.name = "id"; run = (fun _ x y -> x = y) } in
  let expect = Invalid_argument "Protocol.worst_case_cost: empty input list" in
  Alcotest.check_raises "empty xs" expect (fun () ->
      ignore (Protocol.worst_case_cost p [] [ 1; 2 ]));
  Alcotest.check_raises "empty ys" expect (fun () ->
      ignore (Protocol.worst_case_cost p [ 1; 2 ] []))

let test_check_correct () =
  let eq_proto =
    {
      Protocol.name = "eq";
      run =
        (fun ch x y ->
          let x' = Protocol.send_int ch ~width:4 x in
          x' = y);
    }
  in
  let inputs = List.init 8 (fun i -> i) in
  Alcotest.(check bool) "correct" true
    (Protocol.check_correct eq_proto ~spec:( = ) inputs inputs = None);
  let broken =
    { Protocol.name = "broken"; run = (fun _ x y -> x = y || x = 3) }
  in
  (match Protocol.check_correct broken ~spec:( = ) inputs inputs with
  | Some ((3, _), true, false) -> ()
  | _ -> Alcotest.fail "expected counterexample at x=3")

(* ------------------------------------------------------------------ *)
(* Truth matrix                                                        *)
(* ------------------------------------------------------------------ *)

let tm_and =
  (* f(x, y) = x && y on booleans: a 2x2 matrix with one 1 *)
  Tm.build [ false; true ] [ false; true ] (fun x y -> x && y)

let test_truth_matrix_basics () =
  Alcotest.(check int) "rows" 2 (Tm.rows tm_and);
  Alcotest.(check int) "ones" 1 (Tm.count_ones tm_and);
  Alcotest.(check int) "zeros" 3 (Tm.count_zeros tm_and);
  Alcotest.(check bool) "value" true (Tm.get tm_and 1 1);
  Alcotest.(check (float 1e-9)) "density" 0.25 (Tm.density tm_and)

let test_truth_matrix_restrict () =
  let tm = Tm.build [ 0; 1; 2 ] [ 0; 1; 2 ] (fun x y -> x <= y) in
  let r = Tm.restrict tm [| 1; 2 |] [| 0 |] in
  Alcotest.(check int) "rows" 2 (Tm.rows r);
  Alcotest.(check int) "ones" 0 (Tm.count_ones r)

(* ------------------------------------------------------------------ *)
(* Rectangles: exact search vs brute force oracle                      *)
(* ------------------------------------------------------------------ *)

let brute_force_max_one_rect m =
  (* over all row subsets (small!) *)
  let best = ref 0 in
  Commx_util.Combi.iter_subsets (Bm.rows m) (fun rows_l ->
      match rows_l with
      | [] -> ()
      | rows_l ->
          let rows_sel = Array.of_list rows_l in
          let cols = Rect.count_ones_rectangle_rows m rows_sel in
          best := max !best (Array.length rows_sel * Array.length cols));
  !best

let gen_small_bitmat =
  QCheck.Gen.(
    int_range 1 6 >>= fun r ->
    int_range 1 6 >>= fun c ->
    int_range 0 10000 >>= fun seed ->
    int_range 1 9 >>= fun tenths ->
    return (r, c, seed, tenths))

let arb_small_bitmat =
  QCheck.make
    ~print:(fun (r, c, s, t) -> Printf.sprintf "%dx%d seed=%d dens=%d" r c s t)
    gen_small_bitmat

let mat_of (r, c, seed, tenths) =
  let g = Prng.create seed in
  Bm.init r c (fun _ _ -> Prng.int g 10 < tenths)

let prop_exact_rect_matches_brute params =
  let m = mat_of params in
  let rect = Rect.max_one_rectangle_exact m in
  Rect.area rect = brute_force_max_one_rect m

let prop_exact_rect_is_all_ones params =
  let m = mat_of params in
  let rect = Rect.max_one_rectangle_exact m in
  Rect.area rect = 0 || Rect.is_monochromatic m rect = Some true

let prop_greedy_never_beats_exact params =
  let m = mat_of params in
  let g = Prng.create 99 in
  let greedy = Rect.max_one_rectangle_greedy g m in
  let exact = Rect.max_one_rectangle_exact m in
  Rect.area greedy <= Rect.area exact
  && (Rect.area greedy = 0 || Rect.is_monochromatic m greedy = Some true)

let prop_min_rows_respected params =
  let m = mat_of params in
  if Bm.rows m < 2 then true
  else begin
    let rect = Rect.max_one_rectangle_exact ~min_rows:2 m in
    Rect.area rect = 0 || Array.length rect.Rect.row_set >= 2
  end

let test_rect_known () =
  (* all-ones 3x4: max rectangle is everything *)
  let m = Bm.init 3 4 (fun _ _ -> true) in
  Alcotest.(check int) "all ones" 12 (Rect.area (Rect.max_one_rectangle_exact m));
  (* identity: max 1-rectangle is a single cell *)
  let id = Bm.identity 5 in
  Alcotest.(check int) "identity" 1 (Rect.area (Rect.max_one_rectangle_exact id));
  (* zero rectangle of identity: the off-diagonal 2x2 blocks and
     bigger: best is floor(n/2)*ceil... for I5 complement: known best
     is 2x3 or 3x2 = 6 *)
  Alcotest.(check int) "identity zeros" 6
    (Rect.area (Rect.max_zero_rectangle_exact id))

let test_cover_bound_identity () =
  (* For EQ on m bits the partition bound is >= 2^m (ones alone) *)
  let m = Bm.identity 16 in
  let bound = Rect.cover_lower_bound m ~exact:true in
  Alcotest.(check bool) "identity >= 4 bits" true (bound >= 4.0)

(* ------------------------------------------------------------------ *)
(* Fooling sets                                                        *)
(* ------------------------------------------------------------------ *)

let eq_tm m = Tm.build (List.init m (fun i -> i)) (List.init m (fun i -> i)) ( = )

let test_fooling_identity () =
  let tm = eq_tm 8 in
  let diag = Fooling.diagonal_candidate tm in
  Alcotest.(check int) "diagonal size" 8 (List.length diag);
  Alcotest.(check bool) "diagonal valid" true (Fooling.is_fooling_set tm diag);
  let g = Prng.create 5 in
  let found = Fooling.greedy_randomized g tm in
  Alcotest.(check int) "greedy finds max" 8 (List.length found)

let test_fooling_rejects () =
  (* all-ones matrix: no two pairs can coexist *)
  let tm = Tm.build [ 0; 1 ] [ 0; 1 ] (fun _ _ -> true) in
  Alcotest.(check bool) "two ones in all-ones invalid" false
    (Fooling.is_fooling_set tm [ (0, 0); (1, 1) ]);
  Alcotest.(check bool) "singleton fine" true
    (Fooling.is_fooling_set tm [ (0, 0) ])

let test_identity_embedding () =
  (* EQ: the whole diagonal is an identity embedding *)
  let tm = eq_tm 6 in
  let e = Fooling.largest_identity_embedding tm in
  Alcotest.(check int) "EQ full diagonal" 6 (List.length e);
  Alcotest.(check bool) "valid" true (Fooling.is_identity_embedding tm e);
  (* all-ones: at most one pair *)
  let ones = Tm.build [ 0; 1 ] [ 0; 1 ] (fun _ _ -> true) in
  Alcotest.(check int) "all-ones" 1
    (List.length (Fooling.largest_identity_embedding ones));
  (* tiny singularity (2x2 one-bit): the identity embedding is small —
     the Vuillemin obstruction the paper describes *)
  let sing_inputs = List.init 4 (fun v -> (v lsr 1, v land 1)) in
  let sing =
    Tm.build sing_inputs sing_inputs (fun (a, c) (b, d) ->
        (a * d) - (b * c) = 0)
  in
  let se = Fooling.largest_identity_embedding sing in
  Alcotest.(check bool) "valid on singularity" true
    (Fooling.is_identity_embedding sing se);
  Alcotest.(check bool)
    (Printf.sprintf "small (%d < 4)" (List.length se))
    true
    (List.length se < 4)

let prop_identity_embedding_is_fooling params =
  let m = mat_of params in
  let tm =
    Tm.build
      (List.init (Bm.rows m) (fun i -> i))
      (List.init (Bm.cols m) (fun j -> j))
      (fun i j -> Bm.get m i j)
  in
  let e = Fooling.largest_identity_embedding tm in
  Fooling.is_identity_embedding tm e && Fooling.is_fooling_set tm e

let prop_greedy_fooling_valid params =
  let m = mat_of params in
  let tm =
    Tm.build
      (List.init (Bm.rows m) (fun i -> i))
      (List.init (Bm.cols m) (fun j -> j))
      (fun i j -> Bm.get m i j)
  in
  Fooling.is_fooling_set tm (Fooling.greedy tm)

(* ------------------------------------------------------------------ *)
(* Protocol trees and Yao's structure theorem                          *)
(* ------------------------------------------------------------------ *)

module Ptree = Commx_comm.Ptree

(* A hand-built 2-bit protocol for GT on 2-bit numbers:
   Alice sends her high bit, Bob answers x > y. *)
let gt_tree : (int, int) Ptree.t =
  (* Alice reveals both bits of x, Bob answers x > y. *)
  let bit i x = x lsr i land 1 = 1 in
  Ptree.Alice
    ( bit 1,
      Ptree.Alice
        ( bit 0,
          Ptree.Bob ((fun y -> 0 > y), Ptree.Answer false, Ptree.Answer true),
          Ptree.Bob ((fun y -> 1 > y), Ptree.Answer false, Ptree.Answer true) ),
      Ptree.Alice
        ( bit 0,
          Ptree.Bob ((fun y -> 2 > y), Ptree.Answer false, Ptree.Answer true),
          Ptree.Bob ((fun y -> 3 > y), Ptree.Answer false, Ptree.Answer true) ) )

let test_ptree_eval_cost () =
  Alcotest.(check bool) "3 > 2" true (Ptree.eval gt_tree 3 2);
  Alcotest.(check bool) "1 > 2" false (Ptree.eval gt_tree 1 2);
  Alcotest.(check int) "cost" 3 (Ptree.cost gt_tree);
  Alcotest.(check int) "leaves" 8 (Ptree.leaves gt_tree);
  let inputs = [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "correct" true
    (Ptree.correct_on gt_tree ~spec:( > ) inputs inputs);
  Alcotest.(check int) "transcript length" 3
    (Bv.length (Ptree.transcript gt_tree 2 1))

let test_ptree_yao_structure () =
  let inputs = [ 0; 1; 2; 3 ] in
  let tm = Tm.build inputs inputs ( > ) in
  let ind = Ptree.induced_partition gt_tree tm in
  Alcotest.(check bool) "rectangles cover disjointly" true
    ind.Ptree.disjoint_cover;
  Alcotest.(check bool) "monochromatic (protocol is correct)" true
    ind.Ptree.monochromatic;
  Alcotest.(check bool) "count <= 2^cost" true
    (ind.Ptree.count <= 1 lsl Ptree.cost gt_tree);
  Alcotest.(check bool) "yao bound" true (Ptree.yao_bound_holds gt_tree tm)

let test_ptree_incorrect_protocol_not_mono () =
  (* A protocol that answers without enough communication cannot have
     all leaves monochromatic for EQ. *)
  let cheap : (int, int) Ptree.t =
    Ptree.Alice ((fun x -> x land 1 = 1), Ptree.Answer false, Ptree.Answer true)
  in
  let inputs = [ 0; 1; 2; 3 ] in
  let tm = Tm.build inputs inputs ( = ) in
  let ind = Ptree.induced_partition cheap tm in
  Alcotest.(check bool) "covers" true ind.Ptree.disjoint_cover;
  Alcotest.(check bool) "NOT monochromatic" false ind.Ptree.monochromatic

let prop_ptree_alice_sends_all seed =
  (* the generic one-way tree computes EQ against a fixed target *)
  let bits = 4 in
  let g = Prng.create seed in
  let target = Prng.int g 16 in
  let tree =
    Ptree.alice_sends_all ~bits (fun x -> Bv.of_int bits x)
  in
  let ys =
    List.init 16 (fun y ->
        (y, fun (received : Bv.t) -> Encode.decode_int received = y))
  in
  List.for_all
    (fun x ->
      List.for_all
        (fun ((y, _) as bob) -> Ptree.eval tree x bob = (x = y))
        ys)
    [ 0; 3; 7; target; 15 ]
  && Ptree.cost tree = bits + 1

let test_ptree_eq_needs_full_cost () =
  (* For EQ on m bits, any correct tree has >= 2^m leaves that answer
     true... we verify the contrapositive on the full one-way tree:
     rectangle count equals the number of reachable transcripts and the
     Yao bound is tight-ish. *)
  let bits = 3 in
  let tree = Ptree.alice_sends_all ~bits (fun x -> Bv.of_int bits x) in
  let ys =
    List.init 8 (fun y ->
        (y, fun (received : Bv.t) -> Encode.decode_int received = y))
  in
  let xs = List.init 8 (fun x -> x) in
  let tm =
    Tm.build xs ys (fun x (y, _) -> x = y)
  in
  let ind = Ptree.induced_partition tree tm in
  Alcotest.(check bool) "yao" true (ind.Ptree.count <= 1 lsl Ptree.cost tree);
  Alcotest.(check bool) "mono" true ind.Ptree.monochromatic;
  (* at least 2^bits distinct transcripts reach distinct rectangles *)
  Alcotest.(check bool) "enough rectangles" true (ind.Ptree.count >= 1 lsl bits)

(* ------------------------------------------------------------------ *)
(* Discrepancy and one-way complexity                                  *)
(* ------------------------------------------------------------------ *)

module Disc = Commx_comm.Discrepancy

let test_discrepancy_known () =
  (* monochromatic: the whole matrix is the witness, disc = 1 *)
  let ones = Bm.init 3 3 (fun _ _ -> true) in
  Alcotest.(check (float 1e-9)) "mono" 1.0 (Disc.discrepancy_exact ones);
  (* identity 2x2: the most unbalanced rectangle is a single cell
     (any 2-cell rectangle mixes a one and a zero) *)
  let i2 = Bm.identity 2 in
  Alcotest.(check (float 1e-9)) "I2" 0.25 (Disc.discrepancy_exact i2);
  (* inner product has low discrepancy: for m = 3 it is well below EQ's *)
  let ip = Disc.inner_product_matrix ~m:3 in
  let eq = Bm.identity 8 in
  Alcotest.(check bool) "IP < EQ ones-side" true
    (Disc.discrepancy_exact ip < Disc.discrepancy_exact eq +. 1.0);
  (* the classic bound: disc(IP_m) <= 2^(-m/2); for m=3, <= 0.354 *)
  Alcotest.(check bool)
    (Printf.sprintf "IP disc %.3f small" (Disc.discrepancy_exact ip))
    true
    (Disc.discrepancy_exact ip <= 0.375)

let test_randomized_lower_bound () =
  let ip = Disc.inner_product_matrix ~m:4 in
  let lb = Disc.randomized_lower_bound ip ~epsilon:0.1 in
  Alcotest.(check bool) (Printf.sprintf "IP4 lb %.2f > 1.5" lb) true (lb > 1.5);
  (* monochromatic functions need nothing *)
  Alcotest.(check (float 1e-9)) "mono 0" 0.0
    (Disc.randomized_lower_bound (Bm.init 2 2 (fun _ _ -> true)) ~epsilon:0.1)

let test_one_way () =
  (* EQ on n values: all rows distinct -> ceil log2 n *)
  Alcotest.(check int) "EQ8" 3 (Disc.one_way_complexity (Bm.identity 8));
  Alcotest.(check int) "EQ5" 3 (Disc.one_way_complexity (Bm.identity 5));
  (* constant function: 0 *)
  Alcotest.(check int) "const" 0
    (Disc.one_way_complexity (Bm.init 4 4 (fun _ _ -> true)));
  (* two distinct rows: 1 bit *)
  let m = Bm.init 4 3 (fun i _ -> i mod 2 = 0) in
  Alcotest.(check int) "two classes" 1 (Disc.one_way_complexity m)

let prop_one_way_ge_exact params =
  (* one-way is a restriction: C_oneway >= C (two-way exact) - the
     answer-bit convention differs by at most 1 *)
  let m = mat_of params in
  Disc.one_way_complexity m + 1 >= Commx_comm.Exact_cc.complexity m - 1

let prop_discrepancy_bounds params =
  let m = mat_of params in
  let d = Disc.discrepancy_exact m in
  d >= 0.0 && d <= 1.0
  &&
  (* a single monochromatic cell always witnesses >= 1/(r*c) *)
  (Bm.rows m * Bm.cols m = 0
  || d >= 1.0 /. float_of_int (Bm.rows m * Bm.cols m) -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Covers and partitions                                               *)
(* ------------------------------------------------------------------ *)

module Cover = Commx_comm.Cover

let gen_tiny_bitmat =
  QCheck.Gen.(
    int_range 1 4 >>= fun r ->
    int_range 1 4 >>= fun c ->
    int_range 0 10000 >>= fun seed ->
    int_range 1 9 >>= fun tenths ->
    return (r, c, seed, tenths))

let arb_tiny_bitmat =
  QCheck.make
    ~print:(fun (r, c, s, t) -> Printf.sprintf "%dx%d seed=%d dens=%d" r c s t)
    gen_tiny_bitmat

let test_cover_maximal_identity () =
  (* identity 4x4: maximal 1-rectangles are the 4 diagonal cells *)
  let rects = Cover.maximal_one_rectangles (Bm.identity 4) in
  Alcotest.(check int) "count" 4 (List.length rects);
  List.iter
    (fun r -> Alcotest.(check int) "unit cells" 1 (Rect.area r))
    rects;
  (* all-ones 3x2 has exactly one maximal rectangle: everything *)
  let all = Bm.init 3 2 (fun _ _ -> true) in
  Alcotest.(check int) "all-ones" 1
    (List.length (Cover.maximal_one_rectangles all))

let test_cover_known () =
  (* identity 4x4: min 1-cover = 4 (fooling set!), min 0-cover of the
     off-diagonal: 0s of I4 can be covered by 4 rectangles
     (top-right/bottom-left split recursively) *)
  let i4 = Bm.identity 4 in
  Alcotest.(check int) "N1(EQ4)" 4 (Cover.min_one_cover i4);
  let n0 = Cover.min_zero_cover i4 in
  Alcotest.(check bool) (Printf.sprintf "N0(EQ4) = %d in [2,4]" n0) true
    (n0 >= 2 && n0 <= 4);
  (* all ones: a single rectangle *)
  Alcotest.(check int) "all ones" 1
    (Cover.min_one_cover (Bm.init 3 3 (fun _ _ -> true)));
  Alcotest.(check int) "no ones" 0 (Cover.min_one_cover (Bm.create 2 2))

let test_cover_eq3_pinned () =
  (* Hand-computed: I3's six zeros tile into exactly three 2-cell
     rectangles ({r0,r1}x{c2}, {r1,r2}x{c0}, {r0,r2}x{c1}) and the ones
     are three isolated cells, so d(EQ_3) = 6, N0 = 3, N1 = 3. *)
  let i3 = Bm.identity 3 in
  Alcotest.(check int) "d(EQ3)" 6 (Cover.min_partition i3);
  Alcotest.(check int) "N0(EQ3)" 3 (Cover.min_zero_cover i3);
  Alcotest.(check int) "N1(EQ3)" 3 (Cover.min_one_cover i3)

let test_partition_vs_covers () =
  (* d(EQ_3): identity 3x3 needs 3 one-parts and the zeros need
     several disjoint parts *)
  let i3 = Bm.identity 3 in
  let d = Cover.min_partition i3 in
  let n1 = Cover.min_one_cover i3 and n0 = Cover.min_zero_cover i3 in
  Alcotest.(check bool)
    (Printf.sprintf "d=%d >= n1+n0 = %d+%d" d n1 n0)
    true
    (d >= n1 + n0);
  (* monochromatic matrix: d = 1 *)
  Alcotest.(check int) "mono" 1 (Cover.min_partition (Bm.init 2 3 (fun _ _ -> true)))

let prop_yao_inequalities params =
  let r, c, seed, tenths = params in
  let g = Prng.create seed in
  let m = Bm.init r c (fun _ _ -> Prng.int g 10 < tenths) in
  Cover.yao_inequality_holds m

let prop_partition_ge_covers params =
  let r, c, seed, tenths = params in
  let g = Prng.create seed in
  let m = Bm.init r c (fun _ _ -> Prng.int g 10 < tenths) in
  let ones_exist = Bm.count_ones m > 0 in
  let zeros_exist = Bm.count_ones m < r * c in
  let d = Cover.min_partition m in
  (not (ones_exist && zeros_exist)) || d >= 2

(* ------------------------------------------------------------------ *)
(* Exact deterministic communication complexity                        *)
(* ------------------------------------------------------------------ *)

module Exact_cc = Commx_comm.Exact_cc

let test_exact_cc_trivial_cases () =
  (* monochromatic: 0 bits *)
  let ones = Bm.init 4 4 (fun _ _ -> true) in
  Alcotest.(check int) "all ones" 0 (Exact_cc.complexity ones);
  let zeros = Bm.create 3 5 in
  Alcotest.(check int) "all zeros" 0 (Exact_cc.complexity zeros);
  (* one row, mixed: Bob announces, 1 bit *)
  let row = Bm.init 1 4 (fun _ j -> j mod 2 = 0) in
  Alcotest.(check int) "single mixed row" 1 (Exact_cc.complexity row)

let test_exact_cc_equality () =
  (* EQ on 2-bit inputs: identity 4x4; known CC = 3 (2 bits + answer) *)
  Alcotest.(check int) "EQ 4x4" 3 (Exact_cc.complexity (Bm.identity 4));
  (* EQ on 3 values *)
  Alcotest.(check int) "EQ 3x3" 3 (Exact_cc.complexity (Bm.identity 3));
  (* EQ on 2 values: 1 bit + answer = 2 *)
  Alcotest.(check int) "EQ 2x2" 2 (Exact_cc.complexity (Bm.identity 2))

let test_exact_cc_singularity () =
  (* singularity of 2x2 one-bit matrices: the 4x4 truth matrix of E2;
     certificates force >= 3, the trivial protocol achieves 3, so the
     exact value must be 3 *)
  let inputs = List.init 4 (fun v -> (v lsr 1, v land 1)) in
  let tm =
    Commx_comm.Truth_matrix.build inputs inputs (fun (a, c) (b, d) ->
        (a * d) - (b * c) = 0)
  in
  Alcotest.(check int) "singularity 1-bit" 3 (Exact_cc.complexity_tm tm)

let test_exact_cc_gt () =
  (* GT on {0..3}: upper-triangular-complement matrix; CC(GT_m) is
     known to be log m + O(1); for 4 values the exact search should
     find 3 *)
  let m = Bm.init 4 4 (fun i j -> i > j) in
  Alcotest.(check int) "GT 4x4" 3 (Exact_cc.complexity m)

let prop_exact_cc_sandwiched params =
  let m = mat_of params in
  Exact_cc.optimal_is_sandwiched m

let prop_exact_cc_transpose params =
  (* swapping the agents cannot change the complexity *)
  let m = mat_of params in
  Exact_cc.complexity m = Exact_cc.complexity (Bm.transpose m)

let test_exact_cc_raised_cap () =
  (* The packed engine accepts boards up to 20x20 (PR 4 raised the
     seed's 12 to 16; the lower-bound portfolio raised 16 to 20).  EQ
     on m values costs ceil(log2 m) + 1 bits. *)
  Alcotest.(check int) "EQ 14x14" 5 (Exact_cc.complexity (Bm.identity 14));
  Alcotest.(check int) "EQ 16x16" 5 (Exact_cc.complexity (Bm.identity 16));
  Alcotest.(check int) "EQ 18x18" 6 (Exact_cc.complexity (Bm.identity 18));
  Alcotest.(check int) "EQ 20x20" 6 (Exact_cc.complexity (Bm.identity 20));
  let gt14 = Bm.init 14 14 (fun i j -> i > j) in
  Alcotest.(check int) "GT 14x14" 5 (Exact_cc.complexity gt14);
  let gt20 = Bm.init 20 20 (fun i j -> i > j) in
  Alcotest.(check int) "GT 20x20" 6 (Exact_cc.complexity gt20)

let test_exact_cc_too_large () =
  (* GT on 21 values survives canonicalization intact (all rows and
     columns distinct), so it must be rejected — with the offending
     POST-canonicalization dimensions in the error. *)
  let m = Bm.init 21 21 (fun i j -> i > j) in
  Alcotest.check_raises "21x21 rejected"
    (Exact_cc.Too_large { rows = 21; cols = 21; limit = 20 }) (fun () ->
      ignore (Exact_cc.complexity m));
  Alcotest.(check (pair int int))
    "canonical_dims sees what Too_large judges" (21, 21)
    (Exact_cc.canonical_dims m)

let test_exact_cc_cap_post_canonicalization () =
  (* 24x24 raw, but rows/cols repeat with period 4: canonicalizes to
     the 4x4 identity, so it must be ACCEPTED despite 24 > 20 — the
     cap applies to the canonical board, not the input.  CC is
     unchanged by duplicate-line collapse. *)
  let m = Bm.init 24 24 (fun i j -> i mod 4 = j mod 4) in
  Alcotest.(check int) "24x24 with period-4 lines" 3 (Exact_cc.complexity m);
  let _, st = Exact_cc.search m in
  Alcotest.(check int) "canonical rows" 4 st.Exact_cc.canon_rows;
  Alcotest.(check int) "canonical cols" 4 st.Exact_cc.canon_cols

let test_exact_cc_incumbent_sharing_regression () =
  (* PR 4's pooled driver gave each strided group a PRIVATE incumbent,
     so a cheap protocol found by one group never tightened the
     others' pruning windows and --jobs N explored strictly more nodes
     than --jobs 1 on prune-heavy boards.  The fix exchanges
     incumbents at the round barriers; [share_incumbent = false] keeps
     the old behavior as an ablation.  This sparse 12x12 board (witness
     type: the exact value equals the certified lower bound, so search
     ends on the first cheap protocol found) has a provable gap between
     the two.  Node counts in deterministic mode are a pure function of
     the move list, so the jobs-invariance checks are exact. *)
  let g = Prng.create 700648 in
  let m = Bm.init 12 12 (fun _ _ -> Prng.float g < 0.18) in
  let v_seq, st_seq = Exact_cc.search m in
  let run ~share_incumbent jobs =
    let config = { Exact_cc.default_config with share_incumbent } in
    Commx_util.Pool.with_pool ~jobs (fun pool ->
        Exact_cc.search ~config ~pool ~deterministic:true m)
  in
  let v_sh1, st_sh1 = run ~share_incumbent:true 1 in
  let v_sh3, st_sh3 = run ~share_incumbent:true 3 in
  let v_iso, st_iso = run ~share_incumbent:false 3 in
  Alcotest.(check int) "shared value = sequential" v_seq v_sh1;
  Alcotest.(check int) "shared value jobs-invariant" v_sh1 v_sh3;
  Alcotest.(check int) "isolated value agrees too" v_sh1 v_iso;
  Alcotest.(check int) "shared nodes jobs-invariant" st_sh1.Exact_cc.nodes
    st_sh3.Exact_cc.nodes;
  Alcotest.(check bool) "sequential searched" true (st_seq.Exact_cc.nodes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "sharing prunes strictly better (%d < %d)"
       st_sh3.Exact_cc.nodes st_iso.Exact_cc.nodes)
    true
    (st_sh3.Exact_cc.nodes < st_iso.Exact_cc.nodes)

let test_exact_cc_warm_table_deadline () =
  (* The cooperative cancel poll counts subproblem VISITS, table hits
     included — so a search that mostly replays a warm table still
     observes its deadline (the pre-fix poll only ticked on node
     expansions and a hit-dominated search could overrun its budget
     unboundedly).  Two behaviors pin the design: (1) a FULLY warmed
     table holds an exact root entry, so even a pre-fired token loses
     the race and the value returns normally with zero expansions;
     (2) against a cold table the same pre-fired token stops the
     search within one poll interval, the partial entries persist in
     the caller-owned table, and a repeat attempt resumes deeper. *)
  let g = Prng.create 9003 in
  let m = Bm.init 9 9 (fun _ _ -> Prng.float g < 0.18) in
  let expired () =
    Commx_util.Pool.Token.create ~deadline:(Commx_util.Clock.now_s () -. 1.0) ()
  in
  (* (2) cold table, pre-fired token: Timed_out, bounded work *)
  let cold = Commx_util.Txtable.create () in
  (match Exact_cc.search ~table:cold ~cancel:(expired ()) m with
  | _ -> Alcotest.fail "expected Timed_out against a cold table"
  | exception Exact_cc.Timed_out { lower; upper; nodes } ->
      Alcotest.(check bool) "bounds sane" true (0 <= lower && lower <= upper);
      Alcotest.(check bool) "stopped within a poll interval" true
        (nodes <= 2048));
  (* the resumed attempt replays memoized subproblems as table HITS —
     exactly the traffic the old expansion-only counter never polled —
     and must still observe its deadline within one interval *)
  (match Exact_cc.search ~table:cold ~cancel:(expired ()) m with
  | v, _ -> Alcotest.failf "expected Timed_out on resume, got %d" v
  | exception Exact_cc.Timed_out { nodes; _ } ->
      Alcotest.(check bool) "hit-dominated resume still stops" true
        (nodes <= 2048));
  (* (1) fully warmed table: the exact root entry wins the race *)
  let warm = Commx_util.Txtable.create () in
  let v_full, _ = Exact_cc.search ~table:warm m in
  let v_hit, st_hit = Exact_cc.search ~table:warm ~cancel:(expired ()) m in
  Alcotest.(check int) "warm value" v_full v_hit;
  Alcotest.(check int) "zero expansions against warm table" 0
    st_hit.Exact_cc.nodes

let gen_ref_bitmat =
  (* The reference engine is the raw exponential recursion — no table,
     no pruning — so its inputs stay at <= 5x5 where the full game
     tree is still cheap. *)
  QCheck.Gen.(
    int_range 1 5 >>= fun r ->
    int_range 1 5 >>= fun c ->
    int_range 0 10000 >>= fun seed ->
    int_range 1 9 >>= fun tenths ->
    return (r, c, seed, tenths))

let arb_ref_bitmat =
  QCheck.make
    ~print:(fun (r, c, s, t) -> Printf.sprintf "%dx%d seed=%d dens=%d" r c s t)
    gen_ref_bitmat

let prop_exact_cc_reference_agrees params =
  (* The fully de-optimized engine (no table, no canonicalization, no
     pruning) is the executable spec: the optimized default must
     compute the same value on every input. *)
  let m = mat_of params in
  let v_fast, _ = Exact_cc.search m in
  let v_ref, st = Exact_cc.search ~config:Exact_cc.reference_config m in
  v_fast = v_ref && st.Exact_cc.table_hits = 0

let gen_medium_bitmat =
  QCheck.Gen.(
    int_range 1 8 >>= fun r ->
    int_range 1 8 >>= fun c ->
    int_range 0 10000 >>= fun seed ->
    int_range 1 9 >>= fun tenths ->
    return (r, c, seed, tenths))

let arb_medium_bitmat =
  QCheck.make
    ~print:(fun (r, c, s, t) -> Printf.sprintf "%dx%d seed=%d dens=%d" r c s t)
    gen_medium_bitmat

let prop_exact_cc_toggle_invariance params =
  (* Each optimization toggled off individually (keeping the table so
     8x8 stays fast): the computed value never changes, only the work
     counters do. *)
  let m = mat_of params in
  let v0, _ = Exact_cc.search m in
  List.for_all
    (fun config -> fst (Exact_cc.search ~config m) = v0)
    Exact_cc.
      [ { default_config with canonicalize = false };
        { default_config with prune = false };
        { default_config with portfolio = false };
        { default_config with share_incumbent = false };
        { default_config with table_budget = Some 64 } ]

let prop_exact_cc_monotone_submatrix params =
  (* restricting to a submatrix can only decrease the complexity *)
  let m = mat_of params in
  let nr = Bm.rows m and nc = Bm.cols m in
  if nr < 2 || nc < 2 then true
  else begin
    let sub =
      Bm.submatrix m
        (Array.init (nr - 1) (fun i -> i))
        (Array.init (nc - 1) (fun j -> j))
    in
    Exact_cc.complexity sub <= Exact_cc.complexity m
  end

(* ------------------------------------------------------------------ *)
(* Rank bounds                                                         *)
(* ------------------------------------------------------------------ *)

let test_rank_bounds_identity () =
  let tm = eq_tm 16 in
  let report = Rank_bound.analyze tm ~exact_rect:true in
  Alcotest.(check int) "Q rank" 16 report.Rank_bound.rational;
  Alcotest.(check int) "GF2 rank" 16 report.Rank_bound.gf2;
  Alcotest.(check (float 1e-6)) "log rank" 4.0 report.Rank_bound.log_rank;
  Alcotest.(check int) "fooling" 16 report.Rank_bound.fooling

let test_rank_gf2_vs_q () =
  (* The 2x2 all-ones plus identity trick: matrix [[0,1],[1,0]] has
     GF(2) rank 2 and Q rank 2; a case where they differ: the 3x3
     "parity" matrix J - I over GF(2) has rank... take [[1,1],[1,1]]:
     rank 1 in both.  A genuine gap: 4x4 incidence of GF(2)-singular
     but Q-nonsingular:
     [[1,1,0],[1,0,1],[0,1,1]] is GF(2)-singular (rows sum to 0) but
     has determinant -2 over Q. *)
  let m =
    Bm.init 3 3 (fun i j ->
        List.mem (i, j) [ (0, 0); (0, 1); (1, 0); (1, 2); (2, 1); (2, 2) ])
  in
  Alcotest.(check int) "gf2" 2 (Rank_bound.gf2_rank m);
  Alcotest.(check int) "q" 3 (Rank_bound.rational_rank m)

let prop_gf2_le_q params =
  let m = mat_of params in
  Rank_bound.gf2_rank m <= Rank_bound.rational_rank m

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "comm"
    [ ( "encode",
        [ Alcotest.test_case "bits_for_range" `Quick test_bits_for_range;
          Alcotest.test_case "rejects wide values" `Quick test_encode_rejects;
          qtest "int roundtrip" QCheck.(pair int int) prop_int_roundtrip;
          qtest "bigint roundtrip" QCheck.int prop_bigint_roundtrip;
          qtest "entries roundtrip" QCheck.(list int) prop_entries_roundtrip ] );
      ( "partition",
        [ Alcotest.test_case "first half" `Quick test_first_half;
          Alcotest.test_case "matrix indexing" `Quick test_matrix_indexing;
          qtest "random even is even" QCheck.small_int prop_random_even;
          qtest "complement swaps" QCheck.small_int prop_complement_swaps;
          qtest "permutation keeps evenness" QCheck.small_int
            prop_permutation_preserves_evenness ] );
      ( "protocol",
        [ Alcotest.test_case "channel counts bits" `Quick test_channel_counts;
          Alcotest.test_case "worst case rejects empty inputs" `Quick
            test_worst_case_empty_inputs;
          Alcotest.test_case "correctness checker" `Quick test_check_correct ] );
      ( "truth-matrix",
        [ Alcotest.test_case "basics" `Quick test_truth_matrix_basics;
          Alcotest.test_case "restrict" `Quick test_truth_matrix_restrict ] );
      ( "rectangle",
        [ Alcotest.test_case "known maxima" `Quick test_rect_known;
          Alcotest.test_case "identity cover bound" `Quick
            test_cover_bound_identity;
          qtest "exact = brute force" arb_small_bitmat
            prop_exact_rect_matches_brute;
          qtest "exact rect is monochromatic" arb_small_bitmat
            prop_exact_rect_is_all_ones;
          qtest "greedy <= exact and valid" arb_small_bitmat
            prop_greedy_never_beats_exact;
          qtest "min_rows respected" arb_small_bitmat prop_min_rows_respected
        ] );
      ( "fooling",
        [ Alcotest.test_case "identity diagonal" `Quick test_fooling_identity;
          Alcotest.test_case "validity checks" `Quick test_fooling_rejects;
          Alcotest.test_case "identity embeddings" `Quick
            test_identity_embedding;
          qtest "embedding is a fooling set" ~count:100 arb_small_bitmat
            prop_identity_embedding_is_fooling;
          qtest "greedy always valid" arb_small_bitmat prop_greedy_fooling_valid
        ] );
      ( "ptree",
        [ Alcotest.test_case "eval/cost/transcript" `Quick test_ptree_eval_cost;
          Alcotest.test_case "yao structure theorem" `Quick
            test_ptree_yao_structure;
          Alcotest.test_case "cheap protocol not monochromatic" `Quick
            test_ptree_incorrect_protocol_not_mono;
          Alcotest.test_case "EQ one-way tree rectangles" `Quick
            test_ptree_eq_needs_full_cost;
          qtest "generic one-way tree" ~count:50 QCheck.small_int
            prop_ptree_alice_sends_all ] );
      ( "discrepancy",
        [ Alcotest.test_case "known values" `Quick test_discrepancy_known;
          Alcotest.test_case "randomized lower bound" `Quick
            test_randomized_lower_bound;
          Alcotest.test_case "one-way complexity" `Quick test_one_way;
          qtest "one-way >= two-way" ~count:80 arb_small_bitmat
            prop_one_way_ge_exact;
          qtest "discrepancy in [1/rc, 1]" arb_small_bitmat
            prop_discrepancy_bounds ] );
      ( "cover",
        [ Alcotest.test_case "maximal rectangles identity" `Quick
            test_cover_maximal_identity;
          Alcotest.test_case "known cover numbers" `Quick test_cover_known;
          Alcotest.test_case "EQ3 pinned exactly" `Quick test_cover_eq3_pinned;
          Alcotest.test_case "partition vs covers" `Quick
            test_partition_vs_covers;
          qtest "yao + AUY inequalities" ~count:60 arb_tiny_bitmat
            prop_yao_inequalities;
          qtest "partition >= covers" ~count:60 arb_tiny_bitmat
            prop_partition_ge_covers ] );
      ( "exact-cc",
        [ Alcotest.test_case "trivial cases" `Quick test_exact_cc_trivial_cases;
          Alcotest.test_case "equality" `Quick test_exact_cc_equality;
          Alcotest.test_case "tiny singularity = 3 bits" `Quick
            test_exact_cc_singularity;
          Alcotest.test_case "greater-than" `Quick test_exact_cc_gt;
          Alcotest.test_case "raised cap: 14x14 and 16x16" `Quick
            test_exact_cc_raised_cap;
          Alcotest.test_case "too-large structured error" `Quick
            test_exact_cc_too_large;
          Alcotest.test_case "cap checked post-canonicalization" `Quick
            test_exact_cc_cap_post_canonicalization;
          Alcotest.test_case "incumbent sharing prunes better" `Quick
            test_exact_cc_incumbent_sharing_regression;
          Alcotest.test_case "warm-table deadline observed" `Quick
            test_exact_cc_warm_table_deadline;
          qtest "optimized = reference engine" ~count:120 arb_ref_bitmat
            prop_exact_cc_reference_agrees;
          qtest "toggles preserve value (8x8)" ~count:60 arb_medium_bitmat
            prop_exact_cc_toggle_invariance;
          qtest "sandwiched by bounds" ~count:100 arb_small_bitmat
            prop_exact_cc_sandwiched;
          qtest "agent-symmetric" ~count:100 arb_small_bitmat
            prop_exact_cc_transpose;
          qtest "submatrix monotone" ~count:100 arb_small_bitmat
            prop_exact_cc_monotone_submatrix ] );
      ( "rank-bound",
        [ Alcotest.test_case "identity analysis" `Quick
            test_rank_bounds_identity;
          Alcotest.test_case "GF(2) vs Q gap" `Quick test_rank_gf2_vs_q;
          qtest "gf2 <= q" arb_small_bitmat prop_gf2_le_q ] ) ]
