(* Direct tests for the utility substrate: SplitMix64 PRNG, bit
   vectors, GF(2) bit matrices, statistics, tables, and enumeration
   helpers.  These are exercised indirectly everywhere else; here we
   pin their contracts. *)

module Prng = Commx_util.Prng
module Bv = Commx_util.Bitvec
module Bm = Commx_util.Bitmat
module Stats = Commx_util.Stats
module Tab = Commx_util.Tab
module Combi = Commx_util.Combi
module Json = Commx_util.Json
module Pool = Commx_util.Pool
module Traffic = Commx_util.Traffic

let qtest ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy replays" va vb;
  (* advancing a further does not affect b *)
  ignore (Prng.bits64 a);
  let vb2 = Prng.bits64 b in
  let va2 = Prng.bits64 (Prng.copy a) in
  Alcotest.(check bool) "independent" true (vb2 <> va2 || vb2 = va2)

let test_prng_split_diverges () =
  let a = Prng.create 3 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.bits64 a) in
  let ys = List.init 20 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prop_int_in_range seed =
  let g = Prng.create seed in
  let bound = 1 + (abs seed mod 1000) in
  List.for_all
    (fun _ ->
      let v = Prng.int g bound in
      v >= 0 && v < bound)
    (List.init 50 (fun i -> i))

let prop_int_incl_in_range seed =
  let g = Prng.create seed in
  let lo = -50 + (seed mod 20) and hi = 50 + (seed mod 20) in
  List.for_all
    (fun _ ->
      let v = Prng.int_incl g lo hi in
      v >= lo && v <= hi)
    (List.init 50 (fun i -> i))

let test_prng_uniformity_rough () =
  (* chi-square-ish smoke: 6 buckets, 6000 draws, each within 30% *)
  let g = Prng.create 2718 in
  let buckets = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Prng.int g 6 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d: %d" i c)
        true
        (c > 700 && c < 1300))
    buckets

let prop_shuffle_is_permutation seed =
  let g = Prng.create seed in
  let a = Array.init 30 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  sorted = Array.init 30 (fun i -> i)

let prop_sample_without_replacement_distinct seed =
  let g = Prng.create seed in
  let s = Prng.sample_without_replacement g 10 25 in
  Array.length s = 10
  && Array.for_all (fun x -> x >= 0 && x < 25) s
  &&
  let tbl = Hashtbl.create 16 in
  Array.for_all
    (fun x ->
      if Hashtbl.mem tbl x then false
      else begin
        Hashtbl.add tbl x ();
        true
      end)
    s

let prop_float_unit seed =
  let g = Prng.create seed in
  List.for_all
    (fun _ ->
      let f = Prng.float g in
      f >= 0.0 && f < 1.0)
    (List.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basic () =
  let v = Bv.create 100 in
  Alcotest.(check int) "length" 100 (Bv.length v);
  Alcotest.(check bool) "zero init" true (Bv.is_zero v);
  Bv.set v 63 true;
  (* word boundary at 62 *)
  Bv.set v 62 true;
  Bv.set v 0 true;
  Alcotest.(check bool) "get 63" true (Bv.get v 63);
  Alcotest.(check bool) "get 62" true (Bv.get v 62);
  Alcotest.(check bool) "get 1" false (Bv.get v 1);
  Alcotest.(check int) "popcount" 3 (Bv.popcount v);
  Bv.set v 62 false;
  Alcotest.(check int) "popcount after clear" 2 (Bv.popcount v)

let test_bitvec_bounds () =
  let v = Bv.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bv.get v 10))

let prop_bitvec_string_roundtrip seed =
  let g = Prng.create seed in
  let v = Bv.random g (1 + (abs seed mod 150)) in
  Bv.equal v (Bv.of_string (Bv.to_string v))

let prop_bitvec_int_roundtrip v =
  let v = abs v mod (1 lsl 30) in
  Bv.to_int (Bv.of_int 30 v) = v

let prop_bitvec_xor_self seed =
  let g = Prng.create seed in
  let v = Bv.random g 97 in
  let w = Bv.copy v in
  Bv.xor_into w v;
  Bv.is_zero w

let prop_bitvec_fold_matches_popcount seed =
  let g = Prng.create seed in
  let v = Bv.random g 130 in
  Bv.fold_set_bits (fun _ acc -> acc + 1) v 0 = Bv.popcount v

let prop_bitvec_fold_ascending seed =
  let g = Prng.create seed in
  let v = Bv.random g 130 in
  let idx = List.rev (Bv.fold_set_bits (fun i acc -> i :: acc) v []) in
  List.sort compare idx = idx
  && List.for_all (fun i -> Bv.get v i) idx

let prop_bitvec_append_sub seed =
  let g = Prng.create seed in
  let a = Bv.random g 40 and b = Bv.random g 27 in
  let ab = Bv.append a b in
  Bv.equal a (Bv.sub ab 0 40) && Bv.equal b (Bv.sub ab 40 27)

let prop_bitvec_compare_total seed =
  let g = Prng.create seed in
  let a = Bv.random g 64 and b = Bv.random g 64 in
  let c1 = Bv.compare a b and c2 = Bv.compare b a in
  (c1 = 0) = Bv.equal a b && compare c1 0 = compare 0 c2

(* ------------------------------------------------------------------ *)
(* Bitmat                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitmat_mul_identity () =
  let g = Prng.create 5 in
  let m = Bm.random g 7 7 in
  Alcotest.(check bool) "I*m" true (Bm.equal m (Bm.mul (Bm.identity 7) m));
  Alcotest.(check bool) "m*I" true (Bm.equal m (Bm.mul m (Bm.identity 7)))

let prop_bitmat_mul_assoc seed =
  let g = Prng.create seed in
  let a = Bm.random g 5 6 and b = Bm.random g 6 4 and c = Bm.random g 4 3 in
  Bm.equal (Bm.mul (Bm.mul a b) c) (Bm.mul a (Bm.mul b c))

let prop_bitmat_transpose_involution seed =
  let g = Prng.create seed in
  let m = Bm.random g 9 4 in
  Bm.equal m (Bm.transpose (Bm.transpose m))

let prop_bitmat_rank_transpose seed =
  let g = Prng.create seed in
  let m = Bm.random g 8 5 in
  Bm.rank m = Bm.rank (Bm.transpose m)

let prop_bitmat_rank_bounds seed =
  let g = Prng.create seed in
  let m = Bm.random g 7 9 in
  let r = Bm.rank m in
  r >= 0 && r <= 7

let test_bitmat_rank_known () =
  Alcotest.(check int) "identity" 6 (Bm.rank (Bm.identity 6));
  let all_ones = Bm.init 5 5 (fun _ _ -> true) in
  Alcotest.(check int) "all ones" 1 (Bm.rank all_ones);
  let zero = Bm.create 4 4 in
  Alcotest.(check int) "zero" 0 (Bm.rank zero);
  (* GF(2): [[1,1],[1,1]] has rank 1 *)
  let j2 = Bm.init 2 2 (fun _ _ -> true) in
  Alcotest.(check int) "J2" 1 (Bm.rank j2)

let prop_bitmat_submatrix seed =
  let g = Prng.create seed in
  let m = Bm.random g 6 6 in
  let s = Bm.submatrix m [| 1; 3 |] [| 0; 2; 4 |] in
  Bm.rows s = 2 && Bm.cols s = 3
  && Bm.get s 0 0 = Bm.get m 1 0
  && Bm.get s 1 2 = Bm.get m 3 4

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_known () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev (sample)" (sqrt (32.0 /. 7.0))
    (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "median" 4.5 (Stats.median xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 1e-9)) "min" 2.0 lo;
  Alcotest.(check (float 1e-9)) "max" 9.0 hi;
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Stats.median [| 7.0; 1.0; 3.0 |])

let test_stats_fit () =
  (* exact line y = 3x + 1 *)
  let pts = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept, r2 = Stats.linear_fit pts in
  Alcotest.(check (float 1e-9)) "slope" 3.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r2;
  (* proportional y = 2x *)
  let pts2 = Array.init 10 (fun i -> (float_of_int (i + 1), 2.0 *. float_of_int (i + 1))) in
  let c, r2p = Stats.proportional_fit pts2 in
  Alcotest.(check (float 1e-9)) "proportional c" 2.0 c;
  Alcotest.(check (float 1e-9)) "proportional r2" 1.0 r2p;
  (* power law y = x^2.5 on log-log *)
  let pts3 = Array.init 8 (fun i -> let x = float_of_int (i + 2) in (x, x ** 2.5)) in
  Alcotest.(check (float 1e-9)) "log-log slope" 2.5 (Stats.log_log_slope pts3)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "one-point fit"
    (Invalid_argument "Stats.linear_fit: need at least two points") (fun () ->
      ignore (Stats.linear_fit [| (1.0, 1.0) |]))

let test_stats_percentile () =
  let xs = [| 3.0; 1.0; 4.0; 2.0 |] in
  (* linear interpolation between closest ranks (numpy default) *)
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p25" 1.75 (Stats.percentile xs 25.0);
  Alcotest.(check (float 1e-9)) "p50" 2.5 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 4.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "median = p50" (Stats.median xs)
    (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "odd median = p50" (Stats.median [| 7.0; 1.0; 3.0 |])
    (Stats.percentile [| 7.0; 1.0; 3.0 |] 50.0);
  Alcotest.(check (float 1e-9)) "singleton" 5.0 (Stats.percentile [| 5.0 |] 37.0);
  Alcotest.(check (float 1e-9)) "variance of singleton" 0.0
    (Stats.variance [| 5.0 |]);
  (* sample (Bessel-corrected) semantics, documented in the .mli *)
  Alcotest.(check (float 1e-9)) "sample variance" (5.0 /. 3.0)
    (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "out-of-range p"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs 101.0))

let prop_variance_nonneg seed =
  let g = Prng.create seed in
  let xs = Array.init (2 + abs seed mod 20) (fun _ -> Prng.float g *. 100.0) in
  Stats.variance xs >= 0.0

(* Pathological load data: the shapes a latency report actually
   produces under degenerate traffic (one request, perfectly uniform
   service times) plus the poison case (a NaN latency from a bad
   subtraction) that must be rejected, not silently ranked. *)
let test_stats_percentile_pathological () =
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single sample p%g" p)
        42.0
        (Stats.percentile [| 42.0 |] p))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ];
  let flat = Array.make 100 7.5 in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "all-equal p%g" p)
        7.5 (Stats.percentile flat p))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ];
  Alcotest.check_raises "NaN sample rejected"
    (Invalid_argument "Stats.percentile: NaN in sample") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan; 2.0 |] 50.0))

(* Batch rank = scalar rank on a mixed bag: packable boards, a board
   wider than one machine word (the fallback path), and the empty
   batch.  The fuzzed equivalence lives in commx_check; this pins the
   edges deterministically. *)
let test_bitmat_rank_batch () =
  let g = Prng.create 2026 in
  let boards =
    Array.init 12 (fun i ->
        if i = 5 then Bm.random g 4 (Bv.bits_per_word + 3)
        else Bm.random g (1 + Prng.int g 10) (1 + Prng.int g 10))
  in
  Alcotest.(check (array int))
    "batch equals scalar" (Array.map Bm.rank boards) (Bm.rank_batch boards);
  Alcotest.(check (array int)) "empty batch" [||] (Bm.rank_batch [||])

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let test_traffic_parse_mix () =
  (match Traffic.parse_mix "exact_cc=1,singular=4" with
  | Ok [ (Traffic.Exact_cc, 1.0); (Traffic.Singular, 4.0) ] -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong mix"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check string) "round trip" "exact_cc=1,singular=4"
    (match Traffic.parse_mix "exact_cc=1,singular=4" with
    | Ok m -> Traffic.mix_to_string m
    | Error e -> e);
  Alcotest.(check string) "default round trips"
    (Traffic.mix_to_string Traffic.default_mix)
    (match Traffic.parse_mix (Traffic.mix_to_string Traffic.default_mix) with
    | Ok m -> Traffic.mix_to_string m
    | Error e -> e);
  let rejects s =
    match Traffic.parse_mix s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "mix %S was accepted" s
  in
  rejects "";
  rejects "exact_cc";
  rejects "teleport=1";
  rejects "singular=0";
  rejects "singular=-2";
  rejects "singular=abc";
  rejects "singular=1,singular=2"

(* Same (seed, mix, arrival, count) => bit-identical stream; the
   generator takes no jobs parameter at all, which is the stronger
   form of the bench's jobs-invariance guarantee (the executor only
   ever consumes this schedule read-only). *)
let test_traffic_stream_deterministic () =
  let mix = Traffic.default_mix in
  let a =
    Traffic.stream ~seed:11 ~mix ~arrival:(Traffic.Open { rate = 500.0 })
      ~count:200
  in
  let b =
    Traffic.stream ~seed:11 ~mix ~arrival:(Traffic.Open { rate = 500.0 })
      ~count:200
  in
  Alcotest.(check bool) "identical streams" true (a = b);
  let c =
    Traffic.stream ~seed:12 ~mix ~arrival:(Traffic.Open { rate = 500.0 })
      ~count:200
  in
  Alcotest.(check bool) "seed changes the stream" true (a <> c);
  Array.iteri
    (fun i (r : Traffic.request) ->
      Alcotest.(check int) "ids are positional" i r.Traffic.id)
    a;
  (* Open loop: arrivals strictly advance (exponential gaps > 0). *)
  Array.iteri
    (fun i (r : Traffic.request) ->
      if i > 0 then
        Alcotest.(check bool) "arrivals nondecreasing" true
          (r.Traffic.arrival_s >= a.(i - 1).Traffic.arrival_s))
    a;
  (* Closed loop: no schedule, only ordering. *)
  let closed =
    Traffic.stream ~seed:11 ~mix
      ~arrival:(Traffic.Closed { concurrency = 4 })
      ~count:50
  in
  Array.iter
    (fun (r : Traffic.request) ->
      Alcotest.(check (float 0.0)) "closed arrival zero" 0.0
        r.Traffic.arrival_s)
    closed

let test_traffic_stream_respects_mix () =
  let only =
    Traffic.stream ~seed:3
      ~mix:[ (Traffic.Protocol, 2.5) ]
      ~arrival:(Traffic.Closed { concurrency = 1 })
      ~count:64
  in
  Array.iter
    (fun (r : Traffic.request) ->
      Alcotest.(check bool) "single-kind mix" true
        (r.Traffic.kind = Traffic.Protocol))
    only;
  Alcotest.check_raises "empty mix rejected"
    (Invalid_argument "Traffic.stream: mix must be non-empty with positive weights")
    (fun () ->
      ignore
        (Traffic.stream ~seed:0 ~mix:[]
           ~arrival:(Traffic.Closed { concurrency = 1 })
           ~count:1))

(* ------------------------------------------------------------------ *)
(* Tab                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tab_render () =
  let t = Tab.make ~caption:"cap" ~header:[ "a"; "bb" ] [ Tab.Left; Tab.Right ] in
  Tab.add_row t [ "x"; "1" ];
  Tab.add_rule t;
  Tab.add_row t [ "yyy"; "22" ];
  let s = Tab.render t in
  Alcotest.(check bool) "caption" true (String.length s > 0 && String.sub s 0 3 = "cap");
  (* all lines same width *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  let widths = List.map String.length (List.tl lines) in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_tab_width_mismatch () =
  let t = Tab.make ~header:[ "a" ] [ Tab.Left ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Tab.add_row: width mismatch")
    (fun () -> Tab.add_row t [ "x"; "y" ])

let test_tab_formats () =
  Alcotest.(check string) "thousands" "1,234,567" (Tab.fmt_int_thousands 1234567);
  Alcotest.(check string) "negative" "-1,000" (Tab.fmt_int_thousands (-1000));
  Alcotest.(check string) "small" "999" (Tab.fmt_int_thousands 999);
  Alcotest.(check string) "ratio" "3.20x" (Tab.fmt_ratio 3.2);
  Alcotest.(check string) "float digits" "2.718" (Tab.fmt_float ~digits:3 2.71828)

(* ------------------------------------------------------------------ *)
(* Combi                                                               *)
(* ------------------------------------------------------------------ *)

let test_iter_tuples () =
  let seen = ref [] in
  Combi.iter_tuples 3 2 (fun d -> seen := Array.to_list d :: !seen);
  Alcotest.(check int) "count" 9 (List.length !seen);
  Alcotest.(check (list (list int))) "first/last order" [ [ 0; 0 ]; [ 2; 2 ] ]
    [ List.nth (List.rev !seen) 0; List.hd !seen ];
  (* len 0: exactly one empty tuple *)
  let count = ref 0 in
  Combi.iter_tuples 5 0 (fun _ -> incr count);
  Alcotest.(check int) "empty tuple" 1 !count

let test_iter_subsets () =
  let count = ref 0 and total_elems = ref 0 in
  Combi.iter_subsets 5 (fun s ->
      incr count;
      total_elems := !total_elems + List.length s);
  Alcotest.(check int) "2^5 subsets" 32 !count;
  Alcotest.(check int) "element count" (5 * 16) !total_elems

let test_iter_combinations () =
  let seen = ref [] in
  Combi.iter_combinations 5 3 (fun c -> seen := Array.to_list c :: !seen);
  Alcotest.(check int) "C(5,3)" 10 (List.length !seen);
  List.iter
    (fun c ->
      Alcotest.(check bool) "sorted distinct" true
        (List.sort compare c = c && List.length (List.sort_uniq compare c) = 3))
    !seen;
  (* r > n: nothing *)
  let count = ref 0 in
  Combi.iter_combinations 2 3 (fun _ -> incr count);
  Alcotest.(check int) "empty" 0 !count

let test_iter_permutations () =
  let seen = Hashtbl.create 64 in
  Combi.iter_permutations 4 (fun p -> Hashtbl.replace seen (Array.to_list p) ());
  Alcotest.(check int) "4! distinct" 24 (Hashtbl.length seen)

let test_binomial_factorial_power () =
  Alcotest.(check int) "C(10,3)" 120 (Combi.binomial 10 3);
  Alcotest.(check int) "C(10,0)" 1 (Combi.binomial 10 0);
  Alcotest.(check int) "C(3,5)" 0 (Combi.binomial 3 5);
  Alcotest.(check int) "6!" 720 (Combi.factorial 6);
  Alcotest.(check int) "3^7" 2187 (Combi.power 3 7);
  Alcotest.(check int) "x^0" 1 (Combi.power 99 0);
  Alcotest.check_raises "overflow" (Failure "Combi.power: overflow") (fun () ->
      ignore (Combi.power 10 30))

(* Regression: [power] used a floating-point magnitude guard that
   mis-rejected exactly-representable results near max_int (e.g. 3^39)
   because the float product rounded above 2^62.  The guard is now an
   exact integer overflow check. *)
let test_power_boundary () =
  Alcotest.(check int) "3^39 representable" 4052555153018976267
    (Combi.power 3 39);
  Alcotest.check_raises "3^40 overflows" (Failure "Combi.power: overflow")
    (fun () -> ignore (Combi.power 3 40));
  Alcotest.(check int) "(2^31-1)^2 representable" 4611686014132420609
    (Combi.power ((1 lsl 31) - 1) 2);
  Alcotest.(check int) "2^61" (1 lsl 61) (Combi.power 2 61);
  Alcotest.check_raises "2^62 overflows" (Failure "Combi.power: overflow")
    (fun () -> ignore (Combi.power 2 62));
  Alcotest.(check int) "(-4)^31 = min_int" min_int (Combi.power (-4) 31);
  Alcotest.(check int) "min_int^1" min_int (Combi.power min_int 1);
  Alcotest.(check int) "min_int^0" 1 (Combi.power min_int 0);
  Alcotest.(check int) "(-1)^63" (-1) (Combi.power (-1) 63);
  Alcotest.(check int) "0^0" 1 (Combi.power 0 0);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Combi.power: negative exponent") (fun () ->
      ignore (Combi.power 2 (-1)))

let prop_binomial_pascal (n, r) =
  let n = 1 + (abs n mod 25) and r = abs r mod 25 in
  if r > n || r = 0 then true
  else Combi.binomial n r = Combi.binomial (n - 1) (r - 1) + Combi.binomial (n - 1) r

(* Regression: binomial used to wrap silently near the native-int
   limit.  C(62,31) and C(60,30) are representable and must be exact;
   C(66,33) exceeds max_int and must raise, not wrap. *)
let test_binomial_boundary () =
  Alcotest.(check int) "C(62,31)" 465428353255261088 (Combi.binomial 62 31);
  Alcotest.(check int) "C(61,30)" 232714176627630544 (Combi.binomial 61 30);
  Alcotest.(check int) "C(60,30)" 118264581564861424 (Combi.binomial 60 30);
  Alcotest.(check bool) "C(62,31) positive (no wraparound)" true
    (Combi.binomial 62 31 > 0);
  Alcotest.check_raises "C(66,33) overflows"
    (Failure "Combi.binomial: overflow") (fun () ->
      ignore (Combi.binomial 66 33));
  Alcotest.check_raises "C(100,50) overflows"
    (Failure "Combi.binomial: overflow") (fun () ->
      ignore (Combi.binomial 100 50))

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_emit () =
  Alcotest.(check string) "compact"
    {|{"a":1,"b":[true,null,"x\"y"],"c":-2.5}|}
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x\"y" ]);
            ("c", Json.Float (-2.5)) ]));
  Alcotest.(check string) "integral float keeps point" "1.0"
    (Json.to_string (Json.Float 1.0));
  Alcotest.(check string) "nan literal" "NaN"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "escapes" "\"\\n\\t\\\\\\u0001\""
    (Json.to_string (Json.String "\n\t\\\x01"))

let test_json_roundtrip () =
  let docs =
    [ Json.Null; Json.Bool false; Json.Int max_int; Json.Int min_int;
      Json.Int 0; Json.Float 0.1; Json.Float 1e-300; Json.Float (-3.75);
      Json.Float 6.02214076e23; Json.String ""; Json.String "caf\xc3\xa9 \\ \"q\"";
      Json.List [];
      Json.Obj
        [ ("rows", Json.List [ Json.Int 1; Json.Float 2.5 ]);
          ("nested", Json.Obj [ ("deep", Json.List [ Json.Null ]) ]) ] ]
  in
  List.iter
    (fun d ->
      let s = Json.to_string d in
      Alcotest.(check bool) ("roundtrip " ^ s) true (Json.of_string s = d);
      let p = Json.to_string_pretty d in
      Alcotest.(check bool) ("pretty roundtrip " ^ s) true
        (Json.of_string p = d))
    docs

(* Regression: non-finite floats used to be emitted as [null], which
   silently destroyed the value on a decode/re-encode cycle.  They now
   round-trip through the Python-compatible extension literals. *)
let test_json_nonfinite_roundtrip () =
  Alcotest.(check string) "+inf" "Infinity"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf" "-Infinity"
    (Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check bool) "parse NaN" true
    (match Json.of_string "NaN" with
    | Json.Float f -> Float.is_nan f
    | _ -> false);
  Alcotest.(check bool) "parse Infinity" true
    (Json.of_string "Infinity" = Json.Float Float.infinity);
  Alcotest.(check bool) "parse -Infinity" true
    (Json.of_string "-Infinity" = Json.Float Float.neg_infinity);
  (* nested, compact and pretty *)
  let doc =
    Json.Obj
      [ ("lo", Json.Float Float.neg_infinity);
        ("hi", Json.List [ Json.Float Float.infinity; Json.Int (-3) ]) ]
  in
  Alcotest.(check bool) "nested compact" true
    (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool) "nested pretty" true
    (Json.of_string (Json.to_string_pretty doc) = doc);
  (* a NaN inside a document survives (compare via is_nan, not =) *)
  (match Json.of_string (Json.to_string (Json.List [ Json.Float Float.nan ])) with
  | Json.List [ Json.Float f ] ->
      Alcotest.(check bool) "nested nan" true (Float.is_nan f)
  | v -> Alcotest.failf "unexpected parse: %s" (Json.to_string v));
  (* -0.0 keeps its sign and does not collide with the -Infinity path *)
  Alcotest.(check string) "-0.0 emit" "-0.0" (Json.to_string (Json.Float (-0.0)));
  Alcotest.(check bool) "-0.0 bit-exact" true
    (match Json.of_string "-0.0" with
    | Json.Float f -> Int64.bits_of_float f = Int64.bits_of_float (-0.0)
    | _ -> false)

(* Strings containing arbitrary control characters must survive an
   emit/parse cycle via \u escapes. *)
let prop_json_control_string_roundtrip seed =
  let g = Prng.create seed in
  let len = Prng.int g 40 in
  let s = String.init len (fun _ -> Char.chr (Prng.int g 128)) in
  Json.of_string (Json.to_string (Json.String s)) = Json.String s

let prop_json_float_roundtrip x =
  (* Any finite float must survive emit/parse bit-exactly. *)
  (not (Float.is_finite x))
  ||
  match Json.of_string (Json.to_string (Json.Float x)) with
  | Json.Float y -> Int64.bits_of_float y = Int64.bits_of_float x
  | Json.Int y -> float_of_int y = x
  | _ -> false

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Failure _ -> ()
      | v ->
          Alcotest.failf "expected parse failure on %S, got %s" s
            (Json.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{1:2}";
      "[1] trailing" ];
  (* member lookup *)
  let o = Json.of_string {|{"x": 3, "y": [1]}|} in
  Alcotest.(check bool) "member hit" true (Json.member "x" o = Some (Json.Int 3));
  Alcotest.(check bool) "member miss" true (Json.member "z" o = None)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_matches_sequential () =
  let input = Array.init 257 (fun i -> i) in
  let f i = (i * i) + 1 in
  let expect = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            expect
            (Pool.parallel_map pool f input)))
    [ 1; 2; 4 ]

let test_pool_for_covers_all_indices () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let marks = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for pool ~chunk:7 n (fun i -> Atomic.incr marks.(i));
      Array.iteri
        (fun i a ->
          if Atomic.get a <> 1 then
            Alcotest.failf "index %d visited %d times" i (Atomic.get a))
        marks)

(* The determinism contract the bench harness relies on: a seeded
   Monte-Carlo workload (E3-style — per-item PRNG draws feeding float
   accumulation) must be bit-identical at any job count. *)
let test_pool_seeded_deterministic () =
  let work g x =
    let acc = ref (float_of_int x) in
    for _ = 1 to 100 do
      acc := !acc +. Prng.float g -. (0.5 *. float_of_int (Prng.int g 3))
    done;
    !acc
  in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.parallel_map_seeded pool (Prng.create 9) work
          (Array.init 64 (fun i -> i)))
  in
  let r1 = run 1 and r4 = run 4 in
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float r4.(i) then
        Alcotest.failf "element %d differs: %.17g vs %.17g" i v r4.(i))
    r1

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "worker exception reaches caller"
        (Failure "boom-17") (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun i -> if i = 17 then failwith "boom-17" else i)
               (Array.init 64 (fun i -> i))));
      (* the pool must still be usable after a failed batch *)
      Alcotest.(check (array int)) "pool survives" [| 0; 2; 4 |]
        (Pool.parallel_map pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

(* ------------------------------------------------------------------ *)
(* Txtable: packed transposition table                                 *)
(* ------------------------------------------------------------------ *)

module Tx = Commx_util.Txtable

let test_txtable_roundtrip () =
  (* Starting tiny forces several grows; every key must remain findable
     with its LAST stored value (no budget, so nothing is ever
     evicted). *)
  let t = Tx.create ~initial_bits:2 () in
  let g = Prng.create 77 in
  let keys = Array.init 1000 (fun i -> (i * 7919) + Prng.int g 3) in
  Array.iteri (fun i k -> Tx.set t k i) keys;
  Array.iteri (fun i k -> Tx.set t k (i * 2)) keys;
  let missing = ref 0 in
  Array.iteri
    (fun i k ->
      match Tx.find t k with
      | -1 -> incr missing
      | v -> Alcotest.(check int) "last write wins" (i * 2) v)
    keys;
  Alcotest.(check int) "no evictions without budget" 0 (Tx.stats t).Tx.evictions;
  Alcotest.(check int) "everything findable" 0 !missing;
  (* distinct keys only: duplicates from the +Prng.int jitter are
     possible in principle but 7919 steps dwarf jitter 0..2 *)
  Alcotest.(check int) "size = distinct keys" 1000 (Tx.length t)

let test_txtable_collisions_never_lie () =
  (* A saturated bounded table evicts, so [find] may miss — but it must
     NEVER return a value that was stored under a different key.  Keys
     are spread over a range vastly larger than the budget to force
     both collisions and evictions. *)
  let t = Tx.create ~budget_entries:64 ~initial_bits:4 () in
  let reference = Hashtbl.create 512 in
  let g = Prng.create 41 in
  for i = 0 to 4999 do
    let k = Prng.int g 1_000_000_000 in
    Hashtbl.replace reference k (i land 0xff);
    Tx.set t k (i land 0xff)
  done;
  Alcotest.(check bool) "capacity bounded by budget" true (Tx.capacity t <= 64);
  let st = Tx.stats t in
  Alcotest.(check bool) "evictions occurred" true (st.Tx.evictions > 0);
  Alcotest.(check int) "stores counted" 5000 st.Tx.stores;
  Hashtbl.iter
    (fun k v ->
      match Tx.find t k with
      | -1 -> () (* evicted: a miss is allowed *)
      | found -> Alcotest.(check int) "hit returns the key's own value" v found)
    reference

let test_txtable_deterministic () =
  (* Same insertion sequence => identical table state and identical
     hit/miss/eviction statistics, eviction policy included.  The
     engine's jobs-invariance rests on this. *)
  let run () =
    let t = Tx.create ~budget_entries:128 ~initial_bits:4 () in
    let g = Prng.create 1234 in
    for i = 0 to 9999 do
      let k = Prng.int g 100_000 in
      if i land 1 = 0 then Tx.set t k i else ignore (Tx.find t k)
    done;
    let probes = Array.init 500 (fun i -> Tx.find t (i * 191)) in
    (Tx.stats t, Tx.length t, probes)
  in
  let s1, n1, p1 = run () in
  let s2, n2, p2 = run () in
  Alcotest.(check int) "hits" s1.Tx.hits s2.Tx.hits;
  Alcotest.(check int) "misses" s1.Tx.misses s2.Tx.misses;
  Alcotest.(check int) "evictions" s1.Tx.evictions s2.Tx.evictions;
  Alcotest.(check int) "stores" s1.Tx.stores s2.Tx.stores;
  Alcotest.(check int) "length" n1 n2;
  Alcotest.(check (array int)) "probe results" p1 p2

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_txtable_snapshot_roundtrip () =
  (* save -> JSON text -> load preserves every entry, the capacity and
     the budget; a loaded table starts with clean statistics.  This is
     the serve daemon's persistence path. *)
  let t = Tx.create ~initial_bits:4 () in
  let g = Prng.create 5 in
  let keys = Array.init 700 (fun i -> (i * 524287) + Prng.int g 7) in
  Array.iteri (fun i k -> Tx.set t k (i land 0xff)) keys;
  let doc = Json.of_string (Json.to_string (Tx.save t)) in
  let t' = Tx.load doc in
  let st = Tx.stats t' in
  Alcotest.(check int) "loaded stats: hits" 0 st.Tx.hits;
  Alcotest.(check int) "loaded stats: misses" 0 st.Tx.misses;
  Alcotest.(check int) "loaded stats: stores" 0 st.Tx.stores;
  Alcotest.(check int) "entries preserved" (Tx.length t) (Tx.length t');
  Alcotest.(check int) "capacity preserved" (Tx.capacity t) (Tx.capacity t');
  Alcotest.(check (option int))
    "budget preserved" (Tx.budget_entries t) (Tx.budget_entries t');
  Tx.iter t (fun k v ->
      Alcotest.(check int) "entry value preserved" v (Tx.find t' k))

let test_txtable_snapshot_budget_semantics () =
  (* The budget survives the round-trip as a live constraint, not just
     a recorded number: the loaded table keeps refusing to grow past
     it. *)
  let t = Tx.create ~budget_entries:64 ~initial_bits:4 () in
  let g = Prng.create 6 in
  for i = 0 to 199 do
    Tx.set t (Prng.int g 1_000_000_000) (i land 0xff)
  done;
  let t' = Tx.load (Tx.save t) in
  Alcotest.(check (option int)) "budget recorded" (Some 64) (Tx.budget_entries t');
  for i = 0 to 999 do
    Tx.set t' (Prng.int g 1_000_000_000) (i land 0xff)
  done;
  Alcotest.(check bool) "budget enforced after load" true (Tx.capacity t' <= 64);
  Alcotest.(check bool)
    "loaded table evicts at budget" true ((Tx.stats t').Tx.evictions > 0)

let expect_load_failure name doc fragment =
  match Tx.load doc with
  | _ -> Alcotest.failf "%s: corrupt snapshot was accepted" name
  | exception Failure msg ->
      if not (contains_substring msg fragment) then
        Alcotest.failf "%s: error %S does not mention %S" name msg fragment

let test_txtable_snapshot_rejects_garbage () =
  let t = Tx.create ~initial_bits:3 () in
  Tx.set t 1 2;
  let doc = Tx.save t in
  let patch key v =
    match doc with
    | Json.Obj fields ->
        Json.Obj (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) fields)
    | _ -> assert false
  in
  expect_load_failure "not an object" (Json.Int 3) "not a JSON object";
  expect_load_failure "wrong format" (patch "format" (Json.String "zoo"))
    "not a txtable snapshot";
  expect_load_failure "missing format"
    (Json.Obj [ ("version", Json.Int Tx.snapshot_version) ])
    "format";
  (* A future version must be rejected with both versions named, so the
     operator can tell which side is stale. *)
  expect_load_failure "future version"
    (patch "version" (Json.Int (Tx.snapshot_version + 1)))
    (Printf.sprintf "version %d" (Tx.snapshot_version + 1));
  expect_load_failure "capacity out of range" (patch "capacity_bits" (Json.Int 99))
    "out of range";
  expect_load_failure "negative key"
    (patch "entries" (Json.List [ Json.List [ Json.Int (-1); Json.Int 0 ] ]))
    "negative key";
  expect_load_failure "malformed entry"
    (patch "entries" (Json.List [ Json.String "zap" ]))
    "pair";
  (* The happy path still works after all that prodding. *)
  let t' = Tx.load doc in
  Alcotest.(check int) "intact snapshot still loads" 2 (Tx.find t' 1)

let test_txtable_clear_and_validation () =
  let t = Tx.create ~initial_bits:3 () in
  Tx.set t 42 7;
  Alcotest.(check int) "stored" 7 (Tx.find t 42);
  Tx.clear t;
  Alcotest.(check int) "cleared" (-1) (Tx.find t 42);
  Alcotest.(check int) "empty" 0 (Tx.length t);
  Alcotest.check_raises "negative key rejected"
    (Invalid_argument "Txtable.set: negative key") (fun () -> Tx.set t (-1) 0);
  Alcotest.check_raises "negative value rejected"
    (Invalid_argument "Txtable.set: negative value") (fun () -> Tx.set t 1 (-2));
  Alcotest.check_raises "bad initial_bits"
    (Invalid_argument "Txtable.create: initial_bits out of range") (fun () ->
      ignore (Tx.create ~initial_bits:0 ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "copy independent" `Quick
            test_prng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
          Alcotest.test_case "rough uniformity" `Quick
            test_prng_uniformity_rough;
          qtest "int in range" QCheck.small_int prop_int_in_range;
          qtest "int_incl in range" QCheck.small_int prop_int_incl_in_range;
          qtest "shuffle permutes" QCheck.small_int prop_shuffle_is_permutation;
          qtest "sampling distinct" QCheck.small_int
            prop_sample_without_replacement_distinct;
          qtest "float in [0,1)" QCheck.small_int prop_float_unit ] );
      ( "bitvec",
        [ Alcotest.test_case "basic + word boundary" `Quick test_bitvec_basic;
          Alcotest.test_case "bounds check" `Quick test_bitvec_bounds;
          qtest "string roundtrip" QCheck.small_int
            prop_bitvec_string_roundtrip;
          qtest "int roundtrip" QCheck.int prop_bitvec_int_roundtrip;
          qtest "xor self = 0" QCheck.small_int prop_bitvec_xor_self;
          qtest "fold matches popcount" QCheck.small_int
            prop_bitvec_fold_matches_popcount;
          qtest "fold ascending over set bits" QCheck.small_int
            prop_bitvec_fold_ascending;
          qtest "append/sub" QCheck.small_int prop_bitvec_append_sub;
          qtest "compare total order" QCheck.small_int
            prop_bitvec_compare_total ] );
      ( "bitmat",
        [ Alcotest.test_case "identity mul" `Quick test_bitmat_mul_identity;
          Alcotest.test_case "known ranks" `Quick test_bitmat_rank_known;
          qtest "mul associative" QCheck.small_int prop_bitmat_mul_assoc;
          qtest "transpose involution" QCheck.small_int
            prop_bitmat_transpose_involution;
          qtest "rank transpose" QCheck.small_int prop_bitmat_rank_transpose;
          qtest "rank bounds" QCheck.small_int prop_bitmat_rank_bounds;
          qtest "submatrix" QCheck.small_int prop_bitmat_submatrix;
          Alcotest.test_case "rank_batch edges" `Quick test_bitmat_rank_batch ] );
      ( "stats",
        [ Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "fits" `Quick test_stats_fit;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          Alcotest.test_case "percentile/median consistency" `Quick
            test_stats_percentile;
          Alcotest.test_case "percentile pathological" `Quick
            test_stats_percentile_pathological;
          qtest "variance nonneg" QCheck.small_int prop_variance_nonneg ] );
      ( "traffic",
        [ Alcotest.test_case "mix parsing" `Quick test_traffic_parse_mix;
          Alcotest.test_case "stream deterministic" `Quick
            test_traffic_stream_deterministic;
          Alcotest.test_case "stream respects mix" `Quick
            test_traffic_stream_respects_mix ] );
      ( "tab",
        [ Alcotest.test_case "render aligned" `Quick test_tab_render;
          Alcotest.test_case "width mismatch" `Quick test_tab_width_mismatch;
          Alcotest.test_case "formatters" `Quick test_tab_formats ] );
      ( "combi",
        [ Alcotest.test_case "iter_tuples" `Quick test_iter_tuples;
          Alcotest.test_case "iter_subsets" `Quick test_iter_subsets;
          Alcotest.test_case "iter_combinations" `Quick test_iter_combinations;
          Alcotest.test_case "iter_permutations" `Quick test_iter_permutations;
          Alcotest.test_case "binomial/factorial/power" `Quick
            test_binomial_factorial_power;
          Alcotest.test_case "binomial native-int boundary" `Quick
            test_binomial_boundary;
          Alcotest.test_case "power native-int boundary" `Quick
            test_power_boundary;
          qtest "pascal identity" QCheck.(pair int int) prop_binomial_pascal ] );
      ( "json",
        [ Alcotest.test_case "emitter" `Quick test_json_emit;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite roundtrip" `Quick
            test_json_nonfinite_roundtrip;
          Alcotest.test_case "parse errors + member" `Quick
            test_json_parse_errors;
          qtest "float roundtrip bit-exact" QCheck.float
            prop_json_float_roundtrip;
          qtest "control-char string roundtrip" QCheck.small_int
            prop_json_control_string_roundtrip ] );
      ( "txtable",
        [ Alcotest.test_case "grow + last-write-wins roundtrip" `Quick
            test_txtable_roundtrip;
          Alcotest.test_case "bounded table never lies" `Quick
            test_txtable_collisions_never_lie;
          Alcotest.test_case "deterministic stats + state" `Quick
            test_txtable_deterministic;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_txtable_snapshot_roundtrip;
          Alcotest.test_case "snapshot budget semantics" `Quick
            test_txtable_snapshot_budget_semantics;
          Alcotest.test_case "snapshot rejects garbage" `Quick
            test_txtable_snapshot_rejects_garbage;
          Alcotest.test_case "clear + argument validation" `Quick
            test_txtable_clear_and_validation ] );
      ( "pool",
        [ Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "for covers all indices" `Quick
            test_pool_for_covers_all_indices;
          Alcotest.test_case "seeded map jobs-invariant" `Quick
            test_pool_seeded_deterministic;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs ] )
    ]
