(* Tests for the telemetry layer: the monotonic clock, instruments and
   their jobs-invariance, span nesting and cross-domain parenting,
   disabled-mode transparency, metrics JSON / schema-v3 artifact
   round-trips, the Chrome trace writer's atomic temp-file handling,
   and the shared CLI telemetry flags. *)

module Clock = Commx_util.Clock
module Telemetry = Commx_util.Telemetry
module Pool = Commx_util.Pool
module Cli = Commx_util.Cli
module Json = Commx_util.Json
module Artifact = Commx_util.Artifact
module Fsutil = Commx_util.Fsutil

(* The recording level is process-global: force a known state around
   every test so case ordering cannot leak recordings between them. *)
let with_level lvl f =
  Telemetry.reset ();
  Telemetry.set_level lvl;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_level Telemetry.Off;
      Telemetry.reset ())
    f

let sid (s : Telemetry.span_id) = (s :> int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fresh_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "commx-telemetry-%s-%d" name (Unix.getpid ()))
  in
  Fsutil.mkdir_p d;
  d

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  let mono = ref true in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then mono := false;
    prev := t
  done;
  Alcotest.(check bool) "non-decreasing over 10k reads" true !mono;
  let t0 = Clock.now_s () in
  Unix.sleepf 0.02;
  let dt = Clock.now_s () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "a 20 ms sleep measures as such (%.4f s)" dt)
    true
    (dt >= 0.015);
  Alcotest.(check (float 1e-9)) "ns_to_s" 1.5 (Clock.ns_to_s 1_500_000_000);
  Alcotest.(check (float 1e-9)) "ns_to_us" 1_500. (Clock.ns_to_us 1_500_000)

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

let test_instruments_basic () =
  with_level Telemetry.Metrics (fun () ->
      let c = Telemetry.counter "test.basic" in
      Alcotest.(check bool) "counters are interned by name" true
        (c == Telemetry.counter "test.basic");
      Telemetry.add c 5;
      Telemetry.incr c;
      Alcotest.(check (option int)) "merged total" (Some 6)
        (List.assoc_opt "test.basic" (Telemetry.counters ()));
      let before = Telemetry.counters () in
      Telemetry.add c 4;
      Alcotest.(check (list (pair string int))) "diff keeps nonzero deltas"
        [ ("test.basic", 4) ]
        (Telemetry.diff_counters ~before (Telemetry.counters ()));
      let g = Telemetry.gauge "test.gauge" in
      Telemetry.set_gauge g 2.5;
      Alcotest.(check (option (float 1e-9))) "gauge last-write-wins" (Some 2.5)
        (List.assoc_opt "test.gauge" (Telemetry.gauges ()));
      let h = Telemetry.histogram "test.hist" in
      List.iter (Telemetry.observe h) [ 1; 2; 3; 8 ];
      match List.assoc_opt "test.hist" (Telemetry.histograms ()) with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some s ->
          Alcotest.(check int) "count" 4 s.Telemetry.count;
          Alcotest.(check int) "sum" 14 s.Telemetry.sum;
          Alcotest.(check int) "min" 1 s.Telemetry.min;
          Alcotest.(check int) "max" 8 s.Telemetry.max)

(* The acceptance-critical property: counters and histograms are merged
   order-invariantly from per-domain cells, and instrumented sites are
   keyed by data, so totals are bit-identical at any job count and at
   any level >= Metrics. *)
let run_instrumented jobs =
  Telemetry.reset ();
  let c = Telemetry.counter "test.work" in
  let h = Telemetry.histogram "test.sizes" in
  Pool.with_pool ~jobs (fun pool ->
      Pool.parallel_for pool ~chunk:3 64 (fun i ->
          Telemetry.add c (i + 1);
          Telemetry.observe h (i mod 7)));
  ignore (Telemetry.drain_events ());
  (Telemetry.counters (), Telemetry.histograms ())

let test_counters_jobs_invariant () =
  with_level Telemetry.Metrics (fun () ->
      let c1, h1 = run_instrumented 1 in
      let c4, h4 = run_instrumented 4 in
      Alcotest.(check (list (pair string int)))
        "counters identical, jobs 1 vs jobs 4" c1 c4;
      Alcotest.(check bool) "histograms identical, jobs 1 vs jobs 4" true
        (h1 = h4);
      Alcotest.(check (option int)) "sum of 1..64" (Some (64 * 65 / 2))
        (List.assoc_opt "test.work" c1);
      (* tracing on top of metrics must not perturb counter totals *)
      Telemetry.set_level Telemetry.Trace;
      let c4t, _ = run_instrumented 4 in
      Alcotest.(check (list (pair string int)))
        "counters identical, Metrics vs Trace" c1 c4t)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_across_domains () =
  with_level Telemetry.Trace (fun () ->
      Alcotest.(check int) "no span open initially"
        (sid Telemetry.null_span)
        (sid (Telemetry.current_span ()));
      Telemetry.with_span "outer" ~args:[ ("k0", "v0") ] (fun () ->
          let outer = Telemetry.current_span () in
          Alcotest.(check bool) "outer is open" true
            (sid outer <> sid Telemetry.null_span);
          Telemetry.with_span "inner" (fun () ->
              Alcotest.(check bool) "inner is a fresh span" true
                (sid (Telemetry.current_span ()) <> sid outer));
          (* a span opened on a worker domain parents to the captured
             id from the spawning domain — the Pool convention *)
          let d =
            Domain.spawn (fun () ->
                Telemetry.with_span ~parent:outer "child" (fun () ->
                    Telemetry.annotate [ ("outcome", "ok") ]))
          in
          Domain.join d);
      let events = Telemetry.drain_events () in
      let find name =
        match List.find_opt (fun e -> e.Telemetry.name = name) events with
        | Some e -> e
        | None -> Alcotest.failf "event %s missing" name
      in
      let outer = find "outer" in
      let inner = find "inner" in
      let child = find "child" in
      Alcotest.(check int) "outer is a root"
        (sid Telemetry.null_span)
        (sid outer.Telemetry.parent);
      Alcotest.(check int) "inner nests in outer" (sid outer.Telemetry.id)
        (sid inner.Telemetry.parent);
      Alcotest.(check int) "cross-domain child parents to outer"
        (sid outer.Telemetry.id)
        (sid child.Telemetry.parent);
      Alcotest.(check bool) "child ran on another domain" true
        (child.Telemetry.tid <> outer.Telemetry.tid);
      Alcotest.(check bool) "annotate reached the child span" true
        (List.mem ("outcome", "ok") child.Telemetry.args);
      Alcotest.(check bool) "open-time args kept" true
        (List.mem ("k0", "v0") outer.Telemetry.args);
      Alcotest.(check bool) "durations non-negative" true
        (List.for_all (fun e -> e.Telemetry.dur_ns >= 0) events);
      Alcotest.(check bool) "children start within the parent" true
        (inner.Telemetry.start_ns >= outer.Telemetry.start_ns
        && child.Telemetry.start_ns >= outer.Telemetry.start_ns);
      Alcotest.(check bool) "sorted by start time" true
        (let rec sorted = function
           | a :: (b :: _ as tl) ->
               a.Telemetry.start_ns <= b.Telemetry.start_ns && sorted tl
           | _ -> true
         in
         sorted events);
      Alcotest.(check int) "drain removes events" 0
        (List.length (Telemetry.drain_events ())))

let test_span_closed_on_raise () =
  with_level Telemetry.Trace (fun () ->
      (try Telemetry.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      Alcotest.(check int) "span stack unwound"
        (sid Telemetry.null_span)
        (sid (Telemetry.current_span ()));
      Alcotest.(check bool) "raising span still recorded" true
        (List.exists
           (fun e -> e.Telemetry.name = "boom")
           (Telemetry.drain_events ())))

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  with_level Telemetry.Off (fun () ->
      let c = Telemetry.counter "test.off" in
      Telemetry.add c 100;
      let h = Telemetry.histogram "test.off.hist" in
      Telemetry.observe h 3;
      let v =
        Telemetry.with_span "never" (fun () ->
            Alcotest.(check int) "no span opened"
              (sid Telemetry.null_span)
              (sid (Telemetry.current_span ()));
            41 + 1)
      in
      Alcotest.(check int) "with_span is transparent" 42 v;
      Alcotest.(check int) "with_phase is transparent" 7
        (Telemetry.with_phase "p" (fun () -> 7));
      Telemetry.annotate [ ("a", "b") ];
      (* flip recording on only to READ the cells: nothing arrived *)
      Telemetry.set_level Telemetry.Metrics;
      Alcotest.(check (option int)) "counter untouched" (Some 0)
        (List.assoc_opt "test.off" (Telemetry.counters ()));
      (match List.assoc_opt "test.off.hist" (Telemetry.histograms ()) with
      | Some s -> Alcotest.(check int) "histogram untouched" 0 s.Telemetry.count
      | None -> ());
      Alcotest.(check (list (pair string (float 1e-9)))) "no phases" []
        (Telemetry.drain_phases ());
      Alcotest.(check int) "no events" 0
        (List.length (Telemetry.drain_events ())))

(* ------------------------------------------------------------------ *)
(* Metrics JSON and schema-v3 artifacts                                *)
(* ------------------------------------------------------------------ *)

let test_metrics_json_roundtrip () =
  with_level Telemetry.Metrics (fun () ->
      let c = Telemetry.counter "test.bits" in
      Telemetry.add c 9;
      let j = Telemetry.metrics_to_json ~phases:[ ("verify", 0.25) ] () in
      (* the exporter emits what the parser reads back *)
      let j' = Json.of_string (Json.to_string j) in
      Alcotest.(check bool) "serialization round-trips" true (j = j');
      (match Json.member "counters" j with
      | Some (Json.Obj kvs) ->
          Alcotest.(check bool) "counter exported" true
            (List.assoc_opt "test.bits" kvs = Some (Json.Int 9))
      | _ -> Alcotest.fail "counters object missing");
      Alcotest.(check bool) "phases exported" true
        (Json.member "wall_s_by_phase" j
        = Some (Json.Obj [ ("verify", Json.Float 0.25) ])))

let test_artifact_v3_roundtrip () =
  let dir = fresh_dir "artifact" in
  let metrics =
    Artifact.metrics
      ~counters:[ ("channel.bits_total", 42); ("prng.draws", 7) ]
      ~phases:[ ("generate", 0.125) ]
  in
  let report_fields =
    [ ("title", Json.String "test"); ("params", Json.Obj []);
      ("rows", Json.List []); ("fits", Json.Obj []) ]
  in
  Artifact.write ~dir ~id:"T1" ~jobs:4 ~wall_s:1.5 ~attempts:1 ~status:"ok"
    ~error:Json.Null ~metrics ~report_fields ();
  let doc = Json.of_file (Artifact.path ~dir ~id:"T1") in
  Alcotest.(check bool) "schema version 3" true
    (Json.member "schema_version" doc = Some (Json.Int 3));
  let m =
    match Json.member "metrics" doc with
    | Some m -> m
    | None -> Alcotest.fail "metrics object missing"
  in
  Alcotest.(check bool) "bits_total lifted from channel counter" true
    (Json.member "bits_total" m = Some (Json.Int 42));
  Alcotest.(check bool) "counters round-trip" true
    (Json.member "counters" m
    = Some
        (Json.Obj
           [ ("channel.bits_total", Json.Int 42); ("prng.draws", Json.Int 7) ]));
  Alcotest.(check bool) "phases round-trip" true
    (Json.member "wall_s_by_phase" m
    = Some (Json.Obj [ ("generate", Json.Float 0.125) ]));
  Alcotest.(check bool) "resume sees the ok artifact" true
    (Artifact.resume_done ~dir ~id:"T1");
  Alcotest.(check bool) "resume ignores missing artifacts" false
    (Artifact.resume_done ~dir ~id:"T2");
  Artifact.write ~dir ~id:"T3" ~jobs:1 ~wall_s:0.1 ~attempts:3 ~status:"failed"
    ~error:(Json.String "boom") ~report_fields ();
  Alcotest.(check bool) "resume ignores non-ok artifacts" false
    (Artifact.resume_done ~dir ~id:"T3");
  (* telemetry off: the metrics field is null, not absent *)
  Alcotest.(check bool) "metrics null when telemetry off" true
    (Json.member "metrics" (Json.of_file (Artifact.path ~dir ~id:"T3"))
    = Some Json.Null)

(* ------------------------------------------------------------------ *)
(* Chrome trace writer                                                 *)
(* ------------------------------------------------------------------ *)

let leftover_temps dir base =
  Sys.readdir dir |> Array.to_list
  |> List.filter (String.starts_with ~prefix:(base ^ "."))

let test_trace_writer () =
  with_level Telemetry.Trace (fun () ->
      let dir = fresh_dir "trace" in
      let path = Filename.concat dir "run.trace" in
      Telemetry.with_span "alpha" ~args:[ ("id", "E0") ] (fun () ->
          Telemetry.with_span "beta" (fun () -> ()));
      let w = Telemetry.Trace.open_file ~path in
      Telemetry.Trace.flush w (Telemetry.drain_events ());
      (* incremental: a second batch of events in a later flush *)
      Telemetry.with_span "gamma" (fun () -> ());
      Telemetry.Trace.flush w (Telemetry.drain_events ());
      Telemetry.Trace.close w;
      Telemetry.Trace.close w (* idempotent *);
      let doc = Json.of_file path in
      let events =
        match Json.member "traceEvents" doc with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "traceEvents array missing"
      in
      Alcotest.(check bool) "all spans exported" true (List.length events >= 3);
      (* every event carries the keys chrome://tracing requires *)
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              if Json.member k ev = None then
                Alcotest.failf "event lacks %s: %s" k (Json.to_string ev))
            [ "name"; "ph"; "ts"; "pid"; "tid" ])
        events;
      let names =
        List.filter_map
          (fun ev ->
            match Json.member "name" ev with
            | Some (Json.String s) -> Some s
            | _ -> None)
          events
      in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " present") true (List.mem n names))
        [ "alpha"; "beta"; "gamma" ];
      Alcotest.(check bool) "spans are ph=X complete events" true
        (List.exists
           (fun ev -> Json.member "ph" ev = Some (Json.String "X"))
           events);
      Alcotest.(check (list string)) "no temp file after close" []
        (leftover_temps dir "run.trace");
      (* abort discards without publishing and leaves no temp behind,
         even after incremental flushes (the Json.Atomic guarantee) *)
      let path2 = Filename.concat dir "aborted.trace" in
      Telemetry.with_span "delta" (fun () -> ());
      let w2 = Telemetry.Trace.open_file ~path:path2 in
      Telemetry.Trace.flush w2 (Telemetry.drain_events ());
      Telemetry.Trace.abort w2;
      Telemetry.Trace.abort w2 (* idempotent *);
      Alcotest.(check bool) "aborted trace not published" false
        (Sys.file_exists path2);
      Alcotest.(check (list string)) "no temp file after abort" []
        (leftover_temps dir "aborted.trace"))

(* ------------------------------------------------------------------ *)
(* Cli telemetry flags                                                 *)
(* ------------------------------------------------------------------ *)

let test_cli_telemetry_flags () =
  let parse argv =
    match Cli.parse argv with
    | Ok v -> v
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let opts, rest = parse [ "E3"; "--trace"; "out/run.trace"; "--metrics" ] in
  Alcotest.(check (option string)) "trace file" (Some "out/run.trace")
    opts.Cli.trace_file;
  Alcotest.(check bool) "metrics flag" true opts.Cli.metrics;
  Alcotest.(check (list string)) "positional intact" [ "E3" ] rest;
  Alcotest.(check bool) "--trace selects Trace" true
    (Cli.telemetry_level opts = Telemetry.Trace);
  let opts, _ = parse [ "--metrics" ] in
  Alcotest.(check bool) "--metrics selects Metrics" true
    (Cli.telemetry_level opts = Telemetry.Metrics);
  let opts, _ = parse [ "--json=out" ] in
  Alcotest.(check bool) "--json selects Metrics (artifacts embed them)" true
    (Cli.telemetry_level opts = Telemetry.Metrics);
  let opts, _ = parse [] in
  Alcotest.(check bool) "default level Off" true
    (Cli.telemetry_level opts = Telemetry.Off);
  Alcotest.(check bool) "help default off" false opts.Cli.help;
  let opts, _ = parse [ "--help" ] in
  Alcotest.(check bool) "--help parsed" true opts.Cli.help;
  (match Cli.parse [ "--trace" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "valueless --trace must error");
  (match Cli.parse [ "--trace"; "--metrics" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "--trace must not swallow a following flag");
  (match Cli.parse [ "--metrics=yes" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "--metrics takes no value");
  (* --help output documents every flag *)
  List.iter
    (fun flag ->
      Alcotest.(check bool) (flag ^ " documented in help") true
        (contains Cli.help_text flag))
    [ "--jobs"; "--json"; "--timeout"; "--retries"; "--keep-going"; "--resume";
      "--inject-faults"; "--trace"; "--metrics"; "--help" ]

(* ------------------------------------------------------------------ *)
(* Quantiles and the empty-histogram contract                          *)
(* ------------------------------------------------------------------ *)

(* /metrics-style exporters render every interned histogram, observed
   or not — so an empty summary must be totally benign: quantiles 0.0
   (never NaN, never an exception) and JSON min/max pinned to 0. *)
let test_empty_histogram_is_benign () =
  with_level Telemetry.Metrics (fun () ->
      let _h = Telemetry.histogram "test.never_observed" in
      match List.assoc_opt "test.never_observed" (Telemetry.histograms ()) with
      | None -> Alcotest.fail "interned histogram missing from snapshot"
      | Some s ->
          Alcotest.(check int) "count" 0 s.Telemetry.count;
          List.iter
            (fun p ->
              let q = Telemetry.summary_quantile s p in
              Alcotest.(check bool)
                (Printf.sprintf "p%.0f not NaN" p)
                false (Float.is_nan q);
              Alcotest.(check (float 0.0)) (Printf.sprintf "p%.0f" p) 0.0 q)
            [ 0.0; 50.0; 95.0; 99.0; 100.0 ];
          let j = Telemetry.metrics_to_json () in
          let hists =
            match Json.member "histograms" j with
            | Some h -> h
            | None -> Alcotest.fail "metrics JSON lacks histograms"
          in
          (match Json.member "test.never_observed" hists with
          | Some h ->
              Alcotest.(check bool) "JSON min/max pinned to 0" true
                (Json.member "min" h = Some (Json.Int 0)
                && Json.member "max" h = Some (Json.Int 0))
          | None -> Alcotest.fail "empty histogram absent from JSON"))

let test_summary_quantile_small_exact () =
  with_level Telemetry.Metrics (fun () ->
      let h = Telemetry.histogram "test.q_small" in
      List.iter (Telemetry.observe h) [ 1; 2; 4 ];
      let s = List.assoc "test.q_small" (Telemetry.histograms ()) in
      let q p = Telemetry.summary_quantile s p in
      Alcotest.(check (float 0.0)) "p0 is the min bucket" 1.0 (q 0.0);
      Alcotest.(check (float 0.0)) "p50 lands mid" 2.0 (q 50.0);
      Alcotest.(check (float 0.0)) "p100 is the max" 4.0 (q 100.0))

let test_summary_quantile_clamped_and_ordered () =
  with_level Telemetry.Metrics (fun () ->
      (* 5 falls in the le=8 bucket: the bucket bound overshoots the
         data, so the estimate must clamp to the observed max. *)
      let h = Telemetry.histogram "test.q_clamp" in
      List.iter (Telemetry.observe h) [ 5; 5 ];
      let s = List.assoc "test.q_clamp" (Telemetry.histograms ()) in
      Alcotest.(check (float 0.0)) "clamped to max" 5.0
        (Telemetry.summary_quantile s 99.0);
      Alcotest.(check (float 0.0)) "clamped from below too" 5.0
        (Telemetry.summary_quantile s 1.0);
      (* skewed data: quantiles stay within [min, max] and ordered *)
      let h2 = Telemetry.histogram "test.q_skew" in
      List.iter (Telemetry.observe h2) (List.init 100 (fun i -> (i mod 10) + 1));
      Telemetry.observe h2 100_000;
      let s2 = List.assoc "test.q_skew" (Telemetry.histograms ()) in
      let q p = Telemetry.summary_quantile s2 p in
      let p50 = q 50.0 and p95 = q 95.0 and p99 = q 99.0 in
      Alcotest.(check bool) "ordered p50 <= p95 <= p99" true
        (p50 <= p95 && p95 <= p99);
      Alcotest.(check bool) "within [min, max]" true
        (p50 >= float_of_int s2.Telemetry.min
        && p99 <= float_of_int s2.Telemetry.max))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [ ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "instruments",
        [ Alcotest.test_case "counters, gauges, histograms" `Quick
            test_instruments_basic;
          Alcotest.test_case "bit-identical at any --jobs" `Quick
            test_counters_jobs_invariant;
          Alcotest.test_case "empty histogram is benign" `Quick
            test_empty_histogram_is_benign;
          Alcotest.test_case "quantiles: small exact" `Quick
            test_summary_quantile_small_exact;
          Alcotest.test_case "quantiles: clamped + ordered" `Quick
            test_summary_quantile_clamped_and_ordered ] );
      ( "spans",
        [ Alcotest.test_case "nesting and cross-domain parenting" `Quick
            test_span_nesting_across_domains;
          Alcotest.test_case "closed on raise" `Quick test_span_closed_on_raise
        ] );
      ( "disabled",
        [ Alcotest.test_case "records nothing at Off" `Quick
            test_disabled_records_nothing ] );
      ( "export",
        [ Alcotest.test_case "metrics JSON round-trip" `Quick
            test_metrics_json_roundtrip;
          Alcotest.test_case "schema-v3 artifact round-trip" `Quick
            test_artifact_v3_roundtrip;
          Alcotest.test_case "chrome trace writer" `Quick test_trace_writer ] );
      ( "cli",
        [ Alcotest.test_case "telemetry flags" `Quick test_cli_telemetry_flags
        ] )
    ]
