(* Tests for the resilient experiment runtime: Pool cancellation and
   deadlines, the deterministic fault injector, the supervisor's
   ok / failed / timed_out / retry classification, the shared harness
   flag parser, and atomic JSON artifact IO. *)

module Pool = Commx_util.Pool
module Clock = Commx_util.Clock
module Prng = Commx_util.Prng
module Faults = Commx_util.Faults
module Supervisor = Commx_util.Supervisor
module Cli = Commx_util.Cli
module Json = Commx_util.Json

(* ------------------------------------------------------------------ *)
(* Pool: cancellation and failure paths                                *)
(* ------------------------------------------------------------------ *)

let test_pool_precancelled_token () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let token = Pool.Token.create () in
      Pool.Token.cancel token;
      let executed = Atomic.make 0 in
      Alcotest.check_raises "cancelled batch raises" Pool.Cancelled (fun () ->
          Pool.parallel_for pool ~chunk:1 ~cancel:token 100 (fun _ ->
              Atomic.incr executed));
      Alcotest.(check int) "no item ran" 0 (Atomic.get executed);
      (* the pool survives a cancelled batch *)
      Alcotest.(check (array int)) "pool survives" [| 0; 2; 4 |]
        (Pool.parallel_map pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_pool_deadline_fires () =
  Pool.with_pool ~jobs:2 (fun pool ->
      (* deadlines are instants on the monotonic clock (Clock.now_s),
         NOT wall-clock epoch seconds: an epoch-based deadline would sit
         ~56 years in the monotonic future and never fire. *)
      let token =
        Pool.Token.create ~deadline:(Clock.now_s () +. 0.05) ()
      in
      let executed = Atomic.make 0 in
      let t0 = Clock.now_s () in
      Alcotest.check_raises "deadline raises Cancelled" Pool.Cancelled
        (fun () ->
          (* 400 deliberately slow items: ~2 s sequential, the deadline
             must cut the batch off between chunks near 0.05 s. *)
          Pool.parallel_for pool ~chunk:1 ~cancel:token 400 (fun _ ->
              Atomic.incr executed;
              Unix.sleepf 0.005));
      let elapsed = Clock.now_s () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "stopped early (%.3f s, %d items)" elapsed
           (Atomic.get executed))
        true
        (elapsed < 1.0 && Atomic.get executed < 400))

let test_pool_failure_stops_remaining_chunks () =
  (* jobs = 1 runs chunks inline and in order: after item 0 raises, no
     further chunk may start. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let executed = ref 0 in
      Alcotest.check_raises "failure re-raised" (Failure "boom") (fun () ->
          Pool.parallel_for pool ~chunk:1 100 (fun _ ->
              incr executed;
              failwith "boom"));
      Alcotest.(check int) "only the failing chunk ran" 1 !executed);
  (* with helpers, in-flight chunks may finish but the dispenser must
     stop well short of the full range *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let executed = Atomic.make 0 in
      Alcotest.check_raises "failure re-raised" (Failure "boom") (fun () ->
          Pool.parallel_for pool ~chunk:1 10_000 (fun i ->
              Atomic.incr executed;
              if i = 0 then failwith "boom" else Unix.sleepf 0.0002));
      Alcotest.(check bool)
        (Printf.sprintf "remaining chunks cancelled (%d ran)"
           (Atomic.get executed))
        true
        (Atomic.get executed < 10_000))

let test_pool_failure_carries_backtrace () =
  Printexc.record_backtrace true;
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.parallel_for pool ~chunk:1 8 (fun i ->
            if i = 3 then failwith "with-backtrace")
      with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure _ ->
          (* raise_with_backtrace preserved the worker's trace: the
             caller can read it via the usual API. *)
          let bt = Printexc.get_backtrace () in
          Alcotest.(check bool) "backtrace captured" true
            (String.length bt > 0))

(* The guarantee the resume machinery leans on: a cancelled or failed
   sibling batch must not perturb seeded results of later batches, at
   any job count. *)
let test_pool_seeded_invariant_after_cancelled_sibling () =
  let work g x =
    let acc = ref (float_of_int x) in
    for _ = 1 to 50 do
      acc := !acc +. Prng.float g -. (0.5 *. float_of_int (Prng.int g 3))
    done;
    !acc
  in
  let clean =
    Pool.with_pool ~jobs:1 (fun pool ->
        Pool.parallel_map_seeded pool (Prng.create 77) work
          (Array.init 48 (fun i -> i)))
  in
  List.iter
    (fun jobs ->
      let got =
        Pool.with_pool ~jobs (fun pool ->
            (* sibling batch 1: cancelled mid-flight *)
            let token = Pool.Token.create () in
            Pool.Token.cancel token;
            (try
               Pool.parallel_for pool ~chunk:1 ~cancel:token 100 (fun _ -> ())
             with Pool.Cancelled -> ());
            (* sibling batch 2: fails *)
            (try
               Pool.parallel_for pool ~chunk:1 100 (fun i ->
                   if i = 5 then failwith "sibling")
             with Failure _ -> ());
            Pool.parallel_map_seeded pool (Prng.create 77) work
              (Array.init 48 (fun i -> i)))
      in
      Array.iteri
        (fun i v ->
          if Int64.bits_of_float v <> Int64.bits_of_float clean.(i) then
            Alcotest.failf "jobs=%d element %d differs: %.17g vs %.17g" jobs i
              v clean.(i))
        got)
    [ 1; 2; 4 ]

let test_pool_check_cancel () =
  Pool.with_pool ~jobs:1 (fun pool ->
      (* no token installed: no-op *)
      Pool.check_cancel pool;
      let token = Pool.Token.create () in
      Pool.set_cancel pool (Some token);
      Pool.check_cancel pool;
      Pool.Token.cancel token;
      Alcotest.check_raises "fired token raises" Pool.Cancelled (fun () ->
          Pool.check_cancel pool);
      Pool.set_cancel pool None;
      Pool.check_cancel pool)

(* ------------------------------------------------------------------ *)
(* Faults: deterministic injection                                     *)
(* ------------------------------------------------------------------ *)

let decisions seed sites =
  let f = Faults.create ~seed () in
  List.map (fun site -> Faults.decide f ~site ~rate:0.25 ~delay_rate:0.05) sites

let test_faults_deterministic () =
  let sites = List.init 300 (Printf.sprintf "site-%d") in
  Alcotest.(check bool) "same seed, same pattern" true
    (decisions 42 sites = decisions 42 sites);
  Alcotest.(check bool) "different seed, different pattern" true
    (decisions 42 sites <> decisions 43 sites);
  (* the decision is a pure function of (seed, site): order-free *)
  let f = Faults.create ~seed:7 () in
  let d site = Faults.decide f ~site ~rate:0.5 ~delay_rate:0.0 in
  let first = d "a" in
  ignore (d "b");
  ignore (d "c");
  Alcotest.(check bool) "stateless" true (d "a" = first)

let test_faults_rates () =
  let f = Faults.create ~seed:1 () in
  let sites = List.init 200 (Printf.sprintf "s%d") in
  Alcotest.(check bool) "rate 0 never raises" true
    (List.for_all
       (fun s -> Faults.decide f ~site:s ~rate:0.0 ~delay_rate:0.0 = Faults.Pass)
       sites);
  Alcotest.(check bool) "rate 1 always raises" true
    (List.for_all
       (fun s -> Faults.decide f ~site:s ~rate:1.0 ~delay_rate:0.0 = Faults.Raise)
       sites);
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Faults.create: rate must be in [0, 1]") (fun () ->
      ignore (Faults.create ~seed:0 ~rate:1.5 ()))

let test_faults_point () =
  Faults.point None ~site:"anything";
  (* rate 1 injector: every entry site raises, payload names the site *)
  let f = Faults.create ~seed:5 ~rate:1.0 () in
  Alcotest.check_raises "entry site raises" (Faults.Injected "E1:attempt1")
    (fun () -> Faults.point (Some f) ~site:"E1:attempt1")

let test_faults_in_pool_tasks () =
  (* pool_rate 1.0: the very first work item of the batch raises
     Injected, and the batch is cancelled like any worker failure *)
  Pool.with_pool ~jobs:2 (fun pool ->
      Pool.set_faults pool (Some (Faults.create ~seed:3 ~pool_rate:1.0 ()));
      (match Pool.parallel_map pool (fun i -> i) (Array.init 32 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Faults.Injected"
      | exception Faults.Injected site ->
          Alcotest.(check bool) "site names batch and item" true
            (String.length site >= 5 && String.sub site 0 5 = "pool:"));
      (* clearing the injector restores normal operation *)
      Pool.set_faults pool None;
      Alcotest.(check (array int)) "clean after clear" [| 0; 1; 2 |]
        (Pool.parallel_map pool (fun i -> i) [| 0; 1; 2 |]))

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_ok () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let outcome, attempts =
        Supervisor.run ~pool ~name:"t" (fun ~attempt -> attempt * 10)
      in
      (match outcome with
      | Supervisor.Ok v -> Alcotest.(check int) "value" 10 v
      | _ -> Alcotest.fail "expected Ok");
      Alcotest.(check int) "one attempt" 1 attempts;
      Alcotest.(check string) "label" "ok" (Supervisor.outcome_label outcome))

let test_supervisor_failed_not_retryable () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let config = Supervisor.config ~retries:5 ~backoff_s:0.0 () in
      let calls = ref 0 in
      let outcome, attempts =
        Supervisor.run ~config ~pool ~name:"t" (fun ~attempt:_ ->
            incr calls;
            failwith "real bug")
      in
      (match outcome with
      | Supervisor.Failed { exn; _ } ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh
                           && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "message kept" true (contains exn "real bug")
      | _ -> Alcotest.fail "expected Failed");
      Alcotest.(check int) "no retry for a real bug" 1 attempts;
      Alcotest.(check int) "called once" 1 !calls;
      Alcotest.(check string) "label" "failed"
        (Supervisor.outcome_label outcome))

let test_supervisor_retry_then_ok () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let config = Supervisor.config ~retries:2 ~backoff_s:0.0 () in
      let outcome, attempts =
        Supervisor.run ~config ~pool ~name:"t" (fun ~attempt ->
            if attempt < 3 then raise (Faults.Injected "transient") else attempt)
      in
      (match outcome with
      | Supervisor.Ok v -> Alcotest.(check int) "succeeded on attempt 3" 3 v
      | _ -> Alcotest.fail "expected Ok after retries");
      Alcotest.(check int) "three attempts" 3 attempts)

let test_supervisor_retries_exhausted () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let config = Supervisor.config ~retries:2 ~backoff_s:0.0 () in
      let outcome, attempts =
        Supervisor.run ~config ~pool ~name:"t" (fun ~attempt:_ ->
            raise (Faults.Injected "always"))
      in
      (match outcome with
      | Supervisor.Failed _ -> ()
      | _ -> Alcotest.fail "expected Failed");
      Alcotest.(check int) "1 + 2 retries" 3 attempts)

let test_supervisor_jitter_deterministic () =
  let j = Supervisor.jitter ~seed:11 ~name:"exp" ~attempt:1 in
  Alcotest.(check bool) "in [0, 1)" true (j >= 0.0 && j < 1.0);
  Alcotest.(check (float 0.0)) "replay is bit-identical" j
    (Supervisor.jitter ~seed:11 ~name:"exp" ~attempt:1);
  Alcotest.(check bool) "attempts desynchronize" true
    (Supervisor.jitter ~seed:11 ~name:"exp" ~attempt:2 <> j);
  Alcotest.(check bool) "names desynchronize" true
    (Supervisor.jitter ~seed:11 ~name:"other" ~attempt:1 <> j);
  Alcotest.(check bool) "seeds desynchronize" true
    (Supervisor.jitter ~seed:12 ~name:"exp" ~attempt:1 <> j);
  (* one primitive shared with fault injection: the documented site *)
  Alcotest.(check (float 0.0)) "defined via Faults.unit_float"
    (Faults.unit_float ~seed:11 ~site:"backoff:exp:1")
    j

let test_supervisor_jittered_backoff_is_replayable () =
  (* Two identically-configured supervised runs must back off with
     bit-identical pauses (the jitter is seeded, not drawn from a
     PRNG), and the pauses must stay inside the documented envelope
     base * [1, 1 + jitter]. *)
  let pauses () =
    let captured = ref [] in
    Supervisor.set_log_sink (fun r -> captured := r.Supervisor.pause_s :: !captured);
    Fun.protect
      ~finally:(fun () -> Supervisor.reset_log_sink ())
      (fun () ->
        Pool.with_pool ~jobs:1 (fun pool ->
            let config =
              Supervisor.config ~retries:2 ~backoff_s:0.01 ~jitter:1.0
                ~jitter_seed:9 ()
            in
            ignore
              (Supervisor.run ~config ~pool ~name:"jittered"
                 (fun ~attempt:_ -> raise (Faults.Injected "always")))));
    List.rev !captured
  in
  let a = pauses () and b = pauses () in
  Alcotest.(check int) "one pause per retry" 2 (List.length a);
  Alcotest.(check bool) "replay is bit-identical" true (a = b);
  List.iteri
    (fun i p ->
      let base = 0.01 *. (2.0 ** float_of_int i) in
      Alcotest.(check bool)
        (Printf.sprintf "pause %d inside the jitter envelope" (i + 1))
        true
        (p >= base && p <= 2.0 *. base))
    a

(* ------------------------------------------------------------------ *)
(* Clock.sleepf: EINTR immunity                                        *)
(* ------------------------------------------------------------------ *)

let test_clock_sleepf_survives_signals () =
  (* Regression: supervisor backoff and injected fault delays used
     Unix.sleepf directly, which returns early when a signal arrives —
     a SIGALRM storm truncated a 150 ms pause to ~20 ms.  Clock.sleepf
     re-sleeps against a monotonic deadline, so the full pause holds no
     matter how often it is interrupted. *)
  let ticks = ref 0 in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr ticks)) in
  let old_timer =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_interval = 0.02; it_value = 0.02 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
      Sys.set_signal Sys.sigalrm old)
    (fun () ->
      let t0 = Clock.now_s () in
      Clock.sleepf 0.15;
      let elapsed = Clock.now_s () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "signals interrupted the sleep (%d ticks)" !ticks)
        true (!ticks >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "full pause held (%.3fs elapsed)" elapsed)
        true
        (elapsed >= 0.145))

(* ------------------------------------------------------------------ *)
(* Supervisor: injectable retry log sink                               *)
(* ------------------------------------------------------------------ *)

let test_supervisor_log_sink_captures_retries () =
  (* The daemon routes retry diagnostics through its structured logger
     instead of raw eprintf; this is the seam it uses. *)
  let captured = ref [] in
  Supervisor.set_log_sink (fun r -> captured := r :: !captured);
  Fun.protect
    ~finally:(fun () -> Supervisor.reset_log_sink ())
    (fun () ->
      Pool.with_pool ~jobs:1 (fun pool ->
          let config = Supervisor.config ~retries:2 ~backoff_s:0.0 () in
          let outcome, attempts =
            Supervisor.run ~config ~pool ~name:"sinked" (fun ~attempt ->
                if attempt < 3 then raise (Faults.Injected "transient")
                else attempt)
          in
          (match outcome with
          | Supervisor.Ok v -> Alcotest.(check int) "succeeded" 3 v
          | _ -> Alcotest.fail "expected Ok after retries");
          Alcotest.(check int) "three attempts" 3 attempts));
  let logs = List.rev !captured in
  Alcotest.(check int) "one log per retry" 2 (List.length logs);
  List.iteri
    (fun i (r : Supervisor.retry_log) ->
      Alcotest.(check string) "experiment name" "sinked" r.Supervisor.name;
      Alcotest.(check int) "attempt number" (i + 1) r.Supervisor.attempt;
      Alcotest.(check bool) "exception text present" true
        (String.length r.Supervisor.exn > 0);
      Alcotest.(check bool) "pause is non-negative" true
        (r.Supervisor.pause_s >= 0.0))
    logs

(* ------------------------------------------------------------------ *)
(* Sigguard: SIGPIPE / broken-pipe hygiene                             *)
(* ------------------------------------------------------------------ *)

let test_sigguard_recognizes_broken_pipes () =
  let bp = Commx_util.Sigguard.is_broken_pipe in
  Alcotest.(check bool) "EPIPE" true
    (bp (Unix.Unix_error (Unix.EPIPE, "write", "")));
  Alcotest.(check bool) "ECONNRESET" true
    (bp (Unix.Unix_error (Unix.ECONNRESET, "write", "")));
  Alcotest.(check bool) "channel-flush Sys_error" true
    (bp (Sys_error "/dev/stdout: Broken pipe"));
  Alcotest.(check bool) "other Unix_error is not" false
    (bp (Unix.Unix_error (Unix.ENOENT, "open", "")));
  Alcotest.(check bool) "other Sys_error is not" false
    (bp (Sys_error "No such file or directory"))

let test_sigguard_write_to_closed_pipe_is_epipe () =
  (* With SIGPIPE ignored, writing into a pipe whose reader is gone
     must surface as a catchable EPIPE — the fact that this test is
     still alive to observe the exception IS the regression check
     (default SIGPIPE disposition would have killed the process). *)
  Commx_util.Sigguard.ignore_sigpipe ();
  let r, w = Unix.pipe () in
  Unix.close r;
  let payload = Bytes.of_string "doomed\n" in
  (match Unix.write w payload 0 (Bytes.length payload) with
  | _ -> Alcotest.fail "write to a readerless pipe succeeded"
  | exception e ->
      Alcotest.(check bool) "EPIPE recognized" true
        (Commx_util.Sigguard.is_broken_pipe e));
  Unix.close w

let test_supervisor_timeout_pool_batch () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let config = Supervisor.config ~timeout_s:0.05 ~retries:3 () in
      let outcome, attempts =
        Supervisor.run ~config ~pool ~name:"t" (fun ~attempt:_ ->
            (* the experiment's own pool batch inherits the ambient
               deadline token *)
            Pool.parallel_for pool ~chunk:1 400 (fun _ -> Unix.sleepf 0.005))
      in
      (match outcome with
      | Supervisor.Timed_out budget ->
          Alcotest.(check (float 1e-9)) "budget reported" 0.05 budget
      | _ -> Alcotest.fail "expected Timed_out");
      Alcotest.(check int) "timeouts are not retried" 1 attempts;
      Alcotest.(check string) "label" "timed_out"
        (Supervisor.outcome_label outcome);
      (* ambient token cleared: the pool is reusable *)
      Pool.check_cancel pool;
      Alcotest.(check (array int)) "pool usable" [| 0; 1 |]
        (Pool.parallel_map pool (fun i -> i) [| 0; 1 |]))

let test_supervisor_timeout_sequential_tick () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let config = Supervisor.config ~timeout_s:0.05 () in
      let outcome, _ =
        Supervisor.run ~config ~pool ~name:"t" (fun ~attempt:_ ->
            (* sequential section polling like Experiments.ctx.tick *)
            while true do
              Unix.sleepf 0.002;
              Pool.check_cancel pool
            done)
      in
      match outcome with
      | Supervisor.Timed_out _ -> ()
      | _ -> Alcotest.fail "expected Timed_out")

let test_supervisor_config_validation () =
  Alcotest.check_raises "timeout_s <= 0"
    (Invalid_argument "Supervisor.config: timeout_s must be > 0") (fun () ->
      ignore (Supervisor.config ~timeout_s:0.0 ()));
  Alcotest.check_raises "retries < 0"
    (Invalid_argument "Supervisor.config: retries must be >= 0") (fun () ->
      ignore (Supervisor.config ~retries:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Cli                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cli_parse_full () =
  match
    Cli.parse
      [ "E3"; "--jobs"; "4"; "--timeout=2.5"; "--retries"; "1"; "--keep-going";
        "--resume"; "/tmp/r"; "--inject-faults"; "9"; "E5"; "--json=out" ]
  with
  | Error m -> Alcotest.failf "unexpected parse error: %s" m
  | Ok (opts, positional) ->
      Alcotest.(check int) "jobs" 4 opts.Cli.jobs;
      Alcotest.(check (option string)) "json" (Some "out") opts.Cli.json_dir;
      Alcotest.(check (option (float 1e-9))) "timeout" (Some 2.5)
        opts.Cli.timeout_s;
      Alcotest.(check int) "retries" 1 opts.Cli.retries;
      Alcotest.(check bool) "keep-going" true opts.Cli.keep_going;
      Alcotest.(check (option string)) "resume" (Some "/tmp/r")
        opts.Cli.resume_dir;
      Alcotest.(check (option int)) "faults" (Some 9) opts.Cli.fault_seed;
      Alcotest.(check (list string)) "positional order" [ "E3"; "E5" ]
        positional

let test_cli_parse_errors () =
  let expect_error argv =
    match Cli.parse argv with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error on %s" (String.concat " " argv)
  in
  expect_error [ "--jobs"; "0" ];
  expect_error [ "--jobs"; "x" ];
  expect_error [ "--timeout"; "-1" ];
  expect_error [ "--timeout"; "0" ];
  expect_error [ "--retries"; "-2" ];
  expect_error [ "--inject-faults"; "zzz" ];
  expect_error [ "--wat" ];
  expect_error [ "--jobs" ];
  (* a valued flag must not swallow a following flag as its value *)
  expect_error [ "--json"; "--keep-going" ];
  expect_error [ "--resume"; "--json"; "d" ];
  expect_error [ "--keep-going=yes" ]

let test_cli_env_fallback () =
  Unix.putenv Cli.fault_seed_env_var "1234";
  let from_env =
    match Cli.parse [] with
    | Ok (o, _) -> o.Cli.fault_seed
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  (* an explicit flag wins over the environment *)
  let explicit =
    match Cli.parse [ "--inject-faults"; "7" ] with
    | Ok (o, _) -> o.Cli.fault_seed
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  Unix.putenv Cli.fault_seed_env_var "";
  Alcotest.(check (option int)) "env fallback" (Some 1234) from_env;
  Alcotest.(check (option int)) "flag wins" (Some 7) explicit

let test_cli_mkdir_p () =
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "commx-mkdir-%d" (Unix.getpid ()))
  in
  let deep = Filename.concat (Filename.concat base "a") "b" in
  Cli.mkdir_p deep;
  Alcotest.(check bool) "created" true
    (Sys.file_exists deep && Sys.is_directory deep);
  (* idempotent, and fine when every prefix already exists *)
  Cli.mkdir_p deep;
  Cli.mkdir_p (Filename.concat base "a");
  Alcotest.(check bool) "still there" true (Sys.is_directory deep)

(* ------------------------------------------------------------------ *)
(* Json atomic file IO                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_file_roundtrip () =
  let path = Filename.temp_file "commx-artifact" ".json" in
  let doc =
    Json.Obj
      [ ("schema_version", Json.Int 2); ("status", Json.String "ok");
        ("rows", Json.List [ Json.Obj [ ("n", Json.Int 5) ] ]) ]
  in
  Json.to_file ~path doc;
  Alcotest.(check bool) "roundtrip" true (Json.of_file path = doc);
  (* temp names are unique per writer, so scan for any sibling still
     carrying the artifact's prefix rather than probing one fixed name *)
  let leftover_temps () =
    Sys.readdir (Filename.dirname path)
    |> Array.to_list
    |> List.filter (String.starts_with ~prefix:(Filename.basename path ^ "."))
  in
  Alcotest.(check (list string)) "no temp file left" [] (leftover_temps ());
  (* overwriting an existing artifact is atomic too: the old content is
     fully replaced *)
  let doc2 = Json.Obj [ ("status", Json.String "failed") ] in
  Json.to_file ~path doc2;
  Alcotest.(check bool) "replaced" true (Json.of_file path = doc2);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Exact-CC engine under the pool: values AND stats jobs-invariant     *)
(* ------------------------------------------------------------------ *)

module Exact_cc = Commx_comm.Exact_cc

let test_exact_cc_pool_jobs_invariant () =
  (* Two pooled drivers, two invariance strengths.  Deterministic mode
     partitions root moves into a FIXED number of strided groups (never
     derived from the worker count) and exchanges incumbents only at
     fixed barriers, so it must return identical values AND identical
     work counters at any --jobs.  The default work-stealing driver
     only promises a schedule-invariant VALUE — node counts depend on
     which worker executed which block.  This 10x10 instance
     canonicalizes to 9x10 — 766 root moves, above the engine's
     parallel threshold — and its portfolio bound (4) stays below the
     trivial upper bound (5), so the tree is genuinely searched in
     parallel. *)
  let g = Prng.create 105015 in
  let m = Commx_util.Bitmat.init 10 10 (fun _ _ -> Prng.float g < 0.15) in
  let v_seq, _ = Exact_cc.search m in
  let run ?deterministic jobs =
    Pool.with_pool ~jobs (fun pool -> Exact_cc.search ?deterministic ~pool m)
  in
  let v1, s1 = run ~deterministic:true 1 in
  let v3, s3 = run ~deterministic:true 3 in
  Alcotest.(check int) "pooled value = sequential value" v_seq v1;
  Alcotest.(check int) "value jobs-invariant" v1 v3;
  let w1, t1 = run 1 in
  let w4, t4 = run 4 in
  Alcotest.(check int) "stealing value = deterministic value" v1 w1;
  Alcotest.(check int) "stealing value jobs-invariant" w1 w4;
  Alcotest.(check bool) "stealing searched at jobs 1" true
    (t1.Exact_cc.nodes > 0);
  Alcotest.(check bool) "stealing searched at jobs 4" true
    (t4.Exact_cc.nodes > 0);
  Alcotest.(check bool) "a real search happened" true (s1.Exact_cc.nodes > 0);
  Alcotest.(check int) "nodes" s1.Exact_cc.nodes s3.Exact_cc.nodes;
  Alcotest.(check int) "table hits" s1.Exact_cc.table_hits
    s3.Exact_cc.table_hits;
  Alcotest.(check int) "table misses" s1.Exact_cc.table_misses
    s3.Exact_cc.table_misses;
  Alcotest.(check int) "table evictions" s1.Exact_cc.table_evictions
    s3.Exact_cc.table_evictions;
  Alcotest.(check int) "canon rows" s1.Exact_cc.canon_rows
    s3.Exact_cc.canon_rows;
  Alcotest.(check int) "canon cols" s1.Exact_cc.canon_cols
    s3.Exact_cc.canon_cols;
  Alcotest.(check int) "root lower" s1.Exact_cc.root_lower
    s3.Exact_cc.root_lower;
  Alcotest.(check int) "root upper" s1.Exact_cc.root_upper
    s3.Exact_cc.root_upper

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "runtime"
    [ ( "pool-cancel",
        [ Alcotest.test_case "pre-cancelled token" `Quick
            test_pool_precancelled_token;
          Alcotest.test_case "deadline fires on slow body" `Quick
            test_pool_deadline_fires;
          Alcotest.test_case "failure stops remaining chunks" `Quick
            test_pool_failure_stops_remaining_chunks;
          Alcotest.test_case "failure carries backtrace" `Quick
            test_pool_failure_carries_backtrace;
          Alcotest.test_case "seeded invariant after cancelled sibling" `Quick
            test_pool_seeded_invariant_after_cancelled_sibling;
          Alcotest.test_case "check_cancel" `Quick test_pool_check_cancel ] );
      ( "faults",
        [ Alcotest.test_case "deterministic given a seed" `Quick
            test_faults_deterministic;
          Alcotest.test_case "rate envelope" `Quick test_faults_rates;
          Alcotest.test_case "entry points" `Quick test_faults_point;
          Alcotest.test_case "inject inside pool tasks" `Quick
            test_faults_in_pool_tasks ] );
      ( "supervisor",
        [ Alcotest.test_case "ok" `Quick test_supervisor_ok;
          Alcotest.test_case "failed, not retryable" `Quick
            test_supervisor_failed_not_retryable;
          Alcotest.test_case "retry then ok" `Quick test_supervisor_retry_then_ok;
          Alcotest.test_case "jitter deterministic" `Quick
            test_supervisor_jitter_deterministic;
          Alcotest.test_case "jittered backoff replayable" `Quick
            test_supervisor_jittered_backoff_is_replayable;
          Alcotest.test_case "retries exhausted" `Quick
            test_supervisor_retries_exhausted;
          Alcotest.test_case "timeout via pool batch" `Quick
            test_supervisor_timeout_pool_batch;
          Alcotest.test_case "timeout via sequential tick" `Quick
            test_supervisor_timeout_sequential_tick;
          Alcotest.test_case "config validation" `Quick
            test_supervisor_config_validation;
          Alcotest.test_case "retry log sink" `Quick
            test_supervisor_log_sink_captures_retries ] );
      ( "signals",
        [ Alcotest.test_case "sleepf survives EINTR" `Quick
            test_clock_sleepf_survives_signals;
          Alcotest.test_case "broken-pipe recognizer" `Quick
            test_sigguard_recognizes_broken_pipes;
          Alcotest.test_case "EPIPE instead of death" `Quick
            test_sigguard_write_to_closed_pipe_is_epipe ] );
      ( "cli",
        [ Alcotest.test_case "full parse" `Quick test_cli_parse_full;
          Alcotest.test_case "errors" `Quick test_cli_parse_errors;
          Alcotest.test_case "env fallback" `Quick test_cli_env_fallback;
          Alcotest.test_case "mkdir_p" `Quick test_cli_mkdir_p ] );
      ( "json-file",
        [ Alcotest.test_case "atomic write + roundtrip" `Quick
            test_json_file_roundtrip ] );
      ( "exact-cc-pool",
        [ Alcotest.test_case "pooled search jobs-invariant" `Quick
            test_exact_cc_pool_jobs_invariant ] )
    ]
