(** Parameters of the Chu–Schnitger hard-instance construction.

    The input is a [2n x 2n] matrix of [k]-bit integers with [n] odd;
    the gadget value is [q = 2^k - 1].  All block dimensions of
    Figures 1 and 3 are derived here once so every other module agrees
    on them.

    Using 0-based indices throughout (the paper is 1-based):
    - [A] is [n x (n-1)], embedded in [M] at rows [n..2n-1],
      columns [1..n-1].
    - [B] is [n x (n-1)], embedded at rows [n..2n-1], columns
      [n+1..2n-1].
    - [C] (free): rows [0..half-1], columns [half..n-2] of [A].
    - [D] (free): rows [0..half-1], columns [0..d_width-1] of [B].
    - [E] (free): rows [half..n-2], columns [d_width..n-2] of [B].
    - [y] (free): row [n-1] of [B], all [n-1] entries.
    where [half = (n-1)/2], [d_width = ceil_log_q n + 2]. *)

type t = private {
  n : int;  (** half-dimension; the input matrix is 2n x 2n; odd, >= 5 *)
  k : int;  (** bits per entry, >= 2 *)
  q : Commx_bigint.Bigint.t;  (** 2^k - 1 *)
  half : int;  (** (n-1)/2 *)
  logq_n : int;  (** ceil(log_q n): least L with q^L >= n *)
  d_width : int;  (** logq_n + 2 *)
  e_width : int;  (** n - 3 - logq_n, >= 0 *)
  m : Commx_bigint.Bigint.t;  (** q^e_width — the modulus of Lemma 3.5(a) *)
}

val make : n:int -> k:int -> t
(** @raise Invalid_argument unless [n] is odd, [n >= 5], [k >= 2], and
    [e_width >= 0]. *)

val is_valid : n:int -> k:int -> bool

val min_n_for_k : k:int -> int
(** Smallest valid (odd) [n] for the given [k]. *)

val free_cells_agent1 : t -> int
(** Number of free matrix entries on the Agent-1 side of π₀ (the
    entries of C). *)

val free_cells_agent2 : t -> int
(** Free entries on the Agent-2 side (D, E and y) —
    (n² - 1)/2 in total, the count used in Lemma 3.5(b). *)

val ceil_log : base:int -> int -> int
(** [ceil_log ~base x]: least [L >= 0] with [base^L >= x]
    ([base >= 2], [x >= 1]). *)

val pp : Format.formatter -> t -> unit
