(** Definition 3.8 and Lemma 3.9 — proper partitions.

    An input partition (of the [(2n)² k] input bits of [M]) is
    *proper* when

    - Agent 1 reads at least [k (n-1)²/8] bit positions of the
      [C]-block region (half of [C]'s bits), and
    - Agent 2 reads at least [k (n-3-⌈log_q n⌉)/2] bit positions of
      *every row* of the [E]-block region (half of each [E]-row's
      bits).

    Lemma 3.9: every even partition can be transformed into a proper
    one by permuting rows and columns of [M] (which preserves
    singularity, so preserves the problem).  The paper's proof is a
    two-case counting construction; we implement a randomized greedy
    search with the same primitive moves (choose which rows/columns
    land on the C- and E-regions) plus the agent-renaming freedom, and
    verify the lemma empirically: the search succeeds on every random
    even partition tried (experiment E9). *)

type transform = {
  row_perm : int array;
  (** new row [i] of [M] is old row [row_perm.(i)] *)
  col_perm : int array;
  swap_agents : bool;
  (** the naming freedom used in the paper's proof *)
}

val identity_transform : Params.t -> transform

val bit_of_cell : Params.t -> row:int -> col:int -> bit:int -> int
(** Global bit index of bit [bit] of entry [(row, col)] — column-major
    cells, [k] bits per cell, matching [Comm.Partition]. *)

val c_region : Params.t -> (int * int) list
(** The [(row, col)] cells of the C block inside [M]. *)

val e_region_rows : Params.t -> (int * (int * int) list) list
(** For each E-row index: its list of [(row, col)] cells inside [M]. *)

val is_proper : Params.t -> Commx_comm.Partition.t -> bool

val apply_transform :
  Params.t -> Commx_comm.Partition.t -> transform -> Commx_comm.Partition.t
(** The partition induced on the permuted matrix: the agent reading
    new bit [(i, j, b)] is the (possibly renamed) agent that read old
    bit [(row_perm i, col_perm j, b)]. *)

val find_transform :
  ?attempts:int ->
  Commx_util.Prng.t ->
  Params.t ->
  Commx_comm.Partition.t ->
  transform option
(** Search for a transform making the partition proper.  Lemma 3.9
    says one always exists for even partitions; [None] only means the
    search failed within its attempt budget. *)

val permutation_preserves_singularity :
  Commx_util.Prng.t -> Params.t -> transform -> bool
(** Sanity property used by the lemma: row/column permutations do not
    change singularity (checked on a random hard instance). *)
