module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix

type witness = {
  free : Hard_instance.free;
  x : B.t array;
}

(* Row i of A (i < half) applied to x:
   a_i . x = x_i + q * x_{i+1} (when i+1 <= half-1) + c_i . tail
   where tail = x_{half .. n-2}. *)
let a_row_dot (p : Params.t) c x i =
  let tail_dot =
    let acc = ref B.zero in
    for t = 0 to p.half - 1 do
      acc := B.add !acc (B.mul c.(i).(t) x.(p.half + t))
    done;
    !acc
  in
  let super =
    if i + 1 <= p.half - 1 then B.mul p.q x.(i + 1) else B.zero
  in
  B.add (B.add x.(i) super) tail_dot

let complete (p : Params.t) ~c ~e =
  let n = p.n in
  let x = Array.make (n - 1) B.zero in
  let u = Gadget.u_vector p in
  (* Step 1: tail coefficients from E.  Row half+i of B has E's row i in
     columns d_width..n-2, so b_{half+i} . u depends only on E. *)
  for i = 0 to p.half - 1 do
    let acc = ref B.zero in
    for t = 0 to p.e_width - 1 do
      acc := B.add !acc (B.mul e.(i).(t) u.(p.d_width + t))
    done;
    x.(p.half + i) <- !acc
  done;
  (* Step 2: back-substitution modulo m through the superdiagonal
     block.  x_i lands in [0, m). *)
  let tail_dot i =
    let acc = ref B.zero in
    for t = 0 to p.half - 1 do
      acc := B.add !acc (B.mul c.(i).(t) x.(p.half + t))
    done;
    !acc
  in
  for i = p.half - 1 downto 0 do
    let v =
      if i = p.half - 1 then B.neg (tail_dot i)
      else B.sub (B.neg (B.mul p.q x.(i + 1))) (tail_dot i)
    in
    x.(i) <- B.erem v p.m
  done;
  (* Step 3: D digits.  Target for row i is T = a_i . x, a multiple of
     m; columns t of D meet u at (-q)^(n-2-t), so
     b_i . u = (-q)^(e_width) * sum_j D[i][d_width-1-j] (-q)^j. *)
  let eps = B.pow (B.neg p.q) p.e_width in
  let d = Array.init p.half (fun _ -> Array.make p.d_width B.zero) in
  for i = 0 to p.half - 1 do
    let target = a_row_dot p c x i in
    let s, rem = B.divmod target eps in
    if not (B.is_zero rem) then
      failwith "Lemma35.complete: target not a multiple of (-q)^e_width";
    (match Gadget.to_neg_base ~q:p.q ~digits:p.d_width s with
    | None ->
        failwith "Lemma35.complete: D digit extraction out of range"
    | Some digits ->
        for j = 0 to p.d_width - 1 do
          d.(i).(p.d_width - 1 - j) <- digits.(j)
        done)
  done;
  (* Step 4: y digits from x_0 (row n-1 of A is (1,0,...,0), so the
     last equation is y . u = x_0). *)
  let y = Array.make (n - 1) B.zero in
  (match Gadget.to_neg_base ~q:p.q ~digits:(n - 1) x.(0) with
  | None -> failwith "Lemma35.complete: y digit extraction out of range"
  | Some digits ->
      for j = 0 to n - 2 do
        y.(n - 2 - j) <- digits.(j)
      done);
  let free = { Hard_instance.c; d; e; y } in
  Hard_instance.validate_free p free;
  { free; x }

let check_witness p w =
  let a = Hard_instance.build_a p w.free.Hard_instance.c in
  let bu = Hard_instance.b_dot_u p w.free in
  let ax = Zm.mul_vec a w.x in
  Array.for_all2 B.equal ax bu
  && Lemma32.is_singular_direct (Hard_instance.build_m p w.free)
