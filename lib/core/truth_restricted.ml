module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module Sub = Commx_linalg.Subspace
module Prng = Commx_util.Prng
module Combi = Commx_util.Combi

type bigint = B.t

let q_as_int (p : Params.t) =
  match B.to_int_opt p.q with
  | Some q -> q
  | None -> failwith "Truth_restricted: q exceeds native int range"

let count_c p =
  let q = q_as_int p in
  Combi.power q (p.half * p.half)

let enumerate_c (p : Params.t) =
  let q = q_as_int p in
  let cells = p.half * p.half in
  let total = Combi.power q cells in
  if total > 1_000_000 then
    invalid_arg "Truth_restricted.enumerate_c: more than 10^6 instances";
  let acc = ref [] in
  Combi.iter_tuples q cells (fun digits ->
      let c =
        Array.init p.half (fun i ->
            Array.init p.half (fun j -> B.of_int digits.((i * p.half) + j)))
      in
      acc := c :: !acc);
  List.rev !acc

let normal_vector (p : Params.t) c =
  let a = Hard_instance.build_a p c in
  let at = Qm.transpose (Zm.to_qmatrix a) in
  match Qm.nullspace at with
  | [ v ] ->
      (* Clear denominators and content to a primitive integer normal. *)
      let lcm_den =
        Array.fold_left (fun acc x -> B.lcm acc (Q.den x)) B.one v
      in
      let ints =
        Array.map (fun x -> B.mul (Q.num x) (B.div lcm_den (Q.den x))) v
      in
      let g = Array.fold_left (fun acc x -> B.gcd acc x) B.zero ints in
      if B.is_zero g then ints else Array.map (fun x -> B.div x g) ints
  | vs ->
      failwith
        (Printf.sprintf
           "Truth_restricted.normal_vector: expected 1-dim complement, got %d"
           (List.length vs))

let singular_with ~normal p f =
  let bu = Hard_instance.b_dot_u p f in
  B.is_zero (Gadget.dot normal bu)

let span_key p c =
  (* Canonical representation: RREF basis of the span, rendered. *)
  let s = Lemma32.span_a p c in
  String.concat ";"
    (List.map
       (fun v ->
         String.concat ","
           (Array.to_list (Array.map Q.to_string v)))
       (Sub.basis s))

let lemma34_all_spans_distinct p =
  let cs = enumerate_c p in
  let seen = Hashtbl.create 1024 in
  List.iter (fun c -> Hashtbl.replace seen (span_key p c) ()) cs;
  let distinct = Hashtbl.length seen in
  (distinct = List.length cs, distinct)

let iter_agent2_instances (p : Params.t) f =
  let q = q_as_int p in
  let d_cells = p.half * p.d_width in
  let e_cells = p.half * p.e_width in
  let y_cells = p.n - 1 in
  let cells = d_cells + e_cells + y_cells in
  let total = Combi.power q cells in
  Combi.iter_tuples q cells (fun digits ->
      let d =
        Array.init p.half (fun i ->
            Array.init p.d_width (fun j -> B.of_int digits.((i * p.d_width) + j)))
      in
      let e =
        Array.init p.half (fun i ->
            Array.init p.e_width (fun j ->
                B.of_int digits.(d_cells + (i * p.e_width) + j)))
      in
      let y =
        Array.init y_cells (fun i -> B.of_int digits.(d_cells + e_cells + i))
      in
      f { Hard_instance.c = [||]; d; e; y });
  total

let lemma35b_count_ones_exact p ~c =
  let q = q_as_int p in
  let cells = (p.half * p.d_width) + (p.half * p.e_width) + (p.n - 1) in
  let total = Combi.power q cells in
  if total > 2_000_000 then
    invalid_arg "Truth_restricted.lemma35b_count_ones_exact: space too large";
  let normal = normal_vector p c in
  let ones = ref 0 in
  let total' =
    iter_agent2_instances p (fun partial ->
        let f = { partial with Hard_instance.c } in
        if singular_with ~normal p f then incr ones)
  in
  (!ones, total')

let lemma35b_count_ones_sampled g p ~c ~trials =
  let normal = normal_vector p c in
  let ones = ref 0 in
  for _ = 1 to trials do
    let f = Hard_instance.random_free g p in
    let f = { f with Hard_instance.c } in
    if singular_with ~normal p f then incr ones
  done;
  (!ones, trials)

let sampled_truth_matrix g p ~columns =
  let cs = enumerate_c p in
  if List.length cs > 10_000 then
    invalid_arg "Truth_restricted.sampled_truth_matrix: too many rows";
  let normals = List.map (fun c -> normal_vector p c) cs in
  let frees = List.init columns (fun _ -> Hard_instance.random_free g p) in
  (* Precompute each column's B·u once; the truth entry is then a
     single inner product with the row's normal. *)
  let bus = List.map (Hard_instance.b_dot_u p) frees in
  let normal_arr = Array.of_list normals and bu_arr = Array.of_list bus in
  let tm_rows = Array.of_list cs and tm_cols = Array.of_list frees in
  {
    Commx_comm.Truth_matrix.row_args = tm_rows;
    col_args = tm_cols;
    values =
      Commx_util.Bitmat.init (Array.length tm_rows) (Array.length tm_cols)
        (fun i j -> B.is_zero (Gadget.dot normal_arr.(i) bu_arr.(j)));
  }

let random_distinct_cs g p r =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let guard = ref 0 in
  while List.length !acc < r && !guard < 100 * r do
    incr guard;
    let f = Hard_instance.random_free g p in
    let key = span_key p f.Hard_instance.c in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      acc := f.Hard_instance.c :: !acc
    end
  done;
  if List.length !acc < r then
    failwith "Truth_restricted: could not draw enough distinct C instances";
  !acc

let lemma36_intersection_dims g p ~r ~trials =
  Array.init trials (fun _ ->
      let cs = random_distinct_cs g p r in
      let spans = List.map (Lemma32.span_a p) cs in
      Sub.dim (Sub.intersect_many spans))

let lemma33_rectangle_closure p ~cs ~frees =
  let normals = List.map (fun c -> normal_vector p c) cs in
  (* singular_with only reads the B-side blocks of [f] (via B·u) and
     the normal derived from each C, so the pairing below evaluates the
     full rectangle. *)
  let all_ones =
    List.for_all
      (fun f -> List.for_all (fun normal -> singular_with ~normal p f) normals)
      frees
  in
  if not all_ones then true
  else begin
    let spans = List.map (Lemma32.span_a p) cs in
    let inter = Sub.intersect_many spans in
    List.for_all
      (fun f ->
        let bu = Array.map Q.of_bigint (Hard_instance.b_dot_u p f) in
        Sub.mem bu inter)
      frees
  end

let lemma37_projected_count g p ~cs ~samples =
  match cs with
  | [] -> invalid_arg "Truth_restricted.lemma37_projected_count: no spans"
  | c0 :: rest ->
  let rest_normals = List.map (fun c -> normal_vector p c) rest in
  let seen = Hashtbl.create 64 in
  for _ = 1 to samples do
    (* Columns of a 1-rectangle through c0's row: completions against
       c0 are singular there by construction; keep those singular for
       every other row as well. *)
    let e = (Hard_instance.random_free g p).Hard_instance.e in
    let f = (Lemma35.complete p ~c:c0 ~e).Lemma35.free in
    let singular_everywhere =
      List.for_all (fun normal -> singular_with ~normal p f) rest_normals
    in
    if singular_everywhere then begin
      let bu = Hard_instance.b_dot_u p f in
      (* Projection p of Lemma 3.7: components half..n-2 (0-based). *)
      let proj =
        String.concat ","
          (List.init p.half (fun i -> B.to_string bu.(p.half + i)))
      in
      Hashtbl.replace seen proj ()
    end
  done;
  Hashtbl.length seen
