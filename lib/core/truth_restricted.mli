(** The restricted truth matrix of Section 3, and the counting lemmas.

    Under π₀ and the Fig. 1/3 restrictions, Agent 1's effective input
    is the block [C] and Agent 2's is [(D, E, y)]; the restricted truth
    matrix has one row per [C] instance and one column per [(D, E, y)]
    instance, with a 1 where [M] is singular.  Full enumeration of the
    column space is exponential even for tiny parameters, so this
    module provides:

    - exact enumeration of the row space (all [C] instances) and the
      Lemma 3.4 distinctness check;
    - a fast per-row singularity test (the orthogonal complement of
      [Span(A)] is one-dimensional, so membership is a single inner
      product with the normal vector);
    - exact or sampled counts of "one" entries per row (Lemma 3.5(b));
    - span-intersection dimension statistics (Lemma 3.6);
    - the 1-rectangle column-count machinery of Lemmas 3.3 / 3.7. *)

type bigint = Commx_bigint.Bigint.t

val enumerate_c : Params.t -> bigint array array list
(** All [q^(half²)] instances of [C].
    @raise Invalid_argument when that count exceeds [10^6]. *)

val count_c : Params.t -> int
(** [q^(half²)] as an int.  @raise Failure on overflow. *)

val normal_vector : Params.t -> bigint array array -> bigint array
(** An integer normal spanning the 1-dimensional orthogonal complement
    of [Span(A)]: [v ∈ Span(A) ⟺ normal · v = 0]. *)

val singular_with : normal:bigint array -> Params.t -> Hard_instance.free -> bool
(** Fast singularity test for a fixed row (fixed [C], precomputed
    normal). *)

val lemma34_all_spans_distinct : Params.t -> bool * int
(** Enumerate all [C]; return (all spans pairwise distinct, count).
    Distinctness is decided by canonical RREF bases. *)

val lemma35b_count_ones_exact : Params.t -> c:bigint array array -> int * int
(** Exact (ones, total) over *all* [(D, E, y)] instances for one row.
    @raise Invalid_argument when the column space exceeds [2 * 10^6]. *)

val lemma35b_count_ones_sampled :
  Commx_util.Prng.t -> Params.t -> c:bigint array array -> trials:int -> int * int
(** Sampled (ones, trials) estimate of the same fraction. *)

val sampled_truth_matrix :
  Commx_util.Prng.t -> Params.t -> columns:int ->
  (bigint array array, Hard_instance.free) Commx_comm.Truth_matrix.t
(** The restricted truth matrix itself, with ALL [q^(half²)] rows (one
    per [C] instance) and [columns] i.i.d. random agent-2 columns; the
    entry is 1 iff the assembled matrix is singular (computed through
    the per-row normal vectors, so building is fast).  This is the
    object Section 3 manipulates — enumerable on the row side at tiny
    parameters, sampled on the column side.
    @raise Invalid_argument when the row count exceeds [10^4]. *)

val lemma36_intersection_dims :
  Commx_util.Prng.t -> Params.t -> r:int -> trials:int -> int array
(** For each trial, draw [r] distinct random [C] instances and return
    the dimension of the intersection of their spans. *)

val lemma33_rectangle_closure :
  Params.t -> cs:bigint array array list -> frees:Hard_instance.free list -> bool
(** Lemma 3.3 on explicit data: if every (row, column) pair in
    [cs x frees] is singular, then every [B·u] lies in the intersection
    of all the spans.  Returns whether the implication's conclusion
    holds (the premise is checked first; if the rectangle is not
    all-ones the function returns [true] vacuously... it returns the
    material implication). *)

val lemma37_projected_count :
  Commx_util.Prng.t -> Params.t -> cs:bigint array array list -> samples:int -> int
(** Number of distinct projected fingerprints [p(B·u) = E·w] among
    [samples] columns of a 1-rectangle through the first span of [cs]:
    each column is a Lemma 3.5(a) completion of a random [E] against
    [List.hd cs] (hence singular on that row), kept only if singular on
    every other row too — an empirical stand-in for the column count
    bounded by [q^(3n²/8)] in Lemma 3.7.
    @raise Invalid_argument on an empty [cs]. *)
