module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix

let split ~m =
  if m < 10 then invalid_arg "Padding.split: need m >= 10";
  let d = (m - 2) mod 4 in
  let n = (m - d) / 2 in
  assert (n mod 2 = 1 && (2 * n) + d = m);
  (n, d)

let embed inner ~m =
  let n, d = split ~m in
  if Zm.rows inner <> 2 * n || Zm.cols inner <> 2 * n then
    invalid_arg
      (Printf.sprintf "Padding.embed: inner must be %d x %d for m = %d"
         (2 * n) (2 * n) m);
  ignore d;
  Zm.init m m (fun i j ->
      if i < 2 * n && j < 2 * n then Zm.get inner i j
      else if i = j then B.one
      else B.zero)

let extract padded =
  let m = Zm.rows padded in
  let n, _ = split ~m in
  Zm.init (2 * n) (2 * n) (Zm.get padded)

let singularity_preserved inner ~m =
  Zm.is_singular inner = Zm.is_singular (embed inner ~m)
