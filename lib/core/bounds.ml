let log2 x = log x /. log 2.0

let trivial_upper_bits ~n ~k = 2 * n * n * k

let log2_q ~k = log2 ((2.0 ** float_of_int k) -. 1.0)

let lower_bound_exponent ~n ~k =
  (* From the Section 3 accounting: ones per row >= q^(n²/2 - c1 n
     log_q n); rows q^((n-1)²/4); rectangles with >= r = q^(n²/16 + n
     log_q n) rows have <= q^(3n²/8 + c2 n log_q n) columns.  The
     partition bound is ones / max-1-rectangle:
     q^((n-1)²/4 + n²/2) / (q^(n²/16 + n log) * q^(3n²/8 + c2 n log))
     = q^(5n²/16 - O(n log_q n)).  We charge 3 n log_q n for the
     O-term (the sum of the proof's explicit log factors). *)
  let fn = float_of_int n in
  let lq = if k >= 62 then 1.0 else
      let q = (2.0 ** float_of_int k) -. 1.0 in
      Float.max 1.0 (log fn /. log q)
  in
  (5.0 /. 16.0 *. fn *. fn) -. (3.0 *. fn *. lq)

let deterministic_lower_bits ~n ~k =
  Float.max 0.0 (lower_bound_exponent ~n ~k *. log2_q ~k)

let randomized_upper_bits ~n ~k ~epsilon =
  let b = Commx_bigint.Primes.fingerprint_prime_bits ~n ~k ~epsilon in
  (* Agent 1 sends its 2n² entries reduced mod p (b bits each), plus
     one result bit back. *)
  (2 * n * n * b) + 1

let deterministic_over_randomized ~n ~k ~epsilon =
  float_of_int (trivial_upper_bits ~n ~k)
  /. float_of_int (randomized_upper_bits ~n ~k ~epsilon)

let at2_lower ~info_bits = info_bits *. info_bits

let area_lower ~info_bits = info_bits

let at_2a_lower ~info_bits ~alpha =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Bounds.at_2a_lower";
  info_bits ** (1.0 +. alpha)

let time_lower_given_area ~info_bits ~area =
  if area <= 0.0 then invalid_arg "Bounds.time_lower_given_area";
  info_bits /. sqrt area

let info_bits ~n ~k = float_of_int (k * n * n)

let our_time_lower ~n ~k = sqrt (float_of_int k) *. float_of_int n

let chazelle_monier_time_lower ~n = float_of_int n

let our_at_lower ~n ~k =
  (float_of_int k ** 1.5) *. (float_of_int n ** 3.0)

let chazelle_monier_at_lower ~n = float_of_int (n * n)
