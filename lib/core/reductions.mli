(** The reductions behind Corollaries 1.2 and 1.3, and the rank-n/2
    gadget from Section 1.

    The lower-bound logic runs: any protocol computing the harder
    problem (determinant, rank, QR, SVD, LUP, solvability) yields a
    protocol for singularity at the same cost, so the Θ(k n²) bound
    transfers.  Each [singular_via_*] function below answers
    singularity *using only the output of the harder problem*, which
    is exactly the content of the reduction; the test suite checks each
    against ground truth. *)

type bigint = Commx_bigint.Bigint.t

(** {1 Corollary 1.2} *)

val singular_via_det : Commx_linalg.Zmatrix.t -> bool
(** (a) from the determinant. *)

val singular_via_rank : Commx_linalg.Zmatrix.t -> bool
(** (b) from the rank. *)

val singular_via_qr : Commx_linalg.Zmatrix.t -> bool
(** (c) from the (Gram–Schmidt) QR factor structure: the number of
    nonzero columns of Q. *)

val singular_via_svd : Commx_linalg.Zmatrix.t -> bool
(** (d) from the singular values (numerical; entries must fit doubles;
    decisions cross-checked against exact rank in the tests). *)

val singular_via_svd_exact : Commx_linalg.Zmatrix.t -> bool
(** (d), exact variant: the number of zero singular values read off the
    characteristic polynomial of MᵀM (no floating point). *)

val singular_via_smith : Commx_linalg.Zmatrix.t -> bool
(** Decomposition-flavored variant: rank from the Smith normal form's
    invariant factors. *)

val singular_via_charpoly : Commx_linalg.Zmatrix.t -> bool
(** (a)-adjacent: the constant coefficient of det(xI − M). *)

val singular_via_lup : Commx_linalg.Zmatrix.t -> bool
(** (e) from the LUP factors: a zero on U's diagonal. *)

val singular_via_lup_structure : Commx_linalg.Zmatrix.t -> bool
(** (e), weakened form: using only the *nonzero structure* of U. *)

(** {1 Corollary 1.3 — linear-system solvability} *)

val solvability_instance :
  Commx_linalg.Zmatrix.t -> Commx_linalg.Zmatrix.t * bigint array
(** [solvability_instance m = (m', b)]: [b] is [m]'s first column and
    [m'] is [m] with that column zeroed — the instance whose
    solvability decides [m]'s singularity whenever the remaining
    columns are independent (which the Fig. 3 restrictions
    guarantee). *)

val system_solvable : Commx_linalg.Zmatrix.t -> bigint array -> bool
(** Exact solvability of [A x = b] over ℚ. *)

val singular_via_solvability : Params.t -> Hard_instance.free -> bool
(** Corollary 1.3 put to work on a hard instance: decide singularity
    of [build_m p f] from the solvability answer alone. *)

(** {1 Section 1 gadgets} *)

val product_gadget :
  Commx_linalg.Zmatrix.t -> Commx_linalg.Zmatrix.t -> Commx_linalg.Zmatrix.t ->
  Commx_linalg.Zmatrix.t
(** [product_gadget a b c] is the [2n x 2n] matrix [\[\[I, B\]; \[A, C\]\]];
    its rank is [n] iff [A·B = C]. *)

val product_check_via_rank :
  Commx_linalg.Zmatrix.t -> Commx_linalg.Zmatrix.t -> Commx_linalg.Zmatrix.t -> bool
(** Decides [A·B = C] through the gadget's rank. *)

val span_union_covers :
  Commx_linalg.Subspace.t -> Commx_linalg.Subspace.t -> bool
(** The vector-space span problem of Lovász–Saks: does the union of the
    two subspaces span the whole ambient space? *)

val span_instance_of_gadget :
  Commx_linalg.Zmatrix.t -> Commx_linalg.Subspace.t * Commx_linalg.Subspace.t
(** Split a square matrix's columns into two halves and return their
    spans — the natural span-problem instance attached to a
    singularity instance (their union spans iff the matrix is
    nonsingular, when the matrix is [2m x 2m] with independent
    halves... in general: union spans iff rank = dimension). *)
