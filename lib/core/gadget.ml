module B = Commx_bigint.Bigint

type bigint = B.t

let neg_q (p : Params.t) = B.neg p.Params.q

let u_vector p =
  let n = p.Params.n in
  Array.init (n - 1) (fun t -> B.pow (neg_q p) (n - 2 - t))

let w_vector p =
  let ew = p.Params.e_width in
  Array.init ew (fun t -> B.pow (neg_q p) (ew - 1 - t))

let to_neg_base ~q ~digits v =
  if B.compare q B.two < 0 then invalid_arg "Gadget.to_neg_base: q < 2";
  let d = Array.make digits B.zero in
  let rec go v j =
    if B.is_zero v then Some d
    else if j >= digits then None
    else begin
      (* v = digit + (-q) * v'  with digit in [0, q-1]:
         digit = v mod q (euclidean), v' = (digit - v) / q. *)
      let digit = B.erem v q in
      d.(j) <- digit;
      let v' = B.div (B.sub digit v) q in
      go v' (j + 1)
    end
  in
  go v 0

let of_neg_base ~q d =
  let nq = B.neg q in
  (* Horner from the most significant digit. *)
  let acc = ref B.zero in
  for j = Array.length d - 1 downto 0 do
    acc := B.add (B.mul !acc nq) d.(j)
  done;
  !acc

let neg_base_range ~q ~digits =
  (* Max: all even positions at q-1; min: all odd positions at q-1. *)
  let qm1 = B.sub q B.one in
  let lo = ref B.zero and hi = ref B.zero in
  for j = 0 to digits - 1 do
    let p = B.pow (B.neg q) j in
    if j land 1 = 0 then hi := B.add !hi (B.mul qm1 p)
    else lo := B.add !lo (B.mul qm1 p)
  done;
  (!lo, !hi)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Gadget.dot";
  let acc = ref B.zero in
  Array.iteri (fun i ai -> acc := B.add !acc (B.mul ai b.(i))) a;
  !acc
