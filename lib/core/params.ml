module B = Commx_bigint.Bigint

type t = {
  n : int;
  k : int;
  q : B.t;
  half : int;
  logq_n : int;
  d_width : int;
  e_width : int;
  m : B.t;
}

let ceil_log ~base x =
  if base < 2 || x < 1 then invalid_arg "Params.ceil_log";
  let rec go power l = if power >= x then l else go (power * base) (l + 1) in
  go 1 0

(* q can be huge (2^k - 1); compare powers of q against n in bignum
   space only when needed.  For k >= 2 and n < 2^62 the int version is
   fine because the loop exits after at most log2 n steps. *)
let ceil_log_q ~k n =
  if k >= 62 then 1 (* q >= 2^61 > any practical n *)
  else ceil_log ~base:((1 lsl k) - 1) n

let is_valid ~n ~k =
  n >= 5 && n mod 2 = 1 && k >= 2 && n - 3 - ceil_log_q ~k n >= 0

let make ~n ~k =
  if not (is_valid ~n ~k) then
    invalid_arg
      (Printf.sprintf
         "Params.make: need n odd >= 5, k >= 2, and n - 3 - ceil(log_q n) \
          >= 0 (got n=%d k=%d)"
         n k);
  let q = B.sub (B.shift_left B.one k) B.one in
  let half = (n - 1) / 2 in
  let logq_n = ceil_log_q ~k n in
  let d_width = logq_n + 2 in
  let e_width = n - 3 - logq_n in
  let m = B.pow q e_width in
  { n; k; q; half; logq_n; d_width; e_width; m }

let min_n_for_k ~k =
  let rec go n = if is_valid ~n ~k then n else go (n + 2) in
  go 5

let free_cells_agent1 p = p.half * p.half

let free_cells_agent2 p =
  (p.half * p.d_width) + (p.half * p.e_width) + (p.n - 1)

let pp ppf p =
  Format.fprintf ppf
    "{n=%d k=%d q=%s half=%d logq_n=%d d_width=%d e_width=%d}" p.n p.k
    (B.to_string p.q) p.half p.logq_n p.d_width p.e_width
