module B = Commx_bigint.Bigint

type ledger = {
  n : int;
  k : int;
  rows : B.t;
  ones_per_row_min : B.t;
  ones_per_row_max : B.t;
  r_threshold : B.t;
  wide_rect_max_cols : B.t;
  narrow_rect_fraction_exponent : float;
  d_f_log2 : float;
  comm_lower_bits : float;
}

let log2_q (p : Params.t) =
  (* q = 2^k - 1: log2 q = k + log2(1 - 2^-k) *)
  float_of_int p.k +. (log1p (-.(2.0 ** float_of_int (-p.k))) /. log 2.0)

let qpow (p : Params.t) e = if e <= 0 then B.one else B.pow p.q e

(* Shared derivation: given the five log_q exponents, produce the
   ledger.  All exponents are in units of log_q. *)
let derive (p : Params.t) ~rows_e ~ones_min_e ~ones_max_e ~r_e ~wide_e =
  let lq = log2_q p in
  (* d(f) >= total ones / (largest monochromatic-1 cover unit):
     narrow rectangles (< r rows) cover < r * ones_max cells;
     wide rectangles cover <= rows * wide_cols cells. *)
  let supply = rows_e +. ones_min_e in
  let narrow_cover = r_e +. ones_max_e in
  let wide_cover = rows_e +. wide_e in
  let d_exp = supply -. Float.max narrow_cover wide_cover in
  let d_f_log2 = d_exp *. lq in
  {
    n = p.n;
    k = p.k;
    rows = qpow p (int_of_float (Float.round rows_e));
    ones_per_row_min = qpow p (int_of_float (Float.round ones_min_e));
    ones_per_row_max = qpow p (int_of_float (Float.round ones_max_e));
    r_threshold = qpow p (int_of_float (ceil r_e));
    wide_rect_max_cols = qpow p (int_of_float (ceil wide_e));
    narrow_rect_fraction_exponent = supply -. narrow_cover;
    d_f_log2;
    comm_lower_bits = Float.max 0.0 (d_f_log2 -. 2.0);
  }

let ledger (p : Params.t) =
  let fn = float_of_int p.n in
  let logq_n = float_of_int p.logq_n in
  let rows_e = float_of_int (p.half * p.half) (* (n-1)^2/4 *) in
  let ones_min_e = float_of_int (p.half * p.e_width) (* E instances *) in
  let ones_max_e = float_of_int (((p.n * p.n) - 1) / 2) in
  let r_e = (fn *. fn /. 16.0) +. (fn *. logq_n) in
  let wide_e = (3.0 *. fn *. fn /. 8.0) +. (fn *. logq_n) in
  derive p ~rows_e ~ones_min_e ~ones_max_e ~r_e ~wide_e

let proper_partition_ledger (p : Params.t) =
  (* Definition 3.8 only guarantees the first agent half of C and the
     second agent half of each E row, so the C- and E-driven exponents
     halve; D and y contribute only O(k n log n) bits, absorbed into
     the same n-log correction the pi_0 ledger already carries. *)
  let fn = float_of_int p.n in
  let logq_n = float_of_int p.logq_n in
  let rows_e = float_of_int (p.half * p.half) /. 2.0 in
  let ones_min_e = float_of_int (p.half * p.e_width) /. 2.0 in
  let ones_max_e = float_of_int (((p.n * p.n) - 1) / 2) /. 2.0 in
  let r_e = (fn *. fn /. 16.0) +. (fn *. logq_n) in
  let wide_e = (3.0 *. fn *. fn /. 16.0) +. (fn *. logq_n) in
  derive p ~rows_e ~ones_min_e ~ones_max_e ~r_e ~wide_e

let pp ppf l =
  let show x =
    let s = B.to_string x in
    if String.length s <= 40 then s
    else
      Printf.sprintf "~2^%d (%d decimal digits)" (B.bit_length x)
        (String.length s)
  in
  Format.fprintf ppf
    "@[<v>Theorem 1.1 ledger (n=%d, k=%d):@,\
     rows (Lemma 3.4)            : %s@,\
     ones/row min (Lemma 3.5b)   : %s@,\
     ones/row max (Lemma 3.5b)   : %s@,\
     r threshold                 : %s@,\
     wide-rect max cols (L. 3.7) : %s@,\
     narrow-rect fraction        : q^-%.1f@,\
     log2 d(f) >=                : %.1f@,\
     communication >=            : %.1f bits@]"
    l.n l.k (show l.rows)
    (show l.ones_per_row_min)
    (show l.ones_per_row_max)
    (show l.r_threshold)
    (show l.wide_rect_max_cols)
    l.narrow_rect_fraction_exponent l.d_f_log2 l.comm_lower_bits
