module Pt = Commx_comm.Partition
module Prng = Commx_util.Prng
module Zm = Commx_linalg.Zmatrix

type transform = {
  row_perm : int array;
  col_perm : int array;
  swap_agents : bool;
}

let identity_transform (p : Params.t) =
  let id = Array.init (2 * p.n) (fun i -> i) in
  { row_perm = id; col_perm = Array.copy id; swap_agents = false }

let bit_of_cell (p : Params.t) ~row ~col ~bit =
  let dim = 2 * p.n in
  if row < 0 || row >= dim || col < 0 || col >= dim || bit < 0 || bit >= p.k
  then invalid_arg "Lemma39.bit_of_cell";
  (((col * dim) + row) * p.k) + bit

let c_region (p : Params.t) =
  List.concat_map
    (fun i ->
      List.init p.half (fun t -> (p.n + i, 1 + p.half + t)))
    (List.init p.half (fun i -> i))

let e_region_rows (p : Params.t) =
  List.init p.half (fun i ->
      let row = p.n + p.half + i in
      (i, List.init p.e_width (fun t -> (row, p.n + 1 + p.d_width + t))))

let agent1_bits_of_cells p partition cells =
  List.fold_left
    (fun acc (row, col) ->
      let cnt = ref 0 in
      for b = 0 to p.Params.k - 1 do
        if Pt.agent_of partition (bit_of_cell p ~row ~col ~bit:b) = 1 then
          incr cnt
      done;
      acc + !cnt)
    0 cells

let is_proper (p : Params.t) partition =
  let c_cells = c_region p in
  let c_total = List.length c_cells * p.k in
  let c_agent1 = agent1_bits_of_cells p partition c_cells in
  2 * c_agent1 >= c_total
  && List.for_all
       (fun (_, cells) ->
         let total = List.length cells * p.k in
         let a1 = agent1_bits_of_cells p partition cells in
         (* agent 2 must read at least half of every E row *)
         2 * (total - a1) >= total)
       (e_region_rows p)

let apply_transform (p : Params.t) partition t =
  let dim = 2 * p.n in
  let bits = dim * dim * p.k in
  let v = Commx_util.Bitvec.create bits in
  for col = 0 to dim - 1 do
    for row = 0 to dim - 1 do
      for b = 0 to p.k - 1 do
        let old_bit =
          bit_of_cell p ~row:t.row_perm.(row) ~col:t.col_perm.(col) ~bit:b
        in
        let agent1 = Pt.agent_of partition old_bit = 1 in
        let agent1 = if t.swap_agents then not agent1 else agent1 in
        Commx_util.Bitvec.set v (bit_of_cell p ~row ~col ~bit:b) agent1
      done
    done
  done;
  Pt.of_bitvec v

(* Greedy construction: place the half x half cell block with the most
   agent-1 bits on the C region, then pick E rows (among the remaining
   rows) and E columns (among the remaining columns) that are
   agent-2-heavy, one permutation per attempt with randomized
   tie-breaking. *)
let try_build g (p : Params.t) partition ~swap =
  let dim = 2 * p.n in
  let a1 row col =
    let cnt = ref 0 in
    for b = 0 to p.k - 1 do
      if Pt.agent_of partition (bit_of_cell p ~row ~col ~bit:b) = 1 then incr cnt
    done;
    if swap then p.k - !cnt else !cnt
  in
  (* Column scores: total agent-1 mass per column. *)
  let col_mass =
    Array.init dim (fun col ->
        let s = ref 0 in
        for row = 0 to dim - 1 do
          s := !s + a1 row col
        done;
        (col, !s))
  in
  let jitter (x, s) = (x, (s * 1000) + Prng.int g 1000) in
  let by_desc a =
    let a = Array.map jitter a in
    Array.sort (fun (_, s1) (_, s2) -> compare s2 s1) a;
    Array.map fst a
  in
  let cols_desc = by_desc col_mass in
  (* Choose C columns: the half agent-1-heaviest columns. *)
  let c_cols = Array.sub cols_desc 0 p.half in
  (* Choose C rows: heaviest rows restricted to those columns. *)
  let row_mass_c =
    Array.init dim (fun row ->
        (row, Array.fold_left (fun acc col -> acc + a1 row col) 0 c_cols))
  in
  let rows_desc = by_desc row_mass_c in
  let c_rows = Array.sub rows_desc 0 p.half in
  let used_rows = Array.make dim false in
  Array.iter (fun r -> used_rows.(r) <- true) c_rows;
  let used_cols = Array.make dim false in
  Array.iter (fun c -> used_cols.(c) <- true) c_cols;
  (* Choose E columns: among unused columns, the e_width with the most
     agent-2 mass over unused rows. *)
  let e_col_mass =
    Array.of_list
      (List.filter_map
         (fun col ->
           if used_cols.(col) then None
           else begin
             let s = ref 0 in
             for row = 0 to dim - 1 do
               if not used_rows.(row) then s := !s + (p.k - a1 row col)
             done;
             Some (col, !s)
           end)
         (List.init dim (fun c -> c)))
  in
  let e_cols_desc = by_desc e_col_mass in
  if Array.length e_cols_desc < p.e_width then None
  else begin
    let e_cols = Array.sub e_cols_desc 0 p.e_width in
    (* Choose E rows: unused rows where agent 2 dominates on e_cols. *)
    let candidates =
      Array.of_list
        (List.filter_map
           (fun row ->
             if used_rows.(row) then None
             else begin
               let a2 =
                 Array.fold_left
                   (fun acc col -> acc + (p.k - a1 row col))
                   0 e_cols
               in
               Some (row, a2)
             end)
           (List.init dim (fun r -> r)))
    in
    let cand_desc = by_desc candidates in
    if Array.length cand_desc < p.half then None
    else begin
      let e_rows = Array.sub cand_desc 0 p.half in
      (* Validate E per-row domination before committing. *)
      let total = p.e_width * p.k in
      let all_ok =
        p.e_width = 0
        || Array.for_all
             (fun row ->
               let a2 =
                 Array.fold_left
                   (fun acc col -> acc + (p.k - a1 row col))
                   0 e_cols
               in
               2 * a2 >= total)
             e_rows
      in
      (* Validate C-block domination. *)
      let c_a1 =
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun acc col -> acc + a1 row col) acc c_cols)
          0 c_rows
      in
      let c_ok = 2 * c_a1 >= p.half * p.half * p.k in
      if not (all_ok && c_ok) then None
      else begin
        (* Assemble permutations: target C rows are n..n+half-1, target
           C cols 1+half..n, target E rows n+half..2n-2, target E cols
           n+1+d_width..2n-1.  Remaining rows/cols fill the rest. *)
        let row_perm = Array.make dim (-1) in
        let col_perm = Array.make dim (-1) in
        Array.iteri (fun i r -> row_perm.(p.n + i) <- r) c_rows;
        Array.iteri (fun i r -> row_perm.(p.n + p.half + i) <- r) e_rows;
        Array.iteri (fun i c -> col_perm.(1 + p.half + i) <- c) c_cols;
        Array.iteri (fun i c -> col_perm.(p.n + 1 + p.d_width + i) <- c) e_cols;
        let fill perm used_flags =
          let unused =
            List.filter (fun x -> not used_flags.(x)) (List.init dim (fun x -> x))
          in
          let rest = ref unused in
          Array.iteri
            (fun i v ->
              if v = -1 then begin
                match !rest with
                | [] -> failwith "Lemma39: permutation fill underflow"
                | x :: tl ->
                    perm.(i) <- x;
                    rest := tl
              end)
            perm
        in
        let row_used = Array.make dim false in
        Array.iter (fun r -> row_used.(r) <- true)
          (Array.of_list
             (List.filter (fun r -> r >= 0) (Array.to_list row_perm)));
        let col_used = Array.make dim false in
        Array.iter (fun c -> col_used.(c) <- true)
          (Array.of_list
             (List.filter (fun c -> c >= 0) (Array.to_list col_perm)));
        fill row_perm row_used;
        fill col_perm col_used;
        Some { row_perm; col_perm; swap_agents = swap }
      end
    end
  end

let find_transform ?(attempts = 64) g p partition =
  let rec go i =
    if i >= attempts then None
    else begin
      let swap = i land 1 = 1 in
      match try_build g p partition ~swap with
      | Some t ->
          let induced = apply_transform p partition t in
          if is_proper p induced then Some t else go (i + 1)
      | None -> go (i + 1)
    end
  in
  (* Fast path: maybe already proper. *)
  if is_proper p partition then Some (identity_transform p) else go 0

let permutation_preserves_singularity g p t =
  let f = Hard_instance.random_free g p in
  let m = Hard_instance.build_m p f in
  let permuted = Zm.permute_cols (Zm.permute_rows m t.row_perm) t.col_perm in
  Zm.is_singular m = Zm.is_singular permuted
