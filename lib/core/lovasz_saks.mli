(** The Lovász–Saks bound for the vector-space span problem.

    Section 1: for a finite vector set X spanning U, let
    [L = { span(S) : S ⊆ X }].  Lovász and Saks (FOCS 1988) showed the
    *fixed-partition* communication complexity of the span problem is
    [log² #L]; Theorem 1.1 pins the *unrestricted* complexity at
    Θ(k n²) when X is the k-bit integer vectors.  This module counts
    [#L] exactly for small ground sets by enumerating subsets and
    canonicalizing spans, so the two bounds can be compared on concrete
    instances (experiment E11). *)

val count_spans : Commx_linalg.Qmatrix.t -> int
(** [#L] for the ground set given by the matrix's columns.  Enumerates
    all 2^cols subsets.
    @raise Invalid_argument when the matrix has more than 16 columns. *)

val lovasz_saks_bits : Commx_linalg.Qmatrix.t -> float
(** [log2²(#L)] — the fixed-partition upper bound's growth form. *)

val lattice_height : Commx_linalg.Qmatrix.t -> int
(** Length of the longest chain in L (bounded by the ambient dimension
    plus one) — a structural sanity output used in tests. *)
