module Zm = Commx_linalg.Zmatrix

let singular_instance g p =
  let f = Hard_instance.random_free g p in
  let w =
    Lemma35.complete p ~c:f.Hard_instance.c ~e:f.Hard_instance.e
  in
  Hard_instance.build_m p w.Lemma35.free

let hard_instance g p = Hard_instance.build_m p (Hard_instance.random_free g p)

let unconstrained g (p : Params.t) =
  Zm.random_kbit g ~rows:(2 * p.n) ~cols:(2 * p.n) ~k:p.k

let mixed_pool g p ~count =
  List.init count (fun i ->
      match i mod 3 with
      | 0 -> singular_instance g p
      | 1 -> hard_instance g p
      | _ -> unconstrained g p)

let nonsingular_pool g p ~count =
  let rec draw budget =
    if budget = 0 then failwith "Workloads.nonsingular_pool: rejection failed"
    else begin
      let m = if budget mod 2 = 0 then hard_instance g p else unconstrained g p in
      if Zm.is_singular m then draw (budget - 1) else m
    end
  in
  List.init count (fun _ -> draw 100)
