(** Shared workload generators.

    Every experiment and test that exercises singularity protocols
    wants the same instance mix: matrices that are *guaranteed*
    singular (via the Lemma 3.5(a) completion — random sampling almost
    never produces singular matrices), structured hard instances, and
    unconstrained random k-bit matrices.  Centralized here so benches
    and suites agree on what "mixed" means. *)

val singular_instance :
  Commx_util.Prng.t -> Params.t -> Commx_linalg.Zmatrix.t
(** A hard instance forced singular by completing random [C], [E]. *)

val hard_instance : Commx_util.Prng.t -> Params.t -> Commx_linalg.Zmatrix.t
(** A random Fig. 1/3 instance (usually nonsingular). *)

val unconstrained :
  Commx_util.Prng.t -> Params.t -> Commx_linalg.Zmatrix.t
(** A uniform [2n x 2n] matrix of k-bit entries (no structure). *)

val mixed_pool :
  Commx_util.Prng.t -> Params.t -> count:int -> Commx_linalg.Zmatrix.t list
(** Cycles singular / hard / unconstrained, in that order. *)

val nonsingular_pool :
  Commx_util.Prng.t -> Params.t -> count:int -> Commx_linalg.Zmatrix.t list
(** Rejection-sampled nonsingular instances (for one-sided-error
    measurements). *)
