(** Lemma 3.2 — the singularity criterion.

    When [Span(A)] has dimension [n-1] (which the Fig. 3 restrictions
    force unconditionally), the [2n x 2n] matrix [M] is singular if and
    only if [B·u] lies in [Span(A)].  This turns singularity of the
    whole input into a statement about the two agents' private halves:
    Agent 1 determines the subspace, Agent 2 the vector. *)

val span_a : Params.t -> Hard_instance.bigint array array -> Commx_linalg.Subspace.t
(** Column span of [A] built from the given [C] block (a subspace of
    ℚⁿ). *)

val span_dimension_is_full : Params.t -> Hard_instance.bigint array array -> bool
(** [dim Span(A) = n - 1] — the lemma's precondition, always true
    under the restrictions. *)

val criterion : Params.t -> Hard_instance.free -> bool
(** [B·u ∈ Span(A)]. *)

val is_singular_direct : Commx_linalg.Zmatrix.t -> bool
(** Ground truth by exact rank computation (no gadget knowledge). *)

val agrees : Params.t -> Hard_instance.free -> bool
(** The lemma's statement on one instance:
    [criterion p f = is_singular_direct (build_m p f)]. *)
