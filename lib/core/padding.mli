(** The general-case reduction at the start of Section 3.

    Theorem 1.1 is proved for [2n x 2n] inputs with [n] odd; the paper
    lifts it to arbitrary [m x m] inputs by fixing the last [d] rows
    and columns, where [d = (m - 2) mod 4] and [n = (m - d)/2], to an
    identity pattern: then the [m x m] matrix is singular iff its
    leading [2n x 2n] principal submatrix is. *)

val split : m:int -> int * int
(** [(n, d)] with [2n + d = m], [n] odd.
    @raise Invalid_argument when [m < 10] (no valid odd [n >= 5]). *)

val embed : Commx_linalg.Zmatrix.t -> m:int -> Commx_linalg.Zmatrix.t
(** [embed inner ~m] places the [2n x 2n] matrix as the leading
    principal block of an [m x m] matrix whose trailing [d] diagonal
    entries are 1 and all other new entries 0.
    @raise Invalid_argument when sizes are inconsistent with
    {!split}. *)

val extract : Commx_linalg.Zmatrix.t -> Commx_linalg.Zmatrix.t
(** The leading [2n x 2n] principal submatrix an [m x m] padded matrix
    reduces to. *)

val singularity_preserved : Commx_linalg.Zmatrix.t -> m:int -> bool
(** [is_singular inner = is_singular (embed inner ~m)] — the
    correctness statement of the reduction, checked exactly. *)
