(** The arithmetic gadgets of Section 3: the vector [u], the projection
    vector [w], and base-(−q) digit representations.

    [u = ((-q)^(n-2), (-q)^(n-3), ..., (-q), 1)^T] is the forced
    coefficient vector of Lemma 3.2: any linear combination of the last
    [2n - 1] columns of [M] matching the first column must weight the
    [B]-columns by [u].  Base-(−q) representations with digits in
    [\[0, q-1\]] are what lets the completion algorithm of Lemma 3.5(a)
    realize arbitrary (bounded) integers as inner products [row · u]
    with row entries in the allowed range. *)

type bigint = Commx_bigint.Bigint.t

val u_vector : Params.t -> bigint array
(** Length [n-1]; [u.(t) = (-q)^(n-2-t)]. *)

val w_vector : Params.t -> bigint array
(** Length [e_width]; [w.(t) = (-q)^(e_width-1-t)] — the projection
    identity of Lemma 3.7 reads [p (B u) = E w]. *)

val to_neg_base : q:bigint -> digits:int -> bigint -> bigint array option
(** [to_neg_base ~q ~digits v]: digits [d] with [v = sum d.(j) (-q)^j],
    all in [\[0, q-1\]], or [None] when [v] needs more digits.  [q >= 2]. *)

val of_neg_base : q:bigint -> bigint array -> bigint
(** Inverse: [sum d.(j) (-q)^j]. *)

val neg_base_range : q:bigint -> digits:int -> bigint * bigint
(** [(lo, hi)]: the exact interval of integers representable with the
    given digit count (the representation is unique on it). *)

val dot : bigint array -> bigint array -> bigint
(** Integer inner product. *)
