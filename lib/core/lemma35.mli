(** Lemma 3.5(a) — the completion algorithm.

    Given any instances of the blocks [C] and [E], there exist [D] and
    [y] making [M] singular; the paper's proof is constructive and this
    module runs it:

    + set the coefficient tail [x_i = b_i · u] for the rows carrying
      [E] (those inner products have magnitude below [m = q^e_width]);
    + back-substitute through the [1/q]-superdiagonal block modulo [m]
      to fix [x_(half-1) .. x_0], making each [a_i · x] a multiple of
      [m] of bounded magnitude;
    + write each target [a_i · x] in base (−q) and place the digits in
      [D]'s row [i] (the columns of [D] meet [u] exactly at the powers
      [(-q)^(n-2) .. (-q)^(e_width)], i.e. multiples of [m]);
    + write [x_0] in base (−q) and place the digits in [y] (row [n-1]
      of [A] is [(1,0,...,0)], so the last equation reads
      [y · u = x_0]).

    The result satisfies [A·x = B·u] exactly, hence [B·u ∈ Span(A)],
    hence [M] is singular by Lemma 3.2. *)

type witness = {
  free : Hard_instance.free;  (** input [c], [e]; computed [d], [y] *)
  x : Hard_instance.bigint array;  (** the coefficient vector, [A·x = B·u] *)
}

val complete :
  Params.t ->
  c:Hard_instance.bigint array array ->
  e:Hard_instance.bigint array array ->
  witness
(** @raise Failure if a digit extraction leaves the representable
    range — which the lemma proves cannot happen; a raise here is a
    bug (and the test suite would catch it). *)

val check_witness : Params.t -> witness -> bool
(** Verifies [A·x = B·u] and that [M] is singular, exactly. *)
