module Qm = Commx_linalg.Qmatrix
module Sub = Commx_linalg.Subspace
module Q = Commx_bigint.Rational

let span_key s =
  String.concat ";"
    (List.map
       (fun v -> String.concat "," (Array.to_list (Array.map Q.to_string v)))
       (Sub.basis s))

let enumerate_spans m =
  let ncols = Qm.cols m in
  if ncols > 16 then invalid_arg "Lovasz_saks: more than 16 columns";
  let ambient = Qm.rows m in
  let cols = Array.init ncols (Qm.col m) in
  let seen = Hashtbl.create 256 in
  for mask = 0 to (1 lsl ncols) - 1 do
    let selected = ref [] in
    for j = ncols - 1 downto 0 do
      if mask lsr j land 1 = 1 then selected := cols.(j) :: !selected
    done;
    let s = Sub.of_vectors ambient !selected in
    let key = span_key s in
    if not (Hashtbl.mem seen key) then Hashtbl.replace seen key (Sub.dim s)
  done;
  seen

let count_spans m = Hashtbl.length (enumerate_spans m)

let lovasz_saks_bits m =
  let l = float_of_int (count_spans m) in
  let lg = log l /. log 2.0 in
  lg *. lg

let lattice_height m =
  let spans = enumerate_spans m in
  let max_dim = Hashtbl.fold (fun _ d acc -> max d acc) spans 0 in
  (* chains run from the zero space (dim 0) up to the top span *)
  max_dim + 1
