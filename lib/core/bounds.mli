(** Closed-form bound calculators for Theorem 1.1, its corollaries, and
    the VLSI consequences of Section 1.

    These are the formulas the experiments compare measurements
    against.  Lower bounds carry the explicit constants recoverable
    from the Section 3 proof (they are what "Ω" hides); upper bounds
    are exact counts of the trivial protocol. *)

(** {1 Communication bounds} *)

val trivial_upper_bits : n:int -> k:int -> int
(** Exact cost of the one-way protocol sending Agent 1's π₀ half of a
    [2n x 2n] matrix of [k]-bit entries: [2 n² k]. *)

val deterministic_lower_bits : n:int -> k:int -> float
(** The Theorem 1.1 lower bound with the proof's constants: the
    restricted truth matrix yields
    [d(f) >= q^(5 n²/16 - c·n·log_q n)], so communication is at least
    [(5/16) n² log2 q - O(n log n)] bits.  Negative values are clamped
    to 0 (the bound is vacuous at very small parameters). *)

val lower_bound_exponent : n:int -> k:int -> float
(** The exponent [5 n²/16 - 3 n log_q n] multiplying [log2 q] in the
    bound above (before clamping). *)

val randomized_upper_bits : n:int -> k:int -> epsilon:float -> int
(** Cost of the fingerprinting protocol: [(2n)² b + b] bits where [b]
    is the prime size from
    {!Commx_bigint.Primes.fingerprint_prime_bits} — the
    O(n² max(log n, log k)) contrast bound. *)

val deterministic_over_randomized : n:int -> k:int -> epsilon:float -> float
(** Ratio of {!trivial_upper_bits} to {!randomized_upper_bits} — grows
    like [k / max(log n, log k)]. *)

(** {1 VLSI area–time tradeoffs} *)

val at2_lower : info_bits:float -> float
(** Thompson: [A T² = Ω(I²)]; returns [I²]. *)

val area_lower : info_bits:float -> float
(** [A = Ω(I)] (Brent–Kung / Vuillemin / Yao); returns [I]. *)

val at_2a_lower : info_bits:float -> alpha:float -> float
(** The interpolated family [A T^(2α) = Ω(I^(1+α))], [0 <= α <= 1]. *)

val time_lower_given_area : info_bits:float -> area:float -> float
(** [T >= I / sqrt A]. *)

val our_time_lower : n:int -> k:int -> float
(** [T = Ω(k^(1/2) n)] — the improvement over Chazelle–Monier stated
    after Corollary 1.2 (boundary-I/O model). *)

val chazelle_monier_time_lower : n:int -> float
(** [T = Ω(n)] in the Chazelle–Monier model. *)

val our_at_lower : n:int -> k:int -> float
(** [A T = Ω(k^(3/2) n³)]. *)

val chazelle_monier_at_lower : n:int -> float
(** [A T = Ω(n²)]. *)

val info_bits : n:int -> k:int -> float
(** The information content [I = k (2n)² / 2] crossing the worst-case
    Thompson cut for singularity testing, up to the constant:
    we use [I = k n²] (the Theorem 1.1 bound). *)
