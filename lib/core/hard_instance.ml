module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix

type bigint = B.t

type free = {
  c : bigint array array;
  d : bigint array array;
  e : bigint array array;
  y : bigint array;
}

let make_block rows cols = Array.init rows (fun _ -> Array.make cols B.zero)

let zero_free (p : Params.t) =
  {
    c = make_block p.half p.half;
    d = make_block p.half p.d_width;
    e = make_block p.half p.e_width;
    y = Array.make (p.n - 1) B.zero;
  }

let check_entry (p : Params.t) what v =
  if B.sign v < 0 || B.compare v p.q >= 0 then
    invalid_arg
      (Printf.sprintf "Hard_instance: %s entry %s outside [0, q-1]" what
         (B.to_string v))

let check_block p what rows cols block =
  if
    Array.length block <> rows
    || Array.exists (fun r -> Array.length r <> cols) block
  then
    invalid_arg
      (Printf.sprintf "Hard_instance: %s must be %d x %d" what rows cols);
  Array.iter (fun r -> Array.iter (check_entry p what) r) block

let validate_free (p : Params.t) f =
  check_block p "C" p.half p.half f.c;
  check_block p "D" p.half p.d_width f.d;
  check_block p "E" p.half p.e_width f.e;
  if Array.length f.y <> p.n - 1 then
    invalid_arg "Hard_instance: y must have n-1 entries";
  Array.iter (check_entry p "y") f.y

let random_free g (p : Params.t) =
  let entry _ = B.random_below g p.q in
  let block rows cols = Array.init rows (fun _ -> Array.init cols entry) in
  {
    c = block p.half p.half;
    d = block p.half p.d_width;
    e = block p.half p.e_width;
    y = Array.init (p.n - 1) entry;
  }

let free_of_ints p ~c ~d ~e ~y =
  let conv = Array.map (Array.map B.of_int) in
  let f = { c = conv c; d = conv d; e = conv e; y = Array.map B.of_int y } in
  validate_free p f;
  f

(* A (n x (n-1)), 0-based:
   - A[i][i] = 1 for i <= n-2
   - A[i][i+1] = q for i+1 <= half-1 (superdiagonal within the first
     half columns)
   - A[i][half + t] = C[i][t] for i <= half-1, t <= half-1
   - rows half..n-2: unit vectors (diagonal only)
   - row n-1: (1, 0, ..., 0) *)
let build_a (p : Params.t) c =
  let n = p.n in
  Zm.init n (n - 1) (fun i j ->
      if i = n - 1 then (if j = 0 then B.one else B.zero)
      else if i = j then B.one
      else if i < p.half && j = i + 1 && j <= p.half - 1 then p.q
      else if i < p.half && j >= p.half then c.(i).(j - p.half)
      else B.zero)

(* B (n x (n-1)), 0-based:
   - rows 0..half-1: D in columns 0..d_width-1, zero elsewhere
   - rows half..n-2: E in columns d_width..n-2, zero elsewhere
   - row n-1: y *)
let build_b (p : Params.t) f =
  let n = p.n in
  Zm.init n (n - 1) (fun i j ->
      if i = n - 1 then f.y.(j)
      else if i < p.half then
        if j < p.d_width then f.d.(i).(j) else B.zero
      else if j >= p.d_width then f.e.(i - p.half).(j - p.d_width)
      else B.zero)

let build_m (p : Params.t) f =
  validate_free p f;
  let n = p.n in
  let a = build_a p f.c and b = build_b p f in
  Zm.init (2 * n) (2 * n) (fun i j ->
      if j = 0 then (if i = 0 then B.one else B.zero)
      else if j = n then (if i = n - 1 then B.one else B.zero)
      else if j < n then
        (* A columns: zero on top, A below *)
        if i < n then B.zero else Zm.get a (i - n) (j - 1)
      else if
        (* B columns, j in n+1..2n-1 *)
        i < n
      then
        if i + j = (2 * n) - 1 then B.one
        else if i + j = 2 * n then p.q
        else B.zero
      else Zm.get b (i - n) (j - n - 1))

let b_dot_u (p : Params.t) f =
  let b = build_b p f in
  let u = Gadget.u_vector p in
  Array.init p.n (fun i -> Gadget.dot (Zm.row b i) u)

let entries_in_range (p : Params.t) m =
  let limit = B.shift_left B.one p.k in
  let ok = ref true in
  for i = 0 to Zm.rows m - 1 do
    for j = 0 to Zm.cols m - 1 do
      let v = Zm.get m i j in
      if B.sign v < 0 || B.compare v limit >= 0 then ok := false
    done
  done;
  !ok

type block = C | D | E | Y

let free_positions (p : Params.t) =
  let n = p.n in
  let acc = ref [] in
  (* C: A rows 0..half-1, A cols half..n-2 -> M rows n+i, M cols 1+j *)
  for i = 0 to p.half - 1 do
    for t = 0 to p.half - 1 do
      acc := (C, n + i, 1 + p.half + t) :: !acc
    done
  done;
  (* D: B rows 0..half-1, B cols 0..d_width-1 -> M rows n+i, cols n+1+j *)
  for i = 0 to p.half - 1 do
    for t = 0 to p.d_width - 1 do
      acc := (D, n + i, n + 1 + t) :: !acc
    done
  done;
  (* E: B rows half..n-2, B cols d_width..n-2 *)
  for i = 0 to p.half - 1 do
    for t = 0 to p.e_width - 1 do
      acc := (E, n + p.half + i, n + 1 + p.d_width + t) :: !acc
    done
  done;
  (* y: B row n-1, all columns *)
  for t = 0 to n - 2 do
    acc := (Y, n + n - 1, n + 1 + t) :: !acc
  done;
  List.rev !acc

let pi0_agent_of_col (p : Params.t) col =
  if col < 0 || col >= 2 * p.n then invalid_arg "Hard_instance.pi0_agent_of_col";
  if col < p.n then 1 else 2
