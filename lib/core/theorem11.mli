(** The Theorem 1.1 accounting ledger.

    Section 3 proves the lower bound by exhibiting, for each (n, k),
    explicit quantities about the restricted truth matrix; the Ω in the
    theorem statement hides nothing but these.  This module computes
    the ledger exactly (as bignums — the quantities are astronomically
    large already at n = 15):

    - [rows]: number of rows, q^((n-1)²/4)                   (Lemma 3.4)
    - [ones_per_row_min]: q^(n²/2 - c₁ n log_q n)            (Lemma 3.5b)
    - [ones_per_row_max]: q^((n²-1)/2)                       (Lemma 3.5b)
    - [r_threshold]: q^(n²/16 + n log_q n)                   (page 403)
    - [wide_rect_max_cols]: q^(3n²/8 + c₂ n log_q n)         (Lemma 3.7)
    - [dfool]: the induced lower bound on d(f), and
    - [comm_lower_bits]: log₂ d(f) − 2                       (Yao)

    The same ledger with the halved exponents applies to arbitrary
    proper partitions (end of Section 3); [proper_partition_ledger]
    computes that variant. *)

type ledger = {
  n : int;
  k : int;
  rows : Commx_bigint.Bigint.t;
  ones_per_row_min : Commx_bigint.Bigint.t;
  ones_per_row_max : Commx_bigint.Bigint.t;
  r_threshold : Commx_bigint.Bigint.t;
  wide_rect_max_cols : Commx_bigint.Bigint.t;
  narrow_rect_fraction_exponent : float;
      (** rectangles with < r rows cover at most q^(-this) of the ones *)
  d_f_log2 : float;  (** log₂ of the derived lower bound on d(f) *)
  comm_lower_bits : float;  (** max(0, d_f_log2 - 2) *)
}

val ledger : Params.t -> ledger
(** The π₀ ledger.  Exponents that the paper writes with O(·) use the
    explicit constants from its displayed inequalities (c₁ = 1 for the
    E-block loss, c₂ = 1 from the row-enumeration step). *)

val proper_partition_ledger : Params.t -> ledger
(** The arbitrary-even-partition variant: the first agent is only
    guaranteed half of C and E (Definition 3.8), so the square
    exponents halve and D/y contribute an O(k n log n) correction. *)

val pp : Format.formatter -> ledger -> unit
