module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module Lup = Commx_linalg.Lup
module Gram = Commx_linalg.Gram
module Svd = Commx_linalg.Svd
module Sub = Commx_linalg.Subspace

type bigint = B.t

let singular_via_det m = B.is_zero (Zm.det m)

let singular_via_rank m = Zm.rank m < Zm.rows m

let singular_via_qr m =
  let d = Gram.decompose (Zm.to_qmatrix m) in
  Gram.rank_from_q d < Zm.rows m

let singular_via_svd m =
  Svd.numeric_rank (Svd.of_zmatrix m) < Zm.rows m

let singular_via_svd_exact m =
  Commx_linalg.Charpoly.zero_singular_values m > 0

let singular_via_smith m = Commx_linalg.Smith.is_singular m

let singular_via_charpoly m =
  let c = Commx_linalg.Charpoly.charpoly_z m in
  B.is_zero c.(0)

let singular_via_lup m =
  let d = Lup.decompose (Zm.to_qmatrix m) in
  let n = Qm.rows d.Lup.u in
  let zero_pivot = ref false in
  for i = 0 to n - 1 do
    if Q.is_zero (Qm.get d.Lup.u i i) then zero_pivot := true
  done;
  !zero_pivot

let singular_via_lup_structure m =
  (* Only the boolean support of U is consulted. *)
  let d = Lup.decompose (Zm.to_qmatrix m) in
  let structure = Lup.nonzero_structure d.Lup.u in
  let n = Commx_util.Bitmat.rows structure in
  let zero_pivot = ref false in
  for i = 0 to n - 1 do
    if not (Commx_util.Bitmat.get structure i i) then zero_pivot := true
  done;
  !zero_pivot

let solvability_instance m =
  let b = Zm.col m 0 in
  let m' =
    Zm.init (Zm.rows m) (Zm.cols m) (fun i j ->
        if j = 0 then B.zero else Zm.get m i j)
  in
  (m', b)

let system_solvable a b =
  let aq = Zm.to_qmatrix a in
  Qm.solvable aq (Array.map Q.of_bigint b)

let singular_via_solvability p f =
  let m = Hard_instance.build_m p f in
  let m', b = solvability_instance m in
  (* Under the Fig. 3 restrictions the last 2n-1 columns of M are
     independent, so M is singular iff column 0 is in their span, iff
     M' x = b is solvable. *)
  system_solvable m' b

let product_gadget a b c =
  let n = Zm.rows a in
  if
    (not (Zm.is_square a)) || (not (Zm.is_square b)) || not (Zm.is_square c)
    || Zm.rows b <> n || Zm.rows c <> n
  then invalid_arg "Reductions.product_gadget: need three n x n matrices";
  let top = Zm.hcat (Zm.identity n) b in
  let bottom = Zm.hcat a c in
  Zm.vcat top bottom

let product_check_via_rank a b c =
  let g = product_gadget a b c in
  Zm.rank g = Zm.rows a

let span_union_covers v1 v2 = Sub.spans_everything (Sub.add v1 v2)

let span_instance_of_gadget m =
  let nc = Zm.cols m in
  let qm = Zm.to_qmatrix m in
  let left = Array.init (nc / 2) (fun j -> j) in
  let right = Array.init (nc - (nc / 2)) (fun j -> (nc / 2) + j) in
  let rows_idx = Array.init (Zm.rows m) (fun i -> i) in
  let sub_of cols = Sub.of_matrix_columns (Qm.submatrix qm rows_idx cols) in
  (sub_of left, sub_of right)
