(** The hard-instance construction of Section 3 (Figures 1 and 3).

    The input matrix [M] is [2n x 2n] over [\[0, 2^k - 1\]].  Most of
    it is fixed; the free parts are the sub-blocks [C] (read by Agent 1
    under the column partition π₀) and [D], [E], [y] (read by
    Agent 2):

    {v
            col 0   cols 1..n-1      col n   cols n+1..2n-1
    row 0     1         0              0     anti-diagonal of 1s
    ...       0         0              0     with a parallel
    row n-1   0         0              1     anti-diagonal of qs
    row n     0  +-----------+         0   +-----------+
    ...       0  |     A     |         0   |     B     |
    row 2n-1  0  +-----------+         0   +-----------+
    v}

    [A] ([n x (n-1)]): unit diagonal; [q] on the superdiagonal within
    the first [half] columns; [C] (free) in rows [0..half-1], columns
    [half..n-2]; rows [half..n-2] are unit vectors; row [n-1] is
    [(1, 0, ..., 0)].

    [B] ([n x (n-1)]): [D] (free) in rows [0..half-1], columns
    [0..d_width-1]; [E] (free) in rows [half..n-2], columns
    [d_width..n-2]; row [n-1] is the free vector [y]; all other
    entries 0. *)

type bigint = Commx_bigint.Bigint.t

type free = {
  c : bigint array array;  (** [half x half] *)
  d : bigint array array;  (** [half x d_width] *)
  e : bigint array array;  (** [half x e_width] *)
  y : bigint array;  (** [n-1] *)
}

val zero_free : Params.t -> free

val validate_free : Params.t -> free -> unit
(** @raise Invalid_argument when shapes are wrong or an entry leaves
    [\[0, q-1\]]. *)

val random_free : Commx_util.Prng.t -> Params.t -> free

val free_of_ints :
  Params.t ->
  c:int array array -> d:int array array -> e:int array array ->
  y:int array -> free

val build_a : Params.t -> bigint array array -> Commx_linalg.Zmatrix.t
(** [build_a p c] is the [n x (n-1)] matrix [A]. *)

val build_b : Params.t -> free -> Commx_linalg.Zmatrix.t
(** The [n x (n-1)] matrix [B] from [d], [e], [y]. *)

val build_m : Params.t -> free -> Commx_linalg.Zmatrix.t
(** The full [2n x 2n] input matrix. *)

val b_dot_u : Params.t -> free -> bigint array
(** The vector [B · u] of Lemma 3.2 (length [n]). *)

val entries_in_range : Params.t -> Commx_linalg.Zmatrix.t -> bool
(** Every entry in [\[0, 2^k - 1\]] — the input format of Theorem 1.1. *)

(** {1 Free-cell geometry}

    For partition experiments we need to know where in [M] the free
    entries sit. *)

type block = C | D | E | Y

val free_positions : Params.t -> (block * int * int) list
(** [(block, M-row, M-col)] for every free entry, in a fixed order:
    all of C row-major, then D, then E, then [y]. *)

val pi0_agent_of_col : Params.t -> int -> int
(** Under π₀, agent (1 or 2) reading the given [M]-column. *)
