module Zm = Commx_linalg.Zmatrix
module Sub = Commx_linalg.Subspace
module Q = Commx_bigint.Rational

let span_a p c =
  let a = Hard_instance.build_a p c in
  Sub.of_matrix_columns (Zm.to_qmatrix a)

let span_dimension_is_full (p : Params.t) c = Sub.dim (span_a p c) = p.n - 1

let criterion p f =
  Hard_instance.validate_free p f;
  let bu = Hard_instance.b_dot_u p f in
  let bu_q = Array.map Q.of_bigint bu in
  Sub.mem bu_q (span_a p f.Hard_instance.c)

let is_singular_direct m = Zm.is_singular m

let agrees p f =
  criterion p f = is_singular_direct (Hard_instance.build_m p f)
