module P = Commx_comm.Protocol
module Zm = Commx_linalg.Zmatrix
module B = Commx_bigint.Bigint
module W = Commx_bigint.Modarith.Word
module Primes = Commx_bigint.Primes
module Prng = Commx_util.Prng

let singularity ~n ~k ~prime_bits ~seed =
  ignore n;
  {
    P.name = Printf.sprintf "adaptive-singularity(b=%d)" prime_bits;
    run =
      (fun ch alice bob ->
        let g = Prng.create seed in
        let p = Primes.random_prime g ~bits:prime_bits in
        let md = W.modulus p in
        let reduce m =
          Zm.init (Zm.rows m) (Zm.cols m) (fun i j ->
              B.of_int (W.reduce_big md (Zm.get m i j)))
        in
        (* Round 1: residues. *)
        let msg = P.send ch (Halves.encode ~k:prime_bits (reduce alice)) in
        let alice_mod = Halves.decode ~k:prime_bits ~rows:(Zm.rows bob) msg in
        let joined_mod = Halves.join alice_mod (reduce bob) in
        let full_rank_mod = Zm.rank_mod_p joined_mod p = Zm.rows joined_mod in
        (* Bob tells Alice whether the certificate fired. *)
        let certified = P.send_bit ch full_rank_mod in
        if certified then false (* full rank mod p => nonsingular *)
        else begin
          (* Round 2: exact transmission and exact decision. *)
          let exact = P.send ch (Halves.encode ~k alice) in
          let alice' = Halves.decode ~k ~rows:(Zm.rows bob) exact in
          Zm.is_singular (Halves.join alice' bob)
        end);
  }

let round1_cost ~n ~k ~prime_bits =
  ignore k;
  (2 * n * n * prime_bits) + 1

let round2_cost ~n ~k ~prime_bits =
  round1_cost ~n ~k ~prime_bits + (2 * n * n * k)
