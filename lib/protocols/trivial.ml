module P = Commx_comm.Protocol
module Zm = Commx_linalg.Zmatrix

let one_way ~k ~name decide =
  {
    P.name;
    run =
      (fun ch alice bob ->
        (* Alice -> Bob: her whole half; Bob decides locally. *)
        let msg = P.send ch (Halves.encode ~k alice) in
        let alice_half = Halves.decode ~k ~rows:(Zm.rows bob) msg in
        decide (Halves.join alice_half bob));
  }

let singularity ~k = one_way ~k ~name:"trivial-singularity" Zm.is_singular

let rank_decision ~k ~target =
  one_way ~k
    ~name:(Printf.sprintf "trivial-rank=%d" target)
    (fun m -> Zm.rank m = target)

let determinant_zero ~k =
  one_way ~k ~name:"trivial-det"
    (fun m -> Commx_bigint.Bigint.is_zero (Zm.det m))

let exact_cost ~n ~k = 2 * n * n * k
