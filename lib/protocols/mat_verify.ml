module P = Commx_comm.Protocol
module R = Commx_comm.Randomized
module Zm = Commx_linalg.Zmatrix
module B = Commx_bigint.Bigint
module W = Commx_bigint.Modarith.Word
module Primes = Commx_bigint.Primes
module Prng = Commx_util.Prng
module Encode = Commx_comm.Encode

type alice = Zm.t
type bob = Zm.t * Zm.t

let spec a (b, c) = Zm.equal (Zm.mul a b) c

let encode_matrix ~k m =
  Encode.encode_entries ~k
    (Array.init (Zm.rows m * Zm.cols m) (fun idx ->
         Zm.get m (idx mod Zm.rows m) (idx / Zm.rows m)))

let decode_matrix ~k ~rows v =
  let entries = Encode.decode_entries ~k v in
  let cols = Array.length entries / rows in
  Zm.init rows cols (fun i j -> entries.((j * rows) + i))

let trivial ~k =
  {
    P.name = "product-verify-trivial";
    run =
      (fun ch a (b, c) ->
        let msg = P.send ch (encode_matrix ~k a) in
        let a' = decode_matrix ~k ~rows:(Zm.rows b) msg in
        spec a' (b, c));
  }

(* Freivalds prime size: error over GF(p) for a random vector r is at
   most 1/p per trial; entries must also embed injectively enough —
   a wrong product survives with probability <= 1/p + (chance p
   divides a fixed nonzero k-bit-combination)... we size p against
   both epsilon and the k-bit entry range. *)
let freivalds_prime_bits ~n ~k ~epsilon =
  let from_eps =
    int_of_float (ceil (log (2.0 /. epsilon) /. log 2.0)) + 1
  in
  let from_entries = Primes.fingerprint_prime_bits ~n ~k ~epsilon in
  Stdlib.min 30 (Stdlib.max 3 (Stdlib.max from_eps from_entries))

let freivalds ~n ~k ~epsilon =
  let b_bits = freivalds_prime_bits ~n ~k ~epsilon in
  {
    R.name = Printf.sprintf "freivalds(b=%d)" b_bits;
    run_seeded =
      (fun ~seed ->
        {
          P.name = "freivalds";
          run =
            (fun ch a (bm, cm) ->
              let g = Prng.create seed in
              let p = Primes.random_prime g ~bits:b_bits in
              let md = W.modulus p in
              let dim = Zm.rows bm in
              (* Shared random vector over GF(p). *)
              let r = Array.init dim (fun _ -> Prng.int g p) in
              let mat_vec m v =
                Array.init (Zm.rows m) (fun i ->
                    let acc = ref 0 in
                    for j = 0 to Zm.cols m - 1 do
                      acc :=
                        W.add md !acc
                          (W.mul md (W.reduce_big md (Zm.get m i j)) v.(j))
                    done;
                    !acc)
              in
              (* Bob -> Alice: B·r and C·r. *)
              let br = mat_vec bm r and cr = mat_vec cm r in
              let pack v =
                Encode.encode_entries ~k:b_bits (Array.map B.of_int v)
              in
              let br' =
                Array.map B.to_int
                  (Encode.decode_entries ~k:b_bits (P.send ch (pack br)))
              in
              let cr' =
                Array.map B.to_int
                  (Encode.decode_entries ~k:b_bits (P.send ch (pack cr)))
              in
              (* Alice: A·(B·r) =? C·r over GF(p). *)
              let abr = mat_vec a br' in
              abr = cr');
        });
  }

let freivalds_cost ~n ~k ~epsilon =
  let b_bits = freivalds_prime_bits ~n ~k ~epsilon in
  2 * n * b_bits
