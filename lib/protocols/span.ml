module P = Commx_comm.Protocol
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module Sub = Commx_linalg.Subspace
module Q = Commx_bigint.Rational
module B = Commx_bigint.Bigint

type side = Zm.t

let span_of side = Sub.of_matrix_columns (Zm.to_qmatrix side)

let spec a b = Sub.spans_everything (Sub.add (span_of a) (span_of b))

let encode_side ~k s =
  Commx_comm.Encode.encode_entries ~k
    (Array.init (Zm.rows s * Zm.cols s) (fun idx ->
         Zm.get s (idx mod Zm.rows s) (idx / Zm.rows s)))

let decode_side ~k ~rows v =
  let entries = Commx_comm.Encode.decode_entries ~k v in
  let cols = Array.length entries / rows in
  Zm.init rows cols (fun i j -> entries.((j * rows) + i))

let trivial ~k =
  {
    P.name = "span-trivial";
    run =
      (fun ch alice bob ->
        let msg = P.send ch (encode_side ~k alice) in
        let alice' = decode_side ~k ~rows:(Zm.rows bob) msg in
        spec alice' bob);
  }

let dimension_exchange ~k =
  {
    P.name = "span-basis-exchange";
    run =
      (fun ch alice bob ->
        (* Alice selects the pivot columns of her own block — a basis
           of her column span — and ships only those, prefixed by the
           count. *)
        let qa = Zm.to_qmatrix alice in
        let _, _, pivot_cols, _ = Qm.rref_full qa in
        let basis =
          Zm.submatrix alice
            (Array.init (Zm.rows alice) (fun i -> i))
            pivot_cols
        in
        let count =
          P.send_int ch ~width:(Commx_comm.Encode.bits_for_range (Zm.rows alice + 1))
            (Zm.cols basis)
        in
        let msg = P.send ch (encode_side ~k basis) in
        let basis' = decode_side ~k ~rows:(Zm.rows bob) msg in
        assert (Zm.cols basis' = count);
        spec basis' bob);
  }

let instance_of_matrix m =
  let nc = Zm.cols m in
  let rows_idx = Array.init (Zm.rows m) (fun i -> i) in
  ( Zm.submatrix m rows_idx (Array.init (nc / 2) (fun j -> j)),
    Zm.submatrix m rows_idx (Array.init (nc - (nc / 2)) (fun j -> (nc / 2) + j)) )
