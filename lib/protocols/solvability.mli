(** Protocols for linear-system solvability (Corollary 1.3).

    The input is a pair [(A, b)] with [A] an [m x m] matrix and [b] a
    vector of [m] k-bit integers, split by π₀ on the augmented matrix
    [\[A | b\]]: Alice reads the first [(m+1)/2] columns, Bob the rest.
    The corollary says Θ(k m²) bits are necessary — matching the
    trivial protocol below — because the hard singularity instances
    embed into solvability via {!Commx_core.Reductions.solvability_instance}. *)

type alice = Commx_linalg.Zmatrix.t
(** Left column block of [A | b]. *)

type bob = Commx_linalg.Zmatrix.t
(** Right column block (includes b). *)

val split : Commx_linalg.Zmatrix.t -> Commx_core.Reductions.bigint array -> alice * bob
(** Split an instance [(A, b)] into the two agents' views. *)

val spec : alice -> bob -> bool
(** Ground truth: the system is solvable over ℚ. *)

val trivial : k:int -> (alice, bob) Commx_comm.Protocol.t
(** Alice ships her columns; Bob decides exactly. *)

val fingerprint :
  m:int -> k:int -> epsilon:float -> (alice, bob) Commx_comm.Randomized.t
(** Randomized contrast: decide rank([A]) = rank([A | b]) over a shared
    random prime.  One-sided-ish error (rank can only drop mod p). *)
