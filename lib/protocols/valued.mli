(** Protocols with multi-bit outputs: computing the rank *value*, the
    determinant *value*, and the LUP support.

    Corollary 1.2 concerns computing these objects, not just deciding
    singularity; Ja'Ja' and Prasanna Kumar's technique (cited in the
    discussion of Corollary 1.3) applies to such multiple-output-bit
    problems directly.  In Yao's model each agent must know the output
    bits it is responsible for; here Bob computes and then transmits
    the result so *both* agents know it, and the result bits are
    charged to the channel like any other message. *)

type channel = Commx_comm.Protocol.channel

val rank : k:int -> channel -> Halves.t -> Halves.t -> int
(** Exact rank of the joined matrix; costs
    [2n²k + bits_for_range(2n+1)]. *)

val rank_cost : n:int -> k:int -> int

val determinant : k:int -> channel -> Halves.t -> Halves.t -> Commx_bigint.Bigint.t
(** Exact determinant; the return message is sign + magnitude in a
    fixed width derived from the Hadamard bound of a worst-case k-bit
    matrix (both agents can compute that width from public
    parameters). *)

val determinant_cost : n:int -> k:int -> int
(** Exact bits: [2n²k + 1 + hadamard_width n k]. *)

val hadamard_width : n:int -> k:int -> int
(** Bits sufficient for |det| of any [2n x 2n] matrix of k-bit
    entries: [n (2k + 1 + log2 (2n))], rounded up. *)

val lup_structure :
  k:int -> channel -> Halves.t -> Halves.t -> Commx_util.Bitmat.t
(** The nonzero structure of the U factor (the weakened Corollary
    1.2(e) output), transmitted as a [2n x 2n] bitmap. *)

val lup_structure_cost : n:int -> k:int -> int

val rank_fingerprint :
  n:int -> k:int -> epsilon:float -> seed:int -> channel -> Halves.t -> Halves.t -> int
(** Randomized rank: rank of the matrix over GF(p) for a shared random
    prime.  Always a lower bound on the true rank; equals it unless p
    divides one of finitely many minors (probability <= epsilon). *)

val rank_fingerprint_cost : n:int -> k:int -> epsilon:float -> int
