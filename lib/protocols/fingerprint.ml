module P = Commx_comm.Protocol
module R = Commx_comm.Randomized
module Zm = Commx_linalg.Zmatrix
module Primes = Commx_bigint.Primes
module Prng = Commx_util.Prng

let prime_bits ~n ~k ~epsilon = Primes.fingerprint_prime_bits ~n ~k ~epsilon

let singularity ~n ~k ~epsilon =
  let b = prime_bits ~n ~k ~epsilon in
  {
    R.name = Printf.sprintf "fingerprint-singularity(b=%d)" b;
    run_seeded =
      (fun ~seed ->
        {
          P.name = "fingerprint-singularity";
          run =
            (fun ch alice bob ->
              (* Public coin: both agents derive the same prime. *)
              let g = Prng.create seed in
              let p = Primes.random_prime g ~bits:b in
              let rows = Zm.rows alice in
              (* Alice -> Bob: entries mod p, b bits each. *)
              let residues =
                Array.init (rows * Zm.cols alice) (fun idx ->
                    let v = Zm.get alice (idx mod rows) (idx / rows) in
                    Commx_bigint.Modarith.Word.reduce_big
                      (Commx_bigint.Modarith.Word.modulus p)
                      v)
              in
              let sent =
                P.send ch
                  (Commx_comm.Encode.encode_entries ~k:b
                     (Array.map Commx_bigint.Bigint.of_int residues))
              in
              let received =
                Array.map Commx_bigint.Bigint.to_int
                  (Commx_comm.Encode.decode_entries ~k:b sent)
              in
              (* Bob: det over GF(p) of [alice mod p | bob mod p]. *)
              let joined_mod i j =
                if j < Zm.cols alice then received.((j * rows) + i)
                else
                  Commx_bigint.Modarith.Word.reduce_big
                    (Commx_bigint.Modarith.Word.modulus p)
                    (Zm.get bob i (j - Zm.cols alice))
              in
              let det_mod =
                Zm.det_mod_p
                  (Zm.init rows rows (fun i j ->
                       Commx_bigint.Bigint.of_int (joined_mod i j)))
                  p
              in
              det_mod = 0);
        });
  }

let cost ~n ~k ~epsilon =
  let b = prime_bits ~n ~k ~epsilon in
  2 * n * n * b

let amplified ~n ~k ~epsilon ~rounds =
  if rounds < 1 then invalid_arg "Fingerprint.amplified: rounds < 1";
  let base = singularity ~n ~k ~epsilon in
  {
    R.name = Printf.sprintf "fingerprint-amplified(x%d)" rounds;
    run_seeded =
      (fun ~seed ->
        {
          P.name = "fingerprint-amplified";
          run =
            (fun ch alice bob ->
              (* Derive independent round seeds from the shared coin;
                 all rounds run on the SAME channel so the cost adds. *)
              let g = Prng.create seed in
              let all_singular = ref true in
              for _ = 1 to rounds do
                let round_seed = Prng.int g max_int in
                let proto = base.R.run_seeded ~seed:round_seed in
                if not (proto.P.run ch alice bob) then all_singular := false
              done;
              !all_singular);
        });
  }

let amplified_cost ~n ~k ~epsilon ~rounds = rounds * cost ~n ~k ~epsilon

let expected_shape ~n ~k =
  let fn = float_of_int n and fk = float_of_int k in
  fn *. fn *. Float.max (log fn /. log 2.0) (log fk /. log 2.0)
