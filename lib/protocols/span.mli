(** The vector-space span problem (Lovász–Saks, Section 1).

    [X] is a finite set of k-bit integer vectors spanning ℚ^dim; Alice
    holds a subset spanning [V1], Bob one spanning [V2] (the *fixed
    partition* model); decide whether [V1 ∪ V2] spans the whole space.
    Lovász–Saks proved the fixed-partition complexity is
    [log² #subspaces]; Theorem 1.1 pins the unrestricted complexity for
    the k-bit-vector instantiation because nonsingularity of the hard
    matrix [M] is exactly "the two column-halves' spans jointly span
    ℚ^2n". *)

type side = Commx_linalg.Zmatrix.t
(** A [dim x count] matrix whose columns are the agent's vectors. *)

val spec : side -> side -> bool
(** Union spans ℚ^dim. *)

val span_of : side -> Commx_linalg.Subspace.t
(** The subspace spanned by a side's columns. *)

val trivial : k:int -> (side, side) Commx_comm.Protocol.t
(** Alice ships her vectors; Bob decides.  Cost [k · dim · count]. *)

val dimension_exchange : k:int -> (side, side) Commx_comm.Protocol.t
(** A smarter two-round protocol: Alice sends a *basis* of her span
    only (at most [dim] vectors) rather than all her vectors — cheaper
    when Alice holds many redundant vectors, identical worst case. *)

val instance_of_matrix : Commx_linalg.Zmatrix.t -> side * side
(** The singularity connection: split a square matrix's columns into
    halves; the union spans iff the matrix is nonsingular. *)
