(** The randomized fingerprinting protocol — Leighton's
    O(n² max(log n, log k)) contrast bound from Section 1.

    Both agents derive a shared random prime [p] of [b] bits from the
    public coin (the seed).  Alice reduces her half modulo [p] and
    sends the residues ([2 n² b] bits); Bob computes the determinant of
    the joined matrix over GF(p) and declares the input singular iff it
    vanishes.  The error is one-sided: singular inputs are always
    recognized; a nonsingular input is misjudged only when [p] divides
    its (nonzero) determinant, which happens with probability at most
    [epsilon] by the prime-counting argument in
    {!Commx_bigint.Primes.fingerprint_prime_bits}. *)

val prime_bits : n:int -> k:int -> epsilon:float -> int
(** Prime size used for the given parameters. *)

val singularity :
  n:int -> k:int -> epsilon:float ->
  (Halves.t, Halves.t) Commx_comm.Randomized.t
(** The seeded protocol family. *)

val cost : n:int -> k:int -> epsilon:float -> int
(** Exact bits on every input: [2 n² b + b] (residues plus Alice's
    echo of the prime index is unnecessary — the coin is public — so
    this is residues only; see implementation note). *)

val expected_shape : n:int -> k:int -> float
(** The predicted growth law [n² max(log2 n, log2 k)] the measured
    cost is fitted against in experiment E3. *)

val amplified :
  n:int -> k:int -> epsilon:float -> rounds:int ->
  (Halves.t, Halves.t) Commx_comm.Randomized.t
(** Error amplification by independent repetition: run [rounds]
    independent fingerprints (fresh prime each) and declare singular
    only when every round does.  Singular inputs are still always
    recognized; a nonsingular input survives all rounds with
    probability at most [epsilon^rounds].  Cost multiplies by
    [rounds]. *)

val amplified_cost : n:int -> k:int -> epsilon:float -> rounds:int -> int
