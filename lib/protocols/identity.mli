(** The identity (equality) problem — the baseline behind "the
    transitivity approach of Vuillemin".

    Given [x] to Alice and [y] to Bob, decide [x = y].  Its truth
    matrix is the identity matrix, whose diagonal is a fooling set of
    size [2^m]: communication is exactly m (up to a constant).  The
    paper's point (Section 1) is that singularity does *not* embed a
    large identity instance, so this technique cannot prove
    Theorem 1.1 — experiment E11 contrasts the two.  The randomized
    side is classic Rabin–Karp fingerprinting with cost O(log m). *)

val trivial : m:int -> (Commx_util.Bitvec.t, Commx_util.Bitvec.t) Commx_comm.Protocol.t
(** Alice sends x; Bob compares.  Cost m. *)

val fingerprint :
  m:int -> epsilon:float ->
  (Commx_util.Bitvec.t, Commx_util.Bitvec.t) Commx_comm.Randomized.t
(** Alice sends [x mod p] for a shared random prime [p] with
    O(log(m/epsilon)) bits. *)

val fingerprint_bits : m:int -> epsilon:float -> int

val truth_matrix :
  m:int -> (Commx_util.Bitvec.t, Commx_util.Bitvec.t) Commx_comm.Truth_matrix.t
(** The full [2^m x 2^m] truth matrix ([m <= 10]). *)

val all_inputs : m:int -> Commx_util.Bitvec.t list
