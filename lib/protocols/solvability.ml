module P = Commx_comm.Protocol
module R = Commx_comm.Randomized
module Zm = Commx_linalg.Zmatrix
module Qm = Commx_linalg.Qmatrix
module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Primes = Commx_bigint.Primes
module Prng = Commx_util.Prng

type alice = Zm.t
type bob = Zm.t

let split a b =
  let m = Zm.rows a in
  if Zm.cols a <> m || Array.length b <> m then
    invalid_arg "Solvability.split";
  let aug = Zm.hcat a (Zm.init m 1 (fun i _ -> b.(i))) in
  let total = m + 1 in
  let left_cols = total / 2 in
  let rows_idx = Array.init m (fun i -> i) in
  ( Zm.submatrix aug rows_idx (Array.init left_cols (fun j -> j)),
    Zm.submatrix aug rows_idx
      (Array.init (total - left_cols) (fun j -> left_cols + j)) )

let join alice bob = Zm.hcat alice bob

let solvable_aug aug =
  (* Last column is b; solvable iff rank A = rank [A | b]. *)
  let m = Zm.rows aug in
  let a = Zm.submatrix aug (Array.init m (fun i -> i)) (Array.init (Zm.cols aug - 1) (fun j -> j)) in
  let b = Zm.col aug (Zm.cols aug - 1) in
  Qm.solvable (Zm.to_qmatrix a) (Array.map Q.of_bigint b)

let spec alice bob = solvable_aug (join alice bob)

let trivial ~k =
  {
    P.name = "solvability-trivial";
    run =
      (fun ch alice bob ->
        let msg = P.send ch (Halves.encode ~k alice) in
        let alice' = Halves.decode ~k ~rows:(Zm.rows bob) msg in
        solvable_aug (join alice' bob));
  }

let fingerprint ~m ~k ~epsilon =
  let bits = Primes.fingerprint_prime_bits ~n:((m + 1) / 2) ~k ~epsilon in
  {
    R.name = Printf.sprintf "solvability-fingerprint(b=%d)" bits;
    run_seeded =
      (fun ~seed ->
        {
          P.name = "solvability-fingerprint";
          run =
            (fun ch alice bob ->
              let g = Prng.create seed in
              let p = Primes.random_prime g ~bits in
              let md = Commx_bigint.Modarith.Word.modulus p in
              let reduce mtx =
                Zm.init (Zm.rows mtx) (Zm.cols mtx) (fun i j ->
                    B.of_int
                      (Commx_bigint.Modarith.Word.reduce_big md (Zm.get mtx i j)))
              in
              let alice_mod = reduce alice in
              let sent = P.send ch (Halves.encode ~k:bits alice_mod) in
              let alice' = Halves.decode ~k:bits ~rows:(Zm.rows bob) sent in
              let aug = join alice' (reduce bob) in
              (* rank over GF(p) of A vs [A | b] *)
              let cols = Zm.cols aug in
              let rows_idx = Array.init (Zm.rows aug) (fun i -> i) in
              let a_part =
                Zm.submatrix aug rows_idx (Array.init (cols - 1) (fun j -> j))
              in
              Zm.rank_mod_p a_part p = Zm.rank_mod_p aug p);
        });
  }
