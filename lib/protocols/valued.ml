module P = Commx_comm.Protocol
module Encode = Commx_comm.Encode
module Zm = Commx_linalg.Zmatrix
module B = Commx_bigint.Bigint
module Bm = Commx_util.Bitmat
module Bv = Commx_util.Bitvec

type channel = P.channel

let receive_joined ~k ch alice bob =
  let msg = P.send ch (Halves.encode ~k alice) in
  let alice' = Halves.decode ~k ~rows:(Zm.rows bob) msg in
  Halves.join alice' bob

let rank ~k ch alice bob =
  let m = receive_joined ~k ch alice bob in
  let r = Zm.rank m in
  (* Bob -> Alice: the rank value, so both agents know the output. *)
  P.send_int ch ~width:(Encode.bits_for_range (Zm.rows m + 1)) r

let rank_cost ~n ~k = (2 * n * n * k) + Encode.bits_for_range ((2 * n) + 1)

let hadamard_width ~n ~k =
  (* |det| <= prod row norms <= (sqrt(2n) * 2^k)^(2n):
     log2 <= 2n (k + log2(2n)/2); one extra bit of slack. *)
  let fn = float_of_int (2 * n) in
  int_of_float (ceil (fn *. (float_of_int k +. (0.5 *. log fn /. log 2.0)))) + 1

let determinant ~k ch alice bob =
  let m = receive_joined ~k ch alice bob in
  let n = Zm.rows m / 2 in
  let d = Zm.det m in
  let width = hadamard_width ~n ~k in
  (* sign bit + fixed-width magnitude *)
  let negative = P.send_bit ch (B.sign d < 0) in
  let mag = P.send_bigint ch ~width (B.abs d) in
  if negative then B.neg mag else mag

let determinant_cost ~n ~k = (2 * n * n * k) + 1 + hadamard_width ~n ~k

let lup_structure ~k ch alice bob =
  let m = receive_joined ~k ch alice bob in
  let d = Commx_linalg.Lup.decompose (Zm.to_qmatrix m) in
  let structure = Commx_linalg.Lup.nonzero_structure d.Commx_linalg.Lup.u in
  (* Bob -> Alice: the bitmap, row by row. *)
  let dim = Bm.rows structure in
  let flat = Bv.create (dim * dim) in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      if Bm.get structure i j then Bv.set flat ((i * dim) + j) true
    done
  done;
  let received = P.send ch flat in
  Bm.init dim dim (fun i j -> Bv.get received ((i * dim) + j))

let lup_structure_cost ~n ~k = (2 * n * n * k) + (4 * n * n)

let rank_fingerprint ~n ~k ~epsilon ~seed ch alice bob =
  let bits = Commx_bigint.Primes.fingerprint_prime_bits ~n ~k ~epsilon in
  let g = Commx_util.Prng.create seed in
  let p = Commx_bigint.Primes.random_prime g ~bits in
  let md = Commx_bigint.Modarith.Word.modulus p in
  let reduce m =
    Zm.init (Zm.rows m) (Zm.cols m) (fun i j ->
        B.of_int (Commx_bigint.Modarith.Word.reduce_big md (Zm.get m i j)))
  in
  let msg = P.send ch (Halves.encode ~k:bits (reduce alice)) in
  let alice' = Halves.decode ~k:bits ~rows:(Zm.rows bob) msg in
  let joined = Halves.join alice' (reduce bob) in
  let r = Zm.rank_mod_p joined p in
  P.send_int ch ~width:(Encode.bits_for_range (Zm.rows joined + 1)) r

let rank_fingerprint_cost ~n ~k ~epsilon =
  let bits = Commx_bigint.Primes.fingerprint_prime_bits ~n ~k ~epsilon in
  (2 * n * n * bits) + Encode.bits_for_range ((2 * n) + 1)
