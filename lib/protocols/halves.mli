(** Input halves under the column partition π₀.

    Under π₀, Agent 1 (Alice) reads the first [n] columns of the
    [2n x 2n] input and Agent 2 (Bob) the rest.  A half is represented
    as the corresponding [2n x n] column block. *)

type t = Commx_linalg.Zmatrix.t

val split_pi0 : Commx_linalg.Zmatrix.t -> t * t
(** @raise Invalid_argument for non-square or odd-dimension input. *)

val join : t -> t -> Commx_linalg.Zmatrix.t
(** Inverse of {!split_pi0}. *)

val encode : k:int -> t -> Commx_util.Bitvec.t
(** Column-major [k]-bit encoding of all entries (entries must lie in
    [\[0, 2^k)]). *)

val decode : k:int -> rows:int -> Commx_util.Bitvec.t -> t
