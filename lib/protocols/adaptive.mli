(** An adaptive certify-or-fall-back protocol for singularity.

    Theorem 1.1 is a *worst-case* statement.  This protocol makes the
    gap between worst case and typical case concrete:

    + Round 1 (cheap): both agents derive a shared prime [p] from the
      public coin; Alice sends her half mod p ([2 n² b] bits).  If the
      joint matrix has **full rank over GF(p)**, the input is certainly
      nonsingular (rank mod p never exceeds the true rank) — done, and
      the answer is *deterministically correct*.
    + Round 2 (fallback): otherwise Bob requests the exact half
      (1 bit), Alice sends the remaining information ([2 n² k] bits),
      and Bob decides exactly.

    Every answer is exact — randomness only affects the *cost*.  On
    random (generically nonsingular) inputs the protocol almost always
    stops after round 1; on the paper's singular instances it always
    pays the full Θ(k n²), which is exactly the regime Theorem 1.1
    speaks about.  Experiment E13 measures both. *)

val singularity :
  n:int -> k:int -> prime_bits:int -> seed:int ->
  (Halves.t, Halves.t) Commx_comm.Protocol.t
(** The seeded two-round protocol.  Answers are always exact. *)

val round1_cost : n:int -> k:int -> prime_bits:int -> int
(** Bits when the cheap certificate fires. *)

val round2_cost : n:int -> k:int -> prime_bits:int -> int
(** Bits on fallback (round 1 + flag + exact transmission). *)
