module P = Commx_comm.Protocol
module R = Commx_comm.Randomized
module Bv = Commx_util.Bitvec
module B = Commx_bigint.Bigint
module Primes = Commx_bigint.Primes
module Prng = Commx_util.Prng

let trivial ~m =
  {
    P.name = Printf.sprintf "identity-trivial(m=%d)" m;
    run =
      (fun ch x y ->
        let x' = P.send ch x in
        Bv.equal x' y);
  }

let fingerprint_bits ~m ~epsilon =
  (* A nonzero difference value below 2^m has fewer than m prime
     factors of b bits each; with ~2^(b-2)/(b ln 2) such primes the
     collision probability is under epsilon once
     m / primorial <= epsilon. *)
  let rec find b =
    if b >= 30 then 30
    else if float_of_int m /. Primes.primorial_bits b <= epsilon then b
    else find (b + 1)
  in
  find 3

let fingerprint ~m ~epsilon =
  let b = fingerprint_bits ~m ~epsilon in
  {
    R.name = Printf.sprintf "identity-fingerprint(b=%d)" b;
    run_seeded =
      (fun ~seed ->
        {
          P.name = "identity-fingerprint";
          run =
            (fun ch x y ->
              let g = Prng.create seed in
              let p = Primes.random_prime g ~bits:b in
              let residue v =
                let big = Commx_comm.Encode.decode_bigint v in
                Commx_bigint.Modarith.Word.reduce_big
                  (Commx_bigint.Modarith.Word.modulus p)
                  big
              in
              let rx = P.send_int ch ~width:b (residue x) in
              rx = residue y);
        });
  }

let all_inputs ~m =
  if m > 16 then invalid_arg "Identity.all_inputs: m too large";
  List.init (1 lsl m) (fun v -> Bv.of_int m v)

let truth_matrix ~m =
  if m > 10 then invalid_arg "Identity.truth_matrix: m too large";
  let inputs = all_inputs ~m in
  Commx_comm.Truth_matrix.build inputs inputs Bv.equal
