(** Matrix-product verification: "given A, B, C, is A·B = C?"

    Section 1 recalls that the Θ(k n²) deterministic bound for this
    decision problem (Lin–Wu) gives the rank-n/2 corollaries through
    the gadget [\[\[I, B\]; \[A, C\]\]].  The fixed partition gives
    Alice the matrix [A] and Bob the pair [(B, C)].

    Deterministically, Alice ships [A] (k n² bits).  Randomized, this
    is Freivalds' check over a shared random prime: Bob sends the two
    vectors [B·r] and [C·r] (2 n b bits), Alice answers whether
    [A·(B·r) = C·r] — an exponential saving, mirroring the
    deterministic/randomized gap of the singularity problem. *)

type alice = Commx_linalg.Zmatrix.t
type bob = Commx_linalg.Zmatrix.t * Commx_linalg.Zmatrix.t

val spec : alice -> bob -> bool
(** Ground truth [A·B = C] (exact). *)

val trivial : k:int -> (alice, bob) Commx_comm.Protocol.t
(** Cost [k n²] (Alice's matrix). *)

val freivalds :
  n:int -> k:int -> epsilon:float -> (alice, bob) Commx_comm.Randomized.t

val freivalds_cost : n:int -> k:int -> epsilon:float -> int
(** Bits of the two transmitted vectors plus the answer bit. *)
