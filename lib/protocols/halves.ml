module Zm = Commx_linalg.Zmatrix
module Bv = Commx_util.Bitvec
module Encode = Commx_comm.Encode

type t = Zm.t

let split_pi0 m =
  let dim = Zm.rows m in
  if not (Zm.is_square m) || dim mod 2 <> 0 then
    invalid_arg "Halves.split_pi0: need an even square matrix";
  let n = dim / 2 in
  let rows_idx = Array.init dim (fun i -> i) in
  let left = Zm.submatrix m rows_idx (Array.init n (fun j -> j)) in
  let right = Zm.submatrix m rows_idx (Array.init n (fun j -> n + j)) in
  (left, right)

let join left right = Zm.hcat left right

let encode ~k h =
  let entries =
    Array.init (Zm.rows h * Zm.cols h) (fun idx ->
        Zm.get h (idx mod Zm.rows h) (idx / Zm.rows h))
  in
  Encode.encode_entries ~k entries

let decode ~k ~rows v =
  let entries = Encode.decode_entries ~k v in
  let cols = Array.length entries / rows in
  Zm.init rows cols (fun i j -> entries.((j * rows) + i))
