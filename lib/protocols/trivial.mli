(** The trivial deterministic protocol — the upper-bound side of
    Theorem 1.1.

    Alice sends her entire π₀ half ([2n² k] bits); Bob reconstructs the
    matrix and decides exactly.  Theorem 1.1 says no deterministic
    protocol can beat this by more than a constant factor, which is
    what makes "trivial" the right answer here — the paper's content is
    that the obvious protocol is optimal. *)

val singularity : k:int -> (Halves.t, Halves.t) Commx_comm.Protocol.t
(** Output owned by Bob: [true] iff the joined matrix is singular.
    Cost is exactly [2 n² k] bits on every input. *)

val rank_decision : k:int -> target:int -> (Halves.t, Halves.t) Commx_comm.Protocol.t
(** "is rank = target" with the same one-way structure. *)

val determinant_zero : k:int -> (Halves.t, Halves.t) Commx_comm.Protocol.t
(** Decides via an explicit determinant computation on Bob's side
    (same cost; exercises Corollary 1.2(a)'s upper bound). *)

val exact_cost : n:int -> k:int -> int
(** [2 n² k]. *)
