(* SIGPIPE / broken-pipe hygiene for every executable entry point.

   With SIGPIPE at its default disposition, `ccmx bench ... | head`
   (or a serve client disconnecting mid-reply) kills the whole process
   with a fatal signal — no exit code the harness controls, no flushed
   logs, no snapshot.  Ignoring the signal turns the condition into an
   EPIPE error on the write path, which each stream can then handle
   locally: a CLI exits quietly, the daemon closes just the one
   client stream. *)

let ignore_sigpipe () =
  (* Sys.sigpipe exists on every platform; installing a handler for it
     does not (Windows).  Failure to install just restores the status
     quo, so swallow it. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* OCaml surfaces a write to a closed pipe in two shapes depending on
   the layer: out_channel operations raise [Sys_error "Broken pipe"]
   (the strerror text, possibly with a path prefix), Unix syscalls
   raise [Unix_error (EPIPE, _, _)].  A peer that resets the
   connection instead of half-closing gives ECONNRESET — same
   condition from the writer's point of view. *)
let is_broken_pipe = function
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> true
  | Sys_error msg ->
      let needle = "Broken pipe" in
      let n = String.length needle and m = String.length msg in
      let rec scan i =
        i + n <= m && (String.sub msg i n = needle || scan (i + 1))
      in
      scan 0
  | _ -> false

(* Once stdout's reader is gone, every further write — including the
   implicit flush of buffered output during [exit] — would raise
   again.  Pointing the fd at /dev/null makes the remaining shutdown
   path (at_exit flushes, final reports) harmlessly succeed. *)
let silence_stdout () =
  try
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.close devnull
  with _ -> ()

let run_main f =
  ignore_sigpipe ();
  try f ()
  with e when is_broken_pipe e ->
    silence_stdout ();
    exit 0
