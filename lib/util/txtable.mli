(** Open-addressing transposition table for exhaustive game-tree
    searches.

    A flat [int -> int] hash table tuned for the exact-CC search hot
    loop: keys are packed subproblem descriptors (non-negative, at
    most 62 bits), values are small non-negative ints (packed cost
    entries).  Storage is two parallel [int array]s probed linearly
    from a multiplicative hash, so a lookup touches one or two cache
    lines and never allocates.

    The table grows by doubling while below its optional memory
    budget; once the budget is reached it switches to
    replace-on-collision within a bounded probe window — old entries
    are overwritten (counted as evictions) instead of growing, which
    caps memory for deep searches at a small accuracy cost (a replaced
    entry is recomputed if needed).  All operations are deterministic
    functions of the call sequence: same inserts, same final state,
    same hit/miss/evict statistics, at any table budget.

    Not thread-safe; use one table per domain (the exact-CC root-split
    parallelism gives each pool item its own table). *)

type t

val create : ?budget_entries:int -> ?initial_bits:int -> unit -> t
(** [create ()] is an empty table with a small initial capacity.
    [?initial_bits] (default 12) sets the initial capacity to
    [2^initial_bits] slots.  [?budget_entries] bounds the slot count:
    the table never allocates more than the smallest power of two
    [>= budget_entries] slots (and at least the initial capacity);
    beyond that it evicts.  Without a budget the table doubles
    indefinitely.
    @raise Invalid_argument if [initial_bits] is not in [\[1, 40\]] or
    [budget_entries < 1]. *)

val find : t -> int -> int
(** [find t key] is the value bound to [key], or [-1] when absent.
    Records a hit or a miss in {!stats}.
    @raise Invalid_argument on negative keys. *)

val set : t -> int -> int -> unit
(** [set t key v] binds [key] to [v] ([v >= 0]), overwriting any
    previous binding.  When the table is at budget and the probe
    window holds no empty slot and no [key] slot, the entry at the
    first probed slot is replaced and an eviction is recorded.
    @raise Invalid_argument on negative keys or values. *)

val length : t -> int
(** Number of live entries. *)

val capacity : t -> int
(** Current slot count (a power of two). *)

type stats = { hits : int; misses : int; evictions : int; stores : int }

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters without touching the entries. *)

val clear : t -> unit
(** Drop all entries (capacity is retained) and zero the counters. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f key value] for every live entry, in slot
    order.  Do not mutate [t] during iteration. *)

val budget_entries : t -> int option
(** The slot budget the table enforces ([None] = unbounded).  Already
    rounded to the power of two actually applied, so feeding it back
    to {!create} reproduces the same budget semantics. *)

(** {2 Versioned snapshot}

    The serve daemon keeps its transposition tables warm across
    restarts by persisting them to disk.  [save]/[load] define the
    on-disk shape: a versioned JSON object carrying the capacity, the
    budget and the live entries.  [load] validates everything —
    format marker, version, key/value ranges — and {e raises} on any
    mismatch: a corrupt or stale snapshot must be rejected loudly, not
    silently folded into a fresh table. *)

val snapshot_version : int
(** Version stamped into snapshots by {!save} and required by
    {!load}. *)

val save : t -> Json.t
(** Serialize the table: format marker, {!snapshot_version}, capacity,
    budget, and all live entries in slot order (deterministic for a
    given table state).  Runtime statistics are not persisted. *)

val load : Json.t -> t
(** Rebuild a table from a {!save} document: same capacity, same
    budget semantics, entries re-inserted in the saved order (re-
    placement can evict only in the same probe-window-saturation
    situations live inserts can, i.e. essentially never below budget
    pressure).  Statistics start at zero.
    @raise Failure with a ["Txtable.load: ..."] message on a missing
    format marker, a version other than {!snapshot_version}, or any
    malformed field — the caller decides whether to die or to start
    cold, but the table is never half-loaded. *)
