(** Fixed-size domain pool for the embarrassingly parallel stages of
    the experiment harness.

    The expensive experiments (exact truth-matrix enumeration, the
    game-tree search of the exact-CC solver, Monte-Carlo error sweeps)
    are independent across instances, trials, or sub-problems.  This
    module fans such work out over a fixed set of OCaml 5 domains while
    keeping every run {e bit-identical at any job count}:

    - results are written back by item index, so output order never
      depends on scheduling;
    - randomized work draws from per-item generators pre-derived with
      {!Prng.split} from one master generator, in deterministic item
      order, before any domain runs ({!parallel_map_seeded}) — the
      streams an item sees are a function of the master seed and the
      item index only, never of [jobs] or of interleaving.

    Worker domains are spawned once at {!create} and reused across
    calls; the calling domain participates in every batch, so a pool
    with [jobs = 1] runs everything inline with no domains spawned.
    An exception raised by any item cancels the remaining chunks and is
    re-raised (with its backtrace) in the calling domain.

    {2 Cooperative cancellation}

    A batch can be bounded by a {!Token.t}: a shared atomic flag plus
    an optional monotonic-clock deadline, polled between chunks by every
    participant.  When the token fires, workers stop taking chunks (no
    orphaned work), the batch raises {!Cancelled} in the caller, and
    the pool remains usable.  Tokens come either per call
    ([?cancel]) or ambiently via {!set_cancel} — the latter is how
    {!Supervisor} bounds a whole experiment without threading a token
    through every call site.  Cancellation is cooperative: a body that
    never returns cannot be interrupted mid-item, only between items/
    chunks.

    Batches that complete normally are unaffected by supervision: the
    jobs-invariance guarantee above is unchanged, including for batches
    that run after a cancelled or failed sibling batch. *)

exception Cancelled
(** Raised in the calling domain when a batch stops because its cancel
    token fired (explicit {!Token.cancel} or deadline passed), and by
    {!check_cancel}. *)

(** Shared cancel tokens. *)
module Token : sig
  type t
  (** An atomic cancel flag, optionally with a monotonic-clock
      deadline.  Safe to poll and cancel from any domain. *)

  val create : ?deadline:float -> unit -> t
  (** [create ~deadline ()] fires once [Clock.now_s () >= deadline]
      (an absolute monotonic time — compute it as
      [Clock.now_s () +. budget], never from [Unix.gettimeofday])
      or once {!cancel} is called, whichever comes first.  Without
      [deadline], only {!cancel} fires it. *)

  val cancel : t -> unit
  (** Fire the token.  Idempotent. *)

  val cancelled : t -> bool
  (** Poll: has the token fired (flag set or deadline passed)? *)
end

type t
(** A pool of worker domains.  Values of this type own OS resources
    ([jobs - 1] domains); release them with {!shutdown} or scope them
    with {!with_pool}. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1]).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val set_cancel : t -> Token.t option -> unit
(** Install (or clear) the ambient cancel token consulted by batches
    that were not given an explicit [?cancel].  Call only from the
    domain that issues batches, between batches. *)

val check_cancel : t -> unit
(** Poll the ambient token from sequential (non-pool) code.
    @raise Cancelled if the ambient token has fired.  No-op when no
    token is installed. *)

val set_faults : t -> Faults.t option -> unit
(** Install (or clear) a deterministic fault injector: every work item
    of every subsequent batch passes through {!Faults.pool_point},
    keyed by the pool's batch counter and the item index — so the
    injected fault pattern is identical at every job count. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, normal or exceptional. *)

val parallel_for : t -> ?chunk:int -> ?cancel:Token.t -> int -> (int -> unit) -> unit
(** [parallel_for pool n body] runs [body i] for every [i] in
    [\[0, n)], distributed over the pool in contiguous chunks of
    [chunk] indices (default: [n / (4 * jobs)], at least 1).  Blocks
    until all items finish.  The first exception raised by any [body]
    is re-raised here after the batch stops.  [?cancel] (default: the
    ambient token of {!set_cancel}, if any) is polled between chunks;
    when it fires the batch stops and {!Cancelled} is raised — unless
    a [body] exception was recorded first, which takes precedence. *)

val parallel_map :
  t -> ?chunk:int -> ?cancel:Token.t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] computed in
    parallel; element order is preserved. *)

val parallel_map_seeded :
  t -> ?cancel:Token.t -> Prng.t -> (Prng.t -> 'a -> 'b) -> 'a array -> 'b array
(** [parallel_map_seeded pool g f arr] maps [f gen_i arr.(i)] where
    [gen_i] is the [i]-th generator split off [g] sequentially before
    any parallel work starts.  [g] is advanced [length arr] times.
    Results are bit-identical for every [jobs], given equal [g]
    states — including when an earlier batch on the same pool was
    cancelled or failed (splitting happens before any parallel work,
    so sibling batches cannot perturb the streams). *)
