(** Fixed-size domain pool for the embarrassingly parallel stages of
    the experiment harness.

    The expensive experiments (exact truth-matrix enumeration, the
    game-tree search of the exact-CC solver, Monte-Carlo error sweeps)
    are independent across instances, trials, or sub-problems.  This
    module fans such work out over a fixed set of OCaml 5 domains while
    keeping every run {e bit-identical at any job count}:

    - results are written back by item index, so output order never
      depends on scheduling;
    - randomized work draws from per-item generators pre-derived with
      {!Prng.split} from one master generator, in deterministic item
      order, before any domain runs ({!parallel_map_seeded}) — the
      streams an item sees are a function of the master seed and the
      item index only, never of [jobs] or of interleaving.

    Worker domains are spawned once at {!create} and reused across
    calls; the calling domain participates in every batch, so a pool
    with [jobs = 1] runs everything inline with no domains spawned.
    An exception raised by any item cancels the remaining chunks and is
    re-raised (with its backtrace) in the calling domain. *)

type t
(** A pool of worker domains.  Values of this type own OS resources
    ([jobs - 1] domains); release them with {!shutdown} or scope them
    with {!with_pool}. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1]).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, normal or exceptional. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for pool n body] runs [body i] for every [i] in
    [\[0, n)], distributed over the pool in contiguous chunks of
    [chunk] indices (default: [n / (4 * jobs)], at least 1).  Blocks
    until all items finish.  The first exception raised by any [body]
    is re-raised here after the batch stops. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] computed in
    parallel; element order is preserved. *)

val parallel_map_seeded :
  t -> Prng.t -> (Prng.t -> 'a -> 'b) -> 'a array -> 'b array
(** [parallel_map_seeded pool g f arr] maps [f gen_i arr.(i)] where
    [gen_i] is the [i]-th generator split off [g] sequentially before
    any parallel work starts.  [g] is advanced [length arr] times.
    Results are bit-identical for every [jobs], given equal [g]
    states. *)
