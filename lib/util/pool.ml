(* Fixed-size domain pool.  Worker domains block on a thunk queue;
   each batch (parallel_for / parallel_map call) posts one helper thunk
   per worker, all pulling chunk indices from a shared atomic counter,
   and the calling domain pulls chunks too — so jobs = 1 degenerates to
   an inline loop with no synchronization beyond two atomics.

   Cancellation is cooperative: a batch polls its cancel token (an
   atomic flag plus an optional wall-clock deadline) between chunks, so
   a timed-out batch stops dispensing work to its own helpers instead
   of orphaning them, and the pool stays usable for the next batch. *)

exception Cancelled

module Token = struct
  type t = { flag : bool Atomic.t; deadline : float }

  (* deadline = infinity means "no deadline"; comparing against the
     monotonic clock is then always false, no branch needed.  The
     deadline is a Clock.now_s-based absolute time: immune to
     wall-clock steps, meaningless across processes. *)
  let create ?(deadline = infinity) () = { flag = Atomic.make false; deadline }
  let cancel t = Atomic.set t.flag true

  let cancelled t =
    Atomic.get t.flag
    || (t.deadline < infinity && Clock.now_s () >= t.deadline)
end

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  (* Ambient supervision state, installed by Supervisor/tests around a
     sequence of batches.  Written only from the calling domain between
     batches; workers read it through the batch closure. *)
  mutable cancel : Token.t option;
  mutable faults : Faults.t option;
  mutable batches : int;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed: exit *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      cancel = None;
      faults = None;
      batches = 0;
    }
  in
  pool.domains <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs
let set_cancel pool token = pool.cancel <- token
let set_faults pool faults = pool.faults <- faults

let check_cancel pool =
  match pool.cancel with
  | Some token when Token.cancelled token -> raise Cancelled
  | Some _ | None -> ()

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Telemetry instruments.  Batch count, item count and batch sizes are
   pure functions of the submitted work, so the counters are
   bit-identical at any job count; spans (one per batch on the calling
   domain, one per item wherever it ran, parented to the batch) are
   recorded only under tracing. *)
let batches_counter = Telemetry.counter "pool.batches"
let items_counter = Telemetry.counter "pool.items"
let batch_items_hist = Telemetry.histogram "pool.batch_items"

let parallel_for pool ?chunk ?cancel n body =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 (n / (4 * pool.jobs))
    in
    let cancel = match cancel with Some _ as c -> c | None -> pool.cancel in
    let faults = pool.faults in
    let batch = pool.batches in
    pool.batches <- batch + 1;
    if Telemetry.metrics_on () then begin
      Telemetry.add batches_counter 1;
      Telemetry.add items_counter n;
      Telemetry.observe batch_items_hist n
    end;
    let tracing = Telemetry.tracing_on () in
    let run_batch batch_span =
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let record_failure e bt =
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      let cancelled () =
        match cancel with Some t -> Token.cancelled t | None -> false
      in
      let run_chunks () =
        let rec go () =
          if cancelled () then
            (* Materialize a backtrace so the caller re-raises uniformly. *)
            try raise Cancelled
            with Cancelled ->
              record_failure Cancelled (Printexc.get_raw_backtrace ())
          else begin
            let lo = Atomic.fetch_and_add next chunk in
            if lo < n && Option.is_none (Atomic.get failure) then begin
              (try
                 for i = lo to min n (lo + chunk) - 1 do
                   (match faults with
                   | Some f -> Faults.pool_point f ~batch ~item:i
                   | None -> ());
                   if tracing then
                     Telemetry.with_span ~parent:batch_span
                       ~args:[ ("i", string_of_int i) ] "pool:item" (fun () ->
                         body i)
                   else body i
                 done
               with e ->
                 let bt = Printexc.get_raw_backtrace () in
                 record_failure e bt);
              go ()
            end
          end
        in
        go ()
      in
      let helpers = List.length pool.domains in
      let pending = ref helpers in
      let done_mutex = Mutex.create () in
      let all_done = Condition.create () in
      if helpers > 0 then begin
        Mutex.lock pool.mutex;
        for _ = 1 to helpers do
          Queue.add
            (fun () ->
              run_chunks ();
              Mutex.lock done_mutex;
              decr pending;
              if !pending = 0 then Condition.signal all_done;
              Mutex.unlock done_mutex)
            pool.queue
        done;
        Condition.broadcast pool.nonempty;
        Mutex.unlock pool.mutex
      end;
      run_chunks ();
      if helpers > 0 then begin
        Mutex.lock done_mutex;
        while !pending > 0 do
          Condition.wait all_done done_mutex
        done;
        Mutex.unlock done_mutex
      end;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    in
    if tracing then
      Telemetry.with_span "pool:batch"
        ~args:
          [ ("batch", string_of_int batch); ("items", string_of_int n);
            ("chunk", string_of_int chunk) ]
        (fun () -> run_batch (Telemetry.current_span ()))
    else run_batch Telemetry.null_span
  end

let parallel_map pool ?chunk ?cancel f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ?chunk ?cancel n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_seeded pool ?cancel g f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Split sequentially, in index order, before any parallelism: the
       generator item i sees depends only on g's state and i.  This
       also holds under cancellation: a cancelled sibling batch never
       touches g, so the next batch's splits are unaffected. *)
    let gens = Array.make n g in
    for i = 0 to n - 1 do
      gens.(i) <- Prng.split g
    done;
    let out = Array.make n None in
    parallel_for pool ?cancel n (fun i -> out.(i) <- Some (f gens.(i) arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end
