(* Fixed-size domain pool.  Worker domains block on a thunk queue;
   each batch (parallel_for / parallel_map call) posts one helper thunk
   per worker, all pulling chunk indices from a shared atomic counter,
   and the calling domain pulls chunks too — so jobs = 1 degenerates to
   an inline loop with no synchronization beyond two atomics. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed: exit *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
    }
  in
  pool.domains <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let parallel_for pool ?chunk n body =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 (n / (4 * pool.jobs))
    in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let run_chunks () =
      let rec go () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n && Option.is_none (Atomic.get failure) then begin
          (try
             for i = lo to min n (lo + chunk) - 1 do
               body i
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          go ()
        end
      in
      go ()
    in
    let helpers = List.length pool.domains in
    let pending = ref helpers in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    if helpers > 0 then begin
      Mutex.lock pool.mutex;
      for _ = 1 to helpers do
        Queue.add
          (fun () ->
            run_chunks ();
            Mutex.lock done_mutex;
            decr pending;
            if !pending = 0 then Condition.signal all_done;
            Mutex.unlock done_mutex)
          pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex
    end;
    run_chunks ();
    if helpers > 0 then begin
      Mutex.lock done_mutex;
      while !pending > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex
    end;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_map pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ?chunk n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_seeded pool g f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Split sequentially, in index order, before any parallelism: the
       generator item i sees depends only on g's state and i. *)
    let gens = Array.make n g in
    for i = 0 to n - 1 do
      gens.(i) <- Prng.split g
    done;
    let out = Array.make n None in
    parallel_for pool n (fun i -> out.(i) <- Some (f gens.(i) arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end
