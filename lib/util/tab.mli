(** Plain-text table rendering for experiment output.

    Every experiment in the bench harness prints its results as an
    aligned ASCII table with a caption, in the spirit of the rows a
    paper's evaluation section would report.  Cells are strings;
    alignment is per column. *)

type align = Left | Right

type t

val make : ?caption:string -> header:string list -> align list -> t
(** [make ~caption ~header aligns] starts a table.  [aligns] must have
    the same length as [header]. *)

val add_row : t -> string list -> unit
(** Appends a row.  Must match the header width. *)

val add_rule : t -> unit
(** Appends a horizontal rule (drawn between the surrounding rows). *)

val render : t -> string
(** The finished table, newline terminated. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point float formatting, default 2 digits. *)

val fmt_ratio : float -> string
(** A ratio with a trailing [x], e.g. ["3.20x"]. *)

val fmt_int_thousands : int -> string
(** Integer with thousands separators: [1234567 -> "1,234,567"]. *)
