let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty sample";
  if n = 1 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty sample";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

(* Linear interpolation between closest ranks (the numpy default): rank
   h = (n-1) * p / 100 over the sorted sample, interpolating between
   floor(h) and ceil(h).  With p = 50 and even n this lands exactly
   halfway between the two middle elements, so [median] below agrees
   with [percentile 50] by construction rather than by coincidence. *)
let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  (* NaN has no rank: [Float.compare] sorts it after every number, so a
     single NaN latency would silently poison the upper percentiles a
     load report is built from.  Reject instead. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN in sample")
    xs;
  let s = Array.copy xs in
  Array.sort Float.compare s;
  let h = float_of_int (n - 1) *. p /. 100.0 in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  s.(lo) +. (frac *. (s.(hi) -. s.(lo)))

let median xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.median: empty sample";
  percentile xs 50.0

let ci95_halfwidth xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.ci95_halfwidth: empty sample";
  1.96 *. stddev xs /. sqrt (float_of_int n)

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-30 then
    invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let ybar = sy /. fn in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.)) 0.0 pts in
  let ss_res =
    Array.fold_left
      (fun a (x, y) -> a +. ((y -. (slope *. x) -. intercept) ** 2.))
      0.0 pts
  in
  let r2 = if ss_tot <= 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (slope, intercept, r2)

let proportional_fit pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Stats.proportional_fit: empty sample";
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  if sxx <= 0.0 then invalid_arg "Stats.proportional_fit: degenerate x values";
  let c = sxy /. sxx in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let ybar = sy /. float_of_int n in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.)) 0.0 pts in
  let ss_res =
    Array.fold_left (fun a (x, y) -> a +. ((y -. (c *. x)) ** 2.)) 0.0 pts
  in
  let r2 = if ss_tot <= 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (c, r2)

let log_log_slope pts =
  let ok = Array.for_all (fun (x, y) -> x > 0.0 && y > 0.0) pts in
  if not ok then invalid_arg "Stats.log_log_slope: non-positive coordinate";
  let logged = Array.map (fun (x, y) -> (log x, log y)) pts in
  let slope, _, _ = linear_fit logged in
  slope
