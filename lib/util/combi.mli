(** Enumeration helpers for exhaustive small-instance experiments.

    The lower-bound experiments (E2, E8) enumerate every assignment of a
    handful of bounded integer variables — for example every instance of
    the free submatrices C and E of Fig. 3 for tiny n and q.  These
    helpers iterate such product spaces without materializing them. *)

val iter_tuples : int -> int -> (int array -> unit) -> unit
(** [iter_tuples radix len f] calls [f] on every array of [len] digits
    in [\[0, radix)], in lexicographic order.  The array is reused
    between calls; copy it if you keep it.  [radix >= 1], [len >= 0]. *)

val count_tuples : int -> int -> int
(** [count_tuples radix len = radix ^ len], erroring on overflow of the
    native integer range. *)

val iter_subsets : int -> (int list -> unit) -> unit
(** [iter_subsets n f] calls [f] on every subset of [\[0, n)], as a
    sorted list, in binary-counter order.  [n <= 20] to keep the space
    enumerable. *)

val iter_combinations : int -> int -> (int array -> unit) -> unit
(** [iter_combinations n r f] calls [f] on every sorted [r]-element
    combination drawn from [\[0, n)].  The array is reused. *)

val iter_permutations : int -> (int array -> unit) -> unit
(** [iter_permutations n f] calls [f] on every permutation of [\[0, n)]
    (Heap's algorithm; the array is reused).  [n <= 10]. *)

val factorial : int -> int
(** @raise Failure on native-int overflow ([n > 20]). *)

val binomial : int -> int -> int
(** [binomial n r] = C(n, r), exact over native ints ([0] when
    [r > n]).  Factors common to numerator and denominator are
    cancelled before multiplying, so values near the native-int limit
    (e.g. [binomial 62 31]) are computed exactly rather than wrapping.
    @raise Failure on native-int overflow of the result. *)

val power : int -> int -> int
(** [power b e] for [e >= 0] with {e exact} overflow detection: the
    result is returned iff [b^e] is representable as a native int
    (boundary values like [3^39] or [(2^31 - 1)^2], and [min_int]
    itself, included) — the check is integer division against
    [max_int], never a float approximation.
    @raise Failure on native-int overflow. *)
