let iter_tuples radix len f =
  if radix < 1 || len < 0 then invalid_arg "Combi.iter_tuples";
  let digits = Array.make len 0 in
  let rec advance i =
    (* Increment digit i with carry; false when the counter wraps. *)
    if i >= len then false
    else if digits.(i) + 1 < radix then begin
      digits.(i) <- digits.(i) + 1;
      true
    end
    else begin
      digits.(i) <- 0;
      advance (i + 1)
    end
  in
  let continue = ref true in
  while !continue do
    f digits;
    continue := len > 0 && advance 0
  done

(* Exact overflow-checked product.  The magnitude test [ax > max_int /
   ay] is a floor comparison, so it is exact, never approximate; the
   one representable product it would wrongly reject is [min_int]
   itself (magnitude [max_int + 1]), recognized by the second test:
   [ay] divides [2^62] iff [max_int mod ay = ay - 1], and then
   [2^62 / ay = max_int / ay + 1]. *)
let mul_checked x y =
  if x = 0 || y = 0 then 0
  else if x = 1 then y
  else if y = 1 then x
  else if x = min_int || y = min_int then failwith "Combi.power: overflow"
  else begin
    let ax = abs x and ay = abs y in
    let neg = x < 0 <> (y < 0) in
    if ax <= max_int / ay then if neg then -(ax * ay) else ax * ay
    else if neg && max_int mod ay = ay - 1 && ax = (max_int / ay) + 1 then
      min_int
    else failwith "Combi.power: overflow"
  end

let power b e =
  if e < 0 then invalid_arg "Combi.power: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul_checked acc b else acc in
      let e = e lsr 1 in
      (* Only square when another round needs it: [b * b] may overflow
         even though the already-accumulated result is exact. *)
      if e = 0 then acc else go acc (mul_checked b b) e
    end
  in
  go 1 b e

let count_tuples radix len = power radix len

let iter_subsets n f =
  if n < 0 || n > 20 then invalid_arg "Combi.iter_subsets";
  for mask = 0 to (1 lsl n) - 1 do
    let rec collect i acc =
      if i < 0 then acc
      else collect (i - 1) (if mask lsr i land 1 = 1 then i :: acc else acc)
    in
    f (collect (n - 1) [])
  done

let iter_combinations n r f =
  if r < 0 || n < 0 then invalid_arg "Combi.iter_combinations";
  if r > n then ()
  else begin
    let c = Array.init r (fun i -> i) in
    let continue = ref true in
    while !continue do
      f c;
      (* Find the rightmost index that can still be advanced. *)
      let i = ref (r - 1) in
      while !i >= 0 && c.(!i) = n - r + !i do
        decr i
      done;
      if !i < 0 then continue := false
      else begin
        c.(!i) <- c.(!i) + 1;
        for j = !i + 1 to r - 1 do
          c.(j) <- c.(j - 1) + 1
        done
      end
    done
  end

let iter_permutations n f =
  if n < 0 || n > 10 then invalid_arg "Combi.iter_permutations";
  let a = Array.init n (fun i -> i) in
  (* Heap's algorithm, iterative form. *)
  let c = Array.make n 0 in
  f a;
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i mod 2 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let factorial n =
  if n < 0 then invalid_arg "Combi.factorial";
  let rec go acc i = if i > n then acc else go (acc * i) (i + 1) in
  if n > 20 then failwith "Combi.factorial: overflow" else go 1 1

let binomial n r =
  if r < 0 || n < 0 then invalid_arg "Combi.binomial";
  if r > n then 0
  else begin
    let r = min r (n - r) in
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    (* Invariant: acc = C(n - r + i - 1, i - 1), always exact.  The
       next value is acc * m / i with m = n - r + i; reducing m and i
       by their gcd first leaves a denominator coprime to m that must
       divide acc, so we can divide before multiplying and the guard
       below only fires when the true value exceeds the native range
       (not on benign intermediate products, cf. C(62, 31)). *)
    let rec go acc i =
      if i > r then acc
      else begin
        let m = n - r + i in
        let g = gcd m i in
        let m = m / g and i_red = i / g in
        let acc = acc / i_red in
        if acc > max_int / m then failwith "Combi.binomial: overflow"
        else go (acc * m) (i + 1)
      end
    in
    go 1 1
  end
