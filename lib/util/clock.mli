(** Monotonic time for durations and deadlines.

    Everything in the runtime that measures an elapsed time or
    enforces a deadline — {!Pool.Token} deadlines, {!Supervisor}
    budgets, bench wall-clock, {!Telemetry} span timestamps — reads
    this clock rather than [Unix.gettimeofday], so an NTP step or a
    manual wall-clock jump mid-run can neither fire a timeout early
    nor stretch a recorded duration.

    The epoch is arbitrary (typically system boot): values are only
    meaningful relative to each other within one process.  Never mix
    them with wall-clock times. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock.  Non-decreasing within a
    process; the epoch is arbitrary. *)

val now_s : unit -> float
(** {!now_ns} in seconds.  Same epoch caveat. *)

val ns_to_us : int -> float
(** Nanoseconds to (fractional) microseconds — the unit of the Chrome
    trace-event format. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds. *)

val sleep_until : float -> unit
(** [sleep_until deadline] blocks until [now_s () >= deadline] (a
    monotonic instant, as for {!Pool.Token} deadlines).  Unlike a bare
    [Unix.sleepf], a signal arriving mid-sleep cannot truncate the
    pause: the sleep is re-issued for the remaining time until the
    deadline is actually reached.  Signal handlers still run during
    the pause.  Returns immediately when the deadline has passed. *)

val sleepf : float -> unit
(** [sleepf s] is [sleep_until (now_s () +. s)]: sleep at least [s]
    seconds of monotonic time, immune to early wake-ups from signal
    delivery (EINTR).  Non-positive durations return immediately.
    Use this instead of [Unix.sleepf] anywhere a signal-handling
    process (the [ccmx serve] daemon in particular) must honor a
    backoff or injected delay in full. *)
