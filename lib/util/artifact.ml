(* Schema-v3 BENCH_*.json artifacts, shared by bench/main and the ccmx
   CLI so the two entry points cannot drift (field order, status
   vocabulary, resume semantics). *)

let schema_version = 3

let path ~dir ~id = Filename.concat dir (Printf.sprintf "BENCH_%s.json" id)

let metrics ~counters ~phases =
  let bits_total =
    match List.assoc_opt "channel.bits_total" counters with
    | Some b -> b
    | None -> 0
  in
  Json.Obj
    [
      ("bits_total", Json.Int bits_total);
      ( "wall_s_by_phase",
        Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) phases) );
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters));
    ]

let write ~dir ~id ~jobs ~wall_s ~attempts ~status ~error ?(metrics = Json.Null)
    ~report_fields () =
  Fsutil.mkdir_p dir;
  let doc =
    Json.Obj
      ([
         ("schema_version", Json.Int schema_version);
         ("experiment", Json.String id);
         ("status", Json.String status);
         ("error", error);
         ("attempts", Json.Int attempts);
         ("jobs", Json.Int jobs);
         ("wall_s", Json.Float wall_s);
         ("metrics", metrics);
       ]
      @ report_fields)
  in
  Json.to_file ~path:(path ~dir ~id) doc

(* --resume DIR: an experiment is done iff its artifact exists, parses,
   and carries status "ok".  Truncated files cannot occur (atomic
   writes) but artifacts from killed runs may be absent or non-ok; both
   re-execute.  Schema version is deliberately NOT checked: a v2 "ok"
   artifact still certifies a completed experiment. *)
let resume_done ~dir ~id =
  let p = path ~dir ~id in
  Sys.file_exists p
  && (match Json.of_file p with
     | doc -> Json.member "status" doc = Some (Json.String "ok")
     | exception _ -> false)
