(** Supervised execution of harness experiments.

    One raising or hanging experiment must not abort a whole sweep:
    the supervisor runs each unit of work under a classification —
    [Ok] / [Failed] (exception + backtrace) / [Timed_out] — with a
    per-attempt monotonic-clock deadline enforced through the pool's
    cooperative cancel token ({!Pool.Token}), and bounded retry with
    exponential backoff for failures the policy deems transient
    (by default, injected faults — see {!Faults}).

    The deadline is installed as the pool's {e ambient} token
    ({!Pool.set_cancel}), so every pool batch the experiment issues,
    and every {!Pool.check_cancel} poll in its sequential sections,
    observes it without the experiment threading a token around.  The
    token is cleared again after each attempt, succeed or fail. *)

type failure = {
  exn : string;  (** [Printexc.to_string] of the raised exception *)
  backtrace : string;  (** captured backtrace, possibly empty *)
}

type 'a outcome =
  | Ok of 'a
  | Failed of failure
  | Timed_out of float
      (** the per-attempt budget, in seconds, that was exceeded *)

type config = {
  timeout_s : float option;  (** per-attempt time budget (monotonic clock) *)
  retries : int;  (** additional attempts after the first *)
  backoff_s : float;  (** sleep before retry [i] is [backoff_s * 2^(i-1)] *)
  jitter : float;
      (** max fractional backoff jitter in [[0, 1]]: retry [i] sleeps
          [backoff_s * 2^(i-1) * (1 + jitter * u)] where [u] is the
          deterministic {!val-jitter} value for
          [(jitter_seed, name, i)].  [0] (the default) reproduces the
          exact historical pauses. *)
  jitter_seed : int;  (** seed of the deterministic jitter stream *)
  retryable : exn -> bool;  (** which failures are worth retrying *)
}

val jitter : seed:int -> name:string -> attempt:int -> float
(** The deterministic jitter value in [[0, 1)]: a {e pure} function of
    [(seed, name, attempt)] (via {!Faults.unit_float}), never of time
    or scheduling.  Two retriers with different names (or seeds)
    desynchronize — no thundering herd at exact powers of
    [backoff_s] — while a replay under a fixed seed backs off
    bit-identically. *)

(** {2 Retry logging}

    Retry notices used to go straight to stderr with [Printf.eprintf];
    a long-running host (the [ccmx serve] daemon) needs to capture
    them into its own structured log instead of having attempts on
    different domains interleave raw lines.  The sink receives the
    structured record; formatting is the sink's business. *)

type retry_log = {
  name : string;  (** the supervised unit's name *)
  attempt : int;  (** the attempt that just failed (1-based) *)
  exn : string;  (** [Printexc.to_string] of the failure *)
  pause_s : float;  (** backoff before the next attempt *)
}

val default_log_sink : retry_log -> unit
(** The historical behavior: one flushed
    ["[supervisor] <name>: attempt <n> failed (<exn>), retrying in
    <pause>s"] line on stderr. *)

val set_log_sink : (retry_log -> unit) -> unit
(** Replace the process-wide retry sink.  Called once at host startup,
    before supervised work runs. *)

val reset_log_sink : unit -> unit
(** Restore {!default_log_sink} (used by tests). *)

val default_config : config
(** No timeout, no retries, [backoff_s = 0.1], no jitter, and
    [retryable] true exactly for {!Faults.Injected} (real bugs are
    deterministic; only injected/transient faults benefit from another
    attempt). *)

val config :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  ?retryable:(exn -> bool) ->
  unit ->
  config
(** {!default_config} with the given fields replaced.
    @raise Invalid_argument if [timeout_s <= 0], [retries < 0] or
    [jitter] outside [[0, 1]]. *)

val run :
  ?config:config -> pool:Pool.t -> name:string -> (attempt:int -> 'a) -> 'a outcome * int
(** [run ~pool ~name f] calls [f ~attempt:1]; on a retryable exception
    it backs off and calls [f ~attempt:2], and so on, up to
    [1 + retries] attempts.  Returns the final outcome and the number
    of attempts made.  Classification per attempt:

    - normal return: [Ok];
    - {!Pool.Cancelled} escaping [f] while this attempt's token has
      fired: [Timed_out] — never retried, since a repeat attempt would
      deterministically exceed the same budget;
    - any other exception — including a {!Pool.Cancelled} whose cause
      is not this attempt's deadline: [Failed] (after exhausting
      retries if [retryable]).

    [name] is used only for attempt-numbered log lines on retry.  The
    pool's ambient cancel token is replaced for the duration of each
    attempt and restored to [None] afterwards; [run] itself never
    raises on [f]'s behalf. *)

val outcome_label : 'a outcome -> string
(** ["ok"], ["failed"] or ["timed_out"] — the [status] vocabulary of
    the JSON artifacts (EXPERIMENTS.md, schema version 2). *)
