(** Filesystem helpers shared by {!Cli} and {!Telemetry} (which sit on
    opposite sides of a dependency edge and cannot share code
    directly). *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents.  Free of the
    check-then-create race: every level attempts [Unix.mkdir]
    unconditionally and treats [EEXIST] as success, so two concurrent
    runs creating the same fresh artifact directory both succeed.
    @raise Unix.Unix_error on real failures (permissions, missing
    filesystem, a non-directory in the path). *)
