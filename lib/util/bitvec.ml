(* Packed bit vectors, 62 bits per native word so that all word-level
   operations stay within OCaml's tagged-integer range on 64-bit
   platforms (and the code remains correct, if slower, on 32-bit). *)

let bits_per_word = 62

type t = { len : int; words : int array }

let words_for len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; words = Array.make (words_for len) 0 }

let length v = v.len

let check_index v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of bounds"

let get v i =
  check_index v i;
  v.words.(i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

let set v i b =
  check_index v i;
  let w = i / bits_per_word and o = i mod bits_per_word in
  if b then v.words.(w) <- v.words.(w) lor (1 lsl o)
  else v.words.(w) <- v.words.(w) land lnot (1 lsl o)

let copy v = { len = v.len; words = Array.copy v.words }

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash v = Hashtbl.hash (v.len, v.words)

(* Branch-free SWAR popcount, valid for any non-negative OCaml int
   (bits 0..61; our words use at most 62 bits).  The usual 64-bit
   subtract trick needs a mask with bit 63 set, so the first step uses
   the equivalent add form with the even-bit mask instead.  The
   exact-CC inner loop calls this on every split mask, where the
   clear-lowest-bit loop's data-dependent branching is measurably
   slower. *)
let popcount_word w =
  let w = (w land 0x1555555555555555) + ((w lsr 1) land 0x1555555555555555) in
  let w = (w land 0x3333333333333333) + ((w lsr 2) land 0x3333333333333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (w * 0x0101010101010101) lsr 56 land 0x7F

let popcount_int = popcount_word

let popcount v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words

let binop_into op dst src =
  if dst.len <> src.len then invalid_arg "Bitvec: length mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- op dst.words.(i) src.words.(i)
  done

let xor_into dst src = binop_into ( lxor ) dst src
let and_into dst src = binop_into ( land ) dst src
let or_into dst src = binop_into ( lor ) dst src

let is_zero v = Array.for_all (fun w -> w = 0) v.words

let fold_set_bits f v init =
  let acc = ref init in
  for w = 0 to Array.length v.words - 1 do
    let word = ref v.words.(w) in
    while !word <> 0 do
      let low = !word land - !word in
      let o =
        (* index of the isolated low bit *)
        let rec go b i = if b = 1 then i else go (b lsr 1) (i + 1) in
        go low 0
      in
      acc := f ((w * bits_per_word) + o) !acc;
      word := !word land lnot low
    done
  done;
  !acc

let of_int n v =
  if n < 0 || n > bits_per_word then invalid_arg "Bitvec.of_int";
  let r = create n in
  for i = 0 to n - 1 do
    if v lsr i land 1 = 1 then set r i true
  done;
  r

let to_int v =
  if v.len > bits_per_word then invalid_arg "Bitvec.to_int: too long";
  if v.len = 0 then 0 else v.words.(0)

let random g n =
  let r = create n in
  for i = 0 to n - 1 do
    set r i (Prng.bool g)
  done;
  r

let append a b =
  let r = create (a.len + b.len) in
  for i = 0 to a.len - 1 do
    set r i (get a i)
  done;
  for i = 0 to b.len - 1 do
    set r (a.len + i) (get b i)
  done;
  r

let sub v pos len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Bitvec.sub";
  let r = create len in
  for i = 0 to len - 1 do
    set r i (get v (pos + i))
  done;
  r

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let of_string s =
  let r = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set r i true
      | _ -> invalid_arg "Bitvec.of_string: expected '0' or '1'")
    s;
  r
