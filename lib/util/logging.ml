(* Structured JSON-lines logging.  The hot-path discipline mirrors
   Telemetry: a record below the logger's threshold costs one integer
   compare, and all formatting happens only for records that will
   actually be written.  Sinks own the serialization point so a
   record is one atomic line regardless of which domain logged it. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

type t = {
  max_severity : int;  (* records with severity > this are dropped *)
  sink : Json.t -> unit;
  bound : (string * Json.t) list;  (* with_fields accumulations, in order *)
}

let line_sink oc =
  let m = Mutex.create () in
  fun record ->
    let line = Json.to_string record ^ "\n" in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        output_string oc line;
        flush oc)

let stderr_sink = line_sink stderr

let file_sink ~path =
  Fsutil.mkdir_p (Filename.dirname path);
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  line_sink oc

let create ?(level = Info) ?(sink = stderr_sink) () =
  { max_severity = severity level; sink; bound = [] }

let null = { max_severity = -1; sink = ignore; bound = [] }

let with_fields t fields = { t with bound = t.bound @ fields }

let enabled t lvl = severity lvl <= t.max_severity

let log t lvl ?(fields = []) msg =
  if severity lvl <= t.max_severity then
    t.sink
      (Json.Obj
         (("ts", Json.Float (Unix.gettimeofday ()))
         :: ("mono_s", Json.Float (Clock.now_s ()))
         :: ("level", Json.String (level_to_string lvl))
         :: ("msg", Json.String msg)
         :: (t.bound @ fields)))

let error t ?fields msg = log t Error ?fields msg
let warn t ?fields msg = log t Warn ?fields msg
let info t ?fields msg = log t Info ?fields msg
let debug t ?fields msg = log t Debug ?fields msg
