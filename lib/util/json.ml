type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that round-trips; falls back to 17 significant
   digits, which is always exact for a double. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* Non-finite floats have no strict-JSON literal; emitting [null] (as
   this module once did) silently turned [Float nan] into [Null] on the
   way back in.  We use the de-facto extension literals (Python's
   [json], JavaScript's [JSON.parse] with reviver, etc.): [NaN],
   [Infinity], [-Infinity] — and the parser below accepts them, so
   every [Float] round-trips. *)
let add_number buf f =
  if Float.is_nan f then Buffer.add_string buf "NaN"
  else if f = Float.infinity then Buffer.add_string buf "Infinity"
  else if f = Float.neg_infinity then Buffer.add_string buf "-Infinity"
  else Buffer.add_string buf (float_repr f)

let rec emit ~indent ~level buf v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c = Buffer.add_char buf c; if indent then Buffer.add_char buf '\n' in
  let sep_close c =
    if indent then begin Buffer.add_char buf '\n'; pad level end;
    Buffer.add_char buf c
  in
  let comma () =
    Buffer.add_char buf ',';
    if indent then Buffer.add_char buf '\n'
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_number buf f
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      sep_open '[';
      List.iteri
        (fun i item ->
          if i > 0 then comma ();
          pad (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      sep_close ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      sep_open '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then comma ();
          pad (level + 1);
          escape_string buf key;
          Buffer.add_string buf (if indent then ": " else ":");
          emit ~indent ~level:(level + 1) buf value)
        fields;
      sep_close '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg cur.pos)

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let parse_literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

(* Encode a Unicode code point as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 cur =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek cur with
    | Some c when c >= '0' && c <= '9' -> v := (!v * 16) + Char.code c - Char.code '0'
    | Some c when c >= 'a' && c <= 'f' -> v := (!v * 16) + Char.code c - Char.code 'a' + 10
    | Some c when c >= 'A' && c <= 'F' -> v := (!v * 16) + Char.code c - Char.code 'A' + 10
    | _ -> fail cur "expected hex digit");
    advance cur
  done;
  !v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> Buffer.add_char buf '"'; advance cur
        | Some '\\' -> Buffer.add_char buf '\\'; advance cur
        | Some '/' -> Buffer.add_char buf '/'; advance cur
        | Some 'n' -> Buffer.add_char buf '\n'; advance cur
        | Some 'r' -> Buffer.add_char buf '\r'; advance cur
        | Some 't' -> Buffer.add_char buf '\t'; advance cur
        | Some 'b' -> Buffer.add_char buf '\b'; advance cur
        | Some 'f' -> Buffer.add_char buf '\012'; advance cur
        | Some 'u' ->
            advance cur;
            let cp = parse_hex4 cur in
            (* Surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              expect cur '\\';
              expect cur 'u';
              let lo = parse_hex4 cur in
              if lo < 0xDC00 || lo > 0xDFFF then fail cur "invalid low surrogate";
              add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else add_utf8 buf cp
        | _ -> fail cur "invalid escape");
        loop ()
    | Some c -> Buffer.add_char buf c; advance cur; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let consume () =
    while
      match peek cur with
      | Some ('0' .. '9' | '-' | '+') -> true
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          true
      | _ -> false
    do
      advance cur
    done
  in
  consume ();
  let s = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "malformed number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* Integer literal out of native range: keep it as a float. *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur "malformed number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some 'N' -> parse_literal cur "NaN" (Float Float.nan)
  | Some 'I' -> parse_literal cur "Infinity" (Float Float.infinity)
  | Some '-'
    when cur.pos + 1 < String.length cur.src && cur.src.[cur.pos + 1] = 'I' ->
      advance cur;
      parse_literal cur "Infinity" (Float Float.neg_infinity)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          items := parse_value cur :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; loop ()
          | Some ']' -> advance cur
          | _ -> fail cur "expected ',' or ']'"
        in
        loop ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec loop () =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          fields := (key, parse_value cur) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; loop ()
          | Some '}' -> advance cur
          | _ -> fail cur "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Atomic file IO                                                      *)
(* ------------------------------------------------------------------ *)

(* Atomic sinks: write to a uniquely-named sibling temp file, publish
   with rename(2).  A crash mid-write leaves the final path either
   absent or intact, never truncated; a sibling in the same directory
   is guaranteed to be on the same filesystem, so the rename is
   atomic.  The temp name must be unique per writer
   ([Filename.temp_file] creates it with O_EXCL) — a fixed ".tmp"
   sibling would let two concurrent writers of the same path
   interleave into one temp file and publish corrupt JSON.

   Both the one-shot [to_file] and incremental writers (the telemetry
   trace exporter flushes events between experiments) go through this
   module, so the cleanup guarantees cannot drift: every exit path —
   commit, abort, or an exception between writes — either publishes
   the full file or removes the temp, never leaving a half-written
   [*.tmp] behind. *)
module Atomic = struct
  type t = {
    oc : out_channel;
    tmp : string;
    path : string;
    mutable live : bool;
  }

  let create ~path =
    let tmp =
      Filename.temp_file ~temp_dir:(Filename.dirname path)
        (Filename.basename path ^ ".") ".tmp"
    in
    match open_out tmp with
    | oc -> { oc; tmp; path; live = true }
    | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e

  let channel t =
    if not t.live then invalid_arg "Json.Atomic.channel: sink already closed";
    t.oc

  let abort t =
    if t.live then begin
      t.live <- false;
      close_out_noerr t.oc;
      try Sys.remove t.tmp with Sys_error _ -> ()
    end

  let commit t =
    if t.live then begin
      t.live <- false;
      (match close_out t.oc with
      | () -> ()
      | exception e ->
          (try Sys.remove t.tmp with Sys_error _ -> ());
          raise e);
      try Sys.rename t.tmp t.path
      with e ->
        (try Sys.remove t.tmp with Sys_error _ -> ());
        raise e
    end
end

let to_file ~path doc =
  let sink = Atomic.create ~path in
  (try output_string (Atomic.channel sink) (to_string_pretty doc)
   with e ->
     Atomic.abort sink;
     raise e);
  Atomic.commit sink

let of_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s
