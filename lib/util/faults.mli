(** Deterministic fault injection for the experiment runtime.

    The supervised harness (see {!Supervisor}) claims to isolate
    crashing experiments, retry transient failures, and resume
    interrupted sweeps.  Those paths only run when something actually
    fails, so this module manufactures failures {e reproducibly}: an
    injector is seeded once (CLI [--inject-faults SEED] or the
    [COMMX_INJECT_FAULTS] environment variable) and every injection
    site then decides {e raise / delay / pass} as a pure function of
    the seed and the site name — never of wall-clock time, scheduling,
    or call order.  The same seed therefore produces the same fault
    pattern in every run, in CI and locally, at any [--jobs] value
    (pool sites are keyed by batch and item index, both
    schedule-independent).

    Two families of sites exist:

    - {e entry sites} ([point], rate {!val-create}[ ~rate]): one per
      experiment attempt, named ["E3:attempt1"] and the like, so a
      retry re-rolls the decision;
    - {e pool sites} ([pool_point], rate [~pool_rate], much smaller
      since a run contains hundreds of work items): one per
      (batch, item) inside {!Pool.parallel_for} bodies, which is where
      a real crash in a worker domain would surface.

    The hash is FNV-1a over the site string, seeded, finalized with
    the SplitMix64 mixer — self-contained and stable across OCaml
    versions and platforms. *)

type t
(** An injector: a seed plus the three rates.  Immutable; safe to
    share across domains. *)

exception Injected of string
(** Raised at a site that decided to fail; the payload is the site
    name.  Classified as retryable by {!Supervisor.default_config}. *)

val create :
  seed:int ->
  ?rate:float ->
  ?pool_rate:float ->
  ?delay_rate:float ->
  ?delay_s:float ->
  unit ->
  t
(** [create ~seed ()] builds an injector.  [rate] (default [0.25]) is
    the raise probability at entry sites; [pool_rate] (default
    [0.003]) the raise probability per pool work item; [delay_rate]
    (default [0.01]) the probability a pool item sleeps [delay_s]
    (default [0.02]) seconds instead — exercising the deadline
    machinery.  Rates must lie in [[0, 1]].
    @raise Invalid_argument on an out-of-range rate. *)

val seed : t -> int
(** The seed the injector was created with. *)

val unit_float : seed:int -> site:string -> float
(** The underlying pure hash: a uniform value in [[0, 1)] that is a
    function of [(seed, site)] only — never of call order, scheduling
    or wall-clock time.  Besides driving {!decide}, this is the
    primitive behind deterministic backoff jitter
    ({!Supervisor.jitter}): any component that needs a reproducible
    per-site random value shares this one definition. *)

type decision = Pass | Raise | Delay

val decide : t -> site:string -> rate:float -> delay_rate:float -> decision
(** [decide t ~site ~rate ~delay_rate] is the pure decision function:
    a uniform value in [[0, 1)] derived from [(seed, site)] compared
    against the rates.  Exposed for tests; [point] and [pool_point]
    are the executing wrappers. *)

val point : t option -> site:string -> unit
(** [point (Some t) ~site] raises [Injected site] with probability
    [rate]; [point None ~site] is a no-op (injection disabled). *)

val pool_point : t -> batch:int -> item:int -> unit
(** Injection site inside a pool task: site ["pool:<batch>:<item>"],
    raise probability [pool_rate], else sleep [delay_s] with
    probability [delay_rate].  Keyed by batch and item index only, so
    the decision is identical at every job count. *)
