(** Minimal dependency-free JSON, for machine-readable bench artifacts.

    The experiment harness writes one [BENCH_E<id>.json] file per
    experiment so that performance and measured quantities leave a
    trajectory that later PRs can diff mechanically, instead of only
    ASCII tables on stdout.  This module is deliberately tiny: a value
    type, a compact/pretty emitter, and a strict parser sufficient to
    round-trip what the emitter produces (used by the tests and by the
    CI smoke check).  It is not a general-purpose JSON library — no
    streaming, no number-precision haggling beyond what [float]
    carries. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization (no insignificant whitespace).  Non-finite
    floats have no strict-JSON literal and are emitted as the de-facto
    extension tokens [NaN], [Infinity] and [-Infinity] (accepted by
    {!of_string}, Python's [json], and most lenient parsers), so every
    [Float] — finite or not — round-trips instead of collapsing to
    [null]. *)

val to_string_pretty : t -> string
(** Two-space-indented serialization, trailing newline, for artifacts
    meant to be read (and diffed) by humans too. *)

val of_string : string -> t
(** Strict parser for the JSON subset the emitter produces (which is
    all of standard JSON except non-UTF-8 escapes are passed through
    decoded).  Numbers without [.], [e] or [E] parse as [Int], others
    as [Float].
    @raise Failure with a position-annotated message on malformed
    input or trailing garbage. *)

val member : string -> t -> t option
(** [member key (Obj _)] is the first binding of [key], if any; [None]
    on non-objects. *)

(** Atomic file publication, shared by {!to_file} and incremental
    writers (the telemetry trace exporter).  A sink writes to a
    uniquely-named sibling temp file; {!Atomic.commit} renames it into
    place (atomic within a filesystem), {!Atomic.abort} removes it.
    Whatever the exit path — commit, abort, or an exception between
    incremental writes followed by abort — no half-written [*.tmp]
    survives at the destination directory. *)
module Atomic : sig
  type t

  val create : path:string -> t
  (** Open a unique temp sibling of [path] for writing.  The parent
      directory must exist. *)

  val channel : t -> out_channel
  (** The channel to write through.  Flush it to make incremental
      progress durable.
      @raise Invalid_argument after {!commit} or {!abort}. *)

  val commit : t -> unit
  (** Flush, close and rename into place.  Idempotent; removes the
      temp file if the final close or rename fails. *)

  val abort : t -> unit
  (** Close and delete the temp file without publishing.
      Idempotent. *)
end

val to_file : path:string -> t -> unit
(** [to_file ~path doc] writes [to_string_pretty doc] to [path]
    {e atomically} through {!Atomic}: the document goes to a unique
    temp sibling first and is renamed into place, so a crash mid-write
    never leaves a truncated artifact at [path]; the temp file is
    removed on any exception. *)

val of_file : string -> t
(** [of_file path] parses the whole file as one document.
    @raise Failure as {!of_string}, or [Sys_error] on IO errors. *)
