(** Schema-v3 [BENCH_<id>.json] experiment artifacts.

    One writer for both entry points ([bench/main.exe] and
    [ccmx lemmas]) so field names, status vocabulary and resume
    semantics stay identical.  Version history:

    - v1: title / params / rows / fits measurement payload
    - v2: + status / error / attempts supervision metadata
    - v3: + [metrics] object — [bits_total] (the paper's quantity:
      total bits through protocol channels during the experiment),
      [wall_s_by_phase] (generate / enumerate / verify breakdown) and
      [counters] (per-experiment deltas of every {!Telemetry} counter).

    All writes go through {!Json.to_file} and are atomic (unique temp
    sibling + rename). *)

val schema_version : int
(** [3] *)

val path : dir:string -> id:string -> string
(** [dir/BENCH_<id>.json] *)

val metrics :
  counters:(string * int) list -> phases:(string * float) list -> Json.t
(** Build the v3 [metrics] object from per-experiment counter deltas
    ({!Telemetry.diff_counters}) and drained phase durations.
    [bits_total] is lifted out of the ["channel.bits_total"] counter
    (0 when the experiment executed no protocol). *)

val write :
  dir:string ->
  id:string ->
  jobs:int ->
  wall_s:float ->
  attempts:int ->
  status:string ->
  error:Json.t ->
  ?metrics:Json.t ->
  report_fields:(string * Json.t) list ->
  unit ->
  unit
(** Write [dir/BENCH_<id>.json] atomically, creating [dir] if needed.
    [report_fields] carries the measurement payload (title / params /
    rows / fits — nulled out by callers for non-ok outcomes);
    [metrics] defaults to [Null] when telemetry was off. *)

val resume_done : dir:string -> id:string -> bool
(** Does a valid artifact with [status = "ok"] exist for [id] in
    [dir]?  Malformed or non-ok artifacts (from killed or failed runs)
    answer [false] and the experiment re-executes.  Any schema version
    counts — an older ok artifact still certifies completion. *)
