(** Leveled structured JSON-lines logging.

    One log record is one JSON object on one line:
    [{"ts": <wall s>, "mono_s": <monotonic s>, "level": "..",
      "msg": "..", ..fields}] — [ts] is wall-clock
    ([Unix.gettimeofday], comparable across processes) and [mono_s] is
    the monotonic {!Clock} reading (comparable with every other
    duration this codebase measures).  Records below the logger's
    threshold cost one integer compare and a branch — no allocation,
    no formatting — so call sites never need their own guards.

    Sinks receive the fully-assembled record; the provided sinks
    (stderr, append-to-file) serialize the object, append ["\n"] and
    flush under a per-sink mutex, so lines from different domains
    never interleave.  A custom sink (a test capturing records, a
    ring buffer) gets the {!Json.t} itself. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string
(** ["error"], ["warn"], ["info"], ["debug"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_to_string}; [None] on anything else. *)

type t

val create : ?level:level -> ?sink:(Json.t -> unit) -> unit -> t
(** A logger emitting records at or above [level] (default [Info])
    into [sink] (default: JSON lines on stderr). *)

val null : t
(** Drops everything, including errors.  For tests that want quiet. *)

val stderr_sink : Json.t -> unit
(** One serialized record per line on stderr, flushed, mutexed. *)

val file_sink : path:string -> Json.t -> unit
(** Append one serialized record per line to [path] (created if
    missing, parent directories too), flushed after every line so a
    crash loses nothing, mutexed.  The channel stays open for the
    sink's lifetime. *)

val with_fields : t -> (string * Json.t) list -> t
(** A child logger whose every record carries the given fields (after
    the standard ones, before per-call fields).  The connection- and
    request-scoped loggers of the serve daemon are built this way. *)

val enabled : t -> level -> bool

val log : t -> level -> ?fields:(string * Json.t) list -> string -> unit

val error : t -> ?fields:(string * Json.t) list -> string -> unit
val warn : t -> ?fields:(string * Json.t) list -> string -> unit
val info : t -> ?fields:(string * Json.t) list -> string -> unit
val debug : t -> ?fields:(string * Json.t) list -> string -> unit
