(* Deterministic fault injection.  Decisions are a pure function of
   (seed, site): FNV-1a over the site string folded into the seed,
   finalized with the SplitMix64 mixer (same finalizer as Prng), then
   mapped to a uniform float in [0, 1).  No state advances between
   calls, so call order, scheduling and job count cannot change the
   fault pattern. *)

type t = {
  seed : int;
  rate : float;
  pool_rate : float;
  delay_rate : float;
  delay_s : float;
}

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "Faults.Injected(%s)" site)
    | _ -> None)

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Faults.create: %s must be in [0, 1]" name)

let create ~seed ?(rate = 0.25) ?(pool_rate = 0.003) ?(delay_rate = 0.01)
    ?(delay_s = 0.02) () =
  check_rate "rate" rate;
  check_rate "pool_rate" pool_rate;
  check_rate "delay_rate" delay_rate;
  if delay_s < 0.0 then invalid_arg "Faults.create: delay_s must be >= 0";
  { seed; rate; pool_rate; delay_rate; delay_s }

let seed t = t.seed

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* FNV-1a 64-bit over the site bytes, seeded; explicit Int64 arithmetic
   so the value is identical on every platform. *)
let site_unit_float seed site =
  let h = ref (Int64.logxor 0xCBF29CE484222325L (Int64.of_int seed)) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    site;
  let bits53 = Int64.shift_right_logical (mix64 !h) 11 in
  Int64.to_float bits53 *. 0x1.0p-53

let unit_float ~seed ~site = site_unit_float seed site

type decision = Pass | Raise | Delay

let decide t ~site ~rate ~delay_rate =
  let u = site_unit_float t.seed site in
  if u < rate then Raise else if u < rate +. delay_rate then Delay else Pass

let point t ~site =
  match t with
  | None -> ()
  | Some t -> (
      match decide t ~site ~rate:t.rate ~delay_rate:0.0 with
      | Raise -> raise (Injected site)
      | Delay | Pass -> ())

let pool_point t ~batch ~item =
  let site = Printf.sprintf "pool:%d:%d" batch item in
  match decide t ~site ~rate:t.pool_rate ~delay_rate:t.delay_rate with
  | Raise -> raise (Injected site)
  (* Clock.sleepf, not Unix.sleepf: an injected delay exists to
     exercise the deadline machinery, so a signal (the exact condition
     a daemon creates) must not silently shorten it. *)
  | Delay -> Clock.sleepf t.delay_s
  | Pass -> ()
