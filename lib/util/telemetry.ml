(* Tracing and metrics.  Hot-path discipline: every recording entry
   point starts with one atomic load and a branch; below the active
   level nothing is allocated and the DLS is not touched.  When
   recording, a domain writes only into its own cells (registered
   once, on the domain's first recording), so pool workers never
   contend — merging happens on demand, at quiescent points, under the
   registry mutex.

   Counters and histograms hold integer sums/mins/maxes, which merge
   order-invariantly: totals are bit-identical at any job count as
   long as the instrumented sites themselves are schedule-invariant
   (the Faults convention).  Span durations, gauges and phase times
   are wall-clock measurements and carry no such guarantee. *)

type level = Off | Metrics | Trace

(* 0 / 1 / 2; a plain atomic so hot paths pay one load. *)
let level_cell = Atomic.make 0

let set_level l =
  Atomic.set level_cell (match l with Off -> 0 | Metrics -> 1 | Trace -> 2)

let level () =
  match Atomic.get level_cell with 0 -> Off | 1 -> Metrics | _ -> Trace

let metrics_on () = Atomic.get level_cell > 0
let tracing_on () = Atomic.get level_cell > 1

(* ------------------------------------------------------------------ *)
(* Instrument registries (interning)                                   *)
(* ------------------------------------------------------------------ *)

type counter = int
type gauge = int
type histogram = int

let reg_mutex = Mutex.create ()

type registry = {
  names : (string, int) Hashtbl.t;
  mutable order : string list;  (* reverse interning order *)
  mutable count : int;
}

let fresh_registry () = { names = Hashtbl.create 16; order = []; count = 0 }
let counters_reg = fresh_registry ()
let gauges_reg = fresh_registry ()
let histograms_reg = fresh_registry ()

let intern reg name =
  Mutex.lock reg_mutex;
  let id =
    match Hashtbl.find_opt reg.names name with
    | Some id -> id
    | None ->
        let id = reg.count in
        reg.count <- id + 1;
        reg.order <- name :: reg.order;
        Hashtbl.add reg.names name id;
        id
  in
  Mutex.unlock reg_mutex;
  id

let counter name = intern counters_reg name
let gauge name = intern gauges_reg name
let histogram name = intern histograms_reg name

(* Registry names as an array indexed by id; call under reg_mutex. *)
let names_of reg =
  let a = Array.make reg.count "" in
  List.iteri (fun i name -> a.(reg.count - 1 - i) <- name) reg.order;
  a

(* ------------------------------------------------------------------ *)
(* Per-domain cells                                                    *)
(* ------------------------------------------------------------------ *)

(* Power-of-two histogram buckets: slot [i] counts observations [v]
   with [2^(i-1) < v <= 2^i] (slot 0: [v <= 1], negatives included).
   62 slots cover every OCaml int. *)
let hist_slots = 63

type hist_cell = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  slots : int array;
}

let fresh_hist_cell () =
  { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
    slots = Array.make hist_slots 0 }

let slot_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and x = ref (v - 1) in
    while !x > 0 do
      incr i;
      x := !x lsr 1
    done;
    !i
  end

type span_id = int

let null_span = 0

type frame = {
  f_name : string;
  f_id : span_id;
  f_parent : span_id;
  f_start_ns : int;
  mutable f_args : (string * string) list;  (* reverse append order *)
}

type event = {
  name : string;
  id : span_id;
  parent : span_id;
  tid : int;
  start_ns : int;
  dur_ns : int;
  args : (string * string) list;
}

type dstate = {
  tid : int;
  mutable ctrs : int array;
  mutable hists : hist_cell array;
  phases : (string, int ref) Hashtbl.t;  (* name -> accumulated ns *)
  mutable events : event list;  (* reverse completion order *)
  mutable stack : frame list;  (* open spans, innermost first *)
}

let dstates : dstate list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let ds =
        { tid = (Domain.self () :> int);
          ctrs = [||];
          hists = [||];
          phases = Hashtbl.create 8;
          events = [];
          stack = [] }
      in
      Mutex.lock reg_mutex;
      dstates := ds :: !dstates;
      Mutex.unlock reg_mutex;
      ds)

let dls () = Domain.DLS.get key

let grow_ints a n =
  let b = Array.make n 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let ctr_cell ds id =
  if Array.length ds.ctrs <= id then
    ds.ctrs <- grow_ints ds.ctrs (max 8 (2 * (id + 1)));
  ds.ctrs

let hist_cell ds id =
  if Array.length ds.hists <= id then begin
    let b = Array.init (max 8 (2 * (id + 1))) (fun _ -> fresh_hist_cell ()) in
    Array.blit ds.hists 0 b 0 (Array.length ds.hists);
    ds.hists <- b
  end;
  ds.hists.(id)

(* Gauges are last-write-wins process-wide; written rarely and from
   one domain at a time, so a plain global array suffices. *)
let gauge_values = ref (Array.make 0 0.0)

let add c n =
  if Atomic.get level_cell > 0 then begin
    let ds = dls () in
    let cells = ctr_cell ds c in
    cells.(c) <- cells.(c) + n
  end

let incr c = add c 1

let set_gauge g v =
  if Atomic.get level_cell > 0 then begin
    Mutex.lock reg_mutex;
    if Array.length !gauge_values <= g then begin
      let b = Array.make (max 8 (2 * (g + 1))) 0.0 in
      Array.blit !gauge_values 0 b 0 (Array.length !gauge_values);
      gauge_values := b
    end;
    !gauge_values.(g) <- v;
    Mutex.unlock reg_mutex
  end

let observe h v =
  if Atomic.get level_cell > 0 then begin
    let ds = dls () in
    let cell = hist_cell ds h in
    cell.h_count <- cell.h_count + 1;
    cell.h_sum <- cell.h_sum + v;
    if v < cell.h_min then cell.h_min <- v;
    if v > cell.h_max then cell.h_max <- v;
    let s = slot_of v in
    cell.slots.(s) <- cell.slots.(s) + 1
  end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Span ids are globally unique (one fetch-and-add), so parenting
   works across domains; 0 is reserved for "no span". *)
let next_span = Atomic.make 1

let current_span () =
  if Atomic.get level_cell > 1 then
    let ds = dls () in
    match ds.stack with [] -> null_span | f :: _ -> f.f_id
  else null_span

let with_span ?parent ?(args = []) name f =
  if Atomic.get level_cell > 1 then begin
    let ds = dls () in
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match ds.stack with [] -> null_span | fr :: _ -> fr.f_id)
    in
    let fr =
      { f_name = name;
        f_id = Atomic.fetch_and_add next_span 1;
        f_parent = parent;
        f_start_ns = Clock.now_ns ();
        f_args = List.rev args }
    in
    ds.stack <- fr :: ds.stack;
    let finish () =
      let stop = Clock.now_ns () in
      (* Pop exactly our frame; an exception inside f cannot unbalance
         the stack because every push is paired with this finally. *)
      (match ds.stack with
      | top :: rest when top == fr -> ds.stack <- rest
      | _ -> assert false);
      ds.events <-
        { name = fr.f_name;
          id = fr.f_id;
          parent = fr.f_parent;
          tid = ds.tid;
          start_ns = fr.f_start_ns;
          dur_ns = stop - fr.f_start_ns;
          args = List.rev fr.f_args }
        :: ds.events
    in
    Fun.protect ~finally:finish f
  end
  else f ()

let annotate kvs =
  if Atomic.get level_cell > 1 then begin
    let ds = dls () in
    match ds.stack with
    | [] -> ()
    | fr :: _ -> fr.f_args <- List.rev_append kvs fr.f_args
  end

let phase_ns_cell ds name =
  match Hashtbl.find_opt ds.phases name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add ds.phases name r;
      r

let with_phase name f =
  if Atomic.get level_cell > 0 then begin
    let ds = dls () in
    let cell = phase_ns_cell ds name in
    let t0 = Clock.now_ns () in
    let account () = cell := !cell + (Clock.now_ns () - t0) in
    if Atomic.get level_cell > 1 then
      with_span ("phase:" ^ name) (fun () -> Fun.protect ~finally:account f)
    else Fun.protect ~finally:account f
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let locked f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let by_name (a, _) (b, _) = compare (a : string) b

let counters () =
  locked (fun () ->
      let names = names_of counters_reg in
      let totals = Array.make counters_reg.count 0 in
      List.iter
        (fun ds ->
          Array.iteri
            (fun id v -> if id < Array.length totals then totals.(id) <- totals.(id) + v)
            ds.ctrs)
        !dstates;
      List.sort by_name
        (Array.to_list (Array.mapi (fun id name -> (name, totals.(id))) names)))

let gauges () =
  locked (fun () ->
      let names = names_of gauges_reg in
      List.sort by_name
        (Array.to_list
           (Array.mapi
              (fun id name ->
                let v =
                  if id < Array.length !gauge_values then !gauge_values.(id)
                  else 0.0
                in
                (name, v))
              names)))

let histograms () =
  locked (fun () ->
      let names = names_of histograms_reg in
      let merged =
        Array.init histograms_reg.count (fun _ -> fresh_hist_cell ())
      in
      List.iter
        (fun ds ->
          Array.iteri
            (fun id cell ->
              if id < Array.length merged && cell.h_count > 0 then begin
                let m = merged.(id) in
                m.h_count <- m.h_count + cell.h_count;
                m.h_sum <- m.h_sum + cell.h_sum;
                if cell.h_min < m.h_min then m.h_min <- cell.h_min;
                if cell.h_max > m.h_max then m.h_max <- cell.h_max;
                Array.iteri (fun s n -> m.slots.(s) <- m.slots.(s) + n) cell.slots
              end)
            ds.hists)
        !dstates;
      List.sort by_name
        (Array.to_list
           (Array.mapi
              (fun id name ->
                let m = merged.(id) in
                let buckets = ref [] in
                for s = hist_slots - 1 downto 0 do
                  if m.slots.(s) > 0 then
                    buckets := (1 lsl s, m.slots.(s)) :: !buckets
                done;
                ( name,
                  { count = m.h_count; sum = m.h_sum; min = m.h_min;
                    max = m.h_max; buckets = !buckets } ))
              names)))

(* Bucket-based percentile estimate.  The contract on an empty summary
   is pinned (0.0, no NaN, no exception) because /metrics-style
   exporters render every interned histogram, observed or not. *)
let summary_quantile s p =
  if s.count <= 0 then 0.0
  else begin
    let target = Float.ceil (p /. 100.0 *. float_of_int s.count) in
    (* NaN compares false everywhere, so [rank] lands on 1. *)
    let rank =
      if target >= float_of_int s.count then s.count
      else if target >= 1.0 then int_of_float target
      else 1
    in
    let rec go cum = function
      | [] -> float_of_int s.max
      | (le, n) :: rest ->
          let cum = cum + n in
          if cum >= rank then
            Float.max (float_of_int s.min)
              (Float.min (float_of_int le) (float_of_int s.max))
          else go cum rest
    in
    go 0 s.buckets
  end

let diff_counters ~before after =
  let prior = List.to_seq before |> Hashtbl.of_seq in
  List.filter_map
    (fun (name, v) ->
      let d = v - Option.value (Hashtbl.find_opt prior name) ~default:0 in
      if d <> 0 then Some (name, d) else None)
    after

let drain_events () =
  let evs =
    locked (fun () ->
        List.concat_map
          (fun ds ->
            let e = ds.events in
            ds.events <- [];
            List.rev e)
          !dstates)
  in
  List.sort (fun a b -> compare a.start_ns b.start_ns) evs

let drain_phases () =
  let tbl = Hashtbl.create 8 in
  locked (fun () ->
      List.iter
        (fun ds ->
          Hashtbl.iter
            (fun name ns ->
              let cur = Option.value (Hashtbl.find_opt tbl name) ~default:0 in
              Hashtbl.replace tbl name (cur + !ns))
            ds.phases;
          Hashtbl.reset ds.phases)
        !dstates);
  Hashtbl.fold (fun name ns acc -> (name, Clock.ns_to_s ns) :: acc) tbl []
  |> List.sort by_name

let reset () =
  locked (fun () ->
      List.iter
        (fun ds ->
          Array.fill ds.ctrs 0 (Array.length ds.ctrs) 0;
          Array.iter
            (fun c ->
              c.h_count <- 0;
              c.h_sum <- 0;
              c.h_min <- max_int;
              c.h_max <- min_int;
              Array.fill c.slots 0 hist_slots 0)
            ds.hists;
          Hashtbl.reset ds.phases;
          ds.events <- [])
        !dstates;
      Array.fill !gauge_values 0 (Array.length !gauge_values) 0.0)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let histogram_summary_to_json s =
  Json.Obj
    [ ("count", Json.Int s.count); ("sum", Json.Int s.sum);
      ("min", Json.Int (if s.count = 0 then 0 else s.min));
      ("max", Json.Int (if s.count = 0 then 0 else s.max));
      ("buckets",
       Json.List
         (List.map
            (fun (le, n) ->
              Json.Obj [ ("le", Json.Int le); ("n", Json.Int n) ])
            s.buckets)) ]

let metrics_to_json ?(phases = []) () =
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters ())));
      ("gauges",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (gauges ())));
      ("histograms",
       Json.Obj
         (List.map (fun (n, s) -> (n, histogram_summary_to_json s)) (histograms ())));
      ("wall_s_by_phase",
       Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) phases)) ]

let print_summary oc =
  let ctrs = counters () and gs = gauges () and hs = histograms () in
  Printf.fprintf oc "\n===== telemetry: end-of-run metrics =====\n";
  if ctrs = [] && gs = [] && hs = [] then
    Printf.fprintf oc "(no instruments recorded)\n"
  else begin
    if ctrs <> [] then begin
      Printf.fprintf oc "counters:\n";
      let w =
        List.fold_left (fun a (n, _) -> Stdlib.max a (String.length n)) 0 ctrs
      in
      List.iter
        (fun (n, v) -> Printf.fprintf oc "  %-*s %d\n" w n v)
        ctrs
    end;
    if gs <> [] then begin
      Printf.fprintf oc "gauges:\n";
      List.iter (fun (n, v) -> Printf.fprintf oc "  %s = %g\n" n v) gs
    end;
    if hs <> [] then begin
      Printf.fprintf oc "histograms (count / sum / min / max / mean):\n";
      List.iter
        (fun (n, s) ->
          if s.count = 0 then Printf.fprintf oc "  %s: empty\n" n
          else
            Printf.fprintf oc "  %s: %d / %d / %d / %d / %.2f\n" n s.count
              s.sum s.min s.max
              (float_of_int s.sum /. float_of_int s.count))
        hs
    end
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event writer                                           *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type writer = {
    sink : Json.Atomic.t;
    mutable first : bool;
    mutable tids : int list;  (* distinct, reverse first-seen order *)
    mutable live : bool;
  }

  let open_file ~path =
    Fsutil.mkdir_p (Filename.dirname path);
    let sink = Json.Atomic.create ~path in
    output_string (Json.Atomic.channel sink) "{\"traceEvents\":[\n";
    { sink; first = true; tids = []; live = true }

  let pid = 1

  let emit w json =
    let oc = Json.Atomic.channel w.sink in
    if w.first then w.first <- false else output_string oc ",\n";
    output_string oc (Json.to_string json)

  let event_to_json (e : event) =
    Json.Obj
      [ ("name", Json.String e.name); ("cat", Json.String "commx");
        ("ph", Json.String "X");
        ("ts", Json.Float (Clock.ns_to_us e.start_ns));
        ("dur", Json.Float (Clock.ns_to_us e.dur_ns));
        ("pid", Json.Int pid); ("tid", Json.Int e.tid);
        ("args",
         Json.Obj
           (( "span", Json.Int e.id )
            :: ( "parent", Json.Int e.parent )
            :: List.map (fun (k, v) -> (k, Json.String v)) e.args)) ]

  let flush w events =
    if w.live then begin
      List.iter
        (fun (e : event) ->
          if not (List.mem e.tid w.tids) then w.tids <- e.tid :: w.tids;
          emit w (event_to_json e))
        events;
      Stdlib.flush (Json.Atomic.channel w.sink)
    end

  let close w =
    if w.live then begin
      w.live <- false;
      (* Thread-name metadata makes Perfetto label the rows. *)
      List.iter
        (fun tid ->
          emit w
            (Json.Obj
               [ ("name", Json.String "thread_name"); ("ph", Json.String "M");
                 ("ts", Json.Float 0.0);
                 ("pid", Json.Int pid); ("tid", Json.Int tid);
                 ("args",
                  Json.Obj
                    [ ("name", Json.String (Printf.sprintf "domain-%d" tid)) ]) ]))
        (List.rev w.tids);
      output_string (Json.Atomic.channel w.sink) "\n]}\n";
      Json.Atomic.commit w.sink
    end

  let abort w =
    if w.live then begin
      w.live <- false;
      Json.Atomic.abort w.sink
    end
end
