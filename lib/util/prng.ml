(* SplitMix64.  State advances by the golden-ratio Weyl constant; output
   is the mixed state.  See Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

(* One counter bump per raw 64-bit draw.  Streams are pre-split per
   item before any parallelism (Pool.parallel_map_seeded), so the total
   draw count is a function of the workload alone — jobs-invariant. *)
let draws_counter = Telemetry.counter "prng.draws"

let bits64 g =
  Telemetry.incr draws_counter;
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s }

let bool g = Int64.compare (bits64 g) 0L < 0

(* Non-negative 62-bit value: avoids OCaml int overflow on 64-bit
   platforms where native ints carry 63 bits. *)
let bits62 g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling for exact uniformity. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 g in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_incl g lo hi =
  if lo > hi then invalid_arg "Prng.int_incl: lo > hi";
  lo + int g (hi - lo + 1)

let float g =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int v *. 0x1p-53

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g m n =
  if m < 0 || m > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher-Yates over an index table. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to m - 1 do
    let j = int_incl g i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 m
