(** Deterministic, splittable pseudo-random number generation.

    All randomized components of the library (workload generators,
    randomized protocols, Monte-Carlo error estimation) draw from this
    module rather than [Stdlib.Random] so that every experiment is
    reproducible from a single seed.  The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state advanced by a
    Weyl increment and finalized by a variant of the MurmurHash3
    finalizer.  It is fast, has a full 2^64 period, and admits cheap
    splitting, which we use to give independent streams to independent
    agents of a protocol. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed.
    Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future
    output; mutating one does not affect the other. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit block. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be
    positive.  Uses rejection sampling, so the distribution is exact. *)

val int_incl : t -> int -> int -> int
(** [int_incl g lo hi] is uniform in [\[lo, hi\]] ([lo <= hi]). *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)], 53 bits of precision. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g m n] draws [m] distinct values from
    [\[0, n)], in uniformly random order.  Requires [0 <= m <= n]. *)
