(* Filesystem helpers shared below Cli (Telemetry's trace writer needs
   mkdir_p too, and Cli depends on Telemetry for telemetry_level). *)

(* Race-free recursive mkdir: attempt every level unconditionally and
   treat EEXIST as success, so concurrent creators of the same fresh
   directory all win.  ENOENT means a parent is missing: create it,
   then retry this level once. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" then
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
        mkdir_p (Filename.dirname dir);
        match Unix.mkdir dir 0o755 with
        | () -> ()
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ())
