(** Shared harness plumbing: the supervision/run options both entry
    points accept, one flag parser, and filesystem helpers.

    [bench/main.exe] and [ccmx lemmas] used to each hand-roll their
    [--jobs]/[--json] handling; the resilient-runtime flags
    ([--timeout], [--retries], [--resume], [--keep-going],
    [--inject-faults]) are defined {e once} here instead — the bench
    harness parses its argv with {!parse}, and the cmdliner-based CLI
    builds the same {!opts} record from its terms, so defaults,
    validation and the environment fallback cannot drift apart. *)

type opts = {
  jobs : int;  (** worker domains, >= 1 *)
  json_dir : string option;  (** write BENCH_E*.json artifacts here *)
  timeout_s : float option;  (** per-attempt time budget (monotonic clock) *)
  retries : int;  (** extra attempts for retryable failures *)
  keep_going : bool;  (** record failures and continue the sweep *)
  resume_dir : string option;
      (** skip experiments with a valid [status: ok] artifact here *)
  fault_seed : int option;  (** enable deterministic fault injection *)
  trace_file : string option;  (** write a Chrome trace-event JSON here *)
  metrics : bool;  (** print the telemetry summary at end of run *)
  help : bool;  (** caller should print {!help_text} and exit 0 *)
}

val defaults : opts
(** [jobs = 1], everything else off. *)

val fault_seed_env_var : string
(** ["COMMX_INJECT_FAULTS"] — the environment fallback for
    [--inject-faults], honored by {!parse} and by the cmdliner path. *)

val with_env_fault_seed : opts -> opts
(** If [fault_seed] is unset, read it from {!fault_seed_env_var}
    (ignored when unset or non-integer). *)

val parse : string list -> (opts * string list, string) result
(** [parse argv] consumes the recognized [--flag value] /
    [--flag=value] / boolean [--flag] forms and returns the options
    (with the environment fallback applied) plus the remaining
    positional arguments in order.  Unknown [--flags], missing or
    malformed values, [jobs < 1], [retries < 0] and [timeout <= 0]
    are reported as [Error message]. *)

val usage : string
(** One-line synopsis of the shared flags, for usage messages. *)

val help_text : string
(** Multi-line flag reference: every shared flag with its default.
    Printed by both entry points on [--help]. *)

val telemetry_level : opts -> Telemetry.level
(** The {!Telemetry.level} the options imply: [Trace] when
    [trace_file] is set, otherwise [Metrics] when [metrics] or
    [json_dir] is set (schema-v3 artifacts embed a metrics object),
    otherwise [Off].  Both entry points use this so flags cannot mean
    different levels in different binaries. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents.  Free of the
    check-then-create race: every level attempts [Unix.mkdir]
    unconditionally and treats [EEXIST] as success, so two concurrent
    runs creating the same fresh artifact directory both succeed.
    @raise Unix.Unix_error on real failures (permissions, missing
    filesystem, a non-directory in the path). *)
