external now_ns : unit -> int = "commx_clock_monotonic_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
let ns_to_s ns = float_of_int ns *. 1e-9

(* [Unix.sleepf] is a single nanosleep: a signal delivered mid-sleep
   (EINTR) ends it early — either silently (the libc call is not
   restarted) or as a [Unix_error (EINTR, _, _)], depending on the
   runtime.  Both truncate the pause, so every sleep here re-sleeps
   against an absolute monotonic deadline until it is actually
   reached.  Signal handlers still run (the runtime processes them
   when nanosleep returns); only the pause duration is protected. *)
let sleep_until deadline =
  let rec go () =
    let remaining = deadline -. now_s () in
    if remaining > 0.0 then begin
      (try Unix.sleepf remaining
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let sleepf s = if s > 0.0 then sleep_until (now_s () +. s)
