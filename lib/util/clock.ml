external now_ns : unit -> int = "commx_clock_monotonic_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
let ns_to_s ns = float_of_int ns *. 1e-9
