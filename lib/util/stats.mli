(** Small statistics toolkit for the experiment harness.

    Everything operates on [float array] samples.  Used by the benches
    to report means, deviations, confidence intervals, and least-squares
    fits of measured protocol cost against predicted growth laws (for
    example bits against [k * n * n] in experiment E1). *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** {e Sample} (unbiased, Bessel-corrected) variance: sum of squared
    deviations over [n - 1], not the population [n] denominator — the
    benches treat their repetitions as a sample of a noisy measurement
    process.  [n = 1] returns [0.0] (a singleton shows no dispersion;
    the [n - 1] formula would be 0/0).
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float

val min_max : float array -> float * float

val median : float array -> float
(** Median, defined as [percentile xs 50.0]: odd lengths give the middle
    element, even lengths the midpoint of the two middle elements.  Does
    not mutate. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]]: linear interpolation
    between closest ranks of the sorted sample (rank
    [(n - 1) * p / 100], the numpy default), so [percentile xs 0] and
    [percentile xs 100] are the extremes and [percentile xs 50] equals
    {!median} on both parities.  Does not mutate.
    @raise Invalid_argument on an empty array, [p] outside the range,
    or a NaN element ([Float.compare] would rank NaN above every real
    latency and silently poison the tail percentiles). *)

val ci95_halfwidth : float array -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean: [1.96 * stddev / sqrt n]. *)

val linear_fit : (float * float) array -> float * float * float
(** [linear_fit pts] returns [(slope, intercept, r2)] of the
    least-squares line through the [(x, y)] points.
    @raise Invalid_argument with fewer than two points. *)

val proportional_fit : (float * float) array -> float * float
(** [proportional_fit pts] fits [y = c * x] (no intercept) and returns
    [(c, r2)], where [r2] is computed against the centered total sum of
    squares.  Used to check "cost = c * predictor" growth laws. *)

val log_log_slope : (float * float) array -> float
(** Slope of the least-squares line through [(log x, log y)]: the
    empirical polynomial degree of a power-law relationship.  Points
    with non-positive coordinates are rejected. *)
