(** Small statistics toolkit for the experiment harness.

    Everything operates on [float array] samples.  Used by the benches
    to report means, deviations, confidence intervals, and least-squares
    fits of measured protocol cost against predicted growth laws (for
    example bits against [k * n * n] in experiment E1). *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float

val min_max : float array -> float * float

val median : float array -> float
(** Median (average of middle two for even lengths).  Does not mutate. *)

val ci95_halfwidth : float array -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean: [1.96 * stddev / sqrt n]. *)

val linear_fit : (float * float) array -> float * float * float
(** [linear_fit pts] returns [(slope, intercept, r2)] of the
    least-squares line through the [(x, y)] points.
    @raise Invalid_argument with fewer than two points. *)

val proportional_fit : (float * float) array -> float * float
(** [proportional_fit pts] fits [y = c * x] (no intercept) and returns
    [(c, r2)], where [r2] is computed against the centered total sum of
    squares.  Used to check "cost = c * predictor" growth laws. *)

val log_log_slope : (float * float) array -> float
(** Slope of the least-squares line through [(log x, log y)]: the
    empirical polynomial degree of a power-law relationship.  Points
    with non-positive coordinates are rejected. *)
