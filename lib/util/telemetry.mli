(** Low-overhead tracing and metrics for the experiment runtime.

    The quantity this reproduction is {e about} — bits exchanged per
    protocol round — is computed exactly by the protocol channel, and
    the runtime already knows where wall-clock goes (pool batches,
    supervisor attempts, experiment phases).  This module makes both
    observable: span-based tracing on the monotonic {!Clock}, plus
    counters / gauges / histograms for the domain's first-class
    quantities, with two exporters — Chrome trace-event JSON (open in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) and a
    human-readable end-of-run summary.

    {2 Design constraints}

    - {b Per-domain, lock-free hot path.}  Every domain accumulates
      into its own cells ([Domain.DLS]); the only global
      synchronization is a mutex taken once per domain at first use
      (registration) and once per instrument at interning.  {!Pool}
      workers never contend on a shared sink.
    - {b Nil sink when disabled.}  At {!level} [Off] every recording
      entry point is a single load-and-branch — no allocation, no DLS
      lookup.  Enable with [--trace] / [--metrics]; the default costs
      nothing measurable.
    - {b Schedule-invariant counters.}  Counters are summed integer
      deltas merged across domains, and every instrumented site is
      keyed by data (item index, site name), not by scheduling — so
      counter totals are bit-identical at any [--jobs], the same
      convention {!Faults} uses for its decision sites.  Span
      durations and gauges are wall-clock-ish and exempt.

    {2 Levels}

    [Off] records nothing.  [Metrics] records counters, gauges,
    histograms and phase durations.  [Trace] additionally records span
    events for the Chrome exporter.  Set the level before spawning
    worker domains (the flag is read with a plain atomic load; domain
    spawn publishes it). *)

type level = Off | Metrics | Trace

val set_level : level -> unit
(** Set the global recording level.  Call from the main domain before
    spawning pools. *)

val level : unit -> level

val metrics_on : unit -> bool
(** [true] at [Metrics] or [Trace]. *)

val tracing_on : unit -> bool
(** [true] at [Trace] only. *)

(** {1 Instruments}

    Instruments are interned by name: [counter "x"] twice returns the
    same instrument.  Intern at module-init or batch-setup time, not
    per event. *)

type counter

val counter : string -> counter
val add : counter -> int -> unit
(** Add a (possibly negative) integer delta.  No-op below [Metrics]. *)

val incr : counter -> unit

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
(** Last-write-wins across the whole process; use only from one domain
    at a time.  No-op below [Metrics]. *)

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record one integer observation (bits in a message, items in a
    batch).  Aggregated as count / sum / min / max plus power-of-two
    buckets — all order-invariant, so merged histograms are identical
    at any job count.  No-op below [Metrics]. *)

(** {1 Spans} *)

type span_id = private int

val null_span : span_id

val current_span : unit -> span_id
(** The innermost open span on {e this} domain, or {!null_span}.
    Capture it before fanning work out to parent child spans across
    domains. *)

val with_span :
  ?parent:span_id -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  Below [Trace] it is
    exactly [f ()].  [?parent] overrides the implicit parent (this
    domain's {!current_span}) — pass the captured id when the span
    logically nests under a span opened on another domain.  The span
    is closed (duration recorded) whether [f] returns or raises. *)

val annotate : (string * string) list -> unit
(** Append key/value args to this domain's innermost open span; no-op
    when tracing is off or no span is open.  Use for facts only known
    at exit (an outcome, a retry decision). *)

val with_phase : string -> (unit -> 'a) -> 'a
(** Phase accounting for experiment stages (generate / enumerate /
    verify).  At [Metrics] and above, accumulates the monotonic
    duration of [f] into a per-domain table keyed by [name] (drained
    with {!drain_phases}); at [Trace] it additionally opens a span
    named ["phase:" ^ name].  Below [Metrics] it is exactly [f ()]. *)

(** {1 Snapshots and draining}

    Reads merge every registered domain's cells.  Call at quiescent
    points (between pool batches / experiments); concurrent recording
    on other domains would be missed, not corrupted. *)

type histogram_summary = {
  count : int;
  sum : int;
  min : int;  (** meaningless when [count = 0] *)
  max : int;
  buckets : (int * int) list;
      (** [(ceil_pow2, n)]: observations [v] with [v <= ceil_pow2],
          greater than the previous bucket bound; sorted ascending *)
}

val summary_quantile : histogram_summary -> float -> float
(** [summary_quantile s p] estimates the [p]-th percentile
    ([p] in [[0, 100]], the {!Stats.percentile} convention) from the
    power-of-two buckets: the upper bound of the bucket holding the
    target rank, clamped into [[min, max]] so the estimate never
    exceeds an actually-observed value.  An {b empty} summary returns
    [0.0] — never NaN, never an exception — matching the pinned
    [min]/[max] of [0] that {!metrics_to_json} reports for empty
    histograms. *)

val counters : unit -> (string * int) list
(** Merged counter totals, sorted by name.  Zero-valued counters are
    included once interned. *)

val gauges : unit -> (string * float) list

val histograms : unit -> (string * histogram_summary) list

val diff_counters :
  before:(string * int) list -> (string * int) list -> (string * int) list
(** [diff_counters ~before after] subtracts, keeping counters whose
    delta is nonzero — the per-experiment view between two
    {!counters} snapshots. *)

type event = {
  name : string;
  id : span_id;
  parent : span_id;
  tid : int;  (** numeric domain id the span ran on *)
  start_ns : int;  (** monotonic, {!Clock} epoch *)
  dur_ns : int;
  args : (string * string) list;
}

val drain_events : unit -> event list
(** Remove and return all buffered span events, across domains, sorted
    by start time.  Called by the harness after each experiment so the
    trace file can be written incrementally. *)

val drain_phases : unit -> (string * float) list
(** Remove and return accumulated phase durations (seconds), merged
    across domains, sorted by name. *)

val reset : unit -> unit
(** Zero every cell (counters, gauges, histograms, phases, events) on
    every registered domain.  Interned instruments stay valid.  For
    tests and for isolating consecutive runs in one process. *)

(** {1 Exporters} *)

val metrics_to_json : ?phases:(string * float) list -> unit -> Json.t
(** Current merged metrics as a JSON object:
    [{ "counters": {..}, "gauges": {..}, "histograms": {..},
       "wall_s_by_phase": {..} }].  Embedded in schema-v3 artifacts. *)

val print_summary : out_channel -> unit
(** Human-readable end-of-run dump of every interned instrument (the
    [--metrics] flag). *)

(** Incremental Chrome trace-event writer.

    Events stream into a uniquely-named sibling temp file as the run
    progresses ({!flush} after each experiment keeps the data on disk
    across a crash); {!close} completes the JSON and atomically
    renames it into place, while {!abort} — or {!close} racing an
    earlier abort — removes the temp file, so no half-written
    [*.tmp] survives a failed run.  Cleanup is shared with
    {!Json.to_file} via {!Json.Atomic}. *)
module Trace : sig
  type writer

  val open_file : path:string -> writer
  (** Create the temp sibling and write the trace-event preamble.
      Creates missing parent directories. *)

  val flush : writer -> event list -> unit
  (** Append events (as [ph = "X"] complete events, microsecond
      timestamps, span id/parent in [args]) and flush the channel. *)

  val close : writer -> unit
  (** Emit thread-name metadata, terminate the JSON document and
      rename it to [path].  Idempotent. *)

  val abort : writer -> unit
  (** Discard: close and delete the temp file.  Idempotent. *)
end
