(** Fixed-length mutable bit vectors.

    Used throughout the communication layer to represent transcripts,
    input halves under a bit partition, and rows of truth matrices.
    Bits are indexed from 0; storage is packed 62 bits per native
    word. *)

type t

val bits_per_word : int
(** Bits stored per native word (62: all word-level operations stay in
    OCaml's tagged-integer range). *)

val create : int -> t
(** [create n] is an all-zero vector of length [n]. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val copy : t -> t

val equal : t -> t -> bool
(** Structural equality of length and contents. *)

val compare : t -> t -> int
(** Total order compatible with [equal] (lexicographic on words). *)

val hash : t -> int

val popcount : t -> int
(** Number of set bits. *)

val popcount_int : int -> int
(** Branch-free popcount of a single non-negative native int — the
    word-level kernel behind {!popcount}, exposed for packed-mask
    search loops (the exact-CC engine). *)

val xor_into : t -> t -> unit
(** [xor_into dst src] sets [dst <- dst lxor src].  Lengths must
    match. *)

val and_into : t -> t -> unit
val or_into : t -> t -> unit

val is_zero : t -> bool

val fold_set_bits : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over indices of set bits, ascending. *)

val of_int : int -> int -> t
(** [of_int n v] is the length-[n] vector of the low [n] bits of [v]
    (bit [i] of the vector = bit [i] of [v]).  Requires [0 <= n <= 62]. *)

val to_int : t -> int
(** Inverse of [of_int] for lengths at most 62.
    @raise Invalid_argument when the vector is longer than 62 bits. *)

val random : Prng.t -> int -> t
(** Uniformly random vector of the given length. *)

val append : t -> t -> t

val sub : t -> int -> int -> t
(** [sub v pos len] extracts a contiguous slice. *)

val to_string : t -> string
(** Bits as ['0']/['1'] characters, index 0 first. *)

val of_string : string -> t
(** Inverse of [to_string].
    @raise Invalid_argument on characters other than '0'/'1'. *)
