(* Open-addressing int->int transposition table: linear probing from a
   multiplicative hash, power-of-two capacity, bounded probe window.

   Both [set] and [find] probe the same window of [probe_window]
   consecutive slots starting at the key's home slot, so an entry is
   findable iff [set] placed it — and [set] always places it, evicting
   the home slot when the window is saturated.  Because entries are
   never deleted (only replaced), probe chains never break and a
   bounded scan is exact, not heuristic: a key outside its window was
   necessarily evicted. *)

type stats = { hits : int; misses : int; evictions : int; stores : int }

type t = {
  mutable keys : int array; (* -1 = empty *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1 *)
  mutable shift : int; (* 62 - log2 capacity: home slot = top bits *)
  mutable size : int;
  budget_slots : int; (* max capacity in slots; max_int = unbounded *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
}

let probe_window = 16

(* SplitMix64's odd multiplier truncated to OCaml's 63-bit int range.
   Fibonacci hashing: the home slot is the TOP log2(capacity) bits of
   [key * mult mod 2^62] — every key bit influences the high product
   bits, whereas the low bits would ignore the key's high bits
   entirely (packed search keys put the column mask up there). *)
let mult = 0x2545F4914F6CDD1D

let home t key = ((key * mult) land max_int) lsr t.shift

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?budget_entries ?(initial_bits = 12) () =
  if initial_bits < 1 || initial_bits > 40 then
    invalid_arg "Txtable.create: initial_bits out of range";
  (match budget_entries with
  | Some b when b < 1 -> invalid_arg "Txtable.create: budget_entries < 1"
  | _ -> ());
  let budget_slots =
    match budget_entries with
    | None -> max_int
    | Some b -> max (1 lsl initial_bits) (ceil_pow2 b)
  in
  let cap = 1 lsl initial_bits in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap 0;
    mask = cap - 1;
    shift = 62 - initial_bits;
    size = 0;
    budget_slots;
    hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
  }

let length t = t.size
let capacity t = t.mask + 1

let stats t : stats =
  { hits = t.hits; misses = t.misses; evictions = t.evictions;
    stores = t.stores }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.stores <- 0

let find t key =
  if key < 0 then invalid_arg "Txtable.find: negative key";
  let mask = t.mask in
  let keys = t.keys in
  let i0 = home t key in
  let rec probe d =
    if d >= probe_window then begin
      t.misses <- t.misses + 1;
      -1
    end
    else
      let i = (i0 + d) land mask in
      let k = Array.unsafe_get keys i in
      if k = key then begin
        t.hits <- t.hits + 1;
        Array.unsafe_get t.vals i
      end
      else if k = -1 then begin
        t.misses <- t.misses + 1;
        -1
      end
      else probe (d + 1)
  in
  probe 0

(* Raw placement used by both [set] and rehashing: returns [true] when
   a fresh slot was consumed (size grows), [false] on overwrite or
   eviction.  [count_evict] is off during rehash — moving entries to a
   larger table evicts nothing. *)
let place t ~count_evict key v =
  let mask = t.mask in
  let keys = t.keys in
  let i0 = home t key in
  let rec probe d =
    if d >= probe_window then begin
      (* Window saturated with other live keys: replace the home slot. *)
      if count_evict then t.evictions <- t.evictions + 1;
      Array.unsafe_set keys i0 key;
      Array.unsafe_set t.vals i0 v;
      false
    end
    else
      let i = (i0 + d) land mask in
      let k = Array.unsafe_get keys i in
      if k = key then begin
        Array.unsafe_set t.vals i v;
        false
      end
      else if k = -1 then begin
        Array.unsafe_set keys i key;
        Array.unsafe_set t.vals i v;
        true
      end
      else probe (d + 1)
  in
  probe 0

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.shift <- t.shift - 1;
  t.size <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then
        if place t ~count_evict:false k old_vals.(i) then t.size <- t.size + 1)
    old_keys

let set t key v =
  if key < 0 then invalid_arg "Txtable.set: negative key";
  if v < 0 then invalid_arg "Txtable.set: negative value";
  if 2 * (t.size + 1) > t.mask + 1 && 2 * (t.mask + 1) <= t.budget_slots then
    grow t;
  t.stores <- t.stores + 1;
  if place t ~count_evict:true key v then t.size <- t.size + 1

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.size <- 0;
  reset_stats t

let iter t f =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Array.unsafe_get vals i)
  done

let budget_entries t = if t.budget_slots = max_int then None else Some t.budget_slots

(* {2 Versioned snapshot}

   The serve daemon persists its warm transposition tables across
   restarts.  The format is explicit about its version and its budget
   semantics so a stale or corrupt file is rejected with a clear error
   instead of silently poisoning a fresh table with garbage keys. *)

let snapshot_version = 1

let log2_exact n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 1

let save t =
  let entries = ref [] in
  (* Slot order (descending index, reversed by the fold below) keeps
     the serialization deterministic for a given table state. *)
  iter t (fun k v -> entries := Json.List [ Json.Int k; Json.Int v ] :: !entries);
  Json.Obj
    [
      ("format", Json.String "txtable");
      ("version", Json.Int snapshot_version);
      ("capacity_bits", Json.Int (log2_exact (t.mask + 1)));
      ( "budget_slots",
        if t.budget_slots = max_int then Json.Null else Json.Int t.budget_slots );
      ("entries", Json.List (List.rev !entries));
    ]

let load_error fmt = Printf.ksprintf (fun s -> failwith ("Txtable.load: " ^ s)) fmt

let load doc =
  let obj =
    match doc with
    | Json.Obj _ -> doc
    | _ -> load_error "snapshot is not a JSON object"
  in
  (match Json.member "format" obj with
  | Some (Json.String "txtable") -> ()
  | Some (Json.String other) -> load_error "format %S is not a txtable snapshot" other
  | _ -> load_error "missing \"format\" marker — not a txtable snapshot");
  (match Json.member "version" obj with
  | Some (Json.Int v) when v = snapshot_version -> ()
  | Some (Json.Int v) ->
      load_error "unsupported snapshot version %d (this build reads version %d)"
        v snapshot_version
  | _ -> load_error "missing or non-integer \"version\"");
  let capacity_bits =
    match Json.member "capacity_bits" obj with
    | Some (Json.Int b) when b >= 1 && b <= 40 -> b
    | Some (Json.Int b) -> load_error "capacity_bits %d out of range [1, 40]" b
    | _ -> load_error "missing or non-integer \"capacity_bits\""
  in
  let budget =
    match Json.member "budget_slots" obj with
    | Some Json.Null | None -> None
    | Some (Json.Int b) when b >= 1 -> Some b
    | Some (Json.Int b) -> load_error "budget_slots %d is not positive" b
    | Some _ -> load_error "non-integer \"budget_slots\""
  in
  let entries =
    match Json.member "entries" obj with
    | Some (Json.List l) -> l
    | _ -> load_error "missing or non-list \"entries\""
  in
  let t = create ?budget_entries:budget ~initial_bits:capacity_bits () in
  List.iteri
    (fun i e ->
      match e with
      | Json.List [ Json.Int k; Json.Int v ] ->
          if k < 0 then load_error "entry %d has negative key %d" i k;
          if v < 0 then load_error "entry %d has negative value %d" i v;
          set t k v
      | _ -> load_error "entry %d is not a [key, value] integer pair" i)
    entries;
  (* Stats describe runtime traffic, not persisted state: a freshly
     loaded table starts with clean counters. *)
  reset_stats t;
  t
