(* Open-addressing int->int transposition table: linear probing from a
   multiplicative hash, power-of-two capacity, bounded probe window.

   Both [set] and [find] probe the same window of [probe_window]
   consecutive slots starting at the key's home slot, so an entry is
   findable iff [set] placed it — and [set] always places it, evicting
   the home slot when the window is saturated.  Because entries are
   never deleted (only replaced), probe chains never break and a
   bounded scan is exact, not heuristic: a key outside its window was
   necessarily evicted. *)

type stats = { hits : int; misses : int; evictions : int; stores : int }

type t = {
  mutable keys : int array; (* -1 = empty *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1 *)
  mutable shift : int; (* 62 - log2 capacity: home slot = top bits *)
  mutable size : int;
  budget_slots : int; (* max capacity in slots; max_int = unbounded *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
}

let probe_window = 16

(* SplitMix64's odd multiplier truncated to OCaml's 63-bit int range.
   Fibonacci hashing: the home slot is the TOP log2(capacity) bits of
   [key * mult mod 2^62] — every key bit influences the high product
   bits, whereas the low bits would ignore the key's high bits
   entirely (packed search keys put the column mask up there). *)
let mult = 0x2545F4914F6CDD1D

let home t key = ((key * mult) land max_int) lsr t.shift

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?budget_entries ?(initial_bits = 12) () =
  if initial_bits < 1 || initial_bits > 40 then
    invalid_arg "Txtable.create: initial_bits out of range";
  (match budget_entries with
  | Some b when b < 1 -> invalid_arg "Txtable.create: budget_entries < 1"
  | _ -> ());
  let budget_slots =
    match budget_entries with
    | None -> max_int
    | Some b -> max (1 lsl initial_bits) (ceil_pow2 b)
  in
  let cap = 1 lsl initial_bits in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap 0;
    mask = cap - 1;
    shift = 62 - initial_bits;
    size = 0;
    budget_slots;
    hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
  }

let length t = t.size
let capacity t = t.mask + 1

let stats t : stats =
  { hits = t.hits; misses = t.misses; evictions = t.evictions;
    stores = t.stores }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.stores <- 0

let find t key =
  if key < 0 then invalid_arg "Txtable.find: negative key";
  let mask = t.mask in
  let keys = t.keys in
  let i0 = home t key in
  let rec probe d =
    if d >= probe_window then begin
      t.misses <- t.misses + 1;
      -1
    end
    else
      let i = (i0 + d) land mask in
      let k = Array.unsafe_get keys i in
      if k = key then begin
        t.hits <- t.hits + 1;
        Array.unsafe_get t.vals i
      end
      else if k = -1 then begin
        t.misses <- t.misses + 1;
        -1
      end
      else probe (d + 1)
  in
  probe 0

(* Raw placement used by both [set] and rehashing: returns [true] when
   a fresh slot was consumed (size grows), [false] on overwrite or
   eviction.  [count_evict] is off during rehash — moving entries to a
   larger table evicts nothing. *)
let place t ~count_evict key v =
  let mask = t.mask in
  let keys = t.keys in
  let i0 = home t key in
  let rec probe d =
    if d >= probe_window then begin
      (* Window saturated with other live keys: replace the home slot. *)
      if count_evict then t.evictions <- t.evictions + 1;
      Array.unsafe_set keys i0 key;
      Array.unsafe_set t.vals i0 v;
      false
    end
    else
      let i = (i0 + d) land mask in
      let k = Array.unsafe_get keys i in
      if k = key then begin
        Array.unsafe_set t.vals i v;
        false
      end
      else if k = -1 then begin
        Array.unsafe_set keys i key;
        Array.unsafe_set t.vals i v;
        true
      end
      else probe (d + 1)
  in
  probe 0

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.shift <- t.shift - 1;
  t.size <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then
        if place t ~count_evict:false k old_vals.(i) then t.size <- t.size + 1)
    old_keys

let set t key v =
  if key < 0 then invalid_arg "Txtable.set: negative key";
  if v < 0 then invalid_arg "Txtable.set: negative value";
  if 2 * (t.size + 1) > t.mask + 1 && 2 * (t.mask + 1) <= t.budget_slots then
    grow t;
  t.stores <- t.stores + 1;
  if place t ~count_evict:true key v then t.size <- t.size + 1

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.size <- 0;
  reset_stats t
