(* Shared harness options, flag parsing, and filesystem helpers. *)

type opts = {
  jobs : int;
  json_dir : string option;
  timeout_s : float option;
  retries : int;
  keep_going : bool;
  resume_dir : string option;
  fault_seed : int option;
}

let defaults =
  {
    jobs = 1;
    json_dir = None;
    timeout_s = None;
    retries = 0;
    keep_going = false;
    resume_dir = None;
    fault_seed = None;
  }

let fault_seed_env_var = "COMMX_INJECT_FAULTS"

let with_env_fault_seed opts =
  match opts.fault_seed with
  | Some _ -> opts
  | None -> (
      match Sys.getenv_opt fault_seed_env_var with
      | Some v -> { opts with fault_seed = int_of_string_opt v }
      | None -> opts)

let usage =
  "[--jobs N] [--json DIR] [--timeout SECONDS] [--retries N] \
   [--keep-going] [--resume DIR] [--inject-faults SEED]"

(* One entry per value-taking flag: name, validating setter. *)
let parse argv =
  let opts = ref defaults in
  let positional = ref [] in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let set_valued key v =
    match key with
    | "--jobs" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Stdlib.Ok { !opts with jobs = n }
        | _ -> err "--jobs expects a positive integer, got %s" v)
    | "--json" -> Stdlib.Ok { !opts with json_dir = Some v }
    | "--timeout" -> (
        match float_of_string_opt v with
        | Some s when s > 0.0 -> Stdlib.Ok { !opts with timeout_s = Some s }
        | _ -> err "--timeout expects a positive number of seconds, got %s" v)
    | "--retries" -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Stdlib.Ok { !opts with retries = n }
        | _ -> err "--retries expects a non-negative integer, got %s" v)
    | "--resume" -> Stdlib.Ok { !opts with resume_dir = Some v }
    | "--inject-faults" -> (
        match int_of_string_opt v with
        | Some s -> Stdlib.Ok { !opts with fault_seed = Some s }
        | None -> err "--inject-faults expects an integer seed, got %s" v)
    | _ -> err "unknown flag: %s" key
  in
  let valued key = List.mem key [ "--jobs"; "--json"; "--timeout"; "--retries"; "--resume"; "--inject-faults" ] in
  (* A "--"-prefixed token is never a flag's value: `--json --keep-going`
     is a missing value (fail loudly), not json_dir = "--keep-going". *)
  let looks_like_flag v = String.length v >= 2 && String.sub v 0 2 = "--" in
  let rec go = function
    | [] ->
        Stdlib.Ok (with_env_fault_seed !opts, List.rev !positional)
    | "--keep-going" :: rest ->
        opts := { !opts with keep_going = true };
        go rest
    | key :: v :: rest when valued key && not (looks_like_flag v) -> (
        match set_valued key v with
        | Stdlib.Ok o ->
            opts := o;
            go rest
        | Error _ as e -> e)
    | key :: _ when valued key -> err "missing value for flag %s" key
    | arg :: rest -> (
        match String.index_opt arg '=' with
        | Some i when String.length arg > 2 && String.sub arg 0 2 = "--" -> (
            let key = String.sub arg 0 i in
            let v = String.sub arg (i + 1) (String.length arg - i - 1) in
            if key = "--keep-going" then err "--keep-going takes no value"
            else
              match set_valued key v with
              | Stdlib.Ok o ->
                  opts := o;
                  go rest
              | Error _ as e -> e)
        | _ ->
            if String.length arg > 1 && arg.[0] = '-' then
              err "unknown flag: %s" arg
            else begin
              positional := arg :: !positional;
              go rest
            end)
  in
  go argv

(* Race-free recursive mkdir: attempt every level unconditionally and
   treat EEXIST as success, so concurrent creators of the same fresh
   directory all win.  ENOENT means a parent is missing: create it,
   then retry this level once. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" then
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
        mkdir_p (Filename.dirname dir);
        match Unix.mkdir dir 0o755 with
        | () -> ()
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ())
