(* Shared harness options, flag parsing, and filesystem helpers. *)

type opts = {
  jobs : int;
  json_dir : string option;
  timeout_s : float option;
  retries : int;
  keep_going : bool;
  resume_dir : string option;
  fault_seed : int option;
  trace_file : string option;
  metrics : bool;
  help : bool;
}

let defaults =
  {
    jobs = 1;
    json_dir = None;
    timeout_s = None;
    retries = 0;
    keep_going = false;
    resume_dir = None;
    fault_seed = None;
    trace_file = None;
    metrics = false;
    help = false;
  }

let fault_seed_env_var = "COMMX_INJECT_FAULTS"

let with_env_fault_seed opts =
  match opts.fault_seed with
  | Some _ -> opts
  | None -> (
      match Sys.getenv_opt fault_seed_env_var with
      | Some v -> { opts with fault_seed = int_of_string_opt v }
      | None -> opts)

let usage =
  "[--jobs N] [--json DIR] [--timeout SECONDS] [--retries N] \
   [--keep-going] [--resume DIR] [--inject-faults SEED] \
   [--trace FILE] [--metrics] [--help]"

(* Every flag, with its default, one per line — keep in sync with
   [opts]/[parse]; test_telemetry checks each flag name appears. *)
let help_text =
  String.concat "\n"
    [
      "Options:";
      "  --jobs N             worker domains (default: 1)";
      "  --json DIR           write BENCH_*.json artifacts to DIR (default: off)";
      "  --timeout SECONDS    per-attempt time budget (default: none)";
      "  --retries N          extra attempts for retryable failures (default: 0)";
      "  --keep-going         record failures and continue the sweep (default: off)";
      "  --resume DIR         skip experiments with a valid ok artifact in DIR \
       (default: off)";
      "  --inject-faults SEED deterministic fault injection (default: off; env \
       " ^ fault_seed_env_var ^ ")";
      "  --trace FILE         write a Chrome trace-event JSON to FILE (default: \
       off)";
      "  --metrics            print a metrics summary at end of run (default: \
       off)";
      "  --help               show this help";
    ]

(* Telemetry level implied by the options: tracing subsumes metrics;
   artifacts ([--json]) embed a metrics object, so they need counting
   on even without an explicit [--metrics]. *)
let telemetry_level opts =
  if opts.trace_file <> None then Telemetry.Trace
  else if opts.metrics || opts.json_dir <> None then Telemetry.Metrics
  else Telemetry.Off

(* One entry per value-taking flag: name, validating setter. *)
let parse argv =
  let opts = ref defaults in
  let positional = ref [] in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let set_valued key v =
    match key with
    | "--jobs" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Stdlib.Ok { !opts with jobs = n }
        | _ -> err "--jobs expects a positive integer, got %s" v)
    | "--json" -> Stdlib.Ok { !opts with json_dir = Some v }
    | "--timeout" -> (
        match float_of_string_opt v with
        | Some s when s > 0.0 -> Stdlib.Ok { !opts with timeout_s = Some s }
        | _ -> err "--timeout expects a positive number of seconds, got %s" v)
    | "--retries" -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Stdlib.Ok { !opts with retries = n }
        | _ -> err "--retries expects a non-negative integer, got %s" v)
    | "--resume" -> Stdlib.Ok { !opts with resume_dir = Some v }
    | "--trace" -> Stdlib.Ok { !opts with trace_file = Some v }
    | "--inject-faults" -> (
        match int_of_string_opt v with
        | Some s -> Stdlib.Ok { !opts with fault_seed = Some s }
        | None -> err "--inject-faults expects an integer seed, got %s" v)
    | _ -> err "unknown flag: %s" key
  in
  let valued key = List.mem key [ "--jobs"; "--json"; "--timeout"; "--retries"; "--resume"; "--inject-faults"; "--trace" ] in
  (* A "--"-prefixed token is never a flag's value: `--json --keep-going`
     is a missing value (fail loudly), not json_dir = "--keep-going". *)
  let looks_like_flag v = String.length v >= 2 && String.sub v 0 2 = "--" in
  let rec go = function
    | [] ->
        Stdlib.Ok (with_env_fault_seed !opts, List.rev !positional)
    | "--keep-going" :: rest ->
        opts := { !opts with keep_going = true };
        go rest
    | "--metrics" :: rest ->
        opts := { !opts with metrics = true };
        go rest
    | "--help" :: rest ->
        opts := { !opts with help = true };
        go rest
    | key :: v :: rest when valued key && not (looks_like_flag v) -> (
        match set_valued key v with
        | Stdlib.Ok o ->
            opts := o;
            go rest
        | Error _ as e -> e)
    | key :: _ when valued key -> err "missing value for flag %s" key
    | arg :: rest -> (
        match String.index_opt arg '=' with
        | Some i when String.length arg > 2 && String.sub arg 0 2 = "--" -> (
            let key = String.sub arg 0 i in
            let v = String.sub arg (i + 1) (String.length arg - i - 1) in
            if List.mem key [ "--keep-going"; "--metrics"; "--help" ] then
              err "%s takes no value" key
            else
              match set_valued key v with
              | Stdlib.Ok o ->
                  opts := o;
                  go rest
              | Error _ as e -> e)
        | _ ->
            if String.length arg > 1 && arg.[0] = '-' then
              err "unknown flag: %s" arg
            else begin
              positional := arg :: !positional;
              go rest
            end)
  in
  go argv

let mkdir_p = Fsutil.mkdir_p
