(** SIGPIPE and broken-pipe hygiene for executable entry points.

    A process writing to a pipe whose reader has exited receives
    SIGPIPE, which by default kills it — so [ccmx bench ... | head]
    died with a fatal signal instead of a clean exit, and a serve
    client disconnecting mid-reply would have taken the whole daemon
    down.  The fix has two halves: ignore the signal process-wide (the
    failing write then returns EPIPE instead), and decide per stream
    what EPIPE means — for a CLI writing reports to stdout it means
    "nobody is listening, stop quietly"; for the daemon it means "this
    one client is gone". *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to ignored for the whole process, so writes to closed
    pipes and sockets fail with EPIPE instead of killing the process.
    Call first thing in every [main].  A no-op on platforms without
    the signal. *)

val is_broken_pipe : exn -> bool
(** Recognize the broken-pipe condition in both the shapes OCaml
    reports it: [Unix_error (EPIPE | ECONNRESET, _, _)] from syscalls,
    and [Sys_error] carrying the ["Broken pipe"] strerror text from
    buffered-channel operations. *)

val silence_stdout : unit -> unit
(** Redirect fd 1 to [/dev/null].  After stdout's reader is gone this
    makes the remaining shutdown writes (at_exit channel flushes)
    succeed harmlessly instead of raising again. *)

val run_main : (unit -> 'a) -> 'a
(** [run_main f] is the standard executable prologue:
    {!ignore_sigpipe}, then [f ()]; if [f] dies of a broken pipe on
    its output stream, the process {!silence_stdout}s and exits 0 — a
    truncated consumer ([| head]) is normal pipeline behavior, not an
    error. *)
