(* Supervised execution: classify each attempt, enforce a per-attempt
   deadline through the pool's ambient cancel token, retry transient
   failures with exponential backoff. *)

type failure = { exn : string; backtrace : string }

type 'a outcome = Ok of 'a | Failed of failure | Timed_out of float

type config = {
  timeout_s : float option;
  retries : int;
  backoff_s : float;
  jitter : float;
  jitter_seed : int;
  retryable : exn -> bool;
}

let default_config =
  {
    timeout_s = None;
    retries = 0;
    backoff_s = 0.1;
    jitter = 0.0;
    jitter_seed = 0;
    retryable = (function Faults.Injected _ -> true | _ -> false);
  }

let config ?timeout_s ?(retries = default_config.retries)
    ?(backoff_s = default_config.backoff_s) ?(jitter = default_config.jitter)
    ?(jitter_seed = default_config.jitter_seed)
    ?(retryable = default_config.retryable) () =
  (match timeout_s with
  | Some s when s <= 0.0 -> invalid_arg "Supervisor.config: timeout_s must be > 0"
  | Some _ | None -> ());
  if retries < 0 then invalid_arg "Supervisor.config: retries must be >= 0";
  if not (jitter >= 0.0 && jitter <= 1.0) then
    invalid_arg "Supervisor.config: jitter must be in [0, 1]";
  { timeout_s; retries; backoff_s; jitter; jitter_seed; retryable }

(* Deterministic jitter: a pure function of (seed, name, attempt), so
   a replay under the same seed backs off bit-identically, while
   distinct retriers (different names or seeds) desynchronize instead
   of thundering in lockstep at exact powers of backoff_s. *)
let jitter ~seed ~name ~attempt =
  Faults.unit_float ~seed ~site:(Printf.sprintf "backoff:%s:%d" name attempt)

let backoff_pause config ~name ~attempt =
  let base = config.backoff_s *. (2.0 ** float_of_int (attempt - 1)) in
  if config.jitter = 0.0 then base
  else
    base
    *. (1.0 +. (config.jitter *. jitter ~seed:config.jitter_seed ~name ~attempt))

(* Retry log lines go through an injectable sink so a host that owns
   its output streams (the serve daemon, a structured logger) can
   capture them instead of having workers interleave raw lines on
   stderr across domains.  The default preserves the historical
   behavior: one flushed line on stderr. *)
type retry_log = {
  name : string;
  attempt : int;
  exn : string;
  pause_s : float;
}

let default_log_sink { name; attempt; exn; pause_s } =
  Printf.eprintf "[supervisor] %s: attempt %d failed (%s), retrying in %.2fs\n%!"
    name attempt exn pause_s

let log_sink : (retry_log -> unit) Atomic.t = Atomic.make default_log_sink
let set_log_sink f = Atomic.set log_sink f
let reset_log_sink () = Atomic.set log_sink default_log_sink

(* Attempt outcomes are a function of (workload, config, faults), not
   of scheduling, so these counters stay jobs-invariant. *)
let attempts_ok = Telemetry.counter "supervisor.attempts.ok"
let attempts_failed = Telemetry.counter "supervisor.attempts.failed"
let attempts_timed_out = Telemetry.counter "supervisor.attempts.timed_out"
let retries_counter = Telemetry.counter "supervisor.retries"

let run ?(config = default_config) ~pool ~name f =
  let rec go n =
    let token =
      match config.timeout_s with
      | Some s -> Pool.Token.create ~deadline:(Clock.now_s () +. s) ()
      | None -> Pool.Token.create ()
    in
    Pool.set_cancel pool (Some token);
    (* Classify with the raw exception in hand, clear the ambient
       token, and only then decide whether to retry.  Cancelled is a
       timeout only when THIS attempt's token fired: a stray Cancelled
       (external token, experiment code raising it) is a failure, not a
       deadline.  The raw backtrace must be grabbed at the catch point,
       before anything else can raise over it. *)
    let classified =
      Telemetry.with_span "supervisor:attempt"
        ~args:[ ("name", name); ("attempt", string_of_int n) ]
        (fun () ->
          let c =
            match f ~attempt:n with
            | v -> `Ok v
            | exception Pool.Cancelled when Pool.Token.cancelled token ->
                `Timeout
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                `Raised (e, Printexc.raw_backtrace_to_string bt)
          in
          Telemetry.annotate
            [
              ( "outcome",
                match c with
                | `Ok _ -> "ok"
                | `Timeout -> "timed_out"
                | `Raised _ -> "failed" );
            ];
          c)
    in
    Pool.set_cancel pool None;
    match classified with
    | `Ok v ->
        Telemetry.incr attempts_ok;
        (Ok v, n)
    | `Timeout ->
        Telemetry.incr attempts_timed_out;
        (Timed_out (Option.value config.timeout_s ~default:infinity), n)
    | `Raised (e, bt) ->
        Telemetry.incr attempts_failed;
        if n <= config.retries && config.retryable e then begin
          let pause = backoff_pause config ~name ~attempt:n in
          Telemetry.incr retries_counter;
          (Atomic.get log_sink)
            { name; attempt = n; exn = Printexc.to_string e; pause_s = pause };
          if pause > 0.0 then
            Telemetry.with_span "supervisor:backoff"
              ~args:[ ("name", name); ("pause_s", Printf.sprintf "%.3f" pause) ]
              (* Clock.sleepf re-sleeps across EINTR, so a signal
                 cannot silently truncate the backoff. *)
              (fun () -> Clock.sleepf pause);
          go (n + 1)
        end
        else (Failed { exn = Printexc.to_string e; backtrace = bt }, n)
  in
  go 1

let outcome_label = function
  | Ok _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timed_out"
