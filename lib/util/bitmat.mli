(** Dense boolean matrices over GF(2).

    Two independent uses in this library:
    - as *truth matrices* of two-argument boolean functions, where an
      entry is the function value for a (row argument, column argument)
      pair, and
    - as GF(2) linear-algebra objects, where [rank] gives the log-rank
      communication lower bound of the corresponding truth matrix.

    Rows are stored as {!Bitvec.t}. *)

type t

val create : int -> int -> t
(** [create rows cols], all zero. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> bool
val set : t -> int -> int -> bool -> unit

val copy : t -> t
val equal : t -> t -> bool

val row : t -> int -> Bitvec.t
(** The row as a bit vector (a copy; mutating it does not affect the
    matrix). *)

val init : int -> int -> (int -> int -> bool) -> t

val transpose : t -> t

val mul : t -> t -> t
(** GF(2) matrix product.  Inner dimensions must agree. *)

val identity : int -> t

val rank : t -> int
(** Rank over GF(2) by row elimination.  Does not mutate. *)

val count_ones : t -> int
(** Total number of [true] entries. *)

val submatrix : t -> int array -> int array -> t
(** [submatrix m rs cs] selects the given rows and columns, in order. *)

val random : Prng.t -> int -> int -> t

val pp : Format.formatter -> t -> unit
(** Prints ['0']/['1'] rows, one per line. *)
