(** Dense boolean matrices over GF(2).

    Two independent uses in this library:
    - as *truth matrices* of two-argument boolean functions, where an
      entry is the function value for a (row argument, column argument)
      pair, and
    - as GF(2) linear-algebra objects, where [rank] gives the log-rank
      communication lower bound of the corresponding truth matrix.

    Rows are stored as {!Bitvec.t}. *)

type t

val create : int -> int -> t
(** [create rows cols], all zero. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> bool
val set : t -> int -> int -> bool -> unit

val copy : t -> t
val equal : t -> t -> bool

val row : t -> int -> Bitvec.t
(** The row as a bit vector (a copy; mutating it does not affect the
    matrix). *)

val init : int -> int -> (int -> int -> bool) -> t

val transpose : t -> t

val mul : t -> t -> t
(** GF(2) matrix product.  Inner dimensions must agree. *)

val identity : int -> t

val rank : t -> int
(** Rank over GF(2) by row elimination.  Does not mutate. *)

val rank_batch : t array -> int array
(** [rank_batch ms] equals [Array.map rank ms] bit for bit, but packs
    each board's rows into native ints and eliminates with single-word
    XORs, reusing one scratch buffer across the whole batch — the
    amortized kernel behind high-throughput Corollary 4.4-style rank
    sweeps.  Boards wider than {!Bitvec.bits_per_word} columns fall
    back to {!rank} per board.  Does not mutate its inputs. *)

val count_ones : t -> int
(** Total number of [true] entries. *)

val submatrix : t -> int array -> int array -> t
(** [submatrix m rs cs] selects the given rows and columns, in order. *)

val random : Prng.t -> int -> int -> t

val complement : t -> t
(** Entrywise boolean negation (the truth matrix of [not f]). *)

(** {2 Packed-word kernels}

    The exact-CC game-tree search addresses sub-matrices as (row set,
    column set) bit masks and must test them without per-bit
    accessors.  These kernels expose whole matrix lines as single
    native ints (matrices at most {!Bitvec.bits_per_word} wide/tall)
    so the search inner loop is pure word arithmetic. *)

val packed_rows : t -> int array
(** [packed_rows m] is one int per row, bit [j] = [get m i j].
    @raise Invalid_argument when [cols m > Bitvec.bits_per_word]. *)

val packed_cols : t -> int array
(** [packed_cols m] is one int per column, bit [i] = [get m i j].
    @raise Invalid_argument when [rows m > Bitvec.bits_per_word]. *)

val mono_masked : int array -> rmask:int -> cmask:int -> int
(** [mono_masked (packed_rows m) ~rmask ~cmask] classifies the
    sub-matrix of [m] selected by the two index masks: [0] all zeros,
    [1] all ones, [-1] mixed.  Empty selections are all-zero by
    convention.  One word-op pass over the selected rows. *)

val pp : Format.formatter -> t -> unit
(** Prints ['0']/['1'] rows, one per line. *)
