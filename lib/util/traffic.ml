type kind = Exact_cc | Singular | Lower_bounds | Protocol

let all_kinds = [| Exact_cc; Singular; Lower_bounds; Protocol |]

let kind_to_string = function
  | Exact_cc -> "exact_cc"
  | Singular -> "singular"
  | Lower_bounds -> "lower_bounds"
  | Protocol -> "protocol"

let kind_of_string = function
  | "exact_cc" -> Some Exact_cc
  | "singular" -> Some Singular
  | "lower_bounds" -> Some Lower_bounds
  | "protocol" -> Some Protocol
  | _ -> None

type mix = (kind * float) list

let default_mix =
  [ (Exact_cc, 1.0); (Singular, 4.0); (Lower_bounds, 4.0); (Protocol, 1.0) ]

let parse_mix s =
  if String.trim s = "" then Error "empty mix"
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> (
          let part = String.trim part in
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "missing '=' in %S" part)
          | Some i -> (
              let name = String.sub part 0 i in
              let w = String.sub part (i + 1) (String.length part - i - 1) in
              match kind_of_string name with
              | None -> Error (Printf.sprintf "unknown kind %S" name)
              | Some k when List.mem_assoc k acc ->
                  Error (Printf.sprintf "duplicate kind %S" name)
              | Some k -> (
                  match float_of_string_opt w with
                  | Some weight when weight > 0.0 && Float.is_finite weight ->
                      go ((k, weight) :: acc) rest
                  | Some _ -> Error (Printf.sprintf "non-positive weight in %S" part)
                  | None -> Error (Printf.sprintf "malformed weight in %S" part))))
    in
    go [] parts

let mix_to_string mix =
  String.concat ","
    (List.map
       (fun (k, w) ->
         (* Render integral weights without the trailing ".": parse and
            print must round-trip through shell quoting and JSON. *)
         if Float.is_integer w then
           Printf.sprintf "%s=%d" (kind_to_string k) (int_of_float w)
         else Printf.sprintf "%s=%g" (kind_to_string k) w)
       mix)

type arrival = Closed of { concurrency : int } | Open of { rate : float }

let arrival_to_string = function
  | Closed { concurrency } -> Printf.sprintf "closed(concurrency=%d)" concurrency
  | Open { rate } -> Printf.sprintf "open(rate=%g/s)" rate

type request = { id : int; kind : kind; seed : int; arrival_s : float }

let stream ~seed ~mix ~arrival ~count =
  if count < 0 then invalid_arg "Traffic.stream: negative count";
  if mix = [] || List.exists (fun (_, w) -> not (w > 0.0)) mix then
    invalid_arg "Traffic.stream: mix must be non-empty with positive weights";
  (match arrival with
  | Open { rate } when not (rate > 0.0) ->
      invalid_arg "Traffic.stream: open-loop rate must be positive"
  | Open _ | Closed _ -> ());
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let pick g =
    let u = Prng.float g *. total in
    let rec go acc = function
      | [] -> fst (List.hd mix)
      | (k, w) :: rest -> if u < acc +. w then k else go (acc +. w) rest
    in
    go 0.0 mix
  in
  (* One sequential walk of one generator: the schedule depends only on
     the arguments, never on how many workers later replay it. *)
  let g = Prng.create seed in
  let clock = ref 0.0 in
  Array.init count (fun id ->
      let kind = pick g in
      let seed = Prng.int g max_int in
      let arrival_s =
        match arrival with
        | Closed _ -> 0.0
        | Open { rate } ->
            (* Exponential inter-arrival; 1 - u > 0 since u < 1. *)
            let u = Prng.float g in
            clock := !clock +. (-.log (1.0 -. u) /. rate);
            !clock
      in
      { id; kind; seed; arrival_s })
