/* Monotonic clock binding.  CLOCK_MONOTONIC never jumps when the
   wall clock is stepped (NTP, manual set), which is what deadline and
   duration measurements need.  The value is nanoseconds since an
   arbitrary epoch (boot, typically) and fits OCaml's 63-bit native
   int for ~146 years of uptime. */

#include <caml/mlvalues.h>
#include <time.h>

#ifndef CLOCK_MONOTONIC
#define CLOCK_MONOTONIC CLOCK_REALTIME
#endif

CAMLprim value commx_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
