type align = Left | Right

type line = Row of string list | Rule

type t = {
  caption : string option;
  header : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
}

let make ?caption ~header aligns =
  if List.length header <> List.length aligns then
    invalid_arg "Tab.make: header/aligns length mismatch";
  { caption; header; aligns; lines = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Tab.add_row: width mismatch";
  t.lines <- Row cells :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let lines = List.rev t.lines in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  measure t.header;
  List.iter (function Row cells -> measure cells | Rule -> ()) lines;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 1024 in
  (match t.caption with
  | Some c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '\n'
  | None -> ());
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        let align = List.nth t.aligns i in
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  rule ();
  List.iter (function Row cells -> emit_row cells | Rule -> rule ()) lines;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let fmt_ratio x = Printf.sprintf "%.2fx" x

let fmt_int_thousands n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
