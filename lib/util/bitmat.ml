type t = { nrows : int; ncols : int; data : Bitvec.t array }

let create nrows ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Bitmat.create";
  { nrows; ncols; data = Array.init nrows (fun _ -> Bitvec.create ncols) }

let rows m = m.nrows
let cols m = m.ncols

let check m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Bitmat: index out of bounds"

let get m i j =
  check m i j;
  Bitvec.get m.data.(i) j

let set m i j b =
  check m i j;
  Bitvec.set m.data.(i) j b

let copy m =
  { nrows = m.nrows; ncols = m.ncols; data = Array.map Bitvec.copy m.data }

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 Bitvec.equal a.data b.data

let row m i =
  if i < 0 || i >= m.nrows then invalid_arg "Bitmat.row";
  Bitvec.copy m.data.(i)

let init nrows ncols f =
  let m = create nrows ncols in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      if f i j then set m i j true
    done
  done;
  m

let transpose m = init m.ncols m.nrows (fun i j -> get m j i)

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Bitmat.mul: dimension mismatch";
  (* Row-oriented: row i of the product is the XOR of the rows of b
     selected by the set bits of row i of a. *)
  let r = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    Bitvec.fold_set_bits
      (fun k () -> Bitvec.xor_into r.data.(i) b.data.(k))
      a.data.(i) ()
  done;
  r

let identity n = init n n (fun i j -> i = j)

let rank m =
  let work = Array.map Bitvec.copy m.data in
  let nrows = m.nrows and ncols = m.ncols in
  let rank = ref 0 in
  let pivot_row = ref 0 in
  let col = ref 0 in
  while !pivot_row < nrows && !col < ncols do
    (* Find a row with a 1 in the current column at or below pivot_row. *)
    let found = ref (-1) in
    let i = ref !pivot_row in
    while !found < 0 && !i < nrows do
      if Bitvec.get work.(!i) !col then found := !i;
      incr i
    done;
    (match !found with
    | -1 -> ()
    | f ->
        let tmp = work.(!pivot_row) in
        work.(!pivot_row) <- work.(f);
        work.(f) <- tmp;
        for r = 0 to nrows - 1 do
          if r <> !pivot_row && Bitvec.get work.(r) !col then
            Bitvec.xor_into work.(r) work.(!pivot_row)
        done;
        incr pivot_row;
        incr rank);
    incr col
  done;
  !rank

(* Word-level elimination over rows packed one-int-per-row.  Mutates
   [buf.(0 .. nrows-1)] in place; the caller owns the buffer, which is
   what lets [rank_batch] reuse one scratch array across thousands of
   boards instead of allocating a row-copy per call like [rank]. *)
let rank_packed_inplace buf nrows ncols =
  let rank = ref 0 in
  let col = ref 0 in
  while !rank < nrows && !col < ncols do
    let bit = 1 lsl !col in
    let found = ref (-1) in
    let i = ref !rank in
    while !found < 0 && !i < nrows do
      if buf.(!i) land bit <> 0 then found := !i;
      incr i
    done;
    (match !found with
    | -1 -> ()
    | f ->
        let p = buf.(f) in
        buf.(f) <- buf.(!rank);
        buf.(!rank) <- p;
        (* Row echelon is enough for rank: rows above the pivot keep
           their copy of this column, halving the XOR work of the full
           reduction [rank] performs. *)
        for r = !rank + 1 to nrows - 1 do
          if buf.(r) land bit <> 0 then buf.(r) <- buf.(r) lxor p
        done;
        incr rank);
    incr col
  done;
  !rank

let rank_batch ms =
  let scratch_rows =
    Array.fold_left
      (fun acc m -> if m.ncols <= Bitvec.bits_per_word then max acc m.nrows else acc)
      0 ms
  in
  let buf = Array.make (max scratch_rows 1) 0 in
  Array.map
    (fun m ->
      if m.ncols > Bitvec.bits_per_word then rank m
      else begin
        for i = 0 to m.nrows - 1 do
          buf.(i) <- Bitvec.to_int m.data.(i)
        done;
        rank_packed_inplace buf m.nrows m.ncols
      end)
    ms

let count_ones m =
  Array.fold_left (fun acc r -> acc + Bitvec.popcount r) 0 m.data

let submatrix m rs cs =
  init (Array.length rs) (Array.length cs) (fun i j -> get m rs.(i) cs.(j))

let random g nrows ncols = init nrows ncols (fun _ _ -> Prng.bool g)

let complement m = init m.nrows m.ncols (fun i j -> not (get m i j))

(* Packed-word extraction: the exact-CC search works on (row set,
   column set) masks and needs each line of the matrix as one native
   int so monochromaticity and duplicate tests are word ops, never
   per-bit accessors.  Sub-matrix extraction is then [word land mask]
   at the call site. *)

let packed_rows m =
  if m.ncols > Bitvec.bits_per_word then
    invalid_arg "Bitmat.packed_rows: too many columns to pack";
  Array.init m.nrows (fun i ->
      let r = ref 0 in
      for j = m.ncols - 1 downto 0 do
        r := (!r lsl 1) lor if get m i j then 1 else 0
      done;
      !r)

let packed_cols m =
  if m.nrows > Bitvec.bits_per_word then
    invalid_arg "Bitmat.packed_cols: too many rows to pack";
  Array.init m.ncols (fun j ->
      let c = ref 0 in
      for i = m.nrows - 1 downto 0 do
        c := (!c lsl 1) lor if get m i j then 1 else 0
      done;
      !c)

(* [mono_masked rows ~rmask ~cmask] classifies the sub-matrix selected
   by the index masks over packed rows: [0] all-zero, [1] all-one,
   [-1] mixed.  Empty sub-matrices are all-zero by convention.  Cost:
   one [land] and compare per selected row. *)
let mono_masked rows ~rmask ~cmask =
  if rmask = 0 || cmask = 0 then 0
  else begin
    let first = rows.(Bitvec.popcount_int ((rmask land -rmask) - 1)) in
    let expect = first land cmask in
    if expect <> 0 && expect <> cmask then -1
    else begin
      let ok = ref true in
      let rem = ref rmask in
      while !ok && !rem <> 0 do
        let low = !rem land - !rem in
        let i = Bitvec.popcount_int (low - 1) in
        if rows.(i) land cmask <> expect then ok := false;
        rem := !rem lxor low
      done;
      if not !ok then -1 else if expect = 0 then 0 else 1
    end
  end

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    if i > 0 then Format.pp_print_cut ppf ();
    Format.pp_print_string ppf (Bitvec.to_string m.data.(i))
  done
