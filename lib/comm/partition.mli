(** Partitions of the input bits between the two agents.

    Yao's model divides the input bits *evenly* between two agents; the
    communication complexity of a function is the minimum over even
    partitions of the cost of the best protocol.  For matrix problems
    the input bits are the k-bit entries of a matrix, so this module
    also provides the entry-level view (an entry is atomic for most of
    the paper's arguments: Definition 3.8 speaks of bit positions of
    submatrices, which we track per entry position).

    A partition is a bit vector over input positions: [true] = the
    position is read by Agent 1, [false] = Agent 2. *)

type t

val size : t -> int
(** Number of input positions. *)

val of_bitvec : Commx_util.Bitvec.t -> t
val to_bitvec : t -> Commx_util.Bitvec.t

val agent_of : t -> int -> int
(** 1 or 2. *)

val count_agent1 : t -> int

val is_even : t -> bool
(** Both agents read the same number of positions (sizes must be
    even). *)

val halves : t -> int array * int array
(** Positions of agent 1 and agent 2, ascending. *)

val first_half : int -> t
(** Positions [0 .. size/2 - 1] to agent 1 — the paper's partition
    π₀ when positions are column-major matrix entries. *)

val random_even : Commx_util.Prng.t -> int -> t
(** Uniformly random even partition. *)

val complement : t -> t
(** Swap the agents. *)

val apply_permutation : t -> int array -> t
(** [apply_permutation p perm]: the partition reading position [i] as
    the old position [perm.(i)] — used when permuting matrix rows and
    columns (Lemma 3.9) to re-index who reads what. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Matrix-entry indexing}

    Positions of an [n x n] matrix are numbered column-major —
    [index ~n ~row ~col = col * n + row] — so that [first_half]
    gives the paper's π₀ ("the first agent receives all bits encoding
    the entries in the first m columns"). *)

val index : n:int -> row:int -> col:int -> int
val row_col : n:int -> int -> int * int

val agent1_dominates : t -> int list -> bool
(** Does agent 1 read at least half of the listed positions?
    ("Dominating" in the sense of Lemma 3.9.) *)
