module Bm = Commx_util.Bitmat

(* Rectangles as (row mask, col mask) int pairs; matrices stay small
   (the guards enforce it). *)

let masks_to_rect rmask cmask =
  let collect mask =
    let acc = ref [] in
    for i = 30 downto 0 do
      if mask lsr i land 1 = 1 then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  { Rectangle.row_set = collect rmask; col_set = collect cmask }

let cols_all_ones m rmask =
  let nc = Bm.cols m in
  let cmask = ref 0 in
  for j = 0 to nc - 1 do
    let ok = ref true in
    for i = 0 to Bm.rows m - 1 do
      if rmask lsr i land 1 = 1 && not (Bm.get m i j) then ok := false
    done;
    if !ok then cmask := !cmask lor (1 lsl j)
  done;
  !cmask

let rows_all_ones m cmask =
  let nr = Bm.rows m in
  let rmask = ref 0 in
  for i = 0 to nr - 1 do
    let ok = ref true in
    for j = 0 to Bm.cols m - 1 do
      if cmask lsr j land 1 = 1 && not (Bm.get m i j) then ok := false
    done;
    if !ok then rmask := !rmask lor (1 lsl i)
  done;
  !rmask

let maximal_one_rectangles m =
  let nr = Bm.rows m in
  if nr > 16 then invalid_arg "Cover.maximal_one_rectangles: too many rows";
  let seen = Hashtbl.create 64 in
  for rmask = 1 to (1 lsl nr) - 1 do
    let cmask = cols_all_ones m rmask in
    if cmask <> 0 then begin
      (* Close: take all rows compatible with these columns. *)
      let rclosed = rows_all_ones m cmask in
      if rclosed <> 0 then Hashtbl.replace seen (rclosed, cmask) ()
    end
  done;
  Hashtbl.fold (fun (r, c) () acc -> masks_to_rect r c :: acc) seen []

let cells_of_rect_masks rmask cmask nc =
  (* cell id = i * nc + j, as a bitmask over at most 62 cells *)
  let cells = ref 0 in
  for i = 0 to 30 do
    if rmask lsr i land 1 = 1 then
      for j = 0 to nc - 1 do
        if cmask lsr j land 1 = 1 then cells := !cells lor (1 lsl ((i * nc) + j))
      done
  done;
  !cells

let min_one_cover m =
  let nr = Bm.rows m and nc = Bm.cols m in
  if nr * nc > 60 then invalid_arg "Cover.min_one_cover: too many cells";
  let ones = ref 0 in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      if Bm.get m i j then ones := !ones lor (1 lsl ((i * nc) + j))
    done
  done;
  if !ones = 0 then 0
  else begin
    let rect_cells =
      List.map
        (fun r ->
          let rmask =
            Array.fold_left (fun acc i -> acc lor (1 lsl i)) 0 r.Rectangle.row_set
          in
          let cmask =
            Array.fold_left (fun acc j -> acc lor (1 lsl j)) 0 r.Rectangle.col_set
          in
          cells_of_rect_masks rmask cmask nc)
        (maximal_one_rectangles m)
    in
    let best = ref max_int in
    let rec solve uncovered count =
      if count >= !best then ()
      else if uncovered = 0 then best := count
      else begin
        (* Branch on the lowest uncovered cell: some rectangle in the
           cover must contain it. *)
        let cell = uncovered land -uncovered in
        List.iter
          (fun cells ->
            if cells land cell <> 0 then
              solve (uncovered land lnot cells) (count + 1))
          rect_cells
      end
    in
    solve !ones 0;
    !best
  end

let complement m = Bm.init (Bm.rows m) (Bm.cols m) (fun i j -> not (Bm.get m i j))

let min_zero_cover m = min_one_cover (complement m)

let min_partition m =
  let nr = Bm.rows m and nc = Bm.cols m in
  if nr * nc > 25 then invalid_arg "Cover.min_partition: too many cells";
  if nr = 0 || nc = 0 then 0
  else begin
    let full = (1 lsl (nr * nc)) - 1 in
    let best = ref max_int in
    (* candidate monochromatic rectangles containing a given cell and
       avoiding covered cells *)
    let rec solve covered count =
      if count >= !best then ()
      else if covered = full then best := count
      else begin
        let free = full land lnot covered in
        let cell = free land -free in
        let cell_idx =
          let rec go b i = if b = 1 then i else go (b lsr 1) (i + 1) in
          go cell 0
        in
        let r0 = cell_idx / nc and c0 = cell_idx mod nc in
        let v0 = Bm.get m r0 c0 in
        (* rows compatible: same value at column c0 and cell uncovered *)
        let cand_rows = ref [] in
        for i = nr - 1 downto 0 do
          if i <> r0 && Bm.get m i c0 = v0 && covered lsr ((i * nc) + c0) land 1 = 0
          then cand_rows := i :: !cand_rows
        done;
        let cand_cols = ref [] in
        for j = nc - 1 downto 0 do
          if j <> c0 && Bm.get m r0 j = v0 && covered lsr ((r0 * nc) + j) land 1 = 0
          then cand_cols := j :: !cand_cols
        done;
        let rows_arr = Array.of_list !cand_rows in
        let cols_arr = Array.of_list !cand_cols in
        let nrc = Array.length rows_arr and ncc = Array.length cols_arr in
        (* enumerate subsets of candidate rows x candidate cols, always
           including (r0, c0) *)
        for rsub = 0 to (1 lsl nrc) - 1 do
          for csub = 0 to (1 lsl ncc) - 1 do
            let rows_sel = ref [ r0 ] and cols_sel = ref [ c0 ] in
            for t = 0 to nrc - 1 do
              if rsub lsr t land 1 = 1 then rows_sel := rows_arr.(t) :: !rows_sel
            done;
            for t = 0 to ncc - 1 do
              if csub lsr t land 1 = 1 then cols_sel := cols_arr.(t) :: !cols_sel
            done;
            (* validity: all cells monochromatic value v0 and uncovered *)
            let ok = ref true in
            let cells = ref 0 in
            List.iter
              (fun i ->
                List.iter
                  (fun j ->
                    let idx = (i * nc) + j in
                    if Bm.get m i j <> v0 || covered lsr idx land 1 = 1 then
                      ok := false
                    else cells := !cells lor (1 lsl idx))
                  !cols_sel)
              !rows_sel;
            if !ok then solve (covered lor !cells) (count + 1)
          done
        done
      end
    in
    solve 0 0;
    !best
  end

let yao_inequality_holds m =
  let cc = Exact_cc.complexity m in
  let d = min_partition m in
  let n1 = min_one_cover m and n0 = min_zero_cover m in
  let log2 x = log (float_of_int (max 1 x)) /. log 2.0 in
  (* Yao (tree model): 2^C leaves give a partition, so C >= log2 d. *)
  float_of_int cc >= log2 d -. 1e-9
  (* a partition's 1-parts form a 1-cover and its 0-parts a 0-cover *)
  && d >= n1 + n0
  (* Aho-Ullman-Yannakakis flavored converse, generous constant *)
  && float_of_int cc <= (4.0 *. (log2 (n0 + n1) +. 1.0) ** 2.0) +. 2.0
