module Bm = Commx_util.Bitmat
module Tel = Commx_util.Telemetry

type ('a, 'b) t = {
  row_args : 'a array;
  col_args : 'b array;
  values : Bm.t;
}

let built_counter = Tel.counter "truth_matrix.built"
let cells_counter = Tel.counter "truth_matrix.cells"

let build xs ys f =
  let row_args = Array.of_list xs and col_args = Array.of_list ys in
  if Tel.metrics_on () then begin
    Tel.incr built_counter;
    Tel.add cells_counter (Array.length row_args * Array.length col_args)
  end;
  let values =
    Bm.init (Array.length row_args) (Array.length col_args) (fun i j ->
        f row_args.(i) col_args.(j))
  in
  { row_args; col_args; values }

let rows t = Array.length t.row_args
let cols t = Array.length t.col_args

let get t i j = Bm.get t.values i j

let count_ones t = Bm.count_ones t.values
let count_zeros t = (rows t * cols t) - count_ones t

let ones_per_row t =
  Array.init (rows t) (fun i ->
      let c = ref 0 in
      for j = 0 to cols t - 1 do
        if get t i j then incr c
      done;
      !c)

let ones_per_col t =
  Array.init (cols t) (fun j ->
      let c = ref 0 in
      for i = 0 to rows t - 1 do
        if get t i j then incr c
      done;
      !c)

let density t =
  if rows t = 0 || cols t = 0 then 0.0
  else float_of_int (count_ones t) /. float_of_int (rows t * cols t)

let to_bitmat t = Bm.copy t.values

let restrict t row_idx col_idx =
  {
    row_args = Array.map (fun i -> t.row_args.(i)) row_idx;
    col_args = Array.map (fun j -> t.col_args.(j)) col_idx;
    values = Bm.submatrix t.values row_idx col_idx;
  }

let map_labels f g t =
  {
    row_args = Array.map f t.row_args;
    col_args = Array.map g t.col_args;
    values = Bm.copy t.values;
  }
