module Bv = Commx_util.Bitvec
module B = Commx_bigint.Bigint

let bits_for_range card =
  if card <= 0 then invalid_arg "Encode.bits_for_range";
  let rec go c acc = if c <= 1 then acc else go ((c + 1) / 2) (acc + 1) in
  go card 0

let encode_int ~width v =
  if v < 0 then invalid_arg "Encode.encode_int: negative";
  if width < 62 && v lsr width <> 0 then
    invalid_arg "Encode.encode_int: value too wide";
  let r = Bv.create width in
  for i = 0 to Stdlib.min (width - 1) 61 do
    if v lsr i land 1 = 1 then Bv.set r i true
  done;
  r

let decode_int v =
  if Bv.length v > 62 then invalid_arg "Encode.decode_int: too wide";
  let acc = ref 0 in
  for i = Bv.length v - 1 downto 0 do
    acc := (!acc lsl 1) lor if Bv.get v i then 1 else 0
  done;
  !acc

let encode_bigint ~width x =
  if B.sign x < 0 then invalid_arg "Encode.encode_bigint: negative";
  if B.bit_length x > width then
    invalid_arg "Encode.encode_bigint: value too wide";
  let r = Bv.create width in
  for i = 0 to width - 1 do
    if B.test_bit x i then Bv.set r i true
  done;
  r

let decode_bigint v =
  let acc = ref B.zero in
  for i = Bv.length v - 1 downto 0 do
    acc := B.shift_left !acc 1;
    if Bv.get v i then acc := B.add !acc B.one
  done;
  !acc

let encode_entries ~k entries =
  let n = Array.length entries in
  let r = Bv.create (n * k) in
  Array.iteri
    (fun idx e ->
      if B.sign e < 0 || B.bit_length e > k then
        invalid_arg "Encode.encode_entries: entry out of k-bit range";
      for b = 0 to k - 1 do
        if B.test_bit e b then Bv.set r ((idx * k) + b) true
      done)
    entries;
  r

let decode_entries ~k v =
  if k <= 0 then invalid_arg "Encode.decode_entries";
  let len = Bv.length v in
  if len mod k <> 0 then invalid_arg "Encode.decode_entries: ragged";
  Array.init (len / k) (fun idx -> decode_bigint (Bv.sub v (idx * k) k))

let matrix_bits ~n ~k = n * n * k
