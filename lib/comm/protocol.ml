module Bv = Commx_util.Bitvec
module Tel = Commx_util.Telemetry

type channel = { mutable bits : int }

type ('a, 'b) t = { name : string; run : channel -> 'a -> 'b -> bool }

(* Process-wide communication accounting, on top of the per-channel
   exact count.  Bits and messages are functions of the protocol and
   its inputs — never of scheduling — so these merge jobs-invariantly. *)
let bits_total_counter = Tel.counter "channel.bits_total"
let messages_counter = Tel.counter "channel.messages"
let bits_per_message_hist = Tel.histogram "channel.bits_per_message"

let count ch n =
  ch.bits <- ch.bits + n;
  if Tel.metrics_on () then begin
    Tel.add bits_total_counter n;
    Tel.incr messages_counter;
    Tel.observe bits_per_message_hist n
  end

let send ch msg =
  count ch (Bv.length msg);
  Bv.copy msg

let send_bit ch b =
  count ch 1;
  b

let send_int ch ~width v =
  let m = send ch (Encode.encode_int ~width v) in
  Encode.decode_int m

let send_bigint ch ~width v =
  let m = send ch (Encode.encode_bigint ~width v) in
  Encode.decode_bigint m

let bits_sent ch = ch.bits

let execute_fn run a b =
  let ch = { bits = 0 } in
  let out = run ch a b in
  (out, ch.bits)

(* Per-protocol cost distribution ("protocol.bits.<name>") plus a span
   per execution under tracing.  [execute_fn] stays bare: anonymous
   closures have no name to key a histogram on, and the channel-level
   counters above still see their bits. *)
let execute p a b =
  if not (Tel.metrics_on ()) then execute_fn p.run a b
  else begin
    let observe (_, bits) =
      Tel.observe (Tel.histogram ("protocol.bits." ^ p.name)) bits
    in
    if Tel.tracing_on () then
      Tel.with_span ("protocol:" ^ p.name) (fun () ->
          let r = execute_fn p.run a b in
          Tel.annotate [ ("bits", string_of_int (snd r)) ];
          observe r;
          r)
    else begin
      let r = execute_fn p.run a b in
      observe r;
      r
    end
  end

let worst_case_cost p xs ys =
  (match (xs, ys) with
  | [], _ | _, [] ->
      (* An empty rectangle would fold to 0, which reads downstream as
         "free protocol" — refuse instead. *)
      invalid_arg "Protocol.worst_case_cost: empty input list"
  | _ -> ());
  List.fold_left
    (fun acc x ->
      List.fold_left
        (fun acc y ->
          let _, c = execute p x y in
          Stdlib.max acc c)
        acc ys)
    0 xs

let check_correct p ~spec xs ys =
  let result = ref None in
  (try
     List.iter
       (fun x ->
         List.iter
           (fun y ->
             let got, _ = execute p x y in
             let want = spec x y in
             if got <> want then begin
               result := Some ((x, y), got, want);
               raise Exit
             end)
           ys)
       xs
   with Exit -> ());
  !result

let error_rate p ~spec pairs =
  match pairs with
  | [] -> invalid_arg "Protocol.error_rate: no inputs"
  | _ ->
      let wrong =
        List.fold_left
          (fun acc (x, y) ->
            let got, _ = execute p x y in
            if got <> spec x y then acc + 1 else acc)
          0 pairs
      in
      float_of_int wrong /. float_of_int (List.length pairs)
