module Bv = Commx_util.Bitvec

type channel = { mutable bits : int }

type ('a, 'b) t = { name : string; run : channel -> 'a -> 'b -> bool }

let send ch msg =
  ch.bits <- ch.bits + Bv.length msg;
  Bv.copy msg

let send_bit ch b =
  ch.bits <- ch.bits + 1;
  b

let send_int ch ~width v =
  let m = send ch (Encode.encode_int ~width v) in
  Encode.decode_int m

let send_bigint ch ~width v =
  let m = send ch (Encode.encode_bigint ~width v) in
  Encode.decode_bigint m

let bits_sent ch = ch.bits

let execute_fn run a b =
  let ch = { bits = 0 } in
  let out = run ch a b in
  (out, ch.bits)

let execute p a b = execute_fn p.run a b

let worst_case_cost p xs ys =
  (match (xs, ys) with
  | [], _ | _, [] ->
      (* An empty rectangle would fold to 0, which reads downstream as
         "free protocol" — refuse instead. *)
      invalid_arg "Protocol.worst_case_cost: empty input list"
  | _ -> ());
  List.fold_left
    (fun acc x ->
      List.fold_left
        (fun acc y ->
          let _, c = execute p x y in
          Stdlib.max acc c)
        acc ys)
    0 xs

let check_correct p ~spec xs ys =
  let result = ref None in
  (try
     List.iter
       (fun x ->
         List.iter
           (fun y ->
             let got, _ = execute p x y in
             let want = spec x y in
             if got <> want then begin
               result := Some ((x, y), got, want);
               raise Exit
             end)
           ys)
       xs
   with Exit -> ());
  !result

let error_rate p ~spec pairs =
  match pairs with
  | [] -> invalid_arg "Protocol.error_rate: no inputs"
  | _ ->
      let wrong =
        List.fold_left
          (fun acc (x, y) ->
            let got, _ = execute p x y in
            if got <> spec x y then acc + 1 else acc)
          0 pairs
      in
      float_of_int wrong /. float_of_int (List.length pairs)
