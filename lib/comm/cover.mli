(** Exact monochromatic rectangle covers and partitions.

    Yao's bound is [C(f) >= log2 d(f) - 2] where [d(f)] is the minimum
    number of disjoint monochromatic rectangles partitioning the truth
    matrix; the nondeterministic complexities are the minimum *cover*
    sizes [N¹(f)], [N⁰(f)] (overlaps allowed).  For tiny matrices both
    are computable exactly by branch-and-bound over maximal
    rectangles — turning the d(f) of Section 2 from a proof device into
    a number we can print next to the exact complexity of
    {!Exact_cc}. *)

val maximal_one_rectangles : Commx_util.Bitmat.t -> Rectangle.rect list
(** All *maximal* all-ones rectangles (no row or column can be added).
    Every minimum cover can be taken from this list.
    @raise Invalid_argument when rows > 16. *)

val min_one_cover : Commx_util.Bitmat.t -> int
(** Minimum number of (possibly overlapping) 1-rectangles covering all
    ones: the nondeterministic complexity is [ceil(log2) ] of this.
    Exact branch-and-bound; intended for matrices with at most ~40
    ones. *)

val min_zero_cover : Commx_util.Bitmat.t -> int
(** Same for the zeros (complement trick). *)

val min_partition : Commx_util.Bitmat.t -> int
(** The paper's [d(f)]: minimum number of *disjoint* monochromatic
    rectangles partitioning the whole matrix.  Exact search; intended
    for matrices with at most ~16 cells beyond trivial structure
    (cost grows quickly — keep it tiny). *)

val yao_inequality_holds : Commx_util.Bitmat.t -> bool
(** [exact CC >= log2 (min_partition) ] and
    [exact CC <= (log2 (min_one_cover + min_zero_cover) + 1)^2 + ...]:
    checks Yao's bound and the Aho–Ullman–Yannakakis converse
    [C <= O(log² d)] with the explicit constant 4 used in tests. *)
