module Bv = Commx_util.Bitvec

type ('a, 'b) t =
  | Answer of bool
  | Alice of ('a -> bool) * ('a, 'b) t * ('a, 'b) t
  | Bob of ('b -> bool) * ('a, 'b) t * ('a, 'b) t

let rec eval tree x y =
  match tree with
  | Answer v -> v
  | Alice (f, zero, one) -> eval (if f x then one else zero) x y
  | Bob (f, zero, one) -> eval (if f y then one else zero) x y

let transcript tree x y =
  let rec go tree acc =
    match tree with
    | Answer _ -> List.rev acc
    | Alice (f, zero, one) ->
        let b = f x in
        go (if b then one else zero) (b :: acc)
    | Bob (f, zero, one) ->
        let b = f y in
        go (if b then one else zero) (b :: acc)
  in
  let bits = go tree [] in
  let v = Bv.create (List.length bits) in
  List.iteri (fun i b -> Bv.set v i b) bits;
  v

let rec cost = function
  | Answer _ -> 0
  | Alice (_, zero, one) | Bob (_, zero, one) ->
      1 + Stdlib.max (cost zero) (cost one)

let rec leaves = function
  | Answer _ -> 1
  | Alice (_, zero, one) | Bob (_, zero, one) -> leaves zero + leaves one

let correct_on tree ~spec xs ys =
  List.for_all
    (fun x -> List.for_all (fun y -> eval tree x y = spec x y) ys)
    xs

let alice_sends_all ~bits encode =
  (* Build the complete binary tree of depth [bits] where Alice reveals
     encode(x) bit by bit; at each leaf the accumulated prefix is the
     full encoding, and Bob answers using his decision closure. *)
  let rec build depth prefix =
    if depth = bits then begin
      let received = List.rev prefix in
      let v = Bv.create bits in
      List.iteri (fun i b -> Bv.set v i b) received;
      (* Bob's answer depends on his own input; a leaf can't look at
         it, so the final step is a Bob node answering with his
         decision bit. *)
      Bob ((fun (_, decide) -> decide v), Answer false, Answer true)
    end
    else
      Alice
        ( (fun x -> Bv.get (encode x) depth),
          build (depth + 1) (false :: prefix),
          build (depth + 1) (true :: prefix) )
  in
  build 0 []

type ('a, 'b) induced = {
  rectangles : (int list * int list) list;
  monochromatic : bool;
  disjoint_cover : bool;
  count : int;
}

let induced_partition tree tm =
  let nr = Truth_matrix.rows tm and nc = Truth_matrix.cols tm in
  let groups = Hashtbl.create 64 in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      let x = tm.Truth_matrix.row_args.(i) in
      let y = tm.Truth_matrix.col_args.(j) in
      let key = Bv.to_string (transcript tree x y) in
      let rows_set, cols_set =
        match Hashtbl.find_opt groups key with
        | Some (r, c) -> (r, c)
        | None ->
            let r = Hashtbl.create 8 and c = Hashtbl.create 8 in
            Hashtbl.replace groups key (r, c);
            (r, c)
      in
      Hashtbl.replace rows_set i ();
      Hashtbl.replace cols_set j ()
    done
  done;
  let rectangles =
    Hashtbl.fold
      (fun _ (rs, cs) acc ->
        let sorted h = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) h []) in
        (sorted rs, sorted cs) :: acc)
      groups []
  in
  let monochromatic =
    List.for_all
      (fun (rs, cs) ->
        match (rs, cs) with
        | [], _ | _, [] -> true
        | r0 :: _, c0 :: _ ->
            let v0 = Truth_matrix.get tm r0 c0 in
            List.for_all
              (fun i -> List.for_all (fun j -> Truth_matrix.get tm i j = v0) cs)
              rs)
      rectangles
  in
  let total_cells =
    List.fold_left
      (fun acc (rs, cs) -> acc + (List.length rs * List.length cs))
      0 rectangles
  in
  let disjoint_cover = total_cells = nr * nc in
  {
    rectangles;
    monochromatic;
    disjoint_cover;
    count = List.length rectangles;
  }

let yao_bound_holds tree tm =
  let ind = induced_partition tree tm in
  ind.disjoint_cover && ind.count <= 1 lsl cost tree
