module Prng = Commx_util.Prng

type ('a, 'b) t = {
  name : string;
  run_seeded : seed:int -> ('a, 'b) Protocol.t;
}

let estimate_error g rp ~spec ~trials inputs =
  match inputs with
  | [] -> invalid_arg "Randomized.estimate_error: no inputs"
  | _ ->
      let arr = Array.of_list inputs in
      let wrong = ref 0 in
      for t = 0 to trials - 1 do
        let x, y = arr.(t mod Array.length arr) in
        let seed = Prng.int g max_int in
        let p = rp.run_seeded ~seed in
        let got, _ = Protocol.execute p x y in
        if got <> spec x y then incr wrong
      done;
      float_of_int !wrong /. float_of_int trials

let worst_input_error g rp ~spec ~seeds inputs =
  List.fold_left
    (fun acc (x, y) ->
      let wrong = ref 0 in
      for _ = 1 to seeds do
        let seed = Prng.int g max_int in
        let p = rp.run_seeded ~seed in
        let got, _ = Protocol.execute p x y in
        if got <> spec x y then incr wrong
      done;
      Float.max acc (float_of_int !wrong /. float_of_int seeds))
    0.0 inputs

let max_cost g rp ~seeds inputs =
  List.fold_left
    (fun acc (x, y) ->
      let worst = ref acc in
      for _ = 1 to seeds do
        let seed = Prng.int g max_int in
        let p = rp.run_seeded ~seed in
        let _, c = Protocol.execute p x y in
        worst := Stdlib.max !worst c
      done;
      !worst)
    0 inputs
