(** Harness for randomized (public-coin) protocols.

    The paper contrasts Theorem 1.1 with Leighton's observation that
    the *probabilistic* communication complexity of singularity testing
    is only O(n² max(log n, log k)).  A public-coin protocol is a
    deterministic protocol parameterized by a shared random seed; its
    error on an input is the probability over seeds of answering
    wrongly.  This module estimates that error by Monte Carlo and
    reports worst-case bit cost over sampled seeds. *)

type ('a, 'b) t = {
  name : string;
  run_seeded : seed:int -> ('a, 'b) Protocol.t;
}

val estimate_error :
  Commx_util.Prng.t ->
  ('a, 'b) t ->
  spec:('a -> 'b -> bool) ->
  trials:int ->
  ('a * 'b) list ->
  float
(** Fraction of (seed, input) trials answered wrongly; inputs are
    cycled through, a fresh seed drawn per trial. *)

val worst_input_error :
  Commx_util.Prng.t ->
  ('a, 'b) t ->
  spec:('a -> 'b -> bool) ->
  seeds:int ->
  ('a * 'b) list ->
  float
(** For each input, estimate error over [seeds] seeds; return the
    maximum — the quantity the ε in "correct with probability 1/2 + ε"
    constrains. *)

val max_cost :
  Commx_util.Prng.t -> ('a, 'b) t -> seeds:int -> ('a * 'b) list -> int
(** Maximum bits exchanged over sampled seeds and the given inputs. *)
