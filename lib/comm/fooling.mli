(** Fooling sets.

    A 1-fooling set is a set of input pairs \{(x_i, y_i)\} with
    [f x_i y_i = true] for all [i] and, for every [i <> j],
    [f x_i y_j = false] or [f x_j y_i = false].  No two elements of a
    fooling set can share a monochromatic rectangle, so communication
    is at least [log2 |S|].  This is the "transitivity approach of
    Vuillemin" the paper contrasts itself against: it works for the
    identity problem (experiment E11) but cannot reach Θ(k n²) for
    singularity — our experiments make that gap visible. *)

type t = (int * int) list
(** Pairs of (row index, column index) into a truth matrix. *)

val is_fooling_set : ('a, 'b) Truth_matrix.t -> t -> bool
(** Validity check against the definition. *)

val greedy : ('a, 'b) Truth_matrix.t -> t
(** Deterministic greedy construction scanning ones in row-major
    order; always valid, not necessarily maximal. *)

val greedy_randomized :
  Commx_util.Prng.t -> ?restarts:int -> ('a, 'b) Truth_matrix.t -> t
(** Best of several randomized greedy passes. *)

val diagonal_candidate : ('a, 'b) Truth_matrix.t -> t
(** The diagonal \{(i, i)\} filtered to one entries — the natural
    candidate when rows and columns are indexed by the same set (the
    identity problem's canonical fooling set).  Validity must still be
    checked with {!is_fooling_set}. *)

val lower_bound_bits : t -> float
(** [log2 (max 1 |S|)]. *)

val largest_identity_embedding : ('a, 'b) Truth_matrix.t -> t
(** The largest *induced identity*: pairs \{(x_i, y_i)\} with
    [f x_i y_i = 1] and [f x_i y_j = 0] for every [i <> j] in *both*
    orders — the structure Vuillemin's transitivity argument needs.
    Every identity embedding is a fooling set but not conversely.
    Exact branch-and-bound (intended for truth matrices with at most a
    few hundred ones); the paper's point is that singularity admits
    only small ones. *)

val is_identity_embedding : ('a, 'b) Truth_matrix.t -> t -> bool
