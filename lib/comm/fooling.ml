type t = (int * int) list

let is_fooling_set tm s =
  let ok_entry (i, j) = Truth_matrix.get tm i j in
  let ok_pair (i1, j1) (i2, j2) =
    (not (Truth_matrix.get tm i1 j2)) || not (Truth_matrix.get tm i2 j1)
  in
  List.for_all ok_entry s
  &&
  let rec pairs = function
    | [] -> true
    | p :: rest -> List.for_all (ok_pair p) rest && pairs rest
  in
  pairs s

let compatible tm chosen (i, j) =
  Truth_matrix.get tm i j
  && List.for_all
       (fun (i', j') ->
         (not (Truth_matrix.get tm i j')) || not (Truth_matrix.get tm i' j))
       chosen

let greedy tm =
  let chosen = ref [] in
  for i = 0 to Truth_matrix.rows tm - 1 do
    for j = 0 to Truth_matrix.cols tm - 1 do
      if compatible tm !chosen (i, j) then chosen := (i, j) :: !chosen
    done
  done;
  List.rev !chosen

let greedy_randomized g ?(restarts = 16) tm =
  let nr = Truth_matrix.rows tm and nc = Truth_matrix.cols tm in
  let all = Array.init (nr * nc) (fun x -> (x / nc, x mod nc)) in
  let best = ref (greedy tm) in
  for _ = 1 to restarts do
    Commx_util.Prng.shuffle g all;
    let chosen = ref [] in
    Array.iter
      (fun p -> if compatible tm !chosen p then chosen := p :: !chosen)
      all;
    if List.length !chosen > List.length !best then best := !chosen
  done;
  !best

let diagonal_candidate tm =
  let n = min (Truth_matrix.rows tm) (Truth_matrix.cols tm) in
  List.filter
    (fun (i, j) -> Truth_matrix.get tm i j)
    (List.init n (fun i -> (i, i)))

let lower_bound_bits s =
  log (float_of_int (max 1 (List.length s))) /. log 2.0

let is_identity_embedding tm s =
  List.for_all (fun (i, j) -> Truth_matrix.get tm i j) s
  &&
  let rec pairs = function
    | [] -> true
    | (i1, j1) :: rest ->
        List.for_all
          (fun (i2, j2) ->
            (not (Truth_matrix.get tm i1 j2))
            && not (Truth_matrix.get tm i2 j1))
          rest
        && pairs rest
  in
  pairs s

let largest_identity_embedding tm =
  (* Max clique in the compatibility graph over one-cells, where two
     cells are compatible when both cross entries are zero.  Plain
     branch and bound with a remaining-candidates cutoff. *)
  let ones = ref [] in
  for i = Truth_matrix.rows tm - 1 downto 0 do
    for j = Truth_matrix.cols tm - 1 downto 0 do
      if Truth_matrix.get tm i j then ones := (i, j) :: !ones
    done
  done;
  let compat (i1, j1) (i2, j2) =
    (not (Truth_matrix.get tm i1 j2)) && not (Truth_matrix.get tm i2 j1)
  in
  let best = ref [] in
  let rec extend chosen candidates =
    if List.length chosen + List.length candidates <= List.length !best then ()
    else
      match candidates with
      | [] -> if List.length chosen > List.length !best then best := chosen
      | c :: rest ->
          (* include c *)
          extend (c :: chosen) (List.filter (compat c) rest);
          (* exclude c *)
          extend chosen rest
  in
  extend [] !ones;
  !best
