(** Discrepancy — the randomized-complexity counterpart of the
    rectangle machinery.

    The discrepancy of a truth matrix is the maximum over all
    rectangles of |#ones − #zeros| / #cells.  Any public-coin protocol
    with error ε needs at least [log2((1 − 2ε) / disc)] bits, so small
    discrepancy certifies randomized hardness the way small
    1-rectangles certify deterministic hardness (claim 2b).  The
    paper's singularity matrices have *large* monochromatic structure
    relative to their size — consistent with the problem being
    randomized-easy (Leighton's O(n² max(log n, log k))), and this
    module lets the experiments exhibit that contrast against genuinely
    randomized-hard functions like inner product. *)

val discrepancy_exact : Commx_util.Bitmat.t -> float
(** Max over all rectangles of |ones − zeros| / (rows·cols), exact, by
    enumerating subsets of the smaller dimension (for each row set the
    optimal column set is chosen greedily per column — exact because
    columns contribute independently).
    @raise Invalid_argument when the smaller dimension exceeds 20. *)

val randomized_lower_bound : Commx_util.Bitmat.t -> epsilon:float -> float
(** [log2 ((1 - 2 epsilon) / disc)], clamped at 0 — bits any
    ε-error public-coin protocol must exchange. *)

val one_way_complexity : Commx_util.Bitmat.t -> int
(** Exact one-way (Alice → Bob) deterministic complexity:
    [ceil(log2 (#distinct rows))] — Alice must distinguish exactly the
    distinct rows of the truth matrix, and that is also sufficient. *)

val inner_product_matrix : m:int -> Commx_util.Bitmat.t
(** The GF(2) inner-product function on m-bit vectors — the canonical
    low-discrepancy (randomized-hard) benchmark ([m <= 8]). *)
