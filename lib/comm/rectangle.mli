(** Monochromatic rectangle analysis.

    A *rectangle* is a product [R x S] of row and column sets; it is
    1-chromatic (resp. 0-chromatic) when every entry of the truth
    matrix inside it is 1 (resp. 0).  Yao's theorem: any protocol of
    cost [c] partitions the truth matrix into at most [2^(c+2)]
    monochromatic rectangles, so [c >= log2 d(f) - 2] where [d(f)] is
    the minimum partition size.  Claims (2a)/(2b) of the paper bound
    [d(f)] from below by (number of ones) / (largest 1-rectangle), and
    this module computes both quantities — exactly by row-subset
    enumeration when the matrix is small, greedily otherwise. *)

type rect = { row_set : int array; col_set : int array }

val area : rect -> int

val is_monochromatic : Commx_util.Bitmat.t -> rect -> bool option
(** [Some true] if 1-chromatic, [Some false] if 0-chromatic, [None] if
    mixed or empty. *)

val max_one_rectangle_exact : ?min_rows:int -> Commx_util.Bitmat.t -> rect
(** Largest-area all-ones rectangle with at least [min_rows] rows
    (default 1), by enumerating subsets of the smaller dimension.
    @raise Invalid_argument when the smaller dimension exceeds 22. *)

val max_one_rectangle_greedy :
  Commx_util.Prng.t -> ?restarts:int -> Commx_util.Bitmat.t -> rect
(** Randomized greedy heuristic (row-seeded column intersection with
    local improvement); a lower bound witness on the true maximum. *)

val max_zero_rectangle_exact : ?min_rows:int -> Commx_util.Bitmat.t -> rect
(** Same, for all-zeros rectangles (complement trick). *)

val cover_lower_bound : Commx_util.Bitmat.t -> exact:bool -> float
(** log2 of the rectangle-partition lower bound
    [ones / max_one_rect + zeros / max_zero_rect]: every partition into
    monochromatic rectangles has at least that many parts, hence
    communication >= this value - 2 (Yao).  With [~exact:false] the
    greedy witnesses are used, giving a (possibly weaker but still
    valid... see note) estimate; with [~exact:true] enumeration is
    used.  Note: using a heuristic *large* rectangle makes the bound
    conservative only if it underestimates the max; since greedy
    returns a genuine rectangle it can only underestimate the maximum,
    which *overestimates* the bound — so [~exact:false] results are
    labelled estimates in the experiment tables, never certificates. *)

val count_ones_rectangle_rows :
  Commx_util.Bitmat.t -> int array -> int array
(** [count_ones_rectangle_rows m rows]: for the given row set, the
    columns all-ones on those rows (the maximal rectangle with exactly
    that row set). *)
