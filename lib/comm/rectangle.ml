module Bm = Commx_util.Bitmat
module Bv = Commx_util.Bitvec
module Prng = Commx_util.Prng
module Tel = Commx_util.Telemetry

(* Candidate rectangles examined: [2^rows] subsets for the exact
   enumerator, one per restart for the greedy search.  A function of
   the matrix shape / restart budget only, so jobs-invariant. *)
let candidates_counter = Tel.counter "rectangle.candidates"

type rect = { row_set : int array; col_set : int array }

let area r = Array.length r.row_set * Array.length r.col_set

let is_monochromatic m r =
  if area r = 0 then None
  else begin
    let v0 = Bm.get m r.row_set.(0) r.col_set.(0) in
    let mono = ref true in
    Array.iter
      (fun i ->
        Array.iter (fun j -> if Bm.get m i j <> v0 then mono := false) r.col_set)
      r.row_set;
    if !mono then Some v0 else None
  end

let count_ones_rectangle_rows m rows_sel =
  let cols = Bm.cols m in
  let acc = ref [] in
  for j = cols - 1 downto 0 do
    if Array.for_all (fun i -> Bm.get m i j) rows_sel then acc := j :: !acc
  done;
  Array.of_list !acc

(* Enumerate over subsets of the smaller dimension: for a row subset S,
   the best rectangle with that row set uses all columns that are ones
   on every row of S. *)
let max_one_rectangle_exact ?(min_rows = 1) m =
  (* The transpose speed-up enumerates the smaller dimension, but a
     min_rows constraint refers to the original rows, so it disables
     the swap. *)
  let transposed = min_rows <= 1 && Bm.rows m > Bm.cols m in
  let work = if transposed then Bm.transpose m else m in
  let nr = Bm.rows work in
  if nr > 22 then
    invalid_arg "Rectangle.max_one_rectangle_exact: dimension too large";
  Tel.add candidates_counter (1 lsl nr);
  let best = ref { row_set = [||]; col_set = [||] } in
  let best_area = ref 0 in
  (* Row bitsets as Bitvecs for fast intersection. *)
  let row_bits = Array.init nr (fun i -> Bm.row work i) in
  Commx_util.Combi.iter_subsets nr (fun subset ->
      let rows_sel = Array.of_list subset in
      let k = Array.length rows_sel in
      if k >= min_rows && k > 0 then begin
        let inter = Bv.copy row_bits.(rows_sel.(0)) in
        Array.iter (fun i -> if i <> rows_sel.(0) then Bv.and_into inter row_bits.(i)) rows_sel;
        let ncols = Bv.popcount inter in
        if k * ncols > !best_area then begin
          best_area := k * ncols;
          let cols_sel =
            Array.of_list (List.rev (Bv.fold_set_bits (fun j acc -> j :: acc) inter []))
          in
          best := { row_set = rows_sel; col_set = cols_sel }
        end
      end);
  if transposed then
    { row_set = !best.col_set; col_set = !best.row_set }
  else !best

let complement m = Bm.init (Bm.rows m) (Bm.cols m) (fun i j -> not (Bm.get m i j))

let max_zero_rectangle_exact ?min_rows m =
  max_one_rectangle_exact ?min_rows (complement m)

let max_one_rectangle_greedy g ?(restarts = 32) m =
  let nr = Bm.rows m and nc = Bm.cols m in
  if nr = 0 || nc = 0 then { row_set = [||]; col_set = [||] }
  else begin
    Tel.add candidates_counter restarts;
    let best = ref { row_set = [||]; col_set = [||] } in
    let best_area = ref 0 in
    for _ = 1 to restarts do
      (* Seed with a random one-entry, then greedily add rows in random
         order while the column intersection stays profitable. *)
      let i0 = Prng.int g nr in
      let cols0 = count_ones_rectangle_rows m [| i0 |] in
      if Array.length cols0 > 0 then begin
        let rows_sel = ref [ i0 ] in
        let cols_cur = ref cols0 in
        let order = Array.init nr (fun i -> i) in
        Prng.shuffle g order;
        Array.iter
          (fun i ->
            if not (List.mem i !rows_sel) then begin
              let surviving =
                Array.of_list
                  (List.filter
                     (fun j -> Bm.get m i j)
                     (Array.to_list !cols_cur))
              in
              let new_area = (List.length !rows_sel + 1) * Array.length surviving in
              let cur_area = List.length !rows_sel * Array.length !cols_cur in
              if new_area >= cur_area && Array.length surviving > 0 then begin
                rows_sel := i :: !rows_sel;
                cols_cur := surviving
              end
            end)
          order;
        let r = { row_set = Array.of_list !rows_sel; col_set = !cols_cur } in
        if area r > !best_area then begin
          best_area := area r;
          best := r
        end
      end
    done;
    !best
  end

let cover_lower_bound m ~exact =
  let ones = Bm.count_ones m in
  let zeros = (Bm.rows m * Bm.cols m) - ones in
  let one_rect, zero_rect =
    if exact then
      (max_one_rectangle_exact m, max_zero_rectangle_exact m)
    else begin
      let g = Prng.create 42 in
      ( max_one_rectangle_greedy g m,
        let r = max_one_rectangle_greedy g (complement m) in
        r )
    end
  in
  let parts_for count rect =
    if count = 0 then 0.0
    else if area rect = 0 then infinity
    else float_of_int count /. float_of_int (area rect)
  in
  let total = parts_for ones one_rect +. parts_for zeros zero_rect in
  if total <= 0.0 then 0.0 else log total /. log 2.0
