(** Explicit deterministic protocol trees and Yao's rectangle theorem.

    Section 2 of the paper rests on the structure theorem: a
    deterministic protocol of worst-case cost [c] partitions the truth
    matrix into at most [2^c] monochromatic rectangles (one per
    transcript), hence [c >= log2 d(f)].  This module makes that
    argument *computational*: protocol trees are first-class values,
    their execution yields transcripts, the transcript-induced partition
    of an explicit truth matrix can be extracted, and the theorem's
    conclusions (disjoint cover, monochromatic leaves, count <= 2^depth)
    are checkable functions.

    ['a] is Alice's input type, ['b] Bob's. *)

type ('a, 'b) t =
  | Answer of bool
      (** leaf: both agents know the output *)
  | Alice of ('a -> bool) * ('a, 'b) t * ('a, 'b) t
      (** Alice computes a bit from her input; [false] branch first *)
  | Bob of ('b -> bool) * ('a, 'b) t * ('a, 'b) t

val eval : ('a, 'b) t -> 'a -> 'b -> bool
(** Run the protocol. *)

val transcript : ('a, 'b) t -> 'a -> 'b -> Commx_util.Bitvec.t
(** The exchanged bits, in order. *)

val cost : ('a, 'b) t -> int
(** Worst-case cost = tree depth. *)

val leaves : ('a, 'b) t -> int

val correct_on :
  ('a, 'b) t -> spec:('a -> 'b -> bool) -> 'a list -> 'b list -> bool
(** Exhaustive correctness over the rectangle. *)

val alice_sends_all : bits:int -> ('a -> Commx_util.Bitvec.t) -> ('a, 'b * (Commx_util.Bitvec.t -> bool)) t
(** The generic one-way tree: Alice transmits [bits] bits of her
    encoded input; Bob's input carries its own decision function from
    the received encoding.  (Provided mostly for tests; arbitrary trees
    are built with the constructors.) *)

type ('a, 'b) induced = {
  rectangles : (int list * int list) list;
      (** row-index set and column-index set per reachable transcript *)
  monochromatic : bool;  (** every rectangle monochromatic in the truth matrix *)
  disjoint_cover : bool;  (** the rectangles partition the full matrix *)
  count : int;
}

val induced_partition :
  ('a, 'b) t -> ('a, 'b) Truth_matrix.t -> ('a, 'b) induced
(** Group the truth matrix's (row, col) pairs by protocol transcript
    and check Yao's structure theorem on the result: transcripts induce
    combinatorial rectangles; if the protocol is correct they are
    monochromatic; their number is at most [2^cost]. *)

val yao_bound_holds : ('a, 'b) t -> ('a, 'b) Truth_matrix.t -> bool
(** [count <= 2^cost] and rectangles are disjoint — the inequality
    behind "communication >= log2 d(f)". *)
