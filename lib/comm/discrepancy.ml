module Bm = Commx_util.Bitmat

let discrepancy_exact m =
  let transposed = Bm.rows m > Bm.cols m in
  let work = if transposed then Bm.transpose m else m in
  let nr = Bm.rows work and nc = Bm.cols work in
  if nr > 20 then invalid_arg "Discrepancy.discrepancy_exact: too large";
  if nr = 0 || nc = 0 then 0.0
  else begin
    (* For a fixed row set, column j contributes (ones_j - zeros_j)
       within those rows; the rectangle maximizing |ones - zeros|
       takes either all positive-contribution columns or all
       negative ones.  Row sets are walked in binary-reflected Gray
       order so each step toggles exactly one row: the per-column
       signed counts and their positive/negative partial sums update
       in O(nc) int ops per subset, which is what lets the engine's
       lower-bound portfolio afford the full 2^20 sweep at the
       20-side cap. *)
    let rowbits =
      Array.init nr (fun i ->
          let b = ref 0 in
          for j = 0 to nc - 1 do
            if Bm.get work i j then b := !b lor (1 lsl j)
          done;
          !b)
    in
    let cnt = Array.make nc 0 in
    let pos = ref 0 and neg = ref 0 in
    let best = ref 0 in
    let mask = ref 0 in
    for k = 1 to (1 lsl nr) - 1 do
      (* g(k) = k lxor (k lsr 1); g(k-1) -> g(k) flips the bit at the
         position of k's lowest set bit. *)
      let bit = k land -k in
      let i =
        let rec tz b acc = if b land 1 = 1 then acc else tz (b lsr 1) (acc + 1) in
        tz bit 0
      in
      let adding = !mask land bit = 0 in
      mask := !mask lxor bit;
      let rb = rowbits.(i) in
      for j = 0 to nc - 1 do
        let c = cnt.(j) in
        if c > 0 then pos := !pos - c else neg := !neg - c;
        let d = if rb land (1 lsl j) <> 0 then 1 else -1 in
        let c = if adding then c + d else c - d in
        cnt.(j) <- c;
        if c > 0 then pos := !pos + c else neg := !neg + c
      done;
      if !pos > !best then best := !pos;
      if - !neg > !best then best := - !neg
    done;
    float_of_int !best /. float_of_int (nr * nc)
  end

let randomized_lower_bound m ~epsilon =
  if epsilon < 0.0 || epsilon >= 0.5 then
    invalid_arg "Discrepancy.randomized_lower_bound";
  let disc = discrepancy_exact m in
  if disc <= 0.0 then infinity
  else Float.max 0.0 (log ((1.0 -. (2.0 *. epsilon)) /. disc) /. log 2.0)

let one_way_complexity m =
  let seen = Hashtbl.create 64 in
  for i = 0 to Bm.rows m - 1 do
    Hashtbl.replace seen (Commx_util.Bitvec.to_string (Bm.row m i)) ()
  done;
  let distinct = Hashtbl.length seen in
  if distinct <= 1 then 0
  else int_of_float (ceil (log (float_of_int distinct) /. log 2.0))

let inner_product_matrix ~m =
  if m > 8 then invalid_arg "Discrepancy.inner_product_matrix: m too large";
  let n = 1 lsl m in
  Bm.init n n (fun x y ->
      let rec parity v acc = if v = 0 then acc else parity (v lsr 1) (acc lxor (v land 1)) in
      parity (x land y) 0 = 1)
