module Bm = Commx_util.Bitmat

let discrepancy_exact m =
  let transposed = Bm.rows m > Bm.cols m in
  let work = if transposed then Bm.transpose m else m in
  let nr = Bm.rows work and nc = Bm.cols work in
  if nr > 20 then invalid_arg "Discrepancy.discrepancy_exact: too large";
  if nr = 0 || nc = 0 then 0.0
  else begin
    let best = ref 0 in
    (* For a fixed row set, column j contributes
       (ones_j - zeros_j) within those rows; the rectangle maximizing
       |ones - zeros| takes either all positive-contribution columns or
       all negative ones. *)
    Commx_util.Combi.iter_subsets nr (fun rows_sel ->
        match rows_sel with
        | [] -> ()
        | rows_sel ->
            let pos = ref 0 and neg = ref 0 in
            for j = 0 to nc - 1 do
              let c = ref 0 in
              List.iter
                (fun i -> if Bm.get work i j then incr c else decr c)
                rows_sel;
              if !c > 0 then pos := !pos + !c
              else neg := !neg + !c
            done;
            best := max !best (max !pos (- !neg)));
    float_of_int !best /. float_of_int (nr * nc)
  end

let randomized_lower_bound m ~epsilon =
  if epsilon < 0.0 || epsilon >= 0.5 then
    invalid_arg "Discrepancy.randomized_lower_bound";
  let disc = discrepancy_exact m in
  if disc <= 0.0 then infinity
  else Float.max 0.0 (log ((1.0 -. (2.0 *. epsilon)) /. disc) /. log 2.0)

let one_way_complexity m =
  let seen = Hashtbl.create 64 in
  for i = 0 to Bm.rows m - 1 do
    Hashtbl.replace seen (Commx_util.Bitvec.to_string (Bm.row m i)) ()
  done;
  let distinct = Hashtbl.length seen in
  if distinct <= 1 then 0
  else int_of_float (ceil (log (float_of_int distinct) /. log 2.0))

let inner_product_matrix ~m =
  if m > 8 then invalid_arg "Discrepancy.inner_product_matrix: m too large";
  let n = 1 lsl m in
  Bm.init n n (fun x y ->
      let rec parity v acc = if v = 0 then acc else parity (v lsr 1) (acc lxor (v land 1)) in
      parity (x land y) 0 = 1)
