(** Bit-exact two-party protocol execution.

    A protocol is a function of Alice's input, Bob's input, and a
    {!channel} through which *all* inter-agent information must flow.
    The channel counts every bit.  The discipline — each agent computes
    only from its own input plus what crossed the channel — is enforced
    by code structure in the concrete protocols (each agent's
    computation is a closure over its own half only); the channel makes
    the cost accounting exact and tamper-evident (a protocol cannot
    consult the other input without sending it).

    Worst-case cost over an input rectangle and exhaustive correctness
    checks are provided for small instance spaces, mirroring how the
    paper's quantities are defined (maximum over all input
    instances). *)

type channel

type ('a, 'b) t = {
  name : string;
  run : channel -> 'a -> 'b -> bool;
}

val send : channel -> Commx_util.Bitvec.t -> Commx_util.Bitvec.t
(** Transfer a message: counts its bits and hands it to the receiving
    side.  Returns the message (the receiver's copy). *)

val send_bit : channel -> bool -> bool
val send_int : channel -> width:int -> int -> int
val send_bigint : channel -> width:int -> Commx_bigint.Bigint.t -> Commx_bigint.Bigint.t

val bits_sent : channel -> int
(** Bits through the channel so far (for use inside protocols that
    adapt to cost). *)

val execute : ('a, 'b) t -> 'a -> 'b -> bool * int
(** Run on one input pair; returns (output, bits exchanged). *)

val execute_fn : (channel -> 'a -> 'b -> 'r) -> 'a -> 'b -> 'r * int
(** Like {!execute} for protocols with non-boolean outputs (the paper's
    multi-output problems: computing the rank value, the determinant,
    decomposition factors).  The closure receives a fresh counting
    channel. *)

val worst_case_cost : ('a, 'b) t -> 'a list -> 'b list -> int
(** Maximum bits over the input rectangle [as x bs].
    @raise Invalid_argument if either input list is empty (a maximum
    over an empty rectangle would read as a zero-cost protocol). *)

val check_correct :
  ('a, 'b) t -> spec:('a -> 'b -> bool) -> 'a list -> 'b list ->
  (('a * 'b) * bool * bool) option
(** First counterexample [(input, got, want)] on the rectangle, if
    any. *)

val error_rate :
  ('a, 'b) t -> spec:('a -> 'b -> bool) -> ('a * 'b) list -> float
(** Fraction of listed input pairs the protocol gets wrong. *)
