(** Explicit truth matrices of two-argument boolean functions.

    Fix an input partition; a decision problem becomes a function
    [f : X x Y -> bool] where [X] is the set of Agent-1 input halves
    and [Y] the set of Agent-2 halves.  For enumerable [X] and [Y] the
    function is a boolean matrix — the object all of Yao's lower-bound
    machinery (Section 2 of the paper) operates on.  Rows are Agent-1
    instances, columns Agent-2 instances. *)

type ('a, 'b) t = {
  row_args : 'a array;
  col_args : 'b array;
  values : Commx_util.Bitmat.t;
}

val build : 'a list -> 'b list -> ('a -> 'b -> bool) -> ('a, 'b) t

val rows : ('a, 'b) t -> int
val cols : ('a, 'b) t -> int

val get : ('a, 'b) t -> int -> int -> bool

val count_ones : ('a, 'b) t -> int
val count_zeros : ('a, 'b) t -> int

val ones_per_row : ('a, 'b) t -> int array
val ones_per_col : ('a, 'b) t -> int array

val density : ('a, 'b) t -> float
(** Fraction of one entries. *)

val to_bitmat : ('a, 'b) t -> Commx_util.Bitmat.t
(** A copy of the underlying boolean matrix. *)

val restrict : ('a, 'b) t -> int array -> int array -> ('a, 'b) t
(** Sub-truth-matrix on the given row/column indices — the paper's
    "carefully selecting a sufficiently large submatrix" step. *)

val map_labels : ('a -> 'c) -> ('b -> 'd) -> ('a, 'b) t -> ('c, 'd) t
