(** Fixed-width binary encodings.

    Communication cost is measured in *bits*, so every message a
    protocol sends must have a well-defined width known to both
    agents.  This module provides the canonical encodings used by the
    concrete protocols: unsigned integers in a known range, k-bit
    matrix entries (the paper's input format restricts entries to
    [\[0, 2^k - 1\]]), and whole matrix halves. *)

val bits_for_range : int -> int
(** [bits_for_range card]: bits needed to address [card] distinct
    values; 0 for [card <= 1].  @raise Invalid_argument for
    non-positive cardinality. *)

val encode_int : width:int -> int -> Commx_util.Bitvec.t
(** Little-endian fixed-width encoding.
    @raise Invalid_argument when the value needs more than [width]
    bits or is negative. *)

val decode_int : Commx_util.Bitvec.t -> int
(** Inverse of {!encode_int} (width from the vector length,
    <= 62 bits). *)

val encode_bigint : width:int -> Commx_bigint.Bigint.t -> Commx_util.Bitvec.t
(** Fixed-width encoding of a non-negative bignum. *)

val decode_bigint : Commx_util.Bitvec.t -> Commx_bigint.Bigint.t

val encode_entries :
  k:int -> Commx_bigint.Bigint.t array -> Commx_util.Bitvec.t
(** Concatenated [k]-bit encodings of entries in [\[0, 2^k)]. *)

val decode_entries : k:int -> Commx_util.Bitvec.t -> Commx_bigint.Bigint.t array

val matrix_bits : n:int -> k:int -> int
(** Total encoding length of an [n x n] matrix of [k]-bit entries. *)
