(** Exact deterministic communication complexity of tiny functions.

    For truth matrices small enough to enumerate, the deterministic
    communication complexity itself — the min over ALL protocol trees
    of the worst-case depth, the quantity Theorem 1.1 is about — can
    be computed exactly by game-tree search: a submatrix costs 0 if
    monochromatic, otherwise [1 + min] over all ways one agent can
    split its side, of the [max] cost of the two parts.

    {2 The engine}

    The search core is engineered for the exponential workload
    (exhaustive protocol search is inherently brute force):

    - {b Packed subproblem keys.}  A subproblem is a (row set, column
      set) pair over the canonical matrix, packed into one native int
      — rows in the low {!max_side} bits, columns above them — so the
      memo key is a single word.
    - {b Transposition table.}  Memoization uses
      {!Commx_util.Txtable}: open addressing, linear probing,
      power-of-two capacity, optional memory budget with
      replace-on-collision.  Entries are fail-soft: either the exact
      cost of the subproblem or a certified lower bound discovered by
      a bounded search.
    - {b Canonicalization.}  Both the input matrix and every
      subproblem are canonicalized before lookup: duplicate rows and
      columns collapse to their lowest-index representative
      (CC-invariant: an agent can treat equal inputs identically), and
      the input is 0/1-complement-normalized to a zero-majority matrix
      (CC-invariant: leaf colors swap).  Structured instances (EQ, GT,
      threshold-like truth matrices) collapse massively.
    - {b Cost pruning.}  Alpha-beta–style: every node seeds its
      incumbent with the trivial upper bound (binary-subdivide the
      smaller side, one answer bit), a split's second child is skipped
      as soon as [1 + first child] meets the incumbent, and children
      are searched under the incumbent as a cost bound.  The root
      incumbent is additionally checked against a certified
      lower-bound {e portfolio} ({!lower_bound_portfolio}): GF(2)
      ranks + fooling sets ({!Rank_bound}, {!Fooling}), rational
      log-rank, and discrepancy ({!Discrepancy}) — so searches whose
      trivial protocol is provably optimal return without expanding a
      node, and telemetry records which bound won each root.
    - {b Word-level inner loop.}  Rows and columns of the canonical
      matrix live as packed native ints
      ({!Commx_util.Bitmat.packed_rows}), so monochromaticity,
      duplicate collapse and popcounts are word ops — the loop touches
      no per-bit accessor.

    Every optimization is independently toggleable ({!config}) for
    ablation benchmarks (bench B7) and for property tests that the
    toggles are CC-invariant. *)

val max_side : int
(** Hard cap (20) on rows and on columns of the {e canonical} truth
    matrix — duplicate rows/columns of the input do not count against
    it.  [12x12] dense instances are comfortable; beyond that cost
    grows exponentially with the post-collapse dimensions, and
    18x18–20x20 instances are only reachable when the lower-bound
    portfolio prunes at (or near) the root. *)

exception
  Too_large of { rows : int; cols : int; limit : int }
    (** Raised when the canonical dimensions exceed [limit]
        (= {!max_side}); [rows] and [cols] are the {e offending}
        post-canonicalization dimensions, not the raw input shape.  A
        printer is registered, so the exception formats itself
        legibly. *)

exception
  Timed_out of { lower : int; upper : int; nodes : int }
    (** Raised by {!search} when its [?cancel] token fires mid-search:
        the cooperative poll inside the node-expansion loop observed
        the cancellation.  [lower] is the best {e certified} lower
        bound at that moment — the rank/fooling root bound, improved by
        a fail-soft lower-bound root entry if the (warm) transposition
        table holds one — [upper] the trivial upper bound, [nodes] the
        expansions spent.  The partial work is not wasted: entries
        learned before the deadline stay in a caller-owned [?table], so
        a repeat attempt resumes deeper.  A printer is registered. *)

type config = {
  table : bool;  (** memoize subproblems in the transposition table *)
  canonicalize : bool;
      (** collapse duplicate rows/columns per subproblem and
          complement-normalize the input *)
  prune : bool;
      (** seed incumbents with the trivial upper bound, bound child
          searches, cut second children, certify the root lower
          bound *)
  portfolio : bool;
      (** widen the certified root bound from rank/fooling alone to
          the full lower-bound portfolio ({!lower_bound_portfolio}):
          rational log-rank and discrepancy too, evaluated
          cheapest-first with early exit once the trivial upper bound
          is matched.  Only meaningful with [prune]. *)
  share_incumbent : bool;
      (** deterministic pooled mode only: exchange group incumbents at
          the round barriers, so one group's improvement bounds every
          other group's remaining moves.  [false] reproduces the PR 4
          isolated-incumbent behavior node-for-node — the B7 ablation
          baseline.  Stealing mode always shares (that is its point);
          sequential searches have a single incumbent either way. *)
  table_budget : int option;
      (** max transposition-table entries (power-of-two rounded);
          [None] = grow unbounded *)
}

val default_config : config
(** Everything on, unbounded table. *)

val reference_config : config
(** Everything off: the naive memo-free exhaustive recursion, kept as
    the oracle for CC-invariance property tests.  Only viable for
    matrices up to ~8x8. *)

type stats = {
  nodes : int;  (** interior search nodes expanded (not table hits) *)
  table_hits : int;
  table_misses : int;
  table_evictions : int;
  canon_rows : int;  (** canonical row count actually searched *)
  canon_cols : int;
  root_lower : int;  (** certified root lower bound (0 if unused) *)
  root_upper : int;  (** trivial upper bound on the canonical matrix *)
}

val key_tag_bits : int
(** Bits of tag space above the packed [(rmask, cmask)] in a
    transposition-table key (22). *)

val max_key_tag : int
(** Largest admissible [?key_tag]: [2^key_tag_bits - 1]. *)

val search :
  ?config:config ->
  ?pool:Commx_util.Pool.t ->
  ?table:Commx_util.Txtable.t ->
  ?key_tag:int ->
  ?cancel:Commx_util.Pool.Token.t ->
  ?deterministic:bool ->
  Commx_util.Bitmat.t ->
  int * stats
(** [search m] is the exact deterministic CC of [m] (in bits, standard
    model: leaf rectangles monochromatic, both agents know the answer)
    together with search statistics.

    With [?pool], large searches fan their root moves out over the
    pool in one of two modes:

    - {b Stealing} (default, [?deterministic:false]): one deque of
      root moves per pool worker, idle workers steal blocks from busy
      ones, and all workers share an {e atomic incumbent} — an
      improvement found anywhere tightens every other worker's pruning
      window on its next move.  Each worker keeps one
      transposition-table segment alive for the whole search, so
      subtree results warm across all the root moves that worker
      executes, own or stolen.  The returned {e value} is
      schedule-invariant (bit-identical at any [--jobs], asserted in
      CI); node and table {e statistics} depend on timing, so they
      feed the separate [exact_cc.steal_nodes] telemetry counter and
      leave the jobs-invariant [exact_cc.nodes]/hit/miss counters
      untouched.

    - {b Deterministic} ([?deterministic:true]): the root moves split
      into a {e fixed} number of strided groups, each with its own
      table segment and incumbent, which exchange incumbents only at
      fixed synchronization barriers — so one group's improvement
      still bounds the others (the PR 10 fix for pooled search pruning
      less than sequential), but the work each group performs is a
      pure function of the move list, never of scheduling: the value
      {e and} the node counters are bit-identical at any pool job
      count.  This is the mode the perf gate and the E14 primary
      columns run.

    Statistics differ between pooled and unpooled searches (segments
    cannot share entries with the sequential table).

    With [?table], memoization goes through the {e caller-owned}
    table instead of a fresh private one (overriding [config.table]),
    and subproblem keys are salted with [?key_tag] (default 0) shifted
    above the mask bits: give each distinct canonical matrix its own
    tag (see {!canonical_key}) and one long-lived table serves many
    matrices without key collisions — this is how the serve daemon
    keeps its transposition table warm across requests.  A search
    against a warm table finds its root entry immediately and expands
    zero nodes.  The reported [table_*] statistics are deltas over
    this search.  Since {!Commx_util.Txtable} is not thread-safe, a
    shared table must be used from one domain at a time, and [?table]
    forces the sequential search path even when [?pool] is given.

    With [?cancel], the search polls the {!Commx_util.Pool.Token}
    every 1024 subproblem {e visits} — table hits included, so a
    hit-dominated search against a warm table still observes its
    deadline — and raises {!Timed_out} when the token fires; a token
    with a [~deadline] gives a per-request time budget at
    sub-millisecond granularity on dense boards.  If the warm table
    already holds an {e exact} root entry, the answer won the race and
    is returned normally.  Cancellation of a pooled search loses
    per-group node counts ([nodes = 0] in the exception) but keeps the
    certified bounds.

    Search statistics are also accumulated into the [exact_cc.*]
    {!Commx_util.Telemetry} counters; a timed-out search publishes its
    partial statistics before raising.
    @raise Too_large when the canonical matrix exceeds {!max_side}.
    @raise Timed_out when [?cancel] fires before the value is proved.
    @raise Invalid_argument when [key_tag] is outside
    [\[0, max_key_tag\]]. *)

val complexity : Commx_util.Bitmat.t -> int
(** [search] with {!default_config}, value only.
    @raise Too_large when the canonical matrix exceeds {!max_side}. *)

val complexity_tm : ('a, 'b) Truth_matrix.t -> int

val lower_bound_portfolio : Commx_util.Bitmat.t -> (string * int) list
(** Every certified lower bound the engine's root check draws from,
    each evaluated on the canonical matrix and each individually
    [<= exact CC] (property [exact_cc.lb_portfolio_sound]):
    [("rank_fooling", GF(2)-rank/fooling-set bound)],
    [("log_rank", rational log-rank of the matrix and complement)],
    [("discrepancy", log2 (1/disc) from {!Discrepancy})].  Unlike
    {!search} this puts no cheapest-first early exit in the way — all
    members are computed — so it is the bench/experiment view of the
    portfolio.  Never raises on oversize boards, but discrepancy and
    rational elimination grow exponentially/cubically with size; keep
    it to boards the engine itself admits. *)

val canonical_dims : Commx_util.Bitmat.t -> int * int
(** [(rows, cols)] of the canonical matrix — the dimensions
    {!Too_large} is judged on — without searching.  Cheap (one
    duplicate-collapse pass); the serve daemon's admission check uses
    it to reject oversize [exact_cc] requests before they reach a
    worker.  Never raises. *)

val canonical_key : Commx_util.Bitmat.t -> string
(** Content address of the canonical board: dimensions plus row bits
    of the matrix {e after} duplicate collapse and complement
    normalization.  Two inputs share a key exactly when the engine
    would search the same canonical matrix, so structurally-equal
    queries alias — the serve daemon keys its result cache and its
    per-matrix table tags on this.  Never raises, even above
    {!max_side}. *)

val optimal_is_sandwiched : Commx_util.Bitmat.t -> bool
(** Checks [certified lower bounds <= exact CC <= trivial upper bound]
    — the consistency statement tying the whole bound machinery
    together (used by tests). *)
