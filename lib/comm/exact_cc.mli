(** Exact deterministic communication complexity of tiny functions.

    For truth matrices small enough to enumerate, the deterministic
    communication complexity itself — the min over ALL protocol trees
    of the worst-case depth, the quantity Theorem 1.1 is about — can be
    computed exactly by game-tree search: a submatrix costs 0 if
    monochromatic, otherwise [1 + min] over all ways one agent can
    split its side, of the [max] cost of the two parts.  Memoization is
    over (row-set, column-set) bitmasks.

    This turns the paper's object of study into something we can
    measure directly at small scale and compare against every
    lower-bound certificate (cover, log-rank, fooling) and the trivial
    upper bound — experiment E14. *)

val complexity : Commx_util.Bitmat.t -> int
(** Exact deterministic CC (in bits) of the boolean function given by
    the truth matrix, in the standard model (leaf rectangles must be
    monochromatic, so both agents know the answer).
    @raise Invalid_argument when rows or columns exceed 12 (the search
    is exponential). *)

val complexity_tm : ('a, 'b) Truth_matrix.t -> int

val optimal_is_sandwiched : Commx_util.Bitmat.t -> bool
(** Checks [certified lower bounds <= exact CC <= trivial upper bound]
    — the consistency statement tying the whole bound machinery
    together (used by tests). *)
