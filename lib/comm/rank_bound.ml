module Bm = Commx_util.Bitmat
module Qm = Commx_linalg.Qmatrix
module Q = Commx_bigint.Rational

let gf2_rank = Bm.rank

let rational_rank m =
  let qm =
    Qm.init (Bm.rows m) (Bm.cols m) (fun i j ->
        if Bm.get m i j then Q.one else Q.zero)
  in
  Qm.rank qm

let log_rank_bound m =
  let r = rational_rank m in
  if r <= 0 then 0.0 else log (float_of_int r) /. log 2.0

type report = {
  n_rows : int;
  n_cols : int;
  ones : int;
  gf2 : int;
  rational : int;
  log_rank : float;
  fooling : int;
  fooling_bits : float;
  cover_bits : float;
  trivial_upper : float;
}

let analyze tm ~exact_rect =
  let m = Truth_matrix.to_bitmat tm in
  let g = Commx_util.Prng.create 1234 in
  let fooling_set = Fooling.greedy_randomized g tm in
  let gf2 = gf2_rank m in
  let rational = rational_rank m in
  {
    n_rows = Bm.rows m;
    n_cols = Bm.cols m;
    ones = Bm.count_ones m;
    gf2;
    rational;
    log_rank = (if rational <= 0 then 0.0 else log (float_of_int rational) /. log 2.0);
    fooling = List.length fooling_set;
    fooling_bits = Fooling.lower_bound_bits fooling_set;
    cover_bits = Rectangle.cover_lower_bound m ~exact:exact_rect;
    trivial_upper =
      log (float_of_int (max 1 (min (Bm.rows m) (Bm.cols m)))) /. log 2.0;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>truth matrix %dx%d, %d ones@,\
     rank: GF(2)=%d, Q=%d (log-rank bound %.2f bits)@,\
     fooling set: %d (%.2f bits)@,\
     rectangle-cover bound: %.2f bits@,\
     trivial upper bound: %.2f bits@]"
    r.n_rows r.n_cols r.ones r.gf2 r.rational r.log_rank r.fooling
    r.fooling_bits r.cover_bits r.trivial_upper
