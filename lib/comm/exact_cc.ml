module Bm = Commx_util.Bitmat
module Bv = Commx_util.Bitvec
module Tx = Commx_util.Txtable
module Tel = Commx_util.Telemetry
module Pool = Commx_util.Pool

(* Submatrices are (row bitmask, column bitmask) pairs over the
   canonical matrix.  The recursion:

     C(R, S) = 0                         if R x S is monochromatic
     C(R, S) = 1 + min( min over proper nonempty R0 < R of
                          max (C(R0, S), C(R \ R0, S)),
                        min over proper nonempty S0 < S of
                          max (C(R, S0), C(R, S \ S0)) )

   A split by an agent is an arbitrary function of that agent's input,
   i.e. an arbitrary subset.  Splits (R0, R1) and (R1, R0) are the same
   protocol bit inverted, so we halve the enumeration by fixing the
   lowest set bit into R0.

   On top of the recursion sit four independent accelerations (all
   toggleable through [config], see the interface):

   - packed keys: a subproblem is [rmask lor (cmask lsl max_side)],
     one native int;
   - a transposition table ([Commx_util.Txtable]) with fail-soft
     entries: value [v lsl 1 lor 1] means "exactly v", value
     [v lsl 1] means "certified >= v" (learned from a bounded search
     that failed high);
   - canonicalization: duplicate rows/columns collapse to their
     lowest-index representative before lookup (an agent may treat
     equal inputs identically, so CC is invariant), and the input is
     complement-normalized (leaf colors swap, depth is unchanged);
   - cost pruning: every node seeds its incumbent with the trivial
     upper bound [ceil log2 (min side) + 1] (binary-subdivide the
     smaller side; one answer split), children are searched under
     [incumbent - 1] as a bound, the second child is skipped when the
     first already meets the incumbent, and the loop stops when the
     incumbent hits the node lower bound.  The root lower bound is
     certified from GF(2) ranks and a greedy fooling set: a depth-C
     protocol has at most 2^C leaves, at least [max(rank M, |fooling|)]
     of which are 1-leaves and at least [rank (complement M)] 0-leaves.

   Fail-soft invariant of [cc ... bound]: the result is
   [min (exact, bound)] — in particular any result [< bound] is exact.
   Entries of either kind stay valid across callers with different
   bounds, so the table is shared by the whole search. *)

let max_side = 20

(* Packed (rmask, cmask) keys occupy [2 * max_side] = 40 bits; a
   caller-supplied tag is shifted above them, and Txtable keys must
   stay within 62 bits — leaving 22 bits of tag space. *)
let key_tag_bits = 62 - (2 * max_side)
let max_key_tag = (1 lsl key_tag_bits) - 1

exception Too_large of { rows : int; cols : int; limit : int }

exception Timed_out of { lower : int; upper : int; nodes : int }

let () =
  Printexc.register_printer (function
    | Too_large { rows; cols; limit } ->
        Some
          (Printf.sprintf
             "Exact_cc.Too_large: truth matrix is %dx%d after \
              canonicalization (cap %dx%d)"
             rows cols limit limit)
    | Timed_out { lower; upper; nodes } ->
        Some
          (Printf.sprintf
             "Exact_cc.Timed_out: search cancelled after %d nodes (certified \
              %d <= CC <= %d)"
             nodes lower upper)
    | _ -> None)

type config = {
  table : bool;
  canonicalize : bool;
  prune : bool;
  portfolio : bool;
  share_incumbent : bool;
  table_budget : int option;
}

let default_config =
  { table = true; canonicalize = true; prune = true; portfolio = true;
    share_incumbent = true; table_budget = None }

let reference_config =
  { table = false; canonicalize = false; prune = false; portfolio = false;
    share_incumbent = false; table_budget = None }

type stats = {
  nodes : int;
  table_hits : int;
  table_misses : int;
  table_evictions : int;
  canon_rows : int;
  canon_cols : int;
  root_lower : int;
  root_upper : int;
}

let c_searches = Tel.counter "exact_cc.searches"
let c_nodes = Tel.counter "exact_cc.nodes"
let c_hits = Tel.counter "exact_cc.table_hits"
let c_misses = Tel.counter "exact_cc.table_misses"
let c_evictions = Tel.counter "exact_cc.table_evictions"
let c_root_pruned = Tel.counter "exact_cc.root_pruned"

(* Node expansions of work-stealing searches are schedule-dependent,
   so they accumulate into their own counter: [exact_cc.nodes] stays
   strictly jobs-invariant (sequential + deterministic-mode searches
   only) and remains the one the perf gate compares. *)
let c_steal_nodes = Tel.counter "exact_cc.steal_nodes"

(* Which root lower bound won (ties resolved in evaluation order). *)
let c_lb_rank = Tel.counter "exact_cc.lb_win|bound=rank_fooling"
let c_lb_logrank = Tel.counter "exact_cc.lb_win|bound=log_rank"
let c_lb_disc = Tel.counter "exact_cc.lb_win|bound=discrepancy"

(* Smallest k with 2^k >= n (n >= 1). *)
let ceil_log2 n =
  let k = ref 0 in
  while 1 lsl !k < n do incr k done;
  !k

(* A bound larger than any reachable cost, used when pruning is off so
   the bounded search degenerates to the plain exhaustive recursion. *)
let no_bound = 1 lsl 20

(* {2 Input canonicalization} *)

(* First occurrences of distinct rows (by full content), in order. *)
let distinct_rows m =
  let seen = Hashtbl.create 64 in
  let kept = ref [] in
  for i = 0 to Bm.rows m - 1 do
    let key = Bv.to_string (Bm.row m i) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      kept := i :: !kept
    end
  done;
  Array.of_list (List.rev !kept)

(* Collapse duplicate rows, then duplicate columns.  One pass each
   suffices: a removed line is a copy of a kept one, so removing it
   cannot make two distinct lines of the other kind equal. *)
let collapse_duplicates m =
  let rs = distinct_rows m in
  let m =
    if Array.length rs = Bm.rows m then m
    else Bm.submatrix m rs (Array.init (Bm.cols m) Fun.id)
  in
  let cs = distinct_rows (Bm.transpose m) in
  if Array.length cs = Bm.cols m then m
  else Bm.submatrix m (Array.init (Bm.rows m) Fun.id) cs

let complement_normalize m =
  let cells = Bm.rows m * Bm.cols m in
  if 2 * Bm.count_ones m > cells then Bm.complement m else m

(* {2 The search core} *)

type ctx = {
  rw : int array;  (* packed rows of the canonical matrix *)
  cw : int array;  (* packed columns *)
  cfg : config;
  tbl : Tx.t option;
  key_base : int;  (* key tag pre-shifted above the mask bits *)
  stats0 : Tx.stats option;  (* table counters at ctx creation *)
  buf : int array;  (* scratch for duplicate collapse, length max_side *)
  cancel : Pool.Token.t option;
  mutable nodes : int;
  mutable visits : int;  (* node entries, table hits included *)
}

(* [?ext] plugs in a caller-owned table (the serve daemon's warm
   per-domain segment) tagged so this matrix's subproblem keys cannot
   collide with another matrix's: entries learned now are found again
   by any later search of the same canonical matrix under the same
   tag.  Without it the table is private to this search, as before. *)
let mk_ctx ?ext ?cancel cfg rw cw =
  let tbl, key_base =
    match ext with
    | Some (t, tag) -> (Some t, tag lsl (2 * max_side))
    | None ->
        ( (if not cfg.table then None
           else
             Some
               (match cfg.table_budget with
               | None -> Tx.create ()
               | Some b -> Tx.create ~budget_entries:b ())),
          0 )
  in
  {
    rw;
    cw;
    cfg;
    tbl;
    key_base;
    stats0 = Option.map Tx.stats tbl;
    buf = Array.make max_side 0;
    cancel;
    nodes = 0;
    visits = 0;
  }

(* Cooperative cancellation: poll the token every 1024 node visits.
   Visits count table hits as well as expansions — a warm search
   serves long streaks of hits without expanding anything, which used
   to starve deadline polling entirely (the old counter advanced only
   on expansions).  At 1024 the granularity stays well under a
   millisecond on dense boards while the check costs one atomic load
   plus an occasional clock read. *)
let poll_interval_mask = 1023

let poll_cancel ctx =
  match ctx.cancel with
  | Some tok
    when ctx.visits land poll_interval_mask = 0 && Pool.Token.cancelled tok ->
      raise Pool.Cancelled
  | _ -> ()

(* Collapse duplicate rows of the (rmask, cmask) sub-board, then
   duplicate columns against the surviving rows.  As at input level,
   one pass each reaches the fixpoint. *)
let canon_masks ctx rmask cmask =
  let buf = ctx.buf in
  let rmask' = ref 0 and n = ref 0 in
  let rem = ref rmask in
  while !rem <> 0 do
    let low = !rem land - !rem in
    let key = ctx.rw.(Bv.popcount_int (low - 1)) land cmask in
    let dup = ref false in
    for k = 0 to !n - 1 do
      if buf.(k) = key then dup := true
    done;
    if not !dup then begin
      buf.(!n) <- key;
      incr n;
      rmask' := !rmask' lor low
    end;
    rem := !rem lxor low
  done;
  let rmask' = !rmask' in
  let cmask' = ref 0 and n = ref 0 in
  let rem = ref cmask in
  while !rem <> 0 do
    let low = !rem land - !rem in
    let key = ctx.cw.(Bv.popcount_int (low - 1)) land rmask' in
    let dup = ref false in
    for k = 0 to !n - 1 do
      if buf.(k) = key then dup := true
    done;
    if not !dup then begin
      buf.(!n) <- key;
      incr n;
      cmask' := !cmask' lor low
    end;
    rem := !rem lxor low
  done;
  (rmask', !cmask')

(* [cc ctx ~lb rmask cmask bound] = [min (exact CC of the sub-board,
   bound)].  [lb] is a certified lower bound for this node (1 for
   anything non-monochromatic; the root gets the rank/fooling bound). *)
let rec cc ctx ~lb rmask cmask bound =
  let rmask, cmask =
    if ctx.cfg.canonicalize then canon_masks ctx rmask cmask
    else (rmask, cmask)
  in
  if Bm.mono_masked ctx.rw ~rmask ~cmask >= 0 then 0
  else if bound <= 1 then bound
  else begin
    ctx.visits <- ctx.visits + 1;
    poll_cancel ctx;
    let key = ctx.key_base lor rmask lor (cmask lsl max_side) in
    let cached_exact = ref (-1) in
    let cached_lb = ref 1 in
    (match ctx.tbl with
    | None -> ()
    | Some tbl ->
        let c = Tx.find tbl key in
        if c >= 0 then
          if c land 1 = 1 then cached_exact := c lsr 1
          else cached_lb := max !cached_lb (c lsr 1));
    if !cached_exact >= 0 then min !cached_exact bound
    else if !cached_lb >= bound then bound
    else begin
      ctx.nodes <- ctx.nodes + 1;
      let prune = ctx.cfg.prune in
      let node_lb = max lb !cached_lb in
      let bound_eff = if prune then bound else no_bound in
      let best =
        ref
          (if prune then
             let pr = Bv.popcount_int rmask and pc = Bv.popcount_int cmask in
             min bound (ceil_log2 (min pr pc) + 1)
           else no_bound)
      in
      let low_r = rmask land -rmask in
      let sub = ref rmask in
      while !sub > 0 && ((not prune) || !best > node_lb) do
        if !sub <> rmask && !sub land low_r <> 0 then
          eval_split ctx best !sub cmask (rmask lxor !sub) cmask;
        sub := (!sub - 1) land rmask
      done;
      let low_c = cmask land -cmask in
      let sub = ref cmask in
      while !sub > 0 && ((not prune) || !best > node_lb) do
        if !sub <> cmask && !sub land low_c <> 0 then
          eval_split ctx best rmask !sub rmask (cmask lxor !sub);
        sub := (!sub - 1) land cmask
      done;
      (match ctx.tbl with
      | None -> ()
      | Some tbl ->
          if !best < bound_eff then Tx.set tbl key ((!best lsl 1) lor 1)
          else Tx.set tbl key (bound_eff lsl 1));
      !best
    end
  end

(* Evaluate one split (two child boards) against the incumbent. *)
and eval_split ctx best r0 c0 r1 c1 =
  if ctx.cfg.prune then begin
    let a = cc ctx ~lb:1 r0 c0 (!best - 1) in
    if a + 1 < !best then begin
      let b = cc ctx ~lb:1 r1 c1 (!best - 1) in
      let cost = 1 + max a b in
      if cost < !best then best := cost
    end
  end
  else begin
    let a = cc ctx ~lb:1 r0 c0 no_bound in
    let b = cc ctx ~lb:1 r1 c1 no_bound in
    let cost = 1 + max a b in
    if cost < !best then best := cost
  end

(* {2 Root bounds}

   Every member bounds the leaf count of a depth-C protocol: at most
   2^C leaves, all monochromatic rectangles. *)

(* 1-leaves >= max (GF(2) rank, greedy fooling set), 0-leaves >= GF(2)
   rank of the complement. *)
let rank_fooling_lower m =
  let r1 = Rank_bound.gf2_rank m in
  let r0 = Rank_bound.gf2_rank (Bm.complement m) in
  let fool =
    let tm =
      Truth_matrix.build
        (List.init (Bm.rows m) Fun.id)
        (List.init (Bm.cols m) Fun.id)
        (fun i j -> Bm.get m i j)
    in
    List.length (Fooling.greedy tm)
  in
  ceil_log2 (max r1 fool + r0)

(* Mehlhorn–Schmidt over ℚ, both colors: the 1-leaves sum to M as
   rank-1 rational matrices, so 1-leaves >= rank_Q M; the 0-leaves sum
   to the complement likewise.  Rational rank dominates GF(2) rank, so
   this frequently beats [rank_fooling_lower] — at the cost of exact
   rational elimination. *)
let log_rank_lower m =
  ceil_log2
    (Rank_bound.rational_rank m + Rank_bound.rational_rank (Bm.complement m))

(* Discrepancy: every monochromatic rectangle R satisfies
   [|ones R - zeros R| = |R|], so cells = sum |leaf| <= 2^C * disc *
   cells, i.e. C >= log2 (1/disc).  The epsilon absorbs float noise in
   the direction of soundness (rounding the bound down). *)
let discrepancy_lower m =
  let disc = Discrepancy.discrepancy_exact m in
  if disc <= 0.0 then 0
  else
    max 0
      (int_of_float (Float.ceil ((-.Float.log disc /. Float.log 2.0) -. 1e-9)))

(* All portfolio members of an arbitrary matrix, each individually a
   certified lower bound on its exact CC (property-tested by [ccmx
   check exact_cc.lb_portfolio_sound]).  Computed on the canonical
   matrix — CC-invariant, and what the engine itself bounds. *)
let portfolio_members = [ "rank_fooling"; "log_rank"; "discrepancy" ]

let lower_bound_portfolio m =
  if Bm.rows m = 0 || Bm.cols m = 0 then
    List.map (fun n -> (n, 0)) portfolio_members
  else
    let m' = complement_normalize (collapse_duplicates m) in
    if Bm.count_ones m' = 0 then
      (* monochromatic (complement-normalized to all-zero): CC is 0 *)
      List.map (fun n -> (n, 0)) portfolio_members
    else
      [ ("rank_fooling", max 1 (rank_fooling_lower m'));
        ("log_rank", log_rank_lower m');
        ("discrepancy", discrepancy_lower m') ]

(* The engine's root bound: members evaluated cheapest-first, stopping
   as soon as [ub] is reached (a tighter bound cannot change the
   outcome).  The telemetry counter of the member that produced the
   final bound records which bound won at this root. *)
let certified_lower ~portfolio ~ub m =
  let best = ref (max 1 (rank_fooling_lower m)) in
  let win = ref c_lb_rank in
  if portfolio && !best < ub then begin
    let lr = log_rank_lower m in
    if lr > !best then begin
      best := lr;
      win := c_lb_logrank
    end;
    if !best < ub then begin
      let d = discrepancy_lower m in
      if d > !best then begin
        best := d;
        win := c_lb_disc
      end
    end
  end;
  Tel.incr !win;
  !best

(* {2 Drivers} *)

type prepared = {
  rwp : int array;
  cwp : int array;
  full_r : int;
  full_c : int;
  cnr : int;
  cnc : int;
  canon : Bm.t;
}

let prepare cfg m =
  let m' =
    if cfg.canonicalize then complement_normalize (collapse_duplicates m)
    else m
  in
  let cnr = Bm.rows m' and cnc = Bm.cols m' in
  if cnr > max_side || cnc > max_side then
    raise (Too_large { rows = cnr; cols = cnc; limit = max_side });
  {
    rwp = Bm.packed_rows m';
    cwp = Bm.packed_cols m';
    full_r = (1 lsl cnr) - 1;
    full_c = (1 lsl cnc) - 1;
    cnr;
    cnc;
    canon = m';
  }

let stats_of ctx ~cnr ~cnc ~root_lower ~root_upper =
  (* Against a shared warm table, counters are deltas over this
     search; for a fresh private table the baseline is zero and the
     subtraction is the identity. *)
  let hits, misses, evictions =
    match (ctx.tbl, ctx.stats0) with
    | Some t, Some s0 ->
        let s = Tx.stats t in
        ( s.Tx.hits - s0.Tx.hits,
          s.Tx.misses - s0.Tx.misses,
          s.Tx.evictions - s0.Tx.evictions )
    | _ -> (0, 0, 0)
  in
  {
    nodes = ctx.nodes;
    table_hits = hits;
    table_misses = misses;
    table_evictions = evictions;
    canon_rows = cnr;
    canon_cols = cnc;
    root_lower;
    root_upper;
  }

let leaf_stats ~cnr ~cnc ~root_lower ~root_upper =
  {
    nodes = 0;
    table_hits = 0;
    table_misses = 0;
    table_evictions = 0;
    canon_rows = cnr;
    canon_cols = cnc;
    root_lower;
    root_upper;
  }

(* Number of strided groups the root move list is cut into in
   deterministic mode.  Fixed — never derived from the pool's job
   count — so group contents, per-group incumbents, values and
   counters are identical at any [--jobs]. *)
let root_groups = 16

(* Fan out only when the root move list dwarfs the grouping overhead
   (each group pays for its own transposition table): 512 moves means
   a canonical board of at least ten rows or columns. *)
let parallel_move_threshold = 512

(* A root move packs one child of a root split: bit 0 selects the side
   (0 = row split, 1 = column split), the chosen submask sits above.
   The enumeration order is the classic one ([run_parallel]'s old
   [consider] order), so strided group contents are unchanged. *)
let enumerate_root_moves p =
  let n = (1 lsl (p.cnr - 1)) + (1 lsl (p.cnc - 1)) - 2 in
  let moves = Array.make n 0 in
  let k = ref 0 in
  let low_r = p.full_r land -p.full_r in
  let sub = ref p.full_r in
  while !sub > 0 do
    if !sub <> p.full_r && !sub land low_r <> 0 then begin
      moves.(!k) <- !sub lsl 1;
      incr k
    end;
    sub := (!sub - 1) land p.full_r
  done;
  let low_c = p.full_c land -p.full_c in
  let sub = ref p.full_c in
  while !sub > 0 do
    if !sub <> p.full_c && !sub land low_c <> 0 then begin
      moves.(!k) <- (!sub lsl 1) lor 1;
      incr k
    end;
    sub := (!sub - 1) land p.full_c
  done;
  assert (!k = n);
  moves

let split_of_move p mv =
  let sub = mv lsr 1 in
  if mv land 1 = 0 then (sub, p.full_c, p.full_r lxor sub, p.full_c)
  else (p.full_r, sub, p.full_r, p.full_c lxor sub)

let merge_results ~lb ~ub ~seed p results =
  Array.fold_left
    (fun (v, (acc : stats)) (b, (s : stats)) ->
      ( min v b,
        {
          acc with
          nodes = acc.nodes + s.nodes;
          table_hits = acc.table_hits + s.table_hits;
          table_misses = acc.table_misses + s.table_misses;
          table_evictions = acc.table_evictions + s.table_evictions;
        } ))
    (seed, leaf_stats ~cnr:p.cnr ~cnc:p.cnc ~root_lower:lb ~root_upper:ub)
    results

(* {3 Deterministic mode: strided groups + barrier-shared incumbent}

   The move list is cut into [root_groups] strided groups exactly as
   before, but the groups now exchange incumbents at fixed
   synchronization barriers: each round, every group advances at most
   [strided_block] of its moves under [min (its own best, the global
   best merged at the last barrier)].  One group's improvement bounds
   every other group's window from the next round on — the fix for the
   old isolated-incumbent behavior where [--jobs N] explored strictly
   more nodes than [--jobs 1] on prune-heavy boards — while the work a
   group does remains a pure function of the move list and the merged
   incumbents, never of scheduling: values AND node counters stay
   bit-identical at any job count.

   [config.share_incumbent = false] suppresses the barrier exchange,
   reproducing the PR 4 behavior (isolated incumbents) node-for-node —
   kept as the B7 ablation baseline and for the regression test that
   pins how much sharing saves. *)
let strided_block = 16

let run_strided cfg pool ?cancel p ~lb ~ub =
  let moves = enumerate_root_moves p in
  let nm = Array.length moves in
  let seed = if cfg.prune then ub else no_bound in
  let ctxs =
    Array.init root_groups (fun _ -> mk_ctx ?cancel cfg p.rwp p.cwp)
  in
  let bests = Array.make root_groups seed in
  let cursors = Array.init root_groups Fun.id in
  let groups = Array.init root_groups Fun.id in
  let global = ref seed in
  let live = ref true in
  while !live do
    let g0 = if cfg.share_incumbent then !global else seed in
    ignore
      (Pool.parallel_map pool ?cancel
         (fun g ->
           let ctx = ctxs.(g) in
           let best = ref (min bests.(g) g0) in
           let cur = ref cursors.(g) in
           let steps = ref 0 in
           while
             !steps < strided_block && !cur < nm
             && ((not cfg.prune) || !best > lb)
           do
             let r0, c0, r1, c1 = split_of_move p moves.(!cur) in
             eval_split ctx best r0 c0 r1 c1;
             cur := !cur + root_groups;
             incr steps
           done;
           bests.(g) <- !best;
           cursors.(g) <- !cur;
           ())
         groups);
    global := Array.fold_left min !global bests;
    live :=
      (if cfg.share_incumbent then
         Array.exists (fun c -> c < nm) cursors
         && ((not cfg.prune) || !global > lb)
       else
         (* isolated incumbents: a group only retires when its own
            moves run out or its own best hits the floor *)
         Array.exists2
           (fun c b -> c < nm && ((not cfg.prune) || b > lb))
           cursors bests)
  done;
  merge_results ~lb ~ub ~seed:!global p
    (Array.map
       (fun ctx ->
         ( seed,
           stats_of ctx ~cnr:p.cnr ~cnc:p.cnc ~root_lower:lb ~root_upper:ub ))
       ctxs)

(* {3 Stealing mode: per-domain deques + a shared atomic incumbent}

   One deque of root moves per pool worker (seeded stride-wise so every
   deque starts with a spread of the list); the owner pops blocks from
   one end, domains that run dry steal blocks from the other end of a
   victim's deque.  The incumbent is a single atomic: an improvement
   found by any domain tightens every other domain's [eval_split]
   window on its very next move.  Each worker carries its own
   transposition-table segment for the whole search — the serve
   daemon's per-worker segment design — so subtree results warm across
   every root move the domain executes (own or stolen) instead of
   dying with a per-group table.

   Returned values are schedule-invariant: a move is only recorded
   when its cost was proved strictly below the bound its children were
   searched under (fail-soft), and bounds only ever tighten, so the
   final incumbent is [min ub (true minimum)] regardless of
   interleaving.  Node counts DO depend on timing — stealing-mode
   statistics feed [exact_cc.steal_nodes], not the jobs-invariant
   counters. *)
let steal_block = 32

type deque = {
  dm : Mutex.t;
  dq : int array;
  mutable lo : int;  (* thieves take from [lo] *)
  mutable hi : int;  (* the owner takes below [hi] *)
}

let deque_take dq k out =
  Mutex.lock dq.dm;
  let n = min k (dq.hi - dq.lo) in
  let base = dq.hi - n in
  Array.blit dq.dq base out 0 n;
  dq.hi <- base;
  Mutex.unlock dq.dm;
  n

let deque_steal dq k out =
  Mutex.lock dq.dm;
  let n = min k (dq.hi - dq.lo) in
  Array.blit dq.dq dq.lo out 0 n;
  dq.lo <- dq.lo + n;
  Mutex.unlock dq.dm;
  n

let rec relax_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then relax_min a v

(* Evaluate one root move against the shared incumbent.  The cost is
   recorded only when strictly below the bound [w] its second child
   was searched under — a truncated (fail-soft) child yields
   [cost >= w], which is correctly discarded — so a stale incumbent
   read can only cost work, never correctness. *)
let eval_move_shared ctx shared ~prune p mv =
  let r0, c0, r1, c1 = split_of_move p mv in
  if prune then begin
    let cur = Atomic.get shared in
    let a = cc ctx ~lb:1 r0 c0 (cur - 1) in
    if a + 1 < cur then begin
      (* refresh: another domain may have tightened the incumbent
         while the first child was being searched *)
      let w = min cur (Atomic.get shared) in
      if a + 1 < w then begin
        let b = cc ctx ~lb:1 r1 c1 (w - 1) in
        let cost = 1 + max a b in
        if cost < w then relax_min shared cost
      end
    end
  end
  else begin
    let a = cc ctx ~lb:1 r0 c0 no_bound in
    let b = cc ctx ~lb:1 r1 c1 no_bound in
    relax_min shared (1 + max a b)
  end

let run_steal cfg pool ?cancel p ~lb ~ub =
  let moves = enumerate_root_moves p in
  let nm = Array.length moves in
  let nw = Pool.jobs pool in
  let seed = if cfg.prune then ub else no_bound in
  let shared = Atomic.make seed in
  let deques =
    Array.init nw (fun w ->
        let cnt = (nm - w + nw - 1) / nw in
        let arr = Array.init cnt (fun i -> moves.(w + (i * nw))) in
        { dm = Mutex.create (); dq = arr; lo = 0; hi = cnt })
  in
  let results =
    Pool.parallel_map pool ?cancel ~chunk:1
      (fun w ->
        let ctx = mk_ctx ?cancel cfg p.rwp p.cwp in
        let buf = Array.make steal_block 0 in
        let running = ref true in
        while !running do
          (match cancel with
          | Some tok when Pool.Token.cancelled tok -> raise Pool.Cancelled
          | _ -> ());
          let n = deque_take deques.(w) steal_block buf in
          let n =
            if n > 0 then n
            else begin
              (* own deque dry: steal from the first victim with work *)
              let got = ref 0 in
              let v = ref 1 in
              while !got = 0 && !v < nw do
                got := deque_steal deques.((w + !v) mod nw) steal_block buf;
                incr v
              done;
              !got
            end
          in
          if n = 0 then running := false
          else
            for i = 0 to n - 1 do
              if (not cfg.prune) || Atomic.get shared > lb then
                eval_move_shared ctx shared ~prune:cfg.prune p buf.(i)
            done
        done;
        ( seed,
          stats_of ctx ~cnr:p.cnr ~cnc:p.cnc ~root_lower:lb ~root_upper:ub ))
      (Array.init nw Fun.id)
  in
  merge_results ~lb ~ub ~seed:(Atomic.get shared) p results

let publish ?(stolen = false) (st : stats) =
  Tel.incr c_searches;
  if stolen then Tel.add c_steal_nodes st.nodes
  else begin
    Tel.add c_nodes st.nodes;
    Tel.add c_hits st.table_hits;
    Tel.add c_misses st.table_misses;
    Tel.add c_evictions st.table_evictions
  end

let run cfg pool ext cancel ~deterministic m =
  if Bm.rows m = 0 || Bm.cols m = 0 then
    ( 0,
      leaf_stats ~cnr:(Bm.rows m) ~cnc:(Bm.cols m) ~root_lower:0 ~root_upper:0,
      false )
  else begin
    let p = prepare cfg m in
    let ub = ceil_log2 (min p.cnr p.cnc) + 1 in
    if Bm.mono_masked p.rwp ~rmask:p.full_r ~cmask:p.full_c >= 0 then
      (0, leaf_stats ~cnr:p.cnr ~cnc:p.cnc ~root_lower:0 ~root_upper:ub, false)
    else begin
      let lb =
        if cfg.prune then certified_lower ~portfolio:cfg.portfolio ~ub p.canon
        else 1
      in
      if cfg.prune && lb >= ub then begin
        Tel.incr c_root_pruned;
        ( ub,
          leaf_stats ~cnr:p.cnr ~cnc:p.cnc ~root_lower:lb ~root_upper:ub,
          false )
      end
      else begin
        let n_moves = (1 lsl (p.cnr - 1)) + (1 lsl (p.cnc - 1)) - 2 in
        match pool with
        (* A shared external table cannot be split across domains
           (Txtable is not thread-safe), so its presence forces the
           sequential path regardless of the pool. *)
        | Some pool when n_moves >= parallel_move_threshold && ext = None -> (
            let driver = if deterministic then run_strided else run_steal in
            match driver cfg pool ?cancel p ~lb ~ub with
            | v, st -> (v, st, not deterministic)
            | exception Pool.Cancelled ->
                (* Group-local node counts die with their domains; the
                   certified root bounds survive. *)
                raise (Timed_out { lower = lb; upper = ub; nodes = 0 }))
        | _ -> (
            let ctx = mk_ctx ?ext ?cancel cfg p.rwp p.cwp in
            let bound = if cfg.prune then ub else no_bound in
            match cc ctx ~lb p.full_r p.full_c bound with
            | v ->
                ( v,
                  stats_of ctx ~cnr:p.cnr ~cnc:p.cnc ~root_lower:lb
                    ~root_upper:ub,
                  false )
            | exception Pool.Cancelled ->
                (* Report the best certified answer the partial search
                   left behind.  The root entry of a warm table (same
                   tag, earlier completed search) may even be exact —
                   then the deadline lost the race with the answer and
                   we return it; otherwise a lower-bound entry can
                   tighten the rank/fooling root bound. *)
                let root_r, root_c =
                  if cfg.canonicalize then canon_masks ctx p.full_r p.full_c
                  else (p.full_r, p.full_c)
                in
                let exact = ref (-1) in
                let lower = ref lb in
                (match ctx.tbl with
                | None -> ()
                | Some tbl ->
                    let key =
                      ctx.key_base lor root_r lor (root_c lsl max_side)
                    in
                    let c = Tx.find tbl key in
                    if c >= 0 then
                      if c land 1 = 1 then exact := c lsr 1
                      else lower := max !lower (c lsr 1));
                if !exact >= 0 then
                  ( !exact,
                    stats_of ctx ~cnr:p.cnr ~cnc:p.cnc ~root_lower:lb
                      ~root_upper:ub,
                    false )
                else begin
                  (* The partial work still counts toward telemetry:
                     the nodes were expanded and the table entries are
                     live for the next attempt. *)
                  publish
                    (stats_of ctx ~cnr:p.cnr ~cnc:p.cnc ~root_lower:!lower
                       ~root_upper:ub);
                  raise
                    (Timed_out
                       { lower = !lower; upper = ub; nodes = ctx.nodes })
                end)
      end
    end
  end

let search ?(config = default_config) ?pool ?table ?(key_tag = 0) ?cancel
    ?(deterministic = false) m =
  if key_tag < 0 || key_tag > max_key_tag then
    invalid_arg
      (Printf.sprintf "Exact_cc.search: key_tag %d out of [0, %d]" key_tag
         max_key_tag);
  let ext = Option.map (fun t -> (t, key_tag)) table in
  let v, st, stolen = run config pool ext cancel ~deterministic m in
  publish ~stolen st;
  (v, st)

let complexity m = fst (search m)
let complexity_tm tm = complexity (Truth_matrix.to_bitmat tm)

(* Content address of the canonical board: what the serve daemon keys
   its result cache and its table-tag registry on.  Two inputs get the
   same key exactly when the engine would search the same canonical
   matrix — duplicate rows/columns and complementation included. *)
(* Canonical board dimensions without running the search: what the
   serve daemon's admission check sizes an [exact_cc] request by.
   Collapse is enough — complement normalization never changes the
   shape. *)
let canonical_dims m =
  let m' = collapse_duplicates m in
  (Bm.rows m', Bm.cols m')

let canonical_key m =
  let m' = complement_normalize (collapse_duplicates m) in
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "%dx%d:" (Bm.rows m') (Bm.cols m'));
  for i = 0 to Bm.rows m' - 1 do
    if i > 0 then Buffer.add_char b '.';
    Buffer.add_string b (Bv.to_string (Bm.row m' i))
  done;
  Buffer.contents b

let optimal_is_sandwiched m =
  let exact = complexity m in
  let nr = Bm.rows m and nc = Bm.cols m in
  let cover = Rectangle.cover_lower_bound m ~exact:(min nr nc <= 20) in
  let log_rank = Rank_bound.log_rank_bound m in
  (* With the tree-depth cost model a depth-C protocol has at most 2^C
     leaves, all monochromatic rectangles, so C >= log2 d(f) >= cover
     and C >= log2 rank — no additive slack beyond float noise. *)
  let trivial_upper =
    (* one agent ships its whole index: ceil log2 of its side, plus the
       answer bit *)
    let bits x = int_of_float (ceil (log (float_of_int (max 2 x)) /. log 2.0)) in
    1 + min (bits nr) (bits nc)
  in
  float_of_int exact >= cover -. 1e-9
  && float_of_int exact >= log_rank -. 1e-9
  && exact <= trivial_upper
