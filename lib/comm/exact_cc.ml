module Bm = Commx_util.Bitmat

(* Submatrices are (row bitmask, column bitmask) pairs over the
   original index sets.  The recursion:

     C(R, S) = 0                         if R x S is monochromatic
     C(R, S) = 1 + min( min over proper nonempty R0 < R of
                          max (C(R0, S), C(R \ R0, S)),
                        min over proper nonempty S0 < S of
                          max (C(R, S0), C(R, S \ S0)) )

   A split by an agent is an arbitrary function of that agent's input,
   i.e. an arbitrary subset.  Splits (R0, R1) and (R1, R0) are the same
   protocol bit inverted, so we halve the enumeration by fixing the
   lowest set bit into R0. *)

let complexity m =
  let nr = Bm.rows m and nc = Bm.cols m in
  if nr > 12 || nc > 12 then
    invalid_arg "Exact_cc.complexity: matrix too large (max 12x12)";
  if nr = 0 || nc = 0 then 0
  else begin
    let full_r = (1 lsl nr) - 1 and full_c = (1 lsl nc) - 1 in
    let value = Array.make (nr * nc) false in
    for i = 0 to nr - 1 do
      for j = 0 to nc - 1 do
        value.((i * nc) + j) <- Bm.get m i j
      done
    done;
    let memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
    let monochromatic rmask cmask =
      let v = ref None in
      let mono = ref true in
      for i = 0 to nr - 1 do
        if rmask lsr i land 1 = 1 then
          for j = 0 to nc - 1 do
            if cmask lsr j land 1 = 1 then begin
              let x = value.((i * nc) + j) in
              match !v with
              | None -> v := Some x
              | Some y -> if x <> y then mono := false
            end
          done
      done;
      !mono
    in
    let rec cc rmask cmask =
      match Hashtbl.find_opt memo (rmask, cmask) with
      | Some v -> v
      | None ->
          let result =
            if monochromatic rmask cmask then 0
            else begin
              let best = ref max_int in
              (* Alice splits the rows: enumerate proper nonempty
                 submasks containing the lowest set bit. *)
              let low_r = rmask land -rmask in
              let sub = ref rmask in
              while !sub > 0 do
                if !sub <> rmask && !sub land low_r <> 0 then begin
                  let c0 = cc !sub cmask in
                  if c0 < !best then begin
                    let c1 = cc (rmask lxor !sub) cmask in
                    let cost = 1 + max c0 c1 in
                    if cost < !best then best := cost
                  end
                end;
                sub := (!sub - 1) land rmask
              done;
              (* Bob splits the columns. *)
              let low_c = cmask land -cmask in
              let sub = ref cmask in
              while !sub > 0 do
                if !sub <> cmask && !sub land low_c <> 0 then begin
                  let c0 = cc rmask !sub in
                  if c0 < !best then begin
                    let c1 = cc rmask (cmask lxor !sub) in
                    let cost = 1 + max c0 c1 in
                    if cost < !best then best := cost
                  end
                end;
                sub := (!sub - 1) land cmask
              done;
              !best
            end
          in
          Hashtbl.replace memo (rmask, cmask) result;
          result
    in
    cc full_r full_c
  end

let complexity_tm tm = complexity (Truth_matrix.to_bitmat tm)

let optimal_is_sandwiched m =
  let exact = complexity m in
  let nr = Bm.rows m and nc = Bm.cols m in
  let cover = Rectangle.cover_lower_bound m ~exact:(min nr nc <= 20) in
  let log_rank = Rank_bound.log_rank_bound m in
  (* With the tree-depth cost model a depth-C protocol has at most 2^C
     leaves, all monochromatic rectangles, so C >= log2 d(f) >= cover
     and C >= log2 rank — no additive slack beyond float noise. *)
  let trivial_upper =
    (* one agent ships its whole index: ceil log2 of its side, plus the
       answer bit *)
    let bits x = int_of_float (ceil (log (float_of_int (max 2 x)) /. log 2.0)) in
    1 + min (bits nr) (bits nc)
  in
  float_of_int exact >= cover -. 1e-9
  && float_of_int exact >= log_rank -. 1e-9
  && exact <= trivial_upper
