module Bv = Commx_util.Bitvec

type t = Bv.t
(* bit i = true: position i read by agent 1 *)

let size = Bv.length
let of_bitvec v = Bv.copy v
let to_bitvec p = Bv.copy p

let agent_of p i = if Bv.get p i then 1 else 2

let count_agent1 = Bv.popcount

let is_even p = 2 * count_agent1 p = size p

let halves p =
  let a1 = ref [] and a2 = ref [] in
  for i = size p - 1 downto 0 do
    if Bv.get p i then a1 := i :: !a1 else a2 := i :: !a2
  done;
  (Array.of_list !a1, Array.of_list !a2)

let first_half n =
  if n mod 2 <> 0 then invalid_arg "Partition.first_half: odd size";
  let p = Bv.create n in
  for i = 0 to (n / 2) - 1 do
    Bv.set p i true
  done;
  p

let random_even g n =
  if n mod 2 <> 0 then invalid_arg "Partition.random_even: odd size";
  let chosen = Commx_util.Prng.sample_without_replacement g (n / 2) n in
  let p = Bv.create n in
  Array.iter (fun i -> Bv.set p i true) chosen;
  p

let complement p =
  let c = Bv.create (size p) in
  for i = 0 to size p - 1 do
    Bv.set c i (not (Bv.get p i))
  done;
  c

let apply_permutation p perm =
  if Array.length perm <> size p then invalid_arg "Partition.apply_permutation";
  let r = Bv.create (size p) in
  Array.iteri (fun i src -> Bv.set r i (Bv.get p src)) perm;
  r

let equal = Bv.equal

let pp ppf p =
  Format.pp_print_string ppf (Bv.to_string p)

let index ~n ~row ~col =
  if row < 0 || row >= n || col < 0 || col >= n then invalid_arg "Partition.index";
  (col * n) + row

let row_col ~n i =
  if i < 0 || i >= n * n then invalid_arg "Partition.row_col";
  (i mod n, i / n)

let agent1_dominates p positions =
  let total = List.length positions in
  let a1 = List.length (List.filter (fun i -> Bv.get p i) positions) in
  2 * a1 >= total
