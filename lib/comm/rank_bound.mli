(** Log-rank communication lower bounds.

    Mehlhorn–Schmidt: the deterministic communication complexity of a
    boolean function is at least [log2 rank(M_f)] where the rank is
    taken over any field (the rational rank gives the strongest
    bound; GF(2) rank is cheaper and also valid).  Used alongside the
    rectangle-cover and fooling-set bounds to certify the lower-bound
    side of Theorem 1.1 at enumerable sizes. *)

val gf2_rank : Commx_util.Bitmat.t -> int
(** Rank of the 0/1 truth matrix over GF(2). *)

val rational_rank : Commx_util.Bitmat.t -> int
(** Rank of the 0/1 truth matrix over ℚ (>= GF(2) rank). *)

val log_rank_bound : Commx_util.Bitmat.t -> float
(** [log2 (rational rank)], a communication lower bound in bits
    (0 for rank-0 matrices). *)

type report = {
  n_rows : int;
  n_cols : int;
  ones : int;
  gf2 : int;
  rational : int;
  log_rank : float;
  fooling : int;  (** best fooling-set size found *)
  fooling_bits : float;
  cover_bits : float;  (** rectangle-cover partition bound, exact *)
  trivial_upper : float;  (** log2 min(rows, cols): cost of sending one whole side *)
}

val analyze : ('a, 'b) Truth_matrix.t -> exact_rect:bool -> report
(** One-stop lower-bound report for an explicit truth matrix.  With
    [~exact_rect:false], the cover bound uses the greedy rectangle
    heuristic and is reported as an estimate. *)

val pp_report : Format.formatter -> report -> unit
