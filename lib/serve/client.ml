(* Resilient client for the ccmx serve daemon.

   One socket, one in-flight request at a time (a mutex serializes
   callers), line-in/line-out.  Failure handling mirrors the
   Supervisor conventions used across the harness:

   - transport failures (connect refused, EOF, malformed reply) close
     the socket and are retried with jittered exponential backoff —
     the jitter is the deterministic Supervisor.jitter stream, so a
     replay under a fixed seed backs off bit-identically;
   - client-side timeouts close the socket (a late reply would
     desynchronize the line protocol) and are NOT retried: a repeat
     attempt would deterministically blow the same budget;
   - server error replies prove the daemon is alive; only the
     transient codes (overloaded, worker_crashed) are retried.

   A half-open circuit breaker sits in front: enough consecutive
   unanswered requests open it, requests then fail fast without
   touching the socket until a cooldown elapses, and a single probe
   request decides between closing it and re-opening. *)

module Json = Commx_util.Json
module Clock = Commx_util.Clock
module Supervisor = Commx_util.Supervisor

type config = {
  socket_path : string;
  connect_timeout_s : float;
  request_timeout_s : float option;
  retries : int;
  backoff_s : float;
  jitter : float;
  jitter_seed : int;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  log : string -> unit;
}

let config ~socket_path ?(connect_timeout_s = 5.0) ?request_timeout_s
    ?(retries = 2) ?(backoff_s = 0.05) ?(jitter = 0.5) ?(jitter_seed = 0)
    ?(breaker_threshold = 5) ?(breaker_cooldown_s = 1.0) ?(log = ignore) () =
  if connect_timeout_s <= 0.0 then
    invalid_arg "Client.config: connect_timeout_s must be > 0";
  (match request_timeout_s with
  | Some s when s <= 0.0 ->
      invalid_arg "Client.config: request_timeout_s must be > 0"
  | _ -> ());
  if retries < 0 then invalid_arg "Client.config: retries must be >= 0";
  if not (jitter >= 0.0 && jitter <= 1.0) then
    invalid_arg "Client.config: jitter must be in [0, 1]";
  if breaker_threshold < 1 then
    invalid_arg "Client.config: breaker_threshold must be >= 1";
  if breaker_cooldown_s <= 0.0 then
    invalid_arg "Client.config: breaker_cooldown_s must be > 0";
  { socket_path; connect_timeout_s; request_timeout_s; retries; backoff_s;
    jitter; jitter_seed; breaker_threshold; breaker_cooldown_s; log }

type error =
  | Server_error of { code : string option; message : string; reply : Json.t }
  | Transport of string
  | Timed_out of float
  | Breaker_open of float

let error_to_string = function
  | Server_error { code; message; _ } ->
      Printf.sprintf "server error%s: %s"
        (match code with Some c -> Printf.sprintf " [%s]" c | None -> "")
        message
  | Transport msg -> Printf.sprintf "transport failure: %s" msg
  | Timed_out s -> Printf.sprintf "request timed out (%.3fs budget)" s
  | Breaker_open s ->
      Printf.sprintf "circuit breaker open (%.3fs until next probe)" s

type breaker = Closed | Open of float  (* when it opened *) | Half_open

type t = {
  cfg : config;
  m : Mutex.t;
  rbuf : Buffer.t;  (* bytes read past the last reply line *)
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
  mutable failures : int;  (* consecutive unanswered requests *)
  mutable state : breaker;
}

let create ?connect_timeout_s ?request_timeout_s ?retries ?backoff_s ?jitter
    ?jitter_seed ?breaker_threshold ?breaker_cooldown_s ?log ~socket_path ()
    =
  let cfg =
    config ~socket_path ?connect_timeout_s ?request_timeout_s ?retries
      ?backoff_s ?jitter ?jitter_seed ?breaker_threshold ?breaker_cooldown_s
      ?log ()
  in
  { cfg; m = Mutex.create (); rbuf = Buffer.create 256; fd = None;
    next_id = 0; failures = 0; state = Closed }

(* Raised inside one attempt; never escapes [request]. *)
exception Fail of string
exception Attempt_timeout

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let disconnect t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  Buffer.clear t.rbuf

let close t =
  Mutex.lock t.m;
  disconnect t;
  Mutex.unlock t.m

(* Nonblocking connect bounded by connect_timeout_s (and the attempt
   deadline if tighter).  On a Unix socket this usually completes or
   refuses immediately; the select path covers a daemon whose accept
   backlog is full. *)
let connect t ~deadline =
  let cfg = t.cfg in
  let budget = min cfg.connect_timeout_s (deadline -. Clock.now_s ()) in
  if budget <= 0.0 then raise Attempt_timeout;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let fail_with e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failf "connect to %s failed: %s" cfg.socket_path (Printexc.to_string e)
  in
  Unix.set_nonblock fd;
  (match Unix.connect fd (Unix.ADDR_UNIX cfg.socket_path) with
  | () -> ()
  | exception
      Unix.Unix_error
        ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] budget with
      | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some err -> fail_with (Unix.Unix_error (err, "connect", "")))
      | _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          failf "connect to %s timed out" cfg.socket_path)
  | exception e -> fail_with e);
  fd

let ensure_connected t ~deadline =
  match t.fd with
  | Some fd -> fd
  | None ->
      Buffer.clear t.rbuf;
      let fd = connect t ~deadline in
      t.fd <- Some fd;
      fd

let rec write_all fd b pos len ~deadline =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n) ~deadline
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all fd b pos len ~deadline
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        let remain = deadline -. Clock.now_s () in
        if remain <= 0.0 then raise Attempt_timeout;
        (match Unix.select [] [ fd ] [] remain with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | _ -> ());
        write_all fd b pos len ~deadline
    | exception Unix.Unix_error (e, _, _) ->
        failf "write failed: %s" (Unix.error_message e)

let read_line t fd ~deadline =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents t.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf s (i + 1) (String.length s - i - 1);
        line
    | None ->
        let remain = deadline -. Clock.now_s () in
        if deadline < infinity && remain <= 0.0 then raise Attempt_timeout;
        (match
           Unix.select [ fd ] [] [] (if deadline < infinity then remain else -1.0)
         with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> failf "server closed the connection"
            | n -> Buffer.add_subbytes t.rbuf chunk 0 n
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | exception Unix.Unix_error (e, _, _) ->
                failf "read failed: %s" (Unix.error_message e)));
        go ()
  in
  go ()

(* Server errors worth another attempt: the daemon is alive but this
   particular try was unlucky (queue full, worker crashed under it).
   Deadline expiry (timed_out) is deterministic and never retried. *)
let retryable_code = function
  | Some ("overloaded" | "worker_crashed") -> true
  | _ -> false

type attempt_outcome =
  | A_ok of Json.t
  | A_server of { code : string option; message : string; reply : Json.t }

let attempt t ~op ~fields ~deadline =
  let fd = ensure_connected t ~deadline in
  let id = t.next_id in
  t.next_id <- id + 1;
  let line =
    Wire.to_line
      (Json.Obj (("op", Json.String op) :: ("id", Json.Int id) :: fields))
  in
  let b = Bytes.of_string line in
  write_all fd b 0 (Bytes.length b) ~deadline;
  let reply =
    match Json.of_string (read_line t fd ~deadline) with
    | r -> r
    | exception Failure msg -> failf "malformed reply: %s" msg
  in
  (match Json.member "id" reply with
  | Some (Json.Int i) when i = id -> ()
  | _ -> failf "reply id mismatch (expected %d)" id);
  match Json.member "ok" reply with
  | Some (Json.Bool true) -> A_ok reply
  | Some (Json.Bool false) ->
      let message =
        match Json.member "error" reply with
        | Some (Json.String m) -> m
        | _ -> "unspecified server error"
      in
      A_server { code = Wire.error_code reply; message; reply }
  | _ -> failf "reply carries no \"ok\" field"

let backoff_pause cfg ~op ~attempt =
  let base = cfg.backoff_s *. (2.0 ** float_of_int (attempt - 1)) in
  if cfg.jitter = 0.0 then base
  else
    base
    *. (1.0
       +. cfg.jitter
          *. Supervisor.jitter ~seed:cfg.jitter_seed ~name:("client:" ^ op)
               ~attempt)

let request t ?deadline_ms ~op fields =
  let cfg = t.cfg in
  let fields =
    match deadline_ms with
    | Some ms -> ("deadline_ms", Json.Int ms) :: fields
    | None -> fields
  in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let gate =
        match t.state with
        | Closed | Half_open -> `Proceed
        | Open since ->
            let elapsed = Clock.now_s () -. since in
            if elapsed >= cfg.breaker_cooldown_s then begin
              t.state <- Half_open;
              cfg.log (Printf.sprintf "breaker half-open: probing with %s" op);
              `Proceed
            end
            else `Refuse (cfg.breaker_cooldown_s -. elapsed)
      in
      match gate with
      | `Refuse remaining -> Error (Breaker_open remaining)
      | `Proceed ->
          let budget =
            Option.value cfg.request_timeout_s ~default:infinity
          in
          let rec go n =
            let deadline =
              if budget < infinity then Clock.now_s () +. budget else infinity
            in
            let retry_after reason =
              let pause = backoff_pause cfg ~op ~attempt:n in
              cfg.log
                (Printf.sprintf
                   "attempt %d of %s failed (%s), retrying in %.3fs" n op
                   reason pause);
              if pause > 0.0 then Clock.sleepf pause;
              go (n + 1)
            in
            match attempt t ~op ~fields ~deadline with
            | A_ok reply -> Ok reply
            | A_server s when retryable_code s.code && n <= cfg.retries ->
                retry_after (Option.value s.code ~default:"server error")
            | A_server { code; message; reply } ->
                Error (Server_error { code; message; reply })
            | exception Attempt_timeout ->
                (* A late reply on this socket would answer the NEXT
                   request; reconnecting is the only safe state. *)
                disconnect t;
                Error (Timed_out budget)
            | exception Fail msg ->
                disconnect t;
                if n <= cfg.retries then retry_after msg
                else Error (Transport msg)
          in
          let outcome = go 1 in
          (match outcome with
          | Ok _ | Error (Server_error _) ->
              (* An answer — any answer — proves the daemon is up. *)
              if t.state <> Closed then cfg.log "breaker closed";
              t.failures <- 0;
              t.state <- Closed
          | Error (Transport _ | Timed_out _) ->
              t.failures <- t.failures + 1;
              if t.state = Half_open then begin
                t.state <- Open (Clock.now_s ());
                cfg.log "breaker re-opened: probe failed"
              end
              else if
                t.state = Closed && t.failures >= cfg.breaker_threshold
              then begin
                t.state <- Open (Clock.now_s ());
                cfg.log
                  (Printf.sprintf "breaker opened after %d failures"
                     t.failures)
              end
          | Error (Breaker_open _) -> ());
          outcome)

let breaker_state t =
  Mutex.lock t.m;
  let s =
    match t.state with
    | Closed -> "closed"
    | Open _ -> "open"
    | Half_open -> "half_open"
  in
  Mutex.unlock t.m;
  s

(* The two polling ops observability consumers issue constantly, as
   one-liners so `ccmx top` and scripts don't re-spell the op names. *)
let stats ?deadline_ms t = request t ?deadline_ms ~op:"stats" []
let dump_trace ?deadline_ms t = request t ?deadline_ms ~op:"dump_trace" []
