(** Resilient client for the [ccmx serve] daemon.

    The raw wire protocol (see {!Wire}) is one JSON object per line in
    each direction over a Unix socket.  This client wraps it with the
    failure handling a long-lived caller needs:

    - {b timeouts} on connect and on each request attempt;
    - {b bounded retry with deterministic jittered backoff}
      ({!Commx_util.Supervisor.jitter}: a pure function of
      [(jitter_seed, op, attempt)], so a replay under a fixed seed
      backs off bit-identically) for transport failures and for the
      transient server errors ([overloaded], [worker_crashed]);
    - a {b half-open circuit breaker}: after [breaker_threshold]
      consecutive unanswered requests the breaker opens and requests
      fail fast ({!Breaker_open}) without touching the socket; once
      [breaker_cooldown_s] elapses a single probe request runs and
      its outcome closes or re-opens the breaker.

    Client-side timeouts are never retried (a repeat attempt would
    deterministically exceed the same budget — the Supervisor
    convention), and any timeout or transport failure closes the
    socket: a late reply arriving on a reused socket would answer the
    wrong request.  One request is in flight at a time; the client is
    safe to share across domains (a mutex serializes callers). *)

type config = {
  socket_path : string;
  connect_timeout_s : float;
  request_timeout_s : float option;
      (** client-side wall budget per attempt; [None] waits forever *)
  retries : int;  (** extra attempts after the first *)
  backoff_s : float;  (** base pause; attempt [i] waits [backoff_s * 2^(i-1)] *)
  jitter : float;  (** max fractional jitter on the pause, in [[0, 1]] *)
  jitter_seed : int;
  breaker_threshold : int;
      (** consecutive unanswered requests that open the breaker *)
  breaker_cooldown_s : float;  (** open time before the half-open probe *)
  log : string -> unit;  (** retry/breaker notices; default drops them *)
}

val config :
  socket_path:string ->
  ?connect_timeout_s:float ->
  ?request_timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?log:(string -> unit) ->
  unit ->
  config
(** Defaults: 5 s connect timeout, no request timeout, 2 retries,
    50 ms base backoff with jitter 0.5 and seed 0, breaker threshold
    5 with 1 s cooldown, silent log.
    @raise Invalid_argument on out-of-range values. *)

type error =
  | Server_error of {
      code : string option;  (** machine-readable code, when present *)
      message : string;
      reply : Commx_util.Json.t;  (** the full error reply *)
    }  (** The daemon answered [ok: false] (terminal after retries for
          transient codes). *)
  | Transport of string  (** connect/read/write failed after retries *)
  | Timed_out of float  (** the per-attempt budget that was exceeded *)
  | Breaker_open of float  (** seconds until the next half-open probe *)

val error_to_string : error -> string

type t

val create :
  ?connect_timeout_s:float ->
  ?request_timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  t
(** A client handle.  No connection is made until the first
    {!request}; a lost connection reconnects lazily. *)

val request :
  t ->
  ?deadline_ms:int ->
  op:string ->
  (string * Commx_util.Json.t) list ->
  (Commx_util.Json.t, error) result
(** [request t ~op fields] sends [{"op": op, "id": <fresh>, ..fields}]
    and returns the matching reply.  [?deadline_ms] is forwarded to
    the server as the request's compute deadline (the wire
    [deadline_ms] field); it is independent of the client-side
    [request_timeout_s].  [Ok reply] is always an [ok: true] reply
    whose [id] matched. *)

val stats : ?deadline_ms:int -> t -> (Commx_util.Json.t, error) result
(** [request t ~op:"stats" []] — the polling primitive of
    [ccmx top]. *)

val dump_trace : ?deadline_ms:int -> t -> (Commx_util.Json.t, error) result
(** [request t ~op:"dump_trace" []]: the reply's ["trace"] field is
    the daemon's flight recorder as a Chrome trace document. *)

val breaker_state : t -> string
(** ["closed"], ["open"] or ["half_open"] — for tests and status
    displays. *)

val close : t -> unit
(** Drop the connection (if any).  The handle stays usable; the next
    {!request} reconnects. *)
