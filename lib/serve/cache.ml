(* Result cache (bounded FIFO over content keys) and the tag registry
   that salts transposition-table keys per distinct canonical matrix.

   Both are shared across the acceptor and all worker domains, so every
   operation runs under the structure's mutex.  The FIFO queue only
   ever holds keys that are live in the table: replacement of an
   existing key reuses its queue position, so eviction can pop
   blindly. *)

module Json = Commx_util.Json

type t = {
  m : Mutex.t;
  tbl : (string, Json.t) Hashtbl.t;
  order : string Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked c f =
  Mutex.lock c.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.m) f

let find c key =
  locked c (fun () ->
      match Hashtbl.find_opt c.tbl key with
      | Some v ->
          c.hits <- c.hits + 1;
          Some v
      | None ->
          c.misses <- c.misses + 1;
          None)

let add c key v =
  locked c (fun () ->
      if Hashtbl.mem c.tbl key then Hashtbl.replace c.tbl key v
      else begin
        if Hashtbl.length c.tbl >= c.capacity then begin
          let oldest = Queue.pop c.order in
          Hashtbl.remove c.tbl oldest;
          c.evictions <- c.evictions + 1
        end;
        Hashtbl.replace c.tbl key v;
        Queue.push key c.order
      end)

let stats c =
  locked c (fun () ->
      { hits = c.hits; misses = c.misses; evictions = c.evictions;
        entries = Hashtbl.length c.tbl })

let to_json c =
  locked c (fun () ->
      let entries =
        Queue.fold
          (fun acc key ->
            Json.List [ Json.String key; Hashtbl.find c.tbl key ] :: acc)
          [] c.order
      in
      Json.List (List.rev entries))

let load ~capacity doc =
  let c = create ~capacity in
  (match doc with
  | Json.List entries ->
      List.iteri
        (fun i e ->
          match e with
          | Json.List [ Json.String key; v ] -> add c key v
          | _ ->
              failwith
                (Printf.sprintf
                   "Cache.load: entry %d is not a [key, value] pair" i))
        entries
  | _ -> failwith "Cache.load: expected a list of entries");
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0;
  c

module Tags = struct
  type t = {
    m : Mutex.t;
    tbl : (string, int) Hashtbl.t;
    mutable next : int;
  }

  let create () = { m = Mutex.create (); tbl = Hashtbl.create 64; next = 0 }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let tag t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some tg -> tg
        | None ->
            if t.next > Commx_comm.Exact_cc.max_key_tag then
              failwith "Cache.Tags: tag space exhausted";
            let tg = t.next in
            t.next <- tg + 1;
            Hashtbl.replace t.tbl key tg;
            tg)

  let count t = locked t (fun () -> Hashtbl.length t.tbl)

  let to_json t =
    locked t (fun () ->
        (* Tag order, so the dump is deterministic for a given state. *)
        let entries =
          Hashtbl.fold (fun key tg acc -> (tg, key) :: acc) t.tbl []
          |> List.sort compare
          |> List.map (fun (tg, key) ->
                 Json.List [ Json.String key; Json.Int tg ])
        in
        Json.List entries)

  let load doc =
    let t = create () in
    (match doc with
    | Json.List entries ->
        List.iteri
          (fun i e ->
            match e with
            | Json.List [ Json.String key; Json.Int tg ]
              when tg >= 0 && tg <= Commx_comm.Exact_cc.max_key_tag ->
                if Hashtbl.mem t.tbl key then
                  failwith
                    (Printf.sprintf "Cache.Tags.load: duplicate key %S" key);
                Hashtbl.replace t.tbl key tg;
                if tg >= t.next then t.next <- tg + 1
            | _ ->
                failwith
                  (Printf.sprintf
                     "Cache.Tags.load: entry %d is not a [key, tag] pair \
                      with an in-range tag"
                     i))
          entries
    | _ -> failwith "Cache.Tags.load: expected a list of entries");
    let tags = Hashtbl.fold (fun _ tg acc -> tg :: acc) t.tbl [] in
    let distinct = List.sort_uniq compare tags in
    if List.length distinct <> List.length tags then
      failwith "Cache.Tags.load: duplicate tags";
    t
end
