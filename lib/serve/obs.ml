(* Observability plane: Prometheus exposition + flight recorder.

   The renderer is pure (snapshot lists in, text out) so the golden
   and monotonicity tests run without a daemon; the server composes it
   with live Telemetry snapshots and its own pre-rendered series. *)

module Json = Commx_util.Json
module Clock = Commx_util.Clock
module Telemetry = Commx_util.Telemetry

(* ------------------------------------------------------------------ *)
(* Label encoding                                                      *)
(* ------------------------------------------------------------------ *)

let labeled base labels =
  match labels with
  | [] -> base
  | _ ->
      let buf = Buffer.create (String.length base + 16) in
      Buffer.add_string buf base;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf '|';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          Buffer.add_string buf v)
        labels;
      Buffer.contents buf

let parse_name name =
  match String.index_opt name '|' with
  | None -> (name, [])
  | Some i ->
      let base = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      let labels =
        String.split_on_char '|' rest
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   ( String.sub kv 0 j,
                     String.sub kv (j + 1) (String.length kv - j - 1) )
               | None -> (kv, ""))
      in
      (base, labels)

let metric_name raw =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let s = String.map (fun c -> if ok c then c else '_') raw in
  if s = "" then "_" else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s else s

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exposition rendering                                                *)
(* ------------------------------------------------------------------ *)

(* ["3"] not ["3."]: integral values print as integers so counter
   samples are exact; everything else gets shortest-float %g. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (metric_name k);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

(* Group flat names into (family, samples) preserving first-seen
   order, so every family's HELP/TYPE header appears exactly once with
   all its samples contiguous — required by the exposition format. *)
let group_families entries =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, v) ->
      let base, labels = parse_name name in
      (match Hashtbl.find_opt tbl base with
      | Some samples -> samples := (labels, v) :: !samples
      | None ->
          Hashtbl.add tbl base (ref [ (labels, v) ]);
          order := base :: !order))
    entries;
  List.rev_map
    (fun base -> (base, List.rev !(Hashtbl.find tbl base)))
    !order

let header buf ~fam ~base ~kind =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s Telemetry %s %s.\n# TYPE %s %s\n" fam kind
       base fam kind)

let render_counter_family buf (base, samples) =
  let fam =
    let n = metric_name base in
    if
      String.length n >= 6
      && String.sub n (String.length n - 6) 6 = "_total"
    then n
    else n ^ "_total"
  in
  header buf ~fam ~base ~kind:"counter";
  List.iter
    (fun (labels, v) ->
      Buffer.add_string buf fam;
      render_labels buf labels;
      Buffer.add_string buf (Printf.sprintf " %d\n" v))
    samples

let render_gauge_family buf (base, samples) =
  let fam = metric_name base in
  header buf ~fam ~base ~kind:"gauge";
  List.iter
    (fun (labels, v) ->
      Buffer.add_string buf fam;
      render_labels buf labels;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (number v);
      Buffer.add_char buf '\n')
    samples

let render_histogram_family buf (base, samples) =
  let fam = metric_name base in
  header buf ~fam ~base ~kind:"histogram";
  List.iter
    (fun (labels, (s : Telemetry.histogram_summary)) ->
      let cum = ref 0 in
      let bucket le n =
        Buffer.add_string buf fam;
        Buffer.add_string buf "_bucket";
        render_labels buf (labels @ [ ("le", le) ]);
        Buffer.add_string buf (Printf.sprintf " %d\n" n)
      in
      List.iter
        (fun (le, n) ->
          cum := !cum + n;
          bucket (string_of_int le) !cum)
        s.Telemetry.buckets;
      bucket "+Inf" s.Telemetry.count;
      Buffer.add_string buf fam;
      Buffer.add_string buf "_sum";
      render_labels buf labels;
      Buffer.add_string buf (Printf.sprintf " %d\n" s.Telemetry.sum);
      Buffer.add_string buf fam;
      Buffer.add_string buf "_count";
      render_labels buf labels;
      Buffer.add_string buf (Printf.sprintf " %d\n" s.Telemetry.count))
    samples

let render_metrics ?(extra = "") ~counters ~gauges ~histograms () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf extra;
  List.iter (render_counter_family buf) (group_families counters);
  List.iter (render_gauge_family buf) (group_families gauges);
  List.iter (render_histogram_family buf) (group_families histograms);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-op latency histograms                                           *)
(* ------------------------------------------------------------------ *)

let op_us_base = "serve.op_us"

(* Interning a Telemetry histogram takes the registry mutex; this memo
   keeps the per-request cost to one small Hashtbl lookup (guarded by
   the same metrics_on branch every instrument uses). *)
let op_hists : (string * string, Telemetry.histogram) Hashtbl.t =
  Hashtbl.create 16

let op_hists_m = Mutex.create ()

let observe_op ~op ~outcome us =
  if Telemetry.metrics_on () then begin
    let key = (op, outcome) in
    let h =
      Mutex.lock op_hists_m;
      let h =
        match Hashtbl.find_opt op_hists key with
        | Some h -> h
        | None ->
            let h =
              Telemetry.histogram
                (labeled op_us_base [ ("op", op); ("outcome", outcome) ])
            in
            Hashtbl.add op_hists key h;
            h
      in
      Mutex.unlock op_hists_m;
      h
    in
    Telemetry.observe h us
  end

let merge_summaries (a : Telemetry.histogram_summary)
    (b : Telemetry.histogram_summary) : Telemetry.histogram_summary =
  if a.Telemetry.count = 0 then b
  else if b.Telemetry.count = 0 then a
  else begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (le, n) ->
        Hashtbl.replace tbl le
          (n + Option.value (Hashtbl.find_opt tbl le) ~default:0))
      (a.Telemetry.buckets @ b.Telemetry.buckets);
    let buckets =
      Hashtbl.fold (fun le n acc -> (le, n) :: acc) tbl []
      |> List.sort (fun (x, _) (y, _) -> compare (x : int) y)
    in
    { Telemetry.count = a.Telemetry.count + b.Telemetry.count;
      sum = a.Telemetry.sum + b.Telemetry.sum;
      min = Stdlib.min a.Telemetry.min b.Telemetry.min;
      max = Stdlib.max a.Telemetry.max b.Telemetry.max;
      buckets }
  end

let op_summaries () =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (name, s) ->
      let base, labels = parse_name name in
      if base = op_us_base then
        match List.assoc_opt "op" labels with
        | Some op -> (
            match Hashtbl.find_opt tbl op with
            | Some prev -> Hashtbl.replace tbl op (merge_summaries prev s)
            | None ->
                Hashtbl.add tbl op s;
                order := op :: !order)
        | None -> ())
    (Telemetry.histograms ());
  List.rev_map (fun op -> (op, Hashtbl.find tbl op)) !order
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

(* ------------------------------------------------------------------ *)
(* HTTP                                                                *)
(* ------------------------------------------------------------------ *)

let http_response ?(status = 200) ~content_type body =
  let reason =
    match status with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Status"
  in
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status reason content_type (String.length body) body

let http_path head =
  match String.split_on_char ' ' (String.trim head) with
  | "GET" :: path :: _ -> Some path
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type span = {
    name : string;
    id : int;
    parent : int;
    start_ns : int;
    dur_ns : int;
    args : (string * string) list;
  }

  type t = {
    capacity : int;
    ring : span list array;  (* [||] when disabled *)
    m : Mutex.t;
    mutable next : int;  (* total requests ever recorded *)
  }

  let create ~capacity =
    if capacity < 0 then invalid_arg "Obs.Recorder.create: capacity < 0";
    { capacity;
      ring = Array.make capacity [];
      m = Mutex.create ();
      next = 0 }

  let enabled t = t.capacity > 0

  let ids = Atomic.make 1
  let next_id () = Atomic.fetch_and_add ids 1

  let record t spans =
    if t.capacity > 0 then begin
      Mutex.lock t.m;
      t.ring.(t.next mod t.capacity) <- spans;
      t.next <- t.next + 1;
      Mutex.unlock t.m
    end

  let spans t =
    if t.capacity = 0 then []
    else begin
      Mutex.lock t.m;
      let n = Stdlib.min t.next t.capacity in
      let first = t.next - n in
      let out = ref [] in
      for i = n - 1 downto 0 do
        out := t.ring.((first + i) mod t.capacity) :: !out
      done;
      Mutex.unlock t.m;
      List.concat !out
    end

  let span_to_json (s : span) =
    Json.Obj
      [ ("name", Json.String s.name); ("cat", Json.String "serve");
        ("ph", Json.String "X");
        ("ts", Json.Float (Clock.ns_to_us s.start_ns));
        ("dur", Json.Float (Clock.ns_to_us s.dur_ns));
        ("pid", Json.Int 1); ("tid", Json.Int 1);
        ("args",
         Json.Obj
           (("span", Json.Int s.id)
           :: ("parent", Json.Int s.parent)
           :: List.map (fun (k, v) -> (k, Json.String v)) s.args)) ]

  let to_chrome t =
    Json.Obj [ ("traceEvents", Json.List (List.map span_to_json (spans t))) ]

  let dump t ~path = Json.to_file ~path (to_chrome t)
end
